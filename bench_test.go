// Benchmarks regenerating the paper's evaluation (SIGCOMM '16, §6): one
// benchmark per figure and table, each driving the corresponding workload
// through the real pipeline at a reduced scale, plus end-to-end system
// benchmarks for the headline operations (cluster materialization and
// provisioning). Run with:
//
//	go test -bench=. -benchmem .
package robotron_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/core"
	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/experiments"
	"github.com/robotron-net/robotron/internal/netsim"
)

// BenchmarkFig12ArchEvolution replays a quarter of architecture evolution
// (cluster builds, merges, decommissions) per iteration.
func BenchmarkFig12ArchEvolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig12(experiments.Fig12Config{Weeks: 13, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13ModelGraph measures the model-relatedness analysis over
// the full catalog.
func BenchmarkFig13ModelGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig13()
		if len(res.Counts) == 0 {
			b.Fatal("empty catalog")
		}
	}
}

// BenchmarkFig14ModelChurn simulates a quarter of model evolution with
// weekly source diffs per iteration.
func BenchmarkFig14ModelChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig14(experiments.Fig14Config{Weeks: 13, Seed: int64(i)})
		if res.MeanPerDay <= 0 {
			b.Fatal("no churn")
		}
	}
}

// BenchmarkFig15DesignChange replays one month of design changes through
// the design engine per iteration.
func BenchmarkFig15DesignChange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig15(experiments.Fig15Config{Months: 1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16ConfigChurn replays two weeks of config churn (design
// change -> regeneration -> diff) per iteration.
func BenchmarkFig16ConfigChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig16(experiments.Fig16Config{Weeks: 2, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Monitoring simulates one virtual hour of the monitoring
// pipeline (every event is a real device poll) per iteration.
func BenchmarkTable2Monitoring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2(experiments.Table2Config{Hours: 1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Syslog classifies a 50k-message syslog stream with the
// production-sized rule set (719 rules) per iteration.
func BenchmarkTable3Syslog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable3(experiments.Table3Config{TotalMessages: 50_000, Seed: int64(i)})
		if res.Total == 0 {
			b.Fatal("no messages")
		}
	}
}

// BenchmarkMaterializePOPCluster measures the design stage alone: one
// 4-post POP template materialized into ~110 FBNet objects.
func BenchmarkMaterializePOPCluster(b *testing.B) {
	r, err := core.New(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
		b.Fatal(err)
	}
	ctx := design.ChangeContext{EmployeeID: "bench", TicketID: "T-b", Domain: "pop", NowUnix: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Designer.BuildCluster(ctx, "pop1", fmt.Sprintf("c%d", i), design.POPGen1()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaterializeLargeCluster validates the §5.1.1 claim that
// template designs translate to "tens of thousands of FBNet objects
// within minutes": one 48-rack Gen3 DC cluster (thousands of objects) per
// iteration.
func BenchmarkMaterializeLargeCluster(b *testing.B) {
	r, err := core.New(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.Designer.EnsureSite("dc1", "dc", "nam"); err != nil {
		b.Fatal(err)
	}
	ctx := design.ChangeContext{EmployeeID: "bench", TicketID: "T-b", Domain: "dc", NowUnix: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Designer.BuildCluster(ctx, "dc1", fmt.Sprintf("big%d", i), design.DCGen3(48))
		if err != nil {
			b.Fatal(err)
		}
		if n := len(res.Stats.Created); n < 2000 {
			b.Fatalf("only %d objects", n)
		}
	}
}

// slowFleet builds a deployable n-device fleet whose commits each take
// delay to apply, the workload behind the §5.3.2 "agile, scalable"
// claim: rollout latency must be bounded by the slowest wave of the
// worker pool, not the sum of per-device commit delays.
func slowFleet(b *testing.B, n int, delay time.Duration) (*netsim.Fleet, *deploy.Deployer) {
	b.Helper()
	fleet := netsim.NewFleet()
	for i := 0; i < n; i++ {
		vendor := netsim.Vendor1
		if i%2 == 1 {
			vendor = netsim.Vendor2
		}
		d, err := fleet.AddDevice(fmt.Sprintf("dev%02d", i), vendor, "psw", "pop1")
		if err != nil {
			b.Fatal(err)
		}
		if err := d.LoadConfig(slowFleetConfig(vendor, d.Name(), 1)); err != nil {
			b.Fatal(err)
		}
		if err := d.Commit(); err != nil {
			b.Fatal(err)
		}
		d.SetCommitDelay(delay)
	}
	return fleet, deploy.NewDeployer(deploy.FleetResolver(fleet))
}

func slowFleetConfig(v netsim.Vendor, name string, rev int) string {
	if v == netsim.Vendor2 {
		return fmt.Sprintf("system {\n host-name %s;\n}\nae0 {\n mtu %d;\n}\n", name, 9000+rev)
	}
	return fmt.Sprintf("hostname %s\ninterface ae0\n mtu %d\n", name, 9000+rev)
}

// BenchmarkPhasedDeployParallel measures one 16-device phase with a
// uniform 10ms commit delay, serially (Parallelism=1) and through the
// bounded worker pool: serial pays 16×10ms per deployment, the pool pays
// one wave per ceil(16/workers) — near-linear speedup (≥4x at 8 workers).
func BenchmarkPhasedDeployParallel(b *testing.B) {
	const devices, delay = 16, 10 * time.Millisecond
	for _, bc := range []struct {
		name string
		par  int
	}{
		{"serial", 1},
		{"pool8", 8},
		{"pool16", 16},
	} {
		b.Run(bc.name, func(b *testing.B) {
			fleet, dep := slowFleet(b, devices, delay)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfgs := map[string]string{}
				for _, d := range fleet.Devices() {
					cfgs[d.Name()] = slowFleetConfig(d.Vendor(), d.Name(), i+2)
				}
				if _, err := dep.Deploy(cfgs, deploy.Options{Parallelism: bc.par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProvisionPOPEndToEnd measures the whole life cycle: design,
// fleet sync, config generation, initial provisioning, golden commits.
func BenchmarkProvisionPOPEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.New(core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
			b.Fatal(err)
		}
		ctx := design.ChangeContext{EmployeeID: "bench", TicketID: "T-b", Domain: "pop", NowUnix: 1}
		if _, err := r.ProvisionCluster(ctx, "pop1", "c1", design.POPGen1()); err != nil {
			b.Fatal(err)
		}
	}
}
