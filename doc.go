// Package robotron is a from-scratch reproduction of "Robotron: Top-down
// Network Management at Facebook Scale" (SIGCOMM 2016).
//
// Robotron manages a production network top-down: engineers express
// high-level design intent; the system translates it into FBNet — a
// vendor-agnostic object store that is the single source of truth —
// generates vendor-specific device configurations from templates, deploys
// them safely (dryrun, atomic, phased, commit-confirmed), and continuously
// monitors devices so operational state never silently deviates from the
// design.
//
// The implementation lives under internal/: see internal/core for the
// assembled system, DESIGN.md for the subsystem inventory, and
// EXPERIMENTS.md for the reproduction of the paper's evaluation. The
// benchmarks in bench_test.go regenerate every figure and table of the
// paper's §6 (see also cmd/experiments).
package robotron
