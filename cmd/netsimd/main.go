// Command netsimd runs a standalone simulated device fleet with a TCP
// management endpoint — the "network" that Robotron's deployment and
// monitoring stages manage. Devices alternate between the two vendor
// personalities; a UDP syslog collector address can be configured so
// device events flow to an external passive-monitoring pipeline.
//
// Usage:
//
//	netsimd -devices 8 -listen 127.0.0.1:7777 -syslog 127.0.0.1:5514
//
// Then, from any TCP client:
//
//	device psw1.pop1
//	load-config 24
//	hostname psw1.pop1
//	...
//	commit
//	show interfaces
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/robotron-net/robotron/internal/netsim"
)

func main() {
	n := flag.Int("devices", 4, "number of simulated devices")
	listen := flag.String("listen", "127.0.0.1:0", "management TCP listen address")
	syslogAddr := flag.String("syslog", "", "UDP syslog destination (optional)")
	flag.Parse()

	fleet := netsim.NewFleet()
	var sink func(netsim.SyslogMessage)
	if *syslogAddr != "" {
		var err error
		sink, err = netsim.UDPSyslogSink(*syslogAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	for i := 1; i <= *n; i++ {
		vendor, role := netsim.Vendor1, "psw"
		if i%2 == 0 {
			vendor, role = netsim.Vendor2, "pr"
		}
		name := fmt.Sprintf("%s%d.pop1", role, (i+1)/2)
		d, err := fleet.AddDevice(name, vendor, role, "pop1")
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if sink != nil {
			d.SetSyslogSink(sink)
		}
		fmt.Printf("device %-12s vendor=%s role=%s\n", name, vendor, role)
	}
	srv, err := fleet.ServeMgmt(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("management endpoint: %s (select with: device <name>)\n", srv.Addr())
	fmt.Println("serving; Ctrl-C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}
