// Command experiments regenerates the paper's evaluation figures and
// tables (SIGCOMM '16, §6) through the real Robotron pipeline.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig15
//	experiments -run table2 -hours 24
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/robotron-net/robotron/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run: fig12, fig13, fig14, fig15, fig16, table2, table3, or all")
	hours := flag.Int("hours", 24, "virtual hours for table2")
	weeks := flag.Int("weeks", 0, "override simulated weeks for fig12/fig14/fig16 (0 = paper window)")
	months := flag.Int("months", 12, "simulated months for fig15")
	seed := flag.Int64("seed", 0, "override the deterministic seed (0 = default per experiment)")
	flag.Parse()

	which := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		which[strings.TrimSpace(name)] = true
	}
	all := which["all"]
	ran := 0
	step := func(name string, fn func() (string, error)) {
		if !all && !which[name] {
			return
		}
		ran++
		start := time.Now()
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", name, time.Since(start).Seconds(), out)
	}

	step("fig12", func() (string, error) {
		cfg := experiments.DefaultFig12Config()
		if *weeks > 0 {
			cfg.Weeks = *weeks
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		res, err := experiments.RunFig12(cfg)
		if err != nil {
			return "", err
		}
		return res.Format(), nil
	})
	step("fig13", func() (string, error) {
		return experiments.RunFig13().Format(), nil
	})
	step("fig14", func() (string, error) {
		cfg := experiments.DefaultFig14Config()
		if *weeks > 0 {
			cfg.Weeks = *weeks
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		return experiments.RunFig14(cfg).Format(), nil
	})
	step("fig15", func() (string, error) {
		cfg := experiments.DefaultFig15Config()
		cfg.Months = *months
		if *seed != 0 {
			cfg.Seed = *seed
		}
		res, err := experiments.RunFig15(cfg)
		if err != nil {
			return "", err
		}
		return res.Format(), nil
	})
	step("fig16", func() (string, error) {
		cfg := experiments.DefaultFig16Config()
		if *weeks > 0 {
			cfg.Weeks = *weeks
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		res, err := experiments.RunFig16(cfg)
		if err != nil {
			return "", err
		}
		return res.Format(), nil
	})
	step("table2", func() (string, error) {
		cfg := experiments.DefaultTable2Config()
		cfg.Hours = *hours
		res, err := experiments.RunTable2(cfg)
		if err != nil {
			return "", err
		}
		return res.Format(), nil
	})
	step("table3", func() (string, error) {
		return experiments.RunTable3(experiments.DefaultTable3Config()).Format(), nil
	})
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want fig12..fig16, table2, table3, all)\n", *run)
		os.Exit(2)
	}
}
