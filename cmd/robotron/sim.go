package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/robotron-net/robotron/internal/scenario"
)

// The `robotron sim` noun group drives the declarative scenario
// harness:
//
//	robotron sim run <file>...       execute scenarios
//	robotron sim validate <file>...  static checking only
//	robotron sim list [dir]          enumerate scenarios in a directory
//
// Exit codes: 0 all scenarios passed, 1 a scenario failed (an assertion
// did not hold or an action errored), 2 a scenario file is invalid
// (parse or validation error) or usage is wrong.
func runSim(args []string) int {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	realtime := fs.Bool("realtime", false, "run on the wall clock instead of the deterministic virtual clock")
	verbose := fs.Bool("v", false, "verbose progress output")
	journal := fs.Bool("journal", false, "print each run's deterministic journal")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: robotron sim <run|validate|list> [flags] [args]\n")
		fs.PrintDefaults()
	}
	if len(args) == 0 {
		fs.Usage()
		return 2
	}
	cmd := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return 2
	}
	files := fs.Args()
	switch cmd {
	case "run":
		if len(files) == 0 {
			fmt.Fprintln(os.Stderr, "sim run: no scenario files given")
			return 2
		}
		return simRun(files, *realtime, *verbose, *journal)
	case "validate":
		if len(files) == 0 {
			fmt.Fprintln(os.Stderr, "sim validate: no scenario files given")
			return 2
		}
		return simValidate(files)
	case "list":
		dir := "examples/scenarios"
		if len(files) > 0 {
			dir = files[0]
		}
		return simList(dir)
	default:
		fmt.Fprintf(os.Stderr, "sim: unknown subcommand %q (want run, validate, or list)\n", cmd)
		return 2
	}
}

func simRun(files []string, realtime, verbose, journal bool) int {
	var logf func(string, ...any)
	if verbose {
		logf = func(format string, args ...any) {
			fmt.Printf("  | "+format+"\n", args...)
		}
	}
	for _, path := range files {
		f, err := scenario.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "INVALID %s\n  %v\n", path, err)
			return 2
		}
		res, err := scenario.Run(f, scenario.Options{Realtime: realtime, Logf: logf})
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL    %s\n  %v\n", path, err)
			if journal && res != nil {
				fmt.Print(res.Journal)
			}
			return 1
		}
		fmt.Printf("ok      %s (%s, %d events)\n", path, res.Scenario, res.Events)
		if journal {
			fmt.Print(res.Journal)
		}
	}
	return 0
}

func simValidate(files []string) int {
	for _, path := range files {
		if _, err := scenario.Load(path); err != nil {
			fmt.Fprintf(os.Stderr, "INVALID %s\n  %v\n", path, err)
			return 2
		}
		fmt.Printf("valid   %s\n", path)
	}
	return 0
}

func simList(dir string) int {
	matches, err := filepath.Glob(filepath.Join(dir, "*.yaml"))
	if err != nil || len(matches) == 0 {
		fmt.Fprintf(os.Stderr, "sim list: no scenarios under %s\n", dir)
		return 2
	}
	sort.Strings(matches)
	for _, path := range matches {
		f, err := scenario.Load(path)
		if err != nil {
			fmt.Printf("%-40s INVALID: %v\n", filepath.Base(path), err)
			continue
		}
		fmt.Printf("%-40s %s\n", filepath.Base(path), f.Description)
	}
	return 0
}
