package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/robotron-net/robotron/internal/core"
	"github.com/robotron-net/robotron/internal/monitor"
	"github.com/robotron-net/robotron/internal/reconcile"
	"github.com/robotron-net/robotron/internal/scenario"
)

// defaultObsScenario is the drill `robotron obs` replays when no file is
// given: a drift-induced BGP session drop that fires the derived alarm,
// correlates it with the causing event, and resolves after reconciliation.
const defaultObsScenario = "examples/scenarios/bgp-down-alarm-correlated.yaml"

// The `robotron obs` noun group is the observability surface: it replays
// a scenario on the virtual clock and prints the requested view of the
// finished world.
//
//	robotron obs alarms [file]     alarm lifecycle snapshot + correlations
//	robotron obs timeline [file]   merged operational timeline
//	robotron obs series [file]     collected timeseries keys and last samples
//	robotron obs jobs [file]       derived collection jobs and alarm rules
//	robotron obs reconcile [file]  per-shard breaker/budget/backlog snapshot
//
// Exit codes mirror `robotron sim`: 0 ok, 1 the scenario failed, 2 the
// file is invalid or usage is wrong.
func runObs(args []string) int {
	fs := flag.NewFlagSet("obs", flag.ExitOnError)
	verbose := fs.Bool("v", false, "verbose progress output")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: robotron obs <alarms|timeline|series|jobs|reconcile> [flags] [scenario-file]\n")
		fs.PrintDefaults()
	}
	if len(args) == 0 {
		fs.Usage()
		return 2
	}
	view := args[0]
	switch view {
	case "alarms", "timeline", "series", "jobs", "reconcile":
	default:
		fmt.Fprintf(os.Stderr, "obs: unknown view %q (want alarms, timeline, series, jobs, or reconcile)\n", view)
		return 2
	}
	if err := fs.Parse(args[1:]); err != nil {
		return 2
	}
	path := defaultObsScenario
	if rest := fs.Args(); len(rest) > 0 {
		path = rest[0]
	}
	f, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "INVALID %s\n  %v\n", path, err)
		return 2
	}
	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Printf("  | "+format+"\n", args...)
		}
	}
	printed := false
	_, err = scenario.Run(f, scenario.Options{
		Logf: logf,
		OnFinish: func(r *core.Robotron) {
			printed = true
			obsPrint(view, r)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAIL    %s\n  %v\n", path, err)
		return 1
	}
	if !printed {
		fmt.Fprintln(os.Stderr, "obs: scenario finished but produced no world to inspect")
		return 1
	}
	return 0
}

func obsPrint(view string, r *core.Robotron) {
	switch view {
	case "alarms":
		if r.Alarms == nil {
			fmt.Println("alarm engine disabled")
			return
		}
		fmt.Print(monitor.FormatAlarms(r.Alarms.Snapshot()))
	case "timeline":
		if r.Alarms == nil {
			fmt.Println("alarm engine disabled")
			return
		}
		for _, e := range r.Alarms.Timeline(time.Time{}, time.Time{}) {
			fmt.Println(e.String())
		}
	case "series":
		keys := r.Timeseries.Keys()
		fmt.Printf("%d series collected\n", len(keys))
		for _, k := range keys {
			last := r.Timeseries.Last(k, 1)
			if len(last) == 0 {
				continue
			}
			fmt.Printf("%-48s n=%-5d last=%g\n", k, len(r.Timeseries.Series(k)), last[0].Value)
		}
	case "reconcile":
		if r.Reconciler == nil {
			fmt.Println("reconciler disabled")
			return
		}
		fmt.Print(reconcile.FormatSnapshot(r.Reconciler.Snapshot()))
		fmt.Println()
		fmt.Print(reconcile.FormatDeviceTable(r.Reconciler.Devices()))
	case "jobs":
		jobs := r.JobManager.Jobs()
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].Name < jobs[j].Name })
		fmt.Printf("%d collection jobs\n", len(jobs))
		for _, j := range jobs {
			target := "fleet"
			if !j.AllDevices {
				target = strings.Join(j.Devices, ",")
			}
			fmt.Printf("%-36s %-8s %-12s every %-6s -> %s\n",
				j.Name, j.Engine, j.Data, j.Period, target)
		}
		if r.Alarms != nil {
			rules := r.Alarms.Rules()
			fmt.Printf("%d alarm rules\n", len(rules))
			for _, rl := range rules {
				fmt.Printf("%-24s %-10s %-16s %s\n", rl.Name, rl.Kind, rl.Device, rl.Key)
			}
		}
	}
}
