package main

import (
	"context"
	"fmt"
	"time"

	"github.com/robotron-net/robotron/internal/core"
	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/fbnet/service"
	"github.com/robotron-net/robotron/internal/monitor"
	"github.com/robotron-net/robotron/internal/netsim"
)

// scenarioDistributed runs the life cycle with every stage boundary on a
// real socket: the design change arrives as a Thrift RPC at the write
// service (§4.3.2), config generation runs server-side against the master
// store, deployment and monitoring reach the devices over the TCP
// management CLI, and devices stream syslog over UDP to a collector.
func scenarioDistributed(employee, ticket string) {
	header("start the FBNet service deployment (3 regions over TCP RPC)")
	dep, err := service.NewDeployment(fbnet.NewCatalog(), "ash", []string{"ash", "fra", "sin"}, 2)
	if err != nil {
		fatal(err)
	}
	defer dep.Close()
	dep.StartReplication(50 * time.Millisecond)
	if _, err := dep.EnableDesignAPI(design.DefaultPools()); err != nil {
		fatal(err)
	}
	fmt.Printf("write service: %s\n", dep.WriteAddr())

	// The management tools are colocated with the master store, per the
	// paper's architecture; they share its FBNet.
	r, err := core.New(core.Options{Store: dep.MasterStore()})
	if err != nil {
		fatal(err)
	}

	header("network design arrives as an RPC from the fra region")
	client := service.NewClient(dep, "fra")
	defer client.Close()
	reply, err := client.BuildCluster(context.Background(), &service.BuildClusterRequest{
		Meta: service.ChangeMeta{
			EmployeeID: employee, TicketID: ticket,
			Description: "distributed demo cluster", Domain: "pop",
			NowUnix: time.Now().Unix(),
		},
		Site: "pop1", Cluster: "pop1-c1", Template: "pop-gen1",
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("design change %d created %d FBNet objects via RPC\n", reply.ChangeID, reply.NumCreated)

	header("physical build-out + TCP management plane")
	if err := r.SyncFleet(); err != nil {
		fatal(err)
	}
	mgmt, err := r.Fleet.ServeMgmt("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer mgmt.Close()
	collector, err := monitor.NewCollector("127.0.0.1:0", r.Classifier)
	if err != nil {
		fatal(err)
	}
	defer collector.Close()
	for _, d := range r.Fleet.Devices() {
		sink, err := netsim.UDPSyslogSink(collector.Addr())
		if err != nil {
			fatal(err)
		}
		d.SetSyslogSink(sink)
	}
	fmt.Printf("management CLI: %s   syslog collector (UDP): %s\n", mgmt.Addr(), collector.Addr())

	header("deploy over the TCP management CLI")
	sessions := map[string]*netsim.RemoteDevice{}
	remote := func(name string) (deploy.Target, error) {
		if d, ok := sessions[name]; ok {
			return d, nil
		}
		d, err := netsim.DialDevice(mgmt.Addr(), name)
		if err != nil {
			return nil, err
		}
		sessions[name] = d
		return d, nil
	}
	defer func() {
		for _, d := range sessions {
			d.Close()
		}
	}()
	devices, err := r.DevicesOfSite("pop1")
	if err != nil {
		fatal(err)
	}
	configs := map[string]string{}
	for _, name := range devices {
		cfg, err := r.Generator.GenerateDevice(name)
		if err != nil {
			fatal(err)
		}
		configs[name] = cfg
		if _, err := r.Generator.CommitGolden(name, cfg, employee, "distributed provisioning"); err != nil {
			fatal(err)
		}
	}
	remoteDeployer := deploy.NewDeployer(remote)
	rep, err := remoteDeployer.InitialProvision(configs, deploy.Options{
		Notify: func(f string, a ...any) { fmt.Printf("  | "+f+"\n", a...) },
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("provisioned %d devices over TCP\n", len(rep.Results))
	if _, err := r.PromoteCircuits(); err != nil {
		fatal(err)
	}

	header("monitor over TCP, audit against the design")
	monSessions := map[string]monitor.DeviceAPI{}
	jm := monitor.NewJobManager(func(name string) (monitor.DeviceAPI, error) {
		if d, ok := monSessions[name]; ok {
			return d, nil
		}
		d, err := netsim.DialDevice(mgmt.Addr(), name)
		if err != nil {
			return nil, err
		}
		monSessions[name] = d
		return d, nil
	})
	jm.RegisterBackend(monitor.NewDerivedBackend(r.Store))
	jm.RegisterBackend(monitor.NewTimeseriesBackend())
	for _, spec := range []monitor.JobSpec{
		{Name: "ifaces", Period: time.Minute, Engine: monitor.EngineRPCXML,
			Data: monitor.DataInterfaces, Devices: devices, Backends: []string{"fbnet-derived"}},
		{Name: "lldp", Period: time.Minute, Engine: monitor.EngineCLI,
			Data: monitor.DataLLDP, Devices: devices, Backends: []string{"fbnet-derived"}},
		{Name: "version", Period: time.Minute, Engine: monitor.EngineThrift,
			Data: monitor.DataVersion, Devices: devices, Backends: []string{"fbnet-derived"}},
	} {
		if _, err := jm.RunOnce(spec); err != nil {
			fatal(err)
		}
	}
	for _, d := range monSessions {
		if rd, ok := d.(*netsim.RemoteDevice); ok {
			defer rd.Close()
		}
	}
	if _, err := monitor.DeriveCircuits(r.Store); err != nil {
		fatal(err)
	}
	// The syslog burst from provisioning reached the classifier over UDP.
	deadline := time.Now().Add(2 * time.Second)
	for r.Classifier.Total() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("syslog events collected over UDP: %d\n", r.Classifier.Total())
	audit, err := r.Audit()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("audit anomalies: %d (clean=%v)\n", len(audit.Anomalies), audit.Clean())
	// Readers in any region see the final design.
	if err := dep.Replicate(); err != nil {
		fatal(err)
	}
	rows, err := client.Get(context.Background(), "Circuit", []string{"circuit_id", "status"},
		service.Eq("status", "production"))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fra region read replica sees %d production circuits\n", len(rows))
}
