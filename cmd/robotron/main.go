// Command robotron runs end-to-end management scenarios against a
// simulated network, exercising the full life cycle: network design →
// config generation → deployment → monitoring (SIGCOMM '16, §5).
//
// Usage:
//
//	robotron -scenario lifecycle   # build a POP end to end, audit it
//	robotron -scenario backbone    # incremental backbone changes
//	robotron -scenario drift       # manual-change detection and restore
//	robotron -scenario outage      # fiber cut detected by audit
//	robotron -scenario distributed # every stage boundary over a real socket
//	robotron -scenario firewall    # phased ACL rollout across a cluster
//	robotron -reconcile            # closed-loop drift reconciliation demo
//
// The sim noun group drives the declarative scenario harness
// (internal/scenario): timed events and assertions from a YAML file,
// executed on a deterministic virtual clock.
//
//	robotron sim run [-realtime] [-v] [-journal] <file>...
//	robotron sim validate <file>...
//	robotron sim list [dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/robotron-net/robotron/internal/core"
	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/netsim"
	"github.com/robotron-net/robotron/internal/reconcile"
)

func main() {
	// Noun groups dispatch before flag parsing: `robotron sim ...` is
	// the declarative scenario harness.
	if len(os.Args) > 1 && os.Args[1] == "sim" {
		os.Exit(runSim(os.Args[2:]))
	}
	// `robotron obs ...` is the observability surface: alarms, the
	// operational timeline, series, and derived jobs of a finished run.
	if len(os.Args) > 1 && os.Args[1] == "obs" {
		os.Exit(runObs(os.Args[2:]))
	}
	scenario := flag.String("scenario", "lifecycle", "scenario: lifecycle, backbone, drift, outage, distributed, firewall, reconcile")
	reconcileMode := flag.Bool("reconcile", false, "shorthand for -scenario reconcile")
	employee := flag.String("employee", "e-cli", "employee id recorded on design changes")
	ticket := flag.String("ticket", "T-cli", "ticket id recorded on design changes")
	parallel := flag.Int("parallel", 0, "max concurrent device commits per deployment phase and concurrent config generations (0 = auto, min(8, n))")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text), /traces (JSON) and /healthz on this address (e.g. :9090); empty disables")
	chaosRate := flag.Float64("chaos-rate", 0, "probability of an injected transport fault per management operation (0 disables fault injection)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the deterministic fault-injection schedule (printed so failures reproduce)")
	noVerify := flag.Bool("no-verify", false, "bypass the pre-deploy intent verification gate (emergency escape hatch; deployments proceed even when network invariants fail)")
	flag.Parse()
	if *reconcileMode {
		*scenario = "reconcile"
	}

	var faults *netsim.FaultPolicy
	var retry *deploy.RetryPolicy
	if *chaosRate > 0 {
		// Split the rate across the three transport fault kinds and arm
		// the retrying transport so scenarios survive the chaos.
		faults = netsim.NewFaultPolicy(*chaosSeed)
		faults.Add(netsim.FaultRule{Kind: netsim.FaultTransient, Probability: *chaosRate / 2})
		faults.Add(netsim.FaultRule{Kind: netsim.FaultDropBefore, Probability: *chaosRate / 4})
		faults.Add(netsim.FaultRule{Kind: netsim.FaultDropAfter, Probability: *chaosRate / 4})
		retry = &deploy.RetryPolicy{Seed: *chaosSeed}
	}

	verifyIntent := !*noVerify
	r, err := core.New(core.Options{
		FaultPolicy:         faults,
		DeployRetry:         retry,
		VerifyIntent:        &verifyIntent,
		DeployParallelism:   *parallel,
		GenerateParallelism: *parallel,
		EnableReconciler:    *scenario == "reconcile",
		Reconcile: reconcile.Config{
			BackoffBase: 20 * time.Millisecond, BackoffMax: 200 * time.Millisecond,
			DampingWindow: time.Hour, DampingThreshold: 3,
			// The demo drifts two devices at once; the default budget of
			// min(4, 25% of a 6-device fleet) = 1 would trip the breaker.
			BudgetMaxDevices: 3, BudgetMaxFraction: 0.5,
		},
		Logf: func(format string, args ...any) {
			fmt.Printf("  | "+format+"\n", args...)
		}})
	if err != nil {
		fatal(err)
	}
	if faults != nil {
		fmt.Printf("  | chaos: %s rate=%.3f\n", faults, *chaosRate)
	}
	if *noVerify {
		fmt.Println("  | verify: pre-deploy intent verification DISABLED (-no-verify)")
	}
	if *metricsAddr != "" {
		srv, err := r.ServeMetrics(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("  | telemetry: serving /metrics, /traces, /healthz on %s\n", srv.Addr)
	}
	ctx := func(domain string) design.ChangeContext {
		return design.ChangeContext{
			EmployeeID: *employee, TicketID: *ticket,
			Description: "cli scenario " + *scenario, Domain: domain, NowUnix: 1_750_000_000,
		}
	}
	switch *scenario {
	case "lifecycle":
		scenarioLifecycle(r, ctx)
	case "backbone":
		scenarioBackbone(r, ctx)
	case "drift":
		scenarioDrift(r, ctx)
	case "outage":
		scenarioOutage(r, ctx)
	case "distributed":
		scenarioDistributed(*employee, *ticket)
	case "firewall":
		scenarioFirewall(r, ctx)
	case "reconcile":
		scenarioReconcile(r, ctx)
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

func header(s string) { fmt.Printf("\n== %s ==\n", s) }

func scenarioLifecycle(r *core.Robotron, ctx func(string) design.ChangeContext) {
	header("design + provision a 4-post POP cluster")
	if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
		fatal(err)
	}
	res, err := r.ProvisionCluster(ctx("pop"), "pop1", "pop1-c1", design.POPGen1())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("devices: %s\n", strings.Join(res.Devices, ", "))
	fmt.Printf("objects created: %d (change #%d)\n", len(res.Build.Stats.Created), res.Build.ChangeID)

	header("sample generated config (first 24 lines)")
	cfg, err := r.Generator.GenerateDevice(res.Devices[0])
	if err != nil {
		fatal(err)
	}
	lines := strings.Split(cfg, "\n")
	if len(lines) > 24 {
		lines = lines[:24]
	}
	fmt.Println(strings.Join(lines, "\n"))

	header("monitoring cycle + audit")
	if err := r.InstallStandardMonitoring(); err != nil {
		fatal(err)
	}
	if err := r.CollectOnce(); err != nil {
		fatal(err)
	}
	derived, _ := r.Store.Count("DerivedCircuit")
	fmt.Printf("derived circuits from LLDP: %d\n", derived)
	rep, err := r.Audit()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("audit anomalies: %d (clean=%v)\n", len(rep.Anomalies), rep.Clean())
}

func scenarioBackbone(r *core.Robotron, ctx func(string) design.ChangeContext) {
	header("bootstrap a backbone mesh")
	if _, err := r.Designer.EnsureSite("bb-east", "backbone", "nam"); err != nil {
		fatal(err)
	}
	for _, n := range []string{"bb1", "bb2", "bb3"} {
		cr, err := r.Designer.AddBackboneRouter(ctx("backbone"), n, "bb-east", "Backbone_Vendor2", "dr")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("added %s: %d objects changed (iBGP mesh + TE tunnels)\n", n, cr.Stats.Total())
	}
	if err := r.SyncFleet(); err != nil {
		fatal(err)
	}
	if _, err := r.GenerateAndDeploy([]string{"bb1", "bb2", "bb3"}, deploy.Options{}, "cli"); err != nil {
		fatal(err)
	}

	header("add a circuit and deploy atomically with dryrun review")
	cr, err := r.Designer.AddBackboneCircuit(ctx("backbone"), "bb1", "bb2", 2)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("circuit add touched %d objects\n", cr.Stats.Total())
	if err := r.SyncFleet(); err != nil {
		fatal(err)
	}
	rep, err := r.GenerateAndDeploy([]string{"bb1", "bb2"}, deploy.Options{
		Atomic: true,
		Review: func(device, diff string) bool {
			fmt.Printf("--- dryrun diff for %s ---\n%s", device, diff)
			return true
		},
	}, "cli")
	if err != nil {
		fatal(err)
	}
	for _, res := range rep.Results {
		fmt.Printf("%s: %s (+%d/-%d lines)\n", res.Device, res.Action, res.Added, res.Removed)
	}

	header("provision a bb2--bb3 circuit, then migrate its far end to bb1")
	if _, err := r.Designer.AddBackboneCircuit(ctx("backbone"), "bb2", "bb3", 1); err != nil {
		fatal(err)
	}
	cir, err := r.Store.FindOne("Circuit", fbnet.And(
		fbnet.Contains("circuit_id", "bb2"), fbnet.Contains("circuit_id", "bb3")))
	if err != nil {
		fatal(err)
	}
	mig, err := r.Designer.MigrateCircuit(ctx("backbone"), cir.String("circuit_id"), "bb1")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("migration touched %d objects (created %d, modified %d, deleted %d)\n",
		mig.Stats.Total(), len(mig.Stats.Created), len(mig.Stats.Modified), len(mig.Stats.Deleted))
	violations, err := design.ValidateDesign(r.Store)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("design rule violations after migration: %d\n", len(violations))
}

func scenarioDrift(r *core.Robotron, ctx func(string) design.ChangeContext) {
	header("provision, then bypass Robotron with a manual change")
	if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
		fatal(err)
	}
	res, err := r.ProvisionCluster(ctx("pop"), "pop1", "pop1-c1", design.POPGen1())
	if err != nil {
		fatal(err)
	}
	victim := res.Devices[0]
	dev, _ := r.Fleet.Device(victim)
	fmt.Printf("engineer manually edits %s on the box...\n", victim)
	if err := dev.ApplyManualChange("snmp-server community leaked RW"); err != nil {
		fatal(err)
	}
	for _, d := range r.ConfigMon.Deviations() {
		fmt.Printf("config monitoring detected deviation on %s:\n%s", d.Device, d.Diff)
	}
	header("restore golden config")
	if err := r.ConfigMon.Restore(victim, dev); err != nil {
		fatal(err)
	}
	fmt.Println("restored; device conforms again")
}

func scenarioFirewall(r *core.Robotron, ctx func(string) design.ChangeContext) {
	header("provision a POP and protect every control plane")
	if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
		fatal(err)
	}
	res, err := r.ProvisionCluster(ctx("pop"), "pop1", "pop1-c1", design.POPGen1())
	if err != nil {
		fatal(err)
	}
	if _, err := r.Designer.EnsureFirewallPolicy(ctx("pop"), design.FirewallSpec{
		Name: "cp-protect", Direction: "in",
		Rules: []design.FirewallRuleSpec{
			{Action: "permit", Protocol: "tcp", SrcPrefix: "2401:db00::/32", DstPort: 179},
			{Action: "deny", Protocol: "any"},
		},
	}); err != nil {
		fatal(err)
	}
	if _, err := r.Designer.AttachFirewall(ctx("pop"), "cp-protect", res.Devices); err != nil {
		fatal(err)
	}
	if _, err := r.GenerateAndDeploy(res.Devices, deploy.Options{}, "cli"); err != nil {
		fatal(err)
	}
	fmt.Println("baseline filter deployed to all 6 devices")

	header("firewall rule change, rolled out in phases (§5.3.2)")
	if _, err := r.Designer.EnsureFirewallPolicy(ctx("pop"), design.FirewallSpec{
		Name: "cp-protect", Direction: "in",
		Rules: []design.FirewallRuleSpec{
			{Action: "permit", Protocol: "tcp", SrcPrefix: "2401:db00::/32", DstPort: 179},
			{Action: "permit", Protocol: "tcp", SrcPrefix: "2401:db00:aa::/48", DstPort: 22},
			{Action: "deny", Protocol: "any"},
		},
	}); err != nil {
		fatal(err)
	}
	rep, err := r.GenerateAndDeploy(res.Devices, deploy.Options{
		Phases: []deploy.Phase{
			{Name: "canary", Percent: 25},
			{Name: "half", Percent: 50},
			{Name: "rest"},
		},
		HealthCheck: core.MetricHealthCheck(95),
		Notify:      func(f string, a ...any) { fmt.Printf("  | "+f+"\n", a...) },
	}, "cli")
	if err != nil {
		fatal(err)
	}
	for _, r := range rep.Results {
		fmt.Printf("%s: %s (+%d/-%d lines)\n", r.Device, r.Action, r.Added, r.Removed)
	}
}

func scenarioReconcile(r *core.Robotron, ctx func(string) design.ChangeContext) {
	header("provision a POP with the closed-loop reconciler enabled")
	if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
		fatal(err)
	}
	res, err := r.ProvisionCluster(ctx("pop"), "pop1", "pop1-c1", design.POPGen1())
	if err != nil {
		fatal(err)
	}
	if err := r.InstallStandardMonitoring(); err != nil {
		fatal(err)
	}
	rec := r.Reconciler
	defer rec.Stop()

	header("engineers bypass Robotron on two devices")
	for i, name := range res.Devices[:2] {
		dev, _ := r.Fleet.Device(name)
		fmt.Printf("manual change on %s...\n", name)
		if err := dev.ApplyManualChange(fmt.Sprintf("snmp-server community leaked%d RW", i)); err != nil {
			fatal(err)
		}
	}
	waitConverged(r, res.Devices[:2])
	fmt.Println("both devices remediated automatically (regenerate + redeploy + confirm)")

	header("one device keeps flapping: damped into quarantine")
	flapper := res.Devices[2]
	dev, _ := r.Fleet.Device(flapper)
	for round := 0; ; round++ {
		if err := dev.ApplyManualChange(fmt.Sprintf("username flapper%d secret", round)); err != nil {
			fatal(err)
		}
		if rec.States()[flapper] == reconcile.StateQuarantined {
			fmt.Printf("%s quarantined after %d drifts inside the damping window\n", flapper, round+1)
			break
		}
		waitConverged(r, []string{flapper})
	}

	header("per-device state table")
	fmt.Print(rec.DeviceTable())
	header("reconciliation journal")
	fmt.Print(rec.Journal().Format())
	header("counters")
	fmt.Println(rec.Stats())
}

// waitConverged polls until every named device is back in converged
// state (the reconciler runs on the real clock in CLI mode).
func waitConverged(r *core.Robotron, devices []string) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		states := r.Reconciler.States()
		for _, name := range devices {
			if states[name] != reconcile.StateConverged {
				done = false
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("devices %v did not converge; table:\n%s", devices, r.Reconciler.DeviceTable()))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func scenarioOutage(r *core.Robotron, ctx func(string) design.ChangeContext) {
	header("provision a POP, then cut a fiber")
	if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
		fatal(err)
	}
	res, err := r.ProvisionCluster(ctx("pop"), "pop1", "pop1-c1", design.POPGen1())
	if err != nil {
		fatal(err)
	}
	if err := r.InstallStandardMonitoring(); err != nil {
		fatal(err)
	}
	d, _ := r.Fleet.Device(res.Devices[0])
	ifaces, _ := d.ShowInterfaces()
	var port string
	for _, ifc := range ifaces {
		if strings.HasPrefix(ifc.Name, "et") {
			port = ifc.Name
			break
		}
	}
	fmt.Printf("cutting %s:%s\n", d.Name(), port)
	r.Fleet.Uncable(d.Name(), port)
	if err := r.CollectOnce(); err != nil {
		fatal(err)
	}
	rep, err := r.Audit()
	if err != nil {
		fatal(err)
	}
	for _, a := range rep.Anomalies {
		fmt.Println(" ", a)
	}
}
