// Command fbnetd runs a multi-region FBNet API deployment (SIGCOMM '16,
// §4.3): a master database region with a write service, per-region read
// replicas fed by asynchronous replication, and read service replicas in
// every region. It prints the service addresses, optionally seeds demo
// data, and serves until interrupted.
//
// Usage:
//
//	fbnetd -regions ash,fra,sin -master ash -read-replicas 2 -seed
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/fbnet/service"
)

func main() {
	regions := flag.String("regions", "ash,fra,sin", "comma-separated region names")
	master := flag.String("master", "ash", "master database region")
	readReplicas := flag.Int("read-replicas", 2, "read service replicas per region")
	replInterval := flag.Duration("replication-interval", 250*time.Millisecond, "replica pull interval")
	seed := flag.Bool("seed", false, "seed demo objects and run a sample query")
	designAPI := flag.Bool("design", true, "enable the high-level design write APIs on the write service")
	flag.Parse()

	regionList := strings.Split(*regions, ",")
	d, err := service.NewDeployment(fbnet.NewCatalog(), *master, regionList, *readReplicas)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer d.Close()
	d.StartReplication(*replInterval)
	if *designAPI {
		if _, err := d.EnableDesignAPI(design.DefaultPools()); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("fbnetd: master region %s\n", d.MasterRegion())
	fmt.Printf("  write service: %s\n", d.WriteAddr())
	for _, region := range regionList {
		fmt.Printf("  %s read replicas: %s\n", region, strings.Join(d.ReadAddrs(region), ", "))
	}

	if *seed {
		c := service.NewClient(d, regionList[0])
		defer c.Close()
		ctx := context.Background()
		resp, err := c.Write(ctx, []service.WriteOp{
			service.CreateOp("Region", map[string]any{"name": "demo"}),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "seed error:", err)
			os.Exit(1)
		}
		fmt.Printf("seeded Region id %d; waiting for replication...\n", resp.CreatedIDs[0])
		if *designAPI {
			reply, err := c.BuildCluster(ctx, &service.BuildClusterRequest{
				Meta: service.ChangeMeta{EmployeeID: "fbnetd", TicketID: "T-seed",
					Description: "demo cluster", Domain: "pop", NowUnix: time.Now().Unix()},
				Site: "demo-pop", Cluster: "demo-pop-c1", Template: "pop-gen1",
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "design API error:", err)
				os.Exit(1)
			}
			fmt.Printf("design API built demo cluster: change %d, %d objects created\n",
				reply.ChangeID, reply.NumCreated)
		}
		time.Sleep(2 * *replInterval)
		res, err := c.Get(ctx, "Region", []string{"name"}, service.Eq("name", "demo"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "query error:", err)
			os.Exit(1)
		}
		fmt.Printf("read back %d row(s) from a local replica\n", len(res))
	}

	fmt.Println("serving; Ctrl-C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}
