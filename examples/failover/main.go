// Failover: FBNet's replicated, multi-region service architecture under
// failure (SIGCOMM '16, §4.3.3).
//
// A three-region deployment serves reads from per-region replicas fed by
// asynchronous replication, with writes forwarded to the master region.
// This example exercises the two failure modes the paper describes:
// read-service replica crashes (clients fail over to remaining local
// replicas, then to a neighboring region) and master database failure
// (the nearest replica is promoted to master and writes resume).
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/fbnet/service"
)

func main() {
	ctx := context.Background()
	d, err := service.NewDeployment(fbnet.NewCatalog(), "ash", []string{"ash", "fra", "sin"}, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	d.StartReplication(20 * time.Millisecond)
	fmt.Printf("deployment up: master=%s, write service at %s\n", d.MasterRegion(), d.WriteAddr())

	// A client in Frankfurt writes (forwarded to the master in Ashburn)
	// and reads locally once replication catches up.
	c := service.NewClient(d, "fra")
	defer c.Close()
	resp, err := c.Write(ctx, []service.WriteOp{
		service.CreateOp("Region", map[string]any{"name": "emea"}),
		service.CreateOp("Region", map[string]any{"name": "apac"}),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d objects through the master region\n", len(resp.CreatedIDs))
	waitForRows(ctx, c, 2)
	replica, _ := c.Ping(ctx)
	fmt.Printf("reads served locally by %s\n", replica)

	// Failure 1: both local read replicas crash; reads reroute to a
	// neighboring region transparently.
	fmt.Println("\nkilling both fra read replicas...")
	d.FailReadReplica("fra", 0)
	d.FailReadReplica("fra", 1)
	replica, err = c.Ping(ctx)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := c.Get(ctx, "Region", []string{"name"}, service.All())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reads rerouted to %s; still see %d rows ✓\n", replica, len(rows))

	// Failure 2: the master database dies; promote the Frankfurt replica.
	fmt.Println("\nfailing the ash master database; promoting fra...")
	if err := d.FailMasterAndPromote("fra"); err != nil {
		log.Fatal(err)
	}
	d.StartReplication(20 * time.Millisecond)
	c.RefreshTopology(d)
	fmt.Printf("new master region: %s, write service at %s\n", d.MasterRegion(), d.WriteAddr())

	// Writes resume against the new master; no data was lost.
	if _, err := c.Write(ctx, []service.WriteOp{
		service.CreateOp("Region", map[string]any{"name": "nam"}),
	}); err != nil {
		log.Fatal(err)
	}
	waitForRows(ctx, c, 3)
	rows, _ = c.Get(ctx, "Region", []string{"name"}, service.All())
	fmt.Printf("post-failover state: %d regions (", len(rows))
	for i, r := range rows {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(r.Fields["name"])
	}
	fmt.Println(") ✓")

	// Singapore's replica now follows the new master.
	sc := service.NewClient(d, "sin")
	defer sc.Close()
	waitForRows(ctx, sc, 3)
	fmt.Println("sin replica converged on the new master's binlog ✓")
}

// waitForRows polls until the client sees n Region rows (replication is
// asynchronous, "typical lag of under one second").
func waitForRows(ctx context.Context, c *service.Client, n int) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		rows, err := c.Get(ctx, "Region", []string{"name"}, service.All())
		if err == nil && len(rows) >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatalf("replication did not converge to %d rows", n)
}
