// Peering: turning up an ISP interconnect at an edge POP (SIGCOMM '16,
// §2.1), including the §8 "Complexity of Modeling" lesson.
//
// The paper recounts a user-impacting incident: a new BGP session to an
// external ISP required a custom import policy of cherry-picked prefixes;
// while the policy feature was "still under development, an engineer used
// Robotron to turn up the session, instantly saturating the egress link."
// This example shows the guard that codifies the lesson — config
// generation refuses a session whose referenced policy has no terms —
// and then the correct turn-up with a real policy rendered into both the
// design and the device config.
//
//	go run ./examples/peering
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/robotron-net/robotron/internal/core"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
)

func main() {
	r, err := core.New(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ctx := design.ChangeContext{
		EmployeeID: "e-peering", TicketID: "T-42",
		Description: "ISP-One transit turn-up", Domain: "pop", NowUnix: 1_750_000_000,
	}
	if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
		log.Fatal(err)
	}
	res, err := r.ProvisionCluster(ctx, "pop1", "pop1-c1", design.POPGen1())
	if err != nil {
		log.Fatal(err)
	}
	pr := res.Devices[0] // pr1.pop1-c1

	// --- the incident shape: policy exists in name only ---
	fmt.Println("attempting turn-up while the import policy is still under development...")
	_, err = r.Store.Mutate(func(m *fbnet.Mutation) error {
		pol, err := m.Create("RoutingPolicy", map[string]any{"name": "isp-one-cherry-picked"})
		if err != nil {
			return err
		}
		dev, err := m.FindOne("Device", fbnet.Eq("name", pr))
		if err != nil {
			return err
		}
		_, err = m.Create("BgpV6Session", map[string]any{
			"local_device": dev.ID, "remote_addr": "2001:db8:ffff::1",
			"local_as": 32934, "remote_as": 3356, "session_type": "ebgp",
			"import_policy": pol,
		})
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := r.Generator.GenerateDevice(pr); err != nil {
		fmt.Printf("config generation refused (the §8 guard): %v\n\n", err)
	} else {
		log.Fatal("guard failed: termless policy generated a config")
	}
	// Clean up the premature session.
	if _, err := r.Store.Mutate(func(m *fbnet.Mutation) error {
		s, err := m.FindOne("BgpV6Session", fbnet.Eq("remote_addr", "2001:db8:ffff::1"))
		if err != nil {
			return err
		}
		if err := m.Delete("BgpV6Session", s.ID); err != nil {
			return err
		}
		pol, err := m.FindOne("RoutingPolicy", fbnet.Eq("name", "isp-one-cherry-picked"))
		if err != nil {
			return err
		}
		return m.Delete("RoutingPolicy", pol.ID)
	}); err != nil {
		log.Fatal(err)
	}

	// --- the correct turn-up: partner, ASN, interconnect, real policy ---
	fmt.Println("turning up ISP-One transit with an implemented import policy...")
	cr, sessionID, err := r.Designer.AddPeering(ctx, design.PeeringSpec{
		Device: pr, Partner: "ISP-One", ASN: 3356, Kind: "transit", LocalAS: 32934,
		ImportPolicy: &design.PolicySpec{
			Name: "isp-one-cherry-picked",
			Terms: []design.PolicyTermSpec{
				{MatchPrefix: "2001:db8:100::/48", Action: "accept"},
				{MatchPrefix: "2001:db8:200::/48", Action: "accept"},
				{Action: "reject"},
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design change %d touched %d objects (partner, ASN, interface, addressing, session, interconnect)\n",
		cr.ChangeID, cr.Stats.Total())
	s, _ := r.Store.GetByID("BgpV6Session", sessionID)
	fmt.Printf("session: AS%d -> AS%d, neighbor %s\n\n",
		s.Int("local_as"), s.Int("remote_as"), s.String("remote_addr"))

	// The policy renders into the PR's config (vendor1: prefix-lists).
	cfg, err := r.Generator.GenerateDevice(pr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rendered policy and neighbor stanzas:")
	for _, line := range strings.Split(cfg, "\n") {
		if strings.Contains(line, "isp-one-cherry-picked") || strings.Contains(line, "3356") {
			fmt.Println("  " + line)
		}
	}
	// Deploy the change to the PR.
	if err := r.SyncFleet(); err != nil {
		log.Fatal(err)
	}
	dev, _ := r.Fleet.Device(pr)
	if err := dev.LoadConfig(cfg); err != nil {
		log.Fatal(err)
	}
	if err := dev.Commit(); err != nil {
		log.Fatal(err)
	}
	if _, err := r.Generator.CommitGolden(pr, cfg, "e-peering", "ISP-One turn-up"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndeployed; the session will Establish when ISP-One configures its side")
}
