// Backbone: incremental design changes on a live mesh (SIGCOMM '16,
// §2.3, §5.1.2, §5.3.2).
//
// The backbone evolves continuously: this example adds routers to the
// iBGP full mesh (every addition fans out to all other routers' configs),
// grows a circuit bundle, deploys the change atomically after dryrun
// review, migrates a circuit between routers, and finishes with a
// commit-confirmed deployment whose grace period is allowed to expire —
// demonstrating automatic rollback.
//
//	go run ./examples/backbone
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/robotron-net/robotron/internal/core"
	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
)

func main() {
	r, err := core.New(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ctx := design.ChangeContext{
		EmployeeID: "e-backbone", TicketID: "T-7",
		Description: "backbone growth", Domain: "backbone", NowUnix: 1_750_000_000,
	}
	if _, err := r.Designer.EnsureSite("bb-east", "backbone", "nam"); err != nil {
		log.Fatal(err)
	}

	// Router additions: watch the change size grow with the mesh — the
	// §1 "Dependency" challenge handled by FBNet relationships.
	names := []string{"dr1", "dr2", "dr3", "pr1"}
	for _, n := range names {
		cr, err := r.Designer.AddBackboneRouter(ctx, n, "bb-east", "Backbone_Vendor2", roleOf(n))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("add %s: %d objects (sessions + TE tunnels to every existing edge)\n", n, cr.Stats.Total())
	}
	if err := r.SyncFleet(); err != nil {
		log.Fatal(err)
	}
	if _, err := r.GenerateAndDeploy(names, deploy.Options{}, "e-backbone"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mesh provisioned")

	// Circuit add + atomic deployment with dryrun review. Both endpoint
	// configs must change together — exactly the case atomic mode exists
	// for.
	if _, err := r.Designer.AddBackboneCircuit(ctx, "dr1", "dr2", 2); err != nil {
		log.Fatal(err)
	}
	if err := r.SyncFleet(); err != nil {
		log.Fatal(err)
	}
	rep, err := r.GenerateAndDeploy([]string{"dr1", "dr2"}, deploy.Options{
		Atomic: true,
		Review: func(device, diff string) bool {
			fmt.Printf("--- reviewing %s (%d diff bytes) --- approved\n", device, len(diff))
			return true
		},
	}, "e-backbone")
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range rep.Results {
		fmt.Printf("  %s %s (+%d/-%d)\n", res.Device, res.Action, res.Added, res.Removed)
	}

	// Circuit migration: dr1--dr2's single bundles can't migrate (2
	// members), so provision dr2--dr3 and move its far end to pr1. FBNet
	// deletes/re-creates the interface, prefix, and addressing objects on
	// the right routers.
	if _, err := r.Designer.AddBackboneCircuit(ctx, "dr2", "dr3", 1); err != nil {
		log.Fatal(err)
	}
	cir, err := r.Store.FindOne("Circuit", fbnet.And(
		fbnet.Contains("circuit_id", "dr2"), fbnet.Contains("circuit_id", "dr3")))
	if err != nil {
		log.Fatal(err)
	}
	mig, err := r.Designer.MigrateCircuit(ctx, cir.String("circuit_id"), "pr1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migrated %s: +%d ~%d -%d objects\n", cir.String("circuit_id"),
		len(mig.Stats.Created), len(mig.Stats.Modified), len(mig.Stats.Deleted))

	// Commit-confirmed deployment: push the post-migration configs with a
	// short grace period and deliberately don't confirm. Vendor2 devices
	// roll back natively; Robotron emulates it elsewhere (§5.3.2).
	if err := r.SyncFleet(); err != nil {
		log.Fatal(err)
	}
	before, _ := deviceConfig(r, "dr2")
	rep, err = r.GenerateAndDeploy([]string{"dr2", "dr3", "pr1"}, deploy.Options{
		ConfirmGrace: 300 * time.Millisecond,
		Notify:       func(f string, a ...any) { fmt.Printf("  notify: "+f+"\n", a...) },
	}, "e-backbone")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed provisionally to %v — not confirming...\n", rep.Pending.Devices())
	deadline := time.Now().Add(5 * time.Second)
	for !rep.Pending.Settled() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // allow device-native timers to fire
	after, _ := deviceConfig(r, "dr2")
	if before == after {
		fmt.Println("grace period expired: configs rolled back automatically ✓")
	} else {
		fmt.Println("unexpected: config still active after expiry")
	}
}

func roleOf(name string) string {
	if name[0] == 'p' {
		return "pr"
	}
	return "dr"
}

func deviceConfig(r *core.Robotron, name string) (string, error) {
	d, ok := r.Fleet.Device(name)
	if !ok {
		return "", fmt.Errorf("no device %s", name)
	}
	return d.RunningConfig()
}
