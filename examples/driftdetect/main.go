// Driftdetect: the automation-fallback story of SIGCOMM '16 §8.
//
// Engineers occasionally bypass Robotron and edit devices directly. This
// example provisions a cluster, makes a manual change on one device, and
// shows the §5.4.3 config-monitoring loop close around it: the device's
// config-change syslog reaches the classifier, which triggers an ad-hoc
// collection job; the collected config is archived and diffed against the
// Robotron-generated golden config; the deviation raises an alert and is
// finally remediated by restoring the golden config.
//
//	go run ./examples/driftdetect
package main

import (
	"fmt"
	"log"

	"github.com/robotron-net/robotron/internal/core"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/monitor"
)

func main() {
	r, err := core.New(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
		log.Fatal(err)
	}
	ctx := design.ChangeContext{
		EmployeeID: "e-drift", TicketID: "T-3",
		Description: "turn up pop1", Domain: "pop", NowUnix: 1_750_000_000,
	}
	res, err := r.ProvisionCluster(ctx, "pop1", "pop1-c1", design.POPGen1())
	if err != nil {
		log.Fatal(err)
	}
	// One monitoring cycle populates the Derived models so the audit
	// reflects real operational state.
	if err := r.InstallStandardMonitoring(); err != nil {
		log.Fatal(err)
	}
	if err := r.CollectOnce(); err != nil {
		log.Fatal(err)
	}
	victim := res.Devices[0]

	// Watch the alert flow live.
	r.ConfigMon.OnDeviation(func(d monitor.Deviation) {
		fmt.Printf("ALERT: %s deviates from golden (+%d/-%d lines)\n%s",
			d.Device, d.Added, d.Removed, d.Diff)
	})

	fmt.Printf("engineer logs into %s and pastes an emergency change...\n\n", victim)
	dev, _ := r.Fleet.Device(victim)
	if err := dev.ApplyManualChange("ip route 0.0.0.0/0 192.0.2.254"); err != nil {
		log.Fatal(err)
	}
	// The syslog -> classifier -> config monitor chain already ran
	// synchronously in this simulation; production detects "within
	// minutes" (§5.4.3).

	// The drifted config was archived in revision control for forensics.
	backups, err := r.Repo.History(monitor.BackupPath(victim))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narchived revisions of %s: %d\n", victim, len(backups))

	// Conformance is tracked in the Derived models, visible to audits.
	obj, err := r.Store.FindOne("DerivedConfig", fbnet.Eq("device_name", victim))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DerivedConfig.conforms = %v\n", obj.Bool("conforms"))
	rep, err := r.Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit: %d anomalies (%v)\n", len(rep.Anomalies), rep.ByKind())

	// Remediation: restore the golden config ("restore device running
	// configs to Robotron-generated configs", §8).
	fmt.Println("\nrestoring golden config...")
	if err := r.ConfigMon.Restore(victim, dev); err != nil {
		log.Fatal(err)
	}
	obj, _ = r.Store.FindOne("DerivedConfig", fbnet.Eq("device_name", victim))
	rep, _ = r.Audit()
	fmt.Printf("DerivedConfig.conforms = %v, audit anomalies = %d ✓\n",
		obj.Bool("conforms"), len(rep.Anomalies))
}
