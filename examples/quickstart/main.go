// Quickstart: the complete Robotron life cycle in one program.
//
// It builds the paper's running example — a 4-post POP cluster (SIGCOMM
// '16, Fig. 2/Fig. 7) — from a topology template: the design stage
// materializes FBNet objects, config generation renders vendor-specific
// configs from the Fig. 9-style templates, initial provisioning pushes
// them onto (simulated) devices, and the monitoring stage populates the
// Derived models that the final audit checks against the design.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/robotron-net/robotron/internal/core"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
)

func main() {
	// 1. Assemble Robotron: FBNet store, design tools, config generator +
	// repository, deployer, monitoring pipelines, simulated fleet.
	r, err := core.New(core.Options{Logf: log.Printf})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Network design: declare the site, then materialize the 4-post
	// template as one atomic, attributed design change.
	if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
		log.Fatal(err)
	}
	ctx := design.ChangeContext{
		EmployeeID: "e-quickstart", TicketID: "T-1",
		Description: "turn up pop1 cluster 1", Domain: "pop", NowUnix: 1_750_000_000,
	}
	res, err := r.ProvisionCluster(ctx, "pop1", "pop1-c1", design.POPGen1())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprovisioned %d devices; design change created %d FBNet objects\n",
		len(res.Devices), len(res.Build.Stats.Created))

	// 3. Inspect FBNet with the read API: indirect fields traverse
	// relationships exactly as in §4.2.1.
	rows, err := r.Store.Get("Circuit",
		[]string{"circuit_id", "a_interface.linecard.device.name", "status"},
		fbnet.Eq("status", "production"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("production circuits: %d (first: %v)\n", len(rows), rows[0].Fields["circuit_id"])

	// 4. The two vendors' configs for the same design differ in syntax but
	// share the same dynamic data (Fig. 9).
	v1cfg, _ := r.Generator.GenerateDevice("pr1.pop1-c1")  // IOS-like
	v2cfg, _ := r.Generator.GenerateDevice("psw1.pop1-c1") // JunOS-like
	fmt.Printf("\nvendor1 interface stanza:\n%s\n", grep(v1cfg, "interface ae0", 4))
	fmt.Printf("vendor2 interface stanza:\n%s\n", grep(v2cfg, "ae0 {", 4))

	// 5. Monitoring: one collection cycle fills the Derived models; the
	// audit confirms operational state matches the design.
	if err := r.InstallStandardMonitoring(); err != nil {
		log.Fatal(err)
	}
	if err := r.CollectOnce(); err != nil {
		log.Fatal(err)
	}
	nCircuits, _ := r.Store.Count("DerivedCircuit")
	fmt.Printf("derived %d circuits from LLDP\n", nCircuits)
	rep, err := r.Audit()
	if err != nil {
		log.Fatal(err)
	}
	if rep.Clean() {
		fmt.Println("audit: network conforms to design ✓")
	} else {
		fmt.Printf("audit: %d anomalies\n", len(rep.Anomalies))
		for _, a := range rep.Anomalies {
			fmt.Println(" ", a)
		}
	}
}

// grep returns n lines of s starting at the line containing pat.
func grep(s, pat string, n int) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if strings.Contains(l, pat) {
			end := i + n
			if end > len(lines) {
				end = len(lines)
			}
			return strings.Join(lines[i:end], "\n")
		}
	}
	return "(not found)"
}
