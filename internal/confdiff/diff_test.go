package confdiff

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestIdentical(t *testing.T) {
	d := Compute("a\nb\nc\n", "a\nb\nc\n")
	if !d.Empty() {
		t.Errorf("identical inputs should produce an empty diff: %+v", d)
	}
	if s := d.Stats(false); s.Changed() != 0 {
		t.Errorf("stats = %+v", s)
	}
	if u := d.Unified(3); u != "" {
		t.Errorf("unified of empty diff = %q", u)
	}
}

func TestSimpleAddRemove(t *testing.T) {
	old := "interface ae0\n mtu 9192\n no shutdown\n"
	new := "interface ae0\n mtu 9000\n no shutdown\n ip addr 10.0.0.0/31\n"
	d := Compute(old, new)
	s := d.Stats(false)
	if s.Added != 2 || s.Removed != 1 {
		t.Errorf("stats = %+v, want 2 added 1 removed", s)
	}
	u := d.Unified(3)
	for _, want := range []string{"- " + " mtu 9192", "+ " + " mtu 9000", "+ " + " ip addr 10.0.0.0/31"} {
		if !strings.Contains(u, want) {
			t.Errorf("unified missing %q:\n%s", want, u)
		}
	}
}

func TestEmptySides(t *testing.T) {
	d := Compute("", "a\nb\n")
	if s := d.Stats(false); s.Added != 2 || s.Removed != 0 {
		t.Errorf("add-only stats = %+v", s)
	}
	d = Compute("a\nb\n", "")
	if s := d.Stats(false); s.Added != 0 || s.Removed != 2 {
		t.Errorf("remove-only stats = %+v", s)
	}
	d = Compute("", "")
	if !d.Empty() {
		t.Errorf("both empty should be empty diff")
	}
}

func TestCommentsExcluded(t *testing.T) {
	old := "line1\n"
	new := "line1\n! comment added\n# another comment\nreal line\n\n"
	d := Compute(old, new)
	if s := d.Stats(true); s.Changed() != 1 {
		t.Errorf("comment-excluding stats = %+v, want 1 changed", s)
	}
	if s := d.Stats(false); s.Changed() != 4 {
		t.Errorf("full stats = %+v, want 4 changed", s)
	}
}

func TestMinimality(t *testing.T) {
	// Myers produces the shortest edit script: changing 1 line in the
	// middle of 100 must cost exactly 2 (one remove, one add).
	var a, b []string
	for i := 0; i < 100; i++ {
		l := "line"
		a = append(a, l)
		if i == 50 {
			b = append(b, "changed")
		} else {
			b = append(b, l)
		}
	}
	// Make lines unique so the diff is unambiguous.
	for i := range a {
		a[i] = a[i] + string(rune('0'+i%10)) + string(rune('a'+(i/10)%26))
		if i != 50 {
			b[i] = a[i]
		}
	}
	d := ComputeLines(a, b)
	if s := d.Stats(false); s.Added != 1 || s.Removed != 1 {
		t.Errorf("stats = %+v, want 1/1", s)
	}
}

func TestApplyReconstructs(t *testing.T) {
	a := []string{"a", "b", "c", "d"}
	b := []string{"a", "x", "c", "e", "f"}
	d := ComputeLines(a, b)
	got, err := d.Apply(a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Errorf("Apply = %v, want %v", got, b)
	}
	// Applying against the wrong base fails loudly.
	if _, err := d.Apply([]string{"wrong"}); err == nil {
		t.Error("Apply against wrong base should fail")
	}
}

func TestUnifiedContextTruncation(t *testing.T) {
	var a, b []string
	for i := 0; i < 50; i++ {
		a = append(a, strings.Repeat("x", i%7+1))
	}
	b = append(b, a...)
	b[25] = "CHANGED"
	d := ComputeLines(a, b)
	u := d.Unified(2)
	if !strings.Contains(u, "...") {
		t.Errorf("long equal runs should be elided:\n%s", u)
	}
	if !strings.Contains(u, "+ CHANGED") {
		t.Errorf("change missing from unified output:\n%s", u)
	}
	if n := strings.Count(u, "\n"); n > 12 {
		t.Errorf("unified output too long (%d lines):\n%s", n, u)
	}
}

// Property: diff(a,b) applied to a always yields b.
func TestQuickDiffApplyIdentity(t *testing.T) {
	vocab := []string{"interface ae0", " mtu 9192", " no shutdown", "!", "router bgp 65001", " neighbor 10.0.0.1"}
	f := func(seedA, seedB int64, lenA, lenB uint8) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a := make([]string, int(lenA)%64)
		for i := range a {
			a[i] = vocab[ra.Intn(len(vocab))]
		}
		b := make([]string, int(lenB)%64)
		for i := range b {
			b[i] = vocab[rb.Intn(len(vocab))]
		}
		d := ComputeLines(a, b)
		got, err := d.Apply(a)
		if err != nil {
			return false
		}
		if len(got) != len(b) {
			return false
		}
		for i := range b {
			if got[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: stats are symmetric — diff(a,b).Added == diff(b,a).Removed.
func TestQuickDiffSymmetry(t *testing.T) {
	f := func(a, b []string) bool {
		d1 := ComputeLines(a, b).Stats(false)
		d2 := ComputeLines(b, a).Stats(false)
		return d1.Added == d2.Removed && d1.Removed == d2.Added
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLines(t *testing.T) {
	if got := Lines(""); got != nil {
		t.Errorf("Lines(\"\") = %v", got)
	}
	if got := Lines("a\nb\n"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Lines = %v", got)
	}
	if got := Lines("a\nb"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Lines without trailing newline = %v", got)
	}
	if got := Lines("a\n\nb\n"); !reflect.DeepEqual(got, []string{"a", "", "b"}) {
		t.Errorf("Lines with blank line = %v", got)
	}
}

func BenchmarkDiffTypicalConfigChange(b *testing.B) {
	// A ~2000-line config with ~40 changed lines, the typical POP/DC
	// device change size from Fig. 16.
	var oldL, newL []string
	for i := 0; i < 2000; i++ {
		l := "interface et" + string(rune('1'+i%8)) + "/1"
		oldL = append(oldL, l, " mtu 9192", " no shutdown")
		if i%50 == 0 {
			newL = append(newL, l, " mtu 9000", " no shutdown", " load-interval 30")
		} else {
			newL = append(newL, l, " mtu 9192", " no shutdown")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := ComputeLines(oldL, newL)
		if d.Empty() {
			b.Fatal("expected changes")
		}
	}
}
