// Package confdiff computes line-based diffs between device configurations.
//
// Robotron's deployment dryrun mode presents engineers with "a diff listing
// all updated lines from the new configurations" (SIGCOMM '16, §5.3.2), and
// config monitoring compares running configs against Robotron-generated
// golden configs (§5.4.3). Figure 16's evaluation metric — "total updated
// config lines (changed/added/removed, excluding comments) on a device in a
// particular week" — is also computed with this package.
//
// The implementation is Myers' O(ND) greedy algorithm over lines.
package confdiff

import (
	"fmt"
	"strings"
)

// OpKind classifies one diff hunk line.
type OpKind int

const (
	Equal OpKind = iota
	Add
	Remove
)

func (k OpKind) String() string {
	switch k {
	case Equal:
		return " "
	case Add:
		return "+"
	case Remove:
		return "-"
	}
	return "?"
}

// Edit is a run of consecutive lines sharing one operation.
type Edit struct {
	Kind  OpKind
	Lines []string
}

// Diff is the edit script between two configurations.
type Diff struct {
	Edits []Edit
}

// Lines splits a config into lines, treating "\n" as the separator and
// dropping a single trailing empty line (configs conventionally end with a
// newline).
func Lines(s string) []string {
	if s == "" {
		return nil
	}
	lines := strings.Split(s, "\n")
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// Compute diffs two configurations.
func Compute(old, new string) Diff {
	return ComputeLines(Lines(old), Lines(new))
}

// ComputeLines diffs two pre-split line slices.
func ComputeLines(a, b []string) Diff {
	// Trim common prefix and suffix first; device config changes are
	// usually small relative to the config, so this bounds the O(ND) core.
	pre := 0
	for pre < len(a) && pre < len(b) && a[pre] == b[pre] {
		pre++
	}
	suf := 0
	for suf < len(a)-pre && suf < len(b)-pre && a[len(a)-1-suf] == b[len(b)-1-suf] {
		suf++
	}
	core := myers(a[pre:len(a)-suf], b[pre:len(b)-suf])

	var d Diff
	if pre > 0 {
		d.append(Equal, a[:pre])
	}
	for _, e := range core.Edits {
		d.append(e.Kind, e.Lines)
	}
	if suf > 0 {
		d.append(Equal, a[len(a)-suf:])
	}
	return d
}

// append adds lines to the edit list, merging with the previous edit when
// the operation matches.
func (d *Diff) append(k OpKind, lines []string) {
	if len(lines) == 0 {
		return
	}
	if n := len(d.Edits); n > 0 && d.Edits[n-1].Kind == k {
		d.Edits[n-1].Lines = append(d.Edits[n-1].Lines, lines...)
		return
	}
	cp := make([]string, len(lines))
	copy(cp, lines)
	d.Edits = append(d.Edits, Edit{Kind: k, Lines: cp})
}

// myers computes the shortest edit script via the greedy O(ND) algorithm.
func myers(a, b []string) Diff {
	n, m := len(a), len(b)
	if n == 0 && m == 0 {
		return Diff{}
	}
	if n == 0 {
		var d Diff
		d.append(Add, b)
		return d
	}
	if m == 0 {
		var d Diff
		d.append(Remove, a)
		return d
	}
	max := n + m
	// v[k+max] = furthest x along diagonal k; trace keeps a copy per d for
	// backtracking.
	v := make([]int, 2*max+1)
	var trace [][]int
	var dFound = -1
outer:
	for d := 0; d <= max; d++ {
		vc := make([]int, len(v))
		copy(vc, v)
		trace = append(trace, vc)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[k-1+max] < v[k+1+max]) {
				x = v[k+1+max] // move down (insert from b)
			} else {
				x = v[k-1+max] + 1 // move right (delete from a)
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[k+max] = x
			if x >= n && y >= m {
				dFound = d
				trace = append(trace, v)
				break outer
			}
		}
	}
	// Backtrack from (n, m).
	type step struct {
		kind OpKind
		line string
	}
	var rev []step
	x, y := n, m
	for d := dFound; d > 0; d-- {
		vPrev := trace[d]
		k := x - y
		var prevK int
		if k == -d || (k != d && vPrev[k-1+max] < vPrev[k+1+max]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := vPrev[prevK+max]
		prevY := prevX - prevK
		for x > prevX && y > prevY {
			x--
			y--
			rev = append(rev, step{Equal, a[x]})
		}
		if prevK == k+1 {
			y--
			rev = append(rev, step{Add, b[y]})
		} else {
			x--
			rev = append(rev, step{Remove, a[x]})
		}
	}
	for x > 0 && y > 0 {
		x--
		y--
		rev = append(rev, step{Equal, a[x]})
	}

	var out Diff
	for i := len(rev) - 1; i >= 0; i-- {
		out.append(rev[i].kind, []string{rev[i].line})
	}
	return out
}

// Stats summarizes a diff.
type Stats struct {
	Added   int
	Removed int
}

// Changed returns added+removed, the paper's "total updated config lines".
func (s Stats) Changed() int { return s.Added + s.Removed }

// Stats counts added and removed lines. When skipComments is true, lines
// whose first non-space character marks a comment in common router config
// syntaxes ('!', '#') are excluded, matching Fig. 16's methodology.
func (d Diff) Stats(skipComments bool) Stats {
	var s Stats
	for _, e := range d.Edits {
		if e.Kind == Equal {
			continue
		}
		for _, l := range e.Lines {
			if skipComments && isComment(l) {
				continue
			}
			if e.Kind == Add {
				s.Added++
			} else {
				s.Removed++
			}
		}
	}
	return s
}

func isComment(line string) bool {
	t := strings.TrimSpace(line)
	return t == "" || strings.HasPrefix(t, "!") || strings.HasPrefix(t, "#")
}

// Empty reports whether the two inputs were identical.
func (d Diff) Empty() bool {
	for _, e := range d.Edits {
		if e.Kind != Equal {
			return false
		}
	}
	return true
}

// Unified renders the diff in a unified-diff-like format with n context
// lines around changes. Engineers review this output during dryrun.
func (d Diff) Unified(n int) string {
	if d.Empty() {
		return ""
	}
	var b strings.Builder
	for i, e := range d.Edits {
		switch e.Kind {
		case Equal:
			lines := e.Lines
			if len(lines) > 2*n+1 {
				head, tail := lines[:n], lines[len(lines)-n:]
				if i == 0 {
					head = nil
				}
				if i == len(d.Edits)-1 {
					tail = nil
				}
				for _, l := range head {
					fmt.Fprintf(&b, "  %s\n", l)
				}
				if i != 0 && i != len(d.Edits)-1 || len(head) > 0 || len(tail) > 0 {
					b.WriteString("  ...\n")
				}
				// Re-anchor the tail context: when the elision cuts into
				// the middle of an indented block, the change below would
				// render without its enclosing stanza (which interface?
				// which protocol?). Emit the block's header line unless it
				// already appeared in the head context.
				if len(tail) > 0 {
					if hdr, at, ok := stanzaHeader(lines, len(lines)-n); ok && !(len(head) > 0 && at < n) {
						fmt.Fprintf(&b, "  %s\n", hdr)
					}
				}
				for _, l := range tail {
					fmt.Fprintf(&b, "  %s\n", l)
				}
			} else {
				for _, l := range lines {
					fmt.Fprintf(&b, "  %s\n", l)
				}
			}
		case Add:
			for _, l := range e.Lines {
				fmt.Fprintf(&b, "+ %s\n", l)
			}
		case Remove:
			for _, l := range e.Lines {
				fmt.Fprintf(&b, "- %s\n", l)
			}
		}
	}
	return b.String()
}

// stanzaHeader returns the innermost enclosing block header for
// lines[start]: the nearest preceding non-blank line at column zero, with
// its index. ok is false when lines[start] itself starts a block (it is
// not indented) or no header precedes it.
func stanzaHeader(lines []string, start int) (string, int, bool) {
	if start < 0 || start >= len(lines) || !indented(lines[start]) {
		return "", 0, false
	}
	for i := start - 1; i >= 0; i-- {
		if l := lines[i]; l != "" && !indented(l) {
			return l, i, true
		}
	}
	return "", 0, false
}

func indented(s string) bool {
	return s != "" && (s[0] == ' ' || s[0] == '\t')
}

// HunkContaining renders just the change hunk whose added/removed lines
// contain needle as a substring, with n context lines on each side and
// stanza-header re-anchoring, the counterexample format of the pre-deploy
// verification gate. An empty needle (or one found nowhere) selects the
// first change hunk; an all-equal diff yields "".
func (d Diff) HunkContaining(needle string, n int) string {
	target := -1
scan:
	for i, e := range d.Edits {
		if e.Kind == Equal {
			continue
		}
		for _, l := range e.Lines {
			if strings.Contains(l, needle) {
				target = i
				break scan
			}
		}
	}
	if target < 0 {
		for i, e := range d.Edits {
			if e.Kind != Equal {
				target = i
				break
			}
		}
	}
	if target < 0 {
		return ""
	}
	// Widen to the whole run of consecutive change edits (a Remove
	// followed by its replacement Add is one hunk).
	start, end := target, target
	for start > 0 && d.Edits[start-1].Kind != Equal {
		start--
	}
	for end < len(d.Edits)-1 && d.Edits[end+1].Kind != Equal {
		end++
	}
	var b strings.Builder
	if start > 0 {
		lines := d.Edits[start-1].Lines
		from := len(lines) - n
		if from < 0 {
			from = 0
		}
		if hdr, at, ok := stanzaHeader(lines, from); ok && at < from {
			fmt.Fprintf(&b, "  %s\n", hdr)
			if at+1 < from {
				b.WriteString("  ...\n")
			}
		}
		for _, l := range lines[from:] {
			fmt.Fprintf(&b, "  %s\n", l)
		}
	}
	for i := start; i <= end; i++ {
		for _, l := range d.Edits[i].Lines {
			fmt.Fprintf(&b, "%s %s\n", d.Edits[i].Kind, l)
		}
	}
	if end < len(d.Edits)-1 {
		lines := d.Edits[end+1].Lines
		to := n
		if to > len(lines) {
			to = len(lines)
		}
		for _, l := range lines[:to] {
			fmt.Fprintf(&b, "  %s\n", l)
		}
		if to < len(lines) {
			b.WriteString("  ...\n")
		}
	}
	return b.String()
}

// Apply reconstructs the new text from the old text plus the diff,
// verifying the old side matches. Used to validate that a diff is a
// faithful patch (and by property tests).
func (d Diff) Apply(old []string) ([]string, error) {
	var out []string
	pos := 0
	for _, e := range d.Edits {
		switch e.Kind {
		case Equal, Remove:
			for _, l := range e.Lines {
				if pos >= len(old) || old[pos] != l {
					return nil, fmt.Errorf("confdiff: patch mismatch at line %d: have %q, want %q", pos, lineAt(old, pos), l)
				}
				pos++
			}
			if e.Kind == Equal {
				out = append(out, e.Lines...)
			}
		case Add:
			out = append(out, e.Lines...)
		}
	}
	if pos != len(old) {
		return nil, fmt.Errorf("confdiff: patch consumed %d of %d lines", pos, len(old))
	}
	return out, nil
}

func lineAt(lines []string, i int) string {
	if i < len(lines) {
		return lines[i]
	}
	return "<EOF>"
}
