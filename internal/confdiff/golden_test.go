package confdiff

import (
	"strings"
	"testing"
)

// vendor1-shaped config fragments for the stanza tests.
const stanzaOld = `hostname psw1
!
interface ae1
 mtu 9000
 load-interval 30
 ipv6 addr 2401:db00::1/127
 no shutdown
interface et1/1
 mtu 9000
 channel-group ae1
 lacp rate fast
 no shutdown
!
router bgp 65101
 bgp log-neighbor-changes
 bgp graceful-restart
 neighbor 2401:db00::0 remote-as 65001
 neighbor 2401:db00::0 description to pr1
!
end
`

const stanzaNew = `hostname psw1
!
interface ae1
 mtu 9000
 load-interval 30
 ipv6 addr 2401:db00::1/127
 no shutdown
interface et1/1
 mtu 9000
 channel-group ae1
 lacp rate fast
 no shutdown
!
router bgp 65101
 bgp log-neighbor-changes
 bgp graceful-restart
 neighbor 2401:db00::0 remote-as 65999
 neighbor 2401:db00::0 description to pr1
!
end
`

// TestUnifiedGolden pins the exact unified rendering, including the
// stanza-header re-anchor: the elision between the hostname and the BGP
// change used to resume with " bgp graceful-restart" — an indented line
// with no clue which block it belongs to. The header ("router bgp 65101")
// must now precede the tail context.
func TestUnifiedGolden(t *testing.T) {
	d := Compute(stanzaOld, stanzaNew)
	got := d.Unified(2)
	want := "" +
		"  ...\n" +
		"  router bgp 65101\n" +
		"   bgp log-neighbor-changes\n" +
		"   bgp graceful-restart\n" +
		"-  neighbor 2401:db00::0 remote-as 65001\n" +
		"+  neighbor 2401:db00::0 remote-as 65999\n" +
		"   neighbor 2401:db00::0 description to pr1\n" +
		"  !\n" +
		"  end\n"
	if got != want {
		t.Errorf("unified output drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestUnifiedDeterministic: the same input pair renders byte-identically
// across repeated computations (no map-order or timing dependence anywhere
// in the pipeline), and the diff applies back faithfully.
func TestUnifiedDeterministic(t *testing.T) {
	first := Compute(stanzaOld, stanzaNew).Unified(3)
	for i := 0; i < 100; i++ {
		if got := Compute(stanzaOld, stanzaNew).Unified(3); got != first {
			t.Fatalf("run %d produced different output:\n%s\nvs\n%s", i, got, first)
		}
	}
	out, err := Compute(stanzaOld, stanzaNew).Apply(Lines(stanzaOld))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(out, "\n")+"\n" != stanzaNew {
		t.Error("diff does not apply back to the new config")
	}
}

// TestUnifiedHeaderNotDuplicated: when the stanza header is already inside
// the printed head context, the re-anchor must not repeat it.
func TestUnifiedHeaderNotDuplicated(t *testing.T) {
	old := "top\n a\n b\n c\nend\n"
	new := "top\n a\n b\n c\nend\nextra\n"
	u := Compute(old, new).Unified(2)
	if strings.Count(u, "  top\n") > 1 {
		t.Errorf("stanza header duplicated:\n%s", u)
	}
}

func TestHunkContaining(t *testing.T) {
	d := Compute(stanzaOld, stanzaNew)
	h := d.HunkContaining("65999", 2)
	for _, want := range []string{
		"router bgp 65101\n", // re-anchored stanza header
		"- " + " neighbor 2401:db00::0 remote-as 65001\n",
		"+ " + " neighbor 2401:db00::0 remote-as 65999\n",
	} {
		if !strings.Contains(h, want) {
			t.Errorf("hunk missing %q:\n%s", want, h)
		}
	}
	// The hunk is focused: none of the interface stanza appears.
	if strings.Contains(h, "interface ae1") {
		t.Errorf("hunk includes unrelated stanza:\n%s", h)
	}
	// Unknown needle falls back to the first change hunk.
	if fb := d.HunkContaining("no-such-line", 2); !strings.Contains(fb, "+ ") {
		t.Errorf("fallback hunk has no change lines:\n%s", fb)
	}
	// All-equal diff has no hunk.
	if h := Compute(stanzaOld, stanzaOld).HunkContaining("65999", 2); h != "" {
		t.Errorf("identical configs produced a hunk: %q", h)
	}
}
