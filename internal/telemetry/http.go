package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"time"
)

// NewHandler returns an http.Handler serving the registry's metrics
// and the tracer's recent traces:
//
//	/metrics  Prometheus text exposition format
//	/traces   JSON array of recent completed root spans
//	/healthz  JSON health report; 503 when any registered check fails
//
// Either argument may be nil: the corresponding endpoint serves an
// empty (but valid) document.
func NewHandler(reg *Registry, tracer *Tracer) http.Handler {
	return NewHandlerWith(reg, tracer, nil)
}

// ExtraHandler is one additional endpoint mounted beside /metrics —
// how subsystems (the alarm engine's /alarms and /timeline) expose
// their views on the same server.
type ExtraHandler struct {
	Pattern string
	Handler http.HandlerFunc
}

// NewHandlerWith is NewHandler plus extra endpoints.
func NewHandlerWith(reg *Registry, tracer *Tracer, extra []ExtraHandler) http.Handler {
	mux := http.NewServeMux()
	for _, e := range extra {
		mux.HandleFunc(e.Pattern, e.Handler)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		traces := tracer.Recent()
		if traces == nil {
			traces = []SpanSnapshot{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(traces)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		statuses, ok := reg.Health()
		if statuses == nil {
			statuses = []HealthStatus{}
		}
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			OK     bool           `json:"ok"`
			Checks []HealthStatus `json:"checks"`
		}{ok, statuses})
	})
	return mux
}

// Server is a running metrics endpoint.
type Server struct {
	Addr string // actual listen address (resolves ":0")
	srv  *http.Server
	ln   net.Listener
}

// ListenAndServe starts an HTTP server for the registry/tracer on
// addr (e.g. ":9090" or "127.0.0.1:0") and serves in a background
// goroutine until Close.
func ListenAndServe(addr string, reg *Registry, tracer *Tracer) (*Server, error) {
	return ListenAndServeWith(addr, reg, tracer, nil)
}

// ListenAndServeWith is ListenAndServe plus extra endpoints.
func ListenAndServeWith(addr string, reg *Registry, tracer *Tracer, extra []ExtraHandler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           NewHandlerWith(reg, tracer, extra),
		ReadHeaderTimeout: 5 * time.Second,
	}
	s := &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Close shuts the server down immediately.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
