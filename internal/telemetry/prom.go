package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every metric in the registry in the
// Prometheus text exposition format (version 0.0.4): families sorted
// by name, one # TYPE line per family, histogram expanded into
// cumulative _bucket{le=...} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	metrics := r.snapshot()

	// Group by sanitized family name so differently-labeled instances
	// of one family share a single TYPE header.
	byFamily := make(map[string][]*metric)
	var families []string
	for _, m := range metrics {
		fam := SanitizeMetricName(m.name)
		if _, ok := byFamily[fam]; !ok {
			families = append(families, fam)
		}
		byFamily[fam] = append(byFamily[fam], m)
	}
	sort.Strings(families)

	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[SanitizeMetricName(k)] = v
	}
	r.mu.Unlock()

	for _, fam := range families {
		group := byFamily[fam]
		typ := "untyped"
		switch group[0].kind {
		case kindCounter:
			typ = "counter"
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if h, ok := help[fam]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, strings.ReplaceAll(h, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ); err != nil {
			return err
		}
		for _, m := range group {
			if err := writeMetric(w, fam, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeMetric(w io.Writer, fam string, m *metric) error {
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", fam, m.labels.String(), m.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam, m.labels.String(), formatFloat(m.gauge.Value()))
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam, m.labels.String(), formatFloat(m.gfn()))
		return err
	case kindHistogram:
		s := m.hist.Snapshot()
		cum := int64(0)
		for i, b := range s.Bounds {
			cum += s.Buckets[i]
			ls := append(append(Labels{}, m.labels...), Label{"le", formatFloat(b)})
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam, ls.String(), cum); err != nil {
				return err
			}
		}
		ls := append(append(Labels{}, m.labels...), Label{"le", "+Inf"})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam, ls.String(), s.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam, m.labels.String(), formatFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam, m.labels.String(), s.Count)
		return err
	}
	return nil
}

// formatFloat renders floats the way Prometheus expects: shortest
// round-trip representation, with special-case NaN/Inf spellings.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SanitizeMetricName maps an arbitrary string onto the Prometheus
// metric-name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every
// invalid rune with '_' and prefixing '_' when the first rune is a
// digit. Empty names become "_".
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, c := range name {
		valid := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if c >= '0' && c <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(c)
			continue
		}
		if valid {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double-quote and newline per the
// text exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
