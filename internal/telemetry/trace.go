package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer hands out root spans (traces) identified by sequential
// request IDs and keeps the most recent completed roots in a ring
// buffer for the /traces endpoint. All methods are no-ops on a nil
// *Tracer, and spans started from a nil tracer are nil spans whose
// methods are likewise no-ops — instrumented code never checks.
type Tracer struct {
	mu      sync.Mutex
	ring    []*Span // completed roots, oldest first
	cap     int
	seq     atomic.Int64
	started *Counter // optional: counts roots started
}

// DefaultTraceRing is the default completed-trace ring capacity.
const DefaultTraceRing = 64

// NewTracer returns a tracer retaining the last ringSize completed
// root spans (DefaultTraceRing if ringSize <= 0).
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultTraceRing
	}
	return &Tracer{cap: ringSize}
}

// SetStartedCounter wires a counter incremented per root span started.
func (t *Tracer) SetStartedCounter(c *Counter) {
	if t == nil {
		return
	}
	t.started = c
}

// Start begins a new root span (a trace) named name with a fresh
// request ID. End() on the returned span files it into the ring.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.started.Inc()
	s := &Span{
		tracer:  t,
		Name:    name,
		TraceID: fmt.Sprintf("req-%06d", t.seq.Add(1)),
		start:   time.Now(),
	}
	return s
}

// complete files a finished root into the ring, evicting the oldest.
func (t *Tracer) complete(root *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring = append(t.ring, root)
	if len(t.ring) > t.cap {
		t.ring = t.ring[len(t.ring)-t.cap:]
	}
}

// Recent returns snapshots of the completed root spans, oldest first.
func (t *Tracer) Recent() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	roots := make([]*Span, len(t.ring))
	copy(roots, t.ring)
	t.mu.Unlock()
	out := make([]SpanSnapshot, 0, len(roots))
	for _, r := range roots {
		out = append(out, r.snapshot())
	}
	return out
}

// Last returns a snapshot of the most recently completed root span and
// whether one exists.
func (t *Tracer) Last() (SpanSnapshot, bool) {
	if t == nil {
		return SpanSnapshot{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) == 0 {
		return SpanSnapshot{}, false
	}
	return t.ring[len(t.ring)-1].snapshot(), true
}

// Span is one timed operation in a trace. Child spans nest; attributes
// are free-form key=value strings. A span is owned by the goroutine
// that created it until End; concurrent children (e.g. deploy workers)
// are safe because the child list is mutex-guarded.
type Span struct {
	tracer *Tracer
	parent *Span

	Name    string
	TraceID string

	mu       sync.Mutex
	attrs    []Label
	children []*Span
	start    time.Time
	end      time.Time
	ended    bool
}

// Child starts a nested span under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{parent: s, Name: name, TraceID: s.TraceID, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr records a key=value attribute on the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Label{key, value})
	s.mu.Unlock()
}

// SetAttrInt records an integer attribute.
func (s *Span) SetAttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, fmt.Sprintf("%d", value))
}

// End closes the span. Ending a root span files it into the tracer's
// ring; End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = time.Now()
	isRoot := s.parent == nil
	tr := s.tracer
	s.mu.Unlock()
	if isRoot && tr != nil {
		tr.complete(s)
	}
}

// Duration returns the span's elapsed time (time-to-now if unended).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.end.Sub(s.start)
	}
	return time.Since(s.start)
}

// SpanSnapshot is an exportable, JSON-friendly copy of a span tree.
type SpanSnapshot struct {
	TraceID    string            `json:"trace_id"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationNS int64             `json:"duration_ns"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []SpanSnapshot    `json:"children,omitempty"`
}

func (s *Span) snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	s.mu.Lock()
	snap := SpanSnapshot{
		TraceID: s.TraceID,
		Name:    s.Name,
		Start:   s.start,
	}
	if s.ended {
		snap.DurationNS = s.end.Sub(s.start).Nanoseconds()
	} else {
		snap.DurationNS = time.Since(s.start).Nanoseconds()
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			snap.Attrs[a.Key] = a.Value
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.snapshot())
	}
	return snap
}

// Find returns the first descendant (including self) named name via
// depth-first search, and whether one was found.
func (snap SpanSnapshot) Find(name string) (SpanSnapshot, bool) {
	if snap.Name == name {
		return snap, true
	}
	for _, c := range snap.Children {
		if got, ok := c.Find(name); ok {
			return got, true
		}
	}
	return SpanSnapshot{}, false
}

// FindAll returns every descendant (including self) named name.
func (snap SpanSnapshot) FindAll(name string) []SpanSnapshot {
	var out []SpanSnapshot
	if snap.Name == name {
		out = append(out, snap)
	}
	for _, c := range snap.Children {
		out = append(out, c.FindAll(name)...)
	}
	return out
}
