package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets in seconds: 1µs to 10s,
// roughly logarithmic, tuned for the spread between an in-memory memo
// hit (~µs) and a commit-confirmed phased deployment (~s).
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets with atomic
// per-bucket counters. Observe is lock-free; Snapshot is a consistent-
// enough read for monitoring (buckets are loaded one by one, so a
// snapshot taken mid-observation may be off by the in-flight sample —
// fine for metrics, and race-detector clean).
//
// All methods are no-ops on a nil *Histogram.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, seconds; +Inf implied
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1), // last = +Inf
	}
}

// Observe records one sample (in seconds).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records time.Since(start).
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// HistSnapshot is a point-in-time view of a histogram.
type HistSnapshot struct {
	Bounds  []float64 // upper bounds, excluding +Inf
	Buckets []int64   // per-bucket counts (len = len(Bounds)+1, last = +Inf)
	Count   int64
	Sum     float64
}

// Snapshot returns the current bucket counts, total count, and sum.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.buckets)),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the bucket containing the target rank. Returns 0 with no
// observations; the highest finite bound when the rank lands in +Inf.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Buckets {
		prev := cum
		cum += c
		if float64(cum) >= rank {
			if i >= len(s.Bounds) {
				// +Inf bucket: best effort, report the last finite bound.
				if len(s.Bounds) == 0 {
					return 0
				}
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if c == 0 {
				return hi
			}
			frac := (rank - float64(prev)) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// P50, P95 and P99 are convenience quantiles.
func (s HistSnapshot) P50() float64 { return s.Quantile(0.50) }

// P95 is the 95th percentile estimate.
func (s HistSnapshot) P95() float64 { return s.Quantile(0.95) }

// P99 is the 99th percentile estimate.
func (s HistSnapshot) P99() float64 { return s.Quantile(0.99) }
