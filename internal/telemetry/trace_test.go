package telemetry

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("pipeline")
	root.SetAttr("site", "pop1")
	gen := root.Child("generate")
	gen.SetAttrInt("devices", 6)
	time.Sleep(time.Microsecond)
	gen.End()
	dep := root.Child("deploy")
	ph := dep.Child("phase")
	time.Sleep(time.Microsecond)
	ph.End()
	dep.End()
	root.End()

	snap, ok := tr.Last()
	if !ok {
		t.Fatal("no completed trace")
	}
	if snap.Name != "pipeline" || snap.TraceID == "" {
		t.Fatalf("root = %+v", snap)
	}
	if snap.Attrs["site"] != "pop1" {
		t.Errorf("attrs = %v", snap.Attrs)
	}
	if len(snap.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(snap.Children))
	}
	g, ok := snap.Find("generate")
	if !ok || g.Attrs["devices"] != "6" {
		t.Errorf("generate span = %+v ok=%v", g, ok)
	}
	p, ok := snap.Find("phase")
	if !ok {
		t.Fatal("phase span not nested under root")
	}
	if g.DurationNS <= 0 || p.DurationNS <= 0 || snap.DurationNS <= 0 {
		t.Errorf("durations must be > 0: root=%d gen=%d phase=%d",
			snap.DurationNS, g.DurationNS, p.DurationNS)
	}
	// Child trace IDs inherit the root's request ID.
	if g.TraceID != snap.TraceID || p.TraceID != snap.TraceID {
		t.Error("children must share the root trace ID")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		s := tr.Start(fmt.Sprintf("t%d", i))
		s.End()
	}
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring = %d, want 3", len(recent))
	}
	if recent[0].Name != "t2" || recent[2].Name != "t4" {
		t.Errorf("ring order = %v", []string{recent[0].Name, recent[1].Name, recent[2].Name})
	}
	// Request IDs are sequential and unique.
	seen := map[string]bool{}
	for _, s := range recent {
		if seen[s.TraceID] {
			t.Errorf("duplicate trace id %s", s.TraceID)
		}
		seen[s.TraceID] = true
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer(4)
	s := tr.Start("once")
	s.End()
	s.End()
	if got := len(tr.Recent()); got != 1 {
		t.Fatalf("double End filed %d traces, want 1", got)
	}
	d := s.Duration()
	time.Sleep(time.Millisecond)
	if s.Duration() != d {
		t.Error("duration moved after End")
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	c := s.Child("y")
	c.SetAttr("k", "v")
	c.SetAttrInt("n", 1)
	c.End()
	s.End()
	if s.Duration() != 0 {
		t.Error("nil span duration should be 0")
	}
	if tr.Recent() != nil {
		t.Error("nil tracer Recent should be nil")
	}
	if _, ok := tr.Last(); ok {
		t.Error("nil tracer Last should report none")
	}
	tr.SetStartedCounter(nil)
}

func TestTraceJSONSnapshot(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Start("req")
	root.Child("step").End()
	root.End()
	data, err := json.Marshal(tr.Recent())
	if err != nil {
		t.Fatal(err)
	}
	var back []SpanSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Name != "req" || len(back[0].Children) != 1 {
		t.Fatalf("round-trip = %+v", back)
	}
}

// TestConcurrentChildren mirrors deploy workers: many goroutines
// attach children to one parent while another thread snapshots.
func TestConcurrentChildren(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Start("deploy")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c := root.Child(fmt.Sprintf("commit-%d-%d", i, j))
				c.SetAttr("device", fmt.Sprintf("d%d", j))
				c.End()
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			_ = root.snapshot()
		}
	}()
	wg.Wait()
	<-done
	root.End()
	snap, _ := tr.Last()
	if len(snap.Children) != 400 {
		t.Fatalf("children = %d, want 400", len(snap.Children))
	}
}

func TestTracerStartedCounter(t *testing.T) {
	tr := NewTracer(4)
	r := NewRegistry()
	c := r.Counter("robotron_traces_started_total")
	tr.SetStartedCounter(c)
	tr.Start("a").End()
	tr.Start("b").End()
	if c.Value() != 2 {
		t.Errorf("started counter = %d, want 2", c.Value())
	}
}

func TestFindAll(t *testing.T) {
	tr := NewTracer(1)
	root := tr.Start("root")
	root.Child("phase").End()
	root.Child("phase").End()
	root.End()
	snap, _ := tr.Last()
	if n := len(snap.FindAll("phase")); n != 2 {
		t.Errorf("FindAll = %d, want 2", n)
	}
}
