// Package telemetry is Robotron's dependency-free observability layer:
// a metrics registry (atomic counters, gauges, fixed-bucket latency
// histograms) plus lightweight span tracing (trace.go) and exporters
// (prom.go, http.go).
//
// Every method on every type is safe to call on a nil receiver and
// does nothing: a nil *Registry IS the disabled/no-op registry, so
// instrumented code never branches on "is telemetry on" and the
// disabled overhead is a handful of predictable nil checks.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Labels is an ordered set of label key=value pairs attached to a
// metric instance. Order is preserved for export; construct with the
// same order everywhere so identical series get identical keys.
type Labels []Label

// Label is one key=value pair.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a single-label Labels.
func L(key, value string) Labels { return Labels{{key, value}} }

// String renders labels as {k1="v1",k2="v2"} or "" when empty.
func (ls Labels) String() string {
	if len(ls) == 0 {
		return ""
	}
	s := "{"
	for i, l := range ls {
		if i > 0 {
			s += ","
		}
		s += l.Key + `="` + escapeLabelValue(l.Value) + `"`
	}
	return s + "}"
}

// Counter is a monotonically increasing int64. The zero-cost
// fast path is a single atomic add; Inc on a nil counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds delta (negative deltas are ignored: counters only go up).
func (c *Counter) Add(delta int64) {
	if c == nil || delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta via CAS.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1. Dec subtracts 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// HealthCheck probes one subsystem. It returns a human-readable
// detail string and a nil error when healthy.
type HealthCheck func() (detail string, err error)

// metricKind tags registry entries for export ordering and TYPE lines.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type metric struct {
	name   string // raw (unsanitized) family name
	labels Labels
	kind   metricKind
	help   string

	counter *Counter
	gauge   *Gauge
	gfn     func() float64
	hist    *Histogram
}

// Registry owns a set of named metrics and health checks. All methods
// are safe for concurrent use, and all are no-ops on a nil *Registry —
// nil is the canonical "telemetry disabled" registry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // key: name + labels.String()
	order   []string           // insertion order of keys (export sorts anyway)
	help    map[string]string  // family name -> help text

	healthMu sync.Mutex
	health   map[string]HealthCheck
}

// NewRegistry returns an empty live registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]*metric),
		help:    make(map[string]string),
		health:  make(map[string]HealthCheck),
	}
}

func (r *Registry) key(name string, labels Labels) string {
	return name + labels.String()
}

// Counter returns (registering on first use) the counter for
// name+labels. Returns nil — a valid no-op counter — on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := r.key(name, Labels(labels))
	if m, ok := r.metrics[k]; ok {
		return m.counter
	}
	m := &metric{name: name, labels: Labels(labels), kind: kindCounter, counter: &Counter{}}
	r.metrics[k] = m
	r.order = append(r.order, k)
	return m.counter
}

// Gauge returns (registering on first use) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := r.key(name, Labels(labels))
	if m, ok := r.metrics[k]; ok {
		return m.gauge
	}
	m := &metric{name: name, labels: Labels(labels), kind: kindGauge, gauge: &Gauge{}}
	r.metrics[k] = m
	r.order = append(r.order, k)
	return m.gauge
}

// GaugeFunc registers a callback gauge evaluated at scrape time.
// Re-registering the same name+labels replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := r.key(name, Labels(labels))
	if m, ok := r.metrics[k]; ok {
		m.gfn = fn
		m.kind = kindGaugeFunc
		return
	}
	m := &metric{name: name, labels: Labels(labels), kind: kindGaugeFunc, gfn: fn}
	r.metrics[k] = m
	r.order = append(r.order, k)
}

// Histogram returns (registering on first use) the histogram for
// name+labels, using DefBuckets.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.HistogramBuckets(name, nil, labels...)
}

// HistogramBuckets is Histogram with explicit bucket upper bounds
// (seconds, ascending). nil buckets means DefBuckets.
func (r *Registry) HistogramBuckets(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := r.key(name, Labels(labels))
	if m, ok := r.metrics[k]; ok {
		return m.hist
	}
	m := &metric{name: name, labels: Labels(labels), kind: kindHistogram, hist: newHistogram(buckets)}
	r.metrics[k] = m
	r.order = append(r.order, k)
	return m.hist
}

// Help sets the HELP text for a metric family.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// RegisterHealth adds (or replaces) a named health check surfaced by
// the /healthz endpoint.
func (r *Registry) RegisterHealth(name string, check HealthCheck) {
	if r == nil || check == nil {
		return
	}
	r.healthMu.Lock()
	defer r.healthMu.Unlock()
	r.health[name] = check
}

// HealthStatus is one health check's outcome.
type HealthStatus struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Health runs every registered check and returns statuses sorted by
// name plus overall health (true iff all checks passed).
func (r *Registry) Health() ([]HealthStatus, bool) {
	if r == nil {
		return nil, true
	}
	r.healthMu.Lock()
	checks := make(map[string]HealthCheck, len(r.health))
	for n, c := range r.health {
		checks[n] = c
	}
	r.healthMu.Unlock()
	names := make([]string, 0, len(checks))
	for n := range checks {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]HealthStatus, 0, len(names))
	ok := true
	for _, n := range names {
		st := HealthStatus{Name: n, OK: true}
		detail, err := runHealthCheck(checks[n])
		st.Detail = detail
		if err != nil {
			st.OK = false
			st.Error = err.Error()
			ok = false
		}
		out = append(out, st)
	}
	return out, ok
}

// runHealthCheck isolates panics in a single check so one broken probe
// cannot take down the health endpoint.
func runHealthCheck(c HealthCheck) (detail string, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("health check panicked: %v", p)
		}
	}()
	return c()
}

// snapshot returns a stable copy of the metric table for exporters.
func (r *Registry) snapshot() []*metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.metrics[k])
	}
	return out
}
