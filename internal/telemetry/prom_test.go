package telemetry

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"robotron_generate_total", "robotron_generate_total"},
		{"gen.device-latency ms", "gen_device_latency_ms"},
		{"9lives", "_9lives"},
		{"", "_"},
		{"a:b", "a:b"},
		{"héllo", "h_llo"},
	}
	for _, c := range cases {
		if got := SanitizeMetricName(c.in); got != c.want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("robotron_esc_total", Label{"path", `a\b"c` + "\n"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `robotron_esc_total{path="a\\b\"c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("output missing %q:\n%s", want, b.String())
	}
}

func TestPrometheusTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Help("robotron_gen_total", "derivations performed")
	r.Counter("robotron_gen_total", Label{"result", "hit"}).Add(3)
	r.Counter("robotron_gen_total", Label{"result", "miss"}).Add(2)
	r.Gauge("robotron_breaker_open").Set(1)
	r.GaugeFunc("robotron_lag", func() float64 { return 2.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP robotron_gen_total derivations performed",
		"# TYPE robotron_gen_total counter",
		`robotron_gen_total{result="hit"} 3`,
		`robotron_gen_total{result="miss"} 2`,
		"# TYPE robotron_breaker_open gauge",
		"robotron_breaker_open 1",
		"# TYPE robotron_lag gauge",
		"robotron_lag 2.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Exactly one TYPE line per family even with multiple label sets.
	if n := strings.Count(out, "# TYPE robotron_gen_total "); n != 1 {
		t.Errorf("TYPE lines for robotron_gen_total = %d, want 1", n)
	}
}

// TestHistogramBucketCumulativity checks the exported _bucket series
// are cumulative, end with +Inf == _count, and never decrease.
func TestHistogramBucketCumulativity(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("robotron_lat_seconds", []float64{0.01, 0.1, 1})
	samples := []float64{0.005, 0.005, 0.05, 0.5, 5} // 2,1,1 + 1 overflow
	for _, v := range samples {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE robotron_lat_seconds histogram") {
		t.Fatalf("missing histogram TYPE line:\n%s", out)
	}
	var cum []int64
	var count int64 = -1
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "robotron_lat_seconds_bucket{"):
			f := strings.Fields(line)
			n, err := strconv.ParseInt(f[len(f)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			cum = append(cum, n)
		case strings.HasPrefix(line, "robotron_lat_seconds_count"):
			f := strings.Fields(line)
			count, _ = strconv.ParseInt(f[len(f)-1], 10, 64)
		}
	}
	want := []int64{2, 3, 4, 5} // le=0.01, 0.1, 1, +Inf
	if fmt.Sprint(cum) != fmt.Sprint(want) {
		t.Errorf("cumulative buckets = %v, want %v\n%s", cum, want, out)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Errorf("bucket series not monotonic: %v", cum)
		}
	}
	if count != 5 {
		t.Errorf("_count = %d, want 5", count)
	}
	if cum[len(cum)-1] != count {
		t.Errorf("+Inf bucket %d != _count %d", cum[len(cum)-1], count)
	}
	if !strings.Contains(out, `le="+Inf"`) {
		t.Error("missing +Inf bucket")
	}
}

// TestConcurrentScrapeWhileWriting hammers the registry from writer
// goroutines while scraping concurrently; run under -race.
func TestConcurrentScrapeWhileWriting(t *testing.T) {
	r := NewRegistry()
	// Pre-register the families so even the first scrape sees them;
	// the writers below hammer the same instances concurrently.
	for i := 0; i < 4; i++ {
		r.Counter("robotron_scrape_total", Label{"w", fmt.Sprint(i)})
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("robotron_scrape_total", Label{"w", fmt.Sprint(i)})
			h := r.Histogram("robotron_scrape_seconds")
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.002)
					r.Gauge("robotron_scrape_gauge").Add(1)
				}
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), "robotron_scrape_total") {
			t.Fatal("scrape missing counter family")
		}
	}
	close(stop)
	wg.Wait()
}
