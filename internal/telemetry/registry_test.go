package telemetry

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("robotron_test_total")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("robotron_test_total"); again != c {
		t.Error("re-registering returned a different counter instance")
	}
	if other := r.Counter("robotron_test_total", Label{"site", "pop1"}); other == c {
		t.Error("different labels must yield a different instance")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("robotron_depth")
	g.Set(3.5)
	g.Add(1.5)
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.GaugeFunc("robotron_lag", func() float64 { return v })
	snap := r.snapshot()
	if len(snap) != 1 || snap[0].gfn() != 7 {
		t.Fatalf("gauge func not registered: %+v", snap)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter should read 0")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Inc()
	if g.Value() != 0 {
		t.Error("nil gauge should read 0")
	}
	h := r.Histogram("z")
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 {
		t.Error("nil histogram should count 0")
	}
	r.GaugeFunc("f", func() float64 { return 1 })
	r.Help("x", "help")
	r.RegisterHealth("hc", func() (string, error) { return "", nil })
	if st, ok := r.Health(); st != nil || !ok {
		t.Error("nil registry health should be empty and OK")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Error("nil registry WritePrometheus should be a no-op")
	}
}

func TestCounterZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("robotron_hot_total")
	allocs := testing.AllocsPerRun(1000, func() { c.Inc() })
	if allocs != 0 {
		t.Errorf("counter Inc allocates %v per op, want 0", allocs)
	}
	var nilC *Counter
	allocs = testing.AllocsPerRun(1000, func() { nilC.Inc() })
	if allocs != 0 {
		t.Errorf("nil counter Inc allocates %v per op, want 0", allocs)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // third bucket
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if p50 := s.P50(); p50 <= 0 || p50 > 0.01 {
		t.Errorf("p50 = %v, want within first bucket (0, 0.01]", p50)
	}
	if p99 := s.P99(); p99 <= 0.1 || p99 > 1 {
		t.Errorf("p99 = %v, want within third bucket (0.1, 1]", p99)
	}
	if s.Sum < 5.4 || s.Sum > 5.6 {
		t.Errorf("sum = %v, want ~5.45", s.Sum)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := newHistogram(nil)
	if q := h.Snapshot().P95(); q != 0 {
		t.Errorf("empty histogram p95 = %v, want 0", q)
	}
}

func TestConcurrentCountersAndHistograms(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("robotron_conc_total")
			h := r.Histogram("robotron_conc_seconds")
			g := r.Gauge("robotron_conc_gauge")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("robotron_conc_total").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("robotron_conc_seconds").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
	if got := r.Gauge("robotron_conc_gauge").Value(); got != 8000 {
		t.Errorf("gauge = %v, want 8000", got)
	}
}

func TestHealthChecks(t *testing.T) {
	r := NewRegistry()
	r.RegisterHealth("ok-check", func() (string, error) { return "fine", nil })
	statuses, ok := r.Health()
	if !ok || len(statuses) != 1 || !statuses[0].OK || statuses[0].Detail != "fine" {
		t.Fatalf("health = %+v ok=%v", statuses, ok)
	}
	r.RegisterHealth("bad-check", func() (string, error) { return "", errors.New("boom") })
	r.RegisterHealth("panic-check", func() (string, error) { panic("probe exploded") })
	statuses, ok = r.Health()
	if ok {
		t.Error("overall health should be false with a failing check")
	}
	byName := map[string]HealthStatus{}
	for _, s := range statuses {
		byName[s.Name] = s
	}
	if byName["bad-check"].OK || byName["bad-check"].Error != "boom" {
		t.Errorf("bad-check = %+v", byName["bad-check"])
	}
	if byName["panic-check"].OK || byName["panic-check"].Error == "" {
		t.Errorf("panic-check = %+v, want recovered panic error", byName["panic-check"])
	}
	if !byName["ok-check"].OK {
		t.Errorf("ok-check = %+v", byName["ok-check"])
	}
}
