package telemetry

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestHTTPEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("robotron_http_total").Add(7)
	tr := NewTracer(4)
	s := tr.Start("req")
	s.Child("inner").End()
	s.End()
	reg.RegisterHealth("always-ok", func() (string, error) { return "yes", nil })

	srv, err := ListenAndServe("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "robotron_http_total 7") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}

	code, body = get("/traces")
	if code != 200 {
		t.Fatalf("/traces = %d", code)
	}
	var traces []SpanSnapshot
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/traces not JSON: %v\n%s", err, body)
	}
	if len(traces) != 1 || traces[0].Name != "req" || len(traces[0].Children) != 1 {
		t.Errorf("/traces = %+v", traces)
	}

	code, body = get("/healthz")
	if code != 200 || !strings.Contains(body, `"ok": true`) {
		t.Errorf("/healthz = %d:\n%s", code, body)
	}

	reg.RegisterHealth("broken", func() (string, error) { return "", errors.New("down") })
	code, body = get("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("/healthz with failing check = %d, want 503\n%s", code, body)
	}
}

func TestHTTPNilRegistryAndTracer(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/traces", "/healthz"} {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s = %d, want 200 for empty telemetry", path, resp.StatusCode)
		}
	}
}
