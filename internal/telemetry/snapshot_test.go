package telemetry

import "testing"

func TestSnapshotAndValue(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total").Add(3)
	reg.Counter("c_total", L("kind", "b")...).Add(5)
	reg.Gauge("g").Set(2.5)
	reg.GaugeFunc("gf", func() float64 { return 7 })
	h := reg.Histogram("h_seconds")
	h.Observe(0.1)
	h.Observe(0.2)

	if v, ok := reg.Value("c_total"); !ok || v != 3 {
		t.Errorf("Value(c_total) = %v,%v want 3,true", v, ok)
	}
	if v, ok := reg.Value("c_total", L("kind", "b")...); !ok || v != 5 {
		t.Errorf("Value(c_total{kind=b}) = %v,%v want 5,true", v, ok)
	}
	if v, ok := reg.Value("g"); !ok || v != 2.5 {
		t.Errorf("Value(g) = %v,%v want 2.5,true", v, ok)
	}
	if v, ok := reg.Value("gf"); !ok || v != 7 {
		t.Errorf("Value(gf) = %v,%v want 7,true", v, ok)
	}
	if v, ok := reg.Value("h_seconds"); !ok || v != 2 {
		t.Errorf("Value(h_seconds) = %v,%v want observation count 2,true", v, ok)
	}
	if _, ok := reg.Value("nope"); ok {
		t.Error("Value on an unregistered metric reported ok")
	}
	if _, ok := reg.Value("c_total", L("kind", "z")...); ok {
		t.Error("Value with mismatched labels reported ok")
	}

	snap := reg.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d samples, want 5", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Key() >= snap[i].Key() {
			t.Fatalf("snapshot not sorted: %q >= %q", snap[i-1].Key(), snap[i].Key())
		}
	}
	byKey := map[string]MetricValue{}
	for _, m := range snap {
		byKey[m.Key()] = m
	}
	if m := byKey[`c_total{kind="b"}`]; m.Kind != "counter" || m.Value != 5 {
		t.Errorf("labeled counter sample = %+v", m)
	}
	if m := byKey["h_seconds"]; m.Kind != "histogram" || m.Value != 2 || m.Sum < 0.29 || m.Sum > 0.31 {
		t.Errorf("histogram sample = %+v", m)
	}
}

func TestSnapshotNilRegistry(t *testing.T) {
	var reg *Registry
	if got := reg.Snapshot(); got != nil {
		t.Errorf("nil registry snapshot = %v, want nil", got)
	}
	if _, ok := reg.Value("x"); ok {
		t.Error("nil registry Value reported ok")
	}
}
