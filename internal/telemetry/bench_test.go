package telemetry

import (
	"io"
	"testing"
	"time"
)

// BenchmarkCounterInc: the hot-path increment; must be ~0 allocs/op.
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("robotron_bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterIncNil: the disabled path — a nil receiver no-op.
func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("robotron_bench_total")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("robotron_bench_seconds")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00042)
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00042)
	}
}

func BenchmarkSpanChildEnd(b *testing.B) {
	tr := NewTracer(8)
	root := tr.Start("bench")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := root.Child("op")
		s.End()
	}
}

func BenchmarkSpanChildEndNil(b *testing.B) {
	var root *Span
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := root.Child("op")
		s.SetAttr("k", "v")
		s.End()
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 32; i++ {
		r.Counter("robotron_bench_total", Label{"i", string(rune('a' + i%26))}).Inc()
	}
	h := r.Histogram("robotron_bench_seconds")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i).Seconds())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
