package telemetry

import "sort"

// Programmatic metric access: in-process consumers (the scenario
// engine's assertions, tests, operator tooling) read metric values
// directly instead of scraping and re-parsing the Prometheus text
// endpoint. The text exporter in prom.go remains the wire format; this
// file is the API.

// MetricValue is one sample from a registry snapshot.
type MetricValue struct {
	// Name is the raw (unsanitized) metric family name.
	Name string
	// Labels are the instance's labels in registration order.
	Labels Labels
	// Kind is "counter", "gauge", or "histogram".
	Kind string
	// Value is the counter or gauge value. For histograms it is the
	// observation count (the _count series), the value thresholds are
	// asserted against.
	Value float64
	// Sum is the histogram sample sum; zero for counters and gauges.
	Sum float64
}

// Key renders the sample's identity as name{labels}.
func (m MetricValue) Key() string { return m.Name + m.Labels.String() }

// Snapshot returns every registered metric's current value, sorted by
// name then labels, so two snapshots of identical registries compare
// equal. Callback gauges are evaluated at snapshot time. Nil-safe.
func (r *Registry) Snapshot() []MetricValue {
	if r == nil {
		return nil
	}
	metrics := r.snapshot()
	out := make([]MetricValue, 0, len(metrics))
	for _, m := range metrics {
		out = append(out, metricValueOf(m))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Value looks up one metric instance by exact name and label set
// (labels must match in order, the same rule the registry itself keys
// by). The second return is false when no such instance is registered.
// Histograms report their observation count. Nil-safe.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	m, ok := r.metrics[r.key(name, Labels(labels))]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	return metricValueOf(m).Value, true
}

func metricValueOf(m *metric) MetricValue {
	out := MetricValue{Name: m.name, Labels: m.labels}
	switch m.kind {
	case kindCounter:
		out.Kind = "counter"
		out.Value = float64(m.counter.Value())
	case kindGauge:
		out.Kind = "gauge"
		out.Value = m.gauge.Value()
	case kindGaugeFunc:
		out.Kind = "gauge"
		out.Value = m.gfn()
	case kindHistogram:
		out.Kind = "histogram"
		s := m.hist.Snapshot()
		out.Value = float64(s.Count)
		out.Sum = s.Sum
	}
	return out
}
