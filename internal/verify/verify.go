// Package verify implements Robotron's pre-deploy intent verification
// gate: a network-wide invariant checker that runs between config
// generation and deployment (between §5.2 and §5.3 of SIGCOMM '16) and
// rejects a deployment with a concrete counterexample instead of letting
// the fleet discover the damage post-commit.
//
// The paper's core claim is that top-down generation prevents
// configuration error, and its §1 war stories enumerate what that error
// looks like: iBGP sessions configured on one peer only, circuits
// "misconfigured with conflicting IPs", p2p endpoints in different
// subnets, references to devices that no longer exist. Each of those
// classes is an invariant here:
//
//   - BGPSymmetry: every session is consistent on *both* endpoints —
//     session type, AS numbers, and the neighbor statements each side's
//     rendered config must carry.
//   - P2PConsistency: both ends of a point-to-point subnet exist, land on
//     adjacent devices, and no subnet is reused across circuits (checked
//     by replaying every allocation into a fresh ipam pool).
//   - Reachability: every cluster device retains an intact circuit path
//     to its aggregation layer in the derived topology.
//   - OrphanRef: every circuit endpoint, prefix binding, session prefix,
//     and interface or neighbor named in a rendered config resolves in
//     FBNet.
//
// A violation carries the offending device and, when that device's config
// is part of the checked set, the confdiff hunk of the pending change
// around the offending lines — the counterexample an engineer reviews.
package verify

import (
	"fmt"
	"net/netip"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/robotron-net/robotron/internal/confdiff"
	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/ipam"
	"github.com/robotron-net/robotron/internal/telemetry"
)

// Invariant names one checked property class.
type Invariant string

const (
	BGPSymmetry    Invariant = "bgp-symmetry"
	P2PConsistency Invariant = "p2p-consistency"
	Reachability   Invariant = "reachability"
	OrphanRef      Invariant = "orphan-ref"
)

// Invariants lists every invariant the gate checks.
var Invariants = []Invariant{BGPSymmetry, P2PConsistency, Reachability, OrphanRef}

// Violation is one invariant breach with its counterexample.
type Violation struct {
	Invariant Invariant
	// Device is the offending device's name ("" when the breach is not
	// attributable to a single device).
	Device string
	// Model/ID locate the FBNet object at fault, when there is one.
	Model string
	ID    int64
	// Detail is the human-readable counterexample.
	Detail string
	// Hunk is the confdiff hunk of the device's pending config change
	// around the offending lines; empty when the device is not in the
	// checked set or its config did not change.
	Hunk string

	// needle locates the offending lines inside the device's diff.
	needle string
}

func (v Violation) String() string {
	s := fmt.Sprintf("[%s] %s: %s", v.Invariant, v.Device, v.Detail)
	if v.Hunk != "" {
		s += "\n" + v.Hunk
	}
	return s
}

// Result is the outcome of one gate run.
type Result struct {
	Violations []Violation
	// Devices is how many rendered configs were checked.
	Devices int
	// Elapsed is the gate latency.
	Elapsed time.Duration
}

// Pass reports whether the deployment may proceed.
func (r Result) Pass() bool { return len(r.Violations) == 0 }

// ByInvariant returns violation counts per invariant.
func (r Result) ByInvariant() map[Invariant]int {
	out := map[Invariant]int{}
	for _, v := range r.Violations {
		out[v.Invariant]++
	}
	return out
}

// RejectionError is returned by the deployment pipeline when the gate
// fails; it wraps the full result so callers can render every
// counterexample.
type RejectionError struct {
	Result Result
}

func (e *RejectionError) Error() string {
	n := len(e.Result.Violations)
	first := ""
	if n > 0 {
		v := e.Result.Violations[0]
		first = fmt.Sprintf("; first: [%s] %s: %s", v.Invariant, v.Device, v.Detail)
	}
	return fmt.Sprintf("verify: deployment rejected, %d invariant violation(s)%s", n, first)
}

// Checker verifies rendered configs against FBNet intent.
type Checker struct {
	store *fbnet.Store
	// golden returns a device's current golden config (the diff baseline
	// for counterexample hunks); an error means no golden exists yet and
	// the whole config is treated as new.
	golden func(device string) (string, error)

	runs       *telemetry.Counter
	rejections *telemetry.Counter
	violations map[Invariant]*telemetry.Counter
	latency    *telemetry.Histogram
}

// NewChecker builds a gate over the store. golden may be nil when no
// config repository exists (hunks are then diffed against empty).
func NewChecker(store *fbnet.Store, golden func(device string) (string, error)) *Checker {
	return &Checker{store: store, golden: golden}
}

// Instrument registers the robotron_verify_* metrics on reg.
func (c *Checker) Instrument(reg *telemetry.Registry) {
	reg.Help("robotron_verify_runs_total", "Pre-deploy verification gate runs.")
	reg.Help("robotron_verify_rejections_total", "Gate runs that rejected a deployment.")
	reg.Help("robotron_verify_violations_total", "Invariant violations found by the gate, by invariant.")
	reg.Help("robotron_verify_seconds", "Verification gate latency in seconds.")
	c.runs = reg.Counter("robotron_verify_runs_total")
	c.rejections = reg.Counter("robotron_verify_rejections_total")
	c.violations = map[Invariant]*telemetry.Counter{}
	for _, inv := range Invariants {
		c.violations[inv] = reg.Counter("robotron_verify_violations_total",
			telemetry.L("invariant", string(inv))...)
	}
	c.latency = reg.Histogram("robotron_verify_seconds")
}

// Check verifies the rendered configs (device name → config text) against
// the whole FBNet Desired state. The configs map is the deployment's
// candidate set; invariants over FBNet alone (subnets, reachability,
// circuit endpoints) are checked network-wide regardless of the set.
func (c *Checker) Check(configs map[string]string) (Result, error) {
	start := time.Now()
	c.runs.Inc()
	net, err := c.loadNetwork()
	if err != nil {
		return Result{}, err
	}
	var vs []Violation
	for _, pass := range []func(*network, map[string]string) ([]Violation, error){
		c.checkBGPSymmetry,
		c.checkP2PConsistency,
		c.checkReachability,
		c.checkOrphanRefs,
	} {
		found, err := pass(net, configs)
		if err != nil {
			return Result{}, err
		}
		vs = append(vs, found...)
	}
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Invariant != vs[j].Invariant {
			return vs[i].Invariant < vs[j].Invariant
		}
		if vs[i].Device != vs[j].Device {
			return vs[i].Device < vs[j].Device
		}
		return vs[i].Detail < vs[j].Detail
	})
	c.attachHunks(configs, vs)
	res := Result{Violations: vs, Devices: len(configs), Elapsed: time.Since(start)}
	for _, v := range vs {
		c.violations[v.Invariant].Inc()
	}
	if !res.Pass() {
		c.rejections.Inc()
	}
	c.latency.ObserveSince(start)
	return res, nil
}

// network is the resolved object graph every pass walks.
type network struct {
	devByID   map[int64]fbnet.Object
	devByName map[string]fbnet.Object
	devIDs    []int64 // sorted for deterministic iteration
	aggDev    map[int64]int64
	aggName   map[int64]string
	pifDev    map[int64]int64
	pifName   map[int64]string
	syntax    map[int64]string // device → vendor syntax ("vendor1"/"vendor2")
}

func (n *network) devName(id int64) string {
	if d, ok := n.devByID[id]; ok {
		return d.String("name")
	}
	return fmt.Sprintf("device#%d", id)
}

func (c *Checker) loadNetwork() (*network, error) {
	net := &network{
		devByID:   map[int64]fbnet.Object{},
		devByName: map[string]fbnet.Object{},
		aggDev:    map[int64]int64{},
		aggName:   map[int64]string{},
		pifDev:    map[int64]int64{},
		pifName:   map[int64]string{},
		syntax:    map[int64]string{},
	}
	devs, err := c.store.Find("Device", nil)
	if err != nil {
		return nil, err
	}
	hwVendor := map[int64]int64{}
	if hws, err := c.store.Find("HardwareProfile", nil); err == nil {
		for _, hw := range hws {
			hwVendor[hw.ID] = hw.Ref("vendor")
		}
	}
	vendorSyntax := map[int64]string{}
	if vendors, err := c.store.Find("Vendor", nil); err == nil {
		for _, v := range vendors {
			vendorSyntax[v.ID] = v.String("syntax")
		}
	}
	for _, d := range devs {
		net.devByID[d.ID] = d
		net.devByName[d.String("name")] = d
		net.devIDs = append(net.devIDs, d.ID)
		net.syntax[d.ID] = vendorSyntax[hwVendor[d.Ref("hw_profile")]]
	}
	sort.Slice(net.devIDs, func(i, j int) bool { return net.devIDs[i] < net.devIDs[j] })
	lcDev := map[int64]int64{}
	lcs, err := c.store.Find("Linecard", nil)
	if err != nil {
		return nil, err
	}
	for _, lc := range lcs {
		lcDev[lc.ID] = lc.Ref("device")
	}
	pifs, err := c.store.Find("PhysicalInterface", nil)
	if err != nil {
		return nil, err
	}
	for _, p := range pifs {
		net.pifDev[p.ID] = lcDev[p.Ref("linecard")]
		net.pifName[p.ID] = p.String("name")
	}
	aggs, err := c.store.Find("AggregatedInterface", nil)
	if err != nil {
		return nil, err
	}
	for _, a := range aggs {
		net.aggDev[a.ID] = a.Ref("device")
		net.aggName[a.ID] = a.String("name")
	}
	return net, nil
}

// sessionPrefixModel maps a session model to its address-family prefix
// model.
func sessionPrefixModel(model string) string {
	if model == "BgpV4Session" {
		return "V4Prefix"
	}
	return "V6Prefix"
}

// localSideAddr resolves the address the *remote* peer must configure as
// its neighbor statement for this session: the local side's p2p prefix
// address (eBGP over a bundle) or its loopback (iBGP mesh) — mirroring
// exactly what configgen renders.
func (c *Checker) localSideAddr(net *network, s fbnet.Object, model string) string {
	if pfxID := s.Ref("local_prefix"); pfxID != 0 {
		pfx, err := c.store.GetByID(sessionPrefixModel(model), pfxID)
		if err != nil {
			return ""
		}
		return addrOf(pfx.String("prefix"))
	}
	local, ok := net.devByID[s.Ref("local_device")]
	if !ok {
		return ""
	}
	lo := local.String("loopback_v6")
	if model == "BgpV4Session" {
		lo = local.String("loopback_v4")
	}
	return addrOf(lo)
}

// checkBGPSymmetry verifies every session is consistent on both endpoints:
// the session-type/AS relationship holds, each device claims a single
// local AS across its internal sessions, and the rendered config of each
// endpoint in the deploy set carries the neighbor statement the other end
// expects. Two exemptions mirror legitimate design idioms: sessions to
// external peers (no remote_device, e.g. an ISP interconnect) are excluded
// from per-device AS aggregation, since operators present a different AS
// to partners; and AS claims are aggregated per session type, because
// cluster edge routers run their fabric eBGP AS while also joining the
// backbone's private-AS iBGP overlay.
func (c *Checker) checkBGPSymmetry(net *network, configs map[string]string) ([]Violation, error) {
	var vs []Violation
	type claimKey struct {
		dev   int64
		sType string
	}
	// (device, session type) → AS → number of internal sessions claiming it.
	claims := map[claimKey]map[int64]int{}
	claim := func(dev int64, sType string, as int64) {
		if as == 0 {
			return
		}
		k := claimKey{dev, sType}
		if claims[k] == nil {
			claims[k] = map[int64]int{}
		}
		claims[k][as]++
	}
	for _, model := range []string{"BgpV6Session", "BgpV4Session"} {
		sessions, err := c.store.Find(model, nil)
		if err != nil {
			return nil, err
		}
		for _, s := range sessions {
			l, r := s.Ref("local_device"), s.Ref("remote_device")
			la, ra := s.Int("local_as"), s.Int("remote_as")
			internal := l != 0 && r != 0
			if l != 0 && l == r {
				vs = append(vs, Violation{
					Invariant: BGPSymmetry, Device: net.devName(l), Model: model, ID: s.ID,
					Detail: "session peers with itself",
				})
				continue
			}
			switch s.String("session_type") {
			case "ibgp":
				if la != ra {
					vs = append(vs, Violation{
						Invariant: BGPSymmetry, Device: net.devName(l), Model: model, ID: s.ID,
						Detail: fmt.Sprintf("iBGP session with asymmetric AS numbers %d != %d", la, ra),
						needle: strconv.FormatInt(ra, 10),
					})
				}
			case "ebgp":
				if internal && la == ra {
					vs = append(vs, Violation{
						Invariant: BGPSymmetry, Device: net.devName(l), Model: model, ID: s.ID,
						Detail: fmt.Sprintf("eBGP session between %s and %s inside one AS %d",
							net.devName(l), net.devName(r), la),
						needle: strconv.FormatInt(la, 10),
					})
				}
			}
			if internal {
				claim(l, s.String("session_type"), la)
				claim(r, s.String("session_type"), ra)
			}
			// Both-endpoint config symmetry for the deploy set: the §1
			// failure class "iBGP sessions configured on only one peer".
			if internal {
				lName, rName := net.devName(l), net.devName(r)
				if cfg, ok := configs[lName]; ok {
					if raddr := s.String("remote_addr"); raddr != "" && !containsAddr(cfg, raddr) {
						vs = append(vs, Violation{
							Invariant: BGPSymmetry, Device: lName, Model: model, ID: s.ID,
							Detail: fmt.Sprintf("rendered config omits neighbor %s (session to %s)", raddr, rName),
							needle: raddr,
						})
					}
				}
				if cfg, ok := configs[rName]; ok {
					if laddr := c.localSideAddr(net, s, model); laddr != "" && !containsAddr(cfg, laddr) {
						vs = append(vs, Violation{
							Invariant: BGPSymmetry, Device: rName, Model: model, ID: s.ID,
							Detail: fmt.Sprintf("rendered config omits neighbor %s (session from %s)", laddr, lName),
							needle: laddr,
						})
					}
				}
			}
		}
	}
	for _, devID := range net.devIDs {
		for _, sType := range []string{"ebgp", "ibgp"} {
			byAS := claims[claimKey{devID, sType}]
			if len(byAS) <= 1 {
				continue
			}
			var asns []int64
			for as := range byAS {
				asns = append(asns, as)
			}
			sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
			// The minority AS is the likeliest flip; point the hunk at it.
			minority := asns[0]
			for _, as := range asns {
				if byAS[as] < byAS[minority] {
					minority = as
				}
			}
			parts := make([]string, len(asns))
			for i, as := range asns {
				parts[i] = fmt.Sprintf("%d (%d sessions)", as, byAS[as])
			}
			vs = append(vs, Violation{
				Invariant: BGPSymmetry, Device: net.devName(devID), Model: "Device", ID: devID,
				Detail: fmt.Sprintf("device claims %d different AS numbers across internal %s sessions: %s",
					len(asns), sType, strings.Join(parts, ", ")),
				needle: strconv.FormatInt(minority, 10),
			})
		}
	}
	return vs, nil
}

// checkP2PConsistency groups every p2p prefix by its subnet and verifies
// each subnet has exactly two ends on exactly two adjacent devices, then
// replays all allocations (p2p and external interconnects) into fresh
// ipam pools to reject overlap/reuse across circuits — including
// different-length overlaps a same-subnet grouping cannot see.
func (c *Checker) checkP2PConsistency(net *network, _ map[string]string) ([]Violation, error) {
	var vs []Violation
	adjacent, err := c.adjacencyPairs(net)
	if err != nil {
		return nil, err
	}
	type end struct {
		dev    int64
		addr   netip.Addr
		prefix netip.Prefix
		model  string
		id     int64
	}
	groups := map[netip.Prefix][]end{}
	var allSubnets []netip.Prefix
	subnetOwner := map[netip.Prefix]string{}
	for _, model := range []string{"V6Prefix", "V4Prefix"} {
		pfxs, err := c.store.Find(model, nil)
		if err != nil {
			return nil, err
		}
		for _, p := range pfxs {
			purpose := p.String("purpose")
			if purpose != "p2p" && purpose != "external" {
				continue
			}
			pfx, err := netip.ParsePrefix(p.String("prefix"))
			if err != nil {
				vs = append(vs, Violation{
					Invariant: P2PConsistency, Device: net.devName(net.aggDev[p.Ref("interface")]),
					Model: model, ID: p.ID,
					Detail: fmt.Sprintf("stored prefix %q does not parse: %v", p.String("prefix"), err),
				})
				continue
			}
			subnet := pfx.Masked()
			if _, seen := subnetOwner[subnet]; !seen {
				allSubnets = append(allSubnets, subnet)
				subnetOwner[subnet] = net.devName(net.aggDev[p.Ref("interface")])
			}
			if purpose != "p2p" {
				continue // external: one side is an ISP we do not model
			}
			dev := net.aggDev[p.Ref("interface")]
			groups[subnet] = append(groups[subnet], end{
				dev: dev, addr: pfx.Addr(), prefix: pfx, model: model, id: p.ID,
			})
		}
	}
	var subnets []netip.Prefix
	for s := range groups {
		subnets = append(subnets, s)
	}
	sort.Slice(subnets, func(i, j int) bool {
		if subnets[i].Addr() != subnets[j].Addr() {
			return subnets[i].Addr().Less(subnets[j].Addr())
		}
		return subnets[i].Bits() < subnets[j].Bits()
	})
	for _, subnet := range subnets {
		ends := groups[subnet]
		switch {
		case len(ends) == 1:
			e := ends[0]
			vs = append(vs, Violation{
				Invariant: P2PConsistency, Device: net.devName(e.dev), Model: e.model, ID: e.id,
				Detail: fmt.Sprintf("p2p subnet %s is addressed on only one end (%s on %s)",
					subnet, e.prefix, net.devName(e.dev)),
				needle: e.addr.String(),
			})
		case len(ends) > 2:
			names := make([]string, len(ends))
			for i, e := range ends {
				names[i] = net.devName(e.dev)
			}
			sort.Strings(names)
			vs = append(vs, Violation{
				Invariant: P2PConsistency, Device: names[0], Model: ends[0].model, ID: ends[0].id,
				Detail: fmt.Sprintf("p2p subnet %s is addressed on %d interfaces (%s); a point-to-point subnet has exactly two ends",
					subnet, len(ends), strings.Join(names, ", ")),
				needle: subnet.Addr().String(),
			})
		default: // two ends
			a, z := ends[0], ends[1]
			if a.dev == z.dev {
				vs = append(vs, Violation{
					Invariant: P2PConsistency, Device: net.devName(a.dev), Model: a.model, ID: a.id,
					Detail: fmt.Sprintf("both ends of p2p subnet %s land on device %s", subnet, net.devName(a.dev)),
					needle: a.addr.String(),
				})
			} else if !adjacent[pairKey(a.dev, z.dev)] {
				vs = append(vs, Violation{
					Invariant: P2PConsistency, Device: net.devName(a.dev), Model: a.model, ID: a.id,
					Detail: fmt.Sprintf("p2p subnet %s spans %s and %s, which share no circuit — address reuse across circuits",
						subnet, net.devName(a.dev), net.devName(z.dev)),
					needle: a.addr.String(),
				})
			}
		}
	}
	// Replay every subnet into a fresh pool per family: overlapping
	// allocations of different lengths (a /126 swallowing a /127) collide
	// here even though they group separately above.
	sort.Slice(allSubnets, func(i, j int) bool {
		if allSubnets[i].Addr() != allSubnets[j].Addr() {
			return allSubnets[i].Addr().Less(allSubnets[j].Addr())
		}
		return allSubnets[i].Bits() < allSubnets[j].Bits()
	})
	pool4, pool6 := ipam.MustPool("0.0.0.0/0"), ipam.MustPool("::/0")
	for _, subnet := range allSubnets {
		pool := pool6
		if subnet.Addr().Is4() {
			pool = pool4
		}
		if err := pool.Reserve(subnet, subnetOwner[subnet]); err != nil {
			vs = append(vs, Violation{
				Invariant: P2PConsistency, Device: subnetOwner[subnet],
				Detail: fmt.Sprintf("subnet %s overlaps another circuit's allocation: %v", subnet, err),
				needle: subnet.Addr().String(),
			})
		}
	}
	return vs, nil
}

// adjacencyPairs collects every device pair connected by a link group or
// a non-decommissioned circuit.
func (c *Checker) adjacencyPairs(net *network) (map[[2]int64]bool, error) {
	pairs := map[[2]int64]bool{}
	lgs, err := c.store.Find("LinkGroup", nil)
	if err != nil {
		return nil, err
	}
	for _, lg := range lgs {
		a, z := lg.Ref("a_device"), lg.Ref("z_device")
		if a != 0 && z != 0 {
			pairs[pairKey(a, z)] = true
		}
	}
	circuits, err := c.store.Find("Circuit", fbnet.Ne("status", "decommissioned"))
	if err != nil {
		return nil, err
	}
	for _, cir := range circuits {
		a, z := net.pifDev[cir.Ref("a_interface")], net.pifDev[cir.Ref("z_interface")]
		if a != 0 && z != 0 {
			pairs[pairKey(a, z)] = true
		}
	}
	return pairs, nil
}

func pairKey(a, z int64) [2]int64 {
	if a > z {
		a, z = z, a
	}
	return [2]int64{a, z}
}

// roleRank orders roles bottom-up; a device's "aggregation layer" is any
// same-cluster device of strictly higher rank.
var roleRank = map[string]int{
	"tor": 0, "fsw": 1, "psw": 1, "ssw": 2, "dr": 3, "pr": 3, "bb": 4,
}

// checkReachability verifies every cluster device below its cluster's top
// tier can reach a higher-rank device of the same cluster over
// non-decommissioned circuits. Backbone routers (no cluster) are exempt:
// they are legitimately built out before their circuits exist.
func (c *Checker) checkReachability(net *network, _ map[string]string) ([]Violation, error) {
	var vs []Violation
	circuits, err := c.store.Find("Circuit", fbnet.Ne("status", "decommissioned"))
	if err != nil {
		return nil, err
	}
	adj := map[int64][]int64{}
	for _, cir := range circuits {
		a, z := net.pifDev[cir.Ref("a_interface")], net.pifDev[cir.Ref("z_interface")]
		if a == 0 || z == 0 || a == z {
			continue
		}
		adj[a] = append(adj[a], z)
		adj[z] = append(adj[z], a)
	}
	clusterMax := map[int64]int{}
	for _, devID := range net.devIDs {
		d := net.devByID[devID]
		cl := d.Ref("cluster")
		if cl == 0 {
			continue
		}
		if rank, ok := roleRank[d.String("role")]; ok && rank > clusterMax[cl] {
			clusterMax[cl] = rank
		}
	}
	for _, devID := range net.devIDs {
		d := net.devByID[devID]
		cl := d.Ref("cluster")
		if cl == 0 {
			continue
		}
		rank, ok := roleRank[d.String("role")]
		if !ok || rank >= clusterMax[cl] {
			continue // top tier (or unranked role): nothing above it
		}
		if c.reaches(net, adj, devID, cl, rank) {
			continue
		}
		vs = append(vs, Violation{
			Invariant: Reachability, Device: d.String("name"), Model: "Device", ID: devID,
			Detail: fmt.Sprintf("%s (%s) has no intact circuit path to its aggregation layer",
				d.String("name"), d.String("role")),
		})
	}
	return vs, nil
}

// reaches BFSes from start and reports whether any same-cluster device of
// strictly higher rank is connected.
func (c *Checker) reaches(net *network, adj map[int64][]int64, start, cluster int64, rank int) bool {
	seen := map[int64]bool{start: true}
	queue := []int64{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if seen[next] {
				continue
			}
			seen[next] = true
			if d, ok := net.devByID[next]; ok && d.Ref("cluster") == cluster {
				if r, ok := roleRank[d.String("role")]; ok && r > rank {
					return true
				}
			}
			queue = append(queue, next)
		}
	}
	return false
}

var (
	ifaceV1Re    = regexp.MustCompile(`^interface +(\S+)$`)
	ifaceV2Re    = regexp.MustCompile(`^(?:replace: +)?((?:et|xe|ge|ae|lo)[-0-9/.]*\d\S*) +\{`)
	neighborV1Re = regexp.MustCompile(`^ neighbor +(\S+) +remote-as +\d+`)
	neighborV2Re = regexp.MustCompile(`^\s*neighbor +(\S+) +\{`)
)

// checkOrphanRefs verifies referential integrity in both directions:
// FBNet objects a deployment depends on still resolve (circuit endpoints,
// prefix→interface bindings, session local prefixes), and every interface
// or BGP neighbor named in a rendered config resolves back to FBNet
// intent.
func (c *Checker) checkOrphanRefs(net *network, configs map[string]string) ([]Violation, error) {
	var vs []Violation
	// Active circuits must keep both endpoints; a deleted interface
	// nulls the reference (SetNull) and leaves a half-connected circuit.
	circuits, err := c.store.Find("Circuit", fbnet.In("status", "provisioning", "production"))
	if err != nil {
		return nil, err
	}
	for _, cir := range circuits {
		a, z := cir.Ref("a_interface"), cir.Ref("z_interface")
		if a != 0 && z != 0 {
			continue
		}
		missingDev, missingIf := parseCircuitEnd(cir.String("circuit_id"), a == 0)
		vs = append(vs, Violation{
			Invariant: OrphanRef, Device: missingDev, Model: "Circuit", ID: cir.ID,
			Detail: fmt.Sprintf("%s circuit %s lost endpoint %s:%s — interface no longer resolves in FBNet",
				cir.String("status"), cir.String("circuit_id"), missingDev, missingIf),
			needle: missingIf,
		})
	}
	// p2p/external prefixes must stay bound to an existing interface.
	for _, model := range []string{"V6Prefix", "V4Prefix"} {
		pfxs, err := c.store.Find(model, nil)
		if err != nil {
			return nil, err
		}
		for _, p := range pfxs {
			purpose := p.String("purpose")
			if purpose != "p2p" && purpose != "external" {
				continue
			}
			aggID := p.Ref("interface")
			if aggID == 0 {
				vs = append(vs, Violation{
					Invariant: OrphanRef, Model: model, ID: p.ID,
					Detail: fmt.Sprintf("%s prefix %s is bound to no interface", purpose, p.String("prefix")),
					needle: addrOf(p.String("prefix")),
				})
			} else if net.aggDev[aggID] == 0 {
				vs = append(vs, Violation{
					Invariant: OrphanRef, Model: model, ID: p.ID,
					Detail: fmt.Sprintf("%s prefix %s is bound to interface %d which resolves to no device",
						purpose, p.String("prefix"), aggID),
					needle: addrOf(p.String("prefix")),
				})
			}
		}
	}
	// Session local prefixes must resolve onto the session's own device.
	for _, model := range []string{"BgpV6Session", "BgpV4Session"} {
		sessions, err := c.store.Find(model, nil)
		if err != nil {
			return nil, err
		}
		for _, s := range sessions {
			pfxID := s.Ref("local_prefix")
			l := s.Ref("local_device")
			if pfxID == 0 || l == 0 {
				continue
			}
			pfx, err := c.store.GetByID(sessionPrefixModel(model), pfxID)
			if err != nil {
				vs = append(vs, Violation{
					Invariant: OrphanRef, Device: net.devName(l), Model: model, ID: s.ID,
					Detail: fmt.Sprintf("session references local prefix #%d which no longer exists", pfxID),
				})
				continue
			}
			if dev := net.aggDev[pfx.Ref("interface")]; dev != l {
				vs = append(vs, Violation{
					Invariant: OrphanRef, Device: net.devName(l), Model: model, ID: s.ID,
					Detail: fmt.Sprintf("session's local prefix %s is not addressed on %s",
						pfx.String("prefix"), net.devName(l)),
					needle: addrOf(pfx.String("prefix")),
				})
			}
		}
	}
	// Rendered-config side: every named interface and neighbor resolves.
	names := make([]string, 0, len(configs))
	for name := range configs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		dev, ok := net.devByName[name]
		if !ok {
			vs = append(vs, Violation{
				Invariant: OrphanRef, Device: name,
				Detail: "config rendered for a device that does not exist in FBNet",
			})
			continue
		}
		vs = append(vs, c.scanConfig(net, dev, name, configs[name])...)
	}
	return vs, nil
}

// scanConfig cross-checks one rendered config against FBNet: interface
// stanzas must name interfaces of the device, neighbor statements must
// correspond to designed sessions.
func (c *Checker) scanConfig(net *network, dev fbnet.Object, name, cfg string) []Violation {
	var vs []Violation
	valid := map[string]bool{"lo0": true}
	for pifID, d := range net.pifDev {
		if d == dev.ID {
			valid[net.pifName[pifID]] = true
		}
	}
	for aggID, d := range net.aggDev {
		if d == dev.ID {
			valid[net.aggName[aggID]] = true
		}
	}
	expectedNbrs, err := c.expectedNeighbors(net, dev.ID)
	if err != nil {
		return vs
	}
	ifaceRe, nbrRe := ifaceV1Re, neighborV1Re
	if net.syntax[dev.ID] == "vendor2" {
		ifaceRe, nbrRe = ifaceV2Re, neighborV2Re
	}
	for _, line := range strings.Split(cfg, "\n") {
		if m := ifaceRe.FindStringSubmatch(line); m != nil {
			iface := m[1]
			if strings.HasPrefix(iface, "tunnel-te") || strings.HasPrefix(iface, "lo") {
				continue
			}
			if !valid[iface] {
				vs = append(vs, Violation{
					Invariant: OrphanRef, Device: name,
					Detail: fmt.Sprintf("config references interface %s which does not resolve in FBNet", iface),
					needle: iface,
				})
			}
		}
		if m := nbrRe.FindStringSubmatch(line); m != nil {
			addr := m[1]
			if !expectedNbrs[addr] {
				vs = append(vs, Violation{
					Invariant: OrphanRef, Device: name,
					Detail: fmt.Sprintf("config references BGP neighbor %s which matches no designed session", addr),
					needle: addr,
				})
			}
		}
	}
	return vs
}

// expectedNeighbors returns every neighbor address the device's designed
// sessions can render: remote_addr where it is the local side, and the
// far side's prefix address or loopback where it is the remote side.
func (c *Checker) expectedNeighbors(net *network, devID int64) (map[string]bool, error) {
	out := map[string]bool{}
	for _, model := range []string{"BgpV6Session", "BgpV4Session"} {
		sessions, err := c.store.Find(model, nil)
		if err != nil {
			return nil, err
		}
		for _, s := range sessions {
			if s.Ref("local_device") == devID {
				if addr := s.String("remote_addr"); addr != "" {
					out[addr] = true
				}
			}
			if s.Ref("remote_device") == devID {
				if addr := c.localSideAddr(net, s, model); addr != "" {
					out[addr] = true
				}
			}
		}
	}
	return out, nil
}

// attachHunks computes, for each device-attributed violation whose config
// is in the checked set, the diff hunk (golden → candidate) around the
// violation's needle.
func (c *Checker) attachHunks(configs map[string]string, vs []Violation) {
	diffs := map[string]confdiff.Diff{}
	for i := range vs {
		v := &vs[i]
		cfg, ok := configs[v.Device]
		if v.Device == "" || !ok {
			continue
		}
		d, cached := diffs[v.Device]
		if !cached {
			old := ""
			if c.golden != nil {
				old, _ = c.golden(v.Device) // no golden yet: diff vs empty
			}
			d = confdiff.Compute(old, cfg)
			diffs[v.Device] = d
		}
		if d.Empty() {
			continue
		}
		v.Hunk = d.HunkContaining(v.needle, 2)
	}
}

// parseCircuitEnd recovers the (device, interface) names of one circuit
// end from the circuit_id convention "aDev:aIf--zDev:zIf".
func parseCircuitEnd(circuitID string, aSide bool) (dev, iface string) {
	parts := strings.SplitN(circuitID, "--", 2)
	side := parts[0]
	if !aSide && len(parts) == 2 {
		side = parts[1]
	}
	if i := strings.IndexByte(side, ':'); i >= 0 {
		return side[:i], side[i+1:]
	}
	return side, ""
}

// addrOf strips the prefix length: "2401::1/127" -> "2401::1".
func addrOf(pfx string) string {
	if i := strings.IndexByte(pfx, '/'); i >= 0 {
		return pfx[:i]
	}
	return pfx
}

// containsAddr reports whether cfg contains addr as a whole token (not as
// a substring of a longer address: "10.0.0.1" must not match "10.0.0.10").
func containsAddr(cfg, addr string) bool {
	for i := 0; ; {
		j := strings.Index(cfg[i:], addr)
		if j < 0 {
			return false
		}
		j += i
		k := j + len(addr)
		before := j == 0 || !addrChar(cfg[j-1])
		after := k >= len(cfg) || !addrChar(cfg[k])
		if before && after {
			return true
		}
		i = j + 1
	}
}

func addrChar(b byte) bool {
	switch {
	case b >= '0' && b <= '9', b >= 'a' && b <= 'f', b >= 'A' && b <= 'F':
		return true
	case b == '.' || b == ':' || b == '/':
		return true
	}
	return false
}
