package verify

import (
	"net/netip"
	"sort"
	"strings"
	"testing"

	"github.com/robotron-net/robotron/internal/configgen"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/relstore"
	"github.com/robotron-net/robotron/internal/revctl"
	"github.com/robotron-net/robotron/internal/telemetry"
)

func testCtx(domain string) design.ChangeContext {
	return design.ChangeContext{
		EmployeeID: "e1", TicketID: "T-1", Description: "test",
		Domain: domain, NowUnix: 1_700_000_000,
	}
}

// newFleet builds a known-good POP cluster, renders its configs, commits
// them as goldens (the diff baseline a later mutation is compared to),
// and returns the pieces a mutation test needs.
func newFleet(t *testing.T) (*design.Designer, *configgen.Generator, *Checker) {
	t.Helper()
	db := relstore.NewDB("master")
	store, err := fbnet.Open(db, fbnet.NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.NewDesigner(store, design.DefaultPools())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EnsureStandardHardware(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.EnsureSite("pop1", "pop", "apac"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.BuildCluster(testCtx("pop"), "pop1", "pop1-c1", design.POPGen1()); err != nil {
		t.Fatal(err)
	}
	g, err := configgen.NewGenerator(store, revctl.NewRepo())
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range renderSite(t, g) {
		if _, err := g.CommitGolden(name, cfg, "e1", "seed golden"); err != nil {
			t.Fatal(err)
		}
	}
	return d, g, NewChecker(store, g.Golden)
}

func renderSite(t *testing.T, g *configgen.Generator) map[string]string {
	t.Helper()
	cfgs, err := g.GenerateSite("pop1")
	if err != nil {
		t.Fatal(err)
	}
	return cfgs
}

func byInvariant(vs []Violation, inv Invariant) []Violation {
	var out []Violation
	for _, v := range vs {
		if v.Invariant == inv {
			out = append(out, v)
		}
	}
	return out
}

// TestCleanFleetPasses: a freshly designed cluster has zero violations,
// and the gate records its run in telemetry.
func TestCleanFleetPasses(t *testing.T) {
	_, g, c := newFleet(t)
	reg := telemetry.NewRegistry()
	c.Instrument(reg)
	res, err := c.Check(renderSite(t, g))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass() {
		for _, v := range res.Violations {
			t.Errorf("clean fleet violation: %s", v)
		}
	}
	if res.Devices != 6 {
		t.Errorf("checked %d devices, want 6", res.Devices)
	}
	if got := reg.Counter("robotron_verify_runs_total").Value(); got != 1 {
		t.Errorf("runs counter = %d, want 1", got)
	}
	if got := reg.Counter("robotron_verify_rejections_total").Value(); got != 0 {
		t.Errorf("rejections counter = %d, want 0", got)
	}
	if got := reg.Histogram("robotron_verify_seconds").Count(); got != 1 {
		t.Errorf("latency histogram count = %d, want 1", got)
	}
}

// TestUninstrumentedCheckerWorks: the gate must not require telemetry.
func TestUninstrumentedCheckerWorks(t *testing.T) {
	_, g, c := newFleet(t)
	if res, err := c.Check(renderSite(t, g)); err != nil || !res.Pass() {
		t.Fatalf("uninstrumented check: res=%+v err=%v", res, err)
	}
}

// TestFlippedASNRejected: flip one session's remote AS and the gate must
// name the device now claiming two AS numbers, with the confdiff hunk of
// its pending change carrying the flipped value.
func TestFlippedASNRejected(t *testing.T) {
	d, g, c := newFleet(t)
	store := d.Store()
	reg := telemetry.NewRegistry()
	c.Instrument(reg)
	ss, err := store.Find("BgpV6Session", fbnet.Eq("session_type", "ebgp"))
	if err != nil || len(ss) == 0 {
		t.Fatalf("no ebgp sessions: %v", err)
	}
	s := ss[0]
	victim, err := store.GetByID("Device", s.Ref("remote_device"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Mutate(func(m *fbnet.Mutation) error {
		return m.Update("BgpV6Session", s.ID, map[string]any{"remote_as": int64(65999)})
	}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Check(renderSite(t, g))
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass() {
		t.Fatal("flipped ASN passed the gate")
	}
	sym := byInvariant(res.Violations, BGPSymmetry)
	if len(sym) == 0 {
		t.Fatalf("no %s violation; got %v", BGPSymmetry, res.Violations)
	}
	found := false
	for _, v := range sym {
		if v.Device == victim.String("name") && strings.Contains(v.Detail, "65999") {
			found = true
			if v.Hunk == "" {
				t.Errorf("violation on %s has no counterexample hunk", v.Device)
			} else if !strings.Contains(v.Hunk, "65999") {
				t.Errorf("hunk does not show the flipped AS:\n%s", v.Hunk)
			}
		}
	}
	if !found {
		t.Errorf("no violation names %s with AS 65999: %v", victim.String("name"), sym)
	}
	if got := reg.Counter("robotron_verify_rejections_total").Value(); got != 1 {
		t.Errorf("rejections counter = %d, want 1", got)
	}
	if got := reg.Counter("robotron_verify_violations_total",
		telemetry.L("invariant", string(BGPSymmetry))...).Value(); got == 0 {
		t.Error("per-invariant violation counter not incremented")
	}
}

// TestLeakedSubnetRejected: re-address one end of a p2p link into a /126
// that swallows another link's subnet. Both the one-sided original subnet
// and the cross-circuit overlap must surface, naming the device.
func TestLeakedSubnetRejected(t *testing.T) {
	d, g, c := newFleet(t)
	store := d.Store()
	pfxs, err := store.Find("V6Prefix", fbnet.Eq("purpose", "p2p"))
	if err != nil || len(pfxs) < 4 {
		t.Fatalf("p2p prefixes: %d, err %v", len(pfxs), err)
	}
	sort.Slice(pfxs, func(i, j int) bool { return pfxs[i].String("prefix") < pfxs[j].String("prefix") })
	victim := pfxs[0]
	victimPfx := netip.MustParsePrefix(victim.String("prefix"))
	// Find a prefix in a different /127 and widen the victim over it.
	var target netip.Prefix
	for _, p := range pfxs[1:] {
		cand := netip.MustParsePrefix(p.String("prefix"))
		if cand.Masked() != victimPfx.Masked() {
			target = cand
			break
		}
	}
	if !target.IsValid() {
		t.Fatal("no second p2p subnet in fleet")
	}
	leak := netip.PrefixFrom(target.Addr(), 126)
	if _, err := store.Mutate(func(m *fbnet.Mutation) error {
		return m.Update("V6Prefix", victim.ID, map[string]any{"prefix": leak.String()})
	}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Check(renderSite(t, g))
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass() {
		t.Fatal("leaked subnet passed the gate")
	}
	p2p := byInvariant(res.Violations, P2PConsistency)
	if len(p2p) == 0 {
		t.Fatalf("no %s violation; got %v", P2PConsistency, res.Violations)
	}
	overlap, hunked := false, false
	for _, v := range p2p {
		if v.Device == "" {
			t.Errorf("violation without a device: %s", v)
		}
		if strings.Contains(v.Detail, "overlaps") {
			overlap = true
		}
		if v.Hunk != "" && strings.Contains(v.Hunk, leak.Addr().String()) {
			hunked = true
		}
	}
	if !overlap {
		t.Errorf("cross-circuit overlap not reported: %v", p2p)
	}
	if !hunked {
		t.Errorf("no violation hunk shows the leaked address %s: %v", leak.Addr(), p2p)
	}
}

// TestOrphanedCircuitRejected: deleting a physical interface nulls its
// circuit endpoint; the gate must name the device and port recovered from
// the circuit id, and the hunk must show the port leaving the config.
func TestOrphanedCircuitRejected(t *testing.T) {
	d, g, c := newFleet(t)
	store := d.Store()
	circuits, err := store.Find("Circuit", fbnet.Eq("status", "provisioning"))
	if err != nil || len(circuits) == 0 {
		t.Fatalf("no provisioning circuits: %v", err)
	}
	cir := circuits[0]
	pif, err := store.GetByID("PhysicalInterface", cir.Ref("a_interface"))
	if err != nil {
		t.Fatal(err)
	}
	wantDev, wantIface := parseCircuitEnd(cir.String("circuit_id"), true)
	if wantIface != pif.String("name") {
		t.Fatalf("circuit id %q does not encode a-side port %q", cir.String("circuit_id"), pif.String("name"))
	}
	if _, err := store.Mutate(func(m *fbnet.Mutation) error {
		return m.Delete("PhysicalInterface", pif.ID)
	}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Check(renderSite(t, g))
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass() {
		t.Fatal("orphaned circuit passed the gate")
	}
	orphans := byInvariant(res.Violations, OrphanRef)
	found := false
	for _, v := range orphans {
		if v.Device == wantDev && strings.Contains(v.Detail, cir.String("circuit_id")) {
			found = true
			if v.Hunk == "" || !strings.Contains(v.Hunk, wantIface) {
				t.Errorf("hunk does not show port %s leaving the config:\n%q", wantIface, v.Hunk)
			}
		}
	}
	if !found {
		t.Errorf("no orphan violation names %s / circuit %s: %v", wantDev, cir.String("circuit_id"), orphans)
	}
}

// TestPartitionedDeviceRejected: decommissioning every circuit of one
// switch strands it below its aggregation layer.
func TestPartitionedDeviceRejected(t *testing.T) {
	d, g, c := newFleet(t)
	store := d.Store()
	victim, err := store.FindOne("Device", fbnet.Eq("name", "psw1.pop1-c1"))
	if err != nil {
		t.Fatal(err)
	}
	// Resolve each circuit's endpoint devices through pif → linecard.
	pifDev := func(pifID int64) int64 {
		p, err := store.GetByID("PhysicalInterface", pifID)
		if err != nil {
			return 0
		}
		lc, err := store.GetByID("Linecard", p.Ref("linecard"))
		if err != nil {
			return 0
		}
		return lc.Ref("device")
	}
	circuits, err := store.Find("Circuit", fbnet.Ne("status", "decommissioned"))
	if err != nil {
		t.Fatal(err)
	}
	var cut []int64
	for _, cir := range circuits {
		if pifDev(cir.Ref("a_interface")) == victim.ID || pifDev(cir.Ref("z_interface")) == victim.ID {
			cut = append(cut, cir.ID)
		}
	}
	if len(cut) == 0 {
		t.Fatal("victim had no circuits to cut")
	}
	if _, err := store.Mutate(func(m *fbnet.Mutation) error {
		for _, id := range cut {
			if err := m.Update("Circuit", id, map[string]any{"status": "decommissioned"}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Check(renderSite(t, g))
	if err != nil {
		t.Fatal(err)
	}
	reach := byInvariant(res.Violations, Reachability)
	found := false
	for _, v := range reach {
		if v.Device == "psw1.pop1-c1" && strings.Contains(v.Detail, "aggregation layer") {
			found = true
		}
	}
	if !found {
		t.Errorf("partitioned psw1 not flagged; reachability violations: %v", reach)
	}
}

// TestRejectionError renders the violation count and first counterexample.
func TestRejectionError(t *testing.T) {
	err := &RejectionError{Result: Result{Violations: []Violation{
		{Invariant: BGPSymmetry, Device: "psw1", Detail: "AS flip"},
		{Invariant: OrphanRef, Device: "pr1", Detail: "gone"},
	}}}
	msg := err.Error()
	for _, want := range []string{"2 invariant violation", "bgp-symmetry", "psw1", "AS flip"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestContainsAddrBoundaries(t *testing.T) {
	cases := []struct {
		cfg, addr string
		want      bool
	}{
		{"neighbor 10.0.0.1 remote-as 1", "10.0.0.1", true},
		{"neighbor 10.0.0.10 remote-as 1", "10.0.0.1", false},
		{"neighbor 2401:db00::10 {", "2401:db00::1", false},
		{"neighbor 2401:db00::1 {", "2401:db00::1", true},
		{"addr 10.0.0.1/31", "10.0.0.1", false}, // /31 token, not the bare addr
		{"x10.0.0.1", "10.0.0.1", true},         // 'x' is not an address char
	}
	for _, tc := range cases {
		if got := containsAddr(tc.cfg, tc.addr); got != tc.want {
			t.Errorf("containsAddr(%q, %q) = %v, want %v", tc.cfg, tc.addr, got, tc.want)
		}
	}
}

func TestParseCircuitEnd(t *testing.T) {
	dev, iface := parseCircuitEnd("pr1.c1:et1/1--psw1.c1:et2/2", true)
	if dev != "pr1.c1" || iface != "et1/1" {
		t.Errorf("a side = %s:%s", dev, iface)
	}
	dev, iface = parseCircuitEnd("pr1.c1:et1/1--psw1.c1:et2/2", false)
	if dev != "psw1.c1" || iface != "et2/2" {
		t.Errorf("z side = %s:%s", dev, iface)
	}
}
