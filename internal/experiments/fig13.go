package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/robotron-net/robotron/internal/fbnet"
)

// Fig. 13: "The number of related models associated with each FBNet
// model." The paper observes that around 60% of models have more than 5
// related models, evidence that dependencies are modeled densely enough to
// enforce data integrity. This harness measures the same distribution over
// this reproduction's model catalog. (The production catalog had 250+
// models; ours is a representative core, so the absolute count differs
// while the hub-and-spoke shape — a few heavily-connected hub models,
// a long tail — is preserved.)

// Fig13Result is the measured relatedness distribution.
type Fig13Result struct {
	PerModel   map[string]int
	Counts     []int // sorted ascending
	FracOver5  float64
	MostDense  string
	DenseCount int
}

// RunFig13 measures the model-relatedness distribution of the catalog.
func RunFig13() Fig13Result {
	reg := fbnet.NewCatalog()
	res := Fig13Result{PerModel: map[string]int{}}
	for _, name := range reg.Models() {
		n := len(reg.RelatedModels(name))
		res.PerModel[name] = n
		res.Counts = append(res.Counts, n)
		if n > res.DenseCount {
			res.DenseCount = n
			res.MostDense = name
		}
	}
	sort.Ints(res.Counts)
	over5 := 0
	for _, n := range res.Counts {
		if n > 5 {
			over5++
		}
	}
	if len(res.Counts) > 0 {
		res.FracOver5 = float64(over5) / float64(len(res.Counts))
	}
	return res
}

// Format renders the CDF as text.
func (r Fig13Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 13: number of related models associated with each FBNet model\n")
	fmt.Fprintf(&b, "models: %d   most connected: %s (%d related)\n",
		len(r.Counts), r.MostDense, r.DenseCount)
	fmt.Fprintf(&b, "CDF: %s\n", strings.Join(cdfPoints(r.Counts, []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0}), "  "))
	fmt.Fprintf(&b, "fraction of models with >5 related models: %.0f%% (paper: ~60%%)\n", 100*r.FracOver5)
	// Histogram.
	hist := map[int]int{}
	for _, n := range r.Counts {
		hist[n]++
	}
	var keys []int
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%3d related: %s (%d)\n", k, strings.Repeat("#", hist[k]), hist[k])
	}
	return b.String()
}
