package experiments

import (
	"strings"
	"testing"

	"github.com/robotron-net/robotron/internal/monitor"
)

func TestFig13Shape(t *testing.T) {
	res := RunFig13()
	if len(res.Counts) < 30 {
		t.Fatalf("catalog has only %d models", len(res.Counts))
	}
	// Shape claims: a hub model dominates; a meaningful fraction of models
	// exceeds 5 related models; the distribution has a long tail.
	if res.MostDense != "Device" {
		t.Errorf("most connected model = %s, want Device (the hub)", res.MostDense)
	}
	if res.DenseCount < 10 {
		t.Errorf("hub connectivity = %d, want >= 10", res.DenseCount)
	}
	// The production catalog (250+ models) reports ~60%; this core
	// catalog is an order of magnitude smaller and correspondingly
	// sparser, so assert the long tail exists rather than the absolute
	// fraction (see EXPERIMENTS.md).
	if res.FracOver5 < 0.04 {
		t.Errorf("fraction over 5 related = %.2f, want >= 0.04", res.FracOver5)
	}
	// Every model with relations participates: min should be >= 0, median
	// modest.
	if percentile(res.Counts, 50) < 1 {
		t.Errorf("median relatedness = %d", percentile(res.Counts, 50))
	}
	out := res.Format()
	if !strings.Contains(out, "Figure 13") || !strings.Contains(out, "Device") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestTable3Distribution(t *testing.T) {
	cfg := Table3Config{TotalMessages: 100_000, Seed: 3}
	res := RunTable3(cfg)
	if res.Total < int64(cfg.TotalMessages)-5 {
		t.Fatalf("processed %d of %d messages", res.Total, cfg.TotalMessages)
	}
	// Rule counts match the paper exactly.
	wantRules := map[monitor.Urgency]int{
		monitor.Critical: 13, monitor.Major: 214, monitor.Minor: 310,
		monitor.Warning: 103, monitor.Notice: 79,
	}
	for u, want := range wantRules {
		if res.Rules[u] != want {
			t.Errorf("%s rules = %d, want %d", u, res.Rules[u], want)
		}
	}
	// Distribution shape: ignored dominates at ~96%, warnings next.
	ignoredPct := float64(res.Counts[monitor.Ignored]) / float64(res.Total)
	if ignoredPct < 0.95 || ignoredPct > 0.975 {
		t.Errorf("ignored fraction = %.4f, want ~0.9627", ignoredPct)
	}
	warningPct := float64(res.Counts[monitor.Warning]) / float64(res.Total)
	if warningPct < 0.025 || warningPct > 0.05 {
		t.Errorf("warning fraction = %.4f, want ~0.0365", warningPct)
	}
	if res.Counts[monitor.Critical] < 1 || res.Counts[monitor.Critical] > 10 {
		t.Errorf("critical events = %d, want a handful", res.Counts[monitor.Critical])
	}
	// Ordering: warning > minor > notice > major > critical.
	c := res.Counts
	if !(c[monitor.Warning] > c[monitor.Minor] && c[monitor.Minor] > c[monitor.Notice] &&
		c[monitor.Notice] > c[monitor.Major] && c[monitor.Major] >= c[monitor.Critical]) {
		t.Errorf("level ordering broken: %v", c)
	}
	if !strings.Contains(res.Format(), "IGNORED") {
		t.Error("format output missing IGNORED row")
	}
}

func TestTable2Mix(t *testing.T) {
	cfg := Table2Config{Hours: 6, Seed: 2} // quarter day is enough for shares
	res, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"snmp": 50.94, "cli": 11.25, "rpcxml": 4.87, "thrift": 12.21, "syslog": 20.73,
	}
	for k, w := range want {
		got := res.Shares[k]
		if got < w-4 || got > w+4 {
			t.Errorf("%s share = %.2f%%, want ~%.2f%%", k, got, w)
		}
	}
	// Ordering: SNMP > syslog > thrift > cli > rpcxml.
	s := res.Shares
	if !(s["snmp"] > s["syslog"] && s["syslog"] > s["thrift"] &&
		s["thrift"] > s["cli"] && s["cli"] > s["rpcxml"]) {
		t.Errorf("mechanism ordering broken: %v", s)
	}
	if res.Stats.Errors() != 0 {
		t.Errorf("poll errors = %d", res.Stats.Errors())
	}
	if !strings.Contains(res.Format(), "SNMP (active)") {
		t.Error("format missing SNMP row")
	}
}

func TestFig14Churn(t *testing.T) {
	cfg := Fig14Config{Weeks: 52, Seed: 14}
	res := RunFig14(cfg)
	if len(res.Weekly) != 52 {
		t.Fatalf("weeks = %d", len(res.Weekly))
	}
	// The paper's core claim: models never stabilize — >50 lines/day.
	if res.MeanPerDay < 50 {
		t.Errorf("mean lines/day = %.1f, want > 50", res.MeanPerDay)
	}
	// Every week sees change.
	for w, n := range res.Weekly {
		if n == 0 {
			t.Errorf("week %d had zero churn", w)
		}
	}
	// Refactor weeks are spikes: max week well above median.
	if len(res.RefactorWeeks) > 0 {
		med := percentile(res.Weekly, 50)
		if res.MaxWeek < 2*med {
			t.Errorf("refactor spikes not visible: max %d vs median %d", res.MaxWeek, med)
		}
	}
	// Determinism.
	res2 := RunFig14(cfg)
	if res2.MeanPerDay != res.MeanPerDay {
		t.Error("fig14 is not deterministic")
	}
}

func TestFig15Distribution(t *testing.T) {
	if testing.Short() {
		t.Skip("design-change replay in -short mode")
	}
	cfg := Fig15Config{Months: 6, Seed: 15}
	res, err := RunFig15(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Changes < 50 {
		t.Fatalf("only %d changes executed", res.Changes)
	}
	popdcMed := percentile(res.Totals["popdc"], 50)
	bbMed := percentile(res.Totals["backbone"], 50)
	// Shape: POP/DC changes are much larger than backbone changes.
	if popdcMed <= 3*bbMed {
		t.Errorf("popdc median %d should dominate backbone median %d", popdcMed, bbMed)
	}
	if bbMed < 5 || bbMed > 80 {
		t.Errorf("backbone median = %d, want O(20)", bbMed)
	}
	if popdcMed < 80 {
		t.Errorf("popdc median = %d, want O(120+)", popdcMed)
	}
	// High fan-out: biggest change touches hundreds+ of objects.
	if percentile(res.Totals["popdc"], 100) < 500 {
		t.Errorf("max popdc change = %d, want >= 500", percentile(res.Totals["popdc"], 100))
	}
	// Type ordering (paper): interface > circuit > v6 prefix > v4 prefix >
	// device, within each domain's totals combined.
	combined := map[string]int{}
	for _, domain := range []string{"popdc", "backbone"} {
		for k, v := range res.PerType[domain] {
			combined[k] += v
		}
	}
	if !(combined["interface"] > combined["circuit"] &&
		combined["circuit"] > combined["v6 prefix"] &&
		combined["v6 prefix"] > combined["v4 prefix"] &&
		combined["v4 prefix"] > combined["device"]) {
		t.Errorf("type ordering broken: %v", combined)
	}
	if !strings.Contains(res.Format(), "POP and DC") {
		t.Error("format output broken")
	}
}

func TestFig16Distribution(t *testing.T) {
	if testing.Short() {
		t.Skip("config-churn replay in -short mode")
	}
	res, err := RunFig16(DefaultFig16Config())
	if err != nil {
		t.Fatal(err)
	}
	bb := res.Samples["backbone"]
	pd := res.Samples["popdc"]
	if len(bb) < 20 || len(pd) < 20 {
		t.Fatalf("samples: backbone %d, popdc %d", len(bb), len(pd))
	}
	// Core claim: backbone changes are small and frequent, POP/DC large
	// and rare. Our configs are ~3-4x leaner than production, so the
	// paper's 500-line threshold maps to ~150 lines at this scale.
	bbUnder := fracUnder(bb, 150)
	pdUnder := fracUnder(pd, 150)
	if bbUnder < 0.85 {
		t.Errorf("backbone <150-line fraction = %.2f, want >= 0.85 (paper 0.9 at 500)", bbUnder)
	}
	if pdUnder > 0.6 {
		t.Errorf("POP/DC <150-line fraction = %.2f, want <= 0.6 (paper 0.5 at 500)", pdUnder)
	}
	// Crossover: the median POP/DC device-week exceeds the 90th
	// percentile backbone device-week.
	if percentile(pd, 50) <= percentile(bb, 90) {
		t.Errorf("popdc median (%d) should exceed backbone p90 (%d)",
			percentile(pd, 50), percentile(bb, 90))
	}
	if res.AvgLinesPerChange["popdc"] <= 2*res.AvgLinesPerChange["backbone"] {
		t.Errorf("lines/change: popdc %.1f should dominate backbone %.1f",
			res.AvgLinesPerChange["popdc"], res.AvgLinesPerChange["backbone"])
	}
	if res.AvgChangesPerWeek["backbone"] <= res.AvgChangesPerWeek["popdc"] {
		t.Errorf("changes/week: backbone %.2f should exceed popdc %.2f",
			res.AvgChangesPerWeek["backbone"], res.AvgChangesPerWeek["popdc"])
	}
	if !strings.Contains(res.Format(), "backbone") {
		t.Error("format output broken")
	}
}

func TestFig12Evolution(t *testing.T) {
	if testing.Short() {
		t.Skip("architecture evolution replay in -short mode")
	}
	cfg := Fig12Config{Weeks: 52, Seed: 12}
	res, err := RunFig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := cfg.Weeks - 1
	peak := func(gen string) (int, int) {
		max, at := 0, 0
		for w, n := range res.Weekly[gen] {
			if n > max {
				max, at = n, w
			}
		}
		return max, at
	}
	g1Max, g1At := peak("pop-gen1")
	if g1Max < 3 {
		t.Errorf("pop-gen1 never grew (max %d)", g1Max)
	}
	// Gen1 shrinks after its peak as merges proceed.
	if res.Weekly["pop-gen1"][last] >= g1Max {
		t.Errorf("pop-gen1 did not shrink: peak %d, final %d", g1Max, res.Weekly["pop-gen1"][last])
	}
	// Gen2 appears only after the merge window starts and ends above gen1.
	if res.Weekly["pop-gen2"][0] != 0 {
		t.Error("pop-gen2 existed at week 0")
	}
	if res.Weekly["pop-gen2"][last] <= res.Weekly["pop-gen1"][last] {
		t.Errorf("pop-gen2 (%d) should finish above pop-gen1 (%d)",
			res.Weekly["pop-gen2"][last], res.Weekly["pop-gen1"][last])
	}
	// DC generations coexist mid-window.
	mid := cfg.Weeks * 3 / 5
	if res.Weekly["dc-gen1"][mid] == 0 || res.Weekly["dc-gen2"][mid] == 0 || res.Weekly["dc-gen3"][mid] == 0 {
		t.Errorf("DC generations do not coexist at week %d: g1=%d g2=%d g3=%d", mid,
			res.Weekly["dc-gen1"][mid], res.Weekly["dc-gen2"][mid], res.Weekly["dc-gen3"][mid])
	}
	// Gen3 appears strictly after the window opens.
	for w := 0; w < cfg.Weeks/2-1; w++ {
		if res.Weekly["dc-gen3"][w] != 0 {
			t.Errorf("dc-gen3 existed at week %d, before its introduction", w)
			break
		}
	}
	// Gen1 DC count declines.
	if res.Weekly["dc-gen1"][last] >= res.Weekly["dc-gen1"][0] {
		t.Errorf("dc-gen1 did not decline: %d -> %d", res.Weekly["dc-gen1"][0], res.Weekly["dc-gen1"][last])
	}
	_ = g1At
	if !strings.Contains(res.Format(), "pop-gen2") {
		t.Error("format output broken")
	}
}

// TestSeedRobustness: the shape conclusions must hold across seeds, not
// just the default — medians ordering for Fig. 15 and the distribution
// orderings for Table 3.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed replay in -short mode")
	}
	for _, seed := range []int64{1, 7, 99} {
		res, err := RunFig15(Fig15Config{Months: 3, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		popdc := percentile(res.Totals["popdc"], 50)
		bb := percentile(res.Totals["backbone"], 50)
		if popdc <= bb {
			t.Errorf("seed %d: popdc median %d <= backbone median %d", seed, popdc, bb)
		}
		combined := map[string]int{}
		for _, domain := range []string{"popdc", "backbone"} {
			for k, v := range res.PerType[domain] {
				combined[k] += v
			}
		}
		if combined["interface"] <= combined["circuit"] || combined["v6 prefix"] <= combined["v4 prefix"] {
			t.Errorf("seed %d: type ordering broken: %v", seed, combined)
		}

		t3 := RunTable3(Table3Config{TotalMessages: 50_000, Seed: seed})
		ignored := float64(t3.Counts[monitor.Ignored]) / float64(t3.Total)
		if ignored < 0.95 {
			t.Errorf("seed %d: ignored fraction %.3f", seed, ignored)
		}
	}
}
