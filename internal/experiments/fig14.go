package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/robotron-net/robotron/internal/confdiff"
)

// Fig. 14: Desired model changes — "the total number of lines changed per
// week over a 3-year period for the Desired model group", measured from
// the version-control history of the models.py files. The paper's
// observation: models never stabilize — more than 50 lines change on
// average per day, driven by new component types, new attributes, and
// logic changes, with occasional large refactorings.
//
// This harness simulates that evolution: a synthetic model codebase
// (rendered to Django-model-like source) mutates weekly under the paper's
// three change classes plus rare refactors, and the weekly diff is
// measured with the real diff engine — the same methodology the paper
// applies to its repository history.

// Fig14Config controls the simulation.
type Fig14Config struct {
	Weeks int
	Seed  int64
}

// DefaultFig14Config simulates the paper's 3-year window.
func DefaultFig14Config() Fig14Config { return Fig14Config{Weeks: 156, Seed: 14} }

// Fig14Result is the weekly lines-changed series.
type Fig14Result struct {
	Weekly        []int
	MeanPerDay    float64
	MaxWeek       int
	RefactorWeeks []int
}

// synthModel is one model in the simulated codebase.
type synthModel struct {
	name   string
	fields []synthField
}

type synthField struct {
	name string
	kind string // "CharField", "IntegerField", "BooleanField", "ForeignKey(X)"
	opts string // validators / related_name etc., the "logic" part
}

// renderModel emits one model as a Django-like source stanza. The weekly
// churn is measured as the sum of per-stanza diffs — equivalent to a
// whole-repository diff because models never interleave, but cheap enough
// to run for a simulated three years.
func renderModel(m synthModel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "class %s(Model):\n", m.name)
	for _, f := range m.fields {
		fmt.Fprintf(&b, "    %s = models.%s(%s)\n", f.name, f.kind, f.opts)
	}
	b.WriteString("    class Meta:\n        app_label = 'fbnet'\n\n")
	return b.String()
}

func renderAll(models []synthModel) map[string]string {
	out := make(map[string]string, len(models))
	for _, m := range models {
		out[m.name] = renderModel(m)
	}
	return out
}

// RunFig14 simulates the model-evolution workload.
func RunFig14(cfg Fig14Config) Fig14Result {
	r := rng(cfg.Seed)
	kinds := []string{"CharField", "IntegerField", "BooleanField"}
	nextModel := 0
	newModel := func() synthModel {
		nextModel++
		m := synthModel{name: fmt.Sprintf("Component%03d", nextModel)}
		nFields := 3 + r.Intn(8)
		for i := 0; i < nFields; i++ {
			m.fields = append(m.fields, synthField{
				name: fmt.Sprintf("attr_%d", i),
				kind: kinds[r.Intn(len(kinds))],
				opts: "max_length=64",
			})
		}
		return m
	}
	// Seed codebase: an established catalog.
	var models []synthModel
	for i := 0; i < 60; i++ {
		models = append(models, newModel())
	}
	prev := renderAll(models)
	var res Fig14Result
	for week := 0; week < cfg.Weeks; week++ {
		// New component types: a couple per week across the teams (§6.1:
		// new components create new models).
		for n := 1 + r.Intn(3); n > 0; n-- {
			models = append(models, newModel())
		}
		// New attributes: "new attributes are constantly added to existing
		// models as needed".
		nAttrs := 30 + r.Intn(30)
		for i := 0; i < nAttrs; i++ {
			m := &models[r.Intn(len(models))]
			m.fields = append(m.fields, synthField{
				name: fmt.Sprintf("attr_%d", len(m.fields)),
				kind: kinds[r.Intn(len(kinds))],
				opts: "null=True",
			})
		}
		// Logic changes: derivation logic / validators evolve in place
		// (each in-place edit diffs as one removed + one added line).
		nLogic := 130 + r.Intn(100)
		for i := 0; i < nLogic; i++ {
			m := &models[r.Intn(len(models))]
			f := &m.fields[r.Intn(len(m.fields))]
			f.opts = fmt.Sprintf("max_length=%d, validator=v%d", 32+r.Intn(8)*16, r.Intn(100))
		}
		// Occasional large refactoring (~4%/week): rename a batch of
		// fields across many models.
		if r.Float64() < 0.04 {
			res.RefactorWeeks = append(res.RefactorWeeks, week)
			suffix := fmt.Sprintf("_v%d", r.Intn(10))
			for mi := range models {
				if r.Float64() < 0.4 {
					for fi := range models[mi].fields {
						if r.Float64() < 0.5 {
							models[mi].fields[fi].name += suffix
						}
					}
				}
			}
		}
		cur := renderAll(models)
		changed := 0
		for name, curSrc := range cur {
			prevSrc, existed := prev[name]
			if !existed {
				changed += confdiff.Compute("", curSrc).Stats(false).Changed()
				continue
			}
			if prevSrc != curSrc {
				changed += confdiff.Compute(prevSrc, curSrc).Stats(false).Changed()
			}
		}
		res.Weekly = append(res.Weekly, changed)
		if changed > res.MaxWeek {
			res.MaxWeek = changed
		}
		prev = cur
	}
	var total int
	for _, w := range res.Weekly {
		total += w
	}
	res.MeanPerDay = float64(total) / float64(cfg.Weeks*7)
	return res
}

// Format renders the weekly series summary.
func (r Fig14Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 14: Desired model lines changed per week\n")
	fmt.Fprintf(&b, "weeks: %d   mean lines/day: %.1f (paper: >50)   max week: %d\n",
		len(r.Weekly), r.MeanPerDay, r.MaxWeek)
	fmt.Fprintf(&b, "weekly CDF: %s\n", strings.Join(cdfPoints(r.Weekly, []float64{0.1, 0.5, 0.9, 1.0}), "  "))
	fmt.Fprintf(&b, "refactor spikes at weeks %v\n", r.RefactorWeeks)
	// Sparkline-style histogram by quarter.
	per := 13
	for q := 0; q*per < len(r.Weekly); q++ {
		end := (q + 1) * per
		if end > len(r.Weekly) {
			end = len(r.Weekly)
		}
		seg := r.Weekly[q*per : end]
		s := append([]int(nil), seg...)
		sort.Ints(s)
		fmt.Fprintf(&b, "quarter %2d: median %4d lines/week, max %5d\n", q+1, s[len(s)/2], s[len(s)-1])
	}
	return b.String()
}
