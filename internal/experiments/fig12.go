package experiments

import (
	"fmt"
	"strings"

	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/relstore"
)

// Fig. 12: "Evolution of cluster architectures" over two years. The
// paper's timeline: Gen1 POP clusters grow rapidly, then merge into
// bigger Gen2 POP clusters (in-place upgrades, since POPs are space/power
// constrained); DC clusters span three coexisting generations, with
// architectural shifts happening by building new-generation clusters and
// decommissioning old ones, and the newest generation IPv6-only.
//
// This harness replays that build/merge/decommission schedule through the
// real design engine and reads the weekly per-generation production
// cluster counts out of FBNet.

// Fig12Config controls the simulated horizon.
type Fig12Config struct {
	Weeks int
	Seed  int64
}

// DefaultFig12Config simulates the paper's two-year window.
func DefaultFig12Config() Fig12Config { return Fig12Config{Weeks: 104, Seed: 12} }

// Fig12Result holds weekly cluster counts per architecture generation.
type Fig12Result struct {
	Generations []string
	Weekly      map[string][]int // generation -> count per week
	Weeks       int
}

// RunFig12 replays the architecture evolution.
func RunFig12(cfg Fig12Config) (Fig12Result, error) {
	r := rng(cfg.Seed)
	db := relstore.NewDB("fig12")
	store, err := fbnet.Open(db, fbnet.NewCatalog())
	if err != nil {
		return Fig12Result{}, err
	}
	d, err := design.NewDesigner(store, design.DefaultPools())
	if err != nil {
		return Fig12Result{}, err
	}
	if err := d.EnsureStandardHardware(); err != nil {
		return Fig12Result{}, err
	}
	if _, err := d.EnsureSite("pops", "pop", "global"); err != nil {
		return Fig12Result{}, err
	}
	if _, err := d.EnsureSite("dcs", "dc", "global"); err != nil {
		return Fig12Result{}, err
	}
	ctx := func(domain string, week, n int) design.ChangeContext {
		return design.ChangeContext{
			EmployeeID: "exp", TicketID: fmt.Sprintf("T12-%d-%d", week, n),
			Description: "fig12 evolution", Domain: domain,
			NowUnix: 1_600_000_000 + int64(week)*7*86400,
		}
	}
	type cl struct {
		name string
		gen  string
	}
	var pops, dcs []cl
	clusterN := 0
	build := func(week int, site, domain string, tpl design.TopologyTemplate) (cl, error) {
		clusterN++
		name := fmt.Sprintf("%s-c%d", site, clusterN)
		_, err := d.BuildCluster(ctx(domain, week, clusterN), site, name, tpl)
		if err != nil {
			return cl{}, err
		}
		if _, err := store.Mutate(func(m *fbnet.Mutation) error {
			c, err := m.FindOne("Cluster", fbnet.Eq("name", name))
			if err != nil {
				return err
			}
			return m.Update("Cluster", c.ID, map[string]any{"status": "production"})
		}); err != nil {
			return cl{}, err
		}
		return cl{name: name, gen: tpl.Generation}, nil
	}
	decom := func(week int, c cl, domain string) error {
		_, err := d.DecommissionCluster(ctx(domain, week, clusterN), c.name)
		return err
	}
	removeAt := func(xs []cl, i int) []cl { return append(xs[:i], xs[i+1:]...) }

	gens := []string{"pop-gen1", "pop-gen2", "dc-gen1", "dc-gen2", "dc-gen3"}
	res := Fig12Result{Generations: gens, Weekly: map[string][]int{}, Weeks: cfg.Weeks}

	// Starting estate: a few Gen1 DCs predate the window.
	for i := 0; i < 4; i++ {
		c, err := build(0, "dcs", "dc", design.DCGen1(2))
		if err != nil {
			return Fig12Result{}, err
		}
		dcs = append(dcs, c)
	}
	for week := 0; week < cfg.Weeks; week++ {
		frac := float64(week) / float64(cfg.Weeks)
		// POP Gen1: rapid growth in the first third.
		if frac < 0.33 && r.Float64() < 0.5 {
			c, err := build(week, "pops", "pop", design.POPGen1())
			if err != nil {
				return Fig12Result{}, err
			}
			pops = append(pops, c)
		}
		// POP merge window: Gen1 clusters merge pairwise into Gen2
		// in place ("architectural upgrades were completed in-place due
		// to space/power limitation in POPs").
		if frac >= 0.3 && frac < 0.65 {
			var gen1Idx []int
			for i, c := range pops {
				if c.gen == "pop-gen1" {
					gen1Idx = append(gen1Idx, i)
				}
			}
			if len(gen1Idx) >= 2 && r.Float64() < 0.6 {
				// Decommission two Gen1s, build one Gen2.
				a, b := gen1Idx[0], gen1Idx[1]
				if err := decom(week, pops[b], "pop"); err != nil {
					return Fig12Result{}, err
				}
				if err := decom(week, pops[a], "pop"); err != nil {
					return Fig12Result{}, err
				}
				pops = removeAt(pops, b)
				pops = removeAt(pops, a)
				c, err := build(week, "pops", "pop", design.POPGen2())
				if err != nil {
					return Fig12Result{}, err
				}
				pops = append(pops, c)
			}
		}
		// POP Gen2 organic growth late.
		if frac >= 0.65 && r.Float64() < 0.25 {
			c, err := build(week, "pops", "pop", design.POPGen2())
			if err != nil {
				return Fig12Result{}, err
			}
			pops = append(pops, c)
		}
		// DC Gen2 builds through the first two thirds.
		if frac < 0.66 && r.Float64() < 0.25 {
			c, err := build(week, "dcs", "dc", design.DCGen2(2))
			if err != nil {
				return Fig12Result{}, err
			}
			dcs = append(dcs, c)
		}
		// DC Gen3 (v6-only) from the halfway point.
		if frac >= 0.5 && r.Float64() < 0.3 {
			c, err := build(week, "dcs", "dc", design.DCGen3(2))
			if err != nil {
				return Fig12Result{}, err
			}
			dcs = append(dcs, c)
		}
		// DC Gen1 decommissions ("architectural shifts for DC clusters
		// took place by adding new and decommissioning previous
		// generations").
		if frac >= 0.25 && r.Float64() < 0.15 {
			for i, c := range dcs {
				if c.gen == "dc-gen1" {
					if err := decom(week, c, "dc"); err != nil {
						return Fig12Result{}, err
					}
					dcs = removeAt(dcs, i)
					break
				}
			}
		}
		// Count production clusters by generation from FBNet.
		clusters, err := store.Find("Cluster", fbnet.Eq("status", "production"))
		if err != nil {
			return Fig12Result{}, err
		}
		counts := map[string]int{}
		for _, c := range clusters {
			counts[c.String("generation")]++
		}
		for _, g := range gens {
			res.Weekly[g] = append(res.Weekly[g], counts[g])
		}
	}
	return res, nil
}

// Format renders the timeline as a text chart.
func (r Fig12Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 12: evolution of cluster architectures (production clusters per week)\n")
	fmt.Fprintf(&b, "%-10s", "week")
	for _, g := range r.Generations {
		fmt.Fprintf(&b, "%10s", g)
	}
	b.WriteByte('\n')
	step := r.Weeks / 13
	if step == 0 {
		step = 1
	}
	for w := 0; w < r.Weeks; w += step {
		fmt.Fprintf(&b, "%-10d", w)
		for _, g := range r.Generations {
			fmt.Fprintf(&b, "%10d", r.Weekly[g][w])
		}
		b.WriteByte('\n')
	}
	last := r.Weeks - 1
	fmt.Fprintf(&b, "%-10d", last)
	for _, g := range r.Generations {
		fmt.Fprintf(&b, "%10d", r.Weekly[g][last])
	}
	b.WriteString("\n(paper shape: pop-gen1 peaks then merges into pop-gen2; dc generations coexist;\n dc-gen3 is v6-only and appears late; dc-gen1 retires via decommissioning)\n")
	return b.String()
}
