package experiments

import (
	"fmt"
	"strings"

	"github.com/robotron-net/robotron/internal/confdiff"
	"github.com/robotron-net/robotron/internal/core"
	"github.com/robotron-net/robotron/internal/design"
)

// Fig. 16: "weekly configuration changes during a 3-month period. Each
// sample represents total updated config lines (changed/added/removed,
// excluding comments) on a device in a particular week." The paper's
// findings: 90% of backbone device samples change <500 lines/week versus
// only 50% for POP/DC samples; backbone devices receive many small changes
// (157.38 lines over 12.46 changes per week on average) while POP/DC
// devices receive few large ones (738.09 lines over 2.53 changes), because
// backbone devices are continuously live-reconfigured while POP/DC devices
// are configured from a clean state.
//
// This harness replays 13 weeks of design changes through the real design
// engine and config generator, diffing every affected device's generated
// config after every change.

// Fig16Config controls the workload.
type Fig16Config struct {
	Weeks int
	Seed  int64
}

// DefaultFig16Config replays the paper's 3-month window.
func DefaultFig16Config() Fig16Config { return Fig16Config{Weeks: 13, Seed: 16} }

// Fig16Result carries the per-device-week samples.
type Fig16Result struct {
	// Samples[domain] = changed lines per device-week (nonzero only).
	Samples map[string][]int
	// AvgLinesPerChange / AvgChangesPerWeek per domain.
	AvgLinesPerChange map[string]float64
	AvgChangesPerWeek map[string]float64
}

// RunFig16 executes the 3-month workload.
func RunFig16(cfg Fig16Config) (Fig16Result, error) {
	rs := rng(cfg.Seed)
	r, err := core.New(core.Options{})
	if err != nil {
		return Fig16Result{}, err
	}
	for _, s := range []struct{ name, kind, region string }{
		{"pop1", "pop", "apac"}, {"dc1", "dc", "nam"}, {"bb-east", "backbone", "nam"},
	} {
		if _, err := r.Designer.EnsureSite(s.name, s.kind, s.region); err != nil {
			return Fig16Result{}, err
		}
	}
	ctx := func(domain string, week int) design.ChangeContext {
		return design.ChangeContext{
			EmployeeID: "exp", TicketID: fmt.Sprintf("T-%d", week),
			Description: "fig16 workload", Domain: domain,
			NowUnix: 1_700_000_000 + int64(week)*7*86400,
		}
	}

	// The running config cache: device -> last generated config.
	cache := map[string]string{}
	// weekly[device] accumulates changed lines this week;
	// changes[device] counts changes that touched it this week.
	weekly := map[string]int{}
	changes := map[string]int{}
	domainOf := map[string]string{}

	// refresh regenerates the named devices' configs and accounts diffs.
	refresh := func(devices []string) error {
		for _, name := range devices {
			cfg, err := r.Generator.GenerateDevice(name)
			if err != nil {
				return err
			}
			old, existed := cache[name]
			if existed && old == cfg {
				continue
			}
			n := confdiff.Compute(old, cfg).Stats(true).Changed()
			if n > 0 {
				weekly[name] += n
				changes[name]++
			}
			cache[name] = cfg
		}
		return nil
	}

	var bbRouters []string
	addRouter := func(week int) error {
		name := fmt.Sprintf("bb%d", len(bbRouters)+1)
		if _, err := r.Designer.AddBackboneRouter(ctx("backbone", week), name, "bb-east", "Backbone_Vendor2",
			[]string{"bb", "pr", "dr"}[rs.Intn(3)]); err != nil {
			return err
		}
		bbRouters = append(bbRouters, name)
		domainOf[name] = "backbone"
		return refresh(bbRouters) // mesh change touches every router
	}
	// Initial backbone.
	for i := 0; i < 8; i++ {
		if err := addRouter(0); err != nil {
			return Fig16Result{}, err
		}
	}
	// Week 0 initial state is the baseline: clear accumulators.
	weekly = map[string]int{}
	changes = map[string]int{}

	res := Fig16Result{
		Samples:           map[string][]int{"popdc": {}, "backbone": {}},
		AvgLinesPerChange: map[string]float64{},
		AvgChangesPerWeek: map[string]float64{},
	}
	totalLines := map[string]int{}
	totalChanges := map[string]int{}
	deviceWeeks := map[string]int{}
	clusterN := 0
	var dcClusters []clusterInfo

	for week := 1; week <= cfg.Weeks; week++ {
		// Backbone: many small live changes ("operating backbone devices
		// requires continuous live re-configurations").
		nOps := 14 + rs.Intn(10)
		for op := 0; op < nOps; op++ {
			switch rs.Intn(4) {
			case 0:
				if len(bbRouters) < 16 {
					if err := addRouter(week); err != nil {
						return Fig16Result{}, err
					}
				}
			default:
				a, z := pickPair(rs, bbRouters)
				if _, err := r.Designer.AddBackboneCircuit(ctx("backbone", week), a, z, 1); err != nil {
					continue
				}
				if err := refresh([]string{a, z}); err != nil {
					return Fig16Result{}, err
				}
			}
		}
		// POP/DC: a large change roughly every other week — a new cluster
		// built from a clean state, occasionally a rack addition.
		if week%2 == 0 {
			clusterN++
			var tpl design.TopologyTemplate
			site, domain := "pop1", "pop"
			if rs.Intn(2) == 0 {
				tpl = design.POPGen2()
			} else {
				tpl, site, domain = design.DCGen2(6+rs.Intn(4)), "dc1", "dc"
			}
			name := fmt.Sprintf("%s-c%d", site, clusterN)
			build, err := r.Designer.BuildCluster(ctx(domain, week), site, name, tpl)
			if err != nil {
				return Fig16Result{}, err
			}
			for _, dn := range build.DeviceNames {
				domainOf[dn] = "popdc"
			}
			if err := refresh(build.DeviceNames); err != nil {
				return Fig16Result{}, err
			}
			if tpl.Racks > 0 {
				dcClusters = append(dcClusters, clusterInfo{name: name, tpl: tpl})
			}
		}
		if len(dcClusters) > 0 && rs.Float64() < 0.5 {
			ci := dcClusters[rs.Intn(len(dcClusters))]
			if _, err := r.Designer.AddRack(ctx("dc", week), ci.name, ci.tpl.RackTORProfle,
				ci.tpl.UplinkRole, ci.tpl.UplinksPerTOR, ci.tpl.Addressing.V6, ci.tpl.Addressing.V4); err == nil {
				// Refresh the whole cluster: uplink fsws and the new TOR.
				devs, err := r.DevicesOfSite("dc1")
				if err != nil {
					return Fig16Result{}, err
				}
				if err := refresh(devs); err != nil {
					return Fig16Result{}, err
				}
				for _, dn := range devs {
					if _, ok := domainOf[dn]; !ok {
						domainOf[dn] = "popdc"
					}
				}
			}
		}
		// Close the week: samples are per device-week.
		for dev, lines := range weekly {
			domain := domainOf[dev]
			res.Samples[domain] = append(res.Samples[domain], lines)
			totalLines[domain] += lines
			totalChanges[domain] += changes[dev]
			deviceWeeks[domain]++
		}
		weekly = map[string]int{}
		changes = map[string]int{}
	}
	for _, domain := range []string{"popdc", "backbone"} {
		if totalChanges[domain] > 0 {
			res.AvgLinesPerChange[domain] = float64(totalLines[domain]) / float64(totalChanges[domain])
		}
		if deviceWeeks[domain] > 0 {
			res.AvgChangesPerWeek[domain] = float64(totalChanges[domain]) / float64(deviceWeeks[domain])
		}
	}
	return res, nil
}

// FracUnder returns the fraction of samples below limit.
func fracUnder(xs []int, limit int) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < limit {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Format renders the distribution in the paper's terms.
func (r Fig16Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 16: weekly config changes (updated lines per device-week)\n")
	for _, domain := range []string{"backbone", "popdc"} {
		xs := r.Samples[domain]
		label := "backbone"
		if domain == "popdc" {
			label = "POP/DC  "
		}
		fmt.Fprintf(&b, "%s: %4d samples  %s  <500 lines: %.0f%%  <150 lines: %.0f%%\n",
			label, len(xs),
			strings.Join(cdfPoints(xs, []float64{0.1, 0.5, 0.9, 1.0}), "  "),
			100*fracUnder(xs, 500), 100*fracUnder(xs, 150))
		fmt.Fprintf(&b, "          avg %.1f lines/change over %.2f changes/device-week\n",
			r.AvgLinesPerChange[domain], r.AvgChangesPerWeek[domain])
	}
	b.WriteString("(paper: backbone 90% <500 lines, 157.38 lines x 12.46 changes;\n" +
		"        POP/DC 50% <500 lines, 738.09 lines x 2.53 changes;\n" +
		"        our synthetic configs are ~3-4x leaner than production, so the\n" +
		"        scale-equivalent threshold is ~150 lines)\n")
	return b.String()
}
