package experiments

import (
	"fmt"
	"time"

	"github.com/robotron-net/robotron/internal/monitor"
	"github.com/robotron-net/robotron/internal/netsim"
)

// Table 3: syslog messages of various urgency levels in a 24-hour period.
// The paper's distribution (49.34M messages): CRITICAL 2, MAJOR 1.35K,
// MINOR 32K, WARNING 1.8M, NOTICE 6.68K, IGNORED 47.5M (96.27%), over a
// rule set of 13/214/310/103/79 rules per level. This harness builds a
// rule set with the paper's per-level rule counts, generates a scaled
// message stream with the paper's level mix, and pushes every message
// through the real classifier.

// Table3Config controls the scale.
type Table3Config struct {
	TotalMessages int
	Seed          int64
}

// DefaultTable3Config processes a 1/100-scale day.
func DefaultTable3Config() Table3Config {
	return Table3Config{TotalMessages: 493_400, Seed: 3}
}

// Table3Result reports classifier statistics after the run.
type Table3Result struct {
	Classifier *monitor.Classifier
	Counts     map[monitor.Urgency]int64
	Rules      map[monitor.Urgency]int
	Total      int64
}

// paperTable3 is the production distribution being reproduced.
var paperTable3 = []struct {
	urgency monitor.Urgency
	events  float64 // fraction of total
	rules   int
}{
	{monitor.Critical, 2.0 / 49_340_000, 13},
	{monitor.Major, 1_350.0 / 49_340_000, 214},
	{monitor.Minor, 32_000.0 / 49_340_000, 310},
	{monitor.Warning, 1_800_000.0 / 49_340_000, 103},
	{monitor.Notice, 6_680.0 / 49_340_000, 79},
	{monitor.Ignored, 47_500_000.0 / 49_340_000, 0},
}

// BuildTable3Classifier creates a classifier with the paper's per-level
// rule counts: a handful of "organic" rules matching real device messages
// plus synthetic rules padding each level to its production size (each
// rule matches its own message family, as regex rules do in production).
func BuildTable3Classifier() *monitor.Classifier {
	cls := monitor.NewClassifier()
	monitor.StandardRules(cls)
	organic := cls.RuleCounts()
	for _, row := range paperTable3 {
		for i := organic[row.urgency]; i < row.rules; i++ {
			cls.MustAddRule(monitor.Rule{
				Name:    fmt.Sprintf("syn-%s-%d", row.urgency, i),
				Pattern: fmt.Sprintf(`SYN_%s_%d:`, row.urgency, i),
				Urgency: row.urgency,
			})
		}
	}
	return cls
}

// organicRuleCounts returns the per-level size of the standard
// (non-synthetic) rule set.
func organicRuleCounts() map[monitor.Urgency]int {
	cls := monitor.NewClassifier()
	monitor.StandardRules(cls)
	return cls.RuleCounts()
}

// Table3MessageStream generates n messages with the paper's level mix,
// deterministically shuffled. Matched levels emit messages hitting one of
// that level's synthetic rules (indices [organic, total) per level);
// ignored messages are the operational noise the paper describes (LSP
// changes, user authentication).
func Table3MessageStream(cfg Table3Config, rules map[monitor.Urgency]int) []netsim.SyslogMessage {
	organic := organicRuleCounts()
	r := rng(cfg.Seed)
	var msgs []netsim.SyslogMessage
	now := time.Unix(1_750_000_000, 0)
	ignoredTexts := []string{
		"LSP change: path recomputed for lsp-%d",
		"User authentication: session opened for user ops%d",
		"SNMP walk completed in %d ms",
		"Interface statistics poll %d finished",
	}
	for _, row := range paperTable3 {
		n := int(row.events*float64(cfg.TotalMessages) + 0.5)
		if row.urgency == monitor.Critical && n == 0 {
			n = 1 // keep at least one critical event at reduced scale
		}
		for i := 0; i < n; i++ {
			var text string
			if row.urgency == monitor.Ignored {
				text = fmt.Sprintf(ignoredTexts[r.Intn(len(ignoredTexts))], r.Intn(10_000))
			} else {
				lo := organic[row.urgency]
				ruleIdx := lo + r.Intn(rules[row.urgency]-lo)
				text = fmt.Sprintf("SYN_%s_%d: synthetic event %d", row.urgency, ruleIdx, r.Intn(10_000))
			}
			msgs = append(msgs, netsim.SyslogMessage{
				Severity: 8 - int(row.urgency) - 2, Host: fmt.Sprintf("dev%03d", r.Intn(200)),
				App: "syslog", Text: text, Time: now.Add(time.Duration(r.Int63n(int64(24 * time.Hour)))),
			})
		}
	}
	r.Shuffle(len(msgs), func(i, j int) { msgs[i], msgs[j] = msgs[j], msgs[i] })
	return msgs
}

// RunTable3 generates the message stream and classifies it.
func RunTable3(cfg Table3Config) Table3Result {
	cls := BuildTable3Classifier()
	rules := cls.RuleCounts()
	// Synthetic rules only: organic rules match organic messages; rule
	// indices for synthetic messages must stay inside the synthetic range,
	// so hand the full per-level rule count to the generator.
	for _, m := range Table3MessageStream(cfg, rules) {
		cls.Process(m)
	}
	return Table3Result{
		Classifier: cls,
		Counts:     cls.Counts(),
		Rules:      cls.RuleCounts(),
		Total:      cls.Total(),
	}
}

// Format renders the run in the paper's Table 3 layout.
func (r Table3Result) Format() string {
	return "Table 3: syslog messages by urgency in a (scaled) 24-hour period\n" +
		monitor.FormatTable3(r.Classifier)
}
