package experiments

import (
	"fmt"
	"time"

	"github.com/robotron-net/robotron/internal/core"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/monitor"
)

// Table 2: monitoring events in a 24-hour period by mechanism. The paper
// measures SNMP 50.94%, CLI 11.25%, RPC/XML 4.87%, Thrift 12.21% (active)
// and Syslog 20.73% (passive). This harness provisions a real cluster,
// installs a production-shaped job mix, simulates a 24-hour window through
// the real job manager (every event is an actual device poll), and runs
// the scaled syslog stream of Table 3 through the classifier for the
// passive share.

// Table2Config controls the scale.
type Table2Config struct {
	// Hours of virtual wall clock to simulate.
	Hours int
	Seed  int64
}

// DefaultTable2Config simulates a full day.
func DefaultTable2Config() Table2Config { return Table2Config{Hours: 24, Seed: 2} }

// Table2Result carries the measured mix.
type Table2Result struct {
	Stats        *monitor.EventStats
	SyslogEvents int64
	Shares       map[string]float64
}

// table2Jobs is the production-shaped job mix: periods are chosen so the
// per-mechanism event shares land on the paper's distribution.
func table2Jobs(devices []string) []monitor.JobSpec {
	return []monitor.JobSpec{
		{Name: "snmp-counters", Period: 1 * time.Minute, Engine: monitor.EngineSNMP,
			Data: monitor.DataCounters, Devices: devices, Backends: []string{"timeseries"}},
		{Name: "snmp-interfaces", Period: 4 * time.Minute, Engine: monitor.EngineSNMP,
			Data: monitor.DataInterfaces, Devices: devices, Backends: []string{"timeseries"}},
		{Name: "cli-lldp", Period: 5 * time.Minute, Engine: monitor.EngineCLI,
			Data: monitor.DataLLDP, Devices: devices, Backends: []string{"fbnet-derived"}},
		{Name: "cli-config", Period: 15 * time.Minute, Engine: monitor.EngineCLI,
			Data: monitor.DataConfig, Devices: devices, Backends: []string{"config-backup"}},
		{Name: "rpcxml-interfaces", Period: 510 * time.Second, Engine: monitor.EngineRPCXML,
			Data: monitor.DataInterfaces, Devices: devices, Backends: []string{"fbnet-derived"}},
		{Name: "thrift-bgp", Period: 4 * time.Minute, Engine: monitor.EngineThrift,
			Data: monitor.DataBGP, Devices: devices, Backends: []string{"fbnet-derived"}},
		{Name: "thrift-version", Period: 20 * time.Minute, Engine: monitor.EngineThrift,
			Data: monitor.DataVersion, Devices: devices, Backends: []string{"fbnet-derived"}},
	}
}

// RunTable2 provisions a POP, runs the virtual day, and merges the passive
// stream.
func RunTable2(cfg Table2Config) (Table2Result, error) {
	// Intent-derived monitoring off: this harness measures a curated job
	// mix calibrated to the paper's shares, so the auto-derived jobs a
	// provision normally installs would skew the distribution.
	noAlarms := false
	r, err := core.New(core.Options{EnableAlarms: &noAlarms})
	if err != nil {
		return Table2Result{}, err
	}
	if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
		return Table2Result{}, err
	}
	ctx := design.ChangeContext{EmployeeID: "exp", TicketID: "T-2", Description: "table2",
		Domain: "pop", NowUnix: 1_750_000_000}
	if _, err := r.ProvisionCluster(ctx, "pop1", "pop1-c1", design.POPGen1()); err != nil {
		return Table2Result{}, err
	}
	devices := monitor.SortedDeviceNames(r.Fleet)
	for _, j := range table2Jobs(devices) {
		if err := r.JobManager.AddJob(j); err != nil {
			return Table2Result{}, err
		}
	}
	r.JobManager.RunVirtual(time.Duration(cfg.Hours) * time.Hour)

	// Passive share: the per-device syslog rate implied by the paper's mix
	// (active : syslog = 79.27 : 20.73) applied to this fleet and window.
	active := int64(0)
	for _, n := range r.JobManager.Stats().Counts() {
		active += n
	}
	syslogTarget := int(float64(active) * 20.73 / 79.27)
	cls := BuildTable3Classifier()
	msgs := Table3MessageStream(Table3Config{TotalMessages: syslogTarget, Seed: cfg.Seed}, cls.RuleCounts())
	for _, m := range msgs {
		cls.Process(m)
	}
	res := Table2Result{Stats: r.JobManager.Stats(), SyslogEvents: cls.Total()}
	counts := res.Stats.Counts()
	total := float64(res.SyslogEvents)
	for _, n := range counts {
		total += float64(n)
	}
	res.Shares = map[string]float64{
		"snmp":   100 * float64(counts[monitor.EngineSNMP]) / total,
		"cli":    100 * float64(counts[monitor.EngineCLI]) / total,
		"rpcxml": 100 * float64(counts[monitor.EngineRPCXML]) / total,
		"thrift": 100 * float64(counts[monitor.EngineThrift]) / total,
		"syslog": 100 * float64(res.SyslogEvents) / total,
	}
	return res, nil
}

// Format renders the run in the paper's Table 2 layout.
func (r Table2Result) Format() string {
	return fmt.Sprintf("Table 2: monitoring events in a (scaled) 24-hour period\n%s(paper: SNMP 50.94%%, CLI 11.25%%, RPC/XML 4.87%%, Thrift 12.21%%, Syslog 20.73%%)\n",
		monitor.FormatTable2(r.Stats, r.SyslogEvents))
}
