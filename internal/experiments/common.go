// Package experiments regenerates every figure and table of the paper's
// evaluation (SIGCOMM '16, §6) by driving synthetic workloads through the
// real Robotron pipeline. Absolute magnitudes are scaled down from
// Facebook's production estate; each harness reports the shape statistics
// the paper's claims rest on (medians, CDFs, percentages, orderings) so
// they can be compared in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// rng returns a deterministic random source for an experiment; every
// harness seeds explicitly so results are reproducible run to run.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// percentile returns the p-th percentile (0..100) of xs (nearest-rank).
func percentile(xs []int, p float64) int {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int(nil), xs...)
	sort.Ints(s)
	rank := int(p/100*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// cdfPoints returns (value, cumulative fraction) pairs at the given
// fractions, for rendering figure-style CDFs as text.
func cdfPoints(xs []int, fractions []float64) []string {
	out := make([]string, 0, len(fractions))
	for _, f := range fractions {
		out = append(out, fmt.Sprintf("p%02.0f=%d", f*100, percentile(xs, f*100)))
	}
	return out
}

// meanInt returns the arithmetic mean of xs.
func meanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// table renders rows with aligned columns for terminal output.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
