package experiments

import (
	"fmt"
	"strings"

	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/relstore"
)

// Fig. 15: "the number of changed FBNet objects, i.e., those that are
// created, modified, and deleted across all design changes over one year",
// split into (a) POP and DC networks versus (b) backbone, with a per-
// object-type breakdown. The paper's observations: design changes have
// high fan-out (a few to 10,000 objects); POP/DC changes are larger
// (median ≈120, dominated by one-time cluster builds) than backbone
// changes (median ≈20, incremental device/circuit work); interface objects
// change most frequently, then circuits, then v6 prefixes, then v4
// prefixes, then devices.
//
// This harness replays a scaled year of design changes through the real
// design engine and reads the counts back from the recorded DesignChange
// objects — the same bookkeeping the paper mined.

// Fig15Config controls the workload scale.
type Fig15Config struct {
	Months int
	Seed   int64
}

// DefaultFig15Config replays a full year.
func DefaultFig15Config() Fig15Config { return Fig15Config{Months: 12, Seed: 15} }

// Fig15Result aggregates change sizes per domain.
type Fig15Result struct {
	// Totals per change, by domain key "popdc" / "backbone".
	Totals map[string][]int
	// PerType[domain][objectType] = changed-object count summed over
	// changes, with PhysicalInterface+AggregatedInterface folded into
	// "interface" as in the paper.
	PerType map[string]map[string]int
	Changes int
}

// RunFig15 executes the year of design changes.
func RunFig15(cfg Fig15Config) (Fig15Result, error) {
	r := rng(cfg.Seed)
	db := relstore.NewDB("fig15")
	store, err := fbnet.Open(db, fbnet.NewCatalog())
	if err != nil {
		return Fig15Result{}, err
	}
	d, err := design.NewDesigner(store, design.DefaultPools())
	if err != nil {
		return Fig15Result{}, err
	}
	if err := d.EnsureStandardHardware(); err != nil {
		return Fig15Result{}, err
	}
	for _, s := range []struct{ name, kind, region string }{
		{"pop1", "pop", "apac"}, {"pop2", "pop", "emea"},
		{"dc1", "dc", "nam"}, {"dc2", "dc", "nam"},
		{"bb-east", "backbone", "nam"}, {"bb-west", "backbone", "nam"},
	} {
		if _, err := d.EnsureSite(s.name, s.kind, s.region); err != nil {
			return Fig15Result{}, err
		}
	}
	res := Fig15Result{
		Totals:  map[string][]int{"popdc": {}, "backbone": {}},
		PerType: map[string]map[string]int{"popdc": {}, "backbone": {}},
	}
	record := func(domain string, cr design.ChangeResult, err error) error {
		if err != nil {
			return err
		}
		res.Changes++
		res.Totals[domain] = append(res.Totals[domain], cr.Stats.Total())
		for model, n := range cr.Stats.ByModel() {
			res.PerType[domain][foldType(model)] += n
		}
		return nil
	}
	ctx := func(domain string, month int) design.ChangeContext {
		return design.ChangeContext{
			EmployeeID:  fmt.Sprintf("e%d", 100+r.Intn(40)),
			TicketID:    fmt.Sprintf("T-%d", 1000+res.Changes),
			Description: "fig15 workload", Domain: domain,
			NowUnix: 1_700_000_000 + int64(month)*30*86400,
		}
	}

	// Backbone substrate: a starting mesh.
	var bbRouters []string
	addRouter := func(month int) error {
		name := fmt.Sprintf("bb%d", len(bbRouters)+1+r.Intn(1000)*1000)
		site := "bb-east"
		if r.Intn(2) == 0 {
			site = "bb-west"
		}
		cr, err := d.AddBackboneRouter(ctx("backbone", month), name, site, "Backbone_Vendor2", []string{"bb", "pr", "dr"}[r.Intn(3)])
		if err != nil {
			return err
		}
		bbRouters = append(bbRouters, name)
		return record("backbone", cr, nil)
	}
	for i := 0; i < 6; i++ {
		if err := addRouter(0); err != nil {
			return Fig15Result{}, err
		}
	}

	clusterN := 0
	var clusters []clusterInfo
	for month := 0; month < cfg.Months; month++ {
		// POP/DC: 1-3 cluster builds.
		for b := 1 + r.Intn(3); b > 0; b-- {
			clusterN++
			var tpl design.TopologyTemplate
			var site, domainSite string
			// Small Gen1 POPs dominate build volume (Fig. 12's rapid Gen1
			// growth); larger generations are rarer, keeping the size
			// distribution long-tailed as in the paper.
			switch r.Intn(10) {
			case 0, 1, 2, 3:
				tpl, domainSite = design.POPGen1(), "pop"
				site = []string{"pop1", "pop2"}[r.Intn(2)]
			case 4, 5:
				tpl, domainSite = design.POPGen2(), "pop"
				site = []string{"pop1", "pop2"}[r.Intn(2)]
			case 6, 7:
				tpl, domainSite = design.DCGen2(2+r.Intn(4)), "dc"
				site = []string{"dc1", "dc2"}[r.Intn(2)]
			default:
				tpl, domainSite = design.DCGen3(2+r.Intn(8)), "dc"
				site = []string{"dc1", "dc2"}[r.Intn(2)]
			}
			name := fmt.Sprintf("%s-c%d", site, clusterN)
			br, err := d.BuildCluster(ctx(domainSite, month), site, name, tpl)
			if err := record("popdc", br.ChangeResult, err); err != nil {
				return Fig15Result{}, err
			}
			clusters = append(clusters, clusterInfo{name: name, tpl: tpl})
		}
		// POP/DC: capacity upgrades (add racks to DC clusters).
		for u := 1 + r.Intn(2); u > 0; u-- {
			ci := pickDCCluster(r, clusters)
			if ci == nil {
				break
			}
			cr, err := d.AddRack(ctx("dc", month), ci.name, ci.tpl.RackTORProfle,
				ci.tpl.UplinkRole, ci.tpl.UplinksPerTOR, ci.tpl.Addressing.V6, ci.tpl.Addressing.V4)
			if err := record("popdc", cr, err); err != nil {
				return Fig15Result{}, err
			}
		}
		// POP/DC: occasional decommission of an old cluster.
		if len(clusters) > 6 && r.Float64() < 0.3 {
			idx := r.Intn(3) // an early cluster
			cr, err := d.DecommissionCluster(ctx("dc", month), clusters[idx].name)
			if err == nil {
				clusters = append(clusters[:idx], clusters[idx+1:]...)
				if err := record("popdc", cr, nil); err != nil {
					return Fig15Result{}, err
				}
			}
		}

		// Backbone: "tens of router additions and deletions, and hundreds
		// of circuit additions, migrations and deletions" per month,
		// scaled 1/10.
		for a := 2 + r.Intn(3); a > 0; a-- {
			if err := addRouter(month); err != nil {
				return Fig15Result{}, err
			}
		}
		if len(bbRouters) > 8 && r.Float64() < 0.7 {
			idx := r.Intn(len(bbRouters))
			cr, err := d.RemoveBackboneRouter(ctx("backbone", month), bbRouters[idx])
			if err == nil {
				bbRouters = append(bbRouters[:idx], bbRouters[idx+1:]...)
				if err := record("backbone", cr, nil); err != nil {
					return Fig15Result{}, err
				}
			}
		}
		for c := 10 + r.Intn(10); c > 0; c-- {
			// Half the circuit work lands on hot pairs — growing existing
			// bundles ("bundle membership"), which adds circuits without
			// new addressing.
			pool := bbRouters
			if len(bbRouters) > 6 && r.Intn(2) == 0 {
				pool = bbRouters[:6]
			}
			a, z := pickPair(r, pool)
			cr, err := d.AddBackboneCircuit(ctx("backbone", month), a, z, 1+r.Intn(2))
			if err != nil {
				continue // port exhaustion on a busy router: skip
			}
			if err := record("backbone", cr, nil); err != nil {
				return Fig15Result{}, err
			}
		}
		// Circuit migrations and deletions on single-circuit bundles.
		for mg := 2 + r.Intn(4); mg > 0; mg-- {
			cid, ok := pickSingleCircuit(store, r)
			if !ok {
				break
			}
			target := bbRouters[r.Intn(len(bbRouters))]
			if r.Float64() < 0.5 {
				cr, err := d.MigrateCircuit(ctx("backbone", month), cid, target)
				if err == nil {
					if err := record("backbone", cr, nil); err != nil {
						return Fig15Result{}, err
					}
				}
			} else {
				cr, err := d.DeleteCircuit(ctx("backbone", month), cid)
				if err == nil {
					if err := record("backbone", cr, nil); err != nil {
						return Fig15Result{}, err
					}
				}
			}
		}
	}
	return res, nil
}

type clusterInfo struct {
	name string
	tpl  design.TopologyTemplate
}

func pickDCCluster(r interface{ Intn(int) int }, clusters []clusterInfo) *clusterInfo {
	var dcs []*clusterInfo
	for i := range clusters {
		if clusters[i].tpl.Racks > 0 {
			dcs = append(dcs, &clusters[i])
		}
	}
	if len(dcs) == 0 {
		return nil
	}
	return dcs[r.Intn(len(dcs))]
}

func pickPair(r interface{ Intn(int) int }, xs []string) (string, string) {
	i := r.Intn(len(xs))
	j := r.Intn(len(xs) - 1)
	if j >= i {
		j++
	}
	return xs[i], xs[j]
}

// pickSingleCircuit finds a backbone circuit that is the only member of
// its link group (migratable).
func pickSingleCircuit(store *fbnet.Store, r interface{ Intn(int) int }) (string, bool) {
	lgs, err := store.Find("LinkGroup", nil)
	if err != nil || len(lgs) == 0 {
		return "", false
	}
	start := r.Intn(len(lgs))
	for k := 0; k < len(lgs); k++ {
		lg := lgs[(start+k)%len(lgs)]
		// Only consider backbone bundles (device names start with "bb").
		if !strings.HasPrefix(lg.String("name"), "bb") {
			continue
		}
		ids, err := store.DB().Referencing("Circuit", "link_group", lg.ID)
		if err != nil || len(ids) != 1 {
			continue
		}
		c, err := store.GetByID("Circuit", ids[0])
		if err != nil {
			continue
		}
		return c.String("circuit_id"), true
	}
	return "", false
}

// foldType maps FBNet models onto the paper's Fig. 15 object categories.
func foldType(model string) string {
	switch model {
	case "PhysicalInterface", "AggregatedInterface":
		return "interface"
	case "Circuit":
		return "circuit"
	case "V6Prefix":
		return "v6 prefix"
	case "V4Prefix":
		return "v4 prefix"
	case "Device":
		return "device"
	default:
		return "other"
	}
}

// Format renders the distribution summary.
func (r Fig15Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 15: changed FBNet objects per design change\n")
	fmt.Fprintf(&b, "total design changes: %d\n", r.Changes)
	for _, domain := range []string{"popdc", "backbone"} {
		label := "(a) POP and DC networks"
		if domain == "backbone" {
			label = "(b) backbone network"
		}
		xs := r.Totals[domain]
		fmt.Fprintf(&b, "%s: %d changes, median %d (paper: %s), %s\n",
			label, len(xs), percentile(xs, 50),
			map[string]string{"popdc": "120", "backbone": "20"}[domain],
			strings.Join(cdfPoints(xs, []float64{0.1, 0.5, 0.9, 1.0}), "  "))
		var rows [][]string
		for _, typ := range []string{"interface", "circuit", "v6 prefix", "v4 prefix", "device", "other"} {
			rows = append(rows, []string{typ, fmt.Sprintf("%d", r.PerType[domain][typ])})
		}
		b.WriteString(table([]string{"  object type", "changed"}, rows))
	}
	b.WriteString("paper ordering: interface > circuit > v6 prefix > v4 prefix > device\n")
	return b.String()
}
