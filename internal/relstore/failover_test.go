package relstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// pairDB creates a master with one two-column table used for pair-insert
// transactions: every transaction inserts a row in "a" and a row in "b"
// with the same tag, so a torn transaction is detectable as a tag
// present in one table but not the other.
func pairDB(t testing.TB) *DB {
	t.Helper()
	db := NewDB("pair-master")
	for _, name := range []string{"a", "b"} {
		if err := db.CreateTable(TableDef{
			Name:    name,
			Columns: []Column{{Name: "tag", Type: ColString, Unique: true}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func insertPair(db *DB, tag string) error {
	return db.WithTx(func(tx *Tx) error {
		if _, err := tx.Insert("a", map[string]any{"tag": tag}); err != nil {
			return err
		}
		_, err := tx.Insert("b", map[string]any{"tag": tag})
		return err
	})
}

// tags returns the set of tags present in the named table. A table the
// replica has not created yet (replication stopped before the schema
// entries) reads as empty.
func tags(t testing.TB, db *DB, table string) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	err := db.WithTx(func(tx *Tx) error {
		rows, err := tx.Select(table, nil)
		if err != nil {
			return nil // table not replicated yet: empty
		}
		for _, r := range rows {
			out[r.String("tag")] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// assertNoTornPairs fails if any transaction applied partially.
func assertNoTornPairs(t testing.TB, db *DB, context string) {
	t.Helper()
	as, bs := tags(t, db, "a"), tags(t, db, "b")
	for tag := range as {
		if !bs[tag] {
			t.Errorf("%s: torn transaction: %q in a but not b", context, tag)
		}
	}
	for tag := range bs {
		if !as[tag] {
			t.Errorf("%s: torn transaction: %q in b but not a", context, tag)
		}
	}
}

// TestReplicaNeverHoldsTornTransaction steps replication entry-window by
// entry-window: whatever prefix the replica has applied, a transaction is
// always whole (ApplyN rounds up to the tx boundary).
func TestReplicaNeverHoldsTornTransaction(t *testing.T) {
	db := pairDB(t)
	for i := 0; i < 8; i++ {
		if err := insertPair(db, fmt.Sprintf("t%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	rep := NewReplica(db, "pair-replica")
	for {
		before := rep.Applied()
		if err := rep.ApplyN(1); err != nil {
			t.Fatal(err)
		}
		assertNoTornPairs(t, rep.DB(), fmt.Sprintf("after seq %d", rep.Applied()))
		if rep.Applied() == before {
			break // caught up
		}
	}
	if got := len(tags(t, rep.DB(), "a")); got != 8 {
		t.Errorf("replica has %d pairs, want 8", got)
	}
}

// TestPromoteUnderConcurrentMasterWrites hammers the master with
// pair-inserts while a replica replicates and is promoted mid-stream.
// The promoted DB must hold only whole transactions.
func TestPromoteUnderConcurrentMasterWrites(t *testing.T) {
	db := pairDB(t)
	rep := NewReplica(db, "pair-replica")

	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_ = insertPair(db, fmt.Sprintf("w%d-%d", w, i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = rep.CatchUp()
		}
	}()
	wg.Wait()
	<-done

	promoted := rep.Promote()
	assertNoTornPairs(t, promoted, "promoted DB")
	// Promote with a healthy master catches all the way up.
	if got, want := len(tags(t, promoted, "a")), writers*perWriter; got != want {
		t.Errorf("promoted DB has %d pairs, want %d", got, want)
	}
	// The promoted DB accepts new transactions with fresh tx ids.
	if err := insertPair(promoted, "post-promotion"); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	assertNoTornPairs(t, promoted, "after post-promotion write")
}

// TestPromoteAfterMidStreamMasterDeath kills the master midway through
// replication; the replica promotes with whatever prefix it has, and
// that prefix must contain no torn transaction suffix.
func TestPromoteAfterMidStreamMasterDeath(t *testing.T) {
	db := pairDB(t)
	for i := 0; i < 10; i++ {
		if err := insertPair(db, fmt.Sprintf("t%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	rep := NewReplica(db, "pair-replica")
	// Apply roughly half the stream, then the master dies.
	if err := rep.ApplyN(11); err != nil {
		t.Fatal(err)
	}
	db.SetDown(true)
	if err := rep.CatchUp(); err == nil {
		t.Fatal("CatchUp from a dead master should error")
	} else if got := fmt.Sprint(err); got == "" {
		t.Fatal("empty error")
	}
	promoted := rep.Promote()
	assertNoTornPairs(t, promoted, "promoted after master death")
	n := len(tags(t, promoted, "a"))
	if n == 0 || n > 10 {
		t.Errorf("promoted DB has %d pairs, want 1..10 (a prefix)", n)
	}
	// The new master serves reads and writes.
	if err := insertPair(promoted, "after-death"); err != nil {
		t.Fatalf("write on promoted master: %v", err)
	}
}

// TestCatchUpReturnsErrMasterDown pins the sentinel contract the service
// layer's failover watcher relies on.
func TestCatchUpReturnsErrMasterDown(t *testing.T) {
	db := pairDB(t)
	rep := NewReplica(db, "r")
	db.SetDown(true)
	err := rep.CatchUp()
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, ErrMasterDown) {
		t.Errorf("err = %v, want ErrMasterDown", err)
	}
}

// TestSetDownWaitsForWholeTxGroup races SetDown against group applies:
// at no instant may the replica expose a torn group even if the DB is
// marked down mid-apply.
func TestSetDownWaitsForWholeTxGroup(t *testing.T) {
	db := pairDB(t)
	for i := 0; i < 50; i++ {
		if err := insertPair(db, fmt.Sprintf("t%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	rep := NewReplica(db, "r")
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = rep.CatchUp()
	}()
	rep.DB().SetDown(true) // may land mid-stream
	<-done
	rep.DB().SetDown(false)
	// Whatever prefix landed before the shutdown, it ends on a tx
	// boundary.
	assertNoTornPairs(t, rep.DB(), "after racing SetDown")
	if err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	assertNoTornPairs(t, rep.DB(), "after final catch-up")
	if got := len(tags(t, rep.DB(), "a")); got != 50 {
		t.Errorf("replica has %d pairs after recovery, want 50", got)
	}
}
