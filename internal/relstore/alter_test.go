package relstore

import (
	"strings"
	"testing"
)

func TestAlterAddColumn(t *testing.T) {
	db := newTestDB(t)
	id := insertDevice(t, db, "psw1")
	if err := db.AlterAddColumn("device", Column{Name: "os_version", Type: ColString, Nullable: true}); err != nil {
		t.Fatal(err)
	}
	// Existing row reads NULL.
	row, _ := db.Get("device", id)
	if row.Get("os_version") != nil {
		t.Errorf("existing row new column = %v", row.Get("os_version"))
	}
	// New column is writable and participates in inserts.
	if err := db.WithTx(func(tx *Tx) error {
		if err := tx.Update("device", id, map[string]any{"os_version": "7.3.2"}); err != nil {
			return err
		}
		_, err := tx.Insert("device", map[string]any{"name": "psw2", "role": "psw", "os_version": "17.4"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	row, _ = db.Get("device", id)
	if row.String("os_version") != "7.3.2" {
		t.Errorf("updated value = %q", row.String("os_version"))
	}
}

func TestAlterAddColumnValidation(t *testing.T) {
	db := newTestDB(t)
	cases := []struct {
		table  string
		col    Column
		errSub string
	}{
		{"nope", Column{Name: "x", Type: ColString, Nullable: true}, "no such table"},
		{"device", Column{Name: "name", Type: ColString, Nullable: true}, "already has column"},
		{"device", Column{Name: "id", Type: ColInt, Nullable: true}, "invalid new column"},
		{"device", Column{Name: "", Type: ColInt, Nullable: true}, "invalid new column"},
		{"device", Column{Name: "x", Type: ColString}, "must be nullable"},
	}
	for _, c := range cases {
		err := db.AlterAddColumn(c.table, c.col)
		if err == nil || !strings.Contains(err.Error(), c.errSub) {
			t.Errorf("AlterAddColumn(%s, %s): want %q, got %v", c.table, c.col.Name, c.errSub, err)
		}
	}
}

func TestAlterAddUniqueColumn(t *testing.T) {
	db := newTestDB(t)
	insertDevice(t, db, "psw1")
	if err := db.AlterAddColumn("device", Column{Name: "serial", Type: ColString, Nullable: true, Unique: true}); err != nil {
		t.Fatal(err)
	}
	var id2 int64
	db.WithTx(func(tx *Tx) error {
		id2, _ = tx.Insert("device", map[string]any{"name": "psw2", "role": "psw", "serial": "SN1"})
		return nil
	})
	err := db.WithTx(func(tx *Tx) error {
		_, err := tx.Insert("device", map[string]any{"name": "psw3", "role": "psw", "serial": "SN1"})
		return err
	})
	if err == nil {
		t.Error("duplicate value in evolved unique column accepted")
	}
	got, found, err := db.LookupUnique("device", "serial", "SN1")
	if err != nil || !found || got != id2 {
		t.Errorf("LookupUnique on evolved column = %d %v %v", got, found, err)
	}
}

func TestAlterReplicates(t *testing.T) {
	db := newTestDB(t)
	rep := NewReplica(db, "r")
	insertDevice(t, db, "psw1")
	if err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if err := db.AlterAddColumn("device", Column{Name: "os_version", Type: ColString, Nullable: true}); err != nil {
		t.Fatal(err)
	}
	db.WithTx(func(tx *Tx) error {
		_, err := tx.Insert("device", map[string]any{"name": "psw2", "role": "psw", "os_version": "x"})
		return err
	})
	if err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	def, err := rep.DB().Def("device")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := def.column("os_version"); !ok {
		t.Error("replica schema missing evolved column")
	}
	rows, _ := rep.DB().Select("device", func(r Row) bool { return r.String("os_version") == "x" })
	if len(rows) != 1 {
		t.Errorf("replica rows with evolved value = %d", len(rows))
	}
}
