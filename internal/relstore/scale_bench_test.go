package relstore

import (
	"fmt"
	"os"
	"sync"
	"testing"
)

// The scale benchmarks measure the read path of one FBNet store server at
// row counts matching 256-16384-device fleets, both uncontended and — the
// case that matters for query storms — while a writer is continuously
// committing transactions. The 16384 size is gated behind
// ROBOTRON_BENCH_LARGE=1; `make bench-scale` sets the variable.

func scaleRowSizes() []int {
	sizes := []int{256, 4096}
	if os.Getenv("ROBOTRON_BENCH_LARGE") == "1" {
		sizes = append(sizes, 16384)
	}
	return sizes
}

// buildScaleDB creates a device table with n rows spread over n/64 sites.
func buildScaleDB(tb testing.TB, n int) *DB {
	tb.Helper()
	db := NewDB("bench-master")
	err := db.CreateTable(TableDef{
		Name: "device",
		Columns: []Column{
			{Name: "name", Type: ColString, Unique: true},
			{Name: "site", Type: ColString, Indexed: true},
			{Name: "role", Type: ColString},
			{Name: "version", Type: ColInt, Nullable: true},
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	sites := n / 64
	if sites == 0 {
		sites = 1
	}
	err = db.WithTx(func(tx *Tx) error {
		for i := 0; i < n; i++ {
			_, err := tx.Insert("device", map[string]any{
				"name": fmt.Sprintf("dev%06d", i),
				"site": fmt.Sprintf("site%04d", i%sites),
				"role": "bb",
			})
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		tb.Fatal(err)
	}
	return db
}

// readMix is one benchmark read operation: a point Get, a unique lookup,
// and an indexed site lookup — the planner's bread and butter.
func readMix(b *testing.B, db *DB, i, n int) {
	id := int64(i%n) + 1
	if _, err := db.Get("device", id); err != nil {
		b.Fatal(err)
	}
	if _, _, err := db.LookupUnique("device", "name", fmt.Sprintf("dev%06d", i%n)); err != nil {
		b.Fatal(err)
	}
	if _, err := db.LookupIndexed("device", "site", "site0000"); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScaleRelstoreRead is the uncontended parallel read path.
func BenchmarkScaleRelstoreRead(b *testing.B) {
	for _, n := range scaleRowSizes() {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			db := buildScaleDB(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					readMix(b, db, i, n)
					i++
				}
			})
		})
	}
}

// BenchmarkScaleRelstoreReadUnderWriter measures read latency while one
// writer commits single-row update transactions in a tight loop — the
// query-storm-during-deployment case. Under the original RWMutex design
// every read serialized against every write transaction (which holds the
// write lock from Begin to Commit); the epoch read path never blocks.
func BenchmarkScaleRelstoreReadUnderWriter(b *testing.B) {
	for _, n := range scaleRowSizes() {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			db := buildScaleDB(b, n)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				v := int64(0)
				for {
					select {
					case <-stop:
						return
					default:
					}
					v++
					err := db.WithTx(func(tx *Tx) error {
						return tx.Update("device", int64(v%int64(n))+1, map[string]any{"version": v})
					})
					if err != nil {
						panic(err)
					}
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					readMix(b, db, i, n)
					i++
				}
			})
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}
