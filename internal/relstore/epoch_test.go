package relstore

import (
	"fmt"
	"sync"
	"testing"
)

// newPairDB creates a table holding two rows whose "val" columns always
// sum to zero — every writer transaction updates both rows in one group,
// so any transaction-consistent snapshot preserves the invariant and any
// torn read breaks it.
func newPairDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB("epoch-test")
	err := db.CreateTable(TableDef{
		Name: "pair",
		Columns: []Column{
			{Name: "val", Type: ColInt},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.WithTx(func(tx *Tx) error {
		for i := 0; i < 2; i++ {
			if _, err := tx.Insert("pair", map[string]any{"val": int64(0)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// checkPair asserts the snapshot invariant on one read.
func checkPair(t *testing.T, db *DB, who string) {
	t.Helper()
	rows, err := db.Select("pair", nil)
	if err != nil {
		t.Errorf("%s: %v", who, err)
		return
	}
	if len(rows) != 2 {
		t.Errorf("%s: %d rows, want 2", who, len(rows))
		return
	}
	sum := rows[0].Values["val"].(int64) + rows[1].Values["val"].(int64)
	if sum != 0 {
		t.Errorf("%s: torn read: val sum = %d (rows %v)", who, sum, rows)
	}
}

// TestEpochReadsNoTornTransactions hammers the lock-free read path while
// a writer commits two-row transactions that keep the rows' values
// summing to zero. A reader observing a half-applied transaction would
// see a nonzero sum. Run with -race this also proves the epoch handoff
// is data-race-free.
func TestEpochReadsNoTornTransactions(t *testing.T) {
	db := newPairDB(t)
	const readers = 4
	const writes = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				checkPair(t, db, fmt.Sprintf("reader%d", r))
				if _, err := db.Get("pair", int64(i%2)+1); err != nil {
					t.Errorf("reader%d: %v", r, err)
				}
			}
		}(r)
	}
	for v := int64(1); v <= writes; v++ {
		err := db.WithTx(func(tx *Tx) error {
			if err := tx.Update("pair", 1, map[string]any{"val": v}); err != nil {
				return err
			}
			return tx.Update("pair", 2, map[string]any{"val": -v})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestEpochReadYourWrites: a committed transaction must be visible to a
// Get issued by the same goroutine immediately after Commit returns,
// even with other readers keeping epochs pinned.
func TestEpochReadYourWrites(t *testing.T) {
	db := newPairDB(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			checkPair(t, db, "background reader")
		}
	}()
	for v := int64(1); v <= 500; v++ {
		err := db.WithTx(func(tx *Tx) error {
			if err := tx.Update("pair", 1, map[string]any{"val": v}); err != nil {
				return err
			}
			return tx.Update("pair", 2, map[string]any{"val": -v})
		})
		if err != nil {
			t.Fatal(err)
		}
		row, err := db.Get("pair", 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := row.Values["val"].(int64); got != v {
			t.Fatalf("read-your-writes violated: wrote %d, read %d", v, got)
		}
	}
	close(stop)
	wg.Wait()
}

// TestReplicaEpochConsistencyAndPromotion replays the master's binlog
// onto a replica while readers query the replica, then promotes it and
// keeps writing. The sum invariant must hold at every observable
// instant: during catch-up (groups land atomically), at the promotion
// snapshot, and on the promoted master afterward.
func TestReplicaEpochConsistencyAndPromotion(t *testing.T) {
	master := newPairDB(t)
	rep := NewReplica(master, "replica-1")
	if err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Replica-side readers: must never see a torn group.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rows, err := rep.DB().Select("pair", nil); err == nil && len(rows) == 2 {
					sum := rows[0].Values["val"].(int64) + rows[1].Values["val"].(int64)
					if sum != 0 {
						t.Errorf("replica reader%d: torn group: sum=%d", r, sum)
					}
				}
			}
		}(r)
	}
	// Replication puller racing the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := rep.CatchUp(); err != nil {
				t.Errorf("catchup: %v", err)
				return
			}
		}
	}()
	for v := int64(1); v <= 1000; v++ {
		err := master.WithTx(func(tx *Tx) error {
			if err := tx.Update("pair", 1, map[string]any{"val": v}); err != nil {
				return err
			}
			return tx.Update("pair", 2, map[string]any{"val": -v})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Promote and verify the snapshot and continued writes.
	master.SetDown(true)
	promoted := rep.Promote()
	checkPair(t, promoted, "promoted snapshot")
	for v := int64(2000); v < 2100; v++ {
		err := promoted.WithTx(func(tx *Tx) error {
			if err := tx.Update("pair", 1, map[string]any{"val": v}); err != nil {
				return err
			}
			return tx.Update("pair", 2, map[string]any{"val": -v})
		})
		if err != nil {
			t.Fatal(err)
		}
		checkPair(t, promoted, "promoted master")
	}
	row, err := promoted.Get("pair", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := row.Values["val"].(int64); got != 2099 {
		t.Fatalf("promoted master lost writes: val=%d, want 2099", got)
	}
}
