package relstore

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// newTestDB builds a small FBNet-like schema: device <- linecard <- pif,
// with a circuit referencing two pifs.
func newTestDB(t testing.TB) *DB {
	t.Helper()
	db := NewDB("master.test")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.CreateTable(TableDef{
		Name: "device",
		Columns: []Column{
			{Name: "name", Type: ColString, Unique: true},
			{Name: "role", Type: ColString},
			{Name: "drained", Type: ColBool, Nullable: true},
		},
	}))
	must(db.CreateTable(TableDef{
		Name: "linecard",
		Columns: []Column{
			{Name: "slot", Type: ColInt},
			{Name: "device_id", Type: ColInt},
		},
		ForeignKeys: []ForeignKey{{Column: "device_id", RefTable: "device", OnDelete: Cascade}},
	}))
	must(db.CreateTable(TableDef{
		Name: "pif",
		Columns: []Column{
			{Name: "name", Type: ColString},
			{Name: "linecard_id", Type: ColInt},
			{Name: "agg_id", Type: ColInt, Nullable: true},
		},
		ForeignKeys: []ForeignKey{
			{Column: "linecard_id", RefTable: "linecard", OnDelete: Cascade},
		},
	}))
	must(db.CreateTable(TableDef{
		Name: "circuit",
		Columns: []Column{
			{Name: "a_pif_id", Type: ColInt, Nullable: true},
			{Name: "z_pif_id", Type: ColInt, Nullable: true},
			{Name: "status", Type: ColString},
		},
		ForeignKeys: []ForeignKey{
			{Column: "a_pif_id", RefTable: "pif", OnDelete: SetNull},
			{Column: "z_pif_id", RefTable: "pif", OnDelete: SetNull},
		},
	}))
	return db
}

func insertDevice(t testing.TB, db *DB, name string) int64 {
	t.Helper()
	var id int64
	err := db.WithTx(func(tx *Tx) error {
		var err error
		id, err = tx.Insert("device", map[string]any{"name": name, "role": "psw"})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestInsertAndGet(t *testing.T) {
	db := newTestDB(t)
	id := insertDevice(t, db, "psw1.pop1")
	row, err := db.Get("device", id)
	if err != nil {
		t.Fatal(err)
	}
	if row.String("name") != "psw1.pop1" || row.String("role") != "psw" {
		t.Errorf("row = %+v", row)
	}
	if row.Get("drained") != nil {
		t.Errorf("nullable unset column should be nil, got %v", row.Get("drained"))
	}
}

func TestInsertValidations(t *testing.T) {
	db := newTestDB(t)
	insertDevice(t, db, "psw1")
	cases := []struct {
		name   string
		table  string
		values map[string]any
		errSub string
	}{
		{"duplicate unique", "device", map[string]any{"name": "psw1", "role": "psw"}, "duplicate"},
		{"missing non-nullable", "device", map[string]any{"name": "x"}, "NULL not allowed"},
		{"unknown column", "device", map[string]any{"name": "y", "role": "psw", "bogus": 1}, "unknown column"},
		{"type mismatch", "device", map[string]any{"name": 5, "role": "psw"}, "want string"},
		{"fk violation", "linecard", map[string]any{"slot": 1, "device_id": 999}, "foreign key violation"},
		{"no such table", "nope", map[string]any{}, "no such table"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := db.WithTx(func(tx *Tx) error {
				_, err := tx.Insert(c.table, c.values)
				return err
			})
			if err == nil || !strings.Contains(err.Error(), c.errSub) {
				t.Errorf("want error containing %q, got %v", c.errSub, err)
			}
		})
	}
}

func TestColumnValidator(t *testing.T) {
	db := NewDB("m")
	err := db.CreateTable(TableDef{
		Name: "prefix",
		Columns: []Column{{
			Name: "v6", Type: ColString,
			Validate: func(v any) error {
				if !strings.Contains(v.(string), ":") {
					return fmt.Errorf("%q is not an IPv6 prefix", v)
				}
				return nil
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WithTx(func(tx *Tx) error {
		_, err := tx.Insert("prefix", map[string]any{"v6": "10.0.0.0/8"})
		return err
	}); err == nil {
		t.Error("validator should reject v4 value")
	}
	if err := db.WithTx(func(tx *Tx) error {
		_, err := tx.Insert("prefix", map[string]any{"v6": "2401:db00::/32"})
		return err
	}); err != nil {
		t.Errorf("validator rejected valid value: %v", err)
	}
}

func TestUpdate(t *testing.T) {
	db := newTestDB(t)
	id := insertDevice(t, db, "psw1")
	if err := db.WithTx(func(tx *Tx) error {
		return tx.Update("device", id, map[string]any{"role": "pr", "drained": true})
	}); err != nil {
		t.Fatal(err)
	}
	row, _ := db.Get("device", id)
	if row.String("role") != "pr" || !row.Bool("drained") {
		t.Errorf("update not applied: %+v", row)
	}
}

func TestUpdateUniqueIndexMoves(t *testing.T) {
	db := newTestDB(t)
	id := insertDevice(t, db, "old-name")
	if err := db.WithTx(func(tx *Tx) error {
		return tx.Update("device", id, map[string]any{"name": "new-name"})
	}); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := db.LookupUnique("device", "name", "old-name"); found {
		t.Error("old unique value still indexed")
	}
	got, found, _ := db.LookupUnique("device", "name", "new-name")
	if !found || got != id {
		t.Errorf("new unique value lookup = %d, %v", got, found)
	}
	// The freed value is reusable.
	insertDevice(t, db, "old-name")
}

func TestDeleteRestrict(t *testing.T) {
	db := NewDB("m")
	if err := db.CreateTable(TableDef{Name: "a", Columns: []Column{{Name: "x", Type: ColInt}}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableDef{
		Name:        "b",
		Columns:     []Column{{Name: "a_id", Type: ColInt}},
		ForeignKeys: []ForeignKey{{Column: "a_id", RefTable: "a", OnDelete: Restrict}},
	}); err != nil {
		t.Fatal(err)
	}
	var aID int64
	db.WithTx(func(tx *Tx) error {
		aID, _ = tx.Insert("a", map[string]any{"x": 1})
		_, err := tx.Insert("b", map[string]any{"a_id": aID})
		return err
	})
	err := db.WithTx(func(tx *Tx) error { return tx.Delete("a", aID) })
	if err == nil || !strings.Contains(err.Error(), "still referenced") {
		t.Errorf("restrict delete should fail, got %v", err)
	}
}

func TestDeleteCascadeAndSetNull(t *testing.T) {
	db := newTestDB(t)
	var devID, lcID, pifA, pifZ, cirID int64
	err := db.WithTx(func(tx *Tx) error {
		var err error
		if devID, err = tx.Insert("device", map[string]any{"name": "psw1", "role": "psw"}); err != nil {
			return err
		}
		if lcID, err = tx.Insert("linecard", map[string]any{"slot": 1, "device_id": devID}); err != nil {
			return err
		}
		if pifA, err = tx.Insert("pif", map[string]any{"name": "et1/1", "linecard_id": lcID}); err != nil {
			return err
		}
		if pifZ, err = tx.Insert("pif", map[string]any{"name": "et1/2", "linecard_id": lcID}); err != nil {
			return err
		}
		cirID, err = tx.Insert("circuit", map[string]any{"a_pif_id": pifA, "z_pif_id": pifZ, "status": "up"})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Deleting the device cascades to linecard and pifs; circuit endpoints go NULL.
	if err := db.WithTx(func(tx *Tx) error { return tx.Delete("device", devID) }); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{"linecard", "pif"} {
		if n, _ := db.Count(tbl); n != 0 {
			t.Errorf("%s not cascaded: %d rows remain", tbl, n)
		}
	}
	cir, err := db.Get("circuit", cirID)
	if err != nil {
		t.Fatalf("circuit should survive: %v", err)
	}
	if cir.Get("a_pif_id") != nil || cir.Get("z_pif_id") != nil {
		t.Errorf("circuit endpoints should be NULL: %+v", cir)
	}
}

func TestRollbackRestoresEverything(t *testing.T) {
	db := newTestDB(t)
	devID := insertDevice(t, db, "psw1")
	var lcID int64
	db.WithTx(func(tx *Tx) error {
		lcID, _ = tx.Insert("linecard", map[string]any{"slot": 1, "device_id": devID})
		return nil
	})
	before, _ := db.Select("device", nil)

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("device", map[string]any{"name": "psw2", "role": "psw"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("device", devID, map[string]any{"name": "renamed"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("device", devID); err != nil { // cascades to linecard
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	after, _ := db.Select("device", nil)
	if len(after) != len(before) {
		t.Fatalf("device count %d after rollback, want %d", len(after), len(before))
	}
	row, err := db.Get("device", devID)
	if err != nil || row.String("name") != "psw1" {
		t.Errorf("device not restored: %+v, %v", row, err)
	}
	if _, err := db.Get("linecard", lcID); err != nil {
		t.Errorf("cascaded delete not rolled back: %v", err)
	}
	// Unique index restored: the renamed value is free, the original is taken.
	if _, found, _ := db.LookupUnique("device", "name", "renamed"); found {
		t.Error("rolled-back rename still in unique index")
	}
	if id, found, _ := db.LookupUnique("device", "name", "psw1"); !found || id != devID {
		t.Error("original name missing from unique index after rollback")
	}
	if err := db.WithTx(func(tx *Tx) error {
		_, err := tx.Insert("device", map[string]any{"name": "psw1", "role": "x"})
		return err
	}); err == nil {
		t.Error("unique constraint lost after rollback")
	}
}

func TestTxDone(t *testing.T) {
	db := newTestDB(t)
	tx, _ := db.Begin()
	tx.Commit()
	if _, err := tx.Insert("device", nil); err != ErrTxDone {
		t.Errorf("want ErrTxDone, got %v", err)
	}
	if err := tx.Commit(); err != ErrTxDone {
		t.Errorf("double commit: want ErrTxDone, got %v", err)
	}
	if err := tx.Rollback(); err != ErrTxDone {
		t.Errorf("rollback after commit: want ErrTxDone, got %v", err)
	}
}

func TestTxIsolation(t *testing.T) {
	db := newTestDB(t)
	tx, _ := db.Begin()
	if _, err := tx.Insert("device", map[string]any{"name": "psw1", "role": "psw"}); err != nil {
		t.Fatal(err)
	}
	// A concurrent reader must not observe the uncommitted row; it blocks
	// until the transaction finishes (single-writer lock model).
	done := make(chan int)
	go func() {
		rows, _ := db.Select("device", nil)
		done <- len(rows)
	}()
	tx.Rollback()
	if n := <-done; n != 0 {
		t.Errorf("reader saw %d uncommitted rows", n)
	}
}

func TestConcurrentWriters(t *testing.T) {
	db := newTestDB(t)
	const n = 20
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := db.WithTx(func(tx *Tx) error {
				_, err := tx.Insert("device", map[string]any{"name": fmt.Sprintf("d%d", i), "role": "psw"})
				return err
			})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if cnt, _ := db.Count("device"); cnt != n {
		t.Errorf("count = %d, want %d", cnt, n)
	}
}

func TestReferencing(t *testing.T) {
	db := newTestDB(t)
	devID := insertDevice(t, db, "psw1")
	var lc1, lc2 int64
	db.WithTx(func(tx *Tx) error {
		lc1, _ = tx.Insert("linecard", map[string]any{"slot": 1, "device_id": devID})
		lc2, _ = tx.Insert("linecard", map[string]any{"slot": 2, "device_id": devID})
		return nil
	})
	ids, err := db.Referencing("linecard", "device_id", devID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != lc1 || ids[1] != lc2 {
		t.Errorf("Referencing = %v, want [%d %d]", ids, lc1, lc2)
	}
}

func TestServerDown(t *testing.T) {
	db := newTestDB(t)
	db.SetDown(true)
	if _, err := db.Select("device", nil); err == nil {
		t.Error("reads should fail on a down server")
	}
	if _, err := db.Begin(); err == nil {
		t.Error("writes should fail on a down server")
	}
	if db.Healthy() {
		t.Error("health check should fail")
	}
	db.SetDown(false)
	if !db.Healthy() {
		t.Error("health check should pass after recovery")
	}
	insertDevice(t, db, "psw1")
}

func TestBadSchemas(t *testing.T) {
	db := NewDB("m")
	cases := []struct {
		name string
		def  TableDef
	}{
		{"empty table name", TableDef{Name: ""}},
		{"duplicate column", TableDef{Name: "t", Columns: []Column{{Name: "a", Type: ColString}, {Name: "a", Type: ColInt}}}},
		{"column named id", TableDef{Name: "t", Columns: []Column{{Name: "id", Type: ColInt}}}},
		{"fk on unknown column", TableDef{Name: "t", ForeignKeys: []ForeignKey{{Column: "x", RefTable: "t"}}}},
		{"fk to unknown table", TableDef{Name: "t", Columns: []Column{{Name: "x", Type: ColInt}},
			ForeignKeys: []ForeignKey{{Column: "x", RefTable: "missing"}}}},
		{"fk on non-int column", TableDef{Name: "t", Columns: []Column{{Name: "x", Type: ColString}},
			ForeignKeys: []ForeignKey{{Column: "x", RefTable: "t"}}}},
		{"setnull on non-nullable", TableDef{Name: "t", Columns: []Column{{Name: "x", Type: ColInt}},
			ForeignKeys: []ForeignKey{{Column: "x", RefTable: "t", OnDelete: SetNull}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := db.CreateTable(c.def); err == nil {
				t.Errorf("CreateTable(%+v) should fail", c.def)
			}
		})
	}
	if err := db.CreateTable(TableDef{Name: "ok", Columns: []Column{{Name: "x", Type: ColInt}}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableDef{Name: "ok"}); err == nil {
		t.Error("duplicate table should fail")
	}
}

// --- replication ---

func TestReplicationConverges(t *testing.T) {
	db := newTestDB(t)
	rep := NewReplica(db, "replica.test")
	devID := insertDevice(t, db, "psw1")
	db.WithTx(func(tx *Tx) error {
		lc, _ := tx.Insert("linecard", map[string]any{"slot": 1, "device_id": devID})
		_, err := tx.Insert("pif", map[string]any{"name": "et1/1", "linecard_id": lc})
		return err
	})
	if rep.Lag() == 0 {
		t.Error("replica should be behind before CatchUp")
	}
	if err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if rep.Lag() != 0 {
		t.Errorf("lag after CatchUp = %d", rep.Lag())
	}
	row, err := rep.DB().Get("device", devID)
	if err != nil || row.String("name") != "psw1" {
		t.Errorf("replica row = %+v, %v", row, err)
	}
	// Updates and cascaded deletes replicate too.
	db.WithTx(func(tx *Tx) error { return tx.Update("device", devID, map[string]any{"role": "pr"}) })
	db.WithTx(func(tx *Tx) error { return tx.Delete("device", devID) })
	if err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if n, _ := rep.DB().Count("device"); n != 0 {
		t.Errorf("replica device count = %d after delete", n)
	}
	if n, _ := rep.DB().Count("pif"); n != 0 {
		t.Errorf("replica pif count = %d after cascade", n)
	}
}

func TestReplicationPartialLag(t *testing.T) {
	db := newTestDB(t)
	rep := NewReplica(db, "r")
	insertDevice(t, db, "d1")
	insertDevice(t, db, "d2")
	// Schema entries: 4 CreateTable ops precede the inserts.
	if err := rep.ApplyN(5); err != nil {
		t.Fatal(err)
	}
	if n, _ := rep.DB().Count("device"); n != 1 {
		t.Errorf("after partial apply, replica sees %d devices, want 1", n)
	}
	if rep.Lag() != 1 {
		t.Errorf("lag = %d, want 1", rep.Lag())
	}
	rep.CatchUp()
	if n, _ := rep.DB().Count("device"); n != 2 {
		t.Errorf("after catchup, replica sees %d devices", n)
	}
}

func TestRolledBackTxDoesNotReplicate(t *testing.T) {
	db := newTestDB(t)
	rep := NewReplica(db, "r")
	tx, _ := db.Begin()
	tx.Insert("device", map[string]any{"name": "ghost", "role": "psw"})
	tx.Rollback()
	rep.CatchUp()
	if n, _ := rep.DB().Count("device"); n != 0 {
		t.Errorf("rolled-back insert replicated: %d rows", n)
	}
}

func TestPromoteContinuesAsMaster(t *testing.T) {
	db := newTestDB(t)
	rep := NewReplica(db, "r1")
	insertDevice(t, db, "d1")
	if err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	db.SetDown(true)
	newMaster := rep.Promote()
	// Writes continue on the promoted replica.
	if err := newMaster.WithTx(func(tx *Tx) error {
		_, err := tx.Insert("device", map[string]any{"name": "d2", "role": "psw"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if n, _ := newMaster.Count("device"); n != 2 {
		t.Errorf("new master count = %d", n)
	}
	// A fresh replica of the new master converges from its binlog.
	rep2 := NewReplica(newMaster, "r2")
	if err := rep2.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if n, _ := rep2.DB().Count("device"); n != 2 {
		t.Errorf("replica of promoted master count = %d", n)
	}
}

// Property: for a random interleaving of committed and rolled-back
// transactions, the database state equals replaying only the committed
// ones, and a replica converges to the same state.
func TestQuickTransactionAtomicity(t *testing.T) {
	type op struct {
		Name   string
		Commit bool
	}
	f := func(ops []op) bool {
		db := NewDB("m")
		if err := db.CreateTable(TableDef{Name: "d", Columns: []Column{{Name: "name", Type: ColString}}}); err != nil {
			return false
		}
		want := 0
		for _, o := range ops {
			tx, err := db.Begin()
			if err != nil {
				return false
			}
			if _, err := tx.Insert("d", map[string]any{"name": o.Name}); err != nil {
				tx.Rollback()
				continue
			}
			if o.Commit {
				tx.Commit()
				want++
			} else {
				tx.Rollback()
			}
		}
		n, _ := db.Count("d")
		if n != want {
			return false
		}
		rep := NewReplica(db, "r")
		if err := rep.CatchUp(); err != nil {
			return false
		}
		rn, _ := rep.DB().Count("d")
		return rn == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	db := newTestDB(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := db.WithTx(func(tx *Tx) error {
			_, err := tx.Insert("device", map[string]any{"name": fmt.Sprintf("d%d", i), "role": "psw"})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectScan(b *testing.B) {
	db := newTestDB(b)
	db.WithTx(func(tx *Tx) error {
		for i := 0; i < 5000; i++ {
			tx.Insert("device", map[string]any{"name": fmt.Sprintf("d%d", i), "role": "psw"})
		}
		return nil
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.Select("device", func(r Row) bool { return r.String("role") == "psw" })
		if err != nil || len(rows) != 5000 {
			b.Fatalf("%v %d", err, len(rows))
		}
	}
}
