package relstore

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"github.com/robotron-net/robotron/internal/telemetry"
)

// table is the in-memory storage for one table.
type table struct {
	def    TableDef
	rows   map[int64]map[string]any
	nextID int64
	// unique maps column name -> value -> row id, for Unique columns.
	unique map[string]map[any]int64
	// refIndex maps fk column name -> referenced id -> set of referencing
	// row ids in this table, to make referential actions O(refs).
	refIndex map[string]map[int64]map[int64]struct{}
	// secondary maps column name -> value -> sorted row ids, for Indexed
	// (non-unique) columns, so point lookups are O(matches) and already
	// in ascending order (reads copy, never sort).
	secondary map[string]map[any][]int64
}

func newTable(def TableDef) *table {
	t := &table{
		def:       def,
		rows:      make(map[int64]map[string]any),
		unique:    make(map[string]map[any]int64),
		refIndex:  make(map[string]map[int64]map[int64]struct{}),
		secondary: make(map[string]map[any][]int64),
	}
	for _, c := range def.Columns {
		if c.Unique {
			t.unique[c.Name] = make(map[any]int64)
		}
		if c.Indexed {
			t.secondary[c.Name] = make(map[any][]int64)
		}
	}
	for _, fk := range def.ForeignKeys {
		t.refIndex[fk.Column] = make(map[int64]map[int64]struct{})
	}
	return t
}

func (t *table) indexRef(col string, refID, rowID int64) {
	m := t.refIndex[col]
	s, ok := m[refID]
	if !ok {
		s = make(map[int64]struct{})
		m[refID] = s
	}
	s[rowID] = struct{}{}
}

func (t *table) unindexRef(col string, refID, rowID int64) {
	if s, ok := t.refIndex[col][refID]; ok {
		delete(s, rowID)
		if len(s) == 0 {
			delete(t.refIndex[col], refID)
		}
	}
}

func (t *table) indexSecondary(col string, v any, rowID int64) {
	m := t.secondary[col]
	ids := m[v]
	if i, found := slices.BinarySearch(ids, rowID); !found {
		m[v] = slices.Insert(ids, i, rowID)
	}
}

func (t *table) unindexSecondary(col string, v any, rowID int64) {
	ids := t.secondary[col][v]
	if i, found := slices.BinarySearch(ids, rowID); found {
		ids = slices.Delete(ids, i, i+1)
		if len(ids) == 0 {
			delete(t.secondary[col], v)
		} else {
			t.secondary[col][v] = ids
		}
	}
}

// DB is an in-memory relational database. One DB is a single "MySQL
// server"; replication across servers is provided by Replica.
//
// Writes serialize on mu (a transaction holds it from Begin to Commit,
// matching §4.3.2's no-partial-state guarantee). Reads never take mu:
// they run against an immutable epoch snapshot — see epoch.go — that a
// reader advances on demand by replaying the binlog delta, so read
// throughput is unaffected by open write transactions.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
	seq    uint64
	txSeq  uint64 // transaction counter; stamps LogEntry.TxID groups
	closed bool
	// name identifies this server in errors and logs (e.g. "master.ash1").
	name string

	// binlogMu guards binlog separately from mu so epoch refresh and
	// replication can read the log without blocking behind an open write
	// transaction; committers append under it (whole tx groups at a time,
	// keeping every prefix transaction-consistent) and then publish the
	// new sequence to committed.
	binlogMu  sync.RWMutex
	binlog    []LogEntry
	committed atomic.Uint64 // last binlog seq visible to readers
	downFlag  atomic.Bool   // lock-free mirror of closed for the read path

	// Epoch read stores: epochPtr is the published snapshot readers pin;
	// spare is the other buffer of the left-right pair, caught up and
	// swapped in by advanceEpochs (serialized by epochMu, which also
	// guards spare).
	epochMu  sync.Mutex
	epochPtr atomic.Pointer[epoch]
	spare    *epoch

	// Telemetry mirrors; nil (no-op) until Instrument.
	mCommits   *telemetry.Counter
	mRollbacks *telemetry.Counter
}

// NewDB creates an empty database server with the given name.
func NewDB(name string) *DB {
	db := &DB{tables: make(map[string]*table), name: name}
	db.epochPtr.Store(&epoch{tables: make(map[string]*table)})
	db.spare = &epoch{tables: make(map[string]*table)}
	return db
}

// Name returns the server name.
func (db *DB) Name() string { return db.name }

// Instrument registers this server's transaction counters and binlog
// sequence gauge on reg, labeled with the server name.
func (db *DB) Instrument(reg *telemetry.Registry) {
	db.mu.Lock()
	defer db.mu.Unlock()
	server := telemetry.Label{Key: "server", Value: db.name}
	db.mCommits = reg.Counter("robotron_relstore_tx_commits_total", server)
	db.mRollbacks = reg.Counter("robotron_relstore_tx_rollbacks_total", server)
	reg.GaugeFunc("robotron_relstore_binlog_seq", func() float64 { return float64(db.Seq()) }, server)
}

// CreateTable registers a new table. Schema changes are recorded in the
// binlog so replicas converge.
func (db *DB) CreateTable(def TableDef) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("relstore: %s is down", db.name)
	}
	if _, dup := db.tables[def.Name]; dup {
		return fmt.Errorf("relstore: table %q already exists", def.Name)
	}
	if err := validateDef(&def, db.tables); err != nil {
		return err
	}
	db.tables[def.Name] = newTable(def)
	db.seq++
	db.txSeq++
	db.appendBinlog(LogEntry{Seq: db.seq, TxID: db.txSeq, Op: OpCreateTable, Table: def.Name, Def: &def})
	db.advanceEpochs(db.seq)
	return nil
}

// appendBinlog publishes committed entries: append under binlogMu, then
// advance the committed watermark. The order matters — a reader that
// observes the new watermark is guaranteed to find every entry up to it
// in the log. Callers hold db.mu, which serializes committers.
func (db *DB) appendBinlog(entries ...LogEntry) {
	if len(entries) == 0 {
		return
	}
	db.binlogMu.Lock()
	db.binlog = append(db.binlog, entries...)
	db.binlogMu.Unlock()
	db.committed.Store(db.seq)
}

// AlterAddColumn adds a column to an existing table; live schema change
// is how FBNet models grow new attributes over time ("new attributes are
// constantly added to existing models as needed"). The column must be
// nullable: existing rows read it as NULL. Replicated through the binlog.
func (db *DB) AlterAddColumn(tableName string, col Column) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("relstore: %s is down", db.name)
	}
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("relstore: no such table %q", tableName)
	}
	if err := t.addColumn(col); err != nil {
		return err
	}
	cp := col
	db.seq++
	db.txSeq++
	db.appendBinlog(LogEntry{Seq: db.seq, TxID: db.txSeq, Op: OpAlterAddColumn, Table: tableName, Col: &cp})
	db.advanceEpochs(db.seq)
	return nil
}

// addColumn validates and applies a column addition on one table.
func (t *table) addColumn(col Column) error {
	if col.Name == "" || col.Name == "id" {
		return fmt.Errorf("relstore: invalid new column name %q", col.Name)
	}
	if _, dup := t.def.column(col.Name); dup {
		return fmt.Errorf("relstore: table %s already has column %q", t.def.Name, col.Name)
	}
	if !col.Nullable {
		return fmt.Errorf("relstore: new column %s.%s must be nullable (existing rows have no value)", t.def.Name, col.Name)
	}
	t.def.Columns = append(t.def.Columns, col)
	if col.Unique {
		t.unique[col.Name] = make(map[any]int64)
	}
	if col.Indexed {
		// Existing rows read the new column as NULL, which is never
		// indexed, so the fresh empty index is already consistent.
		t.secondary[col.Name] = make(map[any][]int64)
	}
	return nil
}

// Tables returns the registered table names.
func (db *DB) Tables() []string {
	e := db.readEpoch()
	defer e.release()
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	return names
}

// Def returns a copy of a table's definition.
func (db *DB) Def(tableName string) (TableDef, error) {
	e := db.readEpoch()
	defer e.release()
	t, ok := e.tables[tableName]
	if !ok {
		return TableDef{}, fmt.Errorf("relstore: no such table %q", tableName)
	}
	return t.def, nil
}

// Get returns a snapshot of one row by primary key.
func (db *DB) Get(tableName string, id int64) (Row, error) {
	if db.downFlag.Load() {
		return Row{}, fmt.Errorf("relstore: %s is down", db.name)
	}
	e := db.readEpoch()
	defer e.release()
	t, ok := e.tables[tableName]
	if !ok {
		return Row{}, fmt.Errorf("relstore: no such table %q", tableName)
	}
	vals, ok := t.rows[id]
	if !ok {
		return Row{}, fmt.Errorf("relstore: %s: id %d: %w", tableName, id, ErrNoRow)
	}
	return Row{ID: id, Values: copyValues(vals)}, nil
}

// Select returns snapshots of all rows matching pred (nil matches all),
// in ascending id order.
func (db *DB) Select(tableName string, pred func(Row) bool) ([]Row, error) {
	if db.downFlag.Load() {
		return nil, fmt.Errorf("relstore: %s is down", db.name)
	}
	e := db.readEpoch()
	defer e.release()
	t, ok := e.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: no such table %q", tableName)
	}
	var out []Row
	for _, id := range sortedIDs(t.rows) {
		r := Row{ID: id, Values: copyValues(t.rows[id])}
		if pred == nil || pred(r) {
			out = append(out, r)
		}
	}
	return out, nil
}

// Count returns the number of rows in a table.
func (db *DB) Count(tableName string) (int, error) {
	e := db.readEpoch()
	defer e.release()
	t, ok := e.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("relstore: no such table %q", tableName)
	}
	return len(t.rows), nil
}

// LookupUnique finds a row id by a unique column value; ok is false when
// no row has that value.
func (db *DB) LookupUnique(tableName, col string, v any) (int64, bool, error) {
	e := db.readEpoch()
	defer e.release()
	t, ok := e.tables[tableName]
	if !ok {
		return 0, false, fmt.Errorf("relstore: no such table %q", tableName)
	}
	idx, ok := t.unique[col]
	if !ok {
		return 0, false, fmt.Errorf("relstore: %s.%s is not a unique column", tableName, col)
	}
	id, found := idx[normIndexValue(v)]
	return id, found, nil
}

// normIndexValue widens integer index keys to int64, matching how
// checkValue normalizes stored values. Other types are looked up as-is so
// index lookups agree exactly with scan-and-compare semantics.
func normIndexValue(v any) any {
	switch n := v.(type) {
	case int:
		return int64(n)
	case int32:
		return int64(n)
	}
	return v
}

// LookupIndexed returns the ids of rows whose Indexed (non-unique) column
// equals v, in ascending id order.
func (db *DB) LookupIndexed(tableName, col string, v any) ([]int64, error) {
	e := db.readEpoch()
	defer e.release()
	t, ok := e.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: no such table %q", tableName)
	}
	return t.lookupIndexed(tableName, col, v)
}

func (t *table) lookupIndexed(tableName, col string, v any) ([]int64, error) {
	idx, ok := t.secondary[col]
	if !ok {
		return nil, fmt.Errorf("relstore: %s.%s is not an indexed column", tableName, col)
	}
	// The index keeps ids sorted; hand out a copy.
	return slices.Clone(idx[normIndexValue(v)]), nil
}

// Referencing returns the ids of rows in tableName whose fkCol references
// refID. Used by the object layer to follow reverse relationships.
func (db *DB) Referencing(tableName, fkCol string, refID int64) ([]int64, error) {
	e := db.readEpoch()
	defer e.release()
	t, ok := e.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: no such table %q", tableName)
	}
	idx, ok := t.refIndex[fkCol]
	if !ok {
		return nil, fmt.Errorf("relstore: %s.%s is not a foreign key", tableName, fkCol)
	}
	set := idx[refID]
	ids := make([]int64, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sortInt64s(ids)
	return ids, nil
}

func sortInt64s(xs []int64) {
	slices.Sort(xs)
}

// SetDown simulates a server failure (health checks fail, all operations
// error) or recovery. Used by the service layer's failover tests.
func (db *DB) SetDown(down bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.closed = down
	db.downFlag.Store(down)
}

// Healthy reports whether the server responds to health checks.
func (db *DB) Healthy() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return !db.closed
}

// Seq returns the current binlog sequence number (the committed
// watermark — uncommitted transaction entries are not yet sequenced).
func (db *DB) Seq() uint64 {
	return db.committed.Load()
}

// EntriesSince returns the binlog entries with Seq > after. Consumers such
// as the config generator's memoization layer use it to decide whether
// anything relevant changed since a cached derivation; the returned slice
// shares value maps with the binlog and must be treated as read-only.
func (db *DB) EntriesSince(after uint64) []LogEntry {
	return db.entriesSince(after)
}

// entriesSince returns binlog entries with Seq > after.
func (db *DB) entriesSince(after uint64) []LogEntry {
	db.binlogMu.RLock()
	defer db.binlogMu.RUnlock()
	entries := db.entriesSinceLocked(after)
	if len(entries) == 0 {
		return nil
	}
	out := make([]LogEntry, len(entries))
	copy(out, entries)
	return out
}

// entriesSinceLocked returns the binlog suffix with Seq > after, sharing
// the backing array. Callers hold binlogMu (at least for reading).
func (db *DB) entriesSinceLocked(after uint64) []LogEntry {
	if len(db.binlog) == 0 {
		return nil
	}
	// Binlog seqs are dense and ascending; index directly. The returned
	// suffix shares the backing array: the binlog is append-only and
	// entries are immutable once appended, so reading the suffix after
	// binlogMu is released races only with writes past its length.
	first := db.binlog[0].Seq
	if after < first-1 {
		after = first - 1
	}
	idx := int(after - (first - 1))
	if idx >= len(db.binlog) {
		return nil
	}
	return db.binlog[idx:]
}
