package relstore

import (
	"fmt"
	"sync"

	"github.com/robotron-net/robotron/internal/telemetry"
)

// table is the in-memory storage for one table.
type table struct {
	def    TableDef
	rows   map[int64]map[string]any
	nextID int64
	// unique maps column name -> value -> row id, for Unique columns.
	unique map[string]map[any]int64
	// refIndex maps fk column name -> referenced id -> set of referencing
	// row ids in this table, to make referential actions O(refs).
	refIndex map[string]map[int64]map[int64]struct{}
	// secondary maps column name -> value -> set of row ids, for Indexed
	// (non-unique) columns, so point lookups are O(matches).
	secondary map[string]map[any]map[int64]struct{}
}

func newTable(def TableDef) *table {
	t := &table{
		def:       def,
		rows:      make(map[int64]map[string]any),
		unique:    make(map[string]map[any]int64),
		refIndex:  make(map[string]map[int64]map[int64]struct{}),
		secondary: make(map[string]map[any]map[int64]struct{}),
	}
	for _, c := range def.Columns {
		if c.Unique {
			t.unique[c.Name] = make(map[any]int64)
		}
		if c.Indexed {
			t.secondary[c.Name] = make(map[any]map[int64]struct{})
		}
	}
	for _, fk := range def.ForeignKeys {
		t.refIndex[fk.Column] = make(map[int64]map[int64]struct{})
	}
	return t
}

func (t *table) indexRef(col string, refID, rowID int64) {
	m := t.refIndex[col]
	s, ok := m[refID]
	if !ok {
		s = make(map[int64]struct{})
		m[refID] = s
	}
	s[rowID] = struct{}{}
}

func (t *table) unindexRef(col string, refID, rowID int64) {
	if s, ok := t.refIndex[col][refID]; ok {
		delete(s, rowID)
		if len(s) == 0 {
			delete(t.refIndex[col], refID)
		}
	}
}

func (t *table) indexSecondary(col string, v any, rowID int64) {
	m := t.secondary[col]
	s, ok := m[v]
	if !ok {
		s = make(map[int64]struct{})
		m[v] = s
	}
	s[rowID] = struct{}{}
}

func (t *table) unindexSecondary(col string, v any, rowID int64) {
	if s, ok := t.secondary[col][v]; ok {
		delete(s, rowID)
		if len(s) == 0 {
			delete(t.secondary[col], v)
		}
	}
}

// DB is an in-memory relational database. One DB is a single "MySQL
// server"; replication across servers is provided by Replica.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
	binlog []LogEntry
	seq    uint64
	txSeq  uint64 // transaction counter; stamps LogEntry.TxID groups
	closed bool
	// name identifies this server in errors and logs (e.g. "master.ash1").
	name string

	// Telemetry mirrors; nil (no-op) until Instrument.
	mCommits   *telemetry.Counter
	mRollbacks *telemetry.Counter
}

// NewDB creates an empty database server with the given name.
func NewDB(name string) *DB {
	return &DB{tables: make(map[string]*table), name: name}
}

// Name returns the server name.
func (db *DB) Name() string { return db.name }

// Instrument registers this server's transaction counters and binlog
// sequence gauge on reg, labeled with the server name.
func (db *DB) Instrument(reg *telemetry.Registry) {
	db.mu.Lock()
	defer db.mu.Unlock()
	server := telemetry.Label{Key: "server", Value: db.name}
	db.mCommits = reg.Counter("robotron_relstore_tx_commits_total", server)
	db.mRollbacks = reg.Counter("robotron_relstore_tx_rollbacks_total", server)
	reg.GaugeFunc("robotron_relstore_binlog_seq", func() float64 { return float64(db.Seq()) }, server)
}

// CreateTable registers a new table. Schema changes are recorded in the
// binlog so replicas converge.
func (db *DB) CreateTable(def TableDef) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("relstore: %s is down", db.name)
	}
	if _, dup := db.tables[def.Name]; dup {
		return fmt.Errorf("relstore: table %q already exists", def.Name)
	}
	if err := validateDef(&def, db.tables); err != nil {
		return err
	}
	db.tables[def.Name] = newTable(def)
	db.seq++
	db.txSeq++
	db.binlog = append(db.binlog, LogEntry{Seq: db.seq, TxID: db.txSeq, Op: OpCreateTable, Table: def.Name, Def: &def})
	return nil
}

// AlterAddColumn adds a column to an existing table; live schema change
// is how FBNet models grow new attributes over time ("new attributes are
// constantly added to existing models as needed"). The column must be
// nullable: existing rows read it as NULL. Replicated through the binlog.
func (db *DB) AlterAddColumn(tableName string, col Column) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("relstore: %s is down", db.name)
	}
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("relstore: no such table %q", tableName)
	}
	if err := t.addColumn(col); err != nil {
		return err
	}
	cp := col
	db.seq++
	db.txSeq++
	db.binlog = append(db.binlog, LogEntry{Seq: db.seq, TxID: db.txSeq, Op: OpAlterAddColumn, Table: tableName, Col: &cp})
	return nil
}

// addColumn validates and applies a column addition on one table.
func (t *table) addColumn(col Column) error {
	if col.Name == "" || col.Name == "id" {
		return fmt.Errorf("relstore: invalid new column name %q", col.Name)
	}
	if _, dup := t.def.column(col.Name); dup {
		return fmt.Errorf("relstore: table %s already has column %q", t.def.Name, col.Name)
	}
	if !col.Nullable {
		return fmt.Errorf("relstore: new column %s.%s must be nullable (existing rows have no value)", t.def.Name, col.Name)
	}
	t.def.Columns = append(t.def.Columns, col)
	if col.Unique {
		t.unique[col.Name] = make(map[any]int64)
	}
	if col.Indexed {
		// Existing rows read the new column as NULL, which is never
		// indexed, so the fresh empty index is already consistent.
		t.secondary[col.Name] = make(map[any]map[int64]struct{})
	}
	return nil
}

// Tables returns the registered table names.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	return names
}

// Def returns a copy of a table's definition.
func (db *DB) Def(tableName string) (TableDef, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return TableDef{}, fmt.Errorf("relstore: no such table %q", tableName)
	}
	return t.def, nil
}

// Get returns a snapshot of one row by primary key.
func (db *DB) Get(tableName string, id int64) (Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return Row{}, fmt.Errorf("relstore: %s is down", db.name)
	}
	t, ok := db.tables[tableName]
	if !ok {
		return Row{}, fmt.Errorf("relstore: no such table %q", tableName)
	}
	vals, ok := t.rows[id]
	if !ok {
		return Row{}, fmt.Errorf("relstore: %s: id %d: %w", tableName, id, ErrNoRow)
	}
	return Row{ID: id, Values: copyValues(vals)}, nil
}

// Select returns snapshots of all rows matching pred (nil matches all),
// in ascending id order.
func (db *DB) Select(tableName string, pred func(Row) bool) ([]Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, fmt.Errorf("relstore: %s is down", db.name)
	}
	t, ok := db.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: no such table %q", tableName)
	}
	var out []Row
	for _, id := range sortedIDs(t.rows) {
		r := Row{ID: id, Values: copyValues(t.rows[id])}
		if pred == nil || pred(r) {
			out = append(out, r)
		}
	}
	return out, nil
}

// Count returns the number of rows in a table.
func (db *DB) Count(tableName string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("relstore: no such table %q", tableName)
	}
	return len(t.rows), nil
}

// LookupUnique finds a row id by a unique column value; ok is false when
// no row has that value.
func (db *DB) LookupUnique(tableName, col string, v any) (int64, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return 0, false, fmt.Errorf("relstore: no such table %q", tableName)
	}
	idx, ok := t.unique[col]
	if !ok {
		return 0, false, fmt.Errorf("relstore: %s.%s is not a unique column", tableName, col)
	}
	id, found := idx[normIndexValue(v)]
	return id, found, nil
}

// normIndexValue widens integer index keys to int64, matching how
// checkValue normalizes stored values. Other types are looked up as-is so
// index lookups agree exactly with scan-and-compare semantics.
func normIndexValue(v any) any {
	switch n := v.(type) {
	case int:
		return int64(n)
	case int32:
		return int64(n)
	}
	return v
}

// LookupIndexed returns the ids of rows whose Indexed (non-unique) column
// equals v, in ascending id order.
func (db *DB) LookupIndexed(tableName, col string, v any) ([]int64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: no such table %q", tableName)
	}
	return t.lookupIndexed(tableName, col, v)
}

func (t *table) lookupIndexed(tableName, col string, v any) ([]int64, error) {
	idx, ok := t.secondary[col]
	if !ok {
		return nil, fmt.Errorf("relstore: %s.%s is not an indexed column", tableName, col)
	}
	set := idx[normIndexValue(v)]
	ids := make([]int64, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sortInt64s(ids)
	return ids, nil
}

// Referencing returns the ids of rows in tableName whose fkCol references
// refID. Used by the object layer to follow reverse relationships.
func (db *DB) Referencing(tableName, fkCol string, refID int64) ([]int64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: no such table %q", tableName)
	}
	idx, ok := t.refIndex[fkCol]
	if !ok {
		return nil, fmt.Errorf("relstore: %s.%s is not a foreign key", tableName, fkCol)
	}
	set := idx[refID]
	ids := make([]int64, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sortInt64s(ids)
	return ids, nil
}

func sortInt64s(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// SetDown simulates a server failure (health checks fail, all operations
// error) or recovery. Used by the service layer's failover tests.
func (db *DB) SetDown(down bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.closed = down
}

// Healthy reports whether the server responds to health checks.
func (db *DB) Healthy() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return !db.closed
}

// Seq returns the current binlog sequence number.
func (db *DB) Seq() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.seq
}

// EntriesSince returns the binlog entries with Seq > after. Consumers such
// as the config generator's memoization layer use it to decide whether
// anything relevant changed since a cached derivation; the returned slice
// shares value maps with the binlog and must be treated as read-only.
func (db *DB) EntriesSince(after uint64) []LogEntry {
	return db.entriesSince(after)
}

// entriesSince returns binlog entries with Seq > after.
func (db *DB) entriesSince(after uint64) []LogEntry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if len(db.binlog) == 0 {
		return nil
	}
	// Binlog seqs are dense and ascending; index directly.
	first := db.binlog[0].Seq
	if after < first-1 {
		after = first - 1
	}
	idx := int(after - (first - 1))
	if idx >= len(db.binlog) {
		return nil
	}
	out := make([]LogEntry, len(db.binlog)-idx)
	copy(out, db.binlog[idx:])
	return out
}
