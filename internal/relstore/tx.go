package relstore

import (
	"errors"
	"fmt"
)

// Op is the kind of a binlog entry.
type Op int

const (
	OpCreateTable Op = iota
	OpInsert
	OpUpdate
	OpDelete
	OpAlterAddColumn
)

func (o Op) String() string {
	switch o {
	case OpCreateTable:
		return "CREATE TABLE"
	case OpInsert:
		return "INSERT"
	case OpUpdate:
		return "UPDATE"
	case OpDelete:
		return "DELETE"
	case OpAlterAddColumn:
		return "ALTER TABLE ADD COLUMN"
	}
	return "unknown"
}

// LogEntry is one replicated binlog record.
type LogEntry struct {
	Seq uint64
	// TxID groups the entries of one transaction. Replication applies a
	// whole group atomically, so a replica (and anything promoted from
	// it) can never expose a torn transaction suffix. DDL statements
	// auto-commit as single-entry groups.
	TxID   uint64
	Op     Op
	Table  string
	RowID  int64
	Values map[string]any // full values for insert, changed columns for update
	Def    *TableDef      // for OpCreateTable
	Col    *Column        // for OpAlterAddColumn
}

// ErrTxDone is returned when using a transaction after Commit or Rollback.
var ErrTxDone = errors.New("relstore: transaction already finished")

// ErrNoRow is wrapped by Get when the requested primary key is absent.
var ErrNoRow = errors.New("no such row")

// undoEntry records how to reverse one applied operation.
type undoEntry struct {
	op     Op
	table  string
	rowID  int64
	values map[string]any // previous values (update) or full row (delete)
}

// Tx is a transaction. It holds the database write lock from Begin until
// Commit or Rollback, so its effects are invisible to concurrent readers
// until committed, and a rollback restores the exact prior state. This
// mirrors the paper's write API: "each write API is wrapped in a single
// database transaction, and therefore no partial state is visible to other
// applications before the API call completes" (§4.3.2).
type Tx struct {
	db      *DB
	undo    []undoEntry
	pending []LogEntry
	done    bool
}

// Begin starts a transaction, blocking other writers and readers until it
// finishes. Returns an error if the server is down.
func (db *DB) Begin() (*Tx, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, fmt.Errorf("relstore: %s is down", db.name)
	}
	return &Tx{db: db}, nil
}

// WithTx runs fn inside a transaction, committing on nil return and rolling
// back (and returning fn's error) otherwise.
func (db *DB) WithTx(fn func(*Tx) error) error {
	tx, err := db.Begin()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// Commit makes the transaction's effects durable and visible, appending
// them to the binlog for replication.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	db := tx.db
	seq := uint64(0)
	if len(tx.pending) > 0 {
		db.txSeq++
		for i := range tx.pending {
			db.seq++
			tx.pending[i].Seq = db.seq
			tx.pending[i].TxID = db.txSeq
		}
		// The whole group lands in the binlog atomically (under binlogMu)
		// before the committed watermark advances, so every binlog prefix
		// a reader can observe is transaction-consistent.
		db.appendBinlog(tx.pending...)
		seq = db.seq
	}
	db.mCommits.Inc()
	db.mu.Unlock()
	if seq != 0 {
		// Publish the read epoch after releasing the write lock: the next
		// writer can begin while we catch the spare store up, and readers
		// observe the new state the moment it is swapped in — before
		// Commit returns, preserving read-your-writes.
		db.advanceEpochs(seq)
	}
	return nil
}

// Rollback reverses all operations performed in the transaction.
func (tx *Tx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	db := tx.db
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		t := db.tables[u.table]
		switch u.op {
		case OpInsert: // undo an insert: remove the row
			t.removeRow(u.rowID)
		case OpUpdate: // undo an update: restore previous column values
			t.applyUpdate(u.rowID, u.values)
		case OpDelete: // undo a delete: restore the row with its old id
			t.restoreRow(u.rowID, u.values)
		}
	}
	db.mRollbacks.Inc()
	db.mu.Unlock()
	return nil
}

func (tx *Tx) table(name string) (*table, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	t, ok := tx.db.tables[name]
	if !ok {
		return nil, fmt.Errorf("relstore: no such table %q", name)
	}
	return t, nil
}

// Get reads a row within the transaction (sees uncommitted changes).
func (tx *Tx) Get(tableName string, id int64) (Row, error) {
	t, err := tx.table(tableName)
	if err != nil {
		return Row{}, err
	}
	vals, ok := t.rows[id]
	if !ok {
		return Row{}, fmt.Errorf("relstore: %s: id %d: %w", tableName, id, ErrNoRow)
	}
	return Row{ID: id, Values: copyValues(vals)}, nil
}

// Select reads matching rows within the transaction.
func (tx *Tx) Select(tableName string, pred func(Row) bool) ([]Row, error) {
	t, err := tx.table(tableName)
	if err != nil {
		return nil, err
	}
	var out []Row
	for _, id := range sortedIDs(t.rows) {
		r := Row{ID: id, Values: copyValues(t.rows[id])}
		if pred == nil || pred(r) {
			out = append(out, r)
		}
	}
	return out, nil
}

// LookupUnique finds a row id by unique column value within the transaction.
func (tx *Tx) LookupUnique(tableName, col string, v any) (int64, bool, error) {
	t, err := tx.table(tableName)
	if err != nil {
		return 0, false, err
	}
	idx, ok := t.unique[col]
	if !ok {
		return 0, false, fmt.Errorf("relstore: %s.%s is not a unique column", tableName, col)
	}
	id, found := idx[normIndexValue(v)]
	return id, found, nil
}

// LookupIndexed finds row ids by an Indexed (non-unique) column value
// within the transaction, in ascending id order.
func (tx *Tx) LookupIndexed(tableName, col string, v any) ([]int64, error) {
	t, err := tx.table(tableName)
	if err != nil {
		return nil, err
	}
	return t.lookupIndexed(tableName, col, v)
}

// Referencing lists rows whose fkCol references refID, within the transaction.
func (tx *Tx) Referencing(tableName, fkCol string, refID int64) ([]int64, error) {
	t, err := tx.table(tableName)
	if err != nil {
		return nil, err
	}
	idx, ok := t.refIndex[fkCol]
	if !ok {
		return nil, fmt.Errorf("relstore: %s.%s is not a foreign key", tableName, fkCol)
	}
	set := idx[refID]
	ids := make([]int64, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sortInt64s(ids)
	return ids, nil
}

// Insert adds a row. Unspecified nullable columns default to NULL; missing
// non-nullable columns are an error. Returns the new row id.
func (tx *Tx) Insert(tableName string, values map[string]any) (int64, error) {
	t, err := tx.table(tableName)
	if err != nil {
		return 0, err
	}
	norm := make(map[string]any, len(t.def.Columns))
	for k := range values {
		if _, ok := t.def.column(k); !ok {
			return 0, fmt.Errorf("relstore: %s: unknown column %q", tableName, k)
		}
	}
	for i := range t.def.Columns {
		c := &t.def.Columns[i]
		v, err := checkValue(tableName, c, values[c.Name])
		if err != nil {
			return 0, err
		}
		norm[c.Name] = v
	}
	if err := tx.checkConstraints(t, norm, 0); err != nil {
		return 0, err
	}
	t.nextID++
	id := t.nextID
	t.rows[id] = norm
	t.indexRow(id, norm)
	tx.undo = append(tx.undo, undoEntry{op: OpInsert, table: tableName, rowID: id})
	tx.pending = append(tx.pending, LogEntry{Op: OpInsert, Table: tableName, RowID: id, Values: copyValues(norm)})
	return id, nil
}

// Update changes the given columns of a row.
func (tx *Tx) Update(tableName string, id int64, changes map[string]any) error {
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	cur, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("relstore: %s: no row with id %d", tableName, id)
	}
	norm := make(map[string]any, len(changes))
	prev := make(map[string]any, len(changes))
	for k, v := range changes {
		c, ok := t.def.column(k)
		if !ok {
			return fmt.Errorf("relstore: %s: unknown column %q", tableName, k)
		}
		nv, err := checkValue(tableName, c, v)
		if err != nil {
			return err
		}
		norm[k] = nv
		prev[k] = cur[k]
	}
	if err := tx.checkChangedConstraints(t, norm, id); err != nil {
		return err
	}
	t.unindexRow(id, cur, norm)
	for k, v := range norm {
		cur[k] = v
	}
	t.reindexRow(id, cur, norm)
	tx.undo = append(tx.undo, undoEntry{op: OpUpdate, table: tableName, rowID: id, values: prev})
	tx.pending = append(tx.pending, LogEntry{Op: OpUpdate, Table: tableName, RowID: id, Values: copyValues(norm)})
	return nil
}

// Delete removes a row, applying referential actions (RESTRICT blocks the
// delete, CASCADE deletes referencing rows recursively, SET NULL clears the
// referencing columns).
func (tx *Tx) Delete(tableName string, id int64) error {
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	if _, ok := t.rows[id]; !ok {
		return fmt.Errorf("relstore: %s: no row with id %d", tableName, id)
	}
	// Resolve referencing rows across all tables.
	for refName, rt := range tx.db.tables {
		for _, fk := range rt.def.ForeignKeys {
			if fk.RefTable != tableName {
				continue
			}
			refs := rt.refIndex[fk.Column][id]
			if len(refs) == 0 {
				continue
			}
			switch fk.OnDelete {
			case Restrict:
				return fmt.Errorf("relstore: cannot delete %s id %d: still referenced by %d row(s) of %s.%s",
					tableName, id, len(refs), refName, fk.Column)
			case Cascade:
				ids := make([]int64, 0, len(refs))
				for rid := range refs {
					ids = append(ids, rid)
				}
				sortInt64s(ids)
				for _, rid := range ids {
					if err := tx.Delete(refName, rid); err != nil {
						return err
					}
				}
			case SetNull:
				ids := make([]int64, 0, len(refs))
				for rid := range refs {
					ids = append(ids, rid)
				}
				sortInt64s(ids)
				for _, rid := range ids {
					if err := tx.Update(refName, rid, map[string]any{fk.Column: nil}); err != nil {
						return err
					}
				}
			}
		}
	}
	old := t.rows[id]
	t.unindexRow(id, old, old)
	delete(t.rows, id)
	tx.undo = append(tx.undo, undoEntry{op: OpDelete, table: tableName, rowID: id, values: old})
	tx.pending = append(tx.pending, LogEntry{Op: OpDelete, Table: tableName, RowID: id})
	return nil
}

// checkChangedConstraints validates uniqueness and foreign-key existence
// for the changed columns of an update. Unchanged columns cannot create
// new violations, so updates skip the full-row merge the insert path
// needs. selfID excludes the row being updated from unique collision
// checks.
func (tx *Tx) checkChangedConstraints(t *table, changes map[string]any, selfID int64) error {
	for col, v := range changes {
		if idx, ok := t.unique[col]; ok && v != nil {
			if existing, dup := idx[v]; dup && existing != selfID {
				return fmt.Errorf("relstore: %s.%s: duplicate value %v (row %d)", t.def.Name, col, v, existing)
			}
		}
	}
	for _, fk := range t.def.ForeignKeys {
		v, changed := changes[fk.Column]
		if !changed || v == nil {
			continue
		}
		refID := v.(int64)
		ref := tx.db.tables[fk.RefTable]
		if _, ok := ref.rows[refID]; !ok {
			return fmt.Errorf("relstore: %s.%s: foreign key violation: %s id %d does not exist",
				t.def.Name, fk.Column, fk.RefTable, refID)
		}
	}
	return nil
}

// checkConstraints validates uniqueness and foreign-key existence for a
// full candidate row. selfID excludes the row being updated from unique
// collision checks (0 for inserts).
func (tx *Tx) checkConstraints(t *table, vals map[string]any, selfID int64) error {
	for col, idx := range t.unique {
		v := vals[col]
		if v == nil {
			continue
		}
		if existing, dup := idx[v]; dup && existing != selfID {
			return fmt.Errorf("relstore: %s.%s: duplicate value %v (row %d)", t.def.Name, col, v, existing)
		}
	}
	for _, fk := range t.def.ForeignKeys {
		v := vals[fk.Column]
		if v == nil {
			continue
		}
		refID := v.(int64)
		ref := tx.db.tables[fk.RefTable]
		if _, ok := ref.rows[refID]; !ok {
			return fmt.Errorf("relstore: %s.%s: foreign key violation: %s id %d does not exist",
				t.def.Name, fk.Column, fk.RefTable, refID)
		}
	}
	return nil
}

// --- index maintenance ---

// indexRow adds a fresh row to all indexes.
func (t *table) indexRow(id int64, vals map[string]any) {
	for col, idx := range t.unique {
		if v := vals[col]; v != nil {
			idx[v] = id
		}
	}
	for col := range t.secondary {
		if v := vals[col]; v != nil {
			t.indexSecondary(col, v, id)
		}
	}
	for _, fk := range t.def.ForeignKeys {
		if v := vals[fk.Column]; v != nil {
			t.indexRef(fk.Column, v.(int64), id)
		}
	}
}

// unindexRow removes index entries for the columns in changed (or all
// entries when changed covers the whole row).
func (t *table) unindexRow(id int64, vals map[string]any, changed map[string]any) {
	for col := range changed {
		if idx, ok := t.unique[col]; ok {
			if v := vals[col]; v != nil {
				delete(idx, v)
			}
		}
		if _, ok := t.secondary[col]; ok {
			if v := vals[col]; v != nil {
				t.unindexSecondary(col, v, id)
			}
		}
		if _, ok := t.refIndex[col]; ok {
			if v := vals[col]; v != nil {
				t.unindexRef(col, v.(int64), id)
			}
		}
	}
}

// reindexRow re-adds index entries for changed columns using current values.
func (t *table) reindexRow(id int64, vals map[string]any, changed map[string]any) {
	for col := range changed {
		if idx, ok := t.unique[col]; ok {
			if v := vals[col]; v != nil {
				idx[v] = id
			}
		}
		if _, ok := t.secondary[col]; ok {
			if v := vals[col]; v != nil {
				t.indexSecondary(col, v, id)
			}
		}
		if _, ok := t.refIndex[col]; ok {
			if v := vals[col]; v != nil {
				t.indexRef(col, v.(int64), id)
			}
		}
	}
}

// removeRow deletes a row and its index entries (rollback/replication path;
// constraints were already enforced).
func (t *table) removeRow(id int64) {
	if vals, ok := t.rows[id]; ok {
		t.unindexRow(id, vals, vals)
		delete(t.rows, id)
		if t.nextID == id {
			t.nextID--
		}
	}
}

// restoreRow reinstates a row with a specific id (rollback/replication path).
func (t *table) restoreRow(id int64, vals map[string]any) {
	t.rows[id] = vals
	t.indexRow(id, vals)
	if id > t.nextID {
		t.nextID = id
	}
}

// applyUpdate overwrites columns of a row (rollback/replication path).
func (t *table) applyUpdate(id int64, changes map[string]any) {
	cur, ok := t.rows[id]
	if !ok {
		return
	}
	t.unindexRow(id, cur, changes)
	for k, v := range changes {
		cur[k] = v
	}
	t.reindexRow(id, cur, changes)
}
