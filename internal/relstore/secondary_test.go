package relstore

import (
	"fmt"
	"testing"
)

// secondaryDB builds a schema with a non-unique Indexed column.
func secondaryDB(t testing.TB) *DB {
	t.Helper()
	db := NewDB("master.sec")
	if err := db.CreateTable(TableDef{
		Name: "device",
		Columns: []Column{
			{Name: "name", Type: ColString, Unique: true},
			{Name: "role", Type: ColString, Indexed: true},
			{Name: "note", Type: ColString, Nullable: true},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func seedRoles(t testing.TB, db *DB, roles ...string) []int64 {
	t.Helper()
	ids := make([]int64, len(roles))
	err := db.WithTx(func(tx *Tx) error {
		for i, role := range roles {
			var err error
			ids[i], err = tx.Insert("device", map[string]any{
				"name": fmt.Sprintf("d%02d", i), "role": role})
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

func wantIDs(t *testing.T, got []int64, want ...int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSecondaryIndexLookup(t *testing.T) {
	db := secondaryDB(t)
	ids := seedRoles(t, db, "psw", "pr", "psw", "tor")
	got, err := db.LookupIndexed("device", "role", "psw")
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, got, ids[0], ids[2])
	got, _ = db.LookupIndexed("device", "role", "bb")
	wantIDs(t, got) // no matches: empty, not an error
	if _, err := db.LookupIndexed("device", "name", "d00"); err == nil {
		t.Error("unique-but-not-Indexed column should not satisfy LookupIndexed")
	}
	if _, err := db.LookupIndexed("device", "note", "x"); err == nil {
		t.Error("plain column should not satisfy LookupIndexed")
	}
}

func TestSecondaryIndexFollowsUpdateAndDelete(t *testing.T) {
	db := secondaryDB(t)
	ids := seedRoles(t, db, "psw", "psw")
	db.WithTx(func(tx *Tx) error {
		return tx.Update("device", ids[0], map[string]any{"role": "pr"})
	})
	got, _ := db.LookupIndexed("device", "role", "psw")
	wantIDs(t, got, ids[1])
	got, _ = db.LookupIndexed("device", "role", "pr")
	wantIDs(t, got, ids[0])
	db.WithTx(func(tx *Tx) error { return tx.Delete("device", ids[1]) })
	got, _ = db.LookupIndexed("device", "role", "psw")
	wantIDs(t, got)
}

func TestSecondaryIndexRollback(t *testing.T) {
	db := secondaryDB(t)
	ids := seedRoles(t, db, "psw", "pr")
	tx, _ := db.Begin()
	tx.Insert("device", map[string]any{"name": "ghost", "role": "psw"})
	tx.Update("device", ids[0], map[string]any{"role": "tor"})
	tx.Delete("device", ids[1])
	// Uncommitted state is visible inside the tx via its own lookups.
	in, err := tx.LookupIndexed("device", "role", "psw")
	if err != nil || len(in) != 1 {
		t.Fatalf("in-tx lookup: %v %v", in, err)
	}
	tx.Rollback()
	got, _ := db.LookupIndexed("device", "role", "psw")
	wantIDs(t, got, ids[0])
	got, _ = db.LookupIndexed("device", "role", "pr")
	wantIDs(t, got, ids[1])
	got, _ = db.LookupIndexed("device", "role", "tor")
	wantIDs(t, got)
}

func TestSecondaryIndexReplicates(t *testing.T) {
	db := secondaryDB(t)
	rep := NewReplica(db, "replica.sec")
	ids := seedRoles(t, db, "psw", "pr", "psw")
	db.WithTx(func(tx *Tx) error {
		return tx.Update("device", ids[1], map[string]any{"role": "psw"})
	})
	db.WithTx(func(tx *Tx) error { return tx.Delete("device", ids[0]) })
	if err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	got, err := rep.DB().LookupIndexed("device", "role", "psw")
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, got, ids[1], ids[2])
}

func TestSecondaryIndexNullNotIndexed(t *testing.T) {
	db := NewDB("m")
	if err := db.CreateTable(TableDef{
		Name: "t",
		Columns: []Column{
			{Name: "k", Type: ColString, Nullable: true, Indexed: true},
		},
	}); err != nil {
		t.Fatal(err)
	}
	var id int64
	db.WithTx(func(tx *Tx) error {
		var err error
		id, err = tx.Insert("t", map[string]any{})
		return err
	})
	// NULL is never an index key; setting and clearing the value moves the
	// row in and out of the index.
	db.WithTx(func(tx *Tx) error { return tx.Update("t", id, map[string]any{"k": "x"}) })
	got, _ := db.LookupIndexed("t", "k", "x")
	wantIDs(t, got, id)
	db.WithTx(func(tx *Tx) error { return tx.Update("t", id, map[string]any{"k": nil}) })
	got, _ = db.LookupIndexed("t", "k", "x")
	wantIDs(t, got)
}

func TestSecondaryIndexIntNormalization(t *testing.T) {
	db := NewDB("m")
	if err := db.CreateTable(TableDef{
		Name:    "t",
		Columns: []Column{{Name: "n", Type: ColInt, Indexed: true}},
	}); err != nil {
		t.Fatal(err)
	}
	var id int64
	db.WithTx(func(tx *Tx) error {
		var err error
		id, err = tx.Insert("t", map[string]any{"n": 7}) // plain int: stored as int64
		return err
	})
	for _, v := range []any{7, int32(7), int64(7)} {
		got, err := db.LookupIndexed("t", "n", v)
		if err != nil {
			t.Fatal(err)
		}
		wantIDs(t, got, id)
	}
}

func TestAlterAddIndexedColumn(t *testing.T) {
	db := secondaryDB(t)
	ids := seedRoles(t, db, "psw")
	if err := db.AlterAddColumn("device", Column{
		Name: "state", Type: ColString, Nullable: true, Indexed: true,
	}); err != nil {
		t.Fatal(err)
	}
	// Pre-existing rows read NULL and stay out of the index.
	got, err := db.LookupIndexed("device", "state", "drained")
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, got)
	db.WithTx(func(tx *Tx) error {
		return tx.Update("device", ids[0], map[string]any{"state": "drained"})
	})
	got, _ = db.LookupIndexed("device", "state", "drained")
	wantIDs(t, got, ids[0])
}
