package relstore

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// epoch is one of the two read stores of a DB (a left-right pair).
// Readers access the published epoch lock-free — an atomic pointer load
// plus a reference count — and never block behind write transactions.
// Committers advance the pair: the spare store catches up by replaying
// the binlog delta, gets published with an atomic pointer swap, and the
// previous store becomes the spare once its last reader leaves. An epoch
// is only ever mutated while unpublished and reference-free, so readers
// never observe a store mid-apply; and because commits append whole
// transaction groups to the binlog atomically, every replayed prefix —
// and therefore every epoch — is transaction-consistent (no torn reads).
type epoch struct {
	seq    uint64 // binlog sequence this store reflects
	tables map[string]*table
	refs   atomic.Int64 // readers currently inside this epoch
}

// release marks the caller done reading the epoch.
func (e *epoch) release() { e.refs.Add(-1) }

// readEpoch pins and returns the published epoch; callers must release()
// it. The epoch reflects every transaction whose Commit returned before
// this call (Commit publishes before returning), so read-your-writes
// holds. The fast path is two atomic pointer loads and a counter
// increment — no mutex, no waiting on writers.
func (db *DB) readEpoch() *epoch {
	for {
		e := db.epochPtr.Load()
		e.refs.Add(1)
		// Re-check after pinning: if the pointer moved, the committer may
		// have recycled e as the spare the instant before our increment
		// landed; drop the pin and retry. If it still points at e, the
		// publish of any successor (and thus any recycling of e) happened
		// after our increment, so the drain loop sees our pin — and if e
		// was re-published after a round as the spare, its mutations
		// happened before that publish and are visible.
		if db.epochPtr.Load() == e {
			return e
		}
		e.refs.Add(-1)
	}
}

// advanceEpochs brings the published epoch to at least target by
// replaying the binlog delta onto the spare store and swapping it in.
// Called by committers after their group is in the binlog; epochMu
// serializes concurrent committers, and a committer whose target was
// already covered by a concurrent advance returns immediately.
func (db *DB) advanceEpochs(target uint64) {
	db.epochMu.Lock()
	defer db.epochMu.Unlock()
	cur := db.epochPtr.Load()
	if cur.seq >= target {
		return
	}
	next := db.spare
	db.spare = nil
	db.binlogMu.RLock()
	entries := db.entriesSinceLocked(next.seq)
	db.binlogMu.RUnlock()
	for _, e := range entries {
		// Entries were validated when first committed; replay onto the
		// read store cannot fail.
		if err := applyEntryToTables(next.tables, e); err != nil {
			panic(fmt.Sprintf("relstore: %s: epoch replay of seq %d: %v", db.name, e.Seq, err))
		}
		next.seq = e.Seq
	}
	db.epochPtr.Store(next)
	// Readers pinned the old epoch before the swap; they are short point
	// reads, so spin-wait for them to drain rather than paying for a
	// heavier handoff. New readers land on the published epoch and never
	// delay us further.
	for cur.refs.Load() != 0 {
		runtime.Gosched()
	}
	db.spare = cur
}

// applyEntryToTables replays one binlog record onto a table set.
// Constraints were validated when the entry was first committed, so this
// path maintains rows and indexes directly. Shared by the epoch builder
// and replica replication.
func applyEntryToTables(tables map[string]*table, e LogEntry) error {
	switch e.Op {
	case OpCreateTable:
		if e.Def == nil {
			return fmt.Errorf("CREATE TABLE entry without definition")
		}
		if _, dup := tables[e.Table]; dup {
			return fmt.Errorf("table %q already exists", e.Table)
		}
		tables[e.Table] = newTable(*e.Def)
	case OpInsert:
		t, ok := tables[e.Table]
		if !ok {
			return fmt.Errorf("no such table %q", e.Table)
		}
		t.restoreRow(e.RowID, copyValues(e.Values))
	case OpUpdate:
		t, ok := tables[e.Table]
		if !ok {
			return fmt.Errorf("no such table %q", e.Table)
		}
		if _, ok := t.rows[e.RowID]; !ok {
			return fmt.Errorf("%s: no row with id %d", e.Table, e.RowID)
		}
		t.applyUpdate(e.RowID, copyValues(e.Values))
	case OpDelete:
		t, ok := tables[e.Table]
		if !ok {
			return fmt.Errorf("no such table %q", e.Table)
		}
		t.removeRow(e.RowID)
	case OpAlterAddColumn:
		t, ok := tables[e.Table]
		if !ok {
			return fmt.Errorf("no such table %q", e.Table)
		}
		if e.Col == nil {
			return fmt.Errorf("ALTER entry without column")
		}
		if err := t.addColumn(*e.Col); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown op %d", e.Op)
	}
	return nil
}
