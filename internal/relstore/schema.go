// Package relstore is an in-memory relational storage engine.
//
// FBNet's persistent object store is implemented on MySQL with one table
// per model, foreign keys for relationship fields, and asynchronous
// master/slave replication (SIGCOMM '16, §4.3). relstore reproduces the
// properties FBNet depends on without an external database: typed tables
// with columns and foreign keys, uniqueness constraints, transactions with
// rollback, referential actions (RESTRICT / CASCADE / SET NULL), a binlog,
// and asynchronous replicas that can be promoted to master on failure.
//
// Concurrency model: a DB is safe for concurrent use; writes go through
// transactions which hold the write lock for their duration (single-writer,
// like a table-locked MySQL), reads take the read lock and return copies.
package relstore

import (
	"fmt"
	"sort"
)

// ColType is the storage type of a column.
type ColType int

const (
	ColString ColType = iota
	ColInt
	ColBool
	ColFloat
)

func (t ColType) String() string {
	switch t {
	case ColString:
		return "string"
	case ColInt:
		return "int"
	case ColBool:
		return "bool"
	case ColFloat:
		return "float"
	}
	return "unknown"
}

// FKAction is the referential action applied to referencing rows when a
// referenced row is deleted.
type FKAction int

const (
	Restrict FKAction = iota // refuse to delete while references exist
	Cascade                  // delete referencing rows too
	SetNull                  // null out the referencing column
)

func (a FKAction) String() string {
	switch a {
	case Restrict:
		return "RESTRICT"
	case Cascade:
		return "CASCADE"
	case SetNull:
		return "SET NULL"
	}
	return "unknown"
}

// Column describes one table column. Every table implicitly has an "id"
// primary key column of type int.
type Column struct {
	Name     string
	Type     ColType
	Nullable bool
	Unique   bool
	// Indexed declares a non-unique secondary index on the column: a
	// value → id-set map maintained under transactional insert, update,
	// delete, rollback, and binlog replication. Point lookups on indexed
	// columns (LookupIndexed) are O(matches) instead of O(table).
	Indexed bool
	// Validate, if set, is called with each non-nil candidate value before
	// insert/update (FBNet uses this for per-field validation such as
	// V6PrefixField, Fig. 6).
	Validate func(v any) error
}

// ForeignKey declares that a column references another table's id.
type ForeignKey struct {
	Column   string
	RefTable string
	OnDelete FKAction
}

// TableDef is the schema of one table.
type TableDef struct {
	Name        string
	Columns     []Column
	ForeignKeys []ForeignKey
}

func (d *TableDef) column(name string) (*Column, bool) {
	for i := range d.Columns {
		if d.Columns[i].Name == name {
			return &d.Columns[i], true
		}
	}
	return nil, false
}

func (d *TableDef) foreignKey(col string) (*ForeignKey, bool) {
	for i := range d.ForeignKeys {
		if d.ForeignKeys[i].Column == col {
			return &d.ForeignKeys[i], true
		}
	}
	return nil, false
}

// validateDef checks internal consistency of a table definition against
// the already-registered tables (self-references are allowed).
func validateDef(def *TableDef, existing map[string]*table) error {
	if def.Name == "" {
		return fmt.Errorf("relstore: table name must not be empty")
	}
	seen := map[string]bool{"id": true}
	for _, c := range def.Columns {
		if c.Name == "" {
			return fmt.Errorf("relstore: table %s: empty column name", def.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("relstore: table %s: duplicate column %q", def.Name, c.Name)
		}
		seen[c.Name] = true
	}
	for _, fk := range def.ForeignKeys {
		col, ok := def.column(fk.Column)
		if !ok {
			return fmt.Errorf("relstore: table %s: foreign key on unknown column %q", def.Name, fk.Column)
		}
		if col.Type != ColInt {
			return fmt.Errorf("relstore: table %s: foreign key column %q must be int, is %s", def.Name, fk.Column, col.Type)
		}
		if fk.RefTable != def.Name {
			if _, ok := existing[fk.RefTable]; !ok {
				return fmt.Errorf("relstore: table %s: foreign key references unknown table %q", def.Name, fk.RefTable)
			}
		}
		if fk.OnDelete == SetNull && !col.Nullable {
			return fmt.Errorf("relstore: table %s: SET NULL foreign key on non-nullable column %q", def.Name, fk.Column)
		}
	}
	return nil
}

// checkValue validates and normalizes a value for a column. Integers of
// any width normalize to int64; nil is accepted for nullable columns.
func checkValue(tname string, c *Column, v any) (any, error) {
	if v == nil {
		if !c.Nullable {
			return nil, fmt.Errorf("relstore: %s.%s: NULL not allowed", tname, c.Name)
		}
		return nil, nil
	}
	var norm any
	switch c.Type {
	case ColString:
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("relstore: %s.%s: want string, got %T", tname, c.Name, v)
		}
		norm = s
	case ColInt:
		switch n := v.(type) {
		case int:
			norm = int64(n)
		case int32:
			norm = int64(n)
		case int64:
			norm = n
		default:
			return nil, fmt.Errorf("relstore: %s.%s: want int, got %T", tname, c.Name, v)
		}
	case ColBool:
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("relstore: %s.%s: want bool, got %T", tname, c.Name, v)
		}
		norm = b
	case ColFloat:
		switch f := v.(type) {
		case float32:
			norm = float64(f)
		case float64:
			norm = f
		default:
			return nil, fmt.Errorf("relstore: %s.%s: want float, got %T", tname, c.Name, v)
		}
	default:
		return nil, fmt.Errorf("relstore: %s.%s: unknown column type", tname, c.Name)
	}
	if c.Validate != nil {
		if err := c.Validate(norm); err != nil {
			return nil, fmt.Errorf("relstore: %s.%s: %w", tname, c.Name, err)
		}
	}
	return norm, nil
}

// Row is a snapshot of one table row: the primary key plus column values.
type Row struct {
	ID     int64
	Values map[string]any
}

// Get returns the value of a column (nil if NULL or absent).
func (r Row) Get(col string) any { return r.Values[col] }

// String returns the string value of a column, or "" when NULL.
func (r Row) String(col string) string {
	if s, ok := r.Values[col].(string); ok {
		return s
	}
	return ""
}

// Int returns the int64 value of a column, or 0 when NULL.
func (r Row) Int(col string) int64 {
	if n, ok := r.Values[col].(int64); ok {
		return n
	}
	return 0
}

// Bool returns the bool value of a column, or false when NULL.
func (r Row) Bool(col string) bool {
	if b, ok := r.Values[col].(bool); ok {
		return b
	}
	return false
}

// Float returns the float64 value of a column, or 0 when NULL.
func (r Row) Float(col string) float64 {
	if f, ok := r.Values[col].(float64); ok {
		return f
	}
	return 0
}

func copyValues(m map[string]any) map[string]any {
	out := make(map[string]any, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sortedIDs returns the keys of a row map in ascending order, giving scans
// a deterministic order.
func sortedIDs[V any](m map[int64]V) []int64 {
	ids := make([]int64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
