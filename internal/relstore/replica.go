package relstore

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/robotron-net/robotron/internal/telemetry"
)

// ErrMasterDown is returned by CatchUp when the master database is not
// serving: a dead master has no binlog to stream, and pretending
// otherwise would let replication read entries the real server could
// never have sent.
var ErrMasterDown = errors.New("relstore: master is down")

// Replica is an asynchronous follower of a master DB, mirroring FBNet's
// MySQL replication: "all writes to the master database server are
// replicated asynchronously to the slave servers with a typical lag of
// under one second" (§4.3.3).
//
// Replication is pull-based: CatchUp applies all pending binlog entries;
// StartAuto runs a background puller with a polling interval (the
// effective replication lag). Tests use CatchUp for determinism.
type Replica struct {
	master *DB

	mu      sync.Mutex
	db      *DB
	applied uint64
	stopCh  chan struct{}
	stopped sync.WaitGroup
	auto    bool
}

// NewReplica creates an empty replica of master named name. The replica
// converges by replaying the master's binlog from the beginning (schema
// changes included).
func NewReplica(master *DB, name string) *Replica {
	return &Replica{master: master, db: NewDB(name)}
}

// DB returns the replica's database for (read-only) queries. Callers must
// not write to it; writes belong on the master.
func (r *Replica) DB() *DB { return r.db }

// Applied returns the last applied binlog sequence number.
func (r *Replica) Applied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Instrument registers the replica's replication-lag gauge
// (master binlog seq − replica applied seq) and a health check that
// fails while the replica is down, both labeled with the replica name.
func (r *Replica) Instrument(reg *telemetry.Registry) {
	name := r.db.Name()
	reg.Help("robotron_relstore_replication_lag", "binlog entries the replica is behind the master")
	reg.GaugeFunc("robotron_relstore_replication_lag",
		func() float64 { return float64(r.Lag()) },
		telemetry.Label{Key: "replica", Value: name})
	reg.RegisterHealth("relstore-replica-"+name, func() (string, error) {
		if !r.db.Healthy() {
			return "", fmt.Errorf("replica %s is down", name)
		}
		return fmt.Sprintf("lag=%d", r.Lag()), nil
	})
}

// Lag returns how many binlog entries the replica is behind the master.
func (r *Replica) Lag() uint64 {
	r.mu.Lock()
	applied := r.applied
	r.mu.Unlock()
	seq := r.master.Seq()
	if seq < applied {
		return 0
	}
	return seq - applied
}

// CatchUp applies all pending binlog entries from the master.
func (r *Replica) CatchUp() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.catchUpLocked()
}

func (r *Replica) catchUpLocked() error {
	if !r.db.Healthy() {
		return fmt.Errorf("relstore: replica %s is down", r.db.Name())
	}
	if !r.master.Healthy() {
		return fmt.Errorf("%w: replica %s cannot pull from %s", ErrMasterDown, r.db.Name(), r.master.Name())
	}
	entries := r.master.entriesSince(r.applied)
	return r.applyGroupsLocked(entries)
}

// applyGroupsLocked replays entries transaction group by transaction
// group. Each group lands atomically on the local DB, so the replica is
// torn-transaction-free at every observable instant — including the
// instant Promote snapshots it into a master.
func (r *Replica) applyGroupsLocked(entries []LogEntry) error {
	for start := 0; start < len(entries); {
		if entries[start].Seq <= r.applied {
			start++
			continue
		}
		end := txGroupEnd(entries, start)
		if err := r.db.applyTxGroup(entries[start:end]); err != nil {
			return fmt.Errorf("relstore: replica %s: applying seq %d: %w", r.db.Name(), entries[start].Seq, err)
		}
		r.applied = entries[end-1].Seq
		start = end
	}
	return nil
}

// txGroupEnd returns the exclusive end of the transaction group opening
// at entries[start]. Entries without a TxID (legacy records) group alone.
func txGroupEnd(entries []LogEntry, start int) int {
	end := start + 1
	for end < len(entries) && entries[start].TxID != 0 && entries[end].TxID == entries[start].TxID {
		end++
	}
	return end
}

// ApplyN applies at least n pending entries, rounded up to the next
// transaction boundary (partial transactions never apply), for tests
// that need to observe intermediate replication states.
func (r *Replica) ApplyN(n int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	entries := r.master.entriesSince(r.applied)
	if n <= 0 || len(entries) == 0 {
		return nil
	}
	end := n
	if end > len(entries) {
		end = len(entries)
	}
	for end < len(entries) && entries[end].TxID != 0 && entries[end].TxID == entries[end-1].TxID {
		end++
	}
	return r.applyGroupsLocked(entries[:end])
}

// StartAuto begins background replication, pulling every interval.
func (r *Replica) StartAuto(interval time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.auto {
		return
	}
	r.auto = true
	r.stopCh = make(chan struct{})
	r.stopped.Add(1)
	go func() {
		defer r.stopped.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-r.stopCh:
				return
			case <-t.C:
				r.mu.Lock()
				if r.db.Healthy() && r.master.Healthy() {
					// Best-effort: a failed pull retries next tick.
					_ = r.catchUpLocked()
				}
				r.mu.Unlock()
			}
		}
	}()
}

// StopAuto halts background replication.
func (r *Replica) StopAuto() {
	r.mu.Lock()
	if !r.auto {
		r.mu.Unlock()
		return
	}
	r.auto = false
	close(r.stopCh)
	r.mu.Unlock()
	r.stopped.Wait()
}

// Promote catches the replica up as far as the master allows (a dead
// master yields whatever has already been applied) and returns the
// underlying DB to serve as the new master. The caller owns re-pointing
// other replicas at it. Mirrors §4.3.3: "when the master goes down, the
// slave in the nearest data center is promoted to master".
func (r *Replica) Promote() *DB {
	r.StopAuto()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.master.Healthy() {
		_ = r.catchUpLocked()
	}
	return r.db
}

// applyTxGroup replays the binlog records of one transaction under a
// single lock acquisition and a single liveness check: the group lands
// atomically or not at all (a SetDown racing the apply waits for the
// whole group). A replica killed mid-stream therefore can never hold a
// torn transaction suffix.
func (db *DB) applyTxGroup(entries []LogEntry) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("relstore: %s is down", db.name)
	}
	for _, e := range entries {
		// Constraints were validated on the master, so replay maintains
		// rows and indexes directly (applyEntryToTables, shared with the
		// epoch builder).
		if err := applyEntryToTables(db.tables, e); err != nil {
			return err
		}
		db.seq = e.Seq
		if e.TxID > db.txSeq {
			// Keep the tx counter monotonic so transactions committed
			// after a promotion stamp fresh group ids.
			db.txSeq = e.TxID
		}
	}
	// The group also lands on the local binlog — atomically, like a local
	// commit — so the replica can itself be a replication source after
	// promotion and its own epoch readers never see a torn group.
	db.appendBinlog(entries...)
	if len(entries) > 0 {
		db.advanceEpochs(db.seq)
	}
	return nil
}
