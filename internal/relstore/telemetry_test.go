package relstore

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"github.com/robotron-net/robotron/internal/telemetry"
)

// lagGauge scrapes the registry and extracts the replication-lag gauge
// for the named replica.
func lagGauge(t *testing.T, reg *telemetry.Registry, replica string) float64 {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	prefix := `robotron_relstore_replication_lag{replica="` + replica + `"} `
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseFloat(line[len(prefix):], 64)
			if err != nil {
				t.Fatalf("bad gauge line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no replication-lag gauge for %s in scrape:\n%s", replica, b.String())
	return 0
}

// TestReplicationLagGaugeConvergesToZero: writes on the master open a
// lag visible through the gauge; CatchUp drives it back to zero.
func TestReplicationLagGaugeConvergesToZero(t *testing.T) {
	master := newTestDB(t)
	rep := NewReplica(master, "replica.test")
	reg := telemetry.NewRegistry()
	rep.Instrument(reg)

	// The replica has applied nothing: schema entries alone open a lag.
	if lag := lagGauge(t, reg, "replica.test"); lag == 0 {
		t.Fatal("lag gauge = 0 before any catch-up")
	}
	if err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if lag := lagGauge(t, reg, "replica.test"); lag != 0 {
		t.Fatalf("lag gauge = %v after catch-up, want 0", lag)
	}
	// New master writes reopen the lag by exactly the entry count...
	insertDevice(t, master, "psw1")
	insertDevice(t, master, "psw2")
	if lag := lagGauge(t, reg, "replica.test"); lag != 2 {
		t.Fatalf("lag gauge = %v after 2 master writes, want 2", lag)
	}
	if got, want := lagGauge(t, reg, "replica.test"), float64(rep.Lag()); got != want {
		t.Fatalf("gauge %v disagrees with Lag() %v", got, want)
	}
	// ...and partial application shrinks it before converging to zero.
	if err := rep.ApplyN(1); err != nil {
		t.Fatal(err)
	}
	if lag := lagGauge(t, reg, "replica.test"); lag != 1 {
		t.Fatalf("lag gauge = %v after partial apply, want 1", lag)
	}
	if err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if lag := lagGauge(t, reg, "replica.test"); lag != 0 {
		t.Fatalf("lag gauge = %v after full catch-up, want 0", lag)
	}
}

// TestReplicaHealthCheck: the replica's health check carries the lag
// detail and fails when the replica goes down.
func TestReplicaHealthCheck(t *testing.T) {
	master := newTestDB(t)
	rep := NewReplica(master, "replica.hc")
	reg := telemetry.NewRegistry()
	rep.Instrument(reg)
	statuses, ok := reg.Health()
	if !ok || len(statuses) != 1 || !strings.Contains(statuses[0].Detail, "lag=") {
		t.Fatalf("health = %+v ok=%v", statuses, ok)
	}
	rep.DB().SetDown(true)
	if _, ok := reg.Health(); ok {
		t.Error("health should fail with the replica down")
	}
}

// TestTxCountersOnRegistry: commits and rollbacks are counted per
// server under the existing db.mu critical sections.
func TestTxCountersOnRegistry(t *testing.T) {
	db := newTestDB(t)
	reg := telemetry.NewRegistry()
	db.Instrument(reg)
	insertDevice(t, db, "psw1")
	insertDevice(t, db, "psw2")
	_ = db.WithTx(func(tx *Tx) error {
		if _, err := tx.Insert("device", map[string]any{"name": "psw3", "role": "psw"}); err != nil {
			return err
		}
		return errors.New("abort")
	})
	server := telemetry.Label{Key: "server", Value: "master.test"}
	if v := reg.Counter("robotron_relstore_tx_commits_total", server).Value(); v != 2 {
		t.Errorf("commits = %d, want 2", v)
	}
	if v := reg.Counter("robotron_relstore_tx_rollbacks_total", server).Value(); v != 1 {
		t.Errorf("rollbacks = %d, want 1", v)
	}
	// The binlog-seq gauge tracks db.Seq() live.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `robotron_relstore_binlog_seq{server="master.test"}`) {
		t.Errorf("scrape missing binlog seq gauge:\n%s", b.String())
	}
}
