package relstore

import (
	"math/rand"
	"testing"
)

// TestQuickReferentialIntegrity drives random operation sequences against
// the FK-linked schema and verifies the core invariant after every
// transaction: no row ever references a nonexistent row, regardless of
// cascades, SET NULLs, rollbacks, and interleaving.
func TestQuickReferentialIntegrity(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		db := newTestDB(t)
		var devices, linecards, pifs, circuits []int64
		pick := func(xs []int64) (int64, bool) {
			if len(xs) == 0 {
				return 0, false
			}
			return xs[r.Intn(len(xs))], true
		}
		remove := func(xs []int64, id int64) []int64 {
			out := xs[:0]
			for _, x := range xs {
				if x != id {
					out = append(out, x)
				}
			}
			return out
		}
		for step := 0; step < 200; step++ {
			commit := r.Intn(10) > 0 // 10% of transactions roll back
			tx, err := db.Begin()
			if err != nil {
				t.Fatal(err)
			}
			var created struct {
				table string
				id    int64
			}
			var deleted struct {
				table string
				id    int64
			}
			op := r.Intn(8)
			opErr := func() error {
				switch op {
				case 0, 1: // insert device
					id, err := tx.Insert("device", map[string]any{
						"name": randName(r), "role": "psw"})
					created.table, created.id = "device", id
					return err
				case 2: // insert linecard
					dev, ok := pick(devices)
					if !ok {
						return nil
					}
					id, err := tx.Insert("linecard", map[string]any{"slot": int64(r.Intn(8)), "device_id": dev})
					created.table, created.id = "linecard", id
					return err
				case 3: // insert pif
					lc, ok := pick(linecards)
					if !ok {
						return nil
					}
					id, err := tx.Insert("pif", map[string]any{"name": randName(r), "linecard_id": lc})
					created.table, created.id = "pif", id
					return err
				case 4: // insert circuit
					a, ok1 := pick(pifs)
					z, ok2 := pick(pifs)
					if !ok1 || !ok2 {
						return nil
					}
					id, err := tx.Insert("circuit", map[string]any{
						"a_pif_id": a, "z_pif_id": z, "status": "up"})
					created.table, created.id = "circuit", id
					return err
				case 5: // delete device (cascades linecards+pifs, nulls circuits)
					dev, ok := pick(devices)
					if !ok {
						return nil
					}
					deleted.table, deleted.id = "device", dev
					return tx.Delete("device", dev)
				case 6: // delete circuit
					c, ok := pick(circuits)
					if !ok {
						return nil
					}
					deleted.table, deleted.id = "circuit", c
					return tx.Delete("circuit", c)
				case 7: // rename device
					dev, ok := pick(devices)
					if !ok {
						return nil
					}
					return tx.Update("device", dev, map[string]any{"name": randName(r)})
				}
				return nil
			}()
			if opErr != nil {
				// Unique collisions etc.: roll back and continue.
				tx.Rollback()
				continue
			}
			if !commit {
				tx.Rollback()
				continue
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			// Track shadow state only on commit.
			if created.id != 0 {
				switch created.table {
				case "device":
					devices = append(devices, created.id)
				case "linecard":
					linecards = append(linecards, created.id)
				case "pif":
					pifs = append(pifs, created.id)
				case "circuit":
					circuits = append(circuits, created.id)
				}
			}
			if deleted.id != 0 {
				switch deleted.table {
				case "device":
					devices = remove(devices, deleted.id)
					// Cascades: rebuild linecard/pif shadows from the db.
					linecards = idsOf(t, db, "linecard")
					pifs = idsOf(t, db, "pif")
					circuits = idsOf(t, db, "circuit")
				case "circuit":
					circuits = remove(circuits, deleted.id)
				}
			}
			assertIntegrity(t, db, seed, step)
		}
	}
}

func idsOf(t *testing.T, db *DB, table string) []int64 {
	t.Helper()
	rows, err := db.Select(table, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r.ID
	}
	return out
}

// assertIntegrity checks that every FK value points at a live row.
func assertIntegrity(t *testing.T, db *DB, seed int64, step int) {
	t.Helper()
	exists := map[string]map[int64]bool{}
	for _, table := range []string{"device", "linecard", "pif", "circuit"} {
		exists[table] = map[int64]bool{}
		rows, err := db.Select(table, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			exists[table][r.ID] = true
		}
	}
	check := func(table, col, ref string) {
		rows, _ := db.Select(table, nil)
		for _, r := range rows {
			v := r.Get(col)
			if v == nil {
				continue
			}
			if !exists[ref][v.(int64)] {
				t.Fatalf("seed %d step %d: %s %d has dangling %s=%d -> %s",
					seed, step, table, r.ID, col, v, ref)
			}
		}
	}
	check("linecard", "device_id", "device")
	check("pif", "linecard_id", "linecard")
	check("circuit", "a_pif_id", "pif")
	check("circuit", "z_pif_id", "pif")
}

func randName(r *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 8)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}
