// Package vclock provides the deterministic time source shared by every
// subsystem that schedules future work: the reconciler's backoff and
// sweep timers, and the scenario engine's event sequencing.
//
// The real clock delegates to the runtime; the VirtualClock is manually
// advanced and fires timers inline in a strict (due time, creation order)
// sequence, so a test or scenario that advances past several deadlines
// observes every callback in a single deterministic order regardless of
// goroutine scheduling. It was born in internal/reconcile and promoted
// here when the scenario engine needed the same guarantee.
package vclock

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time. The real clock is used in production; tests and
// scenarios drive a VirtualClock so schedules are exercised
// deterministically — jitter-free consumers are bit-for-bit reproducible
// under a virtual run.
type Clock interface {
	Now() time.Time
	// AfterFunc schedules f to run once after d. The returned Timer's
	// Stop cancels the call if it has not fired yet.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a cancelable pending call.
type Timer interface {
	Stop() bool
}

// realClock delegates to the runtime clock.
type realClock struct{}

// RealClock returns the wall-time Clock.
func RealClock() Clock { return realClock{} }

func (realClock) Now() time.Time { return time.Now() }

func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return time.AfterFunc(d, f)
}

// VirtualClock is a manually advanced clock. Timers fire inline during
// Advance, strictly ordered by (due time, creation order), so a test that
// advances past several deadlines observes every callback in a single
// deterministic sequence. Callbacks may schedule further timers; Advance
// keeps firing until nothing is due within the advanced span.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
	seq int64
	due []*vtimer
}

type vtimer struct {
	clock *VirtualClock
	when  time.Time
	seq   int64
	f     func()
	fired bool
	dead  bool
}

// NewVirtualClock returns a virtual clock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc schedules f at now+d (immediately due when d <= 0; it still
// fires only from Advance, never inline, so callers never re-enter).
func (c *VirtualClock) AfterFunc(d time.Duration, f func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	t := &vtimer{clock: c, when: c.now.Add(d), seq: c.seq, f: f}
	c.due = append(c.due, t)
	return t
}

func (t *vtimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired || t.dead {
		return false
	}
	t.dead = true
	return true
}

// Advance moves the clock forward by d, firing every timer due on the way
// in deterministic order. Callbacks run with no clock lock held. Virtual
// time never moves backward: a callback that re-enters Advance (directly
// or through code it calls) may leave the clock beyond this call's
// target, in which case this call keeps that later time.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		next := c.nextDueLocked(target)
		if next == nil {
			break
		}
		if next.when.After(c.now) {
			c.now = next.when
		}
		next.fired = true
		f := next.f
		c.mu.Unlock()
		f()
		c.mu.Lock()
	}
	if target.After(c.now) {
		c.now = target
	}
	c.compactLocked()
	c.mu.Unlock()
}

// nextDueLocked picks the earliest live timer due at or before target.
func (c *VirtualClock) nextDueLocked(target time.Time) *vtimer {
	var best *vtimer
	for _, t := range c.due {
		if t.fired || t.dead || t.when.After(target) {
			continue
		}
		if best == nil || t.when.Before(best.when) ||
			(t.when.Equal(best.when) && t.seq < best.seq) {
			best = t
		}
	}
	return best
}

func (c *VirtualClock) compactLocked() {
	live := c.due[:0]
	for _, t := range c.due {
		if !t.fired && !t.dead {
			live = append(live, t)
		}
	}
	c.due = live
	sort.Slice(c.due, func(i, j int) bool {
		if !c.due[i].when.Equal(c.due[j].when) {
			return c.due[i].when.Before(c.due[j].when)
		}
		return c.due[i].seq < c.due[j].seq
	})
}

// PendingTimers reports how many timers are scheduled and not yet fired.
func (c *VirtualClock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.due {
		if !t.fired && !t.dead {
			n++
		}
	}
	return n
}
