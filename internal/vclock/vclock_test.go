package vclock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)

func TestAdvanceFiresInDueThenSeqOrder(t *testing.T) {
	c := NewVirtualClock(epoch)
	var got []int
	c.AfterFunc(20*time.Millisecond, func() { got = append(got, 2) })
	c.AfterFunc(10*time.Millisecond, func() { got = append(got, 0) })
	c.AfterFunc(10*time.Millisecond, func() { got = append(got, 1) })
	c.Advance(time.Second)
	want := []int{0, 1, 2}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", got, want)
		}
	}
	if c.PendingTimers() != 0 {
		t.Errorf("pending timers = %d, want 0", c.PendingTimers())
	}
}

func TestCallbackSchedulesWithinSpan(t *testing.T) {
	c := NewVirtualClock(epoch)
	fired := 0
	c.AfterFunc(time.Millisecond, func() {
		fired++
		c.AfterFunc(time.Millisecond, func() { fired++ })
	})
	c.Advance(time.Second)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (chained timer inside the span)", fired)
	}
	if got := c.Now(); !got.Equal(epoch.Add(time.Second)) {
		t.Errorf("now = %v, want %v", got, epoch.Add(time.Second))
	}
}

func TestStopPreventsFiring(t *testing.T) {
	c := NewVirtualClock(epoch)
	fired := false
	tm := c.AfterFunc(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on a pending timer should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	c.Advance(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

// TestNestedAdvanceNeverRewinds is the regression test for a latent bug
// the scenario engine exposed: a timer callback that itself advances the
// clock (a nested Advance) used to leave the outer Advance clamping time
// BACK to its own, earlier target — virtual time moved backward and
// later timers fired at stale timestamps. Time must be monotonic.
func TestNestedAdvanceNeverRewinds(t *testing.T) {
	c := NewVirtualClock(epoch)
	var at []time.Time
	c.AfterFunc(10*time.Millisecond, func() {
		// Re-enter: advance far beyond the outer target.
		c.Advance(time.Hour)
		at = append(at, c.Now())
	})
	c.Advance(20 * time.Millisecond) // outer target well before the nested one
	at = append(at, c.Now())

	inner := epoch.Add(10 * time.Millisecond).Add(time.Hour)
	if !at[0].Equal(inner) {
		t.Fatalf("nested advance landed at %v, want %v", at[0], inner)
	}
	if at[1].Before(at[0]) {
		t.Fatalf("outer Advance rewound the clock: %v -> %v", at[0], at[1])
	}
	if !c.Now().Equal(inner) {
		t.Errorf("final now = %v, want the later (nested) target %v", c.Now(), inner)
	}
}

// TestConcurrentAfterFuncRace exercises concurrent scheduling against an
// advancing clock under -race.
func TestConcurrentAfterFuncRace(t *testing.T) {
	c := NewVirtualClock(epoch)
	var mu sync.Mutex
	fired := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c.AfterFunc(time.Duration(j)*time.Millisecond, func() {
					mu.Lock()
					fired++
					mu.Unlock()
				})
			}
		}(i)
	}
	wg.Wait()
	c.Advance(time.Second)
	mu.Lock()
	defer mu.Unlock()
	if fired != 8*50 {
		t.Fatalf("fired = %d, want %d", fired, 8*50)
	}
}
