package scenario

import (
	"testing"
)

// minimal returns a valid baseline scenario the table cases mutate.
const validBase = `name: base
fleet:
  site: pop1
  cluster: pop1-c1
  template: pop-gen1
events:
  - at: 1m
    action: wait
assert:
  - type: no-candidates
    device: all
`

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("s.yaml", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestValidateAcceptsBase(t *testing.T) {
	if err := Validate(mustParse(t, validBase)); err != nil {
		t.Fatalf("Validate(base): %v", err)
	}
}

// TestValidateGolden pins the exact first-error message for a table of
// invalid scenarios. These strings are the operator-facing contract of
// `robotron sim validate`; every message carries file:line.
func TestValidateGolden(t *testing.T) {
	fleet := "fleet:\n  site: pop1\n  cluster: pop1-c1\n  template: pop-gen1\n"
	tail := "events:\n  - at: 1m\n    action: wait\n"
	cases := []struct {
		name string
		src  string
		want string // exact error string
	}{
		{
			"missing name",
			fleet + tail,
			`s.yaml:1: scenario is missing the required "name"`,
		},
		{
			"whitespace name",
			"name: two words\n" + fleet + tail,
			`s.yaml:1: scenario name "two words" must not contain whitespace`,
		},
		{
			"missing site",
			"name: x\nfleet:\n  cluster: c1\n  template: pop-gen1\n" + tail,
			`s.yaml:3: fleet is missing the required "site"`,
		},
		{
			"bad template",
			"name: x\nfleet:\n  site: s\n  cluster: c1\n  template: mesh-gen9\n" + tail,
			`s.yaml:3: fleet template "mesh-gen9" is not one of pop-gen1, pop-gen2, dc-gen1, dc-gen2, dc-gen3`,
		},
		{
			"racks on pop",
			"name: x\nfleet:\n  site: s\n  cluster: c1\n  template: pop-gen1\n  racks: 3\n" + tail,
			`s.yaml:3: fleet template "pop-gen1" does not take racks (racks are for dc templates)`,
		},
		{
			"kind contradicts template",
			"name: x\nfleet:\n  site: s\n  cluster: c1\n  template: dc-gen1\n  kind: pop\n" + tail,
			`s.yaml:3: fleet kind "pop" contradicts template "dc-gen1" (implies "dc")`,
		},
		{
			"unknown device",
			"name: x\n" + fleet + "events:\n  - at: 1m\n    action: drift\n    device: fsw9.pop1-c1\n    line: \"! x\"\n",
			`s.yaml:7: event 0 references device "fsw9.pop1-c1", which the fleet (template pop-gen1, cluster pop1-c1) does not provision`,
		},
		{
			"unknown fault kind",
			"name: x\n" + fleet + "faults:\n  rules:\n    - kind: gremlins\n      probability: 0.5\n" + tail,
			`s.yaml:8: fault rule 0: unknown fault kind "gremlins" (known: drop-after, drop-before, garbled, latency, reboot, transient)`,
		},
		{
			"probability out of range",
			"name: x\n" + fleet + "faults:\n  rules:\n    - kind: transient\n      probability: 1.5\n" + tail,
			`s.yaml:8: fault rule 0: probability 1.5 is outside (0, 1]`,
		},
		{
			"armed without rules",
			"name: x\n" + fleet + "faults:\n  armed: true\n" + tail,
			`s.yaml:3: faults are armed but no rules are declared`,
		},
		{
			"one service region",
			"name: x\n" + fleet + "service:\n  regions: [ash]\n" + tail,
			`s.yaml:7: service needs at least 2 regions (a master and a failover candidate)`,
		},
		{
			"duplicate service region",
			"name: x\n" + fleet + "service:\n  regions: [ash, ash]\n" + tail,
			`s.yaml:7: service region "ash" is declared twice`,
		},
		{
			"unknown action",
			"name: x\n" + fleet + "events:\n  - at: 1m\n    action: explode\n",
			`s.yaml:7: event 0: unknown action "explode" (known: chaos, collect, converge, corrupt-design, deploy, drift, firewall, kill-master, promote, release, reset-breaker, snapshot, sweep, wait)`,
		},
		{
			"events out of order",
			"name: x\n" + fleet + "events:\n  - at: 5m\n    action: wait\n  - at: 1m\n    action: wait\n",
			`s.yaml:9: event 1: offset 1m0s is before the previous event's 5m0s (events must be in time order)`,
		},
		{
			"event after end",
			"name: x\nend: 2m\n" + fleet + "events:\n  - at: 5m\n    action: wait\n",
			`s.yaml:8: event 0: offset 5m0s is after the scenario end 2m0s`,
		},
		{
			"drift without line",
			"name: x\n" + fleet + "events:\n  - at: 1m\n    action: drift\n    device: pr1.pop1-c1\n",
			`s.yaml:7: event 0: drift needs "line" (inject) or "cut" (remove), or both`,
		},
		{
			"drift on all",
			"name: x\n" + fleet + "events:\n  - at: 1m\n    action: drift\n    device: all\n    line: \"! x\"\n",
			`s.yaml:7: event 0: drift targets one device, not "all"`,
		},
		{
			"field on wrong action",
			"name: x\n" + fleet + "events:\n  - at: 1m\n    action: wait\n    devices: [all]\n",
			`s.yaml:7: event 0: field "devices" is not valid for action "wait"`,
		},
		{
			"reject xor mayfail",
			"name: x\n" + fleet + "events:\n  - at: 1m\n    action: deploy\n    devices: [all]\n    expect_reject: true\n    may_fail: true\n",
			`s.yaml:7: event 0: expect_reject and may_fail are mutually exclusive`,
		},
		{
			"converge without step",
			"name: x\n" + fleet + "events:\n  - at: 1m\n    action: converge\n    rounds: 3\n",
			`s.yaml:7: event 0: converge needs a positive "step" duration`,
		},
		{
			"kill-master without service",
			"name: x\n" + fleet + "events:\n  - at: 1m\n    action: kill-master\n",
			`s.yaml:7: event 0: action "kill-master" needs a "service" section`,
		},
		{
			"chaos without rules",
			"name: x\n" + fleet + "events:\n  - at: 1m\n    action: chaos\n    armed: true\n",
			`s.yaml:7: event 0: chaos event without fault rules`,
		},
		{
			"unknown assertion type",
			"name: x\n" + fleet + tail + "assert:\n  - type: vibes\n",
			`s.yaml:10: assert 0: unknown assertion type "vibes" (known: alarm, breaker, device-state, faults-fired, golden-unchanged, journal, metric, no-candidates, no-new-mgmt-ops, no-pending-confirms, running-matches-golden, verify-verdict)`,
		},
		{
			"bad state",
			"name: x\n" + fleet + tail + "assert:\n  - type: device-state\n    device: all\n    state: happy\n",
			`s.yaml:10: assert 0: unknown state "happy" (known: backoff, confirming, converged, converged-or-quarantined, detected, quarantined, remediating)`,
		},
		{
			"metric bad op",
			"name: x\n" + fleet + tail + "assert:\n  - type: metric\n    metric: m\n    op: \"~=\"\n    value: 1\n",
			`s.yaml:10: assert 0: unknown op "~=" (known: !=, <, <=, ==, >, >=)`,
		},
		{
			"metric bad label",
			"name: x\n" + fleet + tail + "assert:\n  - type: metric\n    metric: m\n    op: \"==\"\n    value: 1\n    labels: [novalue]\n",
			`s.yaml:10: assert 0: label "novalue" is not key=value`,
		},
		{
			"verdict invalid",
			"name: x\n" + fleet + tail + "assert:\n  - type: verify-verdict\n    verdict: maybe\n",
			`s.yaml:10: assert 0: verdict must be "rejected" or "passed", got "maybe"`,
		},
		{
			"expect checked too",
			"name: x\n" + fleet + "events:\n  - at: 1m\n    action: wait\n    expect:\n      - type: journal\n        event: quarantined\n        min_count: 0\n",
			`s.yaml:10: event 0 expect 0: min_count must be >= 1`,
		},
		{
			"nothing to do",
			"name: x\n" + fleet,
			`s.yaml:1: scenario declares no events and no assertions; nothing to do`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(mustParse(t, tc.src))
			if err == nil {
				t.Fatalf("Validate accepted an invalid scenario")
			}
			if err.Error() != tc.want {
				t.Fatalf("error mismatch\n got: %s\nwant: %s", err, tc.want)
			}
		})
	}
}

// TestValidateErrorsAreDeterministic runs a multi-violation scenario
// repeatedly: the first violation must win every time, with the same text.
func TestValidateErrorsAreDeterministic(t *testing.T) {
	src := "name: x\nfleet:\n  site: s\n  cluster: c1\n  template: pop-gen1\nevents:\n  - at: 1m\n    action: explode\n  - at: 2m\n    action: implode\nassert:\n  - type: vibes\n"
	first := Validate(mustParse(t, src))
	if first == nil {
		t.Fatal("expected an error")
	}
	for i := 0; i < 20; i++ {
		err := Validate(mustParse(t, src))
		if err == nil || err.Error() != first.Error() {
			t.Fatalf("run %d: %q != %q", i, err, first)
		}
	}
}
