package scenario

import (
	"errors"
	"path/filepath"
	"testing"
)

// tinyScenario is a fast end-to-end drill: drift one device, let the
// reconciler drive it back, assert convergence.
const tinyScenario = `name: tiny
fleet:
  site: pop1
  cluster: pop1-c1
  template: pop-gen1
events:
  - at: 1m
    action: drift
    device: psw1.pop1-c1
    line: "! scribble"
  - at: 2m
    action: converge
    rounds: 3
    step: 10m
assert:
  - type: device-state
    device: all
    state: converged
  - type: running-matches-golden
    device: all
  - type: journal
    event: remediate
    device: psw1.pop1-c1
    min_count: 1
`

func loadSrc(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("inline.yaml", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := Validate(f); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return f
}

func TestEngineTinyScenario(t *testing.T) {
	res, err := Run(loadSrc(t, tinyScenario), Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Scenario != "tiny" || res.Events != 2 {
		t.Errorf("result = %+v", res)
	}
	if res.Journal == "" {
		t.Error("empty journal")
	}
}

// TestEngineDeterminism runs the same scenario twice in one process and
// demands byte-identical journals — the core contract of the harness.
// The scenario includes seeded faults so the fault path is covered too.
func TestEngineDeterminism(t *testing.T) {
	const src = `name: det
seed: 99
fleet:
  site: pop1
  cluster: pop1-c1
  template: pop-gen1
reconciler:
  damping_threshold: -1
faults:
  rules:
    - kind: transient
      probability: 0.3
      verbs: [commit, commit-confirmed]
deploy:
  retry_attempts: 5
events:
  - at: 1m
    action: chaos
    armed: true
  - at: 2m
    action: drift
    device: psw1.pop1-c1
    line: "! a"
  - at: 3m
    action: drift
    device: psw2.pop1-c1
    line: "! b"
  - at: 5m
    action: chaos
    armed: false
  - at: 6m
    action: converge
    rounds: 10
    step: 10m
assert:
  - type: device-state
    device: all
    state: converged
`
	first, err := Run(loadSrc(t, src), Options{})
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	second, err := Run(loadSrc(t, src), Options{})
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if first.Journal != second.Journal {
		t.Fatalf("journals diverge:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", first.Journal, second.Journal)
	}
}

// TestEngineFailureNamesTheViolation runs a scenario whose expectation is
// deliberately wrong and checks the error names the event index, the
// assertion index, the assertion type, and the device — what an operator
// needs to find the broken line.
func TestEngineFailureNamesTheViolation(t *testing.T) {
	const src = `name: broken
fleet:
  site: pop1
  cluster: pop1-c1
  template: pop-gen1
events:
  - at: 1m
    action: drift
    device: psw1.pop1-c1
    line: "! scribble"
    expect:
      - type: no-candidates
        device: all
      - type: running-matches-golden
        device: psw1.pop1-c1
`
	_, err := Run(loadSrc(t, src), Options{})
	if err == nil {
		t.Fatal("Run passed a scenario that must fail")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, want *RunError: %v", err, err)
	}
	if re.Scenario != "broken" {
		t.Errorf("Scenario = %q", re.Scenario)
	}
	if re.EventIdx != 0 {
		t.Errorf("EventIdx = %d, want 0", re.EventIdx)
	}
	if re.AssertIdx != 1 {
		t.Errorf("AssertIdx = %d, want 1 (the second expectation)", re.AssertIdx)
	}
	if re.Kind != AssertRunningGolden {
		t.Errorf("Kind = %q, want %q", re.Kind, AssertRunningGolden)
	}
	if re.Device != "psw1.pop1-c1" {
		t.Errorf("Device = %q", re.Device)
	}
	if re.Context == "" {
		t.Error("no context: a running-vs-golden failure should carry a diff hunk")
	}
}

// TestEngineFinalAssertFailure checks final assertions report EventIdx -1
// and that the violated-assertion index is the scenario's, not a
// renumbering.
func TestEngineFinalAssertFailure(t *testing.T) {
	const src = `name: broken-final
fleet:
  site: pop1
  cluster: pop1-c1
  template: pop-gen1
events:
  - at: 1m
    action: drift
    device: psw2.pop1-c1
    line: "! scribble"
assert:
  - type: no-pending-confirms
    device: all
  - type: device-state
    device: psw2.pop1-c1
    state: converged
`
	_, err := Run(loadSrc(t, src), Options{})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %v", err)
	}
	if re.EventIdx != -1 {
		t.Errorf("EventIdx = %d, want -1 (final assert)", re.EventIdx)
	}
	if re.AssertIdx != 1 || re.Kind != AssertDeviceState || re.Device != "psw2.pop1-c1" {
		t.Errorf("violation = assert %d (%s) on %q", re.AssertIdx, re.Kind, re.Device)
	}
}

// TestExampleScenarios loads and runs every shipped example, in sorted
// order, under whatever -race the test binary was built with. Each must
// validate and pass.
func TestExampleScenarios(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.yaml"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no example scenarios found: %v", err)
	}
	if len(matches) < 6 {
		t.Fatalf("expected at least 6 example scenarios, found %d", len(matches))
	}
	for _, path := range matches {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := Load(path)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if f.Description == "" {
				t.Error("example scenarios must carry a description")
			}
			res, err := Run(f, Options{})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Journal == "" {
				t.Error("empty journal")
			}
		})
	}
}

// TestExampleScenariosDeterministic runs every example twice and compares
// journals byte for byte.
func TestExampleScenariosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("double-running every example is not -short work")
	}
	matches, _ := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.yaml"))
	for _, path := range matches {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			f1, err := Load(path)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			r1, err := Run(f1, Options{})
			if err != nil {
				t.Fatalf("run 1: %v", err)
			}
			f2, _ := Load(path)
			r2, err := Run(f2, Options{})
			if err != nil {
				t.Fatalf("run 2: %v", err)
			}
			if r1.Journal != r2.Journal {
				t.Fatal("journals diverge between runs")
			}
		})
	}
}
