// Package scenario is the declarative scenario harness: a scenario file
// declares a fleet, a fault schedule, a timed event sequence, and
// assertions; the engine builds the full Robotron stack (design → FBNet →
// generate → verify → deploy → monitor → reconcile) on a shared
// deterministic clock and executes the sequence, evaluating assertions
// after each event and at scenario end. Same file + same seed → the same
// run, byte for byte — the simulator-first methodology the reproduction
// leans on (cf. the Navarch fleet-simulator idiom): real control plane,
// simulated devices, declarative drills.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// File is one parsed scenario.
type File struct {
	Path        string // source path, used in error messages
	Name        string
	Description string
	Seed        int64         // fault + retry schedule seed
	Start       time.Time     // virtual start instant
	End         time.Duration // scenario length; 0 = ends with the last event
	Fleet       FleetSpec
	ExtraFleets []FleetSpec // additional sites = additional failure domains
	Reconciler  ReconcilerSpec
	Faults      FaultsSpec
	Service     *ServiceSpec // nil: single in-process store
	Deploy      DeploySpec
	Events      []EventSpec
	Assert      []AssertionSpec // final assertions, evaluated at End
}

// FleetSpec declares the cluster the scenario provisions at t=0.
type FleetSpec struct {
	Site     string
	Kind     string // "pop" or "dc"; defaulted from the template
	Region   string
	Cluster  string
	Template string // pop-gen1, pop-gen2, dc-gen1, dc-gen2, dc-gen3
	Racks    int    // dc templates only: server racks with TORs
	Line     int
}

// ReconcilerSpec tunes the drift reconciler; zero values select the
// reconcile package defaults, damping_threshold -1 disables damping.
type ReconcilerSpec struct {
	DampingThreshold int
	DampingWindow    time.Duration
	BudgetMaxDevices int
	BudgetMaxFrac    float64
	MaxAttempts      int
	MaxCheckRetries  int
	ConfirmGrace     time.Duration
	BackoffBase      time.Duration
	BackoffMax       time.Duration
}

// FaultsSpec arms the seeded fault engine. Faults are always disabled
// while the baseline cluster provisions; Armed selects the state after
// provisioning, and chaos events flip it mid-run.
type FaultsSpec struct {
	Armed bool
	Rules []FaultRuleSpec
}

// FaultRuleSpec is one injection rule (see netsim.FaultRule).
type FaultRuleSpec struct {
	Kind        string
	Probability float64
	Verbs       []string
	Devices     []string
	Latency     time.Duration
	MaxCount    int64
	Line        int
}

// ServiceSpec declares a replicated store tier; the first region is the
// initial master.
type ServiceSpec struct {
	Regions  []string
	Replicas int
	Line     int
}

// DeploySpec tunes deployment transport. Parallelism defaults to 1:
// single-threaded deploys keep the whole run on one goroutine under the
// virtual clock, which is what makes journals byte-identical across runs.
type DeploySpec struct {
	RetryAttempts int
	Parallelism   int
}

// Event actions.
const (
	ActDrift         = "drift"          // out-of-band running-config edit
	ActDeploy        = "deploy"         // generate + verify + deploy
	ActChaos         = "chaos"          // arm/disarm the fault engine
	ActCorruptDesign = "corrupt-design" // break an FBNet invariant
	ActFirewall      = "firewall"       // fleet-wide design change (ACL)
	ActKillMaster    = "kill-master"    // fail the master store
	ActPromote       = "promote"        // promote the best replica
	ActRelease       = "release"        // operator releases a quarantined device
	ActResetBreaker  = "reset-breaker"  // operator re-arms a tripped loop
	ActSweep         = "sweep"          // one full-fleet conformance sweep
	ActConverge      = "converge"       // sweep+advance loop until settled
	ActWait          = "wait"           // advance to `at`, then just assert
	ActSnapshot      = "snapshot"       // record mgmt-op and golden baselines
	ActCollect       = "collect"        // one monitoring cycle + alarm evaluation
)

// EventSpec is one timed step of the sequence.
type EventSpec struct {
	At     time.Duration // offset from scenario start; non-decreasing
	Action string
	Idx    int // position in the events list (0-based), for reporting
	Line   int

	Device  string   // drift, release
	Devices []string // deploy; ["all"] targets the whole fleet
	Text    string   // drift: the injected line
	Cut     string   // drift: remove golden lines containing this substring

	DryRun       bool // deploy: stage + diff + discard, commit nothing
	MayFail      bool // deploy: tolerate failure (chaos leaves drift behind)
	ExpectReject bool // deploy: the verify gate MUST reject it

	Armed bool // chaos

	What string // corrupt-design: "flip-asn"

	FirewallName string // firewall

	Rounds int           // converge: max sweep+advance rounds
	Step   time.Duration // converge: virtual time per round

	Shard string // reset-breaker: re-arm only this failure domain (a site)

	Expect []AssertionSpec // evaluated right after the action
}

// Assertion types.
const (
	AssertDeviceState   = "device-state"
	AssertRunningGolden = "running-matches-golden"
	AssertNoCandidates  = "no-candidates"
	AssertNoConfirms    = "no-pending-confirms"
	AssertBreaker       = "breaker"
	AssertMetric        = "metric"
	AssertJournal       = "journal"
	AssertVerify        = "verify-verdict"
	AssertFaultsFired   = "faults-fired"
	AssertNoNewMgmtOps  = "no-new-mgmt-ops"
	AssertGoldenStable  = "golden-unchanged"
	AssertAlarm         = "alarm"
)

// AssertionSpec is one declarative check.
type AssertionSpec struct {
	Type string
	Idx  int
	Line int

	Device string // device-state, running-matches-golden, ...; "all" = fleet

	State string // device-state: a reconcile state or "converged-or-quarantined"

	SkipQuarantined bool // running-matches-golden: quarantined devices exempt

	Metric string   // metric: registry name
	Labels []string // metric: "key=value" pairs
	Op     string   // metric: ==, !=, >=, <=, >, <
	Value  float64  // metric: threshold

	Event    string // journal: event type (quarantined, budget-trip, ...)
	MinCount int    // journal: at least this many entries (default 1)

	Verdict string // verify-verdict: "rejected" or "passed"

	Tripped bool   // breaker: wanted breaker state
	Shard   string // breaker: check one failure domain's breaker, not the loop

	MinKinds int // faults-fired: distinct fault kinds
	MinTotal int // faults-fired: total injections (default 1)

	Rule             string // alarm: rule name (bgp-session-down, ...)
	CorrelatesKind   string // alarm: a correlated event of this kind must exist
	CorrelatesDevice string // alarm: ... naming this device
}

// templateDevices maps each template to its fixed device groups
// (prefix, count); rack TORs are appended per FleetSpec.Racks.
var templateDevices = map[string][]struct {
	Prefix string
	Count  int
}{
	"pop-gen1": {{"pr", 2}, {"psw", 4}},
	"pop-gen2": {{"pr", 4}, {"psw", 8}},
	"dc-gen1":  {{"dr", 4}, {"fsw", 16}},
	"dc-gen2":  {{"dr", 4}, {"fsw", 16}},
	"dc-gen3":  {{"dr", 4}, {"ssw", 4}, {"fsw", 16}},
}

// templateKind maps templates to the site kind they imply.
var templateKind = map[string]string{
	"pop-gen1": "pop", "pop-gen2": "pop",
	"dc-gen1": "dc", "dc-gen2": "dc", "dc-gen3": "dc",
}

// FleetDevices predicts the device names a fleet spec materializes,
// without building anything: the design templates name devices
// <prefix><n>.<cluster> and rack TORs tor<n>.<cluster>. The validator
// checks device references against this set, and the engine's "all"
// resolves to it (sorted) at run time.
func FleetDevices(f FleetSpec) []string {
	scope := strings.ReplaceAll(f.Cluster, "/", "-")
	var out []string
	for _, g := range templateDevices[f.Template] {
		for n := 1; n <= g.Count; n++ {
			out = append(out, fmt.Sprintf("%s%d.%s", g.Prefix, n, scope))
		}
	}
	for r := 1; r <= f.Racks; r++ {
		out = append(out, fmt.Sprintf("tor%d.%s", r, scope))
	}
	return out
}

// defaultStart anchors virtual time when the file does not: a fixed
// instant, never the wall clock, so runs are reproducible by default.
var defaultStart = time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)

// Parse parses scenario source. The result is syntactically decoded but
// not yet validated; callers almost always want Load or Validate next.
func Parse(path, src string) (*File, error) {
	root, err := parseYAML(path, src)
	if err != nil {
		return nil, err
	}
	d := &decoder{path: path}
	f := d.decodeFile(root)
	if d.err != nil {
		return nil, d.err
	}
	f.Path = path
	return f, nil
}

// --- decoding ---

// decoder walks the node tree into the typed model, rejecting unknown
// fields and ill-typed scalars with file:line positions. The first error
// wins; later decode calls no-op.
type decoder struct {
	path string
	err  error
}

func (d *decoder) errorf(line int, format string, args ...any) {
	if d.err == nil {
		d.err = &parseError{d.path, line, fmt.Sprintf(format, args...)}
	}
}

// fields checks n is a mapping using only the allowed keys.
func (d *decoder) fields(n *node, context string, allowed ...string) bool {
	if d.err != nil {
		return false
	}
	if n.kind != mapNode {
		d.errorf(n.line, "%s must be a mapping, got a %s", context, n.kind)
		return false
	}
	for _, k := range n.keys {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			d.errorf(n.children[k].line, "unknown field %q in %s (allowed: %s)",
				k, context, strings.Join(allowed, ", "))
			return false
		}
	}
	return true
}

func (d *decoder) scalar(n *node, key string) (*node, bool) {
	c, ok := n.children[key]
	if !ok {
		return nil, false
	}
	if c.kind != scalarNode {
		d.errorf(c.line, "field %q must be a scalar, got a %s", key, c.kind)
		return nil, false
	}
	return c, true
}

func (d *decoder) str(n *node, key string) string {
	c, ok := d.scalar(n, key)
	if !ok {
		return ""
	}
	return c.scalar
}

func (d *decoder) integer(n *node, key string) int64 {
	c, ok := d.scalar(n, key)
	if !ok {
		return 0
	}
	v, err := strconv.ParseInt(c.scalar, 10, 64)
	if err != nil {
		d.errorf(c.line, "field %q: %q is not an integer", key, c.scalar)
	}
	return v
}

func (d *decoder) float(n *node, key string) float64 {
	c, ok := d.scalar(n, key)
	if !ok {
		return 0
	}
	v, err := strconv.ParseFloat(c.scalar, 64)
	if err != nil {
		d.errorf(c.line, "field %q: %q is not a number", key, c.scalar)
	}
	return v
}

func (d *decoder) boolean(n *node, key string) bool {
	c, ok := d.scalar(n, key)
	if !ok {
		return false
	}
	switch c.scalar {
	case "true":
		return true
	case "false":
		return false
	}
	d.errorf(c.line, "field %q: %q is not a boolean (true/false)", key, c.scalar)
	return false
}

func (d *decoder) duration(n *node, key string) time.Duration {
	c, ok := d.scalar(n, key)
	if !ok {
		return 0
	}
	if c.scalar == "0" {
		return 0
	}
	v, err := time.ParseDuration(c.scalar)
	if err != nil {
		d.errorf(c.line, "field %q: %q is not a duration (use 30s, 5m, 1h30m)", key, c.scalar)
		return 0
	}
	if v < 0 {
		d.errorf(c.line, "field %q: duration must not be negative", key)
	}
	return v
}

func (d *decoder) strings(n *node, key string) []string {
	c, ok := n.children[key]
	if !ok {
		return nil
	}
	switch c.kind {
	case scalarNode: // a single value is a one-element list
		return []string{c.scalar}
	case listNode:
		out := make([]string, 0, len(c.items))
		for _, it := range c.items {
			if it.kind != scalarNode {
				d.errorf(it.line, "field %q: list elements must be scalars", key)
				return nil
			}
			out = append(out, it.scalar)
		}
		return out
	}
	d.errorf(c.line, "field %q must be a list or scalar, got a %s", key, c.kind)
	return nil
}

func (d *decoder) decodeFile(root *node) *File {
	if !d.fields(root, "scenario",
		"name", "description", "seed", "start", "end",
		"fleet", "extra_fleets", "reconciler", "faults", "service", "deploy",
		"events", "assert") {
		return nil
	}
	f := &File{Seed: 1, Start: defaultStart}
	f.Name = d.str(root, "name")
	f.Description = d.str(root, "description")
	if _, ok := root.children["seed"]; ok {
		f.Seed = d.integer(root, "seed")
	}
	if c, ok := d.scalar(root, "start"); ok {
		t, err := time.Parse(time.RFC3339, c.scalar)
		if err != nil {
			d.errorf(c.line, "field \"start\": %q is not an RFC 3339 time", c.scalar)
		}
		f.Start = t.UTC()
	}
	if _, ok := root.children["end"]; ok {
		f.End = d.duration(root, "end")
	}
	if c, ok := root.children["fleet"]; ok {
		f.Fleet = d.decodeFleet(c)
	} else {
		d.errorf(root.line, "scenario is missing the required \"fleet\" section")
	}
	if c, ok := root.children["extra_fleets"]; ok {
		if c.kind != listNode {
			d.errorf(c.line, "field \"extra_fleets\" must be a list, got a %s", c.kind)
			return nil
		}
		for _, it := range c.items {
			f.ExtraFleets = append(f.ExtraFleets, d.decodeFleet(it))
			if d.err != nil {
				return nil
			}
		}
	}
	if c, ok := root.children["reconciler"]; ok {
		f.Reconciler = d.decodeReconciler(c)
	}
	if c, ok := root.children["faults"]; ok {
		f.Faults = d.decodeFaults(c)
	}
	if c, ok := root.children["service"]; ok {
		s := d.decodeService(c)
		f.Service = &s
	}
	if c, ok := root.children["deploy"]; ok {
		f.Deploy = d.decodeDeploy(c)
	}
	if c, ok := root.children["events"]; ok {
		f.Events = d.decodeEvents(c)
	}
	if c, ok := root.children["assert"]; ok {
		f.Assert = d.decodeAssertList(c, "assert")
	}
	if d.err != nil {
		return nil
	}
	return f
}

func (d *decoder) decodeFleet(n *node) FleetSpec {
	if !d.fields(n, "fleet", "site", "kind", "region", "cluster", "template", "racks") {
		return FleetSpec{}
	}
	f := FleetSpec{Line: n.line, Region: "apac"}
	f.Site = d.str(n, "site")
	if _, ok := n.children["kind"]; ok {
		f.Kind = d.str(n, "kind")
	}
	if _, ok := n.children["region"]; ok {
		f.Region = d.str(n, "region")
	}
	f.Cluster = d.str(n, "cluster")
	f.Template = d.str(n, "template")
	f.Racks = int(d.integer(n, "racks"))
	if f.Kind == "" {
		f.Kind = templateKind[f.Template]
	}
	return f
}

func (d *decoder) decodeReconciler(n *node) ReconcilerSpec {
	if !d.fields(n, "reconciler",
		"damping_threshold", "damping_window", "budget_max_devices",
		"budget_max_fraction", "max_attempts", "max_check_retries",
		"confirm_grace", "backoff_base", "backoff_max") {
		return ReconcilerSpec{}
	}
	return ReconcilerSpec{
		DampingThreshold: int(d.integer(n, "damping_threshold")),
		DampingWindow:    d.duration(n, "damping_window"),
		BudgetMaxDevices: int(d.integer(n, "budget_max_devices")),
		BudgetMaxFrac:    d.float(n, "budget_max_fraction"),
		MaxAttempts:      int(d.integer(n, "max_attempts")),
		MaxCheckRetries:  int(d.integer(n, "max_check_retries")),
		ConfirmGrace:     d.duration(n, "confirm_grace"),
		BackoffBase:      d.duration(n, "backoff_base"),
		BackoffMax:       d.duration(n, "backoff_max"),
	}
}

func (d *decoder) decodeFaults(n *node) FaultsSpec {
	if !d.fields(n, "faults", "armed", "rules") {
		return FaultsSpec{}
	}
	f := FaultsSpec{}
	if _, ok := n.children["armed"]; ok {
		f.Armed = d.boolean(n, "armed")
	}
	rules, ok := n.children["rules"]
	if !ok {
		return f
	}
	if rules.kind != listNode {
		d.errorf(rules.line, "field \"rules\" must be a list, got a %s", rules.kind)
		return f
	}
	for _, it := range rules.items {
		if !d.fields(it, "fault rule", "kind", "probability", "verbs", "devices", "latency", "max_count") {
			return f
		}
		f.Rules = append(f.Rules, FaultRuleSpec{
			Line:        it.line,
			Kind:        d.str(it, "kind"),
			Probability: d.float(it, "probability"),
			Verbs:       d.strings(it, "verbs"),
			Devices:     d.strings(it, "devices"),
			Latency:     d.duration(it, "latency"),
			MaxCount:    d.integer(it, "max_count"),
		})
	}
	return f
}

func (d *decoder) decodeService(n *node) ServiceSpec {
	if !d.fields(n, "service", "regions", "replicas") {
		return ServiceSpec{}
	}
	s := ServiceSpec{Line: n.line, Replicas: 1}
	s.Regions = d.strings(n, "regions")
	if _, ok := n.children["replicas"]; ok {
		s.Replicas = int(d.integer(n, "replicas"))
	}
	return s
}

func (d *decoder) decodeDeploy(n *node) DeploySpec {
	if !d.fields(n, "deploy", "retry_attempts", "parallelism") {
		return DeploySpec{}
	}
	return DeploySpec{
		RetryAttempts: int(d.integer(n, "retry_attempts")),
		Parallelism:   int(d.integer(n, "parallelism")),
	}
}

func (d *decoder) decodeEvents(n *node) []EventSpec {
	if n.kind != listNode {
		d.errorf(n.line, "field \"events\" must be a list, got a %s", n.kind)
		return nil
	}
	out := make([]EventSpec, 0, len(n.items))
	for i, it := range n.items {
		ev := d.decodeEvent(it, i)
		if d.err != nil {
			return nil
		}
		out = append(out, ev)
	}
	return out
}

func (d *decoder) decodeEvent(n *node, idx int) EventSpec {
	if !d.fields(n, "event",
		"at", "action", "device", "devices", "line", "cut", "dryrun", "may_fail",
		"expect_reject", "armed", "what", "name", "rounds", "step", "shard",
		"expect") {
		return EventSpec{}
	}
	ev := EventSpec{Idx: idx, Line: n.line}
	if _, ok := n.children["at"]; ok {
		ev.At = d.duration(n, "at")
	} else {
		d.errorf(n.line, "event %d is missing the required \"at\" offset", idx)
		return ev
	}
	ev.Action = d.str(n, "action")
	ev.Device = d.str(n, "device")
	ev.Devices = d.strings(n, "devices")
	ev.Text = d.str(n, "line")
	ev.Cut = d.str(n, "cut")
	if _, ok := n.children["dryrun"]; ok {
		ev.DryRun = d.boolean(n, "dryrun")
	}
	if _, ok := n.children["may_fail"]; ok {
		ev.MayFail = d.boolean(n, "may_fail")
	}
	if _, ok := n.children["expect_reject"]; ok {
		ev.ExpectReject = d.boolean(n, "expect_reject")
	}
	if _, ok := n.children["armed"]; ok {
		ev.Armed = d.boolean(n, "armed")
	}
	ev.What = d.str(n, "what")
	ev.FirewallName = d.str(n, "name")
	ev.Rounds = int(d.integer(n, "rounds"))
	ev.Step = d.duration(n, "step")
	ev.Shard = d.str(n, "shard")
	if c, ok := n.children["expect"]; ok {
		ev.Expect = d.decodeAssertList(c, "expect")
	}
	return ev
}

func (d *decoder) decodeAssertList(n *node, context string) []AssertionSpec {
	if n.kind != listNode {
		d.errorf(n.line, "field %q must be a list, got a %s", context, n.kind)
		return nil
	}
	out := make([]AssertionSpec, 0, len(n.items))
	for i, it := range n.items {
		a := d.decodeAssertion(it, i)
		if d.err != nil {
			return nil
		}
		out = append(out, a)
	}
	return out
}

func (d *decoder) decodeAssertion(n *node, idx int) AssertionSpec {
	if !d.fields(n, "assertion",
		"type", "device", "state", "skip_quarantined", "metric", "labels",
		"op", "value", "event", "min_count", "verdict", "tripped", "shard",
		"min_kinds", "min_total", "rule", "correlates_kind", "correlates_device") {
		return AssertionSpec{}
	}
	a := AssertionSpec{Idx: idx, Line: n.line, MinCount: 1, MinTotal: 1}
	a.Type = d.str(n, "type")
	a.Device = d.str(n, "device")
	a.State = d.str(n, "state")
	if _, ok := n.children["skip_quarantined"]; ok {
		a.SkipQuarantined = d.boolean(n, "skip_quarantined")
	}
	a.Metric = d.str(n, "metric")
	a.Labels = d.strings(n, "labels")
	a.Op = d.str(n, "op")
	if _, ok := n.children["value"]; ok {
		a.Value = d.float(n, "value")
	}
	a.Event = d.str(n, "event")
	if _, ok := n.children["min_count"]; ok {
		a.MinCount = int(d.integer(n, "min_count"))
	}
	a.Verdict = d.str(n, "verdict")
	if _, ok := n.children["tripped"]; ok {
		a.Tripped = d.boolean(n, "tripped")
	}
	a.Shard = d.str(n, "shard")
	if _, ok := n.children["min_kinds"]; ok {
		a.MinKinds = int(d.integer(n, "min_kinds"))
	}
	if _, ok := n.children["min_total"]; ok {
		a.MinTotal = int(d.integer(n, "min_total"))
	}
	a.Rule = d.str(n, "rule")
	a.CorrelatesKind = d.str(n, "correlates_kind")
	a.CorrelatesDevice = d.str(n, "correlates_device")
	return a
}
