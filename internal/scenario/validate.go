package scenario

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// Static validation: everything checkable without building a world.
// `robotron sim validate` runs exactly this, so a scenario that decodes
// and validates cleanly fails at run time only for scenario-level
// reasons (an assertion not holding), never for spec-level ones.
//
// Error messages are deterministic (file:line: message) and
// golden-tested; the first violation wins.

var validFaultKinds = map[string]bool{
	"transient": true, "latency": true, "garbled": true,
	"drop-before": true, "drop-after": true, "reboot": true,
}

var validStates = map[string]bool{
	"detected": true, "backoff": true, "remediating": true,
	"confirming": true, "converged": true, "quarantined": true,
	"converged-or-quarantined": true,
}

var validOps = map[string]bool{
	"==": true, "!=": true, ">=": true, "<=": true, ">": true, "<": true,
}

var validActions = map[string]bool{
	ActDrift: true, ActDeploy: true, ActChaos: true, ActCorruptDesign: true,
	ActFirewall: true, ActKillMaster: true, ActPromote: true, ActRelease: true,
	ActResetBreaker: true, ActSweep: true, ActConverge: true, ActWait: true,
	ActSnapshot: true, ActCollect: true,
}

var validAsserts = map[string]bool{
	AssertDeviceState: true, AssertRunningGolden: true, AssertNoCandidates: true,
	AssertNoConfirms: true, AssertBreaker: true, AssertMetric: true,
	AssertJournal: true, AssertVerify: true, AssertFaultsFired: true,
	AssertNoNewMgmtOps: true, AssertGoldenStable: true, AssertAlarm: true,
}

var validAlarmStates = map[string]bool{
	"pending": true, "firing": true, "resolved": true,
}

func sortedKeys(m map[string]bool) string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}

// Validate checks a decoded scenario statically. The returned error (a
// *parseError) carries the file and line of the first violation.
func Validate(f *File) error {
	e := func(line int, format string, args ...any) error {
		return &parseError{f.Path, line, fmt.Sprintf(format, args...)}
	}
	if f.Name == "" {
		return e(1, "scenario is missing the required \"name\"")
	}
	if strings.ContainsAny(f.Name, " \t") {
		return e(1, "scenario name %q must not contain whitespace", f.Name)
	}

	// Fleets: the world everything else references. Each fleet is one
	// site, and each site is one reconciler failure domain (shard).
	fl := f.Fleet
	fleets := append([]FleetSpec{fl}, f.ExtraFleets...)
	seenSites, seenClusters := map[string]bool{}, map[string]bool{}
	for i, ff := range fleets {
		ctx := "fleet"
		if i > 0 {
			ctx = fmt.Sprintf("extra fleet %d", i-1)
		}
		if err := validateFleet(e, ff, ctx); err != nil {
			return err
		}
		if seenSites[ff.Site] {
			return e(ff.Line, "%s: site %q is declared twice (each fleet is its own failure domain)", ctx, ff.Site)
		}
		if seenClusters[ff.Cluster] {
			return e(ff.Line, "%s: cluster %q is declared twice", ctx, ff.Cluster)
		}
		seenSites[ff.Site] = true
		seenClusters[ff.Cluster] = true
	}

	known, knownSites := map[string]bool{}, map[string]bool{}
	for _, ff := range fleets {
		knownSites[ff.Site] = true
		for _, name := range FleetDevices(ff) {
			known[name] = true
		}
	}
	checkDevice := func(line int, name, context string) error {
		if name != "all" && !known[name] {
			return e(line, "%s references device %q, which the fleet (template %s, cluster %s) does not provision",
				context, name, fl.Template, fl.Cluster)
		}
		return nil
	}
	// Assertion device fields additionally accept the "site:<x>"
	// failure-domain selector; event device fields stay device-only.
	checkAssertDevice := func(line int, name, context string) error {
		if site, ok := strings.CutPrefix(name, "site:"); ok {
			if !knownSites[site] {
				return e(line, "%s references site %q, which no fleet declares (known: %s)",
					context, site, sortedKeys(knownSites))
			}
			return nil
		}
		return checkDevice(line, name, context)
	}
	checkShard := func(line int, shard, context string) error {
		if shard != "" && !knownSites[shard] {
			return e(line, "%s: shard %q is not a declared site (known: %s)", context, shard, sortedKeys(knownSites))
		}
		return nil
	}

	// Reconciler knobs.
	rc := f.Reconciler
	if rc.DampingThreshold < -1 {
		return e(fl.Line, "reconciler damping_threshold must be >= -1 (-1 disables damping)")
	}
	if rc.BudgetMaxFrac < 0 || rc.BudgetMaxFrac > 1 {
		return e(fl.Line, "reconciler budget_max_fraction must be within [0, 1]")
	}

	// Fault rules.
	for i, r := range f.Faults.Rules {
		ctx := fmt.Sprintf("fault rule %d", i)
		if !validFaultKinds[r.Kind] {
			return e(r.Line, "%s: unknown fault kind %q (known: %s)", ctx, r.Kind, sortedKeys(validFaultKinds))
		}
		if r.Probability <= 0 || r.Probability > 1 {
			return e(r.Line, "%s: probability %g is outside (0, 1]", ctx, r.Probability)
		}
		if r.Kind == "latency" && r.Latency <= 0 {
			return e(r.Line, "%s: latency faults need a positive \"latency\"", ctx)
		}
		if r.Kind != "latency" && r.Latency > 0 {
			return e(r.Line, "%s: \"latency\" is only valid on latency faults", ctx)
		}
		if r.MaxCount < 0 {
			return e(r.Line, "%s: max_count must not be negative", ctx)
		}
		for _, dev := range r.Devices {
			if err := checkDevice(r.Line, dev, ctx); err != nil {
				return err
			}
		}
	}
	if f.Faults.Armed && len(f.Faults.Rules) == 0 {
		return e(fl.Line, "faults are armed but no rules are declared")
	}

	// Service tier.
	if s := f.Service; s != nil {
		if len(s.Regions) < 2 {
			return e(s.Line, "service needs at least 2 regions (a master and a failover candidate)")
		}
		seen := map[string]bool{}
		for _, r := range s.Regions {
			if seen[r] {
				return e(s.Line, "service region %q is declared twice", r)
			}
			seen[r] = true
		}
		if s.Replicas < 1 {
			return e(s.Line, "service replicas must be >= 1")
		}
	}

	if f.Deploy.RetryAttempts < 0 {
		return e(fl.Line, "deploy retry_attempts must not be negative")
	}
	if f.Deploy.Parallelism < 0 {
		return e(fl.Line, "deploy parallelism must not be negative")
	}

	// Events: known actions, per-action fields, ordered offsets, none
	// after end.
	last := time.Duration(0)
	for i := range f.Events {
		ev := &f.Events[i]
		ctx := fmt.Sprintf("event %d", i)
		if ev.Action == "" {
			return e(ev.Line, "%s is missing the required \"action\"", ctx)
		}
		if !validActions[ev.Action] {
			return e(ev.Line, "%s: unknown action %q (known: %s)", ctx, ev.Action, sortedKeys(validActions))
		}
		if ev.At < last {
			return e(ev.Line, "%s: offset %v is before the previous event's %v (events must be in time order)", ctx, ev.At, last)
		}
		last = ev.At
		if f.End > 0 && ev.At > f.End {
			return e(ev.Line, "%s: offset %v is after the scenario end %v", ctx, ev.At, f.End)
		}
		if err := validateEventFields(e, ev, ctx, f); err != nil {
			return err
		}
		if ev.Shard != "" {
			if ev.Action != ActResetBreaker {
				return e(ev.Line, "%s: field \"shard\" is only valid for action %q", ctx, ActResetBreaker)
			}
			if err := checkShard(ev.Line, ev.Shard, ctx); err != nil {
				return err
			}
		}
		if ev.Device != "" {
			if err := checkDevice(ev.Line, ev.Device, ctx); err != nil {
				return err
			}
		}
		for _, dev := range ev.Devices {
			if err := checkDevice(ev.Line, dev, ctx); err != nil {
				return err
			}
		}
		for j := range ev.Expect {
			a := &ev.Expect[j]
			if err := validateAssertion(e, a, fmt.Sprintf("%s expect %d", ctx, j), f, checkAssertDevice, checkShard); err != nil {
				return err
			}
		}
	}

	for i := range f.Assert {
		a := &f.Assert[i]
		if err := validateAssertion(e, a, fmt.Sprintf("assert %d", i), f, checkAssertDevice, checkShard); err != nil {
			return err
		}
	}
	if len(f.Events) == 0 && len(f.Assert) == 0 {
		return e(1, "scenario declares no events and no assertions; nothing to do")
	}
	return nil
}

// validateFleet checks one fleet spec; ctx is "fleet" for the primary
// and "extra fleet N" for the additional failure domains.
func validateFleet(e func(int, string, ...any) error, fl FleetSpec, ctx string) error {
	if fl.Site == "" {
		return e(fl.Line, "%s is missing the required \"site\"", ctx)
	}
	if fl.Cluster == "" {
		return e(fl.Line, "%s is missing the required \"cluster\"", ctx)
	}
	if _, ok := templateDevices[fl.Template]; !ok {
		return e(fl.Line, "%s template %q is not one of pop-gen1, pop-gen2, dc-gen1, dc-gen2, dc-gen3", ctx, fl.Template)
	}
	if fl.Racks < 0 {
		return e(fl.Line, "%s racks must not be negative", ctx)
	}
	if fl.Racks > 0 && templateKind[fl.Template] != "dc" {
		return e(fl.Line, "%s template %q does not take racks (racks are for dc templates)", ctx, fl.Template)
	}
	if fl.Kind != templateKind[fl.Template] {
		return e(fl.Line, "%s kind %q contradicts template %q (implies %q)", ctx, fl.Kind, fl.Template, templateKind[fl.Template])
	}
	return nil
}

// validateEventFields enforces each action's required and forbidden
// fields, so a typo'd spec fails validate, not a 30-second run.
func validateEventFields(e func(int, string, ...any) error, ev *EventSpec, ctx string, f *File) error {
	need := func(have bool, field string) error {
		if !have {
			return e(ev.Line, "%s: action %q needs %q", ctx, ev.Action, field)
		}
		return nil
	}
	reject := func(have bool, field string) error {
		if have {
			return e(ev.Line, "%s: field %q is not valid for action %q", ctx, field, ev.Action)
		}
		return nil
	}
	// Fields that only specific actions accept.
	if ev.Action != ActDrift {
		if err := reject(ev.Text != "", "line"); err != nil {
			return err
		}
		if err := reject(ev.Cut != "", "cut"); err != nil {
			return err
		}
	}
	if ev.Action != ActDeploy {
		for _, c := range []struct {
			field string
			have  bool
		}{
			{"devices", len(ev.Devices) > 0}, {"dryrun", ev.DryRun},
			{"may_fail", ev.MayFail}, {"expect_reject", ev.ExpectReject},
		} {
			if err := reject(c.have, c.field); err != nil {
				return err
			}
		}
	}
	if ev.Action != ActDrift && ev.Action != ActRelease {
		if err := reject(ev.Device != "", "device"); err != nil {
			return err
		}
	}
	if ev.Action != ActCorruptDesign {
		if err := reject(ev.What != "", "what"); err != nil {
			return err
		}
	}
	if ev.Action != ActFirewall {
		if err := reject(ev.FirewallName != "", "name"); err != nil {
			return err
		}
	}
	if ev.Action != ActConverge {
		if err := reject(ev.Rounds != 0, "rounds"); err != nil {
			return err
		}
		if err := reject(ev.Step != 0, "step"); err != nil {
			return err
		}
	}

	switch ev.Action {
	case ActDrift:
		if err := need(ev.Device != "", "device"); err != nil {
			return err
		}
		if ev.Text == "" && ev.Cut == "" {
			return e(ev.Line, "%s: drift needs \"line\" (inject) or \"cut\" (remove), or both", ctx)
		}
		if ev.Device == "all" {
			return e(ev.Line, "%s: drift targets one device, not \"all\"", ctx)
		}
	case ActDeploy:
		if err := need(len(ev.Devices) > 0, "devices"); err != nil {
			return err
		}
		if ev.ExpectReject && ev.MayFail {
			return e(ev.Line, "%s: expect_reject and may_fail are mutually exclusive", ctx)
		}
	case ActRelease:
		if err := need(ev.Device != "", "device"); err != nil {
			return err
		}
		if ev.Device == "all" {
			return e(ev.Line, "%s: release targets one device, not \"all\"", ctx)
		}
	case ActCorruptDesign:
		if ev.What != "flip-asn" {
			return e(ev.Line, "%s: unknown corruption %q (known: flip-asn)", ctx, ev.What)
		}
	case ActFirewall:
		if err := need(ev.FirewallName != "", "name"); err != nil {
			return err
		}
	case ActConverge:
		if ev.Rounds <= 0 {
			return e(ev.Line, "%s: converge needs a positive \"rounds\"", ctx)
		}
		if ev.Step <= 0 {
			return e(ev.Line, "%s: converge needs a positive \"step\" duration", ctx)
		}
	case ActKillMaster, ActPromote:
		if f.Service == nil {
			return e(ev.Line, "%s: action %q needs a \"service\" section", ctx, ev.Action)
		}
	case ActChaos:
		if len(f.Faults.Rules) == 0 {
			return e(ev.Line, "%s: chaos event without fault rules", ctx)
		}
	}
	return nil
}

func validateAssertion(e func(int, string, ...any) error, a *AssertionSpec, ctx string, f *File, checkDevice, checkShard func(int, string, string) error) error {
	if a.Type == "" {
		return e(a.Line, "%s is missing the required \"type\"", ctx)
	}
	if !validAsserts[a.Type] {
		return e(a.Line, "%s: unknown assertion type %q (known: %s)", ctx, a.Type, sortedKeys(validAsserts))
	}
	if a.Device != "" {
		if err := checkDevice(a.Line, a.Device, ctx); err != nil {
			return err
		}
	}
	if a.Shard != "" {
		if a.Type != AssertBreaker {
			return e(a.Line, "%s: field \"shard\" is only valid on breaker assertions", ctx)
		}
		if err := checkShard(a.Line, a.Shard, ctx); err != nil {
			return err
		}
	}
	switch a.Type {
	case AssertDeviceState:
		if a.Device == "" {
			return e(a.Line, "%s: device-state needs \"device\" (a name or \"all\")", ctx)
		}
		if !validStates[a.State] {
			return e(a.Line, "%s: unknown state %q (known: %s)", ctx, a.State, sortedKeys(validStates))
		}
	case AssertRunningGolden, AssertNoCandidates, AssertNoConfirms, AssertNoNewMgmtOps, AssertGoldenStable:
		if a.Device == "" {
			return e(a.Line, "%s: %s needs \"device\" (a name or \"all\")", ctx, a.Type)
		}
	case AssertMetric:
		if a.Metric == "" {
			return e(a.Line, "%s: metric assertion needs \"metric\"", ctx)
		}
		if !validOps[a.Op] {
			return e(a.Line, "%s: unknown op %q (known: !=, <, <=, ==, >, >=)", ctx, a.Op)
		}
		for _, l := range a.Labels {
			if k, v, ok := strings.Cut(l, "="); !ok || k == "" || v == "" {
				return e(a.Line, "%s: label %q is not key=value", ctx, l)
			}
		}
	case AssertJournal:
		if a.Event == "" {
			return e(a.Line, "%s: journal assertion needs \"event\"", ctx)
		}
		if a.MinCount < 1 {
			return e(a.Line, "%s: min_count must be >= 1", ctx)
		}
	case AssertVerify:
		if a.Verdict != "rejected" && a.Verdict != "passed" {
			return e(a.Line, "%s: verdict must be \"rejected\" or \"passed\", got %q", ctx, a.Verdict)
		}
	case AssertFaultsFired:
		if a.MinKinds < 1 && a.MinTotal < 1 {
			return e(a.Line, "%s: faults-fired needs min_kinds or min_total >= 1", ctx)
		}
	case AssertAlarm:
		if a.Rule == "" {
			return e(a.Line, "%s: alarm assertion needs \"rule\"", ctx)
		}
		if a.State != "" && !validAlarmStates[a.State] {
			return e(a.Line, "%s: unknown alarm state %q (known: %s)", ctx, a.State, sortedKeys(validAlarmStates))
		}
		if a.MinCount < 1 {
			return e(a.Line, "%s: min_count must be >= 1", ctx)
		}
		if a.CorrelatesDevice != "" && a.CorrelatesKind == "" {
			return e(a.Line, "%s: correlates_device needs correlates_kind", ctx)
		}
	}
	if a.Type != AssertAlarm {
		if a.Rule != "" {
			return e(a.Line, "%s: field \"rule\" is only valid on alarm assertions", ctx)
		}
		if a.CorrelatesKind != "" || a.CorrelatesDevice != "" {
			return e(a.Line, "%s: correlates_* fields are only valid on alarm assertions", ctx)
		}
	}
	return nil
}

// Load reads, parses, and validates a scenario file.
func Load(path string) (*File, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Parse(path, string(src))
	if err != nil {
		return nil, err
	}
	if err := Validate(f); err != nil {
		return nil, err
	}
	return f, nil
}
