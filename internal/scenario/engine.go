package scenario

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/robotron-net/robotron/internal/core"
	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/fbnet/service"
	"github.com/robotron-net/robotron/internal/netsim"
	"github.com/robotron-net/robotron/internal/reconcile"
	"github.com/robotron-net/robotron/internal/telemetry"
	"github.com/robotron-net/robotron/internal/vclock"
	"github.com/robotron-net/robotron/internal/verify"
)

// Options tune a run.
type Options struct {
	// Realtime runs on the wall clock instead of the virtual one: event
	// offsets and converge steps become real sleeps, and reconciler
	// timers fire on their own. Journals are then not byte-stable.
	Realtime bool
	// Logf receives verbose progress; nil silences it.
	Logf func(format string, args ...any)
	// OnFinish, when non-nil, runs against the assembled world after a
	// successful run, before teardown — the hook `robotron obs` uses to
	// print alarms/timeline/series views of a finished scenario.
	OnFinish func(*core.Robotron)
}

// Result reports a passed run.
type Result struct {
	Scenario string
	Events   int
	// Journal is the deterministic run record: engine steps, fault
	// counts, final device states, and the full reconciler journal.
	// Under the virtual clock, identical (file, seed) pairs produce
	// byte-identical journals.
	Journal string
}

// RunError is a scenario-level failure: an assertion that did not hold,
// or an action that failed. It names the event, the assertion, and the
// device, and carries relevant context (a confdiff hunk, a journal
// tail) for the postmortem.
type RunError struct {
	Scenario  string
	EventIdx  int    // -1: setup or the final assert block
	AssertIdx int    // -1: the action itself failed, not an assertion
	Kind      string // assertion type, or the action name
	Device    string
	Msg       string
	Context   string // confdiff hunk, journal tail, ... (may be empty)
}

func (e *RunError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: ", e.Scenario)
	switch {
	case e.EventIdx < 0 && e.AssertIdx < 0:
		b.WriteString("setup")
	case e.EventIdx < 0:
		fmt.Fprintf(&b, "final assert %d (%s)", e.AssertIdx, e.Kind)
	case e.AssertIdx < 0:
		fmt.Fprintf(&b, "event %d (%s)", e.EventIdx, e.Kind)
	default:
		fmt.Fprintf(&b, "event %d expect %d (%s)", e.EventIdx, e.AssertIdx, e.Kind)
	}
	b.WriteString(" failed")
	if e.Device != "" {
		fmt.Fprintf(&b, " on device %s", e.Device)
	}
	fmt.Fprintf(&b, ": %s", e.Msg)
	if e.Context != "" {
		b.WriteString("\n")
		b.WriteString(e.Context)
	}
	return b.String()
}

// engine is one run's mutable state.
type engine struct {
	file    *File
	opts    Options
	start   time.Time
	vc      *vclock.VirtualClock // nil in realtime mode
	clock   vclock.Clock
	r       *core.Robotron
	dep     *service.Deployment
	policy  *netsim.FaultPolicy
	reg     *telemetry.Registry
	armed   bool // current chaos arming (survives assertion pauses)
	devices []string
	sites   map[string][]string // site -> its sorted devices ("site:x" selectors)

	opsBase    map[string]int64  // from the last snapshot event
	goldenBase map[string]string // from the last snapshot event

	journal strings.Builder
}

// Run executes a validated scenario.
func Run(f *File, opts Options) (*Result, error) {
	e := &engine{file: f, opts: opts, start: f.Start}
	if opts.Realtime {
		e.clock = vclock.RealClock()
		e.start = e.clock.Now()
	} else {
		e.vc = vclock.NewVirtualClock(f.Start)
		e.clock = e.vc
	}
	if err := e.build(); err != nil {
		return nil, err
	}
	defer e.r.Reconciler.Stop()
	if e.dep != nil {
		defer e.dep.Close()
	}

	e.logf("scenario %s: %d device(s) provisioned, %d event(s)", f.Name, len(e.devices), len(f.Events))
	e.note("scenario %s seed=%d devices=%d", f.Name, f.Seed, len(e.devices))

	if e.policy != nil && f.Faults.Armed {
		e.setArmed(true)
	}

	// On failure the journal accumulated so far rides along with the
	// error so callers can show what led up to the violated assertion.
	partial := func(err error) (*Result, error) {
		e.finishJournal()
		return &Result{Scenario: f.Name, Events: len(f.Events), Journal: e.journal.String()}, err
	}
	for i := range f.Events {
		ev := &f.Events[i]
		e.advanceTo(ev.At)
		e.note("[%s] event %d %s", e.elapsed(), ev.Idx, describeEvent(ev))
		e.logf("t=%s event %d: %s", e.elapsed(), ev.Idx, describeEvent(ev))
		if err := e.exec(ev); err != nil {
			return partial(err)
		}
		if err := e.checkAll(ev.Expect, ev.Idx); err != nil {
			return partial(err)
		}
	}
	if f.End > 0 {
		e.advanceTo(f.End)
	}
	if err := e.checkAll(f.Assert, -1); err != nil {
		return partial(err)
	}
	if e.opts.OnFinish != nil {
		e.opts.OnFinish(e.r)
	}
	e.finishJournal()
	return &Result{Scenario: f.Name, Events: len(f.Events), Journal: e.journal.String()}, nil
}

func (e *engine) logf(format string, args ...any) {
	if e.opts.Logf != nil {
		e.opts.Logf(format, args...)
	}
}

// note appends one line to the run journal.
func (e *engine) note(format string, args ...any) {
	fmt.Fprintf(&e.journal, format+"\n", args...)
}

// elapsed renders virtual time since scenario start.
func (e *engine) elapsed() time.Duration {
	return e.clock.Now().Sub(e.start).Round(time.Millisecond)
}

func (e *engine) setup(msg string, err error) *RunError {
	return &RunError{Scenario: e.file.Name, EventIdx: -1, AssertIdx: -1,
		Kind: "setup", Msg: fmt.Sprintf("%s: %v", msg, err)}
}

// build assembles the world: store (optionally a replicated service
// tier), fault policy, retry policy, core with the reconciler on the
// shared clock, then provisions the declared cluster with faults held
// off so the baseline is clean.
func (e *engine) build() error {
	f := e.file
	e.reg = telemetry.NewRegistry()

	if len(f.Faults.Rules) > 0 {
		e.policy = netsim.NewFaultPolicy(f.Seed)
		for _, r := range f.Faults.Rules {
			e.policy.Add(netsim.FaultRule{
				Kind:        netsim.FaultKind(r.Kind),
				Probability: r.Probability,
				Verbs:       r.Verbs,
				Devices:     r.Devices,
				Latency:     r.Latency,
				MaxCount:    r.MaxCount,
			})
		}
		e.policy.SetDisabled(true) // provision a clean baseline first
	}
	var retry *deploy.RetryPolicy
	if f.Deploy.RetryAttempts > 0 {
		retry = &deploy.RetryPolicy{Seed: f.Seed, MaxAttempts: f.Deploy.RetryAttempts, Sleep: func(time.Duration) {}}
	}
	var store *fbnet.Store
	if f.Service != nil {
		dep, err := service.NewDeployment(fbnet.NewCatalog(), f.Service.Regions[0], f.Service.Regions, f.Service.Replicas)
		if err != nil {
			return e.setup("service tier", err)
		}
		dep.Instrument(e.reg)
		e.dep = dep
		store = dep.MasterStore()
	}
	// Parallelism 1 keeps every pipeline single-threaded: the whole run
	// happens on one goroutine under the virtual clock, which is what
	// makes rerun journals byte-identical.
	par := f.Deploy.Parallelism
	if par == 0 {
		par = 1
	}
	r, err := core.New(core.Options{
		Store:               store,
		Clock:               e.clock,
		Telemetry:           e.reg,
		FaultPolicy:         e.policy,
		DeployRetry:         retry,
		DeployParallelism:   par,
		GenerateParallelism: par,
		EnableReconciler:    true,
		Reconcile: reconcile.Config{
			Clock:             e.clock,
			DampingThreshold:  f.Reconciler.DampingThreshold,
			DampingWindow:     f.Reconciler.DampingWindow,
			BudgetMaxDevices:  f.Reconciler.BudgetMaxDevices,
			BudgetMaxFraction: f.Reconciler.BudgetMaxFrac,
			MaxAttempts:       f.Reconciler.MaxAttempts,
			MaxCheckRetries:   f.Reconciler.MaxCheckRetries,
			ConfirmGrace:      f.Reconciler.ConfirmGrace,
			BackoffBase:       f.Reconciler.BackoffBase,
			BackoffMax:        f.Reconciler.BackoffMax,
			Author:            "scenario",
			Alert:             e.opts.Logf,
		},
		Logf: e.opts.Logf,
	})
	if err != nil {
		return e.setup("core", err)
	}
	e.r = r

	e.sites = map[string][]string{}
	for _, fl := range append([]FleetSpec{f.Fleet}, f.ExtraFleets...) {
		if _, err := r.Designer.EnsureSite(fl.Site, fl.Kind, fl.Region); err != nil {
			return e.setup("site", err)
		}
		if _, err := r.ProvisionCluster(e.ctx(), fl.Site, fl.Cluster, fleetTemplate(fl)); err != nil {
			return e.setup("provision", err)
		}
		devices, err := r.DevicesOfSite(fl.Site)
		if err != nil {
			return e.setup("device list", err)
		}
		sort.Strings(devices)
		e.sites[fl.Site] = devices
		e.devices = append(e.devices, devices...)
	}
	sort.Strings(e.devices)
	return nil
}

func (e *engine) ctx() design.ChangeContext {
	return design.ChangeContext{
		EmployeeID: "sim", TicketID: "T-sim",
		Description: "scenario " + e.file.Name,
		Domain:      e.file.Fleet.Kind,
		NowUnix:     e.file.Start.Unix(),
	}
}

func fleetTemplate(fl FleetSpec) design.TopologyTemplate {
	switch fl.Template {
	case "pop-gen1":
		return design.POPGen1()
	case "pop-gen2":
		return design.POPGen2()
	case "dc-gen1":
		return design.DCGen1(fl.Racks)
	case "dc-gen2":
		return design.DCGen2(fl.Racks)
	default:
		return design.DCGen3(fl.Racks)
	}
}

// setArmed flips fault injection; armed state is remembered so
// assertion evaluation can pause and restore it.
func (e *engine) setArmed(armed bool) {
	e.armed = armed
	if e.policy != nil {
		e.policy.SetDisabled(!armed)
	}
}

// pauseFaults suspends injection for the duration of an observation
// (assertions read device state through the same management verbs as
// everything else; the observer must not perturb — or be perturbed by —
// the schedule). Disabled decisions do not advance the fault schedule,
// so determinism is preserved.
func (e *engine) pauseFaults() func() {
	if e.policy == nil || !e.armed {
		return func() {}
	}
	e.policy.SetDisabled(true)
	return func() { e.policy.SetDisabled(false) }
}

// advanceTo moves the clock to the given offset from scenario start.
func (e *engine) advanceTo(at time.Duration) {
	delta := e.start.Add(at).Sub(e.clock.Now())
	if delta <= 0 {
		return
	}
	if e.vc != nil {
		e.vc.Advance(delta)
	} else {
		time.Sleep(delta)
	}
}

func describeEvent(ev *EventSpec) string {
	switch ev.Action {
	case ActDrift:
		return fmt.Sprintf("drift %s", ev.Device)
	case ActDeploy:
		mode := "execute"
		if ev.DryRun {
			mode = "dryrun"
		}
		return fmt.Sprintf("deploy %s %s", mode, strings.Join(ev.Devices, ","))
	case ActChaos:
		if ev.Armed {
			return "chaos armed"
		}
		return "chaos disarmed"
	case ActCorruptDesign:
		return "corrupt-design " + ev.What
	case ActFirewall:
		return "firewall " + ev.FirewallName
	case ActRelease:
		return "release " + ev.Device
	case ActResetBreaker:
		if ev.Shard != "" {
			return "reset-breaker shard=" + ev.Shard
		}
		return ev.Action
	case ActConverge:
		return fmt.Sprintf("converge rounds=%d step=%s", ev.Rounds, ev.Step)
	default:
		return ev.Action
	}
}

// exec performs one event's action.
func (e *engine) exec(ev *EventSpec) error {
	fail := func(format string, args ...any) *RunError {
		return &RunError{Scenario: e.file.Name, EventIdx: ev.Idx, AssertIdx: -1,
			Kind: ev.Action, Device: ev.Device, Msg: fmt.Sprintf(format, args...)}
	}
	switch ev.Action {
	case ActDrift:
		d, ok := e.r.Fleet.Device(ev.Device)
		if !ok {
			return fail("device not in fleet")
		}
		golden, err := e.r.Generator.Golden(ev.Device)
		if err != nil {
			return fail("no golden config: %v", err)
		}
		if !strings.HasSuffix(golden, "\n") {
			golden += "\n"
		}
		cfg := golden
		if ev.Cut != "" {
			var kept []string
			removed := 0
			for _, line := range strings.Split(strings.TrimSuffix(cfg, "\n"), "\n") {
				if strings.Contains(line, ev.Cut) {
					removed++
					continue
				}
				kept = append(kept, line)
			}
			if removed == 0 {
				return fail("cut %q matched no golden lines", ev.Cut)
			}
			cfg = strings.Join(kept, "\n") + "\n"
		}
		if ev.Text != "" {
			cfg += ev.Text + "\n"
		}
		// Out-of-band: straight onto the running config, no management
		// verbs involved — the CONFIG_CHANGED syslog is the only signal
		// the control plane gets, exactly like a console edit.
		if err := d.InjectRunningConfig(cfg); err != nil {
			return fail("inject: %v", err)
		}
	case ActDeploy:
		return e.execDeploy(ev, fail)
	case ActChaos:
		if e.policy == nil {
			return fail("no fault rules declared")
		}
		e.setArmed(ev.Armed)
	case ActCorruptDesign:
		// Break one network-wide invariant in FBNet: flip an eBGP
		// session's remote AS so the two ends disagree. The verify gate
		// must catch this before any deploy touches a device.
		ss, err := e.r.Store.Find("BgpV6Session", fbnet.Eq("session_type", "ebgp"))
		if err != nil || len(ss) == 0 {
			return fail("no ebgp v6 sessions to corrupt (template %s): %v", e.file.Fleet.Template, err)
		}
		if _, err := e.r.Store.Mutate(func(m *fbnet.Mutation) error {
			return m.Update("BgpV6Session", ss[0].ID, map[string]any{"remote_as": int64(65999)})
		}); err != nil {
			return fail("mutate: %v", err)
		}
	case ActFirewall:
		if _, err := e.r.Designer.EnsureFirewallPolicy(e.ctx(), design.FirewallSpec{
			Name: ev.FirewallName, Direction: "in",
			Rules: []design.FirewallRuleSpec{
				{Action: "permit", Protocol: "tcp", SrcPrefix: "10.0.0.0/8", DstPort: 179},
				{Action: "deny", Protocol: "any"},
			},
		}); err != nil {
			return fail("firewall policy: %v", err)
		}
		if _, err := e.r.Designer.AttachFirewall(e.ctx(), ev.FirewallName, e.devices); err != nil {
			return fail("attach: %v", err)
		}
	case ActKillMaster:
		e.dep.KillMaster()
	case ActPromote:
		region, err := e.dep.PromoteBest()
		if err != nil {
			return fail("promote: %v", err)
		}
		e.note("[%s]   promoted master to %s", e.elapsed(), region)
	case ActRelease:
		if err := e.r.Reconciler.Release(ev.Device); err != nil {
			return fail("release: %v", err)
		}
	case ActResetBreaker:
		if ev.Shard != "" {
			if err := e.r.Reconciler.ResetShardBreaker(ev.Shard); err != nil {
				return fail("reset-breaker: %v", err)
			}
		} else {
			e.r.Reconciler.ResetBreaker()
		}
	case ActSweep:
		n := e.r.Reconciler.Sweep()
		e.note("[%s]   sweep checked %d device(s)", e.elapsed(), n)
	case ActConverge:
		rounds := 0
		settledNow := false
		for rounds < ev.Rounds {
			e.r.Reconciler.Sweep()
			if e.vc != nil {
				e.vc.Advance(ev.Step)
			} else {
				time.Sleep(ev.Step)
			}
			rounds++
			if ok, _ := e.settled(); ok {
				settledNow = true
				break
			}
		}
		if settledNow {
			e.note("[%s]   settled after %d round(s)", e.elapsed(), rounds)
		} else {
			_, bad := e.settled()
			e.note("[%s]   NOT settled after %d round(s): %s", e.elapsed(), rounds, strings.Join(bad, ","))
		}
	case ActWait:
		// advanceTo already moved the clock; the expects do the work.
	case ActCollect:
		firing, err := e.r.ObserveOnce()
		if err != nil {
			return fail("collect: %v", err)
		}
		if len(firing) == 0 {
			e.note("[%s]   collect: no alarms firing", e.elapsed())
		} else {
			names := make([]string, 0, len(firing))
			for _, al := range firing {
				names = append(names, al.Rule+"@"+al.Device)
			}
			e.note("[%s]   collect: %d alarm(s) firing: %s", e.elapsed(), len(firing), strings.Join(names, " "))
		}
	case ActSnapshot:
		e.opsBase = map[string]int64{}
		e.goldenBase = map[string]string{}
		for _, name := range e.devices {
			if d, ok := e.r.Fleet.Device(name); ok {
				e.opsBase[name] = d.MgmtOps()
			}
			if g, err := e.r.Generator.Golden(name); err == nil {
				e.goldenBase[name] = g
			}
		}
	}
	return nil
}

// execDeploy handles the deploy action: dryrun (stage, diff, discard)
// or execute (generate → verify gate → commit golden → deploy).
func (e *engine) execDeploy(ev *EventSpec, fail func(string, ...any) *RunError) error {
	targets := ev.Devices
	if len(targets) == 1 && targets[0] == "all" {
		targets = e.devices
	}
	if ev.DryRun {
		configs := make(map[string]string, len(targets))
		for _, name := range targets {
			cfg, err := e.r.Generator.GenerateDevice(name)
			if err != nil {
				return fail("generate %s: %v", name, err)
			}
			configs[name] = cfg
		}
		diffs, err := e.r.Deployer.Dryrun(configs, deploy.Options{})
		if err != nil {
			return fail("dryrun: %v", err)
		}
		changed := 0
		for _, d := range diffs {
			if strings.TrimSpace(d) != "" {
				changed++
			}
		}
		e.note("[%s]   dryrun: %d device(s) staged, %d with pending diff", e.elapsed(), len(diffs), changed)
		return nil
	}
	rep, err := e.r.GenerateAndDeploy(targets, deploy.Options{}, "sim")
	switch {
	case ev.ExpectReject:
		var rej *verify.RejectionError
		if err == nil {
			return fail("deploy was expected to be rejected by the verify gate, but passed")
		}
		if !errors.As(err, &rej) {
			return fail("deploy failed, but not with a gate rejection: %v", err)
		}
		e.note("[%s]   verify gate rejected: %d violation(s)", e.elapsed(), len(rej.Result.Violations))
	case err != nil && ev.MayFail:
		failed := rep.Failed()
		names := make([]string, 0, len(failed))
		for _, res := range failed {
			names = append(names, res.Device)
		}
		sort.Strings(names)
		e.note("[%s]   deploy failed on %d device(s) (tolerated): %s", e.elapsed(), len(names), strings.Join(names, ","))
	case err != nil:
		return fail("deploy: %v", err)
	default:
		e.note("[%s]   deployed %d device(s)", e.elapsed(), len(targets))
	}
	return nil
}

// settled reports whether every device is converged-or-quarantined with
// running == golden for the non-quarantined ones (the chaos soak's
// settledness criterion). Faults are paused for the observation.
func (e *engine) settled() (bool, []string) {
	resume := e.pauseFaults()
	defer resume()
	states := e.r.Reconciler.States()
	var bad []string
	for _, name := range e.devices {
		if states[name] == reconcile.StateQuarantined {
			continue
		}
		d, ok := e.r.Fleet.Device(name)
		if !ok {
			bad = append(bad, name)
			continue
		}
		golden, err := e.r.Generator.Golden(name)
		if err != nil {
			bad = append(bad, name)
			continue
		}
		if d.PeekRunningConfig() != golden {
			bad = append(bad, name)
		}
	}
	return len(bad) == 0, bad
}

// finishJournal appends the deterministic run summary: fault counts by
// kind (sorted), reconciler stats, device states (sorted), and the full
// reconciler journal.
func (e *engine) finishJournal() {
	if e.policy != nil {
		counts := e.policy.Counts()
		kinds := make([]string, 0, len(counts))
		for k := range counts {
			kinds = append(kinds, string(k))
		}
		sort.Strings(kinds)
		parts := make([]string, 0, len(kinds))
		for _, k := range kinds {
			parts = append(parts, fmt.Sprintf("%s:%d", k, counts[netsim.FaultKind(k)]))
		}
		e.note("faults fired: {%s} total=%d", strings.Join(parts, " "), e.policy.Total())
	}
	e.note("reconciler: %s", e.r.Reconciler.Stats().String())
	states := e.r.Reconciler.States()
	for _, name := range e.devices {
		st := states[name]
		if st == "" {
			st = reconcile.StateConverged // never entered the loop
		}
		e.note("device %s state=%s", name, st)
	}
	if e.r.Alarms != nil {
		if alarms := e.r.Alarms.Snapshot(); len(alarms) > 0 {
			e.note("alarms (%d):", len(alarms))
			for _, al := range alarms {
				e.note("  %-8s %s %s %s correlated=%d", string(al.State), al.Rule, al.Device, al.Key, len(al.Correlated))
			}
		}
	}
	e.note("reconciler journal (%d events):", e.r.Reconciler.Journal().Len())
	for _, je := range e.r.Reconciler.Journal().Events() {
		e.note("  %s", je.String())
	}
}
