package scenario

// A dependency-free parser for the YAML subset scenario files use,
// keeping the repo's zero-dependency stance. Supported:
//
//   - block mappings:        key: value   /   key:\n  <indented block>
//   - block sequences:       - item   /   - key: value\n  <more keys>
//   - flow sequences:        [a, b, c]    (scalar elements only)
//   - scalars:               bare words, "double quoted", 'single quoted'
//   - comments:              # to end of line (outside quotes)
//   - blank lines anywhere
//
// Not supported (rejected with a position): tabs for indentation,
// anchors/aliases, multi-document streams, flow mappings, block
// scalars (| and >), and keys containing ':'. Every node carries its
// 1-based source line for error reporting; type interpretation
// (numbers, booleans, durations) happens at decode time in scenario.go.

import (
	"fmt"
	"strings"
)

type nodeKind int

const (
	scalarNode nodeKind = iota
	mapNode
	listNode
)

func (k nodeKind) String() string {
	switch k {
	case scalarNode:
		return "scalar"
	case mapNode:
		return "mapping"
	default:
		return "sequence"
	}
}

// node is one parsed YAML value.
type node struct {
	kind nodeKind
	line int

	scalar string // scalarNode
	quoted bool   // scalar came from a quoted literal

	keys     []string         // mapNode: insertion order
	children map[string]*node // mapNode

	items []*node // listNode
}

// parseError is a position-carrying syntax error.
type parseError struct {
	path string
	line int
	msg  string
}

func (e *parseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.path, e.line, e.msg)
}

// srcLine is one significant input line.
type srcLine struct {
	num    int
	indent int
	text   string // content with indentation stripped
}

type parser struct {
	path  string
	lines []srcLine
	pos   int
}

// parseYAML parses a whole document into its root mapping.
func parseYAML(path, src string) (*node, error) {
	p := &parser{path: path}
	for i, raw := range strings.Split(src, "\n") {
		num := i + 1
		text := stripComment(raw)
		trimmed := strings.TrimLeft(text, " ")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		indent := len(text) - len(trimmed)
		if strings.HasPrefix(raw, strings.Repeat(" ", indent)+"\t") || strings.Contains(text[:indent+min(1, len(trimmed))], "\t") {
			return nil, &parseError{p.path, num, "tab indentation is not supported; use spaces"}
		}
		if strings.HasPrefix(trimmed, "\t") {
			return nil, &parseError{p.path, num, "tab indentation is not supported; use spaces"}
		}
		p.lines = append(p.lines, srcLine{num: num, indent: indent, text: strings.TrimRight(trimmed, " ")})
	}
	if len(p.lines) == 0 {
		return nil, &parseError{p.path, 1, "empty scenario file"}
	}
	if p.lines[0].indent != 0 {
		return nil, &parseError{p.path, p.lines[0].num, "top level must not be indented"}
	}
	root, err := p.parseBlock(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, &parseError{p.path, l.num, fmt.Sprintf("unexpected indentation (got %d spaces)", l.indent)}
	}
	if root.kind != mapNode {
		return nil, &parseError{p.path, root.line, "top level must be a mapping"}
	}
	return root, nil
}

// stripComment removes a trailing comment, honoring quotes.
func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD && (i == 0 || s[i-1] == ' ') {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses the run of lines at exactly `indent`, returning a
// mapping or a sequence depending on the first line.
func (p *parser) parseBlock(indent int) (*node, error) {
	first := p.lines[p.pos]
	if strings.HasPrefix(first.text, "- ") || first.text == "-" {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *parser) parseMapping(indent int) (*node, error) {
	out := &node{kind: mapNode, line: p.lines[p.pos].num, children: map[string]*node{}}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, &parseError{p.path, l.num, fmt.Sprintf("unexpected indentation (got %d spaces, expected %d)", l.indent, indent)}
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, &parseError{p.path, l.num, "sequence item in a mapping block"}
		}
		key, rest, err := p.splitKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := out.children[key]; dup {
			return nil, &parseError{p.path, l.num, fmt.Sprintf("duplicate key %q", key)}
		}
		p.pos++
		var child *node
		if rest != "" {
			child, err = p.parseInline(rest, l.num)
			if err != nil {
				return nil, err
			}
		} else if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			child, err = p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
		} else {
			child = &node{kind: scalarNode, line: l.num, scalar: ""}
		}
		out.keys = append(out.keys, key)
		out.children[key] = child
	}
	return out, nil
}

func (p *parser) parseSequence(indent int) (*node, error) {
	out := &node{kind: listNode, line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || (!strings.HasPrefix(l.text, "- ") && l.text != "-") {
			if l.indent > indent {
				return nil, &parseError{p.path, l.num, fmt.Sprintf("unexpected indentation (got %d spaces, expected %d)", l.indent, indent)}
			}
			break
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		itemIndent := l.indent + 2
		if rest == "" {
			// "-" alone: the item is the following deeper block.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, &parseError{p.path, l.num, "empty sequence item"}
			}
			item, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out.items = append(out.items, item)
			continue
		}
		if k, v, isKV := splitInlineKey(rest); isKV {
			// "- key: value" opens a mapping whose remaining keys sit at
			// the item's content indent (dash indent + 2).
			item := &node{kind: mapNode, line: l.num, children: map[string]*node{}}
			p.pos++
			var first *node
			var err error
			if v != "" {
				first, err = p.parseInline(v, l.num)
			} else if p.pos < len(p.lines) && p.lines[p.pos].indent > itemIndent {
				first, err = p.parseBlock(p.lines[p.pos].indent)
			} else {
				first = &node{kind: scalarNode, line: l.num, scalar: ""}
			}
			if err != nil {
				return nil, err
			}
			item.keys = append(item.keys, k)
			item.children[k] = first
			if p.pos < len(p.lines) && p.lines[p.pos].indent == itemIndent &&
				!strings.HasPrefix(p.lines[p.pos].text, "- ") && p.lines[p.pos].text != "-" {
				rest, err := p.parseMapping(itemIndent)
				if err != nil {
					return nil, err
				}
				for _, rk := range rest.keys {
					if _, dup := item.children[rk]; dup {
						return nil, &parseError{p.path, rest.children[rk].line, fmt.Sprintf("duplicate key %q", rk)}
					}
					item.keys = append(item.keys, rk)
					item.children[rk] = rest.children[rk]
				}
			}
			out.items = append(out.items, item)
			continue
		}
		// Plain scalar (or flow list) item.
		p.pos++
		item, err := p.parseInline(rest, l.num)
		if err != nil {
			return nil, err
		}
		out.items = append(out.items, item)
	}
	return out, nil
}

// parseInline parses a value that fits on one line: a scalar or a flow
// sequence.
func (p *parser) parseInline(s string, line int) (*node, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, &parseError{p.path, line, "flow sequence missing closing ]"}
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		out := &node{kind: listNode, line: line}
		if inner == "" {
			return out, nil
		}
		for _, part := range splitFlow(inner) {
			part = strings.TrimSpace(part)
			if part == "" {
				return nil, &parseError{p.path, line, "empty element in flow sequence"}
			}
			sc, quoted, err := unquote(part)
			if err != nil {
				return nil, &parseError{p.path, line, err.Error()}
			}
			out.items = append(out.items, &node{kind: scalarNode, line: line, scalar: sc, quoted: quoted})
		}
		return out, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, &parseError{p.path, line, "flow mappings are not supported"}
	}
	if strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">") {
		return nil, &parseError{p.path, line, "block scalars (| and >) are not supported"}
	}
	if strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") {
		return nil, &parseError{p.path, line, "anchors and aliases are not supported"}
	}
	sc, quoted, err := unquote(s)
	if err != nil {
		return nil, &parseError{p.path, line, err.Error()}
	}
	return &node{kind: scalarNode, line: line, scalar: sc, quoted: quoted}, nil
}

// splitKey splits "key: rest" on a mapping line.
func (p *parser) splitKey(l srcLine) (key, rest string, err error) {
	k, v, ok := splitInlineKey(l.text)
	if !ok {
		return "", "", &parseError{p.path, l.num, fmt.Sprintf("expected \"key: value\", got %q", l.text)}
	}
	return k, v, nil
}

// splitInlineKey splits "key: value" / "key:" into (key, value, true),
// requiring a simple unquoted key.
func splitInlineKey(s string) (key, value string, ok bool) {
	i := strings.Index(s, ":")
	if i <= 0 {
		return "", "", false
	}
	key = s[:i]
	if strings.ContainsAny(key, "\"'[]{} ") {
		return "", "", false
	}
	rest := s[i+1:]
	if rest == "" {
		return key, "", true
	}
	if !strings.HasPrefix(rest, " ") {
		return "", "", false // "a:b" is a scalar, not a key
	}
	return key, strings.TrimSpace(rest), true
}

// splitFlow splits a flow-sequence body on commas outside quotes.
func splitFlow(s string) []string {
	var parts []string
	depth := 0
	inS, inD := false, false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '[':
			if !inS && !inD {
				depth++
			}
		case ']':
			if !inS && !inD {
				depth--
			}
		case ',':
			if !inS && !inD && depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// unquote interprets a scalar literal.
func unquote(s string) (val string, quoted bool, err error) {
	if len(s) >= 2 && s[0] == '"' {
		if s[len(s)-1] != '"' {
			return "", false, fmt.Errorf("unterminated double-quoted string %s", s)
		}
		var b strings.Builder
		body := s[1 : len(s)-1]
		for i := 0; i < len(body); i++ {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '"':
					b.WriteByte('"')
				case '\\':
					b.WriteByte('\\')
				default:
					return "", false, fmt.Errorf("unsupported escape \\%c", body[i])
				}
				continue
			}
			if c == '"' {
				return "", false, fmt.Errorf("unescaped quote inside %s", s)
			}
			b.WriteByte(c)
		}
		return b.String(), true, nil
	}
	if len(s) >= 2 && s[0] == '\'' {
		if s[len(s)-1] != '\'' {
			return "", false, fmt.Errorf("unterminated single-quoted string %s", s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), true, nil
	}
	if len(s) > 0 && (s[0] == '"' || s[0] == '\'') {
		return "", false, fmt.Errorf("unterminated quoted string %s", s)
	}
	return s, false, nil
}
