package scenario

import (
	"fmt"
	"strings"

	"github.com/robotron-net/robotron/internal/confdiff"
	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/monitor"
	"github.com/robotron-net/robotron/internal/reconcile"
	"github.com/robotron-net/robotron/internal/telemetry"
)

// Assertion evaluation. Every check observes through the public APIs
// the operator would use — reconciler states, the telemetry registry's
// programmatic snapshot, the journal, FBNet audit events — with fault
// injection paused so the observer neither perturbs nor is perturbed by
// the chaos schedule. A failure names the first violated assertion with
// its event index and device, and attaches the most useful context:
// the confdiff hunk for config mismatches, the journal tail for state
// machine surprises.

// checkAll evaluates an assertion list; eventIdx -1 marks the final
// block. The first failure wins.
func (e *engine) checkAll(asserts []AssertionSpec, eventIdx int) error {
	if len(asserts) == 0 {
		return nil
	}
	resume := e.pauseFaults()
	defer resume()
	for i := range asserts {
		a := &asserts[i]
		if err := e.check(a, eventIdx, i); err != nil {
			return err
		}
	}
	return nil
}

// resolveDevices expands "all" to the sorted fleet and "site:<x>" to
// that site's sorted devices (the failure-domain selector).
func (e *engine) resolveDevices(name string) []string {
	if name == "all" {
		return e.devices
	}
	if site, ok := strings.CutPrefix(name, "site:"); ok {
		return e.sites[site]
	}
	return []string{name}
}

func (e *engine) check(a *AssertionSpec, eventIdx, assertIdx int) error {
	fail := func(device, format string, args ...any) *RunError {
		return &RunError{Scenario: e.file.Name, EventIdx: eventIdx, AssertIdx: assertIdx,
			Kind: a.Type, Device: device, Msg: fmt.Sprintf(format, args...)}
	}
	switch a.Type {
	case AssertDeviceState:
		states := e.r.Reconciler.States()
		for _, name := range e.resolveDevices(a.Device) {
			got := states[name]
			if got == "" {
				got = reconcile.StateConverged // never entered the loop
			}
			ok := string(got) == a.State ||
				(a.State == "converged-or-quarantined" &&
					(got == reconcile.StateConverged || got == reconcile.StateQuarantined))
			if !ok {
				err := fail(name, "state is %q, want %q", got, a.State)
				err.Context = e.journalTail(name)
				return err
			}
		}
	case AssertRunningGolden:
		states := e.r.Reconciler.States()
		for _, name := range e.resolveDevices(a.Device) {
			if a.SkipQuarantined && states[name] == reconcile.StateQuarantined {
				continue
			}
			d, ok := e.r.Fleet.Device(name)
			if !ok {
				return fail(name, "device missing from fleet")
			}
			golden, err := e.r.Generator.Golden(name)
			if err != nil {
				return fail(name, "no golden config: %v", err)
			}
			// Out-of-band read: asserting must not open a management
			// session, or it would skew a later no-new-mgmt-ops check.
			if running := d.PeekRunningConfig(); running != golden {
				ferr := fail(name, "running config deviates from golden")
				ferr.Context = diffHunk(golden, running)
				return ferr
			}
		}
	case AssertNoCandidates:
		for _, name := range e.resolveDevices(a.Device) {
			if d, ok := e.r.Fleet.Device(name); ok && d.HasCandidate() {
				return fail(name, "a staged candidate config is present")
			}
		}
	case AssertNoConfirms:
		for _, name := range e.resolveDevices(a.Device) {
			if d, ok := e.r.Fleet.Device(name); ok && d.ConfirmPending() {
				return fail(name, "a provisional commit-confirm is still pending")
			}
		}
	case AssertBreaker:
		if a.Shard != "" {
			if got := e.r.Reconciler.ShardTripped(a.Shard); got != a.Tripped {
				err := fail("", "shard %s breaker tripped=%v, want %v", a.Shard, got, a.Tripped)
				err.Context = e.journalTail("")
				return err
			}
			break
		}
		if got := e.r.Reconciler.Tripped(); got != a.Tripped {
			err := fail("", "breaker tripped=%v, want %v", got, a.Tripped)
			err.Context = e.journalTail("")
			return err
		}
	case AssertMetric:
		labels := make(telemetry.Labels, 0, len(a.Labels))
		for _, l := range a.Labels {
			k, v, _ := strings.Cut(l, "=")
			labels = append(labels, telemetry.L(k, v)...)
		}
		got, ok := e.reg.Value(a.Metric, labels...)
		if !ok {
			return fail("", "metric %s%s is not registered", a.Metric, labels.String())
		}
		if !compare(got, a.Op, a.Value) {
			return fail("", "metric %s%s = %g, want %s %g", a.Metric, labels.String(), got, a.Op, a.Value)
		}
	case AssertJournal:
		n := 0
		for _, je := range e.r.Reconciler.Journal().Events() {
			if string(je.Type) != a.Event {
				continue
			}
			if a.Device != "" && a.Device != "all" && je.Device != a.Device {
				continue
			}
			n++
		}
		if n < a.MinCount {
			err := fail(a.Device, "journal has %d %q event(s), want >= %d", n, a.Event, a.MinCount)
			err.Context = e.journalTail(a.Device)
			return err
		}
	case AssertVerify:
		events, err := e.r.Store.Find("OperationalEvent", fbnet.Eq("kind", "verify-gate"))
		if err != nil {
			return fail("", "audit query: %v", err)
		}
		found := false
		for _, ev := range events {
			urgency := ev.String("urgency")
			if a.Verdict == "rejected" && urgency == "CRITICAL" {
				found = true
			}
			if a.Verdict == "passed" && urgency == "NOTICE" {
				found = true
			}
		}
		if !found {
			return fail("", "no %q verify-gate verdict on the audit record (%d gate event(s))", a.Verdict, len(events))
		}
	case AssertFaultsFired:
		if e.policy == nil {
			return fail("", "faults-fired asserted but no fault rules are declared")
		}
		counts := e.policy.Counts()
		kinds := 0
		for _, n := range counts {
			if n > 0 {
				kinds++
			}
		}
		total := e.policy.Total()
		if kinds < a.MinKinds || total < int64(a.MinTotal) {
			return fail("", "fault engine too quiet: %d kind(s) fired, %d total (want >= %d kinds, >= %d total)",
				kinds, total, a.MinKinds, a.MinTotal)
		}
	case AssertNoNewMgmtOps:
		if e.opsBase == nil {
			return fail("", "no-new-mgmt-ops needs a prior snapshot event")
		}
		for _, name := range e.resolveDevices(a.Device) {
			d, ok := e.r.Fleet.Device(name)
			if !ok {
				return fail(name, "device missing from fleet")
			}
			if got, base := d.MgmtOps(), e.opsBase[name]; got != base {
				return fail(name, "management ops %d -> %d: the fleet was touched", base, got)
			}
		}
	case AssertAlarm:
		if e.r.Alarms == nil {
			return fail("", "alarm asserted but the alarm engine is disabled")
		}
		wantState := a.State
		if wantState == "" {
			wantState = string(monitor.AlarmFiring)
		}
		n := 0
		var correlated bool
		for _, al := range e.r.Alarms.Snapshot() {
			if al.Rule != a.Rule || string(al.State) != wantState {
				continue
			}
			if a.Device != "" && a.Device != "all" && al.Device != a.Device {
				continue
			}
			n++
			for _, c := range al.Correlated {
				if a.CorrelatesKind != "" && c.Kind != a.CorrelatesKind {
					continue
				}
				if a.CorrelatesDevice != "" && c.Device != a.CorrelatesDevice {
					continue
				}
				correlated = true
			}
		}
		if n < a.MinCount {
			err := fail(a.Device, "%d %q alarm(s) in state %q, want >= %d", n, a.Rule, wantState, a.MinCount)
			err.Context = alarmContext(e.r.Alarms.Snapshot())
			return err
		}
		if a.CorrelatesKind != "" && !correlated {
			err := fail(a.Device, "no %q alarm correlates with a %q event%s",
				a.Rule, a.CorrelatesKind, correlatesDeviceSuffix(a.CorrelatesDevice))
			err.Context = alarmContext(e.r.Alarms.Snapshot())
			return err
		}
	case AssertGoldenStable:
		if e.goldenBase == nil {
			return fail("", "golden-unchanged needs a prior snapshot event")
		}
		for _, name := range e.resolveDevices(a.Device) {
			golden, err := e.r.Generator.Golden(name)
			if err != nil {
				return fail(name, "no golden config: %v", err)
			}
			if base := e.goldenBase[name]; golden != base {
				ferr := fail(name, "golden intent moved since the snapshot")
				ferr.Context = diffHunk(base, golden)
				return ferr
			}
		}
	}
	return nil
}

func compare(got float64, op string, want float64) bool {
	switch op {
	case "==":
		return got == want
	case "!=":
		return got != want
	case ">=":
		return got >= want
	case "<=":
		return got <= want
	case ">":
		return got > want
	case "<":
		return got < want
	}
	return false
}

func correlatesDeviceSuffix(dev string) string {
	if dev == "" {
		return ""
	}
	return " naming device " + dev
}

// alarmContext renders the full alarm snapshot for a failure message.
func alarmContext(alarms []monitor.Alarm) string {
	if len(alarms) == 0 {
		return "alarms: (none)"
	}
	return "alarms:\n" + monitor.FormatAlarms(alarms)
}

// journalTail renders the last few reconciler journal entries (for one
// device, or loop-wide), the context an operator wants first.
func (e *engine) journalTail(device string) string {
	events := e.r.Reconciler.Journal().Events()
	var lines []string
	for _, je := range events {
		if device != "" && device != "all" && je.Device != device && je.Device != "" {
			continue
		}
		lines = append(lines, "  "+je.String())
	}
	const tail = 8
	if len(lines) > tail {
		lines = append([]string{fmt.Sprintf("  ... (%d earlier entries)", len(lines)-tail)}, lines[len(lines)-tail:]...)
	}
	if len(lines) == 0 {
		return "journal tail: (empty)"
	}
	return "journal tail:\n" + strings.Join(lines, "\n")
}

// diffHunk renders the changed lines between want and got (golden vs
// running), capped so a failure message stays readable.
func diffHunk(want, got string) string {
	d := confdiff.Compute(want, got)
	var lines []string
	for _, ed := range d.Edits {
		if ed.Kind == confdiff.Equal {
			continue
		}
		for _, l := range ed.Lines {
			lines = append(lines, ed.Kind.String()+l)
		}
	}
	const maxLines = 12
	truncated := ""
	if len(lines) > maxLines {
		truncated = fmt.Sprintf("\n  ... (%d more changed lines)", len(lines)-maxLines)
		lines = lines[:maxLines]
	}
	if len(lines) == 0 {
		return "confdiff: configs differ only in trailing whitespace"
	}
	return "confdiff (-golden +running):\n  " + strings.Join(lines, "\n  ") + truncated
}
