package scenario

import (
	"strings"
	"testing"
	"time"
)

// TestParseRoundTrip decodes a document exercising every construct the
// subset supports and checks the typed model field by field.
func TestParseRoundTrip(t *testing.T) {
	src := `# leading comment
name: round-trip
description: "every construct, one file"
seed: 42
start: 2026-01-02T03:04:05Z
end: 2h30m

fleet:
  site: pop9
  cluster: pop9-c1   # trailing comment
  template: pop-gen2
  region: emea

reconciler:
  damping_threshold: -1
  damping_window: 1h
  budget_max_devices: 3
  budget_max_fraction: 0.5
  backoff_base: 2s

faults:
  armed: true
  rules:
    - kind: transient
      probability: 0.25
      verbs: [commit, "show running-config"]
      devices: [pr1.pop9-c1]
      max_count: 7
    - kind: latency
      probability: 1
      latency: 150ms
      verbs: [commit]

service:
  regions: [ash, prn]
  replicas: 2

deploy:
  retry_attempts: 4
  parallelism: 1

events:
  - at: 1m
    action: drift
    device: pr1.pop9-c1
    line: '! it''s here: a #colon and a quote'
  - at: 2m
    action: deploy
    devices: [all]
    dryrun: true
    expect:
      - type: no-candidates
        device: all

assert:
  - type: metric
    metric: robotron_verify_rejections_total
    labels: []
    op: ==
    value: 0
`
	f, err := Parse("round.yaml", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Name != "round-trip" || f.Description != "every construct, one file" {
		t.Errorf("name/description = %q/%q", f.Name, f.Description)
	}
	if f.Seed != 42 {
		t.Errorf("seed = %d, want 42", f.Seed)
	}
	if want := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC); !f.Start.Equal(want) {
		t.Errorf("start = %v, want %v", f.Start, want)
	}
	if f.End != 2*time.Hour+30*time.Minute {
		t.Errorf("end = %v", f.End)
	}
	if f.Fleet.Site != "pop9" || f.Fleet.Cluster != "pop9-c1" || f.Fleet.Template != "pop-gen2" {
		t.Errorf("fleet = %+v", f.Fleet)
	}
	if f.Fleet.Kind != "pop" {
		t.Errorf("fleet kind not defaulted from template: %q", f.Fleet.Kind)
	}
	if f.Fleet.Region != "emea" {
		t.Errorf("region = %q", f.Fleet.Region)
	}
	if f.Reconciler.DampingThreshold != -1 || f.Reconciler.DampingWindow != time.Hour ||
		f.Reconciler.BudgetMaxDevices != 3 || f.Reconciler.BudgetMaxFrac != 0.5 ||
		f.Reconciler.BackoffBase != 2*time.Second {
		t.Errorf("reconciler = %+v", f.Reconciler)
	}
	if !f.Faults.Armed || len(f.Faults.Rules) != 2 {
		t.Fatalf("faults = %+v", f.Faults)
	}
	r0 := f.Faults.Rules[0]
	if r0.Kind != "transient" || r0.Probability != 0.25 || r0.MaxCount != 7 {
		t.Errorf("rule 0 = %+v", r0)
	}
	if len(r0.Verbs) != 2 || r0.Verbs[1] != "show running-config" {
		t.Errorf("rule 0 verbs = %v", r0.Verbs)
	}
	if f.Faults.Rules[1].Latency != 150*time.Millisecond {
		t.Errorf("rule 1 latency = %v", f.Faults.Rules[1].Latency)
	}
	if f.Service == nil || len(f.Service.Regions) != 2 || f.Service.Replicas != 2 {
		t.Fatalf("service = %+v", f.Service)
	}
	if f.Deploy.RetryAttempts != 4 || f.Deploy.Parallelism != 1 {
		t.Errorf("deploy = %+v", f.Deploy)
	}
	if len(f.Events) != 2 {
		t.Fatalf("events = %d", len(f.Events))
	}
	ev0 := f.Events[0]
	if ev0.At != time.Minute || ev0.Action != ActDrift || ev0.Device != "pr1.pop9-c1" {
		t.Errorf("event 0 = %+v", ev0)
	}
	if want := "! it's here: a #colon and a quote"; ev0.Text != want {
		t.Errorf("event 0 line = %q, want %q", ev0.Text, want)
	}
	ev1 := f.Events[1]
	if !ev1.DryRun || len(ev1.Devices) != 1 || ev1.Devices[0] != "all" {
		t.Errorf("event 1 = %+v", ev1)
	}
	if len(ev1.Expect) != 1 || ev1.Expect[0].Type != AssertNoCandidates {
		t.Errorf("event 1 expect = %+v", ev1.Expect)
	}
	if len(f.Assert) != 1 || f.Assert[0].Op != "==" || f.Assert[0].Value != 0 {
		t.Errorf("assert = %+v", f.Assert)
	}
}

// TestParseDefaults checks the documented fallbacks: seed 1, the fixed
// virtual start instant, end 0, service absent.
func TestParseDefaults(t *testing.T) {
	f, err := Parse("d.yaml", "name: d\nfleet:\n  site: s1\n  cluster: c1\n  template: pop-gen1\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Seed != 1 {
		t.Errorf("seed = %d, want 1", f.Seed)
	}
	if !f.Start.Equal(defaultStart) {
		t.Errorf("start = %v, want %v", f.Start, defaultStart)
	}
	if f.End != 0 || f.Service != nil {
		t.Errorf("end = %v, service = %v", f.End, f.Service)
	}
}

// TestParseRejections feeds malformed documents through the parser and
// checks each is rejected with the expected position and message
// fragment — the error surface operators actually see.
func TestParseRejections(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error, which starts "bad.yaml:<line>: "
	}{
		{"empty", "", "bad.yaml:1: empty scenario file"},
		{"comment only", "# nothing\n\n", "bad.yaml:1: empty scenario file"},
		{"tab indent", "name: x\nfleet:\n\tsite: s\n", "bad.yaml:3: tab indentation"},
		{"top-level indent", "  name: x\n", "bad.yaml:1: top level must not be indented"},
		{"top-level list", "- a\n- b\n", "bad.yaml:1: top level must be a mapping"},
		{"missing colon", "name x\n", `expected "key: value"`},
		{"duplicate key", "name: a\nname: b\n", `bad.yaml:2: duplicate key "name"`},
		{"duplicate nested", "fleet:\n  site: a\n  site: b\n", `bad.yaml:3: duplicate key "site"`},
		{"bad indent jump", "fleet:\n  site: a\n    extra: b\n", "bad.yaml:3: unexpected indentation"},
		{"flow map", "fleet: {site: a}\n", "flow mappings are not supported"},
		{"block scalar", "name: |\n  text\n", "block scalars (| and >) are not supported"},
		{"anchor", "name: &a x\n", "anchors and aliases are not supported"},
		{"unclosed flow", "verbs: [a, b\n", "flow sequence missing closing ]"},
		{"empty flow elem", "verbs: [a, , b]\n", "empty element in flow sequence"},
		{"unterminated dquote", `name: "oops` + "\n", "unterminated"},
		{"unterminated squote", "name: 'oops\n", "unterminated"},
		{"bad escape", `name: "a\q"` + "\n", `unsupported escape \q`},
		{"seq in map", "fleet:\n  site: a\n- b\n", "bad.yaml:3: sequence item in a mapping block"},
		{"empty seq item", "events:\n  -\n", "bad.yaml:2: empty sequence item"},
		{"unknown top field", "name: x\nbogus: y\n", `unknown field "bogus" in scenario`},
		{"unknown event field", "name: x\nfleet:\n  site: s\n  cluster: c\n  template: pop-gen1\nevents:\n  - at: 1m\n    action: wait\n    frobnicate: 1\n", `unknown field "frobnicate" in event`},
		{"bad integer", "name: x\nseed: twelve\n", `"twelve" is not an integer`},
		{"bad duration", "name: x\nend: soon\n", `"soon" is not a duration`},
		{"negative duration", "name: x\nend: -5m\n", "duration must not be negative"},
		{"bad boolean", "name: x\nfleet:\n  site: s\n  cluster: c\n  template: pop-gen1\nfaults:\n  armed: yes\n", `"yes" is not a boolean`},
		{"bad time", "name: x\nstart: yesterday\n", "is not an RFC 3339 time"},
		{"scalar where list", "name: x\nfleet:\n  site: s\n  cluster: c\n  template: pop-gen1\nevents: none\n", `field "events" must be a list`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("bad.yaml", tc.src)
			if err == nil {
				t.Fatalf("Parse accepted malformed input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

// TestParseErrorsAreDeterministic re-parses the same malformed input and
// demands the identical message: error text is part of the contract
// (golden-tested), so it must not depend on map iteration order.
func TestParseErrorsAreDeterministic(t *testing.T) {
	src := "name: x\nfleet:\n  site: s\n  cluster: c\n  template: pop-gen1\n  bogus1: 1\n  bogus2: 2\n"
	_, first := Parse("bad.yaml", src)
	if first == nil {
		t.Fatal("expected an error")
	}
	for i := 0; i < 20; i++ {
		_, err := Parse("bad.yaml", src)
		if err == nil || err.Error() != first.Error() {
			t.Fatalf("run %d: error %q != first %q", i, err, first)
		}
	}
}

// TestStripComment pins the quote-aware comment rules: '#' only starts a
// comment at start of line or after a space, and never inside quotes.
func TestStripComment(t *testing.T) {
	cases := [][2]string{
		{"a: b # c", "a: b "},
		{"# whole line", ""},
		{`a: "b # not a comment"`, `a: "b # not a comment"`},
		{"a: 'x # y'", "a: 'x # y'"},
		{"a: b#not", "a: b#not"}, // no preceding space: not a comment
		{"a: b # c # d", "a: b "},
	}
	for _, c := range cases {
		if got := stripComment(c[0]); got != c[1] {
			t.Errorf("stripComment(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

// TestFleetDevices pins the device-name prediction the validator and
// "all" resolution rely on.
func TestFleetDevices(t *testing.T) {
	got := FleetDevices(FleetSpec{Cluster: "pop1-c1", Template: "pop-gen1"})
	want := []string{
		"pr1.pop1-c1", "pr2.pop1-c1",
		"psw1.pop1-c1", "psw2.pop1-c1", "psw3.pop1-c1", "psw4.pop1-c1",
	}
	if len(got) != len(want) {
		t.Fatalf("FleetDevices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FleetDevices[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	dc := FleetDevices(FleetSpec{Cluster: "dc1/c1", Template: "dc-gen3", Racks: 2})
	if n := 4 + 4 + 16 + 2; len(dc) != n {
		t.Fatalf("dc-gen3 with 2 racks: %d devices, want %d", len(dc), n)
	}
	if dc[len(dc)-1] != "tor2.dc1-c1" {
		t.Fatalf("last device = %q, want tor2.dc1-c1 (slash folded to dash)", dc[len(dc)-1])
	}
}
