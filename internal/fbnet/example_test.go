package fbnet_test

import (
	"fmt"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/relstore"
)

// The §4.2 API shape: transactional writes, then reads with local and
// indirect fields.
func Example() {
	db := relstore.NewDB("example")
	store, err := fbnet.Open(db, fbnet.NewCatalog())
	if err != nil {
		panic(err)
	}
	_, err = store.Mutate(func(m *fbnet.Mutation) error {
		region, err := m.Create("Region", map[string]any{"name": "apac"})
		if err != nil {
			return err
		}
		site, err := m.Create("Site", map[string]any{"name": "pop1", "kind": "pop", "region": region})
		if err != nil {
			return err
		}
		vendor, err := m.Create("Vendor", map[string]any{"name": "v1", "syntax": "vendor1"})
		if err != nil {
			return err
		}
		hw, err := m.Create("HardwareProfile", map[string]any{
			"name": "Router_Vendor1", "vendor": vendor,
			"num_slots": 4, "ports_per_linecard": 8, "port_speed_mbps": 10000,
		})
		if err != nil {
			return err
		}
		dev, err := m.Create("Device", map[string]any{
			"name": "pr1.pop1", "role": "pr", "site": site,
			"hw_profile": hw, "drain_state": "drained",
		})
		if err != nil {
			return err
		}
		_, err = m.Create("Linecard", map[string]any{"slot": 1, "device": dev})
		return err
	})
	if err != nil {
		panic(err)
	}
	// get<Linecard>(fields, query) with an indirect field (§4.2.1).
	rows, err := store.Get("Linecard",
		[]string{"slot", "device.name"},
		fbnet.Eq("device.name", "pr1.pop1"))
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		fmt.Printf("slot %v of %v\n", r.Fields["slot"], r.Fields["device.name"])
	}
	// Output: slot 1 of pr1.pop1
}
