package fbnet

import (
	"fmt"

	"github.com/robotron-net/robotron/internal/relstore"
	"github.com/robotron-net/robotron/internal/telemetry"
)

// Object is a snapshot of one FBNet object. Relation fields hold the id of
// the referenced object (0 meaning NULL).
type Object struct {
	Model  string
	ID     int64
	Fields map[string]any
}

// String returns a string field's value ("" when NULL or absent).
func (o Object) String(field string) string {
	s, _ := o.Fields[field].(string)
	return s
}

// Int returns an int field's value (0 when NULL or absent).
func (o Object) Int(field string) int64 {
	n, _ := o.Fields[field].(int64)
	return n
}

// Bool returns a bool field's value.
func (o Object) Bool(field string) bool {
	b, _ := o.Fields[field].(bool)
	return b
}

// Ref returns a relation field's target id (0 when NULL).
func (o Object) Ref(field string) int64 { return o.Int(field) }

// Store binds a model registry to a relstore database.
type Store struct {
	reg *Registry
	db  *relstore.DB
}

// Open creates (or verifies) one table per registered model on db and
// returns the store. Opening the same registry against a database that
// already has the tables (e.g. a promoted replica) is not an error.
func Open(db *relstore.DB, reg *Registry) (*Store, error) {
	existing := make(map[string]bool)
	for _, t := range db.Tables() {
		existing[t] = true
	}
	for _, name := range reg.Models() {
		if existing[name] {
			continue
		}
		m, _ := reg.Model(name)
		def := relstore.TableDef{Name: name}
		for _, f := range m.Fields {
			switch f.Kind {
			case ValueField:
				def.Columns = append(def.Columns, relstore.Column{
					Name: f.Name, Type: f.Type, Nullable: f.Nullable,
					Unique: f.Unique, Indexed: f.Indexed, Validate: f.Validate,
				})
			case RelationField:
				def.Columns = append(def.Columns, relstore.Column{
					Name: f.Name, Type: relstore.ColInt, Nullable: f.Nullable,
				})
				def.ForeignKeys = append(def.ForeignKeys, relstore.ForeignKey{
					Column: f.Name, RefTable: f.Target, OnDelete: f.OnDelete,
				})
			}
		}
		if err := db.CreateTable(def); err != nil {
			return nil, fmt.Errorf("fbnet: creating table for model %s: %w", name, err)
		}
	}
	return &Store{reg: reg, db: db}, nil
}

// Registry returns the store's model registry.
func (s *Store) Registry() *Registry { return s.reg }

// Instrument registers the store's planner counters and the backing
// server's transaction metrics on reg. Views and mutations sharing the
// model registry are covered automatically.
func (s *Store) Instrument(reg *telemetry.Registry) {
	s.reg.Instrument(reg)
	s.db.Instrument(reg)
}

// DB returns the underlying database (used by the service layer for
// replication wiring).
func (s *Store) DB() *relstore.DB { return s.db }

// ReadOnlyView returns a Store over a different database (typically a
// replica) sharing this store's registry.
func (s *Store) ReadOnlyView(db *relstore.DB) *Store {
	return &Store{reg: s.reg, db: db}
}

// AddField evolves a model in place with a new value field — the paper's
// most common model change ("new attributes are constantly added to
// existing models as needed", §6.1; drain_state itself arrived this way).
// The field must be nullable so existing objects read it as NULL; the
// underlying schema change replicates through the binlog like any write.
// Relationship fields cannot be added live (they require new foreign-key
// indexes); those changes ship as new models.
func (s *Store) AddField(model string, f Field) error {
	m, ok := s.reg.Model(model)
	if !ok {
		return fmt.Errorf("fbnet: unknown model %q", model)
	}
	if f.Kind != ValueField {
		return fmt.Errorf("fbnet: only value fields can be added to a live model; ship relationship changes as a new model")
	}
	if !f.Nullable {
		return fmt.Errorf("fbnet: new field %s.%s must be nullable (existing objects have no value)", model, f.Name)
	}
	if _, dup := m.Field(f.Name); dup {
		return fmt.Errorf("fbnet: model %s already has field %q", model, f.Name)
	}
	for _, rv := range s.reg.Reverses(model) {
		if rv.name == f.Name {
			return fmt.Errorf("fbnet: field %q collides with a reverse connection on %s", f.Name, model)
		}
	}
	if err := s.db.AlterAddColumn(model, relstore.Column{
		Name: f.Name, Type: f.Type, Nullable: true,
		Unique: f.Unique, Indexed: f.Indexed, Validate: f.Validate,
	}); err != nil {
		return err
	}
	m.Fields = append(m.Fields, f)
	return nil
}

// GetByID fetches one object.
func (s *Store) GetByID(model string, id int64) (Object, error) {
	if _, ok := s.reg.Model(model); !ok {
		return Object{}, fmt.Errorf("fbnet: unknown model %q", model)
	}
	row, err := s.db.Get(model, id)
	if err != nil {
		return Object{}, err
	}
	return Object{Model: model, ID: row.ID, Fields: row.Values}, nil
}

// Count returns the number of objects of a model.
func (s *Store) Count(model string) (int, error) {
	return s.db.Count(model)
}

// Mutation is a transactional write scope over the object store: FBNet's
// write APIs are "wrapped in a single database transaction, and therefore
// no partial state is visible to other applications before the API call
// completes successfully" (§4.3.2). All reads within a Mutation observe
// its uncommitted changes.
type Mutation struct {
	store *Store
	tx    *relstore.Tx
	// changed records every touched object for design-change accounting
	// (§6.2, Fig. 15).
	created  []ObjectRef
	modified []ObjectRef
	deleted  []ObjectRef
}

// ObjectRef identifies one object touched by a mutation.
type ObjectRef struct {
	Model string
	ID    int64
}

// ChangeStats summarizes a mutation for design-change accounting.
type ChangeStats struct {
	Created  []ObjectRef
	Modified []ObjectRef
	Deleted  []ObjectRef
}

// Total returns the total number of changed objects.
func (c ChangeStats) Total() int {
	return len(c.Created) + len(c.Modified) + len(c.Deleted)
}

// ByModel returns changed-object counts keyed by model name.
func (c ChangeStats) ByModel() map[string]int {
	out := map[string]int{}
	for _, refs := range [][]ObjectRef{c.Created, c.Modified, c.Deleted} {
		for _, r := range refs {
			out[r.Model]++
		}
	}
	return out
}

// Stats snapshots the objects touched so far within the mutation,
// excluding the change-tracking models themselves (DesignChange,
// DesignChangeEntry), so a design change can record its own size
// atomically (§5.1.3, §6.2).
func (m *Mutation) Stats() ChangeStats {
	filter := func(refs []ObjectRef) []ObjectRef {
		var out []ObjectRef
		for _, r := range refs {
			if r.Model == "DesignChange" || r.Model == "DesignChangeEntry" {
				continue
			}
			out = append(out, r)
		}
		return out
	}
	return ChangeStats{
		Created:  filter(m.created),
		Modified: filter(m.modified),
		Deleted:  filter(m.deleted),
	}
}

// Mutate runs fn in a transaction. On error the transaction rolls back and
// no partial state is visible. On success it returns statistics about the
// objects changed.
func (s *Store) Mutate(fn func(*Mutation) error) (ChangeStats, error) {
	tx, err := s.db.Begin()
	if err != nil {
		return ChangeStats{}, err
	}
	m := &Mutation{store: s, tx: tx}
	if err := fn(m); err != nil {
		tx.Rollback()
		return ChangeStats{}, err
	}
	if err := tx.Commit(); err != nil {
		return ChangeStats{}, err
	}
	return ChangeStats{Created: m.created, Modified: m.modified, Deleted: m.deleted}, nil
}

// Create inserts a new object and returns its id.
func (m *Mutation) Create(model string, fields map[string]any) (int64, error) {
	if _, ok := m.store.reg.Model(model); !ok {
		return 0, fmt.Errorf("fbnet: unknown model %q", model)
	}
	id, err := m.tx.Insert(model, fields)
	if err != nil {
		return 0, err
	}
	m.created = append(m.created, ObjectRef{Model: model, ID: id})
	return id, nil
}

// Update changes fields of an existing object.
func (m *Mutation) Update(model string, id int64, fields map[string]any) error {
	if _, ok := m.store.reg.Model(model); !ok {
		return fmt.Errorf("fbnet: unknown model %q", model)
	}
	if err := m.tx.Update(model, id, fields); err != nil {
		return err
	}
	m.modified = append(m.modified, ObjectRef{Model: model, ID: id})
	return nil
}

// Delete removes an object. Referential actions apply: dependent objects
// are cascaded or disassociated per the model's relationship declarations,
// the mechanism behind the paper's "delete router" design tool (§5.1.2).
func (m *Mutation) Delete(model string, id int64) error {
	if _, ok := m.store.reg.Model(model); !ok {
		return fmt.Errorf("fbnet: unknown model %q", model)
	}
	// Record cascades by comparing affected tables before/after.
	before := m.snapshotRefs(model, id)
	if err := m.tx.Delete(model, id); err != nil {
		return err
	}
	m.deleted = append(m.deleted, before...)
	return nil
}

// snapshotRefs lists the object plus everything that would be cascaded or
// modified by deleting it, for change accounting.
func (m *Mutation) snapshotRefs(model string, id int64) []ObjectRef {
	var out []ObjectRef
	seen := map[ObjectRef]bool{}
	var walk func(model string, id int64)
	walk = func(model string, id int64) {
		ref := ObjectRef{Model: model, ID: id}
		if seen[ref] {
			return
		}
		seen[ref] = true
		out = append(out, ref)
		for _, rv := range m.store.reg.Reverses(model) {
			srcModel, _ := m.store.reg.Model(rv.model)
			f, _ := srcModel.Field(rv.field)
			if f.OnDelete != relstore.Cascade {
				continue
			}
			ids, err := m.tx.Referencing(rv.model, rv.field, id)
			if err != nil {
				continue
			}
			for _, rid := range ids {
				walk(rv.model, rid)
			}
		}
	}
	walk(model, id)
	return out
}

// Get fetches one object within the mutation (sees uncommitted changes).
func (m *Mutation) Get(model string, id int64) (Object, error) {
	row, err := m.tx.Get(model, id)
	if err != nil {
		return Object{}, err
	}
	return Object{Model: model, ID: row.ID, Fields: row.Values}, nil
}

// Find returns objects of a model matching the query within the mutation.
func (m *Mutation) Find(model string, q Query) ([]Object, error) {
	return find(m.store.reg, txReader{m.tx}, model, q)
}

// FindOne returns exactly one matching object, erroring on zero or many.
func (m *Mutation) FindOne(model string, q Query) (Object, error) {
	objs, err := m.Find(model, q)
	if err != nil {
		return Object{}, err
	}
	switch len(objs) {
	case 0:
		return Object{}, fmt.Errorf("fbnet: no %s matches %s", model, q)
	case 1:
		return objs[0], nil
	default:
		return Object{}, fmt.Errorf("fbnet: %d %s objects match %s, want exactly 1", len(objs), model, q)
	}
}

// Referencing lists objects of srcModel whose srcField references id.
func (m *Mutation) Referencing(srcModel, srcField string, id int64) ([]Object, error) {
	ids, err := m.tx.Referencing(srcModel, srcField, id)
	if err != nil {
		return nil, err
	}
	out := make([]Object, 0, len(ids))
	for _, rid := range ids {
		o, err := m.Get(srcModel, rid)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}
