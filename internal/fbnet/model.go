// Package fbnet implements FBNet, Robotron's vendor-agnostic, network-wide
// object store (SIGCOMM '16, §4).
//
// Every network component — physical (devices, linecards, interfaces,
// circuits) or logical (BGP sessions, IP prefixes) — is a typed object
// instantiated from a model. Models declare value fields (object data) and
// relationship fields (typed references to other objects); each
// relationship also creates a reverse connection on the referenced model
// (§4.2.1). Models are partitioned into the Desired group, maintained by
// engineers through design tools and driving config generation, and the
// Derived group, populated from live network state by monitoring (§4.1.2).
//
// The store persists objects in a relstore database — one table per model,
// relationship fields as foreign keys — mirroring the paper's MySQL/Django
// implementation, and exposes read and write APIs: declarative queries
// with local and dotted indirect fields, and transactional multi-object
// writes.
package fbnet

import (
	"fmt"
	"net/netip"
	"strings"

	"github.com/robotron-net/robotron/internal/relstore"
	"github.com/robotron-net/robotron/internal/telemetry"
)

// Group partitions models into Desired (engineer-maintained design intent)
// and Derived (collected operational state).
type Group int

const (
	Desired Group = iota
	Derived
)

func (g Group) String() string {
	if g == Derived {
		return "Derived"
	}
	return "Desired"
}

// FieldKind distinguishes value fields from relationship fields.
type FieldKind int

const (
	ValueField    FieldKind = iota
	RelationField           // typed reference to another model's object
)

// Field declares one model attribute.
type Field struct {
	Name string
	Kind FieldKind

	// Value field properties.
	Type     relstore.ColType
	Nullable bool
	Unique   bool
	// Indexed declares a non-unique secondary index on the field, so the
	// query planner answers Eq/In lookups on it from the index instead of
	// scanning the whole table (role, drain_state, status-style fields).
	Indexed  bool
	Validate func(v any) error

	// Relation field properties.
	Target   string // target model name
	OnDelete relstore.FKAction
	// ReverseName is the name of the reverse connection created on the
	// target model (Django's related_name). Defaults to the plural
	// lower-case source model name; must be set explicitly when one model
	// has several relations to the same target.
	ReverseName string
}

// Model is the schema of one FBNet object type.
type Model struct {
	Name   string
	Group  Group
	Doc    string
	Fields []Field
}

// Field returns the declared field with the given name.
func (m *Model) Field(name string) (*Field, bool) {
	for i := range m.Fields {
		if m.Fields[i].Name == name {
			return &m.Fields[i], true
		}
	}
	return nil, false
}

// reverse describes an incoming relation: source model + field pointing
// at this model.
type reverse struct {
	name  string // reverse connection name exposed on the target model
	model string // source model
	field string // source field
}

// ComputedField derives an attribute from an object on the fly rather
// than storing it: "some attributes are not directly stored in FBNet.
// Instead, they are generated systematically on the fly. The derivation
// logic may change as our understanding of the use cases matures" — the
// paper's asset_url example (§6.1).
type ComputedField func(o Object) any

// Registry holds the registered models and their computed reverse
// connections.
type Registry struct {
	models   map[string]*Model
	order    []string
	reverses map[string][]reverse                // target model -> incoming relations
	computed map[string]map[string]ComputedField // model -> field -> derivation

	// Plan-choice counters shared by every read surface over this model
	// registry (Store, ReadOnlyView, Mutation); nil no-ops until
	// Instrument.
	mPlanIndexed *telemetry.Counter
	mPlanScanned *telemetry.Counter
}

// Instrument registers plan-choice counters on reg: every planned query
// is counted as either answered from indexes or as a full table scan
// (robotron_fbnet_queries_planned_total{strategy=...}).
func (r *Registry) Instrument(reg *telemetry.Registry) {
	reg.Help("robotron_fbnet_queries_planned_total", "read queries by planner strategy")
	r.mPlanIndexed = reg.Counter("robotron_fbnet_queries_planned_total", telemetry.Label{Key: "strategy", Value: "indexed"})
	r.mPlanScanned = reg.Counter("robotron_fbnet_queries_planned_total", telemetry.Label{Key: "strategy", Value: "scan"})
}

// NewRegistry returns an empty model registry.
func NewRegistry() *Registry {
	return &Registry{
		models:   make(map[string]*Model),
		reverses: make(map[string][]reverse),
		computed: make(map[string]map[string]ComputedField),
	}
}

// RegisterComputed installs (or replaces — derivation logic evolves) an
// on-the-fly field on a model. Computed fields are readable through the
// read API like value fields but never stored.
func (r *Registry) RegisterComputed(model, name string, fn ComputedField) error {
	m, ok := r.models[model]
	if !ok {
		return fmt.Errorf("fbnet: unknown model %q", model)
	}
	if _, clash := m.Field(name); clash {
		return fmt.Errorf("fbnet: computed field %q collides with a stored field on %s", name, model)
	}
	for _, rv := range r.reverses[model] {
		if rv.name == name {
			return fmt.Errorf("fbnet: computed field %q collides with a reverse connection on %s", name, model)
		}
	}
	if r.computed[model] == nil {
		r.computed[model] = make(map[string]ComputedField)
	}
	r.computed[model][name] = fn
	return nil
}

// Computed returns the derivation for a model's computed field, if any.
func (r *Registry) Computed(model, name string) (ComputedField, bool) {
	fn, ok := r.computed[model][name]
	return fn, ok
}

// Register adds a model. Relation targets must already be registered
// (self-references allowed), enforcing an explicit dependency order just
// as SQL foreign keys do.
func (r *Registry) Register(m Model) error {
	if m.Name == "" {
		return fmt.Errorf("fbnet: model name must not be empty")
	}
	if _, dup := r.models[m.Name]; dup {
		return fmt.Errorf("fbnet: model %q already registered", m.Name)
	}
	seen := map[string]bool{"id": true}
	for i := range m.Fields {
		f := &m.Fields[i]
		if f.Name == "" {
			return fmt.Errorf("fbnet: model %s: empty field name", m.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("fbnet: model %s: duplicate field %q", m.Name, f.Name)
		}
		seen[f.Name] = true
		if f.Kind == RelationField {
			if f.Target != m.Name {
				if _, ok := r.models[f.Target]; !ok {
					return fmt.Errorf("fbnet: model %s: field %s references unregistered model %q", m.Name, f.Name, f.Target)
				}
			}
			if f.ReverseName == "" {
				f.ReverseName = defaultReverseName(m.Name)
			}
		}
	}
	// Validate reverse-name uniqueness on each target.
	for _, f := range m.Fields {
		if f.Kind != RelationField {
			continue
		}
		target := r.models[f.Target]
		if f.Target == m.Name {
			target = &m
		}
		for _, rv := range r.reverses[f.Target] {
			if rv.name == f.ReverseName {
				return fmt.Errorf("fbnet: model %s: reverse name %q already used on %s (by %s.%s); set ReverseName explicitly",
					m.Name, f.ReverseName, f.Target, rv.model, rv.field)
			}
		}
		if _, clash := target.Field(f.ReverseName); clash {
			return fmt.Errorf("fbnet: model %s: reverse name %q collides with a field on %s", m.Name, f.ReverseName, f.Target)
		}
		r.reverses[f.Target] = append(r.reverses[f.Target], reverse{name: f.ReverseName, model: m.Name, field: f.Name})
	}
	cp := m
	cp.Fields = append([]Field(nil), m.Fields...)
	r.models[m.Name] = &cp
	r.order = append(r.order, m.Name)
	return nil
}

// MustRegister is Register that panics, for the static catalog.
func (r *Registry) MustRegister(m Model) {
	if err := r.Register(m); err != nil {
		panic(err)
	}
}

// Model returns a registered model by name.
func (r *Registry) Model(name string) (*Model, bool) {
	m, ok := r.models[name]
	return m, ok
}

// Models returns all model names in registration order.
func (r *Registry) Models() []string {
	return append([]string(nil), r.order...)
}

// ModelsInGroup returns the names of models in one group, in registration
// order.
func (r *Registry) ModelsInGroup(g Group) []string {
	var out []string
	for _, n := range r.order {
		if r.models[n].Group == g {
			out = append(out, n)
		}
	}
	return out
}

// Reverses returns the incoming relations of a model.
func (r *Registry) Reverses(name string) []reverse {
	return r.reverses[name]
}

// RelatedModels returns the distinct models associated with the named
// model, via outgoing relationship fields or incoming reverse connections.
// This is the quantity plotted in the paper's Figure 13.
func (r *Registry) RelatedModels(name string) []string {
	m, ok := r.models[name]
	if !ok {
		return nil
	}
	set := map[string]bool{}
	for _, f := range m.Fields {
		if f.Kind == RelationField && f.Target != name {
			set[f.Target] = true
		}
	}
	for _, rv := range r.reverses[name] {
		if rv.model != name {
			set[rv.model] = true
		}
	}
	out := make([]string, 0, len(set))
	for _, n := range r.order {
		if set[n] {
			out = append(out, n)
		}
	}
	return out
}

// defaultReverseName derives a reverse connection name from a source model
// name: PhysicalInterface -> physical_interfaces.
func defaultReverseName(model string) string {
	snake := toSnake(model)
	if strings.HasSuffix(snake, "s") || strings.HasSuffix(snake, "x") {
		return snake + "es"
	}
	if strings.HasSuffix(snake, "y") {
		return snake[:len(snake)-1] + "ies"
	}
	return snake + "s"
}

// toSnake converts CamelCase to snake_case, keeping digit groups attached:
// BgpV6Session -> bgp_v6_session.
func toSnake(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			if i > 0 && (s[i-1] < 'A' || s[i-1] > 'Z') && s[i-1] != '_' {
				b.WriteByte('_')
			}
			b.WriteByte(c + 'a' - 'A')
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}

// --- common field validators ---

// ValidateV6Prefix rejects values that are not valid IPv6 prefixes
// (the paper's V6PrefixField, Fig. 6).
func ValidateV6Prefix(v any) error {
	s, _ := v.(string)
	p, err := netip.ParsePrefix(s)
	if err != nil {
		return fmt.Errorf("%q is not an IP prefix", s)
	}
	if !p.Addr().Is6() || p.Addr().Is4In6() {
		return fmt.Errorf("%q is not an IPv6 prefix", s)
	}
	return nil
}

// ValidateV4Prefix rejects values that are not valid IPv4 prefixes.
func ValidateV4Prefix(v any) error {
	s, _ := v.(string)
	p, err := netip.ParsePrefix(s)
	if err != nil {
		return fmt.Errorf("%q is not an IP prefix", s)
	}
	if !p.Addr().Is4() {
		return fmt.Errorf("%q is not an IPv4 prefix", s)
	}
	return nil
}

// ValidateIPAddr rejects values that are not bare IP addresses (v4 or v6).
func ValidateIPAddr(v any) error {
	s, _ := v.(string)
	if _, err := netip.ParseAddr(s); err != nil {
		return fmt.Errorf("%q is not an IP address", s)
	}
	return nil
}

// ValidateNonEmpty rejects empty strings.
func ValidateNonEmpty(v any) error {
	if s, _ := v.(string); s == "" {
		return fmt.Errorf("must not be empty")
	}
	return nil
}

// ValidateOneOf returns a validator accepting only the listed strings.
func ValidateOneOf(allowed ...string) func(any) error {
	set := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		set[a] = true
	}
	return func(v any) error {
		s, _ := v.(string)
		if !set[s] {
			return fmt.Errorf("%q is not one of %s", s, strings.Join(allowed, ", "))
		}
		return nil
	}
}
