package fbnet

import (
	"errors"
	"strings"

	"github.com/robotron-net/robotron/internal/relstore"
)

// The query planner. FBNet queries default to a full table scan with the
// predicate evaluated per row; at production scale the hot read paths —
// FindOne(name), "every linecard of device X", "all drained devices" —
// must instead be answered from indexes. The planner recognizes the
// indexable shapes below and returns an exact candidate row set; the
// caller re-evaluates the full query against those rows, so a planner
// strategy must never omit a matching row but may include extras.
//
// Index hierarchy, in the order strategies are tried:
//
//	id literal      Eq/In("id", ...)            direct primary-key gets
//	unique index    Eq/In on a Unique field     relstore's unique map
//	secondary index Eq/In on an Indexed field   relstore's value→id-set map
//	ref index       Eq/In on a relation field   relstore's fk refIndex
//	path backward   Eq("a.b.c", v)              resolve leaf ids, then walk
//	                                            the path backward through
//	                                            ref indexes
//	full scan       everything else
//
// And-composed queries plan on their first plannable conjunct.

// planIndexed attempts to answer q from indexes. ok=false means "not
// plannable, fall back to the scan"; ok=true with an error means the
// lookup itself failed.
func planIndexed(reg *Registry, r reader, model string, q Query) ([]relstore.Row, bool, error) {
	switch e := q.(type) {
	case *cmpExpr:
		switch e.op {
		case opEq, opIn:
		default:
			return nil, false, nil
		}
		if e.op == opEq && len(e.rvals) != 1 {
			return nil, false, nil
		}
		if strings.Contains(e.field, ".") {
			if e.op != opEq {
				return nil, false, nil
			}
			ids, ok, err := planPathEq(reg, r, model, e.field, e.rvals[0])
			if !ok || err != nil {
				return nil, false, err
			}
			rows, err := fetchRows(r, model, ids)
			return rows, true, err
		}
		ids, ok, err := planLeafIDs(reg, r, model, e.field, e.rvals)
		if !ok || err != nil {
			return nil, false, err
		}
		rows, err := fetchRows(r, model, ids)
		return rows, true, err
	case *andExpr:
		// Plan on the first plannable conjunct; the caller still evaluates
		// the full query against the narrowed row set.
		for _, sub := range e.subs {
			if rows, ok, err := planIndexed(reg, r, model, sub); ok || err != nil {
				return rows, ok, err
			}
		}
	}
	return nil, false, nil
}

// planLeafIDs resolves the ids of model rows whose local field equals any
// of rvals, using the best available index. ok=false means the field has
// no usable index.
func planLeafIDs(reg *Registry, r reader, model, field string, rvals []any) ([]int64, bool, error) {
	if field == "id" {
		var ids []int64
		for _, rv := range rvals {
			// Non-integer rvalues can never equal an id; skip them — the
			// scan would find no match either.
			if id, isInt := normInt(rv); isInt {
				ids = append(ids, id)
			}
		}
		return dedupIDs(ids), true, nil
	}
	m, ok := reg.Model(model)
	if !ok {
		return nil, false, nil
	}
	f, ok := m.Field(field)
	if !ok {
		return nil, false, nil
	}
	switch {
	case f.Kind == ValueField && f.Unique:
		var ids []int64
		for _, rv := range rvals {
			id, found, err := r.lookupUnique(model, field, rv)
			if err != nil {
				return nil, false, nil // registry/schema mismatch: scan instead
			}
			if found {
				ids = append(ids, id)
			}
		}
		return dedupIDs(ids), true, nil
	case f.Kind == ValueField && f.Indexed:
		var ids []int64
		for _, rv := range rvals {
			got, err := r.lookupIndexed(model, field, rv)
			if err != nil {
				return nil, false, nil // registry/schema mismatch: scan instead
			}
			ids = append(ids, got...)
		}
		return dedupIDs(ids), true, nil
	case f.Kind == RelationField:
		// Eq("site", id): rows whose fk references id — exactly the fk
		// refIndex relstore already maintains for referential actions.
		var ids []int64
		for _, rv := range rvals {
			id, isInt := normInt(rv)
			if !isInt {
				continue // non-integer never matches a reference id
			}
			got, err := r.referencing(model, field, id)
			if err != nil {
				return nil, false, nil
			}
			ids = append(ids, got...)
		}
		return dedupIDs(ids), true, nil
	}
	return nil, false, nil
}

// pathStep is one relationship hop of a dotted query path, recorded while
// walking forward so the planner can invert it walking backward.
type pathStep struct {
	model string // model the hop starts from
	field string // relation field on model (forward hop), or on srcModel (reverse hop)
	// reverse hops: the hop traverses a reverse connection into srcModel,
	// whose field references model.
	reverse  bool
	srcModel string
}

// planPathEq plans Eq("a.b.c", v): resolve the target object ids on the
// final model, then walk the relationship hops backward — each forward
// relation inverts to a refIndex lookup, each reverse connection inverts
// to reading the source rows' fk — until the ids are rows of the query's
// own model. Every hop is index- or point-lookup-backed, so the whole
// plan is O(result) instead of O(table × path length).
func planPathEq(reg *Registry, r reader, model, path string, rval any) ([]int64, bool, error) {
	parts := strings.Split(path, ".")
	// Forward pass: classify each hop, stopping before the leaf part.
	steps := make([]pathStep, 0, len(parts)-1)
	cur := model
	for _, part := range parts[:len(parts)-1] {
		m, ok := reg.Model(cur)
		if !ok {
			return nil, false, nil
		}
		if f, ok := m.Field(part); ok && f.Kind == RelationField {
			steps = append(steps, pathStep{model: cur, field: part})
			cur = f.Target
			continue
		}
		rv, ok := findReverse(reg, cur, part)
		if !ok {
			// Value/computed field mid-path or unknown part: let the scan
			// surface the same error the match pass would.
			return nil, false, nil
		}
		steps = append(steps, pathStep{model: cur, reverse: true, srcModel: rv.model, field: rv.field})
		cur = rv.model
	}
	// Resolve the leaf: ids of cur-model rows the final part selects.
	leaf := parts[len(parts)-1]
	var ids []int64
	m, ok := reg.Model(cur)
	if !ok {
		return nil, false, nil
	}
	if f, ok := m.Field(leaf); ok && f.Kind == RelationField {
		// Leaf relation resolves to the referenced id, so rows matching are
		// those whose fk equals rval.
		id, isInt := normInt(rval)
		if !isInt {
			ids = nil
		} else {
			got, err := r.referencing(cur, leaf, id)
			if err != nil {
				return nil, false, nil
			}
			ids = got
		}
	} else {
		var ok bool
		var err error
		ids, ok, err = planLeafIDs(reg, r, cur, leaf, []any{rval})
		if !ok || err != nil {
			return nil, false, err
		}
	}
	// Backward pass: invert each hop, most recent first.
	for i := len(steps) - 1; i >= 0; i-- {
		st := steps[i]
		var prev []int64
		if st.reverse {
			// Forward went model --(reverse conn)--> srcModel rows whose
			// field references the model row. Backward: each srcModel row's
			// fk value is the model row that reaches it.
			for _, id := range ids {
				row, err := r.get(st.srcModel, id)
				if errors.Is(err, relstore.ErrNoRow) {
					continue
				}
				if err != nil {
					return nil, false, err
				}
				if v := row.Get(st.field); v != nil {
					prev = append(prev, v.(int64))
				}
			}
		} else {
			// Forward followed model.field → target. Backward: model rows
			// whose fk is any of the target ids, via the refIndex.
			for _, id := range ids {
				got, err := r.referencing(st.model, st.field, id)
				if err != nil {
					return nil, false, nil
				}
				prev = append(prev, got...)
			}
		}
		ids = dedupIDs(prev)
		if len(ids) == 0 {
			return nil, true, nil
		}
	}
	return dedupIDs(ids), true, nil
}

// findReverse looks up a reverse connection by its exposed name.
func findReverse(reg *Registry, model, name string) (reverse, bool) {
	for _, rv := range reg.Reverses(model) {
		if rv.name == name {
			return rv, true
		}
	}
	return reverse{}, false
}

// fetchRows point-gets each id, skipping ids that vanished between the
// index lookup and the get.
func fetchRows(r reader, model string, ids []int64) ([]relstore.Row, error) {
	rows := make([]relstore.Row, 0, len(ids))
	for _, id := range ids {
		row, err := r.get(model, id)
		if errors.Is(err, relstore.ErrNoRow) {
			continue
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// dedupIDs sorts ids ascending and removes duplicates, preserving the
// scan's id-ordered result contract.
func dedupIDs(ids []int64) []int64 {
	if len(ids) < 2 {
		return ids
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}
