package fbnet

import (
	"fmt"
	"strings"
	"testing"

	"github.com/robotron-net/robotron/internal/relstore"
)

// TestAddFieldLiveEvolution covers the §6.1 model-churn mechanics: a new
// nullable attribute lands on a model with existing objects.
func TestAddFieldLiveEvolution(t *testing.T) {
	s := newTestStore(t)
	ids := seedFig4(t, s)

	err := s.AddField("Device", Field{
		Name: "asset_url", Type: relstore.ColString, Nullable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Existing objects read the new field as NULL.
	obj, err := s.GetByID("Device", ids["psw"])
	if err != nil {
		t.Fatal(err)
	}
	if obj.Fields["asset_url"] != nil {
		t.Errorf("pre-existing object has non-NULL new field: %v", obj.Fields["asset_url"])
	}
	// The field is writable and queryable.
	if _, err := s.Mutate(func(m *Mutation) error {
		return m.Update("Device", ids["psw"], map[string]any{"asset_url": "https://assets/psw-a"})
	}); err != nil {
		t.Fatal(err)
	}
	objs, err := s.Find("Device", Eq("asset_url", "https://assets/psw-a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].ID != ids["psw"] {
		t.Errorf("query on new field = %v", objs)
	}
	// And visible in the registry.
	m, _ := s.Registry().Model("Device")
	if _, ok := m.Field("asset_url"); !ok {
		t.Error("registry does not show the new field")
	}
}

func TestAddFieldValidatorEnforced(t *testing.T) {
	s := newTestStore(t)
	ids := seedFig4(t, s)
	err := s.AddField("Device", Field{
		Name: "serial", Type: relstore.ColString, Nullable: true,
		Validate: func(v any) error {
			if !strings.HasPrefix(v.(string), "SN-") {
				return fmt.Errorf("serials start with SN-")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Mutate(func(m *Mutation) error {
		return m.Update("Device", ids["psw"], map[string]any{"serial": "bogus"})
	})
	if err == nil {
		t.Error("validator on evolved field not enforced")
	}
	if _, err := s.Mutate(func(m *Mutation) error {
		return m.Update("Device", ids["psw"], map[string]any{"serial": "SN-123"})
	}); err != nil {
		t.Errorf("valid value rejected: %v", err)
	}
}

func TestAddFieldRejections(t *testing.T) {
	s := newTestStore(t)
	seedFig4(t, s)
	cases := []struct {
		name  string
		model string
		f     Field
	}{
		{"unknown model", "Ghost", Field{Name: "x", Type: relstore.ColString, Nullable: true}},
		{"relation field", "Device", Field{Name: "rack", Kind: RelationField, Target: "Rack", Nullable: true}},
		{"non-nullable", "Device", Field{Name: "x", Type: relstore.ColString}},
		{"duplicate", "Device", Field{Name: "role", Type: relstore.ColString, Nullable: true}},
		{"reverse-name collision", "Device", Field{Name: "linecards", Type: relstore.ColString, Nullable: true}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := s.AddField(c.model, c.f); err == nil {
				t.Errorf("AddField(%s, %+v) should fail", c.model, c.f)
			}
		})
	}
}

// TestAddFieldReplicates: schema evolution rides the binlog like any
// write, so replicas (and promoted masters) converge.
func TestAddFieldReplicates(t *testing.T) {
	s := newTestStore(t)
	ids := seedFig4(t, s)
	rep := relstore.NewReplica(s.DB(), "replica")
	if err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if err := s.AddField("Device", Field{Name: "asset_url", Type: relstore.ColString, Nullable: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mutate(func(m *Mutation) error {
		return m.Update("Device", ids["psw"], map[string]any{"asset_url": "https://x"})
	}); err != nil {
		t.Fatal(err)
	}
	if err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	view := s.ReadOnlyView(rep.DB())
	obj, err := view.GetByID("Device", ids["psw"])
	if err != nil {
		t.Fatal(err)
	}
	if obj.String("asset_url") != "https://x" {
		t.Errorf("replica value = %q", obj.String("asset_url"))
	}
}

// TestComputedFields covers the §6.1 asset_url mechanic: derived on the
// fly, readable through the read API, and re-registrable as the logic
// evolves.
func TestComputedFields(t *testing.T) {
	s := newTestStore(t)
	ids := seedFig4(t, s)
	res, err := s.Get("Device", []string{"name", "asset_url"}, Eq("id", ids["psw"]))
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Fields["asset_url"]; got != "https://assets.example.com/device/psw-a.pop1" {
		t.Errorf("asset_url = %v", got)
	}
	// Computed fields participate in queries.
	objs, err := s.Find("Device", Contains("asset_url", "psw-a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 {
		t.Errorf("query on computed field matched %d", len(objs))
	}
	// Indirect access through a relation works; traversal through the
	// computed field does not.
	res, err = s.Get("Linecard", []string{"device.asset_url"}, nil)
	if err != nil || len(res) == 0 {
		t.Fatalf("indirect computed: %v", err)
	}
	if _, err := s.Get("Device", []string{"asset_url.x"}, nil); err == nil {
		t.Error("traversing a computed field should fail")
	}
	// The derivation logic changes (§6.1 "Logic Changes").
	if err := s.Registry().RegisterComputed("Device", "asset_url", func(o Object) any {
		return "https://assets-v2.example.com/" + o.String("name")
	}); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Get("Device", []string{"asset_url"}, Eq("id", ids["psw"]))
	if got := res[0].Fields["asset_url"]; got != "https://assets-v2.example.com/psw-a.pop1" {
		t.Errorf("evolved asset_url = %v", got)
	}
	// Collisions are rejected.
	if err := s.Registry().RegisterComputed("Device", "name", func(o Object) any { return "" }); err == nil {
		t.Error("collision with stored field should fail")
	}
	if err := s.Registry().RegisterComputed("Device", "linecards", func(o Object) any { return "" }); err == nil {
		t.Error("collision with reverse connection should fail")
	}
	if err := s.Registry().RegisterComputed("Ghost", "x", func(o Object) any { return "" }); err == nil {
		t.Error("unknown model should fail")
	}
}
