package service

import (
	"context"
	"fmt"
	"sync"

	"github.com/robotron-net/robotron/internal/thriftlite"
)

// ctxType aliases context.Context for the generated-style client wrappers.
type ctxType = context.Context

// Client is a region-local FBNet API client: reads go to the region's read
// service replicas (failing over to the next local replica, then to other
// regions' replicas); writes are forwarded to the master region's write
// service (§4.3.3).
type Client struct {
	region     string
	localRead  []string
	remoteRead []string
	writeAddr  string

	mu    sync.Mutex
	conns map[string]*thriftlite.Client
}

// NewClient builds a client for one region of a deployment.
func NewClient(d *Deployment, region string) *Client {
	return &Client{
		region:     region,
		localRead:  d.ReadAddrs(region),
		remoteRead: d.AllReadAddrs(region),
		writeAddr:  d.WriteAddr(),
		conns:      make(map[string]*thriftlite.Client),
	}
}

// RefreshTopology re-reads service addresses from the deployment (after a
// failover or replica replacement).
func (c *Client) RefreshTopology(d *Deployment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.localRead = d.ReadAddrs(c.region)
	c.remoteRead = d.AllReadAddrs(c.region)
	c.writeAddr = d.WriteAddr()
	for addr, conn := range c.conns {
		conn.Close()
		delete(c.conns, addr)
	}
}

func (c *Client) conn(addr string) (*thriftlite.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if conn, ok := c.conns[addr]; ok {
		return conn, nil
	}
	conn, err := thriftlite.Dial(addr)
	if err != nil {
		return nil, err
	}
	c.conns[addr] = conn
	return conn, nil
}

func (c *Client) dropConn(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if conn, ok := c.conns[addr]; ok {
		conn.Close()
		delete(c.conns, addr)
	}
}

// Result is one decoded read-API row: requested field path -> value (or
// []any for multi-valued paths).
type Result struct {
	ID     int64
	Fields map[string]any
}

// Get executes the read API against the nearest healthy replica: local
// replicas first, then other regions ("if they are also down, requests
// are rerouted to the nearest live service replicas in a neighboring data
// center").
func (c *Client) Get(ctx context.Context, model string, fields []string, q *WireQuery) ([]Result, error) {
	return c.GetLimit(ctx, model, fields, q, 0)
}

// GetLimit is Get with a server-side cap on the number of returned
// objects (0 = unlimited).
func (c *Client) GetLimit(ctx context.Context, model string, fields []string, q *WireQuery, limit int64) ([]Result, error) {
	req := &GetRequest{Model: model, Fields: fields, Query: q, Limit: limit}
	c.mu.Lock()
	candidates := append(append([]string(nil), c.localRead...), c.remoteRead...)
	c.mu.Unlock()
	var lastErr error
	for _, addr := range candidates {
		conn, err := c.conn(addr)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := thriftlite.CallTyped[GetRequest, GetResponse](ctx, conn, "fbnet.get", req)
		if err != nil {
			// Application errors (bad model/query) are authoritative;
			// transport errors trigger failover to the next replica.
			if _, isRemote := err.(*thriftlite.RemoteError); isRemote {
				return nil, err
			}
			c.dropConn(addr)
			lastErr = err
			continue
		}
		return decodeResults(resp), nil
	}
	return nil, fmt.Errorf("service: no reachable read replica: %w", lastErr)
}

func decodeResults(resp *GetResponse) []Result {
	out := make([]Result, 0, len(resp.Results))
	for _, wr := range resp.Results {
		r := Result{ID: wr.ID, Fields: make(map[string]any, len(wr.Fields))}
		for _, f := range wr.Fields {
			if f.Multi {
				vals := make([]any, len(f.Vals))
				for i, v := range f.Vals {
					vals[i] = v.value()
				}
				r.Fields[f.Path] = vals
			} else if len(f.Vals) > 0 {
				r.Fields[f.Path] = f.Vals[0].value()
			} else {
				r.Fields[f.Path] = nil
			}
		}
		out = append(out, r)
	}
	return out
}

// Write forwards a transactional write batch to the master region.
func (c *Client) Write(ctx context.Context, ops []WriteOp) (*WriteResponse, error) {
	c.mu.Lock()
	addr := c.writeAddr
	c.mu.Unlock()
	conn, err := c.conn(addr)
	if err != nil {
		return nil, fmt.Errorf("service: write service unreachable: %w", err)
	}
	resp, err := thriftlite.CallTyped[WriteRequest, WriteResponse](ctx, conn, "fbnet.write", &WriteRequest{Ops: ops})
	if err != nil {
		if _, isRemote := err.(*thriftlite.RemoteError); !isRemote {
			c.dropConn(addr)
		}
		return nil, err
	}
	return resp, nil
}

// CreateOp builds a create write op.
func CreateOp(model string, fields map[string]any) WriteOp {
	return WriteOp{Action: "create", Model: model, Fields: toWireFields(fields)}
}

// UpdateOp builds an update write op.
func UpdateOp(model string, id int64, fields map[string]any) WriteOp {
	return WriteOp{Action: "update", Model: model, ID: id, Fields: toWireFields(fields)}
}

// DeleteOp builds a delete write op.
func DeleteOp(model string, id int64) WriteOp {
	return WriteOp{Action: "delete", Model: model, ID: id}
}

func toWireFields(fields map[string]any) []WireField {
	out := make([]WireField, 0, len(fields))
	for k, v := range fields {
		out = append(out, WireField{Path: k, Vals: []WireValue{toWireValue(v)}})
	}
	return out
}

// Ping health-checks one local read replica, returning its name.
func (c *Client) Ping(ctx context.Context) (string, error) {
	c.mu.Lock()
	candidates := append(append([]string(nil), c.localRead...), c.remoteRead...)
	c.mu.Unlock()
	var lastErr error
	for _, addr := range candidates {
		conn, err := c.conn(addr)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := thriftlite.CallTyped[PingRequest, PingResponse](ctx, conn, "fbnet.ping", &PingRequest{Echo: "hi"})
		if err != nil {
			c.dropConn(addr)
			lastErr = err
			continue
		}
		return resp.Replica, nil
	}
	return "", fmt.Errorf("service: no reachable replica: %w", lastErr)
}

// Close tears down all connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for addr, conn := range c.conns {
		conn.Close()
		delete(c.conns, addr)
	}
}
