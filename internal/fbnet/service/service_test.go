package service

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/fbnet"
)

func ctx() context.Context { return context.Background() }

// newDeployment spins up a 3-region deployment with 2 read replicas per
// region and a Region object seeded through the write API.
func newDeployment(t testing.TB) (*Deployment, *Client) {
	t.Helper()
	d, err := NewDeployment(fbnet.NewCatalog(), "ash", []string{"ash", "fra", "sin"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c := NewClient(d, "fra")
	t.Cleanup(c.Close)
	return d, c
}

func seedDevices(t testing.TB, d *Deployment, c *Client) {
	t.Helper()
	resp, err := c.Write(ctx(), []WriteOp{
		CreateOp("Region", map[string]any{"name": "emea"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	regionID := resp.CreatedIDs[0]
	resp, err = c.Write(ctx(), []WriteOp{
		CreateOp("Site", map[string]any{"name": "pop1", "kind": "pop", "region": regionID}),
		CreateOp("Vendor", map[string]any{"name": "v1", "syntax": "vendor1"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	siteID, vendorID := resp.CreatedIDs[0], resp.CreatedIDs[1]
	resp, err = c.Write(ctx(), []WriteOp{
		CreateOp("HardwareProfile", map[string]any{
			"name": "hw", "vendor": vendorID, "num_slots": 2, "ports_per_linecard": 8, "port_speed_mbps": 10000}),
	})
	if err != nil {
		t.Fatal(err)
	}
	hwID := resp.CreatedIDs[0]
	var ops []WriteOp
	for _, name := range []string{"psw1.pop1", "psw2.pop1", "pr1.pop1"} {
		role := "psw"
		if strings.HasPrefix(name, "pr") {
			role = "pr"
		}
		ops = append(ops, CreateOp("Device", map[string]any{
			"name": name, "role": role, "site": siteID, "hw_profile": hwID, "drain_state": "undrained"}))
	}
	if _, err := c.Write(ctx(), ops); err != nil {
		t.Fatal(err)
	}
	if err := d.Replicate(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAndReadThroughRPC(t *testing.T) {
	d, c := newDeployment(t)
	seedDevices(t, d, c)
	res, err := c.Get(ctx(), "Device", []string{"name", "role", "site.name"}, Eq("role", "psw"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	for _, r := range res {
		if r.Fields["role"] != "psw" || r.Fields["site.name"] != "pop1" {
			t.Errorf("row = %+v", r.Fields)
		}
	}
}

func TestQueryOperatorsOverWire(t *testing.T) {
	d, c := newDeployment(t)
	seedDevices(t, d, c)
	cases := []struct {
		q    *WireQuery
		want int
	}{
		{Eq("role", "pr"), 1},
		{Ne("role", "pr"), 2},
		{In("role", "pr", "psw"), 3},
		{Regexp("name", `^psw\d`), 2},
		{Contains("name", "pop1"), 3},
		{And(Eq("role", "psw"), Contains("name", "psw1")), 1},
		{Or(Eq("role", "pr"), Eq("name", "psw1.pop1")), 2},
		{Not(Eq("role", "psw")), 1},
		{All(), 3},
		{nil, 3},
		{IsNull("cluster"), 3},
		{Gt("id", 0), 3},
	}
	for i, tc := range cases {
		res, err := c.Get(ctx(), "Device", []string{"name"}, tc.q)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(res) != tc.want {
			t.Errorf("case %d: results = %d, want %d", i, len(res), tc.want)
		}
	}
}

func TestReverseConnectionOverWire(t *testing.T) {
	d, c := newDeployment(t)
	seedDevices(t, d, c)
	// Add linecards to one device through the write API.
	res, err := c.Get(ctx(), "Device", []string{"name"}, Eq("name", "psw1.pop1"))
	if err != nil || len(res) != 1 {
		t.Fatal(err)
	}
	devID := res[0].ID
	if _, err := c.Write(ctx(), []WriteOp{
		CreateOp("Linecard", map[string]any{"slot": 1, "device": devID}),
		CreateOp("Linecard", map[string]any{"slot": 2, "device": devID}),
	}); err != nil {
		t.Fatal(err)
	}
	d.Replicate()
	res, err = c.Get(ctx(), "Device", []string{"name", "linecards"}, Eq("id", devID))
	if err != nil {
		t.Fatal(err)
	}
	lcs, ok := res[0].Fields["linecards"].([]any)
	if !ok || len(lcs) != 2 {
		t.Errorf("linecards = %#v", res[0].Fields["linecards"])
	}
}

func TestWriteBatchIsTransactional(t *testing.T) {
	d, c := newDeployment(t)
	seedDevices(t, d, c)
	// Second op violates a validator: the whole batch must roll back.
	_, err := c.Write(ctx(), []WriteOp{
		CreateOp("Region", map[string]any{"name": "apac"}),
		CreateOp("Region", map[string]any{"name": ""}), // invalid
	})
	if err == nil {
		t.Fatal("invalid batch should fail")
	}
	d.Replicate()
	res, err := c.Get(ctx(), "Region", []string{"name"}, Eq("name", "apac"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Error("partial batch visible after failed write")
	}
}

func TestReadAfterWriteFromMasterRegion(t *testing.T) {
	d, _ := newDeployment(t)
	// A client in the master region reads its own writes without waiting
	// for replication.
	mc := NewClient(d, "ash")
	defer mc.Close()
	if _, err := mc.Write(ctx(), []WriteOp{CreateOp("Region", map[string]any{"name": "raw"})}); err != nil {
		t.Fatal(err)
	}
	res, err := mc.Get(ctx(), "Region", []string{"name"}, Eq("name", "raw"))
	if err != nil || len(res) != 1 {
		t.Errorf("read-after-write in master region: %v, %d rows", err, len(res))
	}
}

func TestReplicationLagVisible(t *testing.T) {
	d, c := newDeployment(t)
	if _, err := c.Write(ctx(), []WriteOp{CreateOp("Region", map[string]any{"name": "lagged"})}); err != nil {
		t.Fatal(err)
	}
	// Before replication, the fra replica hasn't seen the row.
	res, err := c.Get(ctx(), "Region", []string{"name"}, Eq("name", "lagged"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Skip("replica unexpectedly caught up (auto replication)")
	}
	lag := d.Lag()
	if lag["fra"] == 0 {
		t.Error("lag should be nonzero before Replicate")
	}
	d.Replicate()
	res, err = c.Get(ctx(), "Region", []string{"name"}, Eq("name", "lagged"))
	if err != nil || len(res) != 1 {
		t.Errorf("after replication: %v, %d rows", err, len(res))
	}
}

func TestReadReplicaFailover(t *testing.T) {
	d, c := newDeployment(t)
	seedDevices(t, d, c)
	// Kill the first local read replica: reads fail over to the second.
	if err := d.FailReadReplica("fra", 0); err != nil {
		t.Fatal(err)
	}
	replica, err := c.Ping(ctx())
	if err != nil {
		t.Fatal(err)
	}
	if replica != "read.fra.1" {
		t.Errorf("served by %s, want read.fra.1", replica)
	}
	// Kill the second too: reads reroute to a neighboring region.
	if err := d.FailReadReplica("fra", 1); err != nil {
		t.Fatal(err)
	}
	replica, err = c.Ping(ctx())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(replica, "fra") {
		t.Errorf("served by %s, want a non-fra replica", replica)
	}
	res, err := c.Get(ctx(), "Device", []string{"name"}, All())
	if err != nil || len(res) != 3 {
		t.Errorf("cross-region read: %v, %d rows", err, len(res))
	}
}

func TestMasterFailoverPromotesReplica(t *testing.T) {
	d, c := newDeployment(t)
	seedDevices(t, d, c)
	if err := d.FailMasterAndPromote("fra"); err != nil {
		t.Fatal(err)
	}
	if d.MasterRegion() != "fra" {
		t.Errorf("master region = %s", d.MasterRegion())
	}
	c.RefreshTopology(d)
	// Data survives the failover.
	res, err := c.Get(ctx(), "Device", []string{"name"}, All())
	if err != nil || len(res) != 3 {
		t.Fatalf("post-failover read: %v, %d rows", err, len(res))
	}
	// Writes continue against the new master.
	if _, err := c.Write(ctx(), []WriteOp{CreateOp("Region", map[string]any{"name": "post-failover"})}); err != nil {
		t.Fatal(err)
	}
	if err := d.Replicate(); err != nil {
		t.Fatal(err)
	}
	// Another region sees the new write after replication from the new
	// master.
	sc := NewClient(d, "sin")
	defer sc.Close()
	res, err = sc.Get(ctx(), "Region", []string{"name"}, Eq("name", "post-failover"))
	if err != nil || len(res) != 1 {
		t.Errorf("replica of new master: %v, %d rows", err, len(res))
	}
	if err := d.FailMasterAndPromote("fra"); err == nil {
		t.Error("promoting the current master should fail")
	}
}

func TestBadQueriesReturnRemoteErrors(t *testing.T) {
	d, c := newDeployment(t)
	seedDevices(t, d, c)
	if _, err := c.Get(ctx(), "NoSuchModel", []string{"x"}, All()); err == nil {
		t.Error("unknown model should fail")
	}
	if _, err := c.Get(ctx(), "Device", []string{"bogus"}, All()); err == nil {
		t.Error("unknown field should fail")
	}
	if _, err := c.Get(ctx(), "Device", []string{"name"}, &WireQuery{Op: "frobnicate"}); err == nil {
		t.Error("unknown op should fail")
	}
	if _, err := c.Write(ctx(), []WriteOp{{Action: "explode", Model: "Device"}}); err == nil {
		t.Error("unknown write action should fail")
	}
}

func TestAutoReplicationBackground(t *testing.T) {
	d, c := newDeployment(t)
	d.StartReplication(5 * time.Millisecond)
	if _, err := c.Write(ctx(), []WriteOp{CreateOp("Region", map[string]any{"name": "auto"})}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		res, err := c.Get(ctx(), "Region", []string{"name"}, Eq("name", "auto"))
		if err == nil && len(res) == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("background replication did not converge")
}

func BenchmarkRPCGet(b *testing.B) {
	d, c := newDeployment(b)
	seedDevices(b, d, c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Get(ctx(), "Device", []string{"name", "role"}, Eq("role", "psw"))
		if err != nil || len(res) != 2 {
			b.Fatalf("%v %d", err, len(res))
		}
	}
}

func TestGetLimit(t *testing.T) {
	d, c := newDeployment(t)
	seedDevices(t, d, c)
	res, err := c.GetLimit(ctx(), "Device", []string{"name"}, All(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Errorf("limited results = %d, want 2", len(res))
	}
	// Limit larger than the result set is harmless; 0 means unlimited.
	res, _ = c.GetLimit(ctx(), "Device", []string{"name"}, All(), 100)
	if len(res) != 3 {
		t.Errorf("over-limit results = %d, want 3", len(res))
	}
	res, _ = c.GetLimit(ctx(), "Device", []string{"name"}, All(), 0)
	if len(res) != 3 {
		t.Errorf("unlimited results = %d, want 3", len(res))
	}
}
