package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/relstore"
	"github.com/robotron-net/robotron/internal/telemetry"
)

// Deployment wires the §4.3.3 topology: "We employ standard MySQL
// replication using one master and multiple slaves, one per DC. ... Each
// database server is fronted with multiple write and read API service
// replicas deployed locally. While writes must be forwarded to the write
// API service in the master database region, client read requests can be
// serviced locally."
type Deployment struct {
	mu           sync.Mutex
	registry     *fbnet.Registry
	masterRegion string
	masterStore  *fbnet.Store
	writeSrv     *Server
	regions      map[string]*regionState
	replicasPer  int

	// degraded is true between a master failure and the promotion that
	// restores writes: reads keep serving stale-but-consistent data from
	// replicas while every write errors cleanly.
	degraded bool
	// reg re-instruments rebuilt stores/replicas after a promotion.
	reg *telemetry.Registry
	// promotions counts replica promotions (telemetry; nil-safe).
	promotions *telemetry.Counter

	watchStop chan struct{}
	watchWG   sync.WaitGroup
	watching  bool
}

type regionState struct {
	name     string
	replica  *relstore.Replica // nil in the master region
	store    *fbnet.Store
	readSrvs []*Server
}

// NewDeployment builds a deployment: the master database lives in
// masterRegion; every listed region gets a local database (replica for
// non-master regions) fronted by readReplicas read service replicas. The
// master region also runs the write service.
func NewDeployment(registry *fbnet.Registry, masterRegion string, regions []string, readReplicas int) (*Deployment, error) {
	if readReplicas <= 0 {
		readReplicas = 1
	}
	masterDB := relstore.NewDB("db." + masterRegion)
	masterStore, err := fbnet.Open(masterDB, registry)
	if err != nil {
		return nil, err
	}
	d := &Deployment{
		registry:     registry,
		masterRegion: masterRegion,
		masterStore:  masterStore,
		regions:      make(map[string]*regionState),
		replicasPer:  readReplicas,
	}
	seen := map[string]bool{}
	for _, r := range regions {
		if seen[r] {
			return nil, fmt.Errorf("service: duplicate region %q", r)
		}
		seen[r] = true
	}
	if !seen[masterRegion] {
		return nil, fmt.Errorf("service: master region %q not in region list", masterRegion)
	}
	for _, name := range regions {
		rs := &regionState{name: name}
		if name == masterRegion {
			rs.store = masterStore
		} else {
			rs.replica = relstore.NewReplica(masterDB, "db."+name)
			// Bootstrap the schema immediately; data replicates on the
			// asynchronous stream.
			if err := rs.replica.CatchUp(); err != nil {
				d.Close()
				return nil, err
			}
			rs.store = masterStore.ReadOnlyView(rs.replica.DB())
		}
		for i := 0; i < readReplicas; i++ {
			srv, err := NewReadServer(fmt.Sprintf("read.%s.%d", name, i), "127.0.0.1:0", rs.store)
			if err != nil {
				d.Close()
				return nil, err
			}
			rs.readSrvs = append(rs.readSrvs, srv)
		}
		d.regions[name] = rs
	}
	d.writeSrv, err = NewWriteServer("write."+masterRegion, "127.0.0.1:0", masterStore)
	if err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

// Instrument registers the deployment's observability surface on reg:
// the master store's planner and transaction metrics, per non-master
// region the replica's replication-lag gauge and health check, a
// degraded-mode gauge (1 while writes are unavailable) and a promotions
// counter. The registry is retained: stores and replicas rebuilt by a
// later promotion re-instrument themselves automatically.
func (d *Deployment) Instrument(reg *telemetry.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reg = reg
	reg.Help("robotron_service_degraded", "1 while the store deployment is read-only (master dead, not yet promoted)")
	reg.GaugeFunc("robotron_service_degraded", func() float64 {
		if d.Degraded() {
			return 1
		}
		return 0
	})
	reg.Help("robotron_service_promotions_total", "replica-to-master promotions performed")
	d.promotions = reg.Counter("robotron_service_promotions_total")
	d.masterStore.Instrument(reg)
	for _, rs := range d.regions {
		if rs.replica != nil {
			rs.replica.Instrument(reg)
		}
	}
}

// Degraded reports whether the deployment is in read-only degraded mode.
func (d *Deployment) Degraded() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.degraded
}

// MasterStore returns the store over the master database (in-process
// access for the management tools colocated with the master).
func (d *Deployment) MasterStore() *fbnet.Store {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.masterStore
}

// MasterRegion returns the current master region name.
func (d *Deployment) MasterRegion() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.masterRegion
}

// WriteAddr returns the write service address.
func (d *Deployment) WriteAddr() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writeSrv.Addr()
}

// ReadAddrs returns the read service addresses of a region.
func (d *Deployment) ReadAddrs(region string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	rs, ok := d.regions[region]
	if !ok {
		return nil
	}
	out := make([]string, len(rs.readSrvs))
	for i, s := range rs.readSrvs {
		out[i] = s.Addr()
	}
	return out
}

// AllReadAddrs returns read addresses of every region except skip, for
// cross-region fallback.
func (d *Deployment) AllReadAddrs(skip string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var names []string
	for n := range d.regions {
		if n != skip {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var out []string
	for _, n := range names {
		for _, s := range d.regions[n].readSrvs {
			out = append(out, s.Addr())
		}
	}
	return out
}

// Replicate catches every region's replica up with the master (the
// asynchronous replication stream, "typical lag of under one second").
func (d *Deployment) Replicate() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, rs := range d.regions {
		if rs.replica == nil {
			continue
		}
		if !rs.replica.DB().Healthy() {
			continue // a down replica catches up after recovery
		}
		if err := rs.replica.CatchUp(); err != nil {
			if errors.Is(err, relstore.ErrMasterDown) {
				continue // degraded mode: replicas serve what they have
			}
			return err
		}
	}
	return nil
}

// StartReplication begins background replication at the given interval.
func (d *Deployment) StartReplication(interval time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, rs := range d.regions {
		if rs.replica != nil {
			rs.replica.StartAuto(interval)
		}
	}
}

// Lag returns each non-master region's replication lag in binlog entries.
func (d *Deployment) Lag() map[string]uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := map[string]uint64{}
	for name, rs := range d.regions {
		if rs.replica != nil {
			out[name] = rs.replica.Lag()
		}
	}
	return out
}

// KillMaster simulates a master database failure and enters degraded
// read-only mode: every region's read replicas keep serving the last
// replicated (transaction-consistent) state, while writes keep hitting
// the write service and error cleanly because the backing database is
// down. The mode ends when a replica is promoted.
func (d *Deployment) KillMaster() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.killMasterLocked()
}

func (d *Deployment) killMasterLocked() {
	if d.degraded {
		return
	}
	d.regions[d.masterRegion].store.DB().SetDown(true)
	d.degraded = true
}

// PromoteBest promotes the most caught-up healthy replica (the paper
// promotes "the slave in the nearest data center"; with equal distances
// in simulation, least data loss wins). Returns the promoted region.
func (d *Deployment) PromoteBest() (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.promoteBestLocked(); err != nil {
		return "", err
	}
	return d.masterRegion, nil
}

func (d *Deployment) promoteBestLocked() error {
	best := ""
	var bestApplied uint64
	var names []string
	for name := range d.regions {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic tie-break
	for _, name := range names {
		rs := d.regions[name]
		if rs.replica == nil || !rs.replica.DB().Healthy() {
			continue
		}
		if a := rs.replica.Applied(); best == "" || a > bestApplied {
			best, bestApplied = name, a
		}
	}
	if best == "" {
		return fmt.Errorf("service: no healthy replica to promote")
	}
	return d.promoteLocked(best)
}

// Promote promotes the replica in newMasterRegion to master, restoring
// write availability and ending degraded mode.
func (d *Deployment) Promote(newMasterRegion string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.promoteLocked(newMasterRegion)
}

// FailMasterAndPromote simulates a master database failure and promotes
// the replica in newMasterRegion ("when the master goes down, the slave in
// the nearest data center is promoted to master"). A new write service is
// started in the promoted region; remaining regions re-replicate from the
// new master.
func (d *Deployment) FailMasterAndPromote(newMasterRegion string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.regions[newMasterRegion]; !ok {
		return fmt.Errorf("service: unknown region %q", newMasterRegion)
	}
	d.killMasterLocked()
	return d.promoteLocked(newMasterRegion)
}

func (d *Deployment) promoteLocked(newMasterRegion string) error {
	target, ok := d.regions[newMasterRegion]
	if !ok {
		return fmt.Errorf("service: unknown region %q", newMasterRegion)
	}
	if target.replica == nil {
		return fmt.Errorf("service: %s is already the master region", newMasterRegion)
	}
	// The dead master's write service goes with it.
	d.writeSrv.Close()

	newMasterDB := target.replica.Promote()
	newStore, err := fbnet.Open(newMasterDB, d.registry)
	if err != nil {
		return err
	}
	target.replica = nil
	target.store = newStore
	// Re-front the promoted region's read service replicas on the same
	// store object (they already share the underlying DB; rebuild to drop
	// the stale view).
	for i, srv := range target.readSrvs {
		srv.Close()
		ns, err := NewReadServer(fmt.Sprintf("read.%s.%d", newMasterRegion, i), "127.0.0.1:0", newStore)
		if err != nil {
			return err
		}
		target.readSrvs[i] = ns
	}
	// Remaining healthy regions replicate from the new master.
	for name, rs := range d.regions {
		if name == newMasterRegion || name == d.masterRegion {
			continue
		}
		if rs.replica != nil {
			applied := rs.replica.Applied()
			rs.replica.StopAuto()
			fresh := relstore.NewReplica(newMasterDB, "db."+name)
			// Fast-forward: reuse is non-trivial with divergent binlogs, so
			// rebuild from the new master's binlog (it contains history
			// from seq 1, inherited through replication).
			_ = applied
			rs.replica = fresh
			rs.store = newStore.ReadOnlyView(fresh.DB())
			for i, srv := range rs.readSrvs {
				srv.Close()
				ns, err := NewReadServer(fmt.Sprintf("read.%s.%d", name, i), "127.0.0.1:0", rs.store)
				if err != nil {
					return err
				}
				rs.readSrvs[i] = ns
			}
		}
	}
	d.writeSrv, err = NewWriteServer("write."+newMasterRegion, "127.0.0.1:0", newStore)
	if err != nil {
		return err
	}
	d.masterRegion = newMasterRegion
	d.masterStore = newStore
	d.degraded = false
	d.promotions.Inc()
	if d.reg != nil {
		// Rebuilt store and replicas pick up the existing registry so
		// lag gauges and health checks stay live after failover.
		d.masterStore.Instrument(d.reg)
		for _, rs := range d.regions {
			if rs.replica != nil {
				rs.replica.Instrument(d.reg)
			}
		}
	}
	return nil
}

// StartFailoverWatch begins automatic master-failure detection: every
// interval the master database's health is probed and, when it is found
// dead, the deployment enters degraded mode and promotes the most
// caught-up healthy replica. Detection-to-promotion is observable via
// the robotron_service_degraded gauge.
func (d *Deployment) StartFailoverWatch(interval time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.watching {
		return
	}
	d.watching = true
	d.watchStop = make(chan struct{})
	d.watchWG.Add(1)
	go func() {
		defer d.watchWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-d.watchStop:
				return
			case <-t.C:
				d.mu.Lock()
				if !d.regions[d.masterRegion].store.DB().Healthy() {
					d.killMasterLocked()
					// Best-effort: with no promotable replica the
					// deployment stays degraded and retries next tick.
					_ = d.promoteBestLocked()
				}
				d.mu.Unlock()
			}
		}
	}()
}

// StopFailoverWatch halts automatic failure detection.
func (d *Deployment) StopFailoverWatch() {
	d.mu.Lock()
	if !d.watching {
		d.mu.Unlock()
		return
	}
	d.watching = false
	close(d.watchStop)
	d.mu.Unlock()
	d.watchWG.Wait()
}

// FailReadReplica shuts one read service replica in a region down,
// simulating a process crash (clients fail over to the remaining local
// replicas, §4.3.3).
func (d *Deployment) FailReadReplica(region string, idx int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	rs, ok := d.regions[region]
	if !ok || idx < 0 || idx >= len(rs.readSrvs) {
		return fmt.Errorf("service: no read replica %d in region %q", idx, region)
	}
	rs.readSrvs[idx].Close()
	return nil
}

// Close shuts the whole deployment down.
func (d *Deployment) Close() {
	d.StopFailoverWatch()
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, rs := range d.regions {
		if rs.replica != nil {
			rs.replica.StopAuto()
		}
		for _, s := range rs.readSrvs {
			s.Close()
		}
	}
	if d.writeSrv != nil {
		d.writeSrv.Close()
	}
}
