package service

import (
	"strings"
	"testing"

	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
)

func meta(domain string) ChangeMeta {
	return ChangeMeta{
		EmployeeID: "e-rpc", TicketID: "T-rpc",
		Description: "rpc design change", Domain: domain, NowUnix: 1_750_000_000,
	}
}

func newDesignDeployment(t *testing.T) (*Deployment, *Client) {
	t.Helper()
	d, c := newDeployment(t)
	if _, err := d.EnableDesignAPI(design.DefaultPools()); err != nil {
		t.Fatal(err)
	}
	return d, c
}

func TestDesignAPIBuildClusterOverRPC(t *testing.T) {
	d, c := newDesignDeployment(t)
	reply, err := c.BuildCluster(ctx(), &BuildClusterRequest{
		Meta: meta("pop"), Site: "pop1", Cluster: "pop1-c1", Template: "pop-gen1",
	})
	if err != nil {
		t.Fatal(err)
	}
	// The §5.1.1 count, through the RPC boundary: 94 Fig. 7 objects plus
	// bookkeeping (cluster, link groups, linecards).
	if reply.NumCreated < 94 {
		t.Errorf("created = %d, want >= 94", reply.NumCreated)
	}
	// The design landed on the master and replicates to readers.
	if err := d.Replicate(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Get(ctx(), "Device", []string{"name", "role"}, Eq("role", "psw"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Errorf("PSWs visible via read API = %d, want 4", len(res))
	}
	// Attribution is recorded.
	res, err = c.Get(ctx(), "DesignChange", []string{"employee_id", "ticket_id"}, Eq("id", reply.ChangeID))
	if err != nil || len(res) != 1 {
		t.Fatalf("change record: %v %d", err, len(res))
	}
	if res[0].Fields["employee_id"] != "e-rpc" {
		t.Errorf("attribution = %+v", res[0].Fields)
	}
}

func TestDesignAPIBackboneFlowOverRPC(t *testing.T) {
	d, c := newDesignDeployment(t)
	for _, n := range []string{"bb1", "bb2", "bb3"} {
		if _, err := c.AddRouter(ctx(), &AddRouterRequest{
			Meta: meta("backbone"), Name: n, Site: "bb-hub", HwProfile: "Backbone_Vendor2", Role: "bb",
		}); err != nil {
			t.Fatal(err)
		}
	}
	reply, err := c.AddCircuit(ctx(), &AddCircuitRequest{
		Meta: meta("backbone"), A: "bb1", Z: "bb2", Circuits: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.NumCreated == 0 {
		t.Error("circuit add created nothing")
	}
	d.Replicate()
	res, err := c.Get(ctx(), "Circuit", []string{"circuit_id"}, All())
	if err != nil || len(res) != 1 {
		t.Fatalf("circuits = %d, %v", len(res), err)
	}
	circuitID, _ := res[0].Fields["circuit_id"].(string)
	mig, err := c.MigrateCircuit(ctx(), &MigrateCircuitRequest{
		Meta: meta("backbone"), CircuitID: circuitID, NewZ: "bb3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if mig.NumDeleted == 0 || mig.NumCreated == 0 {
		t.Errorf("migration reply = %+v", mig)
	}
	d.Replicate()
	res, _ = c.Get(ctx(), "Circuit", []string{"circuit_id"}, All())
	if got, _ := res[0].Fields["circuit_id"].(string); !strings.Contains(got, "bb3") {
		t.Errorf("post-migration circuit id = %q", got)
	}
	// The design on the master is rule-clean.
	violations, err := design.ValidateDesign(d.MasterStore())
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("violations: %v", violations)
	}
}

func TestDesignAPIValidationOverRPC(t *testing.T) {
	_, c := newDesignDeployment(t)
	// Missing attribution is refused server-side.
	if _, err := c.BuildCluster(ctx(), &BuildClusterRequest{
		Site: "pop1", Cluster: "c1", Template: "pop-gen1",
	}); err == nil {
		t.Error("missing attribution should fail")
	}
	if _, err := c.BuildCluster(ctx(), &BuildClusterRequest{
		Meta: meta("pop"), Site: "pop1", Cluster: "c1", Template: "no-such-template",
	}); err == nil {
		t.Error("unknown template should fail")
	}
	if _, err := c.AddCircuit(ctx(), &AddCircuitRequest{
		Meta: meta("backbone"), A: "ghost1", Z: "ghost2", Circuits: 1,
	}); err == nil {
		t.Error("unknown devices should fail")
	}
	// Failed changes leave nothing behind.
	_, c2 := struct{}{}, c
	res, err := c2.Get(ctx(), "Cluster", []string{"name"}, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("clusters after failed changes = %d", len(res))
	}
}

// TestDesignAPISerializesWriters: concurrent RPC design changes from
// different clients serialize on the master (§8's multiple-writers
// discussion).
func TestDesignAPISerializesWriters(t *testing.T) {
	d, _ := newDesignDeployment(t)
	clients := make([]*Client, 3)
	for i := range clients {
		clients[i] = NewClient(d, []string{"ash", "fra", "sin"}[i])
		defer clients[i].Close()
	}
	errs := make(chan error, len(clients))
	for i, c := range clients {
		go func(i int, c *Client) {
			_, err := c.BuildCluster(ctx(), &BuildClusterRequest{
				Meta: meta("pop"), Site: "pop1",
				Cluster: []string{"c-a", "c-b", "c-c"}[i], Template: "pop-gen1",
			})
			errs <- err
		}(i, c)
	}
	for range clients {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	store := d.MasterStore()
	if n, _ := store.Count("Cluster"); n != 3 {
		t.Errorf("clusters = %d", n)
	}
	violations, _ := design.ValidateDesign(store)
	if len(violations) != 0 {
		t.Errorf("violations: %v", violations)
	}
	// Unique prefixes survived concurrent allocation.
	prefixes, _ := store.Find("V6Prefix", fbnet.All())
	seen := map[string]bool{}
	for _, p := range prefixes {
		if seen[p.String("prefix")] {
			t.Fatalf("duplicate prefix %s across concurrent RPC changes", p.String("prefix"))
		}
		seen[p.String("prefix")] = true
	}
}
