package service

import (
	"strings"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/telemetry"
)

// renderMetrics scrapes the registry into the Prometheus text format.
func renderMetrics(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func metricLine(body, name string) string {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
			return line
		}
	}
	return ""
}

// TestMasterDeathDegradedReadsThenPromotion is the acceptance path: the
// master dies mid-run, reads keep serving replicated state while the
// degraded gauge goes to 1 and writes fail cleanly; promotion restores
// writes and clears the gauge.
func TestMasterDeathDegradedReadsThenPromotion(t *testing.T) {
	d, c := newDeployment(t)
	reg := telemetry.NewRegistry()
	d.Instrument(reg)
	seedDevices(t, d, c)

	d.KillMaster()
	if !d.Degraded() {
		t.Fatal("deployment should be degraded after master death")
	}
	if line := metricLine(renderMetrics(t, reg), "robotron_service_degraded"); !strings.HasSuffix(line, " 1") {
		t.Errorf("degraded gauge line = %q, want value 1", line)
	}

	// Reads keep serving the last replicated (transaction-consistent)
	// state from the local replica.
	res, err := c.Get(ctx(), "Device", []string{"name"}, All())
	if err != nil || len(res) != 3 {
		t.Fatalf("degraded read: %v, %d rows (want 3)", err, len(res))
	}
	// Writes fail cleanly rather than hanging or corrupting.
	if _, err := c.Write(ctx(), []WriteOp{CreateOp("Region", map[string]any{"name": "doomed"})}); err == nil {
		t.Fatal("write against a dead master should error")
	}

	promoted, err := d.PromoteBest()
	if err != nil {
		t.Fatal(err)
	}
	if promoted == "ash" {
		t.Fatalf("promoted %q, want a replica region", promoted)
	}
	if d.Degraded() {
		t.Error("promotion should end degraded mode")
	}
	body := renderMetrics(t, reg)
	if line := metricLine(body, "robotron_service_degraded"); !strings.HasSuffix(line, " 0") {
		t.Errorf("degraded gauge line = %q, want value 0 after promotion", line)
	}
	if line := metricLine(body, "robotron_service_promotions_total"); !strings.HasSuffix(line, " 1") {
		t.Errorf("promotions counter line = %q, want value 1", line)
	}

	// Writes resume against the new master and replicate out.
	c.RefreshTopology(d)
	if _, err := c.Write(ctx(), []WriteOp{CreateOp("Region", map[string]any{"name": "revived"})}); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	if err := d.Replicate(); err != nil {
		t.Fatal(err)
	}
	res, err = c.Get(ctx(), "Region", []string{"name"}, Eq("name", "revived"))
	if err != nil || len(res) != 1 {
		t.Errorf("post-promotion replicated read: %v, %d rows", err, len(res))
	}
}

// TestFailoverWatchAutoPromotes kills the master database out from under
// the deployment (no explicit KillMaster call) and expects the watcher to
// detect the death, enter degraded mode, and promote a replica on its own.
func TestFailoverWatchAutoPromotes(t *testing.T) {
	d, c := newDeployment(t)
	reg := telemetry.NewRegistry()
	d.Instrument(reg)
	seedDevices(t, d, c)

	d.StartFailoverWatch(5 * time.Millisecond)
	defer d.StopFailoverWatch()

	// The database dies; nobody tells the deployment.
	d.MasterStore().DB().SetDown(true)

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if d.MasterRegion() != "ash" && !d.Degraded() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if d.MasterRegion() == "ash" || d.Degraded() {
		t.Fatalf("watcher did not fail over: master=%s degraded=%v", d.MasterRegion(), d.Degraded())
	}
	if got := reg.Counter("robotron_service_promotions_total").Value(); got != 1 {
		t.Errorf("promotions = %d, want 1", got)
	}

	c.RefreshTopology(d)
	if _, err := c.Write(ctx(), []WriteOp{CreateOp("Region", map[string]any{"name": "auto-promoted"})}); err != nil {
		t.Fatalf("write after auto-promotion: %v", err)
	}
	res, err := c.Get(ctx(), "Device", []string{"name"}, All())
	if err != nil || len(res) != 3 {
		t.Errorf("read after auto-promotion: %v, %d rows", err, len(res))
	}
}
