package service

import (
	"fmt"
	"sync"

	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/thriftlite"
)

// The high-level write APIs (§4.2.2): "FBNet's write APIs provide
// high-level operations that add, update, or delete multiple objects to
// ensure data integrity ... one of the write APIs is designed for portmap
// manipulation." These RPCs run the design tools server-side, colocated
// with the master database, so every operation is one validated
// transaction regardless of which region the caller sits in.

// ChangeMeta carries the §5.1.3 attribution every design change requires.
type ChangeMeta struct {
	EmployeeID  string `thrift:"1"`
	TicketID    string `thrift:"2"`
	Description string `thrift:"3"`
	Domain      string `thrift:"4"`
	NowUnix     int64  `thrift:"5"`
}

func (m ChangeMeta) ctx() design.ChangeContext {
	return design.ChangeContext{
		EmployeeID: m.EmployeeID, TicketID: m.TicketID,
		Description: m.Description, Domain: m.Domain, NowUnix: m.NowUnix,
	}
}

// ChangeReply reports a committed design change.
type ChangeReply struct {
	ChangeID    int64 `thrift:"1"`
	NumCreated  int64 `thrift:"2"`
	NumModified int64 `thrift:"3"`
	NumDeleted  int64 `thrift:"4"`
}

func toReply(cr design.ChangeResult) *ChangeReply {
	return &ChangeReply{
		ChangeID:    cr.ChangeID,
		NumCreated:  int64(len(cr.Stats.Created)),
		NumModified: int64(len(cr.Stats.Modified)),
		NumDeleted:  int64(len(cr.Stats.Deleted)),
	}
}

// BuildClusterRequest materializes a named standard template.
type BuildClusterRequest struct {
	Meta     ChangeMeta `thrift:"1"`
	Site     string     `thrift:"2"`
	Cluster  string     `thrift:"3"`
	Template string     `thrift:"4"` // pop-gen1, pop-gen2, dc-gen1, dc-gen2, dc-gen3
	Racks    int64      `thrift:"5"` // for DC templates
}

// AddCircuitRequest provisions (or grows) a bundle between two devices.
type AddCircuitRequest struct {
	Meta     ChangeMeta `thrift:"1"`
	A        string     `thrift:"2"`
	Z        string     `thrift:"3"`
	Circuits int64      `thrift:"4"`
}

// AddRouterRequest joins a router to the backbone mesh.
type AddRouterRequest struct {
	Meta      ChangeMeta `thrift:"1"`
	Name      string     `thrift:"2"`
	Site      string     `thrift:"3"`
	HwProfile string     `thrift:"4"`
	Role      string     `thrift:"5"`
}

// MigrateCircuitRequest moves a circuit's Z end to a new router.
type MigrateCircuitRequest struct {
	Meta      ChangeMeta `thrift:"1"`
	CircuitID string     `thrift:"2"`
	NewZ      string     `thrift:"3"`
}

// DesignAPI hosts the design tools behind the write service.
type DesignAPI struct {
	mu       sync.Mutex
	designer *design.Designer
}

// EnableDesignAPI creates a server-side designer over the master store
// (with its own address pools seeded from existing FBNet state) and
// registers the design RPCs on the write service. Call once per
// deployment; re-enable after a master failover.
func (d *Deployment) EnableDesignAPI(pools design.Pools) (*DesignAPI, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	designer, err := design.NewDesigner(d.masterStore, pools)
	if err != nil {
		return nil, err
	}
	if err := designer.EnsureStandardHardware(); err != nil {
		return nil, err
	}
	api := &DesignAPI{designer: designer}
	api.register(d.writeSrv.rpc)
	return api, nil
}

func (api *DesignAPI) register(srv *thriftlite.Server) {
	thriftlite.RegisterTyped(srv, "design.build_cluster", api.handleBuildCluster)
	thriftlite.RegisterTyped(srv, "design.add_circuit", api.handleAddCircuit)
	thriftlite.RegisterTyped(srv, "design.add_router", api.handleAddRouter)
	thriftlite.RegisterTyped(srv, "design.migrate_circuit", api.handleMigrateCircuit)
}

func (api *DesignAPI) handleBuildCluster(req *BuildClusterRequest) (*ChangeReply, error) {
	api.mu.Lock()
	defer api.mu.Unlock()
	tpl, err := templateByName(req.Template, int(req.Racks))
	if err != nil {
		return nil, err
	}
	// Sites are part of the design; ensure idempotently from the template
	// kind so remote callers don't need a separate bootstrap API.
	kind := "dc"
	if tpl.Racks == 0 {
		kind = "pop"
	}
	if _, err := api.designer.EnsureSite(req.Site, kind, "global"); err != nil {
		return nil, err
	}
	res, err := api.designer.BuildCluster(req.Meta.ctx(), req.Site, req.Cluster, tpl)
	if err != nil {
		return nil, err
	}
	return toReply(res.ChangeResult), nil
}

func templateByName(name string, racks int) (design.TopologyTemplate, error) {
	if racks <= 0 {
		racks = 4
	}
	switch name {
	case "pop-gen1":
		return design.POPGen1(), nil
	case "pop-gen2":
		return design.POPGen2(), nil
	case "dc-gen1":
		return design.DCGen1(racks), nil
	case "dc-gen2":
		return design.DCGen2(racks), nil
	case "dc-gen3":
		return design.DCGen3(racks), nil
	}
	return design.TopologyTemplate{}, fmt.Errorf("service: unknown topology template %q", name)
}

func (api *DesignAPI) handleAddCircuit(req *AddCircuitRequest) (*ChangeReply, error) {
	api.mu.Lock()
	defer api.mu.Unlock()
	res, err := api.designer.AddBackboneCircuit(req.Meta.ctx(), req.A, req.Z, int(req.Circuits))
	if err != nil {
		return nil, err
	}
	return toReply(res), nil
}

func (api *DesignAPI) handleAddRouter(req *AddRouterRequest) (*ChangeReply, error) {
	api.mu.Lock()
	defer api.mu.Unlock()
	if _, err := api.designer.EnsureSite(req.Site, "backbone", "global"); err != nil {
		return nil, err
	}
	res, err := api.designer.AddBackboneRouter(req.Meta.ctx(), req.Name, req.Site, req.HwProfile, req.Role)
	if err != nil {
		return nil, err
	}
	return toReply(res), nil
}

func (api *DesignAPI) handleMigrateCircuit(req *MigrateCircuitRequest) (*ChangeReply, error) {
	api.mu.Lock()
	defer api.mu.Unlock()
	res, err := api.designer.MigrateCircuit(req.Meta.ctx(), req.CircuitID, req.NewZ)
	if err != nil {
		return nil, err
	}
	return toReply(res), nil
}

// --- client-side wrappers ---

// BuildCluster invokes the cluster-build write API on the master region.
func (c *Client) BuildCluster(ctx ctxType, req *BuildClusterRequest) (*ChangeReply, error) {
	return callDesign[BuildClusterRequest, ChangeReply](ctx, c, "design.build_cluster", req)
}

// AddCircuit invokes the circuit write API.
func (c *Client) AddCircuit(ctx ctxType, req *AddCircuitRequest) (*ChangeReply, error) {
	return callDesign[AddCircuitRequest, ChangeReply](ctx, c, "design.add_circuit", req)
}

// AddRouter invokes the backbone-router write API.
func (c *Client) AddRouter(ctx ctxType, req *AddRouterRequest) (*ChangeReply, error) {
	return callDesign[AddRouterRequest, ChangeReply](ctx, c, "design.add_router", req)
}

// MigrateCircuit invokes the circuit-migration write API.
func (c *Client) MigrateCircuit(ctx ctxType, req *MigrateCircuitRequest) (*ChangeReply, error) {
	return callDesign[MigrateCircuitRequest, ChangeReply](ctx, c, "design.migrate_circuit", req)
}

func callDesign[Req, Resp any](ctx ctxType, c *Client, method string, req *Req) (*Resp, error) {
	c.mu.Lock()
	addr := c.writeAddr
	c.mu.Unlock()
	conn, err := c.conn(addr)
	if err != nil {
		return nil, fmt.Errorf("service: write service unreachable: %w", err)
	}
	resp, err := thriftlite.CallTyped[Req, Resp](ctx, conn, method, req)
	if err != nil {
		if _, isRemote := err.(*thriftlite.RemoteError); !isRemote {
			c.dropConn(addr)
		}
		return nil, err
	}
	return resp, nil
}
