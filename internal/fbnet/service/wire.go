// Package service exposes FBNet's read and write APIs as language-
// independent RPCs over the thriftlite wire format (SIGCOMM '16, §4.3.2)
// and implements the replicated, multi-region deployment of §4.3.3: one
// master database region accepting writes, per-region read replicas,
// client failover between service replicas, and master promotion when the
// master database fails.
package service

import (
	"fmt"

	"github.com/robotron-net/robotron/internal/fbnet"
)

// WireValue is a tagged union carrying one field value across the wire.
type WireValue struct {
	Kind string  `thrift:"1"` // "s", "i", "b", "f", "nil"
	S    string  `thrift:"2"`
	I    int64   `thrift:"3"`
	B    bool    `thrift:"4"`
	F    float64 `thrift:"5"`
}

func toWireValue(v any) WireValue {
	switch x := v.(type) {
	case nil:
		return WireValue{Kind: "nil"}
	case string:
		return WireValue{Kind: "s", S: x}
	case int:
		return WireValue{Kind: "i", I: int64(x)}
	case int64:
		return WireValue{Kind: "i", I: x}
	case bool:
		return WireValue{Kind: "b", B: x}
	case float64:
		return WireValue{Kind: "f", F: x}
	default:
		return WireValue{Kind: "s", S: fmt.Sprintf("%v", x)}
	}
}

func (w WireValue) value() any {
	switch w.Kind {
	case "s":
		return w.S
	case "i":
		return w.I
	case "b":
		return w.B
	case "f":
		return w.F
	default:
		return nil
	}
}

// WireQuery is the serializable query expression tree; clients build it
// with the Eq/In/... constructors below and servers convert it into an
// fbnet.Query.
type WireQuery struct {
	Op    string       `thrift:"1"` // eq ne lt le gt ge in regexp contains isnull and or not all
	Field string       `thrift:"2"`
	Vals  []WireValue  `thrift:"3"`
	Subs  []*WireQuery `thrift:"4"`
}

// Eq matches field == v.
func Eq(field string, v any) *WireQuery {
	return &WireQuery{Op: "eq", Field: field, Vals: []WireValue{toWireValue(v)}}
}

// Ne matches field != v.
func Ne(field string, v any) *WireQuery {
	return &WireQuery{Op: "ne", Field: field, Vals: []WireValue{toWireValue(v)}}
}

// Lt matches field < v.
func Lt(field string, v any) *WireQuery {
	return &WireQuery{Op: "lt", Field: field, Vals: []WireValue{toWireValue(v)}}
}

// Le matches field <= v.
func Le(field string, v any) *WireQuery {
	return &WireQuery{Op: "le", Field: field, Vals: []WireValue{toWireValue(v)}}
}

// Gt matches field > v.
func Gt(field string, v any) *WireQuery {
	return &WireQuery{Op: "gt", Field: field, Vals: []WireValue{toWireValue(v)}}
}

// Ge matches field >= v.
func Ge(field string, v any) *WireQuery {
	return &WireQuery{Op: "ge", Field: field, Vals: []WireValue{toWireValue(v)}}
}

// In matches field against any of vs.
func In(field string, vs ...any) *WireQuery {
	q := &WireQuery{Op: "in", Field: field}
	for _, v := range vs {
		q.Vals = append(q.Vals, toWireValue(v))
	}
	return q
}

// Regexp matches string fields against a pattern.
func Regexp(field, pattern string) *WireQuery {
	return &WireQuery{Op: "regexp", Field: field, Vals: []WireValue{{Kind: "s", S: pattern}}}
}

// Contains matches string fields containing v.
func Contains(field, v string) *WireQuery {
	return &WireQuery{Op: "contains", Field: field, Vals: []WireValue{{Kind: "s", S: v}}}
}

// IsNull matches NULL fields.
func IsNull(field string) *WireQuery { return &WireQuery{Op: "isnull", Field: field} }

// And combines queries conjunctively.
func And(qs ...*WireQuery) *WireQuery { return &WireQuery{Op: "and", Subs: qs} }

// Or combines queries disjunctively.
func Or(qs ...*WireQuery) *WireQuery { return &WireQuery{Op: "or", Subs: qs} }

// Not inverts a query.
func Not(q *WireQuery) *WireQuery { return &WireQuery{Op: "not", Subs: []*WireQuery{q}} }

// All matches everything.
func All() *WireQuery { return &WireQuery{Op: "all"} }

// toQuery converts the wire tree into an fbnet.Query.
func (w *WireQuery) toQuery() (fbnet.Query, error) {
	if w == nil {
		return fbnet.All(), nil
	}
	vals := make([]any, len(w.Vals))
	for i, v := range w.Vals {
		vals[i] = v.value()
	}
	one := func() (any, error) {
		if len(vals) != 1 {
			return nil, fmt.Errorf("service: op %q wants exactly 1 value, got %d", w.Op, len(vals))
		}
		return vals[0], nil
	}
	switch w.Op {
	case "eq":
		v, err := one()
		if err != nil {
			return nil, err
		}
		return fbnet.Eq(w.Field, v), nil
	case "ne":
		v, err := one()
		if err != nil {
			return nil, err
		}
		return fbnet.Ne(w.Field, v), nil
	case "lt":
		v, err := one()
		if err != nil {
			return nil, err
		}
		return fbnet.Lt(w.Field, v), nil
	case "le":
		v, err := one()
		if err != nil {
			return nil, err
		}
		return fbnet.Le(w.Field, v), nil
	case "gt":
		v, err := one()
		if err != nil {
			return nil, err
		}
		return fbnet.Gt(w.Field, v), nil
	case "ge":
		v, err := one()
		if err != nil {
			return nil, err
		}
		return fbnet.Ge(w.Field, v), nil
	case "in":
		return fbnet.In(w.Field, vals...), nil
	case "regexp":
		v, err := one()
		if err != nil {
			return nil, err
		}
		s, _ := v.(string)
		return fbnet.Regexp(w.Field, s), nil
	case "contains":
		v, err := one()
		if err != nil {
			return nil, err
		}
		s, _ := v.(string)
		return fbnet.Contains(w.Field, s), nil
	case "isnull":
		return fbnet.IsNull(w.Field), nil
	case "all":
		return fbnet.All(), nil
	case "and", "or":
		subs := make([]fbnet.Query, 0, len(w.Subs))
		for _, s := range w.Subs {
			q, err := s.toQuery()
			if err != nil {
				return nil, err
			}
			subs = append(subs, q)
		}
		if w.Op == "and" {
			return fbnet.And(subs...), nil
		}
		return fbnet.Or(subs...), nil
	case "not":
		if len(w.Subs) != 1 {
			return nil, fmt.Errorf("service: not wants exactly 1 sub-query")
		}
		q, err := w.Subs[0].toQuery()
		if err != nil {
			return nil, err
		}
		return fbnet.Not(q), nil
	}
	return nil, fmt.Errorf("service: unknown query op %q", w.Op)
}

// WireField is one requested field of one result row.
type WireField struct {
	Path  string      `thrift:"1"`
	Vals  []WireValue `thrift:"2"`
	Multi bool        `thrift:"3"` // path traversed a reverse connection
}

// WireResult is one object in a read response.
type WireResult struct {
	ID     int64       `thrift:"1"`
	Fields []WireField `thrift:"2"`
}

// GetRequest is the read API request: get<ObjectType>(fields, query).
// Limit > 0 caps the number of returned objects (in id order), bounding
// response size for the high-read-rate paths of §4.3.
type GetRequest struct {
	Model  string     `thrift:"1"`
	Fields []string   `thrift:"2"`
	Query  *WireQuery `thrift:"3"`
	Limit  int64      `thrift:"4"`
}

// GetResponse carries the matching objects.
type GetResponse struct {
	Results []WireResult `thrift:"1"`
}

// WriteOp is one object operation in a write batch.
type WriteOp struct {
	Action string      `thrift:"1"` // "create", "update", "delete"
	Model  string      `thrift:"2"`
	ID     int64       `thrift:"3"` // update/delete
	Fields []WireField `thrift:"4"` // create/update: single-valued fields
}

// WriteRequest is a batch of object operations executed in one database
// transaction: "each write API is wrapped in a single database
// transaction, and therefore no partial state is visible" (§4.3.2).
type WriteRequest struct {
	Ops []WriteOp `thrift:"1"`
}

// WriteResponse reports created object ids (parallel to create ops).
type WriteResponse struct {
	CreatedIDs  []int64 `thrift:"1"`
	NumModified int64   `thrift:"2"`
	NumDeleted  int64   `thrift:"3"`
}

// PingRequest/PingResponse implement service health checks.
type PingRequest struct {
	Echo string `thrift:"1"`
}

// PingResponse echoes the request and names the serving replica.
type PingResponse struct {
	Echo    string `thrift:"1"`
	Replica string `thrift:"2"`
}
