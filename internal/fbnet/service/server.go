package service

import (
	"fmt"
	"net"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/thriftlite"
)

// Server is one FBNet API service replica. Read replicas serve Get from
// their (possibly lagging) local database; the write service additionally
// accepts Write batches against the master.
type Server struct {
	name    string
	store   *fbnet.Store
	rpc     *thriftlite.Server
	ln      net.Listener
	writing bool
}

// NewReadServer starts a read-only API service replica on addr, serving
// from store (typically a replica database view).
func NewReadServer(name, addr string, store *fbnet.Store) (*Server, error) {
	return newServer(name, addr, store, false)
}

// NewWriteServer starts a read/write API service on addr; store must be
// backed by the master database.
func NewWriteServer(name, addr string, store *fbnet.Store) (*Server, error) {
	return newServer(name, addr, store, true)
}

func newServer(name, addr string, store *fbnet.Store, writing bool) (*Server, error) {
	s := &Server{name: name, store: store, writing: writing}
	s.rpc = thriftlite.NewServer()
	thriftlite.RegisterTyped(s.rpc, "fbnet.ping", s.handlePing)
	thriftlite.RegisterTyped(s.rpc, "fbnet.get", s.handleGet)
	if writing {
		thriftlite.RegisterTyped(s.rpc, "fbnet.write", s.handleWrite)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	go s.rpc.Serve(ln)
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Name returns the replica name.
func (s *Server) Name() string { return s.name }

// Close shuts the replica down.
func (s *Server) Close() { s.rpc.Shutdown() }

func (s *Server) handlePing(req *PingRequest) (*PingResponse, error) {
	// A ping only succeeds when the backing database responds, so clients
	// can use it as a health check through to storage.
	if !s.store.DB().Healthy() {
		return nil, fmt.Errorf("service: %s: database down", s.name)
	}
	return &PingResponse{Echo: req.Echo, Replica: s.name}, nil
}

func (s *Server) handleGet(req *GetRequest) (*GetResponse, error) {
	q, err := req.Query.toQuery()
	if err != nil {
		return nil, err
	}
	results, err := s.store.Get(req.Model, req.Fields, q)
	if err != nil {
		return nil, err
	}
	if req.Limit > 0 && int64(len(results)) > req.Limit {
		results = results[:req.Limit]
	}
	resp := &GetResponse{}
	for _, r := range results {
		wr := WireResult{ID: r.ID}
		for _, path := range req.Fields {
			wf := WireField{Path: path}
			switch v := r.Fields[path].(type) {
			case []any:
				wf.Multi = true
				for _, el := range v {
					wf.Vals = append(wf.Vals, toWireValue(el))
				}
			default:
				wf.Vals = []WireValue{toWireValue(v)}
			}
			wr.Fields = append(wr.Fields, wf)
		}
		resp.Results = append(resp.Results, wr)
	}
	return resp, nil
}

func (s *Server) handleWrite(req *WriteRequest) (*WriteResponse, error) {
	resp := &WriteResponse{}
	_, err := s.store.Mutate(func(m *fbnet.Mutation) error {
		for _, op := range req.Ops {
			fields := make(map[string]any, len(op.Fields))
			for _, f := range op.Fields {
				if len(f.Vals) != 1 {
					return fmt.Errorf("service: write field %q must have exactly 1 value", f.Path)
				}
				fields[f.Path] = f.Vals[0].value()
			}
			switch op.Action {
			case "create":
				id, err := m.Create(op.Model, fields)
				if err != nil {
					return err
				}
				resp.CreatedIDs = append(resp.CreatedIDs, id)
			case "update":
				if err := m.Update(op.Model, op.ID, fields); err != nil {
					return err
				}
				resp.NumModified++
			case "delete":
				if err := m.Delete(op.Model, op.ID); err != nil {
					return err
				}
				resp.NumDeleted++
			default:
				return fmt.Errorf("service: unknown write action %q", op.Action)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}
