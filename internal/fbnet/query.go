package fbnet

import (
	"fmt"
	"regexp"
	"strings"

	"github.com/robotron-net/robotron/internal/relstore"
)

// The read API (§4.2.1): get<ObjectType>(fields, query). Fields are value
// fields local to the object or reached through one or more relationship
// fields ("device.name" on a linecard); each relationship also exposes a
// reverse connection on the referenced model ("linecards" on a device).
// Queries are expression trees of <field> <op> <rvalue> terms composed
// with logical operators.

// Query is a predicate over objects of one model.
type Query interface {
	match(rs *resolver, model string, row relstore.Row) (bool, error)
	String() string
}

// --- comparison expressions ---

type cmpOp int

const (
	opEq cmpOp = iota
	opNe
	opLt
	opLe
	opGt
	opGe
	opIn
	opRegexp
	opContains
	opIsNull
)

var opNames = map[cmpOp]string{
	opEq: "EQUAL", opNe: "NOT_EQUAL", opLt: "LESS", opLe: "LESS_EQ",
	opGt: "GREATER", opGe: "GREATER_EQ", opIn: "IN", opRegexp: "REGEXP",
	opContains: "CONTAINS", opIsNull: "IS_NULL",
}

type cmpExpr struct {
	field  string
	op     cmpOp
	rvals  []any
	rex    *regexp.Regexp
	rexErr error
}

// Eq matches objects whose field equals v. The field may be a dotted path
// through relationship fields or reverse connections; multi-valued paths
// match if any reached value matches.
func Eq(field string, v any) Query { return &cmpExpr{field: field, op: opEq, rvals: []any{v}} }

// Ne matches objects whose field differs from v (NULL never matches).
func Ne(field string, v any) Query { return &cmpExpr{field: field, op: opNe, rvals: []any{v}} }

// Lt matches field < v.
func Lt(field string, v any) Query { return &cmpExpr{field: field, op: opLt, rvals: []any{v}} }

// Le matches field <= v.
func Le(field string, v any) Query { return &cmpExpr{field: field, op: opLe, rvals: []any{v}} }

// Gt matches field > v.
func Gt(field string, v any) Query { return &cmpExpr{field: field, op: opGt, rvals: []any{v}} }

// Ge matches field >= v.
func Ge(field string, v any) Query { return &cmpExpr{field: field, op: opGe, rvals: []any{v}} }

// In matches objects whose field equals any of vs.
func In(field string, vs ...any) Query { return &cmpExpr{field: field, op: opIn, rvals: vs} }

// Regexp matches string fields against an RE2 pattern.
func Regexp(field, pattern string) Query {
	rex, err := regexp.Compile(pattern)
	return &cmpExpr{field: field, op: opRegexp, rvals: []any{pattern}, rex: rex, rexErr: err}
}

// Contains matches string fields containing the substring v.
func Contains(field, v string) Query {
	return &cmpExpr{field: field, op: opContains, rvals: []any{v}}
}

// IsNull matches objects whose (nullable or relation) field is NULL.
func IsNull(field string) Query { return &cmpExpr{field: field, op: opIsNull} }

func (e *cmpExpr) String() string {
	return fmt.Sprintf("%s %s %v", e.field, opNames[e.op], e.rvals)
}

func (e *cmpExpr) match(rs *resolver, model string, row relstore.Row) (bool, error) {
	vals, err := rs.resolve(model, row, e.field)
	if err != nil {
		return false, err
	}
	if e.op == opIsNull {
		if len(vals) == 0 {
			return true, nil
		}
		for _, v := range vals {
			if v == nil {
				return true, nil
			}
		}
		return false, nil
	}
	for _, v := range vals {
		ok, err := e.matchOne(v)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func (e *cmpExpr) matchOne(v any) (bool, error) {
	switch e.op {
	case opEq, opIn:
		for _, rv := range e.rvals {
			if valuesEqual(v, rv) {
				return true, nil
			}
		}
		return false, nil
	case opNe:
		if v == nil {
			return false, nil
		}
		return !valuesEqual(v, e.rvals[0]), nil
	case opLt, opLe, opGt, opGe:
		c, ok := compareValues(v, e.rvals[0])
		if !ok {
			return false, nil
		}
		switch e.op {
		case opLt:
			return c < 0, nil
		case opLe:
			return c <= 0, nil
		case opGt:
			return c > 0, nil
		default:
			return c >= 0, nil
		}
	case opRegexp:
		if e.rexErr != nil {
			return false, fmt.Errorf("fbnet: bad regexp %v: %w", e.rvals[0], e.rexErr)
		}
		s, ok := v.(string)
		return ok && e.rex.MatchString(s), nil
	case opContains:
		s, ok := v.(string)
		sub, _ := e.rvals[0].(string)
		return ok && strings.Contains(s, sub), nil
	}
	return false, fmt.Errorf("fbnet: unknown operator %d", e.op)
}

func valuesEqual(a, b any) bool {
	if na, ok := normInt(a); ok {
		nb, ok := normInt(b)
		return ok && na == nb
	}
	return a == b
}

func normInt(v any) (int64, bool) {
	switch n := v.(type) {
	case int:
		return int64(n), true
	case int32:
		return int64(n), true
	case int64:
		return n, true
	}
	return 0, false
}

func compareValues(a, b any) (int, bool) {
	if na, ok := normInt(a); ok {
		if nb, ok := normInt(b); ok {
			switch {
			case na < nb:
				return -1, true
			case na > nb:
				return 1, true
			}
			return 0, true
		}
		if fb, ok := b.(float64); ok {
			fa := float64(na)
			switch {
			case fa < fb:
				return -1, true
			case fa > fb:
				return 1, true
			}
			return 0, true
		}
		return 0, false
	}
	if fa, ok := a.(float64); ok {
		var fb float64
		switch n := b.(type) {
		case float64:
			fb = n
		case int:
			fb = float64(n)
		case int64:
			fb = float64(n)
		default:
			return 0, false
		}
		switch {
		case fa < fb:
			return -1, true
		case fa > fb:
			return 1, true
		}
		return 0, true
	}
	if sa, ok := a.(string); ok {
		sb, ok := b.(string)
		if !ok {
			return 0, false
		}
		return strings.Compare(sa, sb), true
	}
	return 0, false
}

// --- logical composition ---

type andExpr struct{ subs []Query }
type orExpr struct{ subs []Query }
type notExpr struct{ sub Query }

// And matches when all sub-queries match (vacuously true when empty).
func And(qs ...Query) Query { return &andExpr{subs: qs} }

// Or matches when any sub-query matches.
func Or(qs ...Query) Query { return &orExpr{subs: qs} }

// Not inverts a query.
func Not(q Query) Query { return &notExpr{sub: q} }

// All matches every object.
func All() Query { return &andExpr{} }

func (e *andExpr) String() string {
	if len(e.subs) == 0 {
		return "ALL"
	}
	parts := make([]string, len(e.subs))
	for i, s := range e.subs {
		parts[i] = s.String()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

func (e *orExpr) String() string {
	parts := make([]string, len(e.subs))
	for i, s := range e.subs {
		parts[i] = s.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

func (e *notExpr) String() string { return "NOT " + e.sub.String() }

func (e *andExpr) match(rs *resolver, model string, row relstore.Row) (bool, error) {
	for _, s := range e.subs {
		ok, err := s.match(rs, model, row)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

func (e *orExpr) match(rs *resolver, model string, row relstore.Row) (bool, error) {
	for _, s := range e.subs {
		ok, err := s.match(rs, model, row)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func (e *notExpr) match(rs *resolver, model string, row relstore.Row) (bool, error) {
	ok, err := e.sub.match(rs, model, row)
	return !ok, err
}

// --- path resolution ---

// reader abstracts row access so queries run both against the store (DB)
// and inside mutations (Tx).
type reader interface {
	get(table string, id int64) (relstore.Row, error)
	selectAll(table string) ([]relstore.Row, error)
	referencing(table, col string, id int64) ([]int64, error)
	lookupUnique(table, col string, v any) (int64, bool, error)
	lookupIndexed(table, col string, v any) ([]int64, error)
}

type dbReader struct{ db *relstore.DB }

func (r dbReader) get(table string, id int64) (relstore.Row, error) { return r.db.Get(table, id) }
func (r dbReader) selectAll(table string) ([]relstore.Row, error)   { return r.db.Select(table, nil) }
func (r dbReader) referencing(table, col string, id int64) ([]int64, error) {
	return r.db.Referencing(table, col, id)
}
func (r dbReader) lookupUnique(table, col string, v any) (int64, bool, error) {
	return r.db.LookupUnique(table, col, v)
}
func (r dbReader) lookupIndexed(table, col string, v any) ([]int64, error) {
	return r.db.LookupIndexed(table, col, v)
}

type txReader struct{ tx *relstore.Tx }

func (r txReader) get(table string, id int64) (relstore.Row, error) { return r.tx.Get(table, id) }
func (r txReader) selectAll(table string) ([]relstore.Row, error)   { return r.tx.Select(table, nil) }
func (r txReader) referencing(table, col string, id int64) ([]int64, error) {
	return r.tx.Referencing(table, col, id)
}
func (r txReader) lookupUnique(table, col string, v any) (int64, bool, error) {
	return r.tx.LookupUnique(table, col, v)
}
func (r txReader) lookupIndexed(table, col string, v any) ([]int64, error) {
	return r.tx.LookupIndexed(table, col, v)
}

// planRows consults the query planner (planner.go): indexable queries are
// answered from the unique, secondary, and foreign-key indexes instead of
// scanning the table; everything else falls back to the full scan. The
// caller still evaluates the query against the planned rows, so a planner
// strategy only has to return a superset-free exact candidate set.
func planRows(reg *Registry, r reader, model string, q Query) ([]relstore.Row, error) {
	if rows, ok, err := planIndexed(reg, r, model, q); err != nil || ok {
		if err == nil {
			reg.mPlanIndexed.Inc()
		}
		return rows, err
	}
	reg.mPlanScanned.Inc()
	return r.selectAll(model)
}

// resolver evaluates dotted field paths against rows.
type resolver struct {
	reg *Registry
	r   reader
}

// resolve returns the values reached by following path from row. A path
// through a reverse connection may reach multiple values; a NULL relation
// yields no values for the remainder of the path.
func (rs *resolver) resolve(model string, row relstore.Row, path string) ([]any, error) {
	parts := strings.Split(path, ".")
	type cursor struct {
		model string
		row   relstore.Row
	}
	frontier := []cursor{{model: model, row: row}}
	for i, part := range parts {
		last := i == len(parts)-1
		var next []cursor
		var leaves []any
		for _, cur := range frontier {
			m, ok := rs.reg.Model(cur.model)
			if !ok {
				return nil, fmt.Errorf("fbnet: unknown model %q in path %q", cur.model, path)
			}
			if part == "id" {
				if !last {
					return nil, fmt.Errorf("fbnet: path %q continues past id", path)
				}
				leaves = append(leaves, cur.row.ID)
				continue
			}
			if f, ok := m.Field(part); ok {
				switch f.Kind {
				case ValueField:
					if !last {
						return nil, fmt.Errorf("fbnet: path %q traverses value field %q", path, part)
					}
					leaves = append(leaves, cur.row.Get(part))
				case RelationField:
					v := cur.row.Get(part)
					if v == nil {
						continue // NULL relation: contributes nothing
					}
					refRow, err := rs.r.get(f.Target, v.(int64))
					if err != nil {
						return nil, err
					}
					if last {
						leaves = append(leaves, refRow.ID)
					} else {
						next = append(next, cursor{model: f.Target, row: refRow})
					}
				}
				continue
			}
			// Computed (on-the-fly) field?
			if fn, ok := rs.reg.Computed(cur.model, part); ok {
				if !last {
					return nil, fmt.Errorf("fbnet: path %q traverses computed field %q", path, part)
				}
				leaves = append(leaves, fn(Object{Model: cur.model, ID: cur.row.ID, Fields: cur.row.Values}))
				continue
			}
			// Reverse connection?
			var found bool
			for _, rv := range rs.reg.Reverses(cur.model) {
				if rv.name != part {
					continue
				}
				found = true
				ids, err := rs.r.referencing(rv.model, rv.field, cur.row.ID)
				if err != nil {
					return nil, err
				}
				for _, rid := range ids {
					if last {
						leaves = append(leaves, rid)
						continue
					}
					refRow, err := rs.r.get(rv.model, rid)
					if err != nil {
						return nil, err
					}
					next = append(next, cursor{model: rv.model, row: refRow})
				}
				break
			}
			if !found {
				return nil, fmt.Errorf("fbnet: model %s has no field or reverse connection %q (path %q)", cur.model, part, path)
			}
		}
		if last {
			return leaves, nil
		}
		frontier = next
		if len(frontier) == 0 {
			return nil, nil
		}
	}
	return nil, nil
}

// Result is one row of a read-API response: the object id plus the
// requested fields keyed by their path.
type Result struct {
	ID     int64
	Fields map[string]any
}

// Get implements the paper's read API: it returns, for every object of
// the model matching q, the requested fields. A field may be "name"
// (local), "device.name" (through a relation), or "linecards.slot"
// (through a reverse connection; such multi-valued fields yield []any).
func (s *Store) Get(model string, fields []string, q Query) ([]Result, error) {
	return get(s.reg, dbReader{s.db}, model, fields, q)
}

// Find returns whole objects of a model matching q, in id order.
func (s *Store) Find(model string, q Query) ([]Object, error) {
	return find(s.reg, dbReader{s.db}, model, q)
}

// FindOne returns exactly one matching object, erroring on zero or many.
func (s *Store) FindOne(model string, q Query) (Object, error) {
	objs, err := s.Find(model, q)
	if err != nil {
		return Object{}, err
	}
	switch len(objs) {
	case 0:
		return Object{}, fmt.Errorf("fbnet: no %s matches %s", model, q)
	case 1:
		return objs[0], nil
	default:
		return Object{}, fmt.Errorf("fbnet: %d %s objects match %s, want exactly 1", len(objs), model, q)
	}
}

func get(reg *Registry, r reader, model string, fields []string, q Query) ([]Result, error) {
	if _, ok := reg.Model(model); !ok {
		return nil, fmt.Errorf("fbnet: unknown model %q", model)
	}
	if q == nil {
		q = All()
	}
	rs := &resolver{reg: reg, r: r}
	rows, err := planRows(reg, r, model, q)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, row := range rows {
		ok, err := q.match(rs, model, row)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		res := Result{ID: row.ID, Fields: make(map[string]any, len(fields))}
		for _, f := range fields {
			vals, err := rs.resolve(model, row, f)
			if err != nil {
				return nil, err
			}
			if isMultiPath(reg, model, f) {
				res.Fields[f] = vals
			} else if len(vals) > 0 {
				res.Fields[f] = vals[0]
			} else {
				res.Fields[f] = nil
			}
		}
		out = append(out, res)
	}
	return out, nil
}

func find(reg *Registry, r reader, model string, q Query) ([]Object, error) {
	if _, ok := reg.Model(model); !ok {
		return nil, fmt.Errorf("fbnet: unknown model %q", model)
	}
	if q == nil {
		q = All()
	}
	rs := &resolver{reg: reg, r: r}
	rows, err := planRows(reg, r, model, q)
	if err != nil {
		return nil, err
	}
	var out []Object
	for _, row := range rows {
		ok, err := q.match(rs, model, row)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, Object{Model: model, ID: row.ID, Fields: row.Values})
		}
	}
	return out, nil
}

// isMultiPath reports whether a field path traverses any reverse
// connection (and therefore may yield several values per object).
func isMultiPath(reg *Registry, model string, path string) bool {
	parts := strings.Split(path, ".")
	cur := model
	for _, part := range parts {
		m, ok := reg.Model(cur)
		if !ok {
			return false
		}
		if part == "id" {
			return false
		}
		if f, ok := m.Field(part); ok {
			if f.Kind == ValueField {
				return false
			}
			cur = f.Target
			continue
		}
		for _, rv := range reg.Reverses(cur) {
			if rv.name == part {
				return true
			}
		}
		return false
	}
	return false
}
