package fbnet

import (
	"github.com/robotron-net/robotron/internal/relstore"
)

// NewCatalog registers the standard Robotron model catalog and returns the
// registry. The paper reports "over 250 models in total covering IP/AS
// number allocations, optical transport, BGP, operational events, etc"
// (§4.1.1); this catalog is a representative core covering the same
// domains — locations, hardware, interfaces and circuits (Fig. 5),
// addressing, routing, MPLS, peering, optical transport, consoles/assets,
// templates, and change tracking — in the Desired group, plus the Derived
// group populated by monitoring (§4.1.2).
//
// Models must be registered referenced-first, like SQL tables with foreign
// keys. Field design follows the paper's three modeling principles: only
// fields the management tools need; Desired/Derived counterparts kept
// structurally similar (DerivedInterface adds oper_status, exactly the
// §4.1.2 example); no duplicated sources of truth (a physical interface
// reaches its device via its linecard, not a second device field).
func NewCatalog() *Registry {
	r := NewRegistry()
	registerDesired(r)
	registerDerived(r)
	// asset_url is the paper's example of an attribute generated
	// systematically on the fly (§6.1); the derivation evolves with the
	// asset-management system and can be re-registered.
	if err := r.RegisterComputed("Device", "asset_url", func(o Object) any {
		return "https://assets.example.com/device/" + o.String("name")
	}); err != nil {
		panic(err)
	}
	return r
}

func registerDesired(r *Registry) {
	// --- locations ---
	r.MustRegister(Model{
		Name: "Region", Group: Desired,
		Doc: "A geographic region grouping sites.",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true, Validate: ValidateNonEmpty},
		},
	})
	r.MustRegister(Model{
		Name: "Site", Group: Desired,
		Doc: "A physical network location: an edge POP, a data center, or a backbone location.",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true, Validate: ValidateNonEmpty},
			{Name: "kind", Type: relstore.ColString, Indexed: true, Validate: ValidateOneOf("pop", "dc", "backbone")},
			{Name: "region", Kind: RelationField, Target: "Region", OnDelete: relstore.Restrict},
		},
	})
	r.MustRegister(Model{
		Name: "Cluster", Group: Desired,
		Doc: "A cluster of devices within a site, built from one topology template generation.",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true, Validate: ValidateNonEmpty},
			{Name: "site", Kind: RelationField, Target: "Site", OnDelete: relstore.Restrict},
			{Name: "generation", Type: relstore.ColString},
			{Name: "status", Type: relstore.ColString, Indexed: true, Validate: ValidateOneOf("planned", "provisioning", "production", "decommissioned")},
		},
	})
	r.MustRegister(Model{
		Name: "RackProfile", Group: Desired,
		Doc: "Per-rack interface allocation profile used by DC cluster switch configs (§8, Stale Configs).",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true},
			{Name: "num_downlinks", Type: relstore.ColInt},
			{Name: "uplink_speed_mbps", Type: relstore.ColInt},
		},
	})
	r.MustRegister(Model{
		Name: "Rack", Group: Desired,
		Doc: "A server rack within a cluster.",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true},
			{Name: "cluster", Kind: RelationField, Target: "Cluster", OnDelete: relstore.Cascade},
			{Name: "profile", Kind: RelationField, Target: "RackProfile", OnDelete: relstore.Restrict, Nullable: true},
		},
	})

	// --- hardware ---
	r.MustRegister(Model{
		Name: "Vendor", Group: Desired,
		Doc: "A network equipment vendor; selects the config template dialect.",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true},
			{Name: "syntax", Type: relstore.ColString, Validate: ValidateOneOf("vendor1", "vendor2")},
		},
	})
	r.MustRegister(Model{
		Name: "HardwareProfile", Group: Desired,
		Doc: "A device hardware platform: vendor, chassis model, linecard layout.",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true},
			{Name: "vendor", Kind: RelationField, Target: "Vendor", OnDelete: relstore.Restrict},
			{Name: "num_slots", Type: relstore.ColInt},
			{Name: "ports_per_linecard", Type: relstore.ColInt},
			{Name: "port_speed_mbps", Type: relstore.ColInt},
		},
	})
	r.MustRegister(Model{
		Name: "OsImage", Group: Desired,
		Doc: "A qualified network OS image; OS upgrade is a routine task (§1).",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true},
			{Name: "version", Type: relstore.ColString, Validate: ValidateNonEmpty},
			{Name: "vendor", Kind: RelationField, Target: "Vendor", OnDelete: relstore.Restrict},
		},
	})
	r.MustRegister(Model{
		Name: "Device", Group: Desired,
		Doc: "A network device: peering router (PR), backbone router (BB), datacenter router (DR), aggregation switch (PSW/FSW), or rack switch (TOR).",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true, Validate: ValidateNonEmpty},
			{Name: "role", Type: relstore.ColString, Indexed: true, Validate: ValidateOneOf("pr", "bb", "dr", "psw", "fsw", "ssw", "tor")},
			{Name: "site", Kind: RelationField, Target: "Site", OnDelete: relstore.Restrict},
			{Name: "cluster", Kind: RelationField, Target: "Cluster", OnDelete: relstore.Cascade, Nullable: true},
			{Name: "hw_profile", Kind: RelationField, Target: "HardwareProfile", OnDelete: relstore.Restrict},
			{Name: "mgmt_ip", Type: relstore.ColString, Nullable: true, Validate: ValidateIPAddr},
			{Name: "loopback_v6", Type: relstore.ColString, Nullable: true, Validate: ValidateV6Prefix},
			{Name: "loopback_v4", Type: relstore.ColString, Nullable: true, Validate: ValidateV4Prefix},
			// drain_state is the paper's example of a purely operational
			// attribute added to Desired models over time (§6.1).
			{Name: "drain_state", Type: relstore.ColString, Indexed: true, Validate: ValidateOneOf("drained", "undrained")},
			{Name: "os_image", Kind: RelationField, Target: "OsImage", OnDelete: relstore.Restrict, Nullable: true},
		},
	})
	r.MustRegister(Model{
		Name: "Linecard", Group: Desired,
		Doc: "A linecard installed in a device chassis slot.",
		Fields: []Field{
			{Name: "slot", Type: relstore.ColInt},
			{Name: "model", Type: relstore.ColString, Nullable: true},
			{Name: "device", Kind: RelationField, Target: "Device", OnDelete: relstore.Cascade},
		},
	})
	r.MustRegister(Model{
		Name: "AggregatedInterface", Group: Desired,
		Doc: "A LACP bundle (aeX) grouping physical interfaces on one device (Fig. 4).",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Validate: ValidateNonEmpty},
			{Name: "number", Type: relstore.ColInt},
			{Name: "mtu", Type: relstore.ColInt},
			{Name: "device", Kind: RelationField, Target: "Device", OnDelete: relstore.Cascade},
		},
	})
	r.MustRegister(Model{
		Name: "PhysicalInterface", Group: Desired,
		Doc: "A physical port etX/Y on a linecard; optionally grouped into an aggregated interface (Fig. 5).",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Validate: ValidateNonEmpty},
			{Name: "speed_mbps", Type: relstore.ColInt},
			{Name: "linecard", Kind: RelationField, Target: "Linecard", OnDelete: relstore.Cascade},
			{Name: "agg_interface", Kind: RelationField, Target: "AggregatedInterface", OnDelete: relstore.SetNull, Nullable: true},
		},
	})

	// --- circuits ---
	r.MustRegister(Model{
		Name: "CircuitProvider", Group: Desired,
		Doc: "A long-haul circuit provider for backbone and peering circuits.",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true},
		},
	})
	r.MustRegister(Model{
		Name: "LinkGroup", Group: Desired,
		Doc: "A logical bundle of parallel circuits between two devices (the 20G link of Fig. 4).",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true},
			{Name: "a_device", Kind: RelationField, Target: "Device", OnDelete: relstore.Cascade, ReverseName: "link_groups_a"},
			{Name: "z_device", Kind: RelationField, Target: "Device", OnDelete: relstore.Cascade, ReverseName: "link_groups_z"},
			{Name: "capacity_mbps", Type: relstore.ColInt},
		},
	})
	r.MustRegister(Model{
		Name: "Circuit", Group: Desired,
		Doc: "A point-to-point circuit terminating at two physical interfaces (Fig. 5).",
		Fields: []Field{
			{Name: "circuit_id", Type: relstore.ColString, Unique: true},
			{Name: "a_interface", Kind: RelationField, Target: "PhysicalInterface", OnDelete: relstore.SetNull, Nullable: true, ReverseName: "circuits_a"},
			{Name: "z_interface", Kind: RelationField, Target: "PhysicalInterface", OnDelete: relstore.SetNull, Nullable: true, ReverseName: "circuits_z"},
			{Name: "link_group", Kind: RelationField, Target: "LinkGroup", OnDelete: relstore.Cascade, Nullable: true},
			{Name: "provider", Kind: RelationField, Target: "CircuitProvider", OnDelete: relstore.Restrict, Nullable: true},
			{Name: "status", Type: relstore.ColString, Indexed: true, Validate: ValidateOneOf("planned", "provisioning", "production", "decommissioned")},
		},
	})

	// --- addressing ---
	r.MustRegister(Model{
		Name: "PrefixPool", Group: Desired,
		Doc: "An address pool from which design tools allocate prefixes (§7).",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true},
			{Name: "root", Type: relstore.ColString},
			{Name: "purpose", Type: relstore.ColString, Validate: ValidateOneOf("p2p", "loopback", "rack", "external")},
			{Name: "site", Kind: RelationField, Target: "Site", OnDelete: relstore.Cascade, Nullable: true},
		},
	})
	r.MustRegister(Model{
		Name: "V6Prefix", Group: Desired,
		Doc: "An IPv6 prefix assigned to an aggregated interface (Fig. 5, 6).",
		Fields: []Field{
			{Name: "prefix", Type: relstore.ColString, Unique: true, Validate: ValidateV6Prefix},
			{Name: "interface", Kind: RelationField, Target: "AggregatedInterface", OnDelete: relstore.Cascade, Nullable: true},
			{Name: "pool", Kind: RelationField, Target: "PrefixPool", OnDelete: relstore.Restrict, Nullable: true},
			{Name: "purpose", Type: relstore.ColString, Validate: ValidateOneOf("p2p", "loopback", "rack", "external")},
		},
	})
	r.MustRegister(Model{
		Name: "V4Prefix", Group: Desired,
		Doc: "An IPv4 prefix assigned to an aggregated interface.",
		Fields: []Field{
			{Name: "prefix", Type: relstore.ColString, Unique: true, Validate: ValidateV4Prefix},
			{Name: "interface", Kind: RelationField, Target: "AggregatedInterface", OnDelete: relstore.Cascade, Nullable: true},
			{Name: "pool", Kind: RelationField, Target: "PrefixPool", OnDelete: relstore.Restrict, Nullable: true},
			{Name: "purpose", Type: relstore.ColString, Validate: ValidateOneOf("p2p", "loopback", "rack", "external")},
		},
	})

	// --- routing ---
	r.MustRegister(Model{
		Name: "ASN", Group: Desired,
		Doc: "An autonomous system number allocation.",
		Fields: []Field{
			{Name: "number", Type: relstore.ColInt, Unique: true},
			{Name: "name", Type: relstore.ColString},
		},
	})
	r.MustRegister(Model{
		Name: "RoutingPolicy", Group: Desired,
		Doc: "A named import/export routing policy attached to BGP sessions (§8, Complexity of Modeling).",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true},
		},
	})
	r.MustRegister(Model{
		Name: "PolicyTerm", Group: Desired,
		Doc: "One match/action term within a routing policy.",
		Fields: []Field{
			{Name: "policy", Kind: RelationField, Target: "RoutingPolicy", OnDelete: relstore.Cascade},
			{Name: "seq", Type: relstore.ColInt},
			{Name: "match_prefix", Type: relstore.ColString, Nullable: true},
			{Name: "action", Type: relstore.ColString, Validate: ValidateOneOf("accept", "reject", "prepend")},
		},
	})
	r.MustRegister(Model{
		Name: "BgpV6Session", Group: Desired,
		Doc: "An IPv6 BGP session between a local device and a remote device or external peer (Fig. 5).",
		Fields: []Field{
			{Name: "local_device", Kind: RelationField, Target: "Device", OnDelete: relstore.Cascade, ReverseName: "bgp_v6_sessions_local"},
			{Name: "remote_device", Kind: RelationField, Target: "Device", OnDelete: relstore.Cascade, Nullable: true, ReverseName: "bgp_v6_sessions_remote"},
			{Name: "local_prefix", Kind: RelationField, Target: "V6Prefix", OnDelete: relstore.Cascade, Nullable: true, ReverseName: "bgp_v6_sessions_local_prefix"},
			{Name: "remote_addr", Type: relstore.ColString, Nullable: true, Validate: ValidateIPAddr},
			{Name: "local_as", Type: relstore.ColInt},
			{Name: "remote_as", Type: relstore.ColInt},
			{Name: "session_type", Type: relstore.ColString, Validate: ValidateOneOf("ebgp", "ibgp")},
			{Name: "import_policy", Kind: RelationField, Target: "RoutingPolicy", OnDelete: relstore.Restrict, Nullable: true, ReverseName: "importing_v6_sessions"},
			{Name: "export_policy", Kind: RelationField, Target: "RoutingPolicy", OnDelete: relstore.Restrict, Nullable: true, ReverseName: "exporting_v6_sessions"},
		},
	})
	r.MustRegister(Model{
		Name: "BgpV4Session", Group: Desired,
		Doc: "An IPv4 BGP session; created to capture the Gen1 (L2) to Gen2 (L3 BGP) DC transition (§6.1).",
		Fields: []Field{
			{Name: "local_device", Kind: RelationField, Target: "Device", OnDelete: relstore.Cascade, ReverseName: "bgp_v4_sessions_local"},
			{Name: "remote_device", Kind: RelationField, Target: "Device", OnDelete: relstore.Cascade, Nullable: true, ReverseName: "bgp_v4_sessions_remote"},
			{Name: "local_prefix", Kind: RelationField, Target: "V4Prefix", OnDelete: relstore.Cascade, Nullable: true, ReverseName: "bgp_v4_sessions_local_prefix"},
			{Name: "remote_addr", Type: relstore.ColString, Nullable: true, Validate: ValidateIPAddr},
			{Name: "local_as", Type: relstore.ColInt},
			{Name: "remote_as", Type: relstore.ColInt},
			{Name: "session_type", Type: relstore.ColString, Validate: ValidateOneOf("ebgp", "ibgp")},
			{Name: "import_policy", Kind: RelationField, Target: "RoutingPolicy", OnDelete: relstore.Restrict, Nullable: true, ReverseName: "importing_v4_sessions"},
			{Name: "export_policy", Kind: RelationField, Target: "RoutingPolicy", OnDelete: relstore.Restrict, Nullable: true, ReverseName: "exporting_v4_sessions"},
		},
	})

	r.MustRegister(Model{
		Name: "FirewallPolicy", Group: Desired,
		Doc: "A named packet filter; firewall rule changes deploy in phases (§5.3.2).",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true},
			{Name: "direction", Type: relstore.ColString, Validate: ValidateOneOf("in", "out")},
		},
	})
	r.MustRegister(Model{
		Name: "FirewallRule", Group: Desired,
		Doc: "One term of a firewall policy.",
		Fields: []Field{
			{Name: "policy", Kind: RelationField, Target: "FirewallPolicy", OnDelete: relstore.Cascade},
			{Name: "seq", Type: relstore.ColInt},
			{Name: "action", Type: relstore.ColString, Validate: ValidateOneOf("permit", "deny")},
			{Name: "protocol", Type: relstore.ColString, Validate: ValidateOneOf("any", "tcp", "udp", "icmp6")},
			{Name: "src_prefix", Type: relstore.ColString, Nullable: true},
			{Name: "dst_port", Type: relstore.ColInt, Nullable: true},
		},
	})
	r.MustRegister(Model{
		Name: "DeviceFirewall", Group: Desired,
		Doc: "Attachment of a firewall policy to a device's control plane.",
		Fields: []Field{
			{Name: "device", Kind: RelationField, Target: "Device", OnDelete: relstore.Cascade},
			{Name: "policy", Kind: RelationField, Target: "FirewallPolicy", OnDelete: relstore.Restrict},
		},
	})

	// --- MPLS (backbone traffic engineering, §2.3) ---
	r.MustRegister(Model{
		Name: "MplsTunnel", Group: Desired,
		Doc: "An MPLS-TE tunnel between two edge nodes (PR/DR) across the backbone.",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true},
			{Name: "head_device", Kind: RelationField, Target: "Device", OnDelete: relstore.Cascade, ReverseName: "mpls_tunnels_head"},
			{Name: "tail_device", Kind: RelationField, Target: "Device", OnDelete: relstore.Cascade, ReverseName: "mpls_tunnels_tail"},
			{Name: "bandwidth_mbps", Type: relstore.ColInt},
		},
	})
	r.MustRegister(Model{
		Name: "MplsPathHop", Group: Desired,
		Doc: "One explicit hop of an MPLS-TE tunnel path.",
		Fields: []Field{
			{Name: "tunnel", Kind: RelationField, Target: "MplsTunnel", OnDelete: relstore.Cascade},
			{Name: "seq", Type: relstore.ColInt},
			{Name: "via_device", Kind: RelationField, Target: "Device", OnDelete: relstore.Cascade},
		},
	})

	// --- peering (§2.1) ---
	r.MustRegister(Model{
		Name: "PeeringPartner", Group: Desired,
		Doc: "An external network we peer with at edge POPs.",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true},
			{Name: "asn", Kind: RelationField, Target: "ASN", OnDelete: relstore.Restrict},
		},
	})
	r.MustRegister(Model{
		Name: "PeeringInterconnect", Group: Desired,
		Doc: "A peering or transit attachment on a peering router.",
		Fields: []Field{
			{Name: "partner", Kind: RelationField, Target: "PeeringPartner", OnDelete: relstore.Cascade},
			{Name: "device", Kind: RelationField, Target: "Device", OnDelete: relstore.Cascade},
			{Name: "kind", Type: relstore.ColString, Validate: ValidateOneOf("peering", "transit")},
			{Name: "v6_session", Kind: RelationField, Target: "BgpV6Session", OnDelete: relstore.SetNull, Nullable: true},
			{Name: "v4_session", Kind: RelationField, Target: "BgpV4Session", OnDelete: relstore.SetNull, Nullable: true},
		},
	})

	// --- optical transport (§2.3) ---
	r.MustRegister(Model{
		Name: "OpticalLineSystem", Group: Desired,
		Doc: "A long-haul optical line system connecting backbone locations.",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true},
			{Name: "a_site", Kind: RelationField, Target: "Site", OnDelete: relstore.Restrict, ReverseName: "optical_systems_a"},
			{Name: "z_site", Kind: RelationField, Target: "Site", OnDelete: relstore.Restrict, ReverseName: "optical_systems_z"},
		},
	})
	r.MustRegister(Model{
		Name: "OpticalChannel", Group: Desired,
		Doc: "A wavelength on an optical line system carrying one circuit.",
		Fields: []Field{
			{Name: "line_system", Kind: RelationField, Target: "OpticalLineSystem", OnDelete: relstore.Cascade},
			{Name: "wavelength_nm", Type: relstore.ColInt},
			{Name: "circuit", Kind: RelationField, Target: "Circuit", OnDelete: relstore.SetNull, Nullable: true},
		},
	})

	// --- consoles and assets ---
	r.MustRegister(Model{
		Name: "ConsoleServer", Group: Desired,
		Doc: "An out-of-band console server at a site.",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true},
			{Name: "site", Kind: RelationField, Target: "Site", OnDelete: relstore.Restrict},
		},
	})
	r.MustRegister(Model{
		Name: "ConsolePort", Group: Desired,
		Doc: "A console server port cabled to a device's console.",
		Fields: []Field{
			{Name: "server", Kind: RelationField, Target: "ConsoleServer", OnDelete: relstore.Cascade},
			{Name: "port", Type: relstore.ColInt},
			{Name: "device", Kind: RelationField, Target: "Device", OnDelete: relstore.SetNull, Nullable: true},
		},
	})
	r.MustRegister(Model{
		Name: "Asset", Group: Desired,
		Doc: "Asset-management record for a device; asset_url is derived on the fly (§6.1, Logic Changes).",
		Fields: []Field{
			{Name: "tag", Type: relstore.ColString, Unique: true},
			{Name: "device", Kind: RelationField, Target: "Device", OnDelete: relstore.SetNull, Nullable: true},
			{Name: "purchase_order", Type: relstore.ColString, Nullable: true},
		},
	})

	// --- templates and change tracking ---
	r.MustRegister(Model{
		Name: "TopologyTemplate", Group: Desired,
		Doc: "A stored topology template (Fig. 7) from which clusters are materialized.",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true},
			{Name: "version", Type: relstore.ColInt},
			{Name: "body", Type: relstore.ColString},
		},
	})
	r.MustRegister(Model{
		Name: "ConfigTemplate", Group: Desired,
		Doc: "A vendor-specific config template reference (stored in the config repository, §5.2).",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true},
			{Name: "vendor", Kind: RelationField, Target: "Vendor", OnDelete: relstore.Restrict},
			{Name: "role", Type: relstore.ColString},
			{Name: "repo_path", Type: relstore.ColString},
		},
	})
	r.MustRegister(Model{
		Name: "DesignChange", Group: Desired,
		Doc: "An atomic human-specified design change, tracked with employee and ticket IDs (§5.1.3, §6.2).",
		Fields: []Field{
			{Name: "employee_id", Type: relstore.ColString, Validate: ValidateNonEmpty},
			{Name: "ticket_id", Type: relstore.ColString, Validate: ValidateNonEmpty},
			{Name: "description", Type: relstore.ColString},
			{Name: "domain", Type: relstore.ColString, Validate: ValidateOneOf("pop", "dc", "backbone")},
			{Name: "created_unix", Type: relstore.ColInt},
			{Name: "num_created", Type: relstore.ColInt},
			{Name: "num_modified", Type: relstore.ColInt},
			{Name: "num_deleted", Type: relstore.ColInt},
		},
	})
	r.MustRegister(Model{
		Name: "DesignChangeEntry", Group: Desired,
		Doc: "One object touched by a design change, by model and action.",
		Fields: []Field{
			{Name: "change", Kind: RelationField, Target: "DesignChange", OnDelete: relstore.Cascade},
			{Name: "model_name", Type: relstore.ColString},
			{Name: "object_id", Type: relstore.ColInt},
			{Name: "action", Type: relstore.ColString, Validate: ValidateOneOf("create", "modify", "delete")},
		},
	})
}

func registerDerived(r *Registry) {
	r.MustRegister(Model{
		Name: "DerivedDevice", Group: Derived,
		Doc: "Operational view of a device, populated by active monitoring (§5.4.2).",
		Fields: []Field{
			{Name: "name", Type: relstore.ColString, Unique: true},
			{Name: "vendor", Type: relstore.ColString, Nullable: true},
			{Name: "os_version", Type: relstore.ColString, Nullable: true},
			{Name: "uptime_s", Type: relstore.ColInt},
			{Name: "last_seen_unix", Type: relstore.ColInt},
		},
	})
	r.MustRegister(Model{
		Name: "DerivedInterface", Group: Derived,
		Doc: "Operational view of an interface; carries oper_status, the §4.1.2 example of a Derived-only attribute.",
		Fields: []Field{
			{Name: "device_name", Type: relstore.ColString, Indexed: true},
			{Name: "name", Type: relstore.ColString},
			{Name: "oper_status", Type: relstore.ColString, Validate: ValidateOneOf("up", "down")},
			{Name: "speed_mbps", Type: relstore.ColInt},
			{Name: "last_change_unix", Type: relstore.ColInt},
		},
	})
	r.MustRegister(Model{
		Name: "DerivedLldpNeighbor", Group: Derived,
		Doc: "One LLDP adjacency collected from a device.",
		Fields: []Field{
			{Name: "device_name", Type: relstore.ColString, Indexed: true},
			{Name: "interface_name", Type: relstore.ColString},
			{Name: "neighbor_device", Type: relstore.ColString},
			{Name: "neighbor_interface", Type: relstore.ColString},
		},
	})
	r.MustRegister(Model{
		Name: "DerivedCircuit", Group: Derived,
		Doc: "A circuit inferred from matching LLDP data on both ends (§4.1.2).",
		Fields: []Field{
			{Name: "a_device", Type: relstore.ColString},
			{Name: "a_interface", Type: relstore.ColString},
			{Name: "z_device", Type: relstore.ColString},
			{Name: "z_interface", Type: relstore.ColString},
			{Name: "source", Type: relstore.ColString, Validate: ValidateOneOf("lldp")},
		},
	})
	r.MustRegister(Model{
		Name: "DerivedBgpSession", Group: Derived,
		Doc: "Operational state of a BGP session collected from a device.",
		Fields: []Field{
			{Name: "device_name", Type: relstore.ColString, Indexed: true},
			{Name: "peer_addr", Type: relstore.ColString},
			{Name: "family", Type: relstore.ColString, Validate: ValidateOneOf("v4", "v6")},
			{Name: "state", Type: relstore.ColString},
		},
	})
	r.MustRegister(Model{
		Name: "DerivedConfig", Group: Derived,
		Doc: "Fingerprint of the running config last collected from a device (§5.4.3).",
		Fields: []Field{
			{Name: "device_name", Type: relstore.ColString, Unique: true},
			{Name: "config_hash", Type: relstore.ColString},
			{Name: "revision", Type: relstore.ColString, Nullable: true},
			{Name: "collected_unix", Type: relstore.ColInt},
			{Name: "conforms", Type: relstore.ColBool},
		},
	})
	r.MustRegister(Model{
		Name: "OperationalEvent", Group: Derived,
		Doc: "A notable operational event (reboot, linecard removal, config change) from passive monitoring.",
		Fields: []Field{
			{Name: "device_name", Type: relstore.ColString},
			{Name: "kind", Type: relstore.ColString},
			{Name: "detail", Type: relstore.ColString, Nullable: true},
			{Name: "urgency", Type: relstore.ColString, Nullable: true},
			{Name: "at_unix", Type: relstore.ColInt},
		},
	})
}
