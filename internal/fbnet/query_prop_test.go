package fbnet

import (
	"fmt"
	"math/rand"
	"testing"
)

// Property tests over the query algebra: for any generated predicates and
// any object population, the boolean identities hold — De Morgan, double
// negation, and And/Or idempotence — so composed expressions behave like
// their truth tables (§4.2.1: "multiple expressions can be composed using
// logical operators to form a large, complex query").

// seedPopulation creates devices with varied roles/sites for querying.
func seedPopulation(t testing.TB, s *Store, r *rand.Rand, n int) {
	t.Helper()
	_, err := s.Mutate(func(m *Mutation) error {
		region, err := m.Create("Region", map[string]any{"name": "r1"})
		if err != nil {
			return err
		}
		var sites []int64
		for _, name := range []string{"pop1", "pop2", "dc1"} {
			kind := "pop"
			if name == "dc1" {
				kind = "dc"
			}
			id, err := m.Create("Site", map[string]any{"name": name, "kind": kind, "region": region})
			if err != nil {
				return err
			}
			sites = append(sites, id)
		}
		v, err := m.Create("Vendor", map[string]any{"name": "v1", "syntax": "vendor1"})
		if err != nil {
			return err
		}
		hw, err := m.Create("HardwareProfile", map[string]any{
			"name": "p", "vendor": v, "num_slots": 2, "ports_per_linecard": 8, "port_speed_mbps": 10000})
		if err != nil {
			return err
		}
		roles := []string{"pr", "psw", "tor", "dr"}
		for i := 0; i < n; i++ {
			fields := map[string]any{
				"name":        fmt.Sprintf("dev%03d", i),
				"role":        roles[r.Intn(len(roles))],
				"site":        sites[r.Intn(len(sites))],
				"hw_profile":  hw,
				"drain_state": []string{"drained", "undrained"}[r.Intn(2)],
			}
			if r.Intn(2) == 0 {
				fields["mgmt_ip"] = fmt.Sprintf("10.0.%d.%d", r.Intn(4), r.Intn(250)+1)
			}
			if _, err := m.Create("Device", fields); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// randPredicate builds a random atomic query over Device fields.
func randPredicate(r *rand.Rand) Query {
	switch r.Intn(7) {
	case 0:
		return Eq("role", []string{"pr", "psw", "tor", "dr"}[r.Intn(4)])
	case 1:
		return Ne("drain_state", "drained")
	case 2:
		return Contains("name", fmt.Sprintf("%d", r.Intn(10)))
	case 3:
		return Eq("site.kind", []string{"pop", "dc"}[r.Intn(2)])
	case 4:
		return IsNull("mgmt_ip")
	case 5:
		return Gt("id", int64(r.Intn(40)))
	default:
		return Regexp("name", fmt.Sprintf("dev0%d.", r.Intn(10)))
	}
}

func idsOfFind(t *testing.T, s *Store, q Query) map[int64]bool {
	t.Helper()
	objs, err := s.Find("Device", q)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int64]bool, len(objs))
	for _, o := range objs {
		out[o.ID] = true
	}
	return out
}

func sameIDs(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// randPlannable builds a random query the planner can answer from an
// index: id literals, the unique name index, the role/drain_state
// secondary indexes, the site fk refIndex, dotted ref-index paths, and
// And-compositions of those — every strategy planIndexed implements.
func randPlannable(r *rand.Rand, siteIDs []int64) Query {
	roles := []string{"pr", "psw", "tor", "dr", "bb"}
	name := func() string { return fmt.Sprintf("dev%03d", r.Intn(90)) }
	switch r.Intn(10) {
	case 0:
		return Eq("id", int64(r.Intn(90)))
	case 1:
		return In("id", int64(r.Intn(90)), r.Intn(90), "bogus")
	case 2:
		return Eq("name", name())
	case 3:
		return In("name", name(), name(), "missing")
	case 4:
		return Eq("role", roles[r.Intn(len(roles))])
	case 5:
		return In("role", roles[r.Intn(len(roles))], roles[r.Intn(len(roles))])
	case 6:
		return Eq("site", siteIDs[r.Intn(len(siteIDs))])
	case 7:
		return Eq("site.name", []string{"pop1", "pop2", "dc1", "nope"}[r.Intn(4)])
	case 8:
		return Eq("site.region.name", []string{"r1", "r2"}[r.Intn(2)])
	default:
		return And(randPlannable(r, siteIDs), randPredicate(r))
	}
}

// orderedIDsOfFind returns matching ids in result order.
func orderedIDsOfFind(t *testing.T, s *Store, q Query) []int64 {
	t.Helper()
	objs, err := s.Find("Device", q)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, len(objs))
	for i, o := range objs {
		out[i] = o.ID
	}
	return out
}

// TestQuickPlannerEquivalence: on randomized populations, every planned
// query path returns exactly the rows — in the same id order — that the
// full scan returns, before and after random mutations that exercise
// index maintenance.
func TestQuickPlannerEquivalence(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := newTestStore(t)
		seedPopulation(t, s, r, 40+r.Intn(40))
		sites, err := s.Find("Site", All())
		if err != nil {
			t.Fatal(err)
		}
		siteIDs := make([]int64, len(sites))
		for i, o := range sites {
			siteIDs[i] = o.ID
		}
		check := func(round string) {
			for trial := 0; trial < 60; trial++ {
				q := randPlannable(r, siteIDs)
				planned := orderedIDsOfFind(t, s, q)
				scanned := orderedIDsOfFind(t, s, Or(q)) // Or defeats the planner
				if len(planned) != len(scanned) {
					t.Fatalf("seed %d %s trial %d: %s: planned %v, scan %v", seed, round, trial, q, planned, scanned)
				}
				for i := range planned {
					if planned[i] != scanned[i] {
						t.Fatalf("seed %d %s trial %d: %s: planned %v, scan %v", seed, round, trial, q, planned, scanned)
					}
				}
			}
		}
		check("fresh")
		// Random churn: moves in the unique, secondary, and ref indexes.
		devs, err := s.Find("Device", All())
		if err != nil {
			t.Fatal(err)
		}
		gone := map[int64]bool{}
		_, err = s.Mutate(func(m *Mutation) error {
			for i := 0; i < 15 && i < len(devs); i++ {
				d := devs[r.Intn(len(devs))]
				if gone[d.ID] {
					continue
				}
				switch r.Intn(3) {
				case 0:
					if err := m.Update("Device", d.ID, map[string]any{
						"role": []string{"pr", "psw", "tor", "dr"}[r.Intn(4)]}); err != nil {
						return err
					}
				case 1:
					if err := m.Update("Device", d.ID, map[string]any{
						"site": siteIDs[r.Intn(len(siteIDs))]}); err != nil {
						return err
					}
				case 2:
					if err := m.Delete("Device", d.ID); err != nil {
						return err
					}
					gone[d.ID] = true
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		check("churned")
	}
}

func TestQuickQueryAlgebra(t *testing.T) {
	s := newTestStore(t)
	r := rand.New(rand.NewSource(42))
	seedPopulation(t, s, r, 60)
	total := idsOfFind(t, s, All())
	for trial := 0; trial < 60; trial++ {
		p := randPredicate(r)
		q := randPredicate(r)
		// De Morgan: !(p || q) == !p && !q
		left := idsOfFind(t, s, Not(Or(p, q)))
		right := idsOfFind(t, s, And(Not(p), Not(q)))
		if !sameIDs(left, right) {
			t.Fatalf("trial %d: De Morgan broken for %s / %s", trial, p, q)
		}
		// De Morgan dual: !(p && q) == !p || !q
		left = idsOfFind(t, s, Not(And(p, q)))
		right = idsOfFind(t, s, Or(Not(p), Not(q)))
		if !sameIDs(left, right) {
			t.Fatalf("trial %d: dual De Morgan broken for %s / %s", trial, p, q)
		}
		// Double negation.
		if !sameIDs(idsOfFind(t, s, p), idsOfFind(t, s, Not(Not(p)))) {
			t.Fatalf("trial %d: double negation broken for %s", trial, p)
		}
		// Idempotence.
		if !sameIDs(idsOfFind(t, s, p), idsOfFind(t, s, And(p, p))) {
			t.Fatalf("trial %d: And idempotence broken for %s", trial, p)
		}
		// Complement partitions the population.
		pSet := idsOfFind(t, s, p)
		notP := idsOfFind(t, s, Not(p))
		if len(pSet)+len(notP) != len(total) {
			t.Fatalf("trial %d: %s and its complement don't partition (%d + %d != %d)",
				trial, p, len(pSet), len(notP), len(total))
		}
		for id := range pSet {
			if notP[id] {
				t.Fatalf("trial %d: id %d in both %s and its complement", trial, id, p)
			}
		}
	}
}
