package fbnet

import (
	"fmt"
	"testing"

	"github.com/robotron-net/robotron/internal/relstore"
)

// bigStore seeds n devices for planner benchmarks/tests.
func bigStore(t testing.TB, n int) *Store {
	t.Helper()
	s := newTestStore(t)
	_, err := s.Mutate(func(m *Mutation) error {
		region, _ := m.Create("Region", map[string]any{"name": "r"})
		site, _ := m.Create("Site", map[string]any{"name": "pop1", "kind": "pop", "region": region})
		v, _ := m.Create("Vendor", map[string]any{"name": "v1", "syntax": "vendor1"})
		hw, _ := m.Create("HardwareProfile", map[string]any{
			"name": "p", "vendor": v, "num_slots": 2, "ports_per_linecard": 8, "port_speed_mbps": 10000})
		for i := 0; i < n; i++ {
			if _, err := m.Create("Device", map[string]any{
				"name": fmt.Sprintf("dev%05d", i), "role": "psw", "site": site,
				"hw_profile": hw, "drain_state": "undrained",
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPlannerMatchesScan: the indexed fast path returns exactly what the
// scan would, including misses and And-composition.
func TestPlannerMatchesScan(t *testing.T) {
	s := bigStore(t, 200)
	cases := []Query{
		Eq("name", "dev00042"),
		Eq("name", "missing"),
		Eq("id", int64(5)),
		Eq("id", int64(999999)),
		And(Eq("name", "dev00042"), Eq("role", "psw")),
		And(Eq("name", "dev00042"), Eq("role", "pr")),  // name hits, role filters out
		And(Eq("role", "psw"), Eq("name", "dev00007")), // indexable conjunct second
	}
	for _, q := range cases {
		planned, err := s.Find("Device", q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		// Reference: force the scan by wrapping in a non-indexable Or.
		scanned, err := s.Find("Device", Or(q))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(planned) != len(scanned) {
			t.Errorf("%s: planned %d rows, scan %d", q, len(planned), len(scanned))
			continue
		}
		for i := range planned {
			if planned[i].ID != scanned[i].ID {
				t.Errorf("%s: row %d differs: %d vs %d", q, i, planned[i].ID, scanned[i].ID)
			}
		}
	}
}

// TestPlannerInsideMutation: the fast path also works against uncommitted
// transaction state.
func TestPlannerInsideMutation(t *testing.T) {
	s := bigStore(t, 10)
	_, err := s.Mutate(func(m *Mutation) error {
		id, err := m.Create("Region", map[string]any{"name": "fresh"})
		if err != nil {
			return err
		}
		obj, err := m.FindOne("Region", Eq("name", "fresh"))
		if err != nil {
			return err
		}
		if obj.ID != id {
			return fmt.Errorf("planner missed uncommitted unique row")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPlannerNonUniqueFallsBack: Eq on a non-unique field scans and finds
// everything.
func TestPlannerNonUniqueFallsBack(t *testing.T) {
	s := bigStore(t, 50)
	objs, err := s.Find("Device", Eq("role", "psw"))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 50 {
		t.Errorf("non-unique Eq found %d rows, want 50", len(objs))
	}
}

var sinkObjs []Object

func BenchmarkFindOneIndexed(b *testing.B) {
	s := bigStore(b, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		objs, err := s.Find("Device", Eq("name", "dev02500"))
		if err != nil || len(objs) != 1 {
			b.Fatalf("%v %d", err, len(objs))
		}
		sinkObjs = objs
	}
}

func BenchmarkFindOneScan(b *testing.B) {
	s := bigStore(b, 5000)
	// Or() defeats the planner, forcing the scan path.
	q := Or(Eq("name", "dev02500"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		objs, err := s.Find("Device", q)
		if err != nil || len(objs) != 1 {
			b.Fatalf("%v %d", err, len(objs))
		}
		sinkObjs = objs
	}
}

// Guard against relstore.ErrNoRow leaking through the planner as a result.
func TestPlannerIdMissVsDownServer(t *testing.T) {
	s := bigStore(t, 5)
	objs, err := s.Find("Device", Eq("id", int64(12345)))
	if err != nil || len(objs) != 0 {
		t.Errorf("missing id: %v, %d rows", err, len(objs))
	}
	s.DB().SetDown(true)
	_, err = s.Find("Device", Eq("id", int64(1)))
	if err == nil {
		t.Error("down server should error, not return empty")
	}
	s.DB().SetDown(false)
	_ = relstore.ErrNoRow
}
