package fbnet

import (
	"fmt"
	"testing"

	"github.com/robotron-net/robotron/internal/relstore"
)

// bigStore seeds n devices for planner benchmarks/tests.
func bigStore(t testing.TB, n int) *Store {
	t.Helper()
	s := newTestStore(t)
	_, err := s.Mutate(func(m *Mutation) error {
		region, _ := m.Create("Region", map[string]any{"name": "r"})
		site, _ := m.Create("Site", map[string]any{"name": "pop1", "kind": "pop", "region": region})
		v, _ := m.Create("Vendor", map[string]any{"name": "v1", "syntax": "vendor1"})
		hw, _ := m.Create("HardwareProfile", map[string]any{
			"name": "p", "vendor": v, "num_slots": 2, "ports_per_linecard": 8, "port_speed_mbps": 10000})
		for i := 0; i < n; i++ {
			if _, err := m.Create("Device", map[string]any{
				"name": fmt.Sprintf("dev%05d", i), "role": "psw", "site": site,
				"hw_profile": hw, "drain_state": "undrained", "mgmt_ip": "10.9.9.9",
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPlannerMatchesScan: the indexed fast path returns exactly what the
// scan would, including misses and And-composition.
func TestPlannerMatchesScan(t *testing.T) {
	s := bigStore(t, 200)
	cases := []Query{
		Eq("name", "dev00042"),
		Eq("name", "missing"),
		Eq("id", int64(5)),
		Eq("id", int64(999999)),
		Eq("id", "not-an-id"),
		And(Eq("name", "dev00042"), Eq("role", "psw")),
		And(Eq("name", "dev00042"), Eq("role", "pr")),  // name hits, role filters out
		And(Eq("role", "psw"), Eq("name", "dev00007")), // indexable conjunct second
		// secondary index
		Eq("role", "psw"),
		Eq("role", "pr"),
		Eq("drain_state", "drained"),
		// In over unique / secondary / id indexes
		In("name", "dev00001", "dev00002", "missing"),
		In("name"),
		In("id", int64(1), 2, int64(999999)),
		In("role", "psw", "pr"),
		// dotted paths answered backward through ref indexes
		Eq("site.name", "pop1"),
		Eq("site.name", "nope"),
		Eq("site.region.name", "r"),
		Eq("site.kind", "pop"),
		Eq("hw_profile.vendor.name", "v1"),
	}
	for _, q := range cases {
		planned, err := s.Find("Device", q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		// Reference: force the scan by wrapping in a non-indexable Or.
		scanned, err := s.Find("Device", Or(q))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(planned) != len(scanned) {
			t.Errorf("%s: planned %d rows, scan %d", q, len(planned), len(scanned))
			continue
		}
		for i := range planned {
			if planned[i].ID != scanned[i].ID {
				t.Errorf("%s: row %d differs: %d vs %d", q, i, planned[i].ID, scanned[i].ID)
			}
		}
	}
}

// TestPlannerInsideMutation: the fast path also works against uncommitted
// transaction state.
func TestPlannerInsideMutation(t *testing.T) {
	s := bigStore(t, 10)
	_, err := s.Mutate(func(m *Mutation) error {
		id, err := m.Create("Region", map[string]any{"name": "fresh"})
		if err != nil {
			return err
		}
		obj, err := m.FindOne("Region", Eq("name", "fresh"))
		if err != nil {
			return err
		}
		if obj.ID != id {
			return fmt.Errorf("planner missed uncommitted unique row")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPlannerUnindexedFallsBack: Eq on a field with no index of any kind
// (mgmt_ip) scans and finds everything.
func TestPlannerUnindexedFallsBack(t *testing.T) {
	s := bigStore(t, 50)
	objs, err := s.Find("Device", Eq("mgmt_ip", "10.9.9.9"))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 50 {
		t.Errorf("unindexed Eq found %d rows, want 50", len(objs))
	}
}

// TestPlannerRelationEq: Eq on a relation field is answered from the fk
// refIndex, including inside a mutation seeing uncommitted rows.
func TestPlannerRelationEq(t *testing.T) {
	s := bigStore(t, 20)
	site, err := s.FindOne("Site", Eq("name", "pop1"))
	if err != nil {
		t.Fatal(err)
	}
	objs, err := s.Find("Device", Eq("site", site.ID))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 20 {
		t.Fatalf("Eq(site) found %d devices, want 20", len(objs))
	}
	scanned, err := s.Find("Device", Or(Eq("site", site.ID)))
	if err != nil {
		t.Fatal(err)
	}
	if len(scanned) != len(objs) {
		t.Fatalf("planned %d != scanned %d", len(objs), len(scanned))
	}
	_, err = s.Mutate(func(m *Mutation) error {
		hw, err := m.FindOne("HardwareProfile", Eq("name", "p"))
		if err != nil {
			return err
		}
		if _, err := m.Create("Device", map[string]any{
			"name": "fresh", "role": "psw", "site": site.ID,
			"hw_profile": hw.ID, "drain_state": "undrained",
		}); err != nil {
			return err
		}
		in, err := m.Find("Device", Eq("site", site.ID))
		if err != nil {
			return err
		}
		if len(in) != 21 {
			return fmt.Errorf("planner missed uncommitted fk row: got %d, want 21", len(in))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

var sinkObjs []Object

func BenchmarkFindOneIndexed(b *testing.B) {
	s := bigStore(b, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		objs, err := s.Find("Device", Eq("name", "dev02500"))
		if err != nil || len(objs) != 1 {
			b.Fatalf("%v %d", err, len(objs))
		}
		sinkObjs = objs
	}
}

func BenchmarkFindOneScan(b *testing.B) {
	s := bigStore(b, 5000)
	// Or() defeats the planner, forcing the scan path.
	q := Or(Eq("name", "dev02500"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		objs, err := s.Find("Device", q)
		if err != nil || len(objs) != 1 {
			b.Fatalf("%v %d", err, len(objs))
		}
		sinkObjs = objs
	}
}

// multiSiteStore seeds many sites of fixed size so relationship lookups
// have a constant-size answer while the tables grow: devsPerSite devices
// per site, 2 linecards per device.
func multiSiteStore(tb testing.TB, sites, devsPerSite int) *Store {
	tb.Helper()
	s := newTestStore(tb)
	_, err := s.Mutate(func(m *Mutation) error {
		region, _ := m.Create("Region", map[string]any{"name": "r"})
		v, _ := m.Create("Vendor", map[string]any{"name": "v1", "syntax": "vendor1"})
		hw, _ := m.Create("HardwareProfile", map[string]any{
			"name": "p", "vendor": v, "num_slots": 2, "ports_per_linecard": 8, "port_speed_mbps": 10000})
		for si := 0; si < sites; si++ {
			site, err := m.Create("Site", map[string]any{
				"name": fmt.Sprintf("site%05d", si), "kind": "pop", "region": region})
			if err != nil {
				return err
			}
			for di := 0; di < devsPerSite; di++ {
				dev, err := m.Create("Device", map[string]any{
					"name": fmt.Sprintf("dev%05d.%05d", di, si), "role": "psw",
					"site": site, "hw_profile": hw, "drain_state": "undrained",
				})
				if err != nil {
					return err
				}
				for slot := 0; slot < 2; slot++ {
					if _, err := m.Create("Linecard", map[string]any{"slot": slot, "device": dev}); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// BenchmarkPlannerSiteDevices measures Eq("site.name", x) — a backward
// ref-index plan returning a constant 8 devices — against the scan, at
// growing table sizes. The indexed time should stay flat while the scan
// grows linearly.
func BenchmarkPlannerSiteDevices(b *testing.B) {
	for _, sites := range []int{50, 500} {
		s := multiSiteStore(b, sites, 8)
		q := Eq("site.name", "site00000")
		b.Run(fmt.Sprintf("indexed/sites=%d", sites), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				objs, err := s.Find("Device", q)
				if err != nil || len(objs) != 8 {
					b.Fatalf("%v %d", err, len(objs))
				}
				sinkObjs = objs
			}
		})
		b.Run(fmt.Sprintf("scan/sites=%d", sites), func(b *testing.B) {
			b.ReportAllocs()
			scan := Or(q) // defeats the planner
			for i := 0; i < b.N; i++ {
				objs, err := s.Find("Device", scan)
				if err != nil || len(objs) != 8 {
					b.Fatalf("%v %d", err, len(objs))
				}
				sinkObjs = objs
			}
		})
	}
}

// BenchmarkPlannerDeviceLinecards measures the Eq("device.name", x)
// relationship lookup on Linecard — the paper's "linecards of device X"
// access — indexed vs scan at growing table sizes.
func BenchmarkPlannerDeviceLinecards(b *testing.B) {
	for _, sites := range []int{50, 500} {
		s := multiSiteStore(b, sites, 8)
		q := Eq("device.name", "dev00000.00000")
		b.Run(fmt.Sprintf("indexed/sites=%d", sites), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				objs, err := s.Find("Linecard", q)
				if err != nil || len(objs) != 2 {
					b.Fatalf("%v %d", err, len(objs))
				}
				sinkObjs = objs
			}
		})
		b.Run(fmt.Sprintf("scan/sites=%d", sites), func(b *testing.B) {
			b.ReportAllocs()
			scan := Or(q)
			for i := 0; i < b.N; i++ {
				objs, err := s.Find("Linecard", scan)
				if err != nil || len(objs) != 2 {
					b.Fatalf("%v %d", err, len(objs))
				}
				sinkObjs = objs
			}
		})
	}
}

// Guard against relstore.ErrNoRow leaking through the planner as a result.
func TestPlannerIdMissVsDownServer(t *testing.T) {
	s := bigStore(t, 5)
	objs, err := s.Find("Device", Eq("id", int64(12345)))
	if err != nil || len(objs) != 0 {
		t.Errorf("missing id: %v, %d rows", err, len(objs))
	}
	s.DB().SetDown(true)
	_, err = s.Find("Device", Eq("id", int64(1)))
	if err == nil {
		t.Error("down server should error, not return empty")
	}
	s.DB().SetDown(false)
	_ = relstore.ErrNoRow
}
