package fbnet

import (
	"fmt"
	"strings"
	"testing"

	"github.com/robotron-net/robotron/internal/relstore"
)

func newTestStore(t testing.TB) *Store {
	t.Helper()
	db := relstore.NewDB("master")
	s, err := Open(db, NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// seedFig4 builds the PSWa-PR1 portmap of the paper's Figure 4: two
// devices, a 20G link group of two circuits, aggregated interfaces with
// /127 prefixes, and an eBGP session.
func seedFig4(t testing.TB, s *Store) map[string]int64 {
	t.Helper()
	ids := map[string]int64{}
	_, err := s.Mutate(func(m *Mutation) error {
		region, err := m.Create("Region", map[string]any{"name": "apac"})
		if err != nil {
			return err
		}
		site, err := m.Create("Site", map[string]any{"name": "pop1", "kind": "pop", "region": region})
		if err != nil {
			return err
		}
		v1, err := m.Create("Vendor", map[string]any{"name": "vendorA", "syntax": "vendor1"})
		if err != nil {
			return err
		}
		hw, err := m.Create("HardwareProfile", map[string]any{
			"name": "Router_Vendor1", "vendor": v1, "num_slots": 4, "ports_per_linecard": 8, "port_speed_mbps": 10000,
		})
		if err != nil {
			return err
		}
		psw, err := m.Create("Device", map[string]any{
			"name": "psw-a.pop1", "role": "psw", "site": site, "hw_profile": hw, "drain_state": "undrained",
		})
		if err != nil {
			return err
		}
		pr, err := m.Create("Device", map[string]any{
			"name": "pr1.pop1", "role": "pr", "site": site, "hw_profile": hw, "drain_state": "undrained",
		})
		if err != nil {
			return err
		}
		ids["psw"], ids["pr"] = psw, pr

		mkIfaces := func(dev int64, devTag string) (agg int64, pifs []int64, err error) {
			lc, err := m.Create("Linecard", map[string]any{"slot": 1, "device": dev})
			if err != nil {
				return 0, nil, err
			}
			agg, err = m.Create("AggregatedInterface", map[string]any{
				"name": "ae0", "number": 0, "mtu": 9192, "device": dev,
			})
			if err != nil {
				return 0, nil, err
			}
			for p := 1; p <= 2; p++ {
				pif, err := m.Create("PhysicalInterface", map[string]any{
					"name": fmt.Sprintf("et1/%d", p), "speed_mbps": 10000,
					"linecard": lc, "agg_interface": agg,
				})
				if err != nil {
					return 0, nil, err
				}
				pifs = append(pifs, pif)
				ids[fmt.Sprintf("%s_pif%d", devTag, p)] = pif
			}
			return agg, pifs, nil
		}
		pswAgg, pswPifs, err := mkIfaces(psw, "psw")
		if err != nil {
			return err
		}
		prAgg, prPifs, err := mkIfaces(pr, "pr")
		if err != nil {
			return err
		}
		ids["psw_agg"], ids["pr_agg"] = pswAgg, prAgg

		lg, err := m.Create("LinkGroup", map[string]any{
			"name": "psw-a.pop1--pr1.pop1", "a_device": psw, "z_device": pr, "capacity_mbps": 20000,
		})
		if err != nil {
			return err
		}
		ids["lg"] = lg
		for i := 0; i < 2; i++ {
			cir, err := m.Create("Circuit", map[string]any{
				"circuit_id":  fmt.Sprintf("cir-%d", i+1),
				"a_interface": pswPifs[i], "z_interface": prPifs[i],
				"link_group": lg, "status": "production",
			})
			if err != nil {
				return err
			}
			ids[fmt.Sprintf("cir%d", i+1)] = cir
		}
		pswPfx, err := m.Create("V6Prefix", map[string]any{
			"prefix": "2401:db00::/127", "interface": pswAgg, "purpose": "p2p",
		})
		if err != nil {
			return err
		}
		prPfx, err := m.Create("V6Prefix", map[string]any{
			"prefix": "2401:db00::1/127", "interface": prAgg, "purpose": "p2p",
		})
		if err != nil {
			return err
		}
		ids["psw_pfx"], ids["pr_pfx"] = pswPfx, prPfx
		bgp, err := m.Create("BgpV6Session", map[string]any{
			"local_device": psw, "remote_device": pr, "local_prefix": pswPfx,
			"remote_addr": "2401:db00::1", "local_as": 65001, "remote_as": 65000,
			"session_type": "ebgp",
		})
		if err != nil {
			return err
		}
		ids["bgp"] = bgp
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestRegistryReverseNames(t *testing.T) {
	reg := NewCatalog()
	// Linecard.device -> Device gains reverse "linecards" (the paper's
	// §4.2.1 example).
	var found bool
	for _, rv := range reg.Reverses("Device") {
		if rv.name == "linecards" && rv.model == "Linecard" {
			found = true
		}
	}
	if !found {
		t.Error(`Device should expose reverse connection "linecards"`)
	}
}

func TestRegistryRejectsBadModels(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Model{Name: ""}); err == nil {
		t.Error("empty name should fail")
	}
	r.MustRegister(Model{Name: "A", Fields: []Field{{Name: "x", Type: relstore.ColString}}})
	if err := r.Register(Model{Name: "A"}); err == nil {
		t.Error("duplicate model should fail")
	}
	if err := r.Register(Model{Name: "B", Fields: []Field{
		{Name: "r", Kind: RelationField, Target: "Missing"},
	}}); err == nil {
		t.Error("unknown target should fail")
	}
	if err := r.Register(Model{Name: "C", Fields: []Field{
		{Name: "r1", Kind: RelationField, Target: "A"},
		{Name: "r2", Kind: RelationField, Target: "A"},
	}}); err == nil || !strings.Contains(err.Error(), "reverse name") {
		t.Errorf("ambiguous reverse names should fail, got %v", err)
	}
	if err := r.Register(Model{Name: "D", Fields: []Field{
		{Name: "x", Type: relstore.ColString}, {Name: "x", Type: relstore.ColInt},
	}}); err == nil {
		t.Error("duplicate field should fail")
	}
}

func TestToSnakeAndReverseNames(t *testing.T) {
	cases := map[string]string{
		"PhysicalInterface": "physical_interface",
		"BgpV6Session":      "bgp_v6_session",
		"Device":            "device",
		"ASN":               "asn",
	}
	for in, want := range cases {
		if got := toSnake(in); got != want {
			t.Errorf("toSnake(%s) = %s, want %s", in, got, want)
		}
	}
	if got := defaultReverseName("PhysicalInterface"); got != "physical_interfaces" {
		t.Errorf("defaultReverseName = %s", got)
	}
	if got := defaultReverseName("RoutingPolicy"); got != "routing_policies" {
		t.Errorf("plural of y = %s", got)
	}
}

func TestCatalogRegisters(t *testing.T) {
	reg := NewCatalog()
	nDesired := len(reg.ModelsInGroup(Desired))
	nDerived := len(reg.ModelsInGroup(Derived))
	if nDesired < 25 {
		t.Errorf("Desired catalog has only %d models", nDesired)
	}
	if nDerived < 6 {
		t.Errorf("Derived catalog has only %d models", nDerived)
	}
	// Principle 2 (§4.1.2): PhysicalInterface has Desired and Derived
	// counterparts; only the Derived one carries oper_status.
	des, _ := reg.Model("PhysicalInterface")
	if _, has := des.Field("oper_status"); has {
		t.Error("Desired PhysicalInterface must not have oper_status")
	}
	der, _ := reg.Model("DerivedInterface")
	if _, has := der.Field("oper_status"); !has {
		t.Error("DerivedInterface must have oper_status")
	}
}

func TestFig4PortmapObjectGraph(t *testing.T) {
	s := newTestStore(t)
	ids := seedFig4(t, s)
	// Indirect read: linecard slot + device name (the paper's read-API
	// example).
	res, err := s.Get("Linecard", []string{"slot", "device.name"}, Eq("device.name", "psw-a.pop1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d linecards, want 1", len(res))
	}
	if res[0].Fields["device.name"] != "psw-a.pop1" || res[0].Fields["slot"] != int64(1) {
		t.Errorf("result = %+v", res[0].Fields)
	}
	// Reverse connection: device.linecards.
	res, err = s.Get("Device", []string{"name", "linecards"}, Eq("id", ids["psw"]))
	if err != nil {
		t.Fatal(err)
	}
	lcs, ok := res[0].Fields["linecards"].([]any)
	if !ok || len(lcs) != 1 {
		t.Errorf("linecards reverse = %#v", res[0].Fields["linecards"])
	}
	// Deep path: circuit -> a_interface -> linecard -> device -> name.
	res, err = s.Get("Circuit", []string{"circuit_id", "a_interface.linecard.device.name"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d circuits", len(res))
	}
	for _, r := range res {
		if r.Fields["a_interface.linecard.device.name"] != "psw-a.pop1" {
			t.Errorf("deep path = %v", r.Fields)
		}
	}
}

func TestQueryOperators(t *testing.T) {
	s := newTestStore(t)
	seedFig4(t, s)
	cases := []struct {
		name string
		q    Query
		want int
	}{
		{"eq", Eq("role", "psw"), 1},
		{"ne", Ne("role", "psw"), 1},
		{"in", In("role", "psw", "pr"), 2},
		{"regexp", Regexp("name", `^pr\d+\.`), 1},
		{"contains", Contains("name", "pop1"), 2},
		{"and", And(Eq("role", "psw"), Contains("name", "pop1")), 1},
		{"or", Or(Eq("role", "psw"), Eq("role", "pr")), 2},
		{"not", Not(Eq("role", "psw")), 1},
		{"all", All(), 2},
		{"nil query", nil, 2},
		{"indirect eq", Eq("site.name", "pop1"), 2},
		{"indirect through region", Eq("site.region.name", "apac"), 2},
		{"no match", Eq("name", "missing"), 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			objs, err := s.Find("Device", c.q)
			if err != nil {
				t.Fatal(err)
			}
			if len(objs) != c.want {
				t.Errorf("got %d devices, want %d", len(objs), c.want)
			}
		})
	}
}

func TestQueryNumericComparisons(t *testing.T) {
	s := newTestStore(t)
	seedFig4(t, s)
	for _, c := range []struct {
		q    Query
		want int
	}{
		{Gt("speed_mbps", 1000), 4},
		{Gt("speed_mbps", 10000), 0},
		{Ge("speed_mbps", 10000), 4},
		{Lt("speed_mbps", 10000), 0},
		{Le("speed_mbps", 10000), 4},
	} {
		objs, err := s.Find("PhysicalInterface", c.q)
		if err != nil {
			t.Fatal(err)
		}
		if len(objs) != c.want {
			t.Errorf("%s: got %d, want %d", c.q, len(objs), c.want)
		}
	}
}

func TestQueryThroughReverseConnection(t *testing.T) {
	s := newTestStore(t)
	seedFig4(t, s)
	// Devices that have a linecard in slot 1: both.
	objs, err := s.Find("Device", Eq("linecards.slot", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Errorf("reverse query matched %d devices, want 2", len(objs))
	}
	// Devices owning aggregated interface ae0 with a /127 v6 prefix.
	objs, err = s.Find("Device", Contains("aggregated_interfaces.v6_prefixes.prefix", "/127"))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Errorf("deep reverse query matched %d devices, want 2", len(objs))
	}
}

func TestQueryIsNull(t *testing.T) {
	s := newTestStore(t)
	ids := seedFig4(t, s)
	objs, err := s.Find("Circuit", IsNull("provider"))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Errorf("IsNull matched %d circuits, want 2", len(objs))
	}
	_ = ids
}

func TestQueryErrors(t *testing.T) {
	s := newTestStore(t)
	seedFig4(t, s)
	if _, err := s.Find("NoSuchModel", All()); err == nil {
		t.Error("unknown model should fail")
	}
	if _, err := s.Find("Device", Eq("bogus_field", 1)); err == nil {
		t.Error("unknown field should fail")
	}
	if _, err := s.Find("Device", Eq("site.bogus", 1)); err == nil {
		t.Error("unknown indirect field should fail")
	}
	if _, err := s.Find("Device", Regexp("name", "(unclosed")); err == nil {
		t.Error("bad regexp should fail")
	}
	if _, err := s.Find("Device", Eq("role.x", 1)); err == nil {
		t.Error("path through value field should fail")
	}
}

func TestMutationRollsBackAtomically(t *testing.T) {
	s := newTestStore(t)
	seedFig4(t, s)
	before, _ := s.Count("Device")
	_, err := s.Mutate(func(m *Mutation) error {
		if _, err := m.Create("Region", map[string]any{"name": "emea"}); err != nil {
			return err
		}
		return fmt.Errorf("simulated failure")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	after, _ := s.Count("Device")
	if before != after {
		t.Error("device count changed despite rollback")
	}
	if n, _ := s.Count("Region"); n != 1 {
		t.Errorf("region count = %d after rollback, want 1", n)
	}
}

func TestMutationChangeStats(t *testing.T) {
	s := newTestStore(t)
	ids := seedFig4(t, s)
	stats, err := s.Mutate(func(m *Mutation) error {
		if err := m.Update("Device", ids["psw"], map[string]any{"drain_state": "drained"}); err != nil {
			return err
		}
		_, err := m.Create("Region", map[string]any{"name": "emea"})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Created) != 1 || len(stats.Modified) != 1 || len(stats.Deleted) != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Total() != 2 {
		t.Errorf("Total = %d", stats.Total())
	}
	by := stats.ByModel()
	if by["Region"] != 1 || by["Device"] != 1 {
		t.Errorf("ByModel = %v", by)
	}
}

func TestDeleteDeviceCascades(t *testing.T) {
	s := newTestStore(t)
	ids := seedFig4(t, s)
	stats, err := s.Mutate(func(m *Mutation) error {
		return m.Delete("Device", ids["psw"])
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cascade: device + linecard + 2 pifs + agg + v6 prefix + bgp session
	// + link group (+ its circuits) are all deleted.
	if len(stats.Deleted) < 7 {
		t.Errorf("cascade deleted only %d objects: %+v", len(stats.Deleted), stats.Deleted)
	}
	if n, _ := s.Count("BgpV6Session"); n != 0 {
		t.Error("BGP session should cascade with its local device")
	}
	if n, _ := s.Count("LinkGroup"); n != 0 {
		t.Error("link group should cascade with its device")
	}
	if n, _ := s.Count("Circuit"); n != 0 {
		t.Error("circuits should cascade with their link group")
	}
	// The PR and its interfaces survive.
	if _, err := s.GetByID("Device", ids["pr"]); err != nil {
		t.Errorf("pr should survive: %v", err)
	}
}

func TestValidatorsEnforced(t *testing.T) {
	s := newTestStore(t)
	ids := seedFig4(t, s)
	cases := []struct {
		name   string
		model  string
		fields map[string]any
	}{
		{"bad v6 prefix", "V6Prefix", map[string]any{"prefix": "10.0.0.0/8", "purpose": "p2p"}},
		{"bad v4 prefix", "V4Prefix", map[string]any{"prefix": "2401:db00::/64", "purpose": "p2p"}},
		{"bad role", "Device", map[string]any{"name": "x", "role": "spine", "site": ids["psw"], "hw_profile": int64(1), "drain_state": "undrained"}},
		{"empty name", "Region", map[string]any{"name": ""}},
		{"bad ip", "Device", map[string]any{"name": "y", "role": "pr", "site": int64(1), "hw_profile": int64(1), "drain_state": "undrained", "mgmt_ip": "not-an-ip"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := s.Mutate(func(m *Mutation) error {
				_, err := m.Create(c.model, c.fields)
				return err
			})
			if err == nil {
				t.Errorf("Create(%s, %v) should fail validation", c.model, c.fields)
			}
		})
	}
}

func TestDuplicatePrefixRejected(t *testing.T) {
	s := newTestStore(t)
	seedFig4(t, s)
	_, err := s.Mutate(func(m *Mutation) error {
		_, err := m.Create("V6Prefix", map[string]any{"prefix": "2401:db00::/127", "purpose": "p2p"})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate prefix should be rejected, got %v", err)
	}
}

func TestFindOne(t *testing.T) {
	s := newTestStore(t)
	seedFig4(t, s)
	obj, err := s.FindOne("Device", Eq("role", "pr"))
	if err != nil {
		t.Fatal(err)
	}
	if obj.String("name") != "pr1.pop1" {
		t.Errorf("FindOne = %+v", obj)
	}
	if _, err := s.FindOne("Device", Eq("role", "bb")); err == nil {
		t.Error("zero matches should fail")
	}
	if _, err := s.FindOne("Device", All()); err == nil {
		t.Error("many matches should fail")
	}
}

func TestMutationSeesUncommitted(t *testing.T) {
	s := newTestStore(t)
	seedFig4(t, s)
	_, err := s.Mutate(func(m *Mutation) error {
		id, err := m.Create("Region", map[string]any{"name": "emea"})
		if err != nil {
			return err
		}
		obj, err := m.FindOne("Region", Eq("name", "emea"))
		if err != nil {
			return fmt.Errorf("uncommitted object invisible inside mutation: %w", err)
		}
		if obj.ID != id {
			return fmt.Errorf("id mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRelatedModelsFig13(t *testing.T) {
	reg := NewCatalog()
	// Device is the hub: many models relate to it.
	rel := reg.RelatedModels("Device")
	if len(rel) < 8 {
		t.Errorf("Device related models = %d (%v), want >= 8", len(rel), rel)
	}
	// Circuit relates to PhysicalInterface (Fig. 5).
	var hasPif bool
	for _, m := range reg.RelatedModels("Circuit") {
		if m == "PhysicalInterface" {
			hasPif = true
		}
	}
	if !hasPif {
		t.Error("Circuit should relate to PhysicalInterface")
	}
	// Self-relations don't count.
	for _, m := range reg.RelatedModels("Device") {
		if m == "Device" {
			t.Error("RelatedModels must exclude the model itself")
		}
	}
}

func TestReadOnlyViewOnReplica(t *testing.T) {
	s := newTestStore(t)
	ids := seedFig4(t, s)
	rep := relstore.NewReplica(s.DB(), "replica1")
	if err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	view := s.ReadOnlyView(rep.DB())
	obj, err := view.GetByID("Device", ids["psw"])
	if err != nil {
		t.Fatal(err)
	}
	if obj.String("name") != "psw-a.pop1" {
		t.Errorf("replica view = %+v", obj)
	}
	res, err := view.Get("Circuit", []string{"a_interface.linecard.device.name"}, nil)
	if err != nil || len(res) != 2 {
		t.Errorf("replica deep query: %v, %d results", err, len(res))
	}
}

func BenchmarkFindIndirect(b *testing.B) {
	s := newTestStore(b)
	seedFig4(b, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		objs, err := s.Find("PhysicalInterface", Eq("linecard.device.name", "psw-a.pop1"))
		if err != nil || len(objs) != 2 {
			b.Fatalf("%v %d", err, len(objs))
		}
	}
}

func BenchmarkMutateCreateObjects(b *testing.B) {
	s := newTestStore(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := s.Mutate(func(m *Mutation) error {
			_, err := m.Create("Region", map[string]any{"name": fmt.Sprintf("r%d", i)})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
