package design

import (
	"fmt"
	"strings"
	"testing"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/relstore"
)

func testCtx(domain string) ChangeContext {
	return ChangeContext{
		EmployeeID: "e12345", TicketID: "T-100",
		Description: "test change", Domain: domain, NowUnix: 1_700_000_000,
	}
}

func newTestDesigner(t testing.TB) *Designer {
	t.Helper()
	db := relstore.NewDB("master")
	store, err := fbnet.Open(db, fbnet.NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDesigner(store, DefaultPools())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EnsureStandardHardware(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTemplateValidation(t *testing.T) {
	good := POPGen1()
	if err := good.Validate(); err != nil {
		t.Errorf("POPGen1 should validate: %v", err)
	}
	for _, tpl := range []TopologyTemplate{POPGen2(), DCGen1(4), DCGen2(4), DCGen3(4)} {
		if err := tpl.Validate(); err != nil {
			t.Errorf("%s should validate: %v", tpl.Name, err)
		}
	}
	cases := []struct {
		name   string
		mutate func(*TopologyTemplate)
	}{
		{"empty name", func(tpl *TopologyTemplate) { tpl.Name = "" }},
		{"zero count", func(tpl *TopologyTemplate) { tpl.Devices[0].Count = 0 }},
		{"missing profile", func(tpl *TopologyTemplate) { tpl.Devices[0].HwProfile = "" }},
		{"missing prefix", func(tpl *TopologyTemplate) { tpl.Devices[0].NamePrefix = "" }},
		{"link to missing role", func(tpl *TopologyTemplate) { tpl.Links[0].ZRole = "ghost" }},
		{"self link", func(tpl *TopologyTemplate) { tpl.Links[0].ZRole = tpl.Links[0].ARole }},
		{"zero circuits", func(tpl *TopologyTemplate) { tpl.Links[0].CircuitsPerLink = 0 }},
		{"no address family", func(tpl *TopologyTemplate) { tpl.Addressing = AddressingSpec{} }},
		{"duplicate role", func(tpl *TopologyTemplate) {
			tpl.Devices = append(tpl.Devices, tpl.Devices[0])
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tpl := POPGen1()
			c.mutate(&tpl)
			if err := tpl.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

// TestBuildPOPGen1Creates94Objects reproduces the paper's §5.1.1 claim:
// materializing the 4-post POP template creates 94 objects of the Fig. 7
// types (devices, circuits, physical and aggregated interfaces, prefixes,
// BGP sessions).
func TestBuildPOPGen1Creates94Objects(t *testing.T) {
	d := newTestDesigner(t)
	if _, err := d.EnsureSite("pop1", "pop", "apac"); err != nil {
		t.Fatal(err)
	}
	res, err := d.BuildCluster(testCtx("pop"), "pop1", "pop1-c1", POPGen1())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ref := range res.Stats.Created {
		counts[ref.Model]++
	}
	fig7 := counts["Device"] + counts["Circuit"] + counts["PhysicalInterface"] +
		counts["AggregatedInterface"] + counts["V6Prefix"] + counts["BgpV6Session"]
	if fig7 != 94 {
		t.Errorf("Fig. 7 object count = %d (%v), want 94", fig7, counts)
	}
	if counts["Device"] != 6 || counts["Circuit"] != 16 || counts["PhysicalInterface"] != 32 ||
		counts["AggregatedInterface"] != 16 || counts["V6Prefix"] != 16 || counts["BgpV6Session"] != 8 {
		t.Errorf("per-type counts = %v", counts)
	}
	if len(res.DeviceNames) != 6 {
		t.Errorf("device names = %v", res.DeviceNames)
	}
}

func TestBuildClusterRecordsDesignChange(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("pop1", "pop", "apac")
	res, err := d.BuildCluster(testCtx("pop"), "pop1", "pop1-c1", POPGen1())
	if err != nil {
		t.Fatal(err)
	}
	change, err := d.Store().GetByID("DesignChange", res.ChangeID)
	if err != nil {
		t.Fatal(err)
	}
	if change.String("employee_id") != "e12345" || change.String("ticket_id") != "T-100" {
		t.Errorf("change attribution = %+v", change.Fields)
	}
	if change.Int("num_created") != int64(len(res.Stats.Created)) {
		t.Errorf("num_created = %d, stats = %d", change.Int("num_created"), len(res.Stats.Created))
	}
	if change.Int("num_created") < 94 {
		t.Errorf("num_created = %d, want >= 94", change.Int("num_created"))
	}
}

func TestBuildClusterRequiresAttribution(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("pop1", "pop", "apac")
	_, err := d.BuildCluster(ChangeContext{Domain: "pop"}, "pop1", "c1", POPGen1())
	if err == nil || !strings.Contains(err.Error(), "employee ID") {
		t.Errorf("missing attribution should fail, got %v", err)
	}
	_, err = d.BuildCluster(ChangeContext{EmployeeID: "e1", TicketID: "T1", Domain: "bogus"}, "pop1", "c1", POPGen1())
	if err == nil {
		t.Error("bad domain should fail")
	}
}

func TestBuildClusterValidDesign(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("pop1", "pop", "apac")
	if _, err := d.BuildCluster(testCtx("pop"), "pop1", "pop1-c1", POPGen1()); err != nil {
		t.Fatal(err)
	}
	violations, err := ValidateDesign(d.Store())
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("fresh cluster has violations: %v", violations)
	}
}

func TestBuildClusterDuplicateRejected(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("pop1", "pop", "apac")
	if _, err := d.BuildCluster(testCtx("pop"), "pop1", "c1", POPGen1()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.BuildCluster(testCtx("pop"), "pop1", "c1", POPGen1()); err == nil {
		t.Error("duplicate cluster should fail")
	}
}

func TestBuildClusterRollbackFreesPools(t *testing.T) {
	d := newTestDesigner(t)
	// No site created: the build must fail and leak nothing.
	used := d.pools.V6P2P.Used()
	if _, err := d.BuildCluster(testCtx("pop"), "ghost-site", "c1", POPGen1()); err == nil {
		t.Fatal("build against missing site should fail")
	}
	if d.pools.V6P2P.Used() != used {
		t.Errorf("pool leaked %d allocations on rollback", d.pools.V6P2P.Used()-used)
	}
	if n, _ := d.Store().Count("Device"); n != 0 {
		t.Errorf("%d devices exist after failed build", n)
	}
}

func TestBuildDCGen3WithRacks(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("dc1", "dc", "nam")
	res, err := d.BuildCluster(testCtx("dc"), "dc1", "dc1-c1", DCGen3(8))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ref := range res.Stats.Created {
		counts[ref.Model]++
	}
	// 4 dr + 4 ssw + 16 fsw + 8 tor = 32 devices, 8 racks.
	if counts["Device"] != 32 {
		t.Errorf("devices = %d, want 32", counts["Device"])
	}
	if counts["Rack"] != 8 {
		t.Errorf("racks = %d, want 8", counts["Rack"])
	}
	// v6-only: no V4Prefix objects.
	if counts["V4Prefix"] != 0 {
		t.Errorf("v6-only cluster created %d V4Prefix objects", counts["V4Prefix"])
	}
	if counts["V6Prefix"] == 0 || counts["BgpV6Session"] == 0 {
		t.Errorf("missing v6 fabric objects: %v", counts)
	}
	violations, err := ValidateDesign(d.Store())
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("violations: %v", violations[:min(len(violations), 5)])
	}
}

func TestDecommissionClusterFreesEverything(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("dc1", "dc", "nam")
	if _, err := d.BuildCluster(testCtx("dc"), "dc1", "dc1-c1", DCGen2(2)); err != nil {
		t.Fatal(err)
	}
	devBefore, _ := d.Store().Count("Device")
	if devBefore == 0 {
		t.Fatal("no devices after build")
	}
	poolUsedBefore := d.pools.V6P2P.Used()
	res, err := d.DecommissionCluster(testCtx("dc"), "dc1-c1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Deleted) == 0 {
		t.Error("decommission recorded no deletions")
	}
	for _, model := range []string{"Device", "Circuit", "LinkGroup", "V6Prefix", "BgpV6Session", "Rack"} {
		if n, _ := d.Store().Count(model); n != 0 {
			t.Errorf("%d %s objects remain after decommission", n, model)
		}
	}
	if d.pools.V6P2P.Used() >= poolUsedBefore {
		t.Errorf("p2p pool not released: %d -> %d", poolUsedBefore, d.pools.V6P2P.Used())
	}
}

func TestAddBackboneRoutersBuildsMesh(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("bb-site1", "backbone", "nam")
	d.EnsureSite("bb-site2", "backbone", "emea")
	names := []string{"bb1.site1", "bb2.site1", "bb3.site2"}
	for i, n := range names {
		site := "bb-site1"
		if i == 2 {
			site = "bb-site2"
		}
		res, err := d.AddBackboneRouter(testCtx("backbone"), n, site, "Backbone_Vendor2", "bb")
		if err != nil {
			t.Fatal(err)
		}
		// The i-th router joins a mesh of i members: 1 device + i sessions.
		counts := map[string]int{}
		for _, ref := range res.Stats.Created {
			counts[ref.Model]++
		}
		if counts["Device"] != 1 || counts["BgpV6Session"] != i {
			t.Errorf("router %d: counts = %v, want 1 device, %d sessions", i, counts, i)
		}
	}
	sessions, _ := d.Store().Find("BgpV6Session", fbnet.Eq("session_type", "ibgp"))
	if len(sessions) != 3 { // C(3,2)
		t.Errorf("mesh sessions = %d, want 3", len(sessions))
	}
	violations, err := ValidateDesign(d.Store())
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("violations: %v", violations)
	}
}

func TestAddEdgeRoutersBuildTunnels(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("bb-site1", "backbone", "nam")
	d.AddBackboneRouter(testCtx("backbone"), "pr1.x", "bb-site1", "Backbone_Vendor2", "pr")
	d.AddBackboneRouter(testCtx("backbone"), "dr1.x", "bb-site1", "Backbone_Vendor2", "dr")
	res, err := d.AddBackboneRouter(testCtx("backbone"), "dr2.x", "bb-site1", "Backbone_Vendor2", "dr")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ref := range res.Stats.Created {
		counts[ref.Model]++
	}
	// Joins 2 existing edges: 4 unidirectional tunnels.
	if counts["MplsTunnel"] != 4 {
		t.Errorf("tunnels = %d, want 4 (counts %v)", counts["MplsTunnel"], counts)
	}
	tunnels, _ := d.Store().Count("MplsTunnel")
	if tunnels != 6 { // 3 edges: 3 pairs x 2 directions
		t.Errorf("total tunnels = %d, want 6", tunnels)
	}
}

func TestRemoveBackboneRouterCleansMesh(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("bb-site1", "backbone", "nam")
	for _, n := range []string{"bb1", "bb2", "bb3"} {
		if _, err := d.AddBackboneRouter(testCtx("backbone"), n, "bb-site1", "Backbone_Vendor2", "bb"); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.RemoveBackboneRouter(testCtx("backbone"), "bb2")
	if err != nil {
		t.Fatal(err)
	}
	// bb2's removal deletes its sessions toward bb1/bb3 AND bb3's session
	// toward bb2 (remote_device cascade) — "changing the configs on *all*
	// other routers" resolved automatically.
	sessions, _ := d.Store().Find("BgpV6Session", nil)
	if len(sessions) != 1 {
		t.Errorf("sessions after removal = %d, want 1 (bb1-bb3... bb1<->bb3)", len(sessions))
	}
	if len(res.Stats.Deleted) < 3 { // device + >= 2 sessions
		t.Errorf("deleted = %d objects, want >= 3", len(res.Stats.Deleted))
	}
	violations, _ := ValidateDesign(d.Store())
	if len(violations) != 0 {
		t.Errorf("violations after removal: %v", violations)
	}
	if _, err := d.RemoveBackboneRouter(testCtx("backbone"), "bb2"); err == nil {
		t.Error("removing a removed router should fail")
	}
}

func TestAddBackboneCircuitNewAndGrow(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("bb-site1", "backbone", "nam")
	d.AddBackboneRouter(testCtx("backbone"), "bb1", "bb-site1", "Backbone_Vendor2", "bb")
	d.AddBackboneRouter(testCtx("backbone"), "bb2", "bb-site1", "Backbone_Vendor2", "bb")
	res, err := d.AddBackboneCircuit(testCtx("backbone"), "bb1", "bb2", 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ref := range res.Stats.Created {
		counts[ref.Model]++
	}
	if counts["Circuit"] != 2 || counts["LinkGroup"] != 1 || counts["AggregatedInterface"] != 2 {
		t.Errorf("new bundle counts = %v", counts)
	}
	// Growing the bundle reuses the link group and aggregates.
	res2, err := d.AddBackboneCircuit(testCtx("backbone"), "bb1", "bb2", 1)
	if err != nil {
		t.Fatal(err)
	}
	counts2 := map[string]int{}
	for _, ref := range res2.Stats.Created {
		counts2[ref.Model]++
	}
	if counts2["Circuit"] != 1 || counts2["LinkGroup"] != 0 || counts2["AggregatedInterface"] != 0 {
		t.Errorf("bundle growth counts = %v", counts2)
	}
	lg, err := d.Store().FindOne("LinkGroup", fbnet.Contains("name", "bb1"))
	if err != nil {
		t.Fatal(err)
	}
	if lg.Int("capacity_mbps") != 3*100000 {
		t.Errorf("bundle capacity = %d, want 300000", lg.Int("capacity_mbps"))
	}
	// Median-style accounting: the incremental change touched ~20 objects,
	// far fewer than a cluster build (Fig. 15).
	if res2.Stats.Total() > 30 {
		t.Errorf("incremental change touched %d objects", res2.Stats.Total())
	}
	if _, err := d.AddBackboneCircuit(testCtx("backbone"), "bb1", "bb1", 1); err == nil {
		t.Error("self-circuit should fail")
	}
	if _, err := d.AddBackboneCircuit(testCtx("backbone"), "bb1", "bb2", 0); err == nil {
		t.Error("zero circuits should fail")
	}
}

func TestMigrateCircuit(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("bb-site1", "backbone", "nam")
	for _, n := range []string{"bb1", "bb2", "bb3"} {
		d.AddBackboneRouter(testCtx("backbone"), n, "bb-site1", "Backbone_Vendor2", "bb")
	}
	if _, err := d.AddBackboneCircuit(testCtx("backbone"), "bb1", "bb2", 1); err != nil {
		t.Fatal(err)
	}
	cir, err := d.Store().FindOne("Circuit", nil)
	if err != nil {
		t.Fatal(err)
	}
	circuitID := cir.String("circuit_id")
	res, err := d.MigrateCircuit(testCtx("backbone"), circuitID, "bb3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Created) == 0 || len(res.Stats.Deleted) == 0 || len(res.Stats.Modified) == 0 {
		t.Errorf("migration stats = created %d, modified %d, deleted %d",
			len(res.Stats.Created), len(res.Stats.Modified), len(res.Stats.Deleted))
	}
	// The circuit now lands on bb3 and design rules still hold.
	cir2, err := d.Store().FindOne("Circuit", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cir2.String("circuit_id"), "bb3") {
		t.Errorf("circuit id after migration = %q", cir2.String("circuit_id"))
	}
	violations, err := ValidateDesign(d.Store())
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("violations after migration: %v", violations)
	}
	// bb2 no longer has interfaces.
	bb2Pifs, _ := d.Store().Find("PhysicalInterface", fbnet.Eq("linecard.device.name", "bb2"))
	if len(bb2Pifs) != 0 {
		t.Errorf("bb2 still has %d interfaces after migration", len(bb2Pifs))
	}
	// Migrating a multi-circuit bundle is refused.
	d.AddBackboneCircuit(testCtx("backbone"), "bb1", "bb2", 2)
	cirs, _ := d.Store().Find("Circuit", fbnet.Contains("circuit_id", "bb2"))
	if len(cirs) == 0 {
		t.Fatal("no bb1-bb2 circuits")
	}
	if _, err := d.MigrateCircuit(testCtx("backbone"), cirs[0].String("circuit_id"), "bb3"); err == nil {
		t.Error("migrating out of a bundle should fail")
	}
}

func TestDeleteCircuitRetiresBundle(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("bb-site1", "backbone", "nam")
	d.AddBackboneRouter(testCtx("backbone"), "bb1", "bb-site1", "Backbone_Vendor2", "bb")
	d.AddBackboneRouter(testCtx("backbone"), "bb2", "bb-site1", "Backbone_Vendor2", "bb")
	d.AddBackboneCircuit(testCtx("backbone"), "bb1", "bb2", 2)
	cirs, _ := d.Store().Find("Circuit", nil)
	if len(cirs) != 2 {
		t.Fatalf("circuits = %d", len(cirs))
	}
	poolUsed := d.pools.V6P2P.Used()
	// Delete the first: bundle survives.
	if _, err := d.DeleteCircuit(testCtx("backbone"), cirs[0].String("circuit_id")); err != nil {
		t.Fatal(err)
	}
	if n, _ := d.Store().Count("LinkGroup"); n != 1 {
		t.Error("bundle should survive while a member remains")
	}
	if d.pools.V6P2P.Used() != poolUsed {
		t.Error("addresses freed while bundle still active")
	}
	// Delete the last: bundle, aggregates, prefixes all go; addresses freed.
	if _, err := d.DeleteCircuit(testCtx("backbone"), cirs[1].String("circuit_id")); err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{"Circuit", "LinkGroup", "AggregatedInterface", "V6Prefix", "V4Prefix", "PhysicalInterface"} {
		if n, _ := d.Store().Count(model); n != 0 {
			t.Errorf("%d %s objects remain", n, model)
		}
	}
	if d.pools.V6P2P.Used() >= poolUsed {
		t.Errorf("p2p pool not released: %d -> %d", poolUsed, d.pools.V6P2P.Used())
	}
}

func TestNewDesignerReservesExistingPrefixes(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("pop1", "pop", "apac")
	if _, err := d.BuildCluster(testCtx("pop"), "pop1", "c1", POPGen1()); err != nil {
		t.Fatal(err)
	}
	// A second designer over the same store must not re-allocate used space.
	d2, err := NewDesigner(d.Store(), DefaultPools())
	if err != nil {
		t.Fatal(err)
	}
	existing, _ := d.Store().Find("V6Prefix", nil)
	pp, err := d2.pools.V6P2P.AllocateP2P("new")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range existing {
		if p.String("prefix") == pp.APrefix() || p.String("prefix") == pp.ZPrefix() {
			t.Fatalf("fresh designer re-allocated in-use prefix %s", pp.Subnet)
		}
	}
}

func TestValidateDesignCatchesViolations(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("pop1", "pop", "apac")
	store := d.Store()
	// Hand-craft a broken design: a circuit with only one endpoint and an
	// eBGP session within one AS.
	_, err := store.Mutate(func(m *fbnet.Mutation) error {
		site, _ := m.FindOne("Site", fbnet.Eq("name", "pop1"))
		hw, _ := m.FindOne("HardwareProfile", fbnet.Eq("name", "Router_Vendor1"))
		dev, err := m.Create("Device", map[string]any{
			"name": "lonely", "role": "pr", "site": site.ID, "hw_profile": hw.ID, "drain_state": "drained",
		})
		if err != nil {
			return err
		}
		lc, err := m.Create("Linecard", map[string]any{"slot": 1, "device": dev})
		if err != nil {
			return err
		}
		pif, err := m.Create("PhysicalInterface", map[string]any{"name": "et1/1", "speed_mbps": 10000, "linecard": lc})
		if err != nil {
			return err
		}
		if _, err := m.Create("Circuit", map[string]any{
			"circuit_id": "half", "a_interface": pif, "status": "provisioning",
		}); err != nil {
			return err
		}
		_, err = m.Create("BgpV6Session", map[string]any{
			"local_device": dev, "remote_device": dev,
			"local_as": 65001, "remote_as": 65001, "session_type": "ebgp",
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	violations, err := ValidateDesign(store)
	if err != nil {
		t.Fatal(err)
	}
	rules := map[string]bool{}
	for _, v := range violations {
		rules[v.Rule] = true
	}
	for _, want := range []string{"circuit-endpoints", "bgp-distinct-peers", "bgp-as-match"} {
		if !rules[want] {
			t.Errorf("rule %s not triggered; violations: %v", want, violations)
		}
	}
}

func TestBuildLargeClusterTensOfThousands(t *testing.T) {
	if testing.Short() {
		t.Skip("large build in -short mode")
	}
	d := newTestDesigner(t)
	d.EnsureSite("dc1", "dc", "nam")
	res, err := d.BuildCluster(testCtx("dc"), "dc1", "dc1-big", DCGen3(48))
	if err != nil {
		t.Fatal(err)
	}
	// "Robotron is able to translate these designs to tens of thousands of
	// FBNet objects within minutes" — a 48-rack Gen3 cluster materializes
	// thousands of objects in one transaction.
	if total := len(res.Stats.Created); total < 2000 {
		t.Errorf("large cluster created only %d objects", total)
	}
}

func BenchmarkMaterializePOPCluster(b *testing.B) {
	d := newTestDesigner(b)
	d.EnsureSite("pop1", "pop", "apac")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.BuildCluster(testCtx("pop"), "pop1", fmt.Sprintf("c%d", i), POPGen1()); err != nil {
			b.Fatal(err)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
