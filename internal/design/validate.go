package design

import (
	"fmt"
	"net/netip"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/ipam"
)

// Design validation (§5.1.3): "Robotron embeds various rules to
// automatically validate objects ... These rules check object value and
// relationship fields to ensure data integrity (e.g., a circuit must be
// associated to two physical interfaces), and avoid duplicate objects."
// Field-level rules (prefix syntax, enum values, uniqueness) live on the
// FBNet models; the cross-object rules below run over a whole design.

// Violation is one detected design-rule violation.
type Violation struct {
	Rule   string
	Model  string
	ID     int64
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s id %d: %s", v.Rule, v.Model, v.ID, v.Detail)
}

// ValidateDesign checks the cross-object design rules over the entire
// Desired state and returns all violations found.
func ValidateDesign(store *fbnet.Store) ([]Violation, error) {
	var out []Violation
	add := func(rule, model string, id int64, format string, args ...any) {
		out = append(out, Violation{Rule: rule, Model: model, ID: id, Detail: fmt.Sprintf(format, args...)})
	}

	// Rule: every non-decommissioned circuit terminates at two physical
	// interfaces on two distinct devices.
	circuits, err := store.Find("Circuit", fbnet.Ne("status", "decommissioned"))
	if err != nil {
		return nil, err
	}
	pifDevice := func(pifID int64) (int64, error) {
		pif, err := store.GetByID("PhysicalInterface", pifID)
		if err != nil {
			return 0, err
		}
		lc, err := store.GetByID("Linecard", pif.Ref("linecard"))
		if err != nil {
			return 0, err
		}
		return lc.Ref("device"), nil
	}
	for _, c := range circuits {
		a, z := c.Ref("a_interface"), c.Ref("z_interface")
		if a == 0 || z == 0 {
			add("circuit-endpoints", "Circuit", c.ID, "circuit %s is missing an endpoint", c.String("circuit_id"))
			continue
		}
		if a == z {
			add("circuit-endpoints", "Circuit", c.ID, "circuit %s has duplicate endpoints", c.String("circuit_id"))
			continue
		}
		aDev, err := pifDevice(a)
		if err != nil {
			return nil, err
		}
		zDev, err := pifDevice(z)
		if err != nil {
			return nil, err
		}
		if aDev == zDev {
			add("circuit-endpoints", "Circuit", c.ID, "circuit %s terminates twice on device %d", c.String("circuit_id"), aDev)
		}
	}

	// Rule: the two p2p prefixes of a link group belong to one subnet
	// ("point-to-point IP addresses of a circuit are rejected if they
	// belong to different subnets", §1).
	lgs, err := store.Find("LinkGroup", nil)
	if err != nil {
		return nil, err
	}
	for _, lg := range lgs {
		for _, pm := range []string{"V6Prefix", "V4Prefix"} {
			aPfx, err := linkGroupSidePrefixes(store, lg, pm, "a_device")
			if err != nil {
				return nil, err
			}
			zPfx, err := linkGroupSidePrefixes(store, lg, pm, "z_device")
			if err != nil {
				return nil, err
			}
			// One-sided addressing leaves the pair loop below with zero
			// pairs, so it must be rejected explicitly: a bundle with a
			// p2p address on only one end is exactly the misconfiguration
			// this rule exists for, not a vacuous pass.
			if (len(aPfx) == 0) != (len(zPfx) == 0) {
				add("p2p-same-subnet", "LinkGroup", lg.ID,
					"%s has %s p2p addressing on only one side (a=%d, z=%d prefixes)",
					lg.String("name"), pm, len(aPfx), len(zPfx))
			}
			for _, ap := range aPfx {
				for _, zp := range zPfx {
					if ap.Bits() != zp.Bits() || !ipam.SameSubnet(ap.Addr(), zp.Addr(), ap.Bits()) {
						add("p2p-same-subnet", "LinkGroup", lg.ID,
							"%s endpoints %s and %s are in different subnets", lg.String("name"), ap, zp)
					}
				}
			}
		}
	}

	// Rule: BGP sessions connect distinct devices, and iBGP peers share
	// one AS while eBGP peers do not ("proper configuration must exist in
	// both peers of every iBGP session", §1).
	for _, model := range []string{"BgpV6Session", "BgpV4Session"} {
		sessions, err := store.Find(model, nil)
		if err != nil {
			return nil, err
		}
		prefixModel := "V6Prefix"
		if model == "BgpV4Session" {
			prefixModel = "V4Prefix"
		}
		for _, s := range sessions {
			if s.Ref("local_device") != 0 && s.Ref("local_device") == s.Ref("remote_device") {
				add("bgp-distinct-peers", model, s.ID, "session peers with itself")
			}
			switch s.String("session_type") {
			case "ibgp":
				if s.Int("local_as") != s.Int("remote_as") {
					add("bgp-as-match", model, s.ID, "iBGP session with mismatched AS %d != %d",
						s.Int("local_as"), s.Int("remote_as"))
				}
			case "ebgp":
				if s.Int("local_as") == s.Int("remote_as") {
					add("bgp-as-match", model, s.ID, "eBGP session within one AS %d", s.Int("local_as"))
				}
			}
			// Rule: the session's local_prefix is addressed on an interface
			// of its *local* device. The old checks inspected only session-
			// level fields, so a session sourcing from another device's
			// subnet — unconfigurable on the box — passed validation.
			if pfxID := s.Ref("local_prefix"); pfxID != 0 && s.Ref("local_device") != 0 {
				pfx, err := store.GetByID(prefixModel, pfxID)
				if err != nil {
					return nil, err
				}
				aggID := pfx.Ref("interface")
				if aggID == 0 {
					add("bgp-local-prefix", model, s.ID,
						"local_prefix %s is not bound to any interface", pfx.String("prefix"))
				} else {
					agg, err := store.GetByID("AggregatedInterface", aggID)
					if err != nil {
						return nil, err
					}
					if agg.Ref("device") != s.Ref("local_device") {
						add("bgp-local-prefix", model, s.ID,
							"local_prefix %s lives on interface %s of device %d, not the session's local device %d",
							pfx.String("prefix"), agg.String("name"), agg.Ref("device"), s.Ref("local_device"))
					}
				}
			}
		}
	}

	// Rule: backbone mesh completeness — every pair of mesh-role devices
	// has an iBGP session object (in either direction). Cluster-resident
	// PRs/DRs (cluster field set) run the cluster's eBGP fabric instead
	// and are exempt.
	meshDevs, err := store.Find("Device", fbnet.And(
		fbnet.In("role", "pr", "bb", "dr"),
		fbnet.IsNull("cluster"),
	))
	if err != nil {
		return nil, err
	}
	ibgp, err := store.Find("BgpV6Session", fbnet.Eq("session_type", "ibgp"))
	if err != nil {
		return nil, err
	}
	havePair := map[[2]int64]bool{}
	for _, s := range ibgp {
		l, r := s.Ref("local_device"), s.Ref("remote_device")
		havePair[[2]int64{l, r}] = true
		havePair[[2]int64{r, l}] = true
	}
	for i := range meshDevs {
		for j := i + 1; j < len(meshDevs); j++ {
			a, b := meshDevs[i], meshDevs[j]
			if a.String("loopback_v6") == "" || b.String("loopback_v6") == "" {
				continue
			}
			if !havePair[[2]int64{a.ID, b.ID}] {
				add("ibgp-full-mesh", "Device", a.ID, "no iBGP session between %s and %s",
					a.String("name"), b.String("name"))
			}
		}
	}
	return out, nil
}

// linkGroupSidePrefixes collects the p2p prefixes configured on the
// aggregated interfaces of one side of a link group.
func linkGroupSidePrefixes(store *fbnet.Store, lg fbnet.Object, prefixModel, sideField string) ([]netip.Prefix, error) {
	devID := lg.Ref(sideField)
	circuits, err := store.DB().Referencing("Circuit", "link_group", lg.ID)
	if err != nil {
		return nil, err
	}
	aggSeen := map[int64]bool{}
	var out []netip.Prefix
	for _, cid := range circuits {
		c, err := store.GetByID("Circuit", cid)
		if err != nil {
			return nil, err
		}
		for _, f := range []string{"a_interface", "z_interface"} {
			pifID := c.Ref(f)
			if pifID == 0 {
				continue
			}
			pif, err := store.GetByID("PhysicalInterface", pifID)
			if err != nil {
				return nil, err
			}
			lc, err := store.GetByID("Linecard", pif.Ref("linecard"))
			if err != nil {
				return nil, err
			}
			if lc.Ref("device") != devID {
				continue
			}
			aggID := pif.Ref("agg_interface")
			if aggID == 0 || aggSeen[aggID] {
				continue
			}
			aggSeen[aggID] = true
			pfxIDs, err := store.DB().Referencing(prefixModel, "interface", aggID)
			if err != nil {
				return nil, err
			}
			for _, pid := range pfxIDs {
				p, err := store.GetByID(prefixModel, pid)
				if err != nil {
					return nil, err
				}
				if p.String("purpose") != "p2p" {
					continue
				}
				pfx, err := netip.ParsePrefix(p.String("prefix"))
				if err != nil {
					return nil, fmt.Errorf("design: stored prefix %q is invalid: %w", p.String("prefix"), err)
				}
				out = append(out, pfx)
			}
		}
	}
	return out, nil
}
