package design

import (
	"fmt"

	"github.com/robotron-net/robotron/internal/fbnet"
)

// BuildResult describes a materialized cluster.
type BuildResult struct {
	ChangeResult
	ClusterID   int64
	DeviceNames []string
}

// portmapSpec describes one device-pair connection, the unit manipulated
// by FBNet's portmap write API (§4.2.2, Fig. 4).
type portmapSpec struct {
	aDev, zDev   int64
	aName, zName string
	circuits     int
	v6, v4       bool
	ebgp         bool
	aAS, zAS     int64
	mtu          int64
}

// createPortmap realizes one portmap: an aggregated interface on each
// device, N physical interfaces per side grouped into it, a link group
// with N parallel circuits, point-to-point prefixes from the same subnet
// on both aggregates, and (optionally) an eBGP session over the bundle.
func createPortmap(m *fbnet.Mutation, pa *portAllocator, at *allocTracker, spec portmapSpec) error {
	if spec.aDev == spec.zDev {
		return fmt.Errorf("design: portmap endpoints must be distinct devices (%s)", spec.aName)
	}
	if spec.circuits <= 0 {
		return fmt.Errorf("design: portmap %s--%s needs at least one circuit", spec.aName, spec.zName)
	}
	mtu := spec.mtu
	if mtu == 0 {
		mtu = 9192
	}
	mkAgg := func(dev int64) (int64, string, error) {
		n, err := pa.nextAggNumber(dev)
		if err != nil {
			return 0, "", err
		}
		name := fmt.Sprintf("ae%d", n)
		id, err := m.Create("AggregatedInterface", map[string]any{
			"name": name, "number": n, "mtu": mtu, "device": dev,
		})
		return id, name, err
	}
	aAgg, _, err := mkAgg(spec.aDev)
	if err != nil {
		return err
	}
	zAgg, _, err := mkAgg(spec.zDev)
	if err != nil {
		return err
	}
	lgName := fmt.Sprintf("%s--%s", spec.aName, spec.zName)
	speed := int64(10000)
	if meta, err := pa.load(spec.aDev); err == nil {
		speed = meta.speedMbps
	}
	lg, err := m.Create("LinkGroup", map[string]any{
		"name": lgName, "a_device": spec.aDev, "z_device": spec.zDev,
		"capacity_mbps": speed * int64(spec.circuits),
	})
	if err != nil {
		return err
	}
	for i := 0; i < spec.circuits; i++ {
		aPif, aPifName, err := pa.allocPort(spec.aDev, aAgg)
		if err != nil {
			return err
		}
		zPif, zPifName, err := pa.allocPort(spec.zDev, zAgg)
		if err != nil {
			return err
		}
		if _, err := m.Create("Circuit", map[string]any{
			"circuit_id":  fmt.Sprintf("%s:%s--%s:%s", spec.aName, aPifName, spec.zName, zPifName),
			"a_interface": aPif, "z_interface": zPif,
			"link_group": lg, "status": "provisioning",
		}); err != nil {
			return err
		}
	}
	var zV6str string
	var aV6ID int64
	if spec.v6 {
		pp, err := at.p2p(true, lgName)
		if err != nil {
			return err
		}
		aV6ID, err = m.Create("V6Prefix", map[string]any{
			"prefix": pp.APrefix(), "interface": aAgg, "purpose": "p2p",
		})
		if err != nil {
			return err
		}
		if _, err := m.Create("V6Prefix", map[string]any{
			"prefix": pp.ZPrefix(), "interface": zAgg, "purpose": "p2p",
		}); err != nil {
			return err
		}
		zV6str = pp.Z.String()
	}
	var aV4ID int64
	var zV4str string
	if spec.v4 {
		pp, err := at.p2p(false, lgName)
		if err != nil {
			return err
		}
		aV4ID, err = m.Create("V4Prefix", map[string]any{
			"prefix": pp.APrefix(), "interface": aAgg, "purpose": "p2p",
		})
		if err != nil {
			return err
		}
		if _, err := m.Create("V4Prefix", map[string]any{
			"prefix": pp.ZPrefix(), "interface": zAgg, "purpose": "p2p",
		}); err != nil {
			return err
		}
		zV4str = pp.Z.String()
	}
	if spec.ebgp {
		if spec.v6 {
			if _, err := m.Create("BgpV6Session", map[string]any{
				"local_device": spec.aDev, "remote_device": spec.zDev,
				"local_prefix": aV6ID, "remote_addr": zV6str,
				"local_as": spec.aAS, "remote_as": spec.zAS,
				"session_type": "ebgp",
			}); err != nil {
				return err
			}
		}
		if spec.v4 {
			if _, err := m.Create("BgpV4Session", map[string]any{
				"local_device": spec.aDev, "remote_device": spec.zDev,
				"local_prefix": aV4ID, "remote_addr": zV4str,
				"local_as": spec.aAS, "remote_as": spec.zAS,
				"session_type": "ebgp",
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// BuildCluster materializes a topology template into FBNet objects as one
// atomic design change (§5.1.1): "Robotron constructs 2 BackboneRouter
// objects and 4 NetworkSwitch objects ... In total, 94 objects of various
// types are created in FBNet."
func (d *Designer) BuildCluster(ctx ChangeContext, siteName, clusterName string, tpl TopologyTemplate) (BuildResult, error) {
	if err := tpl.Validate(); err != nil {
		return BuildResult{}, err
	}
	var out BuildResult
	res, err := d.change(ctx, func(m *fbnet.Mutation, at *allocTracker) error {
		site, err := m.FindOne("Site", fbnet.Eq("name", siteName))
		if err != nil {
			return fmt.Errorf("design: unknown site %q: %w", siteName, err)
		}
		if existing, err := m.Find("Cluster", fbnet.Eq("name", clusterName)); err != nil {
			return err
		} else if len(existing) > 0 {
			return fmt.Errorf("design: cluster %q already exists", clusterName)
		}
		clusterID, err := m.Create("Cluster", map[string]any{
			"name": clusterName, "site": site.ID,
			"generation": tpl.Generation, "status": "provisioning",
		})
		if err != nil {
			return err
		}
		out.ClusterID = clusterID

		pa := newPortAllocator(m)
		scope := clusterScope(clusterName)
		devsByRole := map[string][]deviceHandle{}
		for _, ds := range tpl.Devices {
			hw, err := m.FindOne("HardwareProfile", fbnet.Eq("name", ds.HwProfile))
			if err != nil {
				return fmt.Errorf("design: unknown hardware profile %q: %w", ds.HwProfile, err)
			}
			for n := 1; n <= ds.Count; n++ {
				name := deviceName(ds.NamePrefix, n, scope)
				h, err := d.createDevice(m, at, name, ds.Role, site.ID, clusterID, hw.ID, tpl.Addressing)
				if err != nil {
					return err
				}
				if base, ok := tpl.Addressing.LocalASBase[ds.Role]; ok {
					h.as = base + int64(n)
				}
				devsByRole[ds.Role] = append(devsByRole[ds.Role], h)
				out.DeviceNames = append(out.DeviceNames, name)
			}
		}
		for _, ls := range tpl.Links {
			for _, a := range devsByRole[ls.ARole] {
				for _, z := range devsByRole[ls.ZRole] {
					if err := createPortmap(m, pa, at, portmapSpec{
						aDev: a.id, zDev: z.id, aName: a.name, zName: z.name,
						circuits: ls.CircuitsPerLink,
						v6:       tpl.Addressing.V6, v4: tpl.Addressing.V4,
						ebgp: ls.EBGP, aAS: a.as, zAS: z.as,
					}); err != nil {
						return err
					}
				}
			}
		}
		if tpl.Racks > 0 {
			if err := d.buildRacks(m, pa, at, site.ID, clusterID, scope, tpl, devsByRole); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return BuildResult{}, err
	}
	out.ChangeResult = res
	return out, nil
}

type deviceHandle struct {
	id   int64
	name string
	as   int64
}

// createDevice creates a device plus loopbacks per the addressing spec.
func (d *Designer) createDevice(m *fbnet.Mutation, at *allocTracker, name, role string, siteID, clusterID, hwID int64, addr AddressingSpec) (deviceHandle, error) {
	fields := map[string]any{
		"name": name, "role": role, "site": siteID,
		"hw_profile": hwID, "drain_state": "drained",
	}
	if clusterID != 0 {
		fields["cluster"] = clusterID
	}
	if addr.V6 {
		lo, err := at.loopback(true, name)
		if err != nil {
			return deviceHandle{}, err
		}
		fields["loopback_v6"] = lo.String()
	}
	if addr.V4 {
		lo, err := at.loopback(false, name)
		if err != nil {
			return deviceHandle{}, err
		}
		fields["loopback_v4"] = lo.String()
	}
	id, err := m.Create("Device", fields)
	if err != nil {
		return deviceHandle{}, err
	}
	return deviceHandle{id: id, name: name}, nil
}

// buildRacks adds server racks, one TOR each, uplinked to the template's
// uplink role round-robin.
func (d *Designer) buildRacks(m *fbnet.Mutation, pa *portAllocator, at *allocTracker, siteID, clusterID int64, scope string, tpl TopologyTemplate, devsByRole map[string][]deviceHandle) error {
	hw, err := m.FindOne("HardwareProfile", fbnet.Eq("name", tpl.RackTORProfle))
	if err != nil {
		return fmt.Errorf("design: unknown TOR hardware profile %q: %w", tpl.RackTORProfle, err)
	}
	uplinks := devsByRole[tpl.UplinkRole]
	if len(uplinks) == 0 {
		return fmt.Errorf("design: no %s devices to uplink racks to", tpl.UplinkRole)
	}
	torAS := tpl.Addressing.LocalASBase["tor"]
	if torAS == 0 {
		torAS = 65500
	}
	for r := 1; r <= tpl.Racks; r++ {
		rackName := fmt.Sprintf("rack%d.%s", r, scope)
		if _, err := m.Create("Rack", map[string]any{"name": rackName, "cluster": clusterID}); err != nil {
			return err
		}
		torName := deviceName("tor", r, scope)
		tor, err := d.createDevice(m, at, torName, "tor", siteID, clusterID, hw.ID, tpl.Addressing)
		if err != nil {
			return err
		}
		tor.as = torAS + int64(r)
		// Spread UplinksPerTOR single-circuit bundles across uplink devices.
		for u := 0; u < tpl.UplinksPerTOR; u++ {
			up := uplinks[(r+u)%len(uplinks)]
			if err := createPortmap(m, pa, at, portmapSpec{
				aDev: tor.id, zDev: up.id,
				aName: tor.name, zName: up.name,
				circuits: 2,
				v6:       tpl.Addressing.V6, v4: tpl.Addressing.V4,
				ebgp: hasEBGPToRole(tpl, tpl.UplinkRole), aAS: tor.as, zAS: up.as,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// deviceAS recovers a device's AS number from any BGP session it already
// participates in, falling back to def.
func deviceAS(m *fbnet.Mutation, devID, def int64) int64 {
	for _, model := range []string{"BgpV6Session", "BgpV4Session"} {
		if ss, err := m.Referencing(model, "local_device", devID); err == nil && len(ss) > 0 {
			if as := ss[0].Int("local_as"); as != 0 {
				return as
			}
		}
		if ss, err := m.Referencing(model, "remote_device", devID); err == nil && len(ss) > 0 {
			if as := ss[0].Int("remote_as"); as != 0 {
				return as
			}
		}
	}
	return def
}

// hasEBGPToRole reports whether any link spec to the role uses eBGP; rack
// uplinks inherit the fabric's routing design.
func hasEBGPToRole(tpl TopologyTemplate, role string) bool {
	for _, ls := range tpl.Links {
		if (ls.ARole == role || ls.ZRole == role) && ls.EBGP {
			return true
		}
	}
	return false
}

// AddRack grows a production cluster by one rack: a Rack object, a TOR
// device, and uplinks to the cluster's uplink tier — "cluster capacity
// upgrade [is] among the most common management tasks happening in DCs"
// (§2.2). Uplink parameters mirror the cluster's existing racks.
func (d *Designer) AddRack(ctx ChangeContext, clusterName, torProfile, uplinkRole string, uplinksPerTOR int, v6, v4 bool) (ChangeResult, error) {
	if uplinksPerTOR <= 0 {
		return ChangeResult{}, fmt.Errorf("design: uplinks per TOR must be positive")
	}
	return d.change(ctx, func(m *fbnet.Mutation, at *allocTracker) error {
		cluster, err := m.FindOne("Cluster", fbnet.Eq("name", clusterName))
		if err != nil {
			return err
		}
		hw, err := m.FindOne("HardwareProfile", fbnet.Eq("name", torProfile))
		if err != nil {
			return err
		}
		racks, err := m.Referencing("Rack", "cluster", cluster.ID)
		if err != nil {
			return err
		}
		n := len(racks) + 1
		scope := clusterScope(clusterName)
		rackName := fmt.Sprintf("rack%d.%s", n, scope)
		if _, err := m.Create("Rack", map[string]any{"name": rackName, "cluster": cluster.ID}); err != nil {
			return err
		}
		uplinks, err := m.Find("Device", fbnet.And(
			fbnet.Eq("cluster", cluster.ID), fbnet.Eq("role", uplinkRole)))
		if err != nil {
			return err
		}
		if len(uplinks) == 0 {
			return fmt.Errorf("design: cluster %s has no %s devices to uplink to", clusterName, uplinkRole)
		}
		tor, err := d.createDevice(m, at, deviceName("tor", n, scope), "tor",
			cluster.Ref("site"), cluster.ID, hw.ID, AddressingSpec{V6: v6, V4: v4})
		if err != nil {
			return err
		}
		tor.as = 65500 + int64(n)
		pa := newPortAllocator(m)
		for u := 0; u < uplinksPerTOR; u++ {
			up := uplinks[(n+u)%len(uplinks)]
			if err := createPortmap(m, pa, at, portmapSpec{
				aDev: tor.id, zDev: up.ID,
				aName: tor.name, zName: up.String("name"),
				circuits: 2, v6: v6, v4: v4,
				ebgp: true, aAS: tor.as, zAS: deviceAS(m, up.ID, 64700),
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

// DecommissionCluster deletes a cluster and everything in it as one design
// change, returning allocated prefixes to the pools. This is how DC
// architecture shifts retire previous generations (§6, Fig. 12).
func (d *Designer) DecommissionCluster(ctx ChangeContext, clusterName string) (ChangeResult, error) {
	return d.change(ctx, func(m *fbnet.Mutation, at *allocTracker) error {
		cluster, err := m.FindOne("Cluster", fbnet.Eq("name", clusterName))
		if err != nil {
			return err
		}
		// Free the cluster devices' prefixes after commit.
		devs, err := m.Referencing("Device", "cluster", cluster.ID)
		if err != nil {
			return err
		}
		for _, dev := range devs {
			for _, f := range []string{"loopback_v6", "loopback_v4"} {
				if s := dev.String(f); s != "" {
					at.free(s)
				}
			}
			aggs, err := m.Referencing("AggregatedInterface", "device", dev.ID)
			if err != nil {
				return err
			}
			for _, agg := range aggs {
				for _, pm := range []string{"V6Prefix", "V4Prefix"} {
					pfxs, err := m.Referencing(pm, "interface", agg.ID)
					if err != nil {
						return err
					}
					for _, p := range pfxs {
						// p2p subnets are shared by both sides; freeing is
						// idempotent per subnet since Free fails silently
						// via the tracker on the second attempt.
						at.free(p.String("prefix"))
					}
				}
			}
		}
		return m.Delete("Cluster", cluster.ID)
	})
}
