package design

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/ipam"
)

// Pools are the address pools design operations allocate from.
type Pools struct {
	V6P2P      *ipam.Pool
	V4P2P      *ipam.Pool
	V6Loopback *ipam.Pool
	V4Loopback *ipam.Pool
}

// DefaultPools returns a pool layout sized for a large simulated network.
func DefaultPools() Pools {
	return Pools{
		V6P2P:      ipam.MustPool("2401:db00:f000::/44"),
		V4P2P:      ipam.MustPool("10.128.0.0/10"),
		V6Loopback: ipam.MustPool("2401:db00:e000::/44"),
		V4Loopback: ipam.MustPool("10.0.0.0/12"),
	}
}

// ErrReviewRejected is returned when a change's reviewer declines it.
var ErrReviewRejected = errors.New("design: change rejected by reviewer")

// ChangeContext identifies and describes one design change; Robotron
// "requires employee ID and ticket ID to track design change history"
// (§5.1.3).
type ChangeContext struct {
	EmployeeID  string
	TicketID    string
	Description string
	Domain      string // "pop" | "dc" | "backbone"
	NowUnix     int64
	// Review, if set, receives the resulting object changes before the
	// transaction commits; returning false rolls everything back
	// ("Robotron displays the resulting design changes and requires users
	// to visually review and confirm before committing", §5.1.3).
	Review func(fbnet.ChangeStats) bool
}

func (c ChangeContext) validate() error {
	if c.EmployeeID == "" || c.TicketID == "" {
		return fmt.Errorf("design: employee ID and ticket ID are required for design changes")
	}
	switch c.Domain {
	case "pop", "dc", "backbone":
		return nil
	}
	return fmt.Errorf("design: unknown domain %q", c.Domain)
}

// ChangeResult reports one committed design change.
type ChangeResult struct {
	ChangeID int64
	Stats    fbnet.ChangeStats
}

// Designer drives design changes against an FBNet store.
type Designer struct {
	store *fbnet.Store
	pools Pools
}

// NewDesigner creates a designer, reserving every prefix already present
// in FBNet so pool allocations can never conflict with existing design
// state — the invariant whose absence caused "many circuits misconfigured
// with conflicting IPs" before automation (§7).
func NewDesigner(store *fbnet.Store, pools Pools) (*Designer, error) {
	d := &Designer{store: store, pools: pools}
	reserve := func(model string, pool6, pool4 *ipam.Pool) error {
		objs, err := store.Find(model, nil)
		if err != nil {
			return err
		}
		for _, o := range objs {
			pfxStr := o.String("prefix")
			pfx, err := netip.ParsePrefix(pfxStr)
			if err != nil {
				return fmt.Errorf("design: existing %s %q is invalid: %w", model, pfxStr, err)
			}
			pool := pool4
			if pfx.Addr().Is6() {
				pool = pool6
			}
			if pool == nil || !pool.Root().Overlaps(pfx) {
				continue // out-of-pool legacy space
			}
			if pool.Owner(pfx) != "" {
				continue // both /127 endpoints of one p2p subnet share a reservation
			}
			if err := pool.Reserve(pfx, fmt.Sprintf("%s/%d", model, o.ID)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := reserve("V6Prefix", pools.V6P2P, nil); err != nil {
		return nil, err
	}
	if err := reserve("V4Prefix", nil, pools.V4P2P); err != nil {
		return nil, err
	}
	if err := reserveLoopbacks(store, pools); err != nil {
		return nil, err
	}
	return d, nil
}

func reserveLoopbacks(store *fbnet.Store, pools Pools) error {
	devs, err := store.Find("Device", nil)
	if err != nil {
		return err
	}
	for _, dev := range devs {
		for field, pool := range map[string]*ipam.Pool{
			"loopback_v6": pools.V6Loopback,
			"loopback_v4": pools.V4Loopback,
		} {
			s := dev.String(field)
			if s == "" || pool == nil {
				continue
			}
			pfx, err := netip.ParsePrefix(s)
			if err != nil {
				return fmt.Errorf("design: device %s has invalid %s %q", dev.String("name"), field, s)
			}
			if !pool.Root().Overlaps(pfx) {
				continue
			}
			if err := pool.Reserve(pfx, dev.String("name")); err != nil {
				return err
			}
		}
	}
	return nil
}

// Store exposes the underlying FBNet store.
func (d *Designer) Store() *fbnet.Store { return d.store }

// change wraps one design change: validation of the context, the mutation
// itself, atomic recording of the DesignChange object with per-object
// entries, and release of pool allocations if the change fails.
func (d *Designer) change(ctx ChangeContext, fn func(*fbnet.Mutation, *allocTracker) error) (ChangeResult, error) {
	if err := ctx.validate(); err != nil {
		return ChangeResult{}, err
	}
	at := &allocTracker{pools: d.pools}
	var changeID int64
	_, err := d.store.Mutate(func(m *fbnet.Mutation) error {
		if err := fn(m, at); err != nil {
			return err
		}
		stats := m.Stats()
		if ctx.Review != nil && !ctx.Review(stats) {
			return fmt.Errorf("%w (ticket %s)", ErrReviewRejected, ctx.TicketID)
		}
		var err error
		changeID, err = m.Create("DesignChange", map[string]any{
			"employee_id":  ctx.EmployeeID,
			"ticket_id":    ctx.TicketID,
			"description":  ctx.Description,
			"domain":       ctx.Domain,
			"created_unix": ctx.NowUnix,
			"num_created":  len(stats.Created),
			"num_modified": len(stats.Modified),
			"num_deleted":  len(stats.Deleted),
		})
		if err != nil {
			return err
		}
		record := func(refs []fbnet.ObjectRef, action string) error {
			for _, r := range refs {
				if _, err := m.Create("DesignChangeEntry", map[string]any{
					"change": changeID, "model_name": r.Model,
					"object_id": r.ID, "action": action,
				}); err != nil {
					return err
				}
			}
			return nil
		}
		if err := record(stats.Created, "create"); err != nil {
			return err
		}
		if err := record(stats.Modified, "modify"); err != nil {
			return err
		}
		return record(stats.Deleted, "delete")
	})
	if err != nil {
		at.releaseAll()
		return ChangeResult{}, err
	}
	at.releaseFreed()
	return ChangeResult{ChangeID: changeID, Stats: loadChangeStats(d.store, changeID)}, nil
}

// loadChangeStats reloads the committed per-change entries to build
// ChangeStats for the caller (Fig. 15 accounting).
func loadChangeStats(store *fbnet.Store, changeID int64) fbnet.ChangeStats {
	// Follow the indexed reverse relation rather than scanning the (large)
	// entry table: design-change accounting runs after every change.
	ids, err := store.DB().Referencing("DesignChangeEntry", "change", changeID)
	if err != nil {
		return fbnet.ChangeStats{}
	}
	var cs fbnet.ChangeStats
	for _, id := range ids {
		e, err := store.GetByID("DesignChangeEntry", id)
		if err != nil {
			continue
		}
		ref := fbnet.ObjectRef{Model: e.String("model_name"), ID: e.Int("object_id")}
		switch e.String("action") {
		case "create":
			cs.Created = append(cs.Created, ref)
		case "modify":
			cs.Modified = append(cs.Modified, ref)
		case "delete":
			cs.Deleted = append(cs.Deleted, ref)
		}
	}
	return cs
}

// allocTracker records pool allocations made during a change so they can
// be released if the transaction rolls back, and prefix frees that must
// only happen after the transaction commits.
type allocTracker struct {
	pools     Pools
	allocated []trackedAlloc
	toFree    []trackedAlloc
}

type trackedAlloc struct {
	pool *ipam.Pool
	pfx  netip.Prefix
}

func (a *allocTracker) p2p(v6 bool, owner string) (ipam.P2P, error) {
	pool := a.pools.V4P2P
	if v6 {
		pool = a.pools.V6P2P
	}
	if pool == nil {
		return ipam.P2P{}, fmt.Errorf("design: no p2p pool configured for this address family")
	}
	pp, err := pool.AllocateP2P(owner)
	if err != nil {
		return ipam.P2P{}, err
	}
	a.allocated = append(a.allocated, trackedAlloc{pool: pool, pfx: pp.Subnet})
	return pp, nil
}

func (a *allocTracker) loopback(v6 bool, owner string) (netip.Prefix, error) {
	pool := a.pools.V4Loopback
	if v6 {
		pool = a.pools.V6Loopback
	}
	if pool == nil {
		return netip.Prefix{}, fmt.Errorf("design: no loopback pool configured for this address family")
	}
	pfx, err := pool.AllocateHost(owner)
	if err != nil {
		return netip.Prefix{}, err
	}
	a.allocated = append(a.allocated, trackedAlloc{pool: pool, pfx: pfx})
	return pfx, nil
}

// free schedules an existing prefix for release when the change commits.
func (a *allocTracker) free(pfxStr string) {
	pfx, err := netip.ParsePrefix(pfxStr)
	if err != nil {
		return
	}
	for _, pool := range []*ipam.Pool{a.pools.V6P2P, a.pools.V4P2P, a.pools.V6Loopback, a.pools.V4Loopback} {
		if pool != nil && pool.Root().Overlaps(pfx) {
			a.toFree = append(a.toFree, trackedAlloc{pool: pool, pfx: pfx})
			return
		}
	}
}

func (a *allocTracker) releaseAll() {
	for _, t := range a.allocated {
		_ = t.pool.Free(t.pfx)
	}
	a.allocated = nil
	a.toFree = nil
}

func (a *allocTracker) releaseFreed() {
	for _, t := range a.toFree {
		_ = t.pool.Free(t.pfx)
	}
	a.toFree = nil
}

// --- bootstrap helpers ---

// EnsureRegion returns the id of a region, creating it if needed.
func (d *Designer) EnsureRegion(name string) (int64, error) {
	if objs, err := d.store.Find("Region", fbnet.Eq("name", name)); err != nil {
		return 0, err
	} else if len(objs) == 1 {
		return objs[0].ID, nil
	}
	var id int64
	_, err := d.store.Mutate(func(m *fbnet.Mutation) error {
		var err error
		id, err = m.Create("Region", map[string]any{"name": name})
		return err
	})
	return id, err
}

// EnsureSite returns the id of a site, creating it (and its region) if
// needed.
func (d *Designer) EnsureSite(name, kind, region string) (int64, error) {
	if objs, err := d.store.Find("Site", fbnet.Eq("name", name)); err != nil {
		return 0, err
	} else if len(objs) == 1 {
		return objs[0].ID, nil
	}
	regionID, err := d.EnsureRegion(region)
	if err != nil {
		return 0, err
	}
	var id int64
	_, err = d.store.Mutate(func(m *fbnet.Mutation) error {
		var err error
		id, err = m.Create("Site", map[string]any{"name": name, "kind": kind, "region": regionID})
		return err
	})
	return id, err
}

// EnsureStandardHardware registers the two synthetic vendors and the
// hardware profiles the standard templates reference.
func (d *Designer) EnsureStandardHardware() error {
	if objs, err := d.store.Find("Vendor", fbnet.Eq("name", "vendor1")); err != nil {
		return err
	} else if len(objs) > 0 {
		return nil // already bootstrapped
	}
	_, err := d.store.Mutate(func(m *fbnet.Mutation) error {
		v1, err := m.Create("Vendor", map[string]any{"name": "vendor1", "syntax": "vendor1"})
		if err != nil {
			return err
		}
		v2, err := m.Create("Vendor", map[string]any{"name": "vendor2", "syntax": "vendor2"})
		if err != nil {
			return err
		}
		profiles := []struct {
			name   string
			vendor int64
			slots  int
			ports  int
			speed  int
		}{
			{"Router_Vendor1", v1, 8, 16, 10000},
			{"Router_Vendor2", v2, 8, 16, 10000},
			{"Switch_Vendor1", v1, 2, 32, 10000},
			{"Switch_Vendor2", v2, 2, 32, 10000},
			{"TOR_Vendor1", v1, 1, 48, 10000},
			{"Backbone_Vendor2", v2, 16, 16, 100000},
		}
		for _, p := range profiles {
			if _, err := m.Create("HardwareProfile", map[string]any{
				"name": p.name, "vendor": p.vendor, "num_slots": p.slots,
				"ports_per_linecard": p.ports, "port_speed_mbps": p.speed,
			}); err != nil {
				return err
			}
		}
		return nil
	})
	return err
}

// --- port allocation ---

// portAllocator hands out free physical ports on devices within one
// mutation, deriving interface names from the device's vendor syntax.
type portAllocator struct {
	m    *fbnet.Mutation
	used map[int64]map[string]bool // device id -> taken interface names
	meta map[int64]*devMeta
}

type devMeta struct {
	devID     int64
	syntax    string
	slots     []int64 // linecard ids in slot order
	slotNums  []int
	numSlots  int // chassis capacity; linecards are added on demand
	portsPer  int
	speedMbps int64
}

func newPortAllocator(m *fbnet.Mutation) *portAllocator {
	return &portAllocator{
		m:    m,
		used: make(map[int64]map[string]bool),
		meta: make(map[int64]*devMeta),
	}
}

func (pa *portAllocator) load(devID int64) (*devMeta, error) {
	if meta, ok := pa.meta[devID]; ok {
		return meta, nil
	}
	dev, err := pa.m.Get("Device", devID)
	if err != nil {
		return nil, err
	}
	hw, err := pa.m.Get("HardwareProfile", dev.Ref("hw_profile"))
	if err != nil {
		return nil, err
	}
	vendor, err := pa.m.Get("Vendor", hw.Ref("vendor"))
	if err != nil {
		return nil, err
	}
	meta := &devMeta{
		devID:     devID,
		syntax:    vendor.String("syntax"),
		numSlots:  int(hw.Int("num_slots")),
		portsPer:  int(hw.Int("ports_per_linecard")),
		speedMbps: hw.Int("port_speed_mbps"),
	}
	lcs, err := pa.m.Referencing("Linecard", "device", devID)
	if err != nil {
		return nil, err
	}
	for _, lc := range lcs {
		meta.slots = append(meta.slots, lc.ID)
		meta.slotNums = append(meta.slotNums, int(lc.Int("slot")))
	}
	taken := map[string]bool{}
	for _, lc := range lcs {
		pifs, err := pa.m.Referencing("PhysicalInterface", "linecard", lc.ID)
		if err != nil {
			return nil, err
		}
		for _, p := range pifs {
			taken[p.String("name")] = true
		}
	}
	pa.used[devID] = taken
	pa.meta[devID] = meta
	return meta, nil
}

// ifaceName builds the vendor-specific interface name for slot/port.
func ifaceName(syntax string, slot, port int) string {
	if syntax == "vendor2" {
		return fmt.Sprintf("et-%d/0/%d", slot, port)
	}
	return fmt.Sprintf("et%d/%d", slot, port)
}

// allocPort creates a PhysicalInterface on the first free port of devID,
// associated with aggID (0 for none). Linecards are installed on demand up
// to the chassis slot capacity. Returns the new pif id and name.
func (pa *portAllocator) allocPort(devID, aggID int64) (int64, string, error) {
	meta, err := pa.load(devID)
	if err != nil {
		return 0, "", err
	}
	taken := pa.used[devID]
	for {
		for i, lcID := range meta.slots {
			slot := meta.slotNums[i]
			for port := 1; port <= meta.portsPer; port++ {
				name := ifaceName(meta.syntax, slot, port)
				if taken[name] {
					continue
				}
				fields := map[string]any{
					"name": name, "speed_mbps": meta.speedMbps, "linecard": lcID,
				}
				if aggID != 0 {
					fields["agg_interface"] = aggID
				}
				id, err := pa.m.Create("PhysicalInterface", fields)
				if err != nil {
					return 0, "", err
				}
				taken[name] = true
				return id, name, nil
			}
		}
		if len(meta.slots) >= meta.numSlots {
			return 0, "", fmt.Errorf("design: device %d is out of ports (%d slots of %d ports)",
				devID, meta.numSlots, meta.portsPer)
		}
		nextSlot := 1
		for _, s := range meta.slotNums {
			if s >= nextSlot {
				nextSlot = s + 1
			}
		}
		lcID, err := pa.m.Create("Linecard", map[string]any{"slot": nextSlot, "device": devID})
		if err != nil {
			return 0, "", err
		}
		meta.slots = append(meta.slots, lcID)
		meta.slotNums = append(meta.slotNums, nextSlot)
	}
}

// nextAggNumber returns the next unused aggregated-interface number on a
// device.
func (pa *portAllocator) nextAggNumber(devID int64) (int64, error) {
	aggs, err := pa.m.Referencing("AggregatedInterface", "device", devID)
	if err != nil {
		return 0, err
	}
	used := map[int64]bool{}
	for _, a := range aggs {
		used[a.Int("number")] = true
	}
	for n := int64(0); ; n++ {
		if !used[n] {
			return n, nil
		}
	}
}

// deviceName composes a standard device name: role + index + cluster/site.
func deviceName(prefix string, n int, scope string) string {
	return fmt.Sprintf("%s%d.%s", prefix, n, scope)
}

// clusterScope returns the cluster short name used in device names.
func clusterScope(clusterName string) string {
	return strings.ReplaceAll(clusterName, "/", "-")
}
