package design

import (
	"fmt"

	"github.com/robotron-net/robotron/internal/fbnet"
)

// The backbone design tools (§5.1.2): the backbone "employs a constantly
// changing asymmetrical architecture"; changes are incremental router and
// circuit additions, migrations, and deletions. "A key challenge of
// supporting incremental changes is to resolve object dependency" — adding
// or removing a backbone router requires updating the iBGP mesh on all
// other edge routers; migrating a circuit requires deleting or
// re-associating interfaces, prefixes, and sessions on one router and
// creating them on the other. The tools below do exactly that, leaning on
// FBNet relationship fields (cascades and reverse connections) to find
// every dependent object.

// backboneASN is the private AS number of the backbone mesh.
const backboneASN = 64512

// meshRoles are device roles participating in the backbone iBGP full mesh.
func isMeshRole(role string) bool {
	return role == "pr" || role == "bb" || role == "dr"
}

// edgeRole reports whether a role is an MPLS-TE edge (tunnel head/tail).
func isEdgeRole(role string) bool { return role == "pr" || role == "dr" }

// AddBackboneRouter creates a backbone router with loopbacks, joins it to
// the iBGP full mesh (one session object per existing mesh member), and —
// for edge roles — establishes MPLS-TE tunnels to and from every other
// edge node.
func (d *Designer) AddBackboneRouter(ctx ChangeContext, name, siteName, hwProfile, role string) (ChangeResult, error) {
	if !isMeshRole(role) {
		return ChangeResult{}, fmt.Errorf("design: %q is not a backbone role (want pr, bb, or dr)", role)
	}
	return d.change(ctx, func(m *fbnet.Mutation, at *allocTracker) error {
		site, err := m.FindOne("Site", fbnet.Eq("name", siteName))
		if err != nil {
			return fmt.Errorf("design: unknown site %q: %w", siteName, err)
		}
		hw, err := m.FindOne("HardwareProfile", fbnet.Eq("name", hwProfile))
		if err != nil {
			return fmt.Errorf("design: unknown hardware profile %q: %w", hwProfile, err)
		}
		if existing, err := m.Find("Device", fbnet.Eq("name", name)); err != nil {
			return err
		} else if len(existing) > 0 {
			return fmt.Errorf("design: device %q already exists", name)
		}
		h, err := d.createDevice(m, at, name, role, site.ID, 0, hw.ID, AddressingSpec{V6: true, V4: true})
		if err != nil {
			return err
		}
		newDev, err := m.Get("Device", h.id)
		if err != nil {
			return err
		}
		// Join the iBGP full mesh: one session object per existing member.
		members, err := m.Find("Device", fbnet.In("role", "pr", "bb", "dr"))
		if err != nil {
			return err
		}
		for _, peer := range members {
			if peer.ID == h.id {
				continue
			}
			peerLo := loopbackAddr(peer.String("loopback_v6"))
			if peerLo == "" {
				continue // non-backbone PR without v6 loopback
			}
			if _, err := m.Create("BgpV6Session", map[string]any{
				"local_device": h.id, "remote_device": peer.ID,
				"remote_addr": peerLo,
				"local_as":    int64(backboneASN), "remote_as": int64(backboneASN),
				"session_type": "ibgp",
			}); err != nil {
				return err
			}
		}
		// MPLS-TE tunnel mesh between edge nodes, both directions.
		if isEdgeRole(role) {
			for _, peer := range members {
				if peer.ID == h.id || !isEdgeRole(peer.String("role")) {
					continue
				}
				for _, dir := range []struct{ head, tail fbnet.Object }{
					{newDev, peer}, {peer, newDev},
				} {
					if _, err := m.Create("MplsTunnel", map[string]any{
						"name":        fmt.Sprintf("te-%s--%s", dir.head.String("name"), dir.tail.String("name")),
						"head_device": dir.head.ID, "tail_device": dir.tail.ID,
						"bandwidth_mbps": int64(10000),
					}); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
}

// loopbackAddr strips the prefix length from a stored loopback ("2401::1/128"
// -> "2401::1").
func loopbackAddr(pfx string) string {
	for i := 0; i < len(pfx); i++ {
		if pfx[i] == '/' {
			return pfx[:i]
		}
	}
	return pfx
}

// RemoveBackboneRouter deletes a backbone router. FBNet cascades remove
// its linecards, interfaces, circuits, link groups, tunnels, and — because
// BGP sessions reference both local and remote devices — the mesh sessions
// held by every other router toward it ("the device tool automatically
// handles deleting the corresponding FBNet router object and deleting or
// disassociating its related objects", §5.1.2).
func (d *Designer) RemoveBackboneRouter(ctx ChangeContext, name string) (ChangeResult, error) {
	return d.change(ctx, func(m *fbnet.Mutation, at *allocTracker) error {
		dev, err := m.FindOne("Device", fbnet.Eq("name", name))
		if err != nil {
			return err
		}
		if !isMeshRole(dev.String("role")) {
			return fmt.Errorf("design: %s is not a backbone router", name)
		}
		// Return this router's address space to the pools after commit.
		for _, f := range []string{"loopback_v6", "loopback_v4"} {
			if s := dev.String(f); s != "" {
				at.free(s)
			}
		}
		aggs, err := m.Referencing("AggregatedInterface", "device", dev.ID)
		if err != nil {
			return err
		}
		for _, agg := range aggs {
			for _, pm := range []string{"V6Prefix", "V4Prefix"} {
				pfxs, err := m.Referencing(pm, "interface", agg.ID)
				if err != nil {
					return err
				}
				for _, p := range pfxs {
					at.free(p.String("prefix"))
				}
			}
		}
		// Resolve far-end dependencies before the cascade: every link
		// group terminating here also configured interfaces, aggregates,
		// and addresses on the *other* router; those objects must be
		// retired too or their now-freed subnets would linger on orphaned
		// prefixes (the "configuration changes to a large number of
		// nodes" the paper describes).
		for _, field := range []string{"a_device", "z_device"} {
			lgs, err := m.Referencing("LinkGroup", field, dev.ID)
			if err != nil {
				return err
			}
			for _, lg := range lgs {
				if err := retireFarEnd(m, lg, dev.ID); err != nil {
					return err
				}
			}
		}
		return m.Delete("Device", dev.ID)
	})
}

// retireFarEnd deletes the non-local interfaces, aggregates, and prefixes
// of a link group that is being destroyed because localDev is going away.
func retireFarEnd(m *fbnet.Mutation, lg fbnet.Object, localDev int64) error {
	circuits, err := m.Referencing("Circuit", "link_group", lg.ID)
	if err != nil {
		return err
	}
	farAggs := map[int64]bool{}
	var farPifs []int64
	for _, c := range circuits {
		for _, f := range []string{"a_interface", "z_interface"} {
			pifID := c.Ref(f)
			if pifID == 0 {
				continue
			}
			pif, err := m.Get("PhysicalInterface", pifID)
			if err != nil {
				return err
			}
			lc, err := m.Get("Linecard", pif.Ref("linecard"))
			if err != nil {
				return err
			}
			if lc.Ref("device") == localDev {
				continue
			}
			farPifs = append(farPifs, pifID)
			if aggID := pif.Ref("agg_interface"); aggID != 0 {
				farAggs[aggID] = true
			}
		}
	}
	for _, pifID := range farPifs {
		if err := m.Delete("PhysicalInterface", pifID); err != nil {
			return err
		}
	}
	for aggID := range farAggs {
		// Cascades the far side's prefix objects (same p2p subnets the
		// local side just freed) and any sessions over them.
		if err := m.Delete("AggregatedInterface", aggID); err != nil {
			return err
		}
	}
	return nil
}

// AddBackboneCircuit provisions circuits between two backbone routers:
// a new link group (with aggregated interfaces and point-to-point
// addressing on both ends) when none exists, or additional bundle members
// on the existing link group ("the generation and provisioning of IP
// interface configuration, including point-to-point addresses and bundle
// membership", §2.3).
func (d *Designer) AddBackboneCircuit(ctx ChangeContext, aName, zName string, circuits int) (ChangeResult, error) {
	if circuits <= 0 {
		return ChangeResult{}, fmt.Errorf("design: circuit count must be positive")
	}
	if aName == zName {
		return ChangeResult{}, fmt.Errorf("design: circuit endpoints must be distinct devices")
	}
	return d.change(ctx, func(m *fbnet.Mutation, at *allocTracker) error {
		a, err := m.FindOne("Device", fbnet.Eq("name", aName))
		if err != nil {
			return err
		}
		z, err := m.FindOne("Device", fbnet.Eq("name", zName))
		if err != nil {
			return err
		}
		pa := newPortAllocator(m)
		lg, aAgg, zAgg, found, err := findLinkGroup(m, a.ID, z.ID)
		if err != nil {
			return err
		}
		if !found {
			return createPortmap(m, pa, at, portmapSpec{
				aDev: a.ID, zDev: z.ID, aName: aName, zName: zName,
				circuits: circuits, v6: true, v4: true, ebgp: false,
			})
		}
		// Grow the existing bundle.
		for i := 0; i < circuits; i++ {
			aPif, aPifName, err := pa.allocPort(a.ID, aAgg)
			if err != nil {
				return err
			}
			zPif, zPifName, err := pa.allocPort(z.ID, zAgg)
			if err != nil {
				return err
			}
			if _, err := m.Create("Circuit", map[string]any{
				"circuit_id":  fmt.Sprintf("%s:%s--%s:%s", aName, aPifName, zName, zPifName),
				"a_interface": aPif, "z_interface": zPif,
				"link_group": lg.ID, "status": "provisioning",
			}); err != nil {
				return err
			}
		}
		existing, err := m.Referencing("Circuit", "link_group", lg.ID)
		if err != nil {
			return err
		}
		speed := int64(10000)
		if meta, err := pa.load(a.ID); err == nil {
			speed = meta.speedMbps
		}
		return m.Update("LinkGroup", lg.ID, map[string]any{
			"capacity_mbps": speed * int64(len(existing)),
		})
	})
}

// findLinkGroup locates the link group between two devices (either
// orientation) plus each side's aggregated interface.
func findLinkGroup(m *fbnet.Mutation, aID, zID int64) (lg fbnet.Object, aAgg, zAgg int64, found bool, err error) {
	lgs, err := m.Find("LinkGroup", fbnet.Or(
		fbnet.And(fbnet.Eq("a_device", aID), fbnet.Eq("z_device", zID)),
		fbnet.And(fbnet.Eq("a_device", zID), fbnet.Eq("z_device", aID)),
	))
	if err != nil || len(lgs) == 0 {
		return fbnet.Object{}, 0, 0, false, err
	}
	lg = lgs[0]
	circuits, err := m.Referencing("Circuit", "link_group", lg.ID)
	if err != nil {
		return fbnet.Object{}, 0, 0, false, err
	}
	for _, c := range circuits {
		for _, side := range []string{"a_interface", "z_interface"} {
			pifID := c.Ref(side)
			if pifID == 0 {
				continue
			}
			pif, err := m.Get("PhysicalInterface", pifID)
			if err != nil {
				return fbnet.Object{}, 0, 0, false, err
			}
			aggID := pif.Ref("agg_interface")
			if aggID == 0 {
				continue
			}
			lc, err := m.Get("Linecard", pif.Ref("linecard"))
			if err != nil {
				return fbnet.Object{}, 0, 0, false, err
			}
			switch lc.Ref("device") {
			case aID:
				aAgg = aggID
			case zID:
				zAgg = aggID
			}
		}
	}
	if aAgg == 0 || zAgg == 0 {
		return fbnet.Object{}, 0, 0, false, fmt.Errorf("design: link group %s has no usable aggregated interfaces", lg.String("name"))
	}
	return lg, aAgg, zAgg, true, nil
}

// MigrateCircuit moves the Z end of a circuit to a different router: the
// old Z-side interface, prefix, and aggregate are deleted, new ones are
// created on the target, and the point-to-point subnet is re-allocated so
// both ends stay in one subnet (§5.1.2's circuit migration example).
// Bundles must be shrunk to a single circuit before migration.
func (d *Designer) MigrateCircuit(ctx ChangeContext, circuitID, newZName string) (ChangeResult, error) {
	return d.change(ctx, func(m *fbnet.Mutation, at *allocTracker) error {
		cir, err := m.FindOne("Circuit", fbnet.Eq("circuit_id", circuitID))
		if err != nil {
			return err
		}
		newZ, err := m.FindOne("Device", fbnet.Eq("name", newZName))
		if err != nil {
			return err
		}
		lgID := cir.Ref("link_group")
		if lgID != 0 {
			siblings, err := m.Referencing("Circuit", "link_group", lgID)
			if err != nil {
				return err
			}
			if len(siblings) > 1 {
				return fmt.Errorf("design: circuit %s is part of a %d-circuit bundle; shrink the bundle before migrating", circuitID, len(siblings))
			}
		}
		aPifID, zPifID := cir.Ref("a_interface"), cir.Ref("z_interface")
		if aPifID == 0 || zPifID == 0 {
			return fmt.Errorf("design: circuit %s is not fully terminated", circuitID)
		}
		aPif, err := m.Get("PhysicalInterface", aPifID)
		if err != nil {
			return err
		}
		zPif, err := m.Get("PhysicalInterface", zPifID)
		if err != nil {
			return err
		}
		zLc, err := m.Get("Linecard", zPif.Ref("linecard"))
		if err != nil {
			return err
		}
		if zLc.Ref("device") == newZ.ID {
			return fmt.Errorf("design: circuit %s already terminates on %s", circuitID, newZName)
		}
		aAggID := aPif.Ref("agg_interface")
		zAggID := zPif.Ref("agg_interface")

		// Free the old p2p subnets and remove old prefix objects from both
		// aggregates (new subnets will be allocated).
		for _, pm := range []string{"V6Prefix", "V4Prefix"} {
			for _, aggID := range []int64{aAggID, zAggID} {
				if aggID == 0 {
					continue
				}
				pfxs, err := m.Referencing(pm, "interface", aggID)
				if err != nil {
					return err
				}
				for _, p := range pfxs {
					if p.String("purpose") != "p2p" {
						continue
					}
					at.free(p.String("prefix"))
					if err := m.Delete(pm, p.ID); err != nil {
						return err
					}
				}
			}
		}
		// Build the new Z side.
		pa := newPortAllocator(m)
		zAggNum, err := pa.nextAggNumber(newZ.ID)
		if err != nil {
			return err
		}
		newZAgg, err := m.Create("AggregatedInterface", map[string]any{
			"name": fmt.Sprintf("ae%d", zAggNum), "number": zAggNum, "mtu": 9192, "device": newZ.ID,
		})
		if err != nil {
			return err
		}
		newZPif, newZPifName, err := pa.allocPort(newZ.ID, newZAgg)
		if err != nil {
			return err
		}
		// Re-address both ends from a fresh subnet per family.
		aDevName, err := deviceNameOfPif(m, aPif)
		if err != nil {
			return err
		}
		owner := fmt.Sprintf("%s--%s", aDevName, newZName)
		pp6, err := at.p2p(true, owner)
		if err != nil {
			return err
		}
		if _, err := m.Create("V6Prefix", map[string]any{
			"prefix": pp6.APrefix(), "interface": aAggID, "purpose": "p2p",
		}); err != nil {
			return err
		}
		if _, err := m.Create("V6Prefix", map[string]any{
			"prefix": pp6.ZPrefix(), "interface": newZAgg, "purpose": "p2p",
		}); err != nil {
			return err
		}
		pp4, err := at.p2p(false, owner)
		if err != nil {
			return err
		}
		if _, err := m.Create("V4Prefix", map[string]any{
			"prefix": pp4.APrefix(), "interface": aAggID, "purpose": "p2p",
		}); err != nil {
			return err
		}
		if _, err := m.Create("V4Prefix", map[string]any{
			"prefix": pp4.ZPrefix(), "interface": newZAgg, "purpose": "p2p",
		}); err != nil {
			return err
		}
		// Re-point the circuit and retire the old Z-side objects.
		if err := m.Update("Circuit", cir.ID, map[string]any{
			"z_interface": newZPif,
			"circuit_id":  fmt.Sprintf("%s--%s:%s", splitCircuitA(circuitID), newZName, newZPifName),
		}); err != nil {
			return err
		}
		if lgID != 0 {
			if err := m.Update("LinkGroup", lgID, map[string]any{
				"name":     owner,
				"z_device": newZ.ID,
			}); err != nil {
				return err
			}
		}
		if err := m.Delete("PhysicalInterface", zPif.ID); err != nil {
			return err
		}
		if zAggID != 0 {
			if err := m.Delete("AggregatedInterface", zAggID); err != nil {
				return err
			}
		}
		return nil
	})
}

// deviceNameOfPif resolves a physical interface to its device name.
func deviceNameOfPif(m *fbnet.Mutation, pif fbnet.Object) (string, error) {
	lc, err := m.Get("Linecard", pif.Ref("linecard"))
	if err != nil {
		return "", err
	}
	dev, err := m.Get("Device", lc.Ref("device"))
	if err != nil {
		return "", err
	}
	return dev.String("name"), nil
}

// splitCircuitA returns the "<aDev>:<aPif>" half of a circuit id.
func splitCircuitA(circuitID string) string {
	for i := 0; i+1 < len(circuitID); i++ {
		if circuitID[i] == '-' && circuitID[i+1] == '-' {
			return circuitID[:i]
		}
	}
	return circuitID
}

// DeleteCircuit removes a circuit; when it was the last member of its link
// group, the whole bundle (link group, both aggregated interfaces, their
// prefixes and any sessions over them) is retired and the address space
// returned to the pools.
func (d *Designer) DeleteCircuit(ctx ChangeContext, circuitID string) (ChangeResult, error) {
	return d.change(ctx, func(m *fbnet.Mutation, at *allocTracker) error {
		cir, err := m.FindOne("Circuit", fbnet.Eq("circuit_id", circuitID))
		if err != nil {
			return err
		}
		aPifID, zPifID := cir.Ref("a_interface"), cir.Ref("z_interface")
		var aggIDs []int64
		for _, pifID := range []int64{aPifID, zPifID} {
			if pifID == 0 {
				continue
			}
			pif, err := m.Get("PhysicalInterface", pifID)
			if err != nil {
				return err
			}
			if aggID := pif.Ref("agg_interface"); aggID != 0 {
				aggIDs = append(aggIDs, aggID)
			}
		}
		lgID := cir.Ref("link_group")
		lastInBundle := true
		if lgID != 0 {
			siblings, err := m.Referencing("Circuit", "link_group", lgID)
			if err != nil {
				return err
			}
			lastInBundle = len(siblings) == 1
		}
		if err := m.Delete("Circuit", cir.ID); err != nil {
			return err
		}
		for _, pifID := range []int64{aPifID, zPifID} {
			if pifID != 0 {
				if err := m.Delete("PhysicalInterface", pifID); err != nil {
					return err
				}
			}
		}
		if lastInBundle {
			for _, aggID := range dedupe(aggIDs) {
				for _, pm := range []string{"V6Prefix", "V4Prefix"} {
					pfxs, err := m.Referencing(pm, "interface", aggID)
					if err != nil {
						return err
					}
					for _, p := range pfxs {
						at.free(p.String("prefix"))
					}
				}
				if err := m.Delete("AggregatedInterface", aggID); err != nil {
					return err
				}
			}
			if lgID != 0 {
				if err := m.Delete("LinkGroup", lgID); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

func dedupe(ids []int64) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
