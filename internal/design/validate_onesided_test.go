package design

import (
	"strings"
	"testing"

	"github.com/robotron-net/robotron/internal/fbnet"
)

// countRule tallies violations of one rule.
func countRule(vs []Violation, rule string) int {
	n := 0
	for _, v := range vs {
		if v.Rule == rule {
			n++
		}
	}
	return n
}

// TestValidateOneSidedP2PAddressing: removing the z-side p2p prefix of a
// bundle used to pass validation — the same-subnet rule compared a×z
// prefix pairs, and one empty side produced zero pairs, a vacuous pass.
func TestValidateOneSidedP2PAddressing(t *testing.T) {
	d, _ := popWithPR(t)
	store := d.Store()
	if vs, err := ValidateDesign(store); err != nil || len(vs) != 0 {
		t.Fatalf("clean cluster validates dirty: %v %v", vs, err)
	}
	// Delete one link group's z-side prefix: resolve a session's
	// remote_addr back to the prefix object on the far device.
	ss, err := store.Find("BgpV6Session", fbnet.Eq("session_type", "ebgp"))
	if err != nil || len(ss) == 0 {
		t.Fatalf("no ebgp sessions: %v", err)
	}
	s := ss[0]
	zPfx, err := store.FindOne("V6Prefix", fbnet.Eq("prefix", s.String("remote_addr")+"/127"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Mutate(func(m *fbnet.Mutation) error {
		return m.Delete("V6Prefix", zPfx.ID)
	}); err != nil {
		t.Fatal(err)
	}
	vs, err := ValidateDesign(store)
	if err != nil {
		t.Fatal(err)
	}
	if countRule(vs, "p2p-same-subnet") == 0 {
		t.Errorf("one-sided p2p addressing not flagged; violations: %v", vs)
	}
	found := false
	for _, v := range vs {
		if v.Rule == "p2p-same-subnet" && strings.Contains(v.Detail, "only one side") {
			found = true
		}
	}
	if !found {
		t.Errorf("no one-sided detail in violations: %v", vs)
	}
}

// TestValidateLocalPrefixOwnership: a BGP session whose local_prefix lives
// on the far device's interface is unconfigurable on the local box, but
// the session-level checks (type, AS numbers) never looked at the prefix.
func TestValidateLocalPrefixOwnership(t *testing.T) {
	d, _ := popWithPR(t)
	store := d.Store()
	ss, err := store.Find("BgpV6Session", fbnet.Eq("session_type", "ebgp"))
	if err != nil || len(ss) == 0 {
		t.Fatalf("no ebgp sessions: %v", err)
	}
	s := ss[0]
	// The z-side prefix belongs to the remote device's aggregate.
	zPfx, err := store.FindOne("V6Prefix", fbnet.Eq("prefix", s.String("remote_addr")+"/127"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Mutate(func(m *fbnet.Mutation) error {
		return m.Update("BgpV6Session", s.ID, map[string]any{"local_prefix": zPfx.ID})
	}); err != nil {
		t.Fatal(err)
	}
	vs, err := ValidateDesign(store)
	if err != nil {
		t.Fatal(err)
	}
	if countRule(vs, "bgp-local-prefix") != 1 {
		t.Errorf("misattached local_prefix not flagged exactly once: %v", vs)
	}
}

// TestValidateUnboundLocalPrefix: a session pointing at a prefix that lost
// its interface binding is flagged too.
func TestValidateUnboundLocalPrefix(t *testing.T) {
	d, _ := popWithPR(t)
	store := d.Store()
	ss, err := store.Find("BgpV6Session", fbnet.Eq("session_type", "ebgp"))
	if err != nil || len(ss) == 0 {
		t.Fatalf("no ebgp sessions: %v", err)
	}
	s := ss[0]
	pfx, err := store.GetByID("V6Prefix", s.Ref("local_prefix"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Mutate(func(m *fbnet.Mutation) error {
		return m.Update("V6Prefix", pfx.ID, map[string]any{"interface": nil})
	}); err != nil {
		t.Fatal(err)
	}
	vs, err := ValidateDesign(store)
	if err != nil {
		t.Fatal(err)
	}
	if countRule(vs, "bgp-local-prefix") == 0 {
		t.Errorf("unbound local_prefix not flagged: %v", vs)
	}
}

// TestAddPeeringRejectsSharedAS: an eBGP interconnect with ASN == LocalAS
// used to pass the one-sided "both numbers positive" check.
func TestAddPeeringRejectsSharedAS(t *testing.T) {
	d, pr := popWithPR(t)
	_, _, err := d.AddPeering(testCtx("pop"), PeeringSpec{
		Device: pr, Partner: "Self-Peer", ASN: 32934, Kind: "peering", LocalAS: 32934,
	})
	if err == nil || !strings.Contains(err.Error(), "distinct AS") {
		t.Fatalf("same-AS peering accepted, err=%v", err)
	}
}
