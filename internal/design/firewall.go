package design

import (
	"fmt"

	"github.com/robotron-net/robotron/internal/fbnet"
)

// Firewall management: access control list modification is one of the
// paper's everyday tasks (§1), and firewall rule changes are the paper's
// example of deployments that "require applying new configurations in
// multiple phases" (§5.3.2). Policies are modeled once and attached to
// many devices, so one rule change fans out to every attached device's
// generated config.

// FirewallRuleSpec is one term of a firewall policy.
type FirewallRuleSpec struct {
	Action    string // "permit" | "deny"
	Protocol  string // "any" | "tcp" | "udp" | "icmp6"
	SrcPrefix string // empty matches any source
	DstPort   int64  // 0 matches any port
}

// FirewallSpec is a named policy with ordered rules.
type FirewallSpec struct {
	Name      string
	Direction string // "in" | "out"
	Rules     []FirewallRuleSpec
}

// EnsureFirewallPolicy creates or replaces a firewall policy's rules as
// one design change. Replacing rules is the §5.3.2 "firewall rule change":
// every device attached to the policy now generates an updated config.
func (d *Designer) EnsureFirewallPolicy(ctx ChangeContext, spec FirewallSpec) (ChangeResult, error) {
	if spec.Name == "" {
		return ChangeResult{}, fmt.Errorf("design: firewall policy name required")
	}
	if len(spec.Rules) == 0 {
		return ChangeResult{}, fmt.Errorf("design: firewall policy %q needs at least one rule", spec.Name)
	}
	return d.change(ctx, func(m *fbnet.Mutation, at *allocTracker) error {
		var policyID int64
		existing, err := m.Find("FirewallPolicy", fbnet.Eq("name", spec.Name))
		if err != nil {
			return err
		}
		if len(existing) == 1 {
			policyID = existing[0].ID
			// Replace the rule set.
			old, err := m.Referencing("FirewallRule", "policy", policyID)
			if err != nil {
				return err
			}
			for _, r := range old {
				if err := m.Delete("FirewallRule", r.ID); err != nil {
					return err
				}
			}
			if err := m.Update("FirewallPolicy", policyID, map[string]any{"direction": spec.Direction}); err != nil {
				return err
			}
		} else {
			policyID, err = m.Create("FirewallPolicy", map[string]any{
				"name": spec.Name, "direction": spec.Direction,
			})
			if err != nil {
				return err
			}
		}
		for i, rule := range spec.Rules {
			fields := map[string]any{
				"policy": policyID, "seq": int64((i + 1) * 10),
				"action": rule.Action, "protocol": rule.Protocol,
			}
			if rule.SrcPrefix != "" {
				fields["src_prefix"] = rule.SrcPrefix
			}
			if rule.DstPort != 0 {
				fields["dst_port"] = rule.DstPort
			}
			if _, err := m.Create("FirewallRule", fields); err != nil {
				return err
			}
		}
		return nil
	})
}

// AttachFirewall binds a policy to devices' control planes.
func (d *Designer) AttachFirewall(ctx ChangeContext, policyName string, devices []string) (ChangeResult, error) {
	return d.change(ctx, func(m *fbnet.Mutation, at *allocTracker) error {
		policy, err := m.FindOne("FirewallPolicy", fbnet.Eq("name", policyName))
		if err != nil {
			return err
		}
		for _, name := range devices {
			dev, err := m.FindOne("Device", fbnet.Eq("name", name))
			if err != nil {
				return err
			}
			dup, err := m.Find("DeviceFirewall", fbnet.And(
				fbnet.Eq("device", dev.ID), fbnet.Eq("policy", policy.ID)))
			if err != nil {
				return err
			}
			if len(dup) > 0 {
				continue // already attached
			}
			if _, err := m.Create("DeviceFirewall", map[string]any{
				"device": dev.ID, "policy": policy.ID,
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

// AssignOsImage records a device's target OS image (the design side of an
// OS upgrade, §1); the image must exist and belong to the device's vendor.
func (d *Designer) AssignOsImage(ctx ChangeContext, device, imageName string) (ChangeResult, error) {
	return d.change(ctx, func(m *fbnet.Mutation, at *allocTracker) error {
		dev, err := m.FindOne("Device", fbnet.Eq("name", device))
		if err != nil {
			return err
		}
		img, err := m.FindOne("OsImage", fbnet.Eq("name", imageName))
		if err != nil {
			return err
		}
		hw, err := m.Get("HardwareProfile", dev.Ref("hw_profile"))
		if err != nil {
			return err
		}
		if hw.Ref("vendor") != img.Ref("vendor") {
			return fmt.Errorf("design: image %s is for a different vendor than %s", imageName, device)
		}
		return m.Update("Device", dev.ID, map[string]any{"os_image": img.ID})
	})
}

// EnsureOsImage registers a qualified OS image for a vendor.
func (d *Designer) EnsureOsImage(ctx ChangeContext, name, version, vendorName string) (ChangeResult, error) {
	return d.change(ctx, func(m *fbnet.Mutation, at *allocTracker) error {
		if existing, err := m.Find("OsImage", fbnet.Eq("name", name)); err != nil {
			return err
		} else if len(existing) > 0 {
			return fmt.Errorf("design: OS image %q already exists", name)
		}
		vendor, err := m.FindOne("Vendor", fbnet.Eq("name", vendorName))
		if err != nil {
			return err
		}
		_, err = m.Create("OsImage", map[string]any{
			"name": name, "version": version, "vendor": vendor.ID,
		})
		return err
	})
}
