package design

import (
	"fmt"

	"github.com/robotron-net/robotron/internal/fbnet"
)

// Drain management: circuit and device maintenance "can involve ...
// 'drain' and 'undrain' procedures to avoid the interruption of production
// traffic" (§1). drain_state is the paper's example of a purely
// operational attribute added to Desired models (§6.1).

// SetDrainState records a device's drain state as an attributed design
// change.
func (d *Designer) SetDrainState(ctx ChangeContext, device, state string) (ChangeResult, error) {
	if state != "drained" && state != "undrained" {
		return ChangeResult{}, fmt.Errorf("design: drain state must be drained or undrained, got %q", state)
	}
	return d.change(ctx, func(m *fbnet.Mutation, at *allocTracker) error {
		dev, err := m.FindOne("Device", fbnet.Eq("name", device))
		if err != nil {
			return err
		}
		if dev.String("drain_state") == state {
			return fmt.Errorf("design: %s is already %s", device, state)
		}
		return m.Update("Device", dev.ID, map[string]any{"drain_state": state})
	})
}

// IsDrained reports a device's recorded drain state.
func (d *Designer) IsDrained(device string) (bool, error) {
	dev, err := d.store.FindOne("Device", fbnet.Eq("name", device))
	if err != nil {
		return false, err
	}
	return dev.String("drain_state") == "drained", nil
}
