package design

import (
	"testing"

	"github.com/robotron-net/robotron/internal/fbnet"
)

func TestAddRackGrowsCluster(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("dc1", "dc", "nam")
	tpl := DCGen2(2)
	if _, err := d.BuildCluster(testCtx("dc"), "dc1", "dc1-c1", tpl); err != nil {
		t.Fatal(err)
	}
	racksBefore, _ := d.Store().Count("Rack")
	devsBefore, _ := d.Store().Count("Device")
	res, err := d.AddRack(testCtx("dc"), "dc1-c1", tpl.RackTORProfle,
		tpl.UplinkRole, tpl.UplinksPerTOR, tpl.Addressing.V6, tpl.Addressing.V4)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ref := range res.Stats.Created {
		counts[ref.Model]++
	}
	if counts["Rack"] != 1 || counts["Device"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	// 2 uplinks x 2-circuit bundles.
	if counts["Circuit"] != 4 || counts["LinkGroup"] != 2 {
		t.Errorf("uplink counts = %v", counts)
	}
	// The new TOR's sessions reuse the fsw's existing AS (deviceAS).
	racksAfter, _ := d.Store().Count("Rack")
	devsAfter, _ := d.Store().Count("Device")
	if racksAfter != racksBefore+1 || devsAfter != devsBefore+1 {
		t.Errorf("rack/device deltas = %d/%d", racksAfter-racksBefore, devsAfter-devsBefore)
	}
	sessions, _ := d.Store().Find("BgpV6Session", fbnet.Eq("session_type", "ebgp"))
	asOK := false
	for _, s := range sessions {
		if s.Int("local_as") >= 65500 && s.Int("remote_as") >= 64700 && s.Int("remote_as") < 64800 {
			asOK = true
		}
	}
	if !asOK {
		t.Error("new rack sessions do not carry the fabric AS numbers")
	}
	violations, err := ValidateDesign(d.Store())
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("violations after rack add: %v", violations)
	}
	// Rejections.
	if _, err := d.AddRack(testCtx("dc"), "ghost", tpl.RackTORProfle, tpl.UplinkRole, 2, true, true); err == nil {
		t.Error("unknown cluster should fail")
	}
	if _, err := d.AddRack(testCtx("dc"), "dc1-c1", tpl.RackTORProfle, "bogus-role", 2, true, true); err == nil {
		t.Error("missing uplink role should fail")
	}
	if _, err := d.AddRack(testCtx("dc"), "dc1-c1", tpl.RackTORProfle, tpl.UplinkRole, 0, true, true); err == nil {
		t.Error("zero uplinks should fail")
	}
}

// TestRemoveRouterCleansFarEnds pins the far-end dependency resolution:
// removing a router must retire the *other* router's interfaces,
// aggregates, and prefix objects on their shared bundles — otherwise the
// freed p2p subnets linger on orphans and a later allocation collides
// (the Fig. 15 harness originally caught this).
func TestRemoveRouterCleansFarEnds(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("bb-site", "backbone", "nam")
	for _, n := range []string{"bb1", "bb2", "bb3"} {
		if _, err := d.AddBackboneRouter(testCtx("backbone"), n, "bb-site", "Backbone_Vendor2", "bb"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.AddBackboneCircuit(testCtx("backbone"), "bb1", "bb2", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddBackboneCircuit(testCtx("backbone"), "bb2", "bb3", 1); err != nil {
		t.Fatal(err)
	}
	// Remove bb2: both bundles die; bb1 and bb3 must come out clean.
	if _, err := d.RemoveBackboneRouter(testCtx("backbone"), "bb2"); err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{"Circuit", "LinkGroup", "AggregatedInterface", "PhysicalInterface", "V6Prefix", "V4Prefix"} {
		if n, _ := d.Store().Count(model); n != 0 {
			objs, _ := d.Store().Find(model, nil)
			t.Errorf("%d orphaned %s objects after removal: %v", n, model, objs[0].Fields)
		}
	}
	// The freed subnets are reusable without collision: provision a new
	// bundle that will walk the same pool space.
	for i := 0; i < 4; i++ {
		if _, err := d.AddBackboneCircuit(testCtx("backbone"), "bb1", "bb3", 1); err != nil {
			t.Fatalf("re-allocation %d collided: %v", i, err)
		}
		cir, err := d.Store().FindOne("Circuit", fbnet.Contains("circuit_id", "bb1"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.DeleteCircuit(testCtx("backbone"), cir.String("circuit_id")); err != nil {
			t.Fatal(err)
		}
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Rule: "p2p-same-subnet", Model: "LinkGroup", ID: 7, Detail: "mismatch"}
	if got := v.String(); got != "p2p-same-subnet: LinkGroup id 7: mismatch" {
		t.Errorf("String = %q", got)
	}
}
