package design

import (
	"errors"
	"testing"

	"github.com/robotron-net/robotron/internal/fbnet"
)

func TestReviewGateApprove(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("pop1", "pop", "apac")
	var reviewed fbnet.ChangeStats
	ctx := testCtx("pop")
	ctx.Review = func(s fbnet.ChangeStats) bool {
		reviewed = s
		return true
	}
	res, err := d.BuildCluster(ctx, "pop1", "c1", POPGen1())
	if err != nil {
		t.Fatal(err)
	}
	if len(reviewed.Created) != len(res.Stats.Created) {
		t.Errorf("reviewer saw %d created objects, change recorded %d",
			len(reviewed.Created), len(res.Stats.Created))
	}
}

func TestReviewGateReject(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("pop1", "pop", "apac")
	used := d.pools.V6P2P.Used()
	ctx := testCtx("pop")
	ctx.Review = func(s fbnet.ChangeStats) bool { return false }
	_, err := d.BuildCluster(ctx, "pop1", "c1", POPGen1())
	if !errors.Is(err, ErrReviewRejected) {
		t.Fatalf("want ErrReviewRejected, got %v", err)
	}
	// Everything rolled back: no objects, no change record, no leaked
	// addresses.
	for _, model := range []string{"Device", "Circuit", "Cluster", "DesignChange"} {
		if n, _ := d.Store().Count(model); n != 0 {
			t.Errorf("%d %s objects survive a rejected review", n, model)
		}
	}
	if d.pools.V6P2P.Used() != used {
		t.Error("pool allocations leaked on rejected review")
	}
}

func TestDrainStateLifecycle(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("bb-site", "backbone", "nam")
	if _, err := d.AddBackboneRouter(testCtx("backbone"), "bb1", "bb-site", "Backbone_Vendor2", "bb"); err != nil {
		t.Fatal(err)
	}
	// Backbone routers start drained.
	drained, err := d.IsDrained("bb1")
	if err != nil || !drained {
		t.Fatalf("new router drained = %v, %v", drained, err)
	}
	res, err := d.SetDrainState(testCtx("backbone"), "bb1", "undrained")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Modified) != 1 {
		t.Errorf("drain change stats = %+v", res.Stats)
	}
	if drained, _ := d.IsDrained("bb1"); drained {
		t.Error("still drained after undrain")
	}
	// Idempotent transitions are rejected (operator safety: a no-op drain
	// usually means the wrong device name).
	if _, err := d.SetDrainState(testCtx("backbone"), "bb1", "undrained"); err == nil {
		t.Error("repeated undrain should fail")
	}
	if _, err := d.SetDrainState(testCtx("backbone"), "bb1", "bogus"); err == nil {
		t.Error("bad state should fail")
	}
	if _, err := d.SetDrainState(testCtx("backbone"), "ghost", "drained"); err == nil {
		t.Error("unknown device should fail")
	}
}
