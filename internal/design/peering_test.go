package design

import (
	"strings"
	"testing"

	"github.com/robotron-net/robotron/internal/fbnet"
)

// popWithPR builds a POP cluster so a peering router exists.
func popWithPR(t *testing.T) (*Designer, string) {
	t.Helper()
	d := newTestDesigner(t)
	if _, err := d.EnsureSite("pop1", "pop", "apac"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.BuildCluster(testCtx("pop"), "pop1", "pop1-c1", POPGen1()); err != nil {
		t.Fatal(err)
	}
	return d, "pr1.pop1-c1"
}

func TestAddPeeringCreatesFullGraph(t *testing.T) {
	d, pr := popWithPR(t)
	res, sessionID, err := d.AddPeering(testCtx("pop"), PeeringSpec{
		Device: pr, Partner: "ISP-One", ASN: 3356, Kind: "transit", LocalAS: 32934,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ref := range res.Stats.Created {
		counts[ref.Model]++
	}
	for model, want := range map[string]int{
		"ASN": 1, "PeeringPartner": 1, "PeeringInterconnect": 1,
		"BgpV6Session": 1, "AggregatedInterface": 1, "PhysicalInterface": 1, "V6Prefix": 1,
	} {
		if counts[model] != want {
			t.Errorf("%s created = %d, want %d (counts %v)", model, counts[model], want, counts)
		}
	}
	s, err := d.Store().GetByID("BgpV6Session", sessionID)
	if err != nil {
		t.Fatal(err)
	}
	if s.Int("remote_as") != 3356 || s.Ref("remote_device") != 0 {
		t.Errorf("session = %+v", s.Fields)
	}
	// The interconnect points at the session and partner.
	ic, err := d.Store().FindOne("PeeringInterconnect", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ic.Ref("v6_session") != sessionID || ic.String("kind") != "transit" {
		t.Errorf("interconnect = %+v", ic.Fields)
	}
}

func TestAddPeeringReusesPartnerAndASN(t *testing.T) {
	d, pr := popWithPR(t)
	if _, _, err := d.AddPeering(testCtx("pop"), PeeringSpec{
		Device: pr, Partner: "ISP-One", ASN: 3356, Kind: "peering", LocalAS: 32934,
	}); err != nil {
		t.Fatal(err)
	}
	// Second interconnect with the same partner on the other PR.
	if _, _, err := d.AddPeering(testCtx("pop"), PeeringSpec{
		Device: "pr2.pop1-c1", Partner: "ISP-One", ASN: 3356, Kind: "peering", LocalAS: 32934,
	}); err != nil {
		t.Fatal(err)
	}
	if n, _ := d.Store().Count("PeeringPartner"); n != 1 {
		t.Errorf("partners = %d, want 1 (reused)", n)
	}
	if n, _ := d.Store().Count("ASN"); n != 1 {
		t.Errorf("ASNs = %d, want 1 (reused)", n)
	}
	if n, _ := d.Store().Count("PeeringInterconnect"); n != 2 {
		t.Errorf("interconnects = %d", n)
	}
}

func TestAddPeeringValidation(t *testing.T) {
	d, pr := popWithPR(t)
	cases := []PeeringSpec{
		{Device: pr, Partner: "X", ASN: 1, Kind: "bogus", LocalAS: 1},
		{Device: pr, Partner: "X", ASN: 0, Kind: "peering", LocalAS: 1},
		{Device: pr, Partner: "X", ASN: 1, Kind: "peering", LocalAS: 0},
		{Device: "psw1.pop1-c1", Partner: "X", ASN: 1, Kind: "peering", LocalAS: 2}, // not a PR
		{Device: "ghost", Partner: "X", ASN: 1, Kind: "peering", LocalAS: 2},
	}
	for i, spec := range cases {
		if _, _, err := d.AddPeering(testCtx("pop"), spec); err == nil {
			t.Errorf("case %d should fail: %+v", i, spec)
		}
	}
}

func TestAddPeeringWithImportPolicy(t *testing.T) {
	d, pr := popWithPR(t)
	_, sessionID, err := d.AddPeering(testCtx("pop"), PeeringSpec{
		Device: pr, Partner: "ISP-Two", ASN: 2914, Kind: "peering", LocalAS: 32934,
		ImportPolicy: &PolicySpec{
			Name: "isp-two-cherry-picked",
			Terms: []PolicyTermSpec{
				{MatchPrefix: "2001:db8:1::/48", Action: "accept"},
				{MatchPrefix: "2001:db8:2::/48", Action: "accept"},
				{Action: "reject"},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := d.Store().GetByID("BgpV6Session", sessionID)
	if s.Ref("import_policy") == 0 {
		t.Fatal("session has no import policy")
	}
	terms, err := d.Store().Find("PolicyTerm", fbnet.Eq("policy", s.Ref("import_policy")))
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 3 {
		t.Errorf("terms = %d", len(terms))
	}
	// Terms are sequenced 10, 20, 30.
	var seqs []int64
	for _, term := range terms {
		seqs = append(seqs, term.Int("seq"))
	}
	if seqs[0] != 10 || seqs[2] != 30 {
		t.Errorf("seqs = %v", seqs)
	}
}

func TestPolicyDeleteRestrictedWhileReferenced(t *testing.T) {
	d, pr := popWithPR(t)
	_, sessionID, err := d.AddPeering(testCtx("pop"), PeeringSpec{
		Device: pr, Partner: "ISP-Two", ASN: 2914, Kind: "peering", LocalAS: 32934,
		ImportPolicy: &PolicySpec{Name: "pol", Terms: []PolicyTermSpec{{Action: "accept"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := d.Store().GetByID("BgpV6Session", sessionID)
	_, err = d.Store().Mutate(func(m *fbnet.Mutation) error {
		return m.Delete("RoutingPolicy", s.Ref("import_policy"))
	})
	if err == nil || !strings.Contains(err.Error(), "still referenced") {
		t.Errorf("deleting a referenced policy should RESTRICT, got %v", err)
	}
}
