// Package design implements Robotron's network design stage (SIGCOMM '16,
// §5.1): translating high-level, human-specified designs into Desired
// FBNet objects.
//
// POP and DC clusters have standardized fat-tree architectures captured by
// topology templates (Fig. 7): device groups with hardware profiles, link
// groups connecting them, and an addressing scheme. Materializing a
// template creates all devices, linecards, interfaces, circuits, prefixes,
// and BGP sessions for the cluster in one atomic design change.
//
// The backbone, in contrast, evolves incrementally: the device and circuit
// design tools add/remove routers and add/migrate/delete circuits,
// resolving object dependencies (iBGP mesh membership, interface/prefix/
// session re-association) through FBNet's relationship fields (§5.1.2).
//
// Every operation is validated against network design rules (§5.1.3) and
// recorded as a DesignChange with employee and ticket IDs; the change's
// created/modified/deleted object counts are the quantity reported in the
// paper's Figure 15.
package design

import (
	"fmt"
)

// DeviceSpec declares one group of identical devices in a template.
type DeviceSpec struct {
	Role       string // pr, bb, dr, psw, fsw, tor
	Count      int
	HwProfile  string // HardwareProfile name; must exist in FBNet
	NamePrefix string // device names become <NamePrefix><n>.<cluster>
}

// LinkSpec declares full-mesh connectivity between two device groups:
// every (A, Z) pair gets one link group of CircuitsPerLink parallel
// circuits (the paper's "each (PR, PSW) pair is connected by a link bundle
// with 2 circuits").
type LinkSpec struct {
	ARole           string
	ZRole           string
	CircuitsPerLink int
	// EBGP establishes an eBGP session per link group over its p2p subnet.
	EBGP bool
}

// AddressingSpec selects the address families provisioned on link bundles.
type AddressingSpec struct {
	V6 bool
	V4 bool
	// LocalASBase assigns private ASNs per role for eBGP fabrics
	// (RFC 7938-style); 0 disables.
	LocalASBase map[string]int64
}

// TopologyTemplate is the Fig. 7 artifact: a reusable cluster design.
type TopologyTemplate struct {
	Name       string
	Generation string // e.g. "pop-gen1", "dc-gen3"
	Devices    []DeviceSpec
	Links      []LinkSpec
	Addressing AddressingSpec
	// Racks adds server racks with TOR switches: Racks TORs are cabled to
	// every device of UplinkRole with UplinksPerTOR circuits total.
	Racks         int
	RackTORProfle string
	UplinkRole    string
	UplinksPerTOR int
}

// Validate checks the template against design rules before any FBNet
// object is touched: "one could specify incomplete and incorrect designs
// like missing or incorrect device and link specification in the template"
// (§5.1.3).
func (t *TopologyTemplate) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("design: template name must not be empty")
	}
	roles := map[string]int{}
	for _, ds := range t.Devices {
		if ds.Count <= 0 {
			return fmt.Errorf("design: template %s: device group %s has non-positive count %d", t.Name, ds.Role, ds.Count)
		}
		if ds.HwProfile == "" {
			return fmt.Errorf("design: template %s: device group %s is missing a hardware profile", t.Name, ds.Role)
		}
		if ds.NamePrefix == "" {
			return fmt.Errorf("design: template %s: device group %s is missing a name prefix", t.Name, ds.Role)
		}
		if _, dup := roles[ds.Role]; dup {
			return fmt.Errorf("design: template %s: duplicate device group for role %s", t.Name, ds.Role)
		}
		roles[ds.Role] = ds.Count
	}
	if len(roles) == 0 {
		return fmt.Errorf("design: template %s: no device groups", t.Name)
	}
	for _, ls := range t.Links {
		if _, ok := roles[ls.ARole]; !ok {
			return fmt.Errorf("design: template %s: link spec references missing role %q", t.Name, ls.ARole)
		}
		if _, ok := roles[ls.ZRole]; !ok {
			return fmt.Errorf("design: template %s: link spec references missing role %q", t.Name, ls.ZRole)
		}
		if ls.ARole == ls.ZRole {
			return fmt.Errorf("design: template %s: link spec connects role %q to itself", t.Name, ls.ARole)
		}
		if ls.CircuitsPerLink <= 0 {
			return fmt.Errorf("design: template %s: link %s-%s has non-positive circuit count", t.Name, ls.ARole, ls.ZRole)
		}
	}
	if !t.Addressing.V4 && !t.Addressing.V6 {
		return fmt.Errorf("design: template %s: at least one address family required", t.Name)
	}
	if t.Racks > 0 {
		if t.RackTORProfle == "" {
			return fmt.Errorf("design: template %s: racks declared without a TOR hardware profile", t.Name)
		}
		if _, ok := roles[t.UplinkRole]; !ok {
			return fmt.Errorf("design: template %s: rack uplink role %q not in template", t.Name, t.UplinkRole)
		}
		if t.UplinksPerTOR <= 0 {
			return fmt.Errorf("design: template %s: non-positive uplinks per TOR", t.Name)
		}
	}
	return nil
}

// --- the standard architecture generations (Fig. 12) ---

// POPGen1 is the paper's 4-post POP cluster (Fig. 2, Fig. 7): 2 PRs, 4
// PSWs, each (PR, PSW) pair bundled with 2 circuits, eBGP over IPv6.
// Materializing it creates the paper's 94 objects of the Fig. 7 types
// (6 devices + 8 portmaps × (2 circuits + 4 physical interfaces + 2
// aggregated interfaces + 2 prefixes + 1 BGP session)).
func POPGen1() TopologyTemplate {
	return TopologyTemplate{
		Name:       "pop-4post",
		Generation: "pop-gen1",
		Devices: []DeviceSpec{
			{Role: "pr", Count: 2, HwProfile: "Router_Vendor1", NamePrefix: "pr"},
			{Role: "psw", Count: 4, HwProfile: "Switch_Vendor2", NamePrefix: "psw"},
		},
		Links: []LinkSpec{
			{ARole: "pr", ZRole: "psw", CircuitsPerLink: 2, EBGP: true},
		},
		Addressing: AddressingSpec{
			V6:          true,
			LocalASBase: map[string]int64{"pr": 65000, "psw": 65100},
		},
	}
}

// POPGen2 is the merged, larger POP generation: 4 PRs, 8 PSWs, 4-circuit
// bundles.
func POPGen2() TopologyTemplate {
	return TopologyTemplate{
		Name:       "pop-8post",
		Generation: "pop-gen2",
		Devices: []DeviceSpec{
			{Role: "pr", Count: 4, HwProfile: "Router_Vendor1", NamePrefix: "pr"},
			{Role: "psw", Count: 8, HwProfile: "Switch_Vendor2", NamePrefix: "psw"},
		},
		Links: []LinkSpec{
			{ARole: "pr", ZRole: "psw", CircuitsPerLink: 4, EBGP: true},
		},
		Addressing: AddressingSpec{
			V6: true, V4: true,
			LocalASBase: map[string]int64{"pr": 65000, "psw": 65100},
		},
	}
}

// DCGen1 is the L2 cluster generation: 4 DRs and 16 TOR-facing FSWs, no
// BGP in the fabric (pre-"Gen2 L3 BGP" transition, §6.1), v4 only.
func DCGen1(racks int) TopologyTemplate {
	return TopologyTemplate{
		Name:       "dc-gen1-l2",
		Generation: "dc-gen1",
		Devices: []DeviceSpec{
			{Role: "dr", Count: 4, HwProfile: "Router_Vendor2", NamePrefix: "dr"},
			{Role: "fsw", Count: 16, HwProfile: "Switch_Vendor1", NamePrefix: "fsw"},
		},
		Links: []LinkSpec{
			{ARole: "dr", ZRole: "fsw", CircuitsPerLink: 1},
		},
		Addressing:    AddressingSpec{V4: true},
		Racks:         racks,
		RackTORProfle: "TOR_Vendor1",
		UplinkRole:    "fsw",
		UplinksPerTOR: 2,
	}
}

// DCGen2 is the L3 BGP cluster generation: dual-stack eBGP fabric.
func DCGen2(racks int) TopologyTemplate {
	return TopologyTemplate{
		Name:       "dc-gen2-bgp",
		Generation: "dc-gen2",
		Devices: []DeviceSpec{
			{Role: "dr", Count: 4, HwProfile: "Router_Vendor2", NamePrefix: "dr"},
			{Role: "fsw", Count: 16, HwProfile: "Switch_Vendor1", NamePrefix: "fsw"},
		},
		Links: []LinkSpec{
			{ARole: "dr", ZRole: "fsw", CircuitsPerLink: 4, EBGP: true},
		},
		Addressing: AddressingSpec{
			V6: true, V4: true,
			LocalASBase: map[string]int64{"dr": 64600, "fsw": 64700},
		},
		Racks:         racks,
		RackTORProfle: "TOR_Vendor1",
		UplinkRole:    "fsw",
		UplinksPerTOR: 2,
	}
}

// DCGen3 is the IPv6-only generation, forced by "the exhaustion of the
// private IPv4 address space" (§6).
func DCGen3(racks int) TopologyTemplate {
	return TopologyTemplate{
		Name:       "dc-gen3-v6only",
		Generation: "dc-gen3",
		Devices: []DeviceSpec{
			{Role: "dr", Count: 4, HwProfile: "Router_Vendor2", NamePrefix: "dr"},
			{Role: "ssw", Count: 4, HwProfile: "Switch_Vendor2", NamePrefix: "ssw"},
			{Role: "fsw", Count: 16, HwProfile: "Switch_Vendor1", NamePrefix: "fsw"},
		},
		Links: []LinkSpec{
			{ARole: "dr", ZRole: "ssw", CircuitsPerLink: 4, EBGP: true},
			{ARole: "ssw", ZRole: "fsw", CircuitsPerLink: 2, EBGP: true},
		},
		Addressing: AddressingSpec{
			V6:          true,
			LocalASBase: map[string]int64{"dr": 64600, "ssw": 64650, "fsw": 64700},
		},
		Racks:         racks,
		RackTORProfle: "TOR_Vendor1",
		UplinkRole:    "fsw",
		UplinksPerTOR: 4,
	}
}
