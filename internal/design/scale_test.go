package design

import (
	"fmt"
	"testing"
	"time"
)

// TestTensOfThousandsWithinMinutes pins the §5.1.1 scale claim: "Robotron
// is able to translate these designs to tens of thousands of FBNet
// objects within minutes." Ten 48-rack Gen3 clusters materialize well
// over 30,000 objects; the claim allows minutes, we assert a far tighter
// bound.
func TestTensOfThousandsWithinMinutes(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test in -short mode")
	}
	d := newTestDesigner(t)
	if _, err := d.EnsureSite("dc1", "dc", "nam"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	total := 0
	for i := 0; i < 10; i++ {
		res, err := d.BuildCluster(testCtx("dc"), "dc1", fmt.Sprintf("dc1-big%d", i), DCGen3(48))
		if err != nil {
			t.Fatal(err)
		}
		total += len(res.Stats.Created)
	}
	elapsed := time.Since(start)
	if total < 30_000 {
		t.Errorf("materialized %d objects, want >= 30000", total)
	}
	if elapsed > 2*time.Minute {
		t.Errorf("materialization took %v, want well under minutes", elapsed)
	}
	t.Logf("materialized %d FBNet objects in %v", total, elapsed)
	// The resulting estate still passes every design rule.
	violations, err := ValidateDesign(d.Store())
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("%d violations at scale", len(violations))
	}
}
