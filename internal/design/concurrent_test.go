package design

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentDesignChangesSerialize addresses the §8 "Stale Configs"
// discussion: "how to serialize concurrent design changes ... remains an
// open problem. At Facebook's scale, handling multiple writers with a
// lock-based mechanism can be challenging." At this reproduction's scale
// the single-writer store serializes concurrent changes safely: all
// succeed or fail atomically and the resulting design is valid.
func TestConcurrentDesignChangesSerialize(t *testing.T) {
	d := newTestDesigner(t)
	d.EnsureSite("pop1", "pop", "apac")
	d.EnsureSite("bb-site", "backbone", "nam")
	for _, n := range []string{"bb1", "bb2", "bb3", "bb4"} {
		if _, err := d.AddBackboneRouter(testCtx("backbone"), n, "bb-site", "Backbone_Vendor2", "bb"); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	// Cluster builds and backbone changes race.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := d.BuildCluster(testCtx("pop"), "pop1", fmt.Sprintf("c%d", i), POPGen1())
			errs <- err
		}(i)
	}
	pairs := [][2]string{{"bb1", "bb2"}, {"bb2", "bb3"}, {"bb3", "bb4"}, {"bb4", "bb1"}}
	for _, p := range pairs {
		wg.Add(1)
		go func(a, z string) {
			defer wg.Done()
			_, err := d.AddBackboneCircuit(testCtx("backbone"), a, z, 1)
			errs <- err
		}(p[0], p[1])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Every change landed and the combined design is rule-clean.
	changes, _ := d.Store().Count("DesignChange")
	if changes != 4+4+4 { // router adds + builds + circuits
		t.Errorf("design changes = %d, want 12", changes)
	}
	if n, _ := d.Store().Count("Cluster"); n != 4 {
		t.Errorf("clusters = %d", n)
	}
	violations, err := ValidateDesign(d.Store())
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("violations after concurrent changes: %v", violations)
	}
	// No duplicate prefixes slipped through (uniqueness is transactional).
	prefixes, _ := d.Store().Find("V6Prefix", nil)
	seen := map[string]bool{}
	for _, p := range prefixes {
		if seen[p.String("prefix")] {
			t.Errorf("duplicate prefix %s", p.String("prefix"))
		}
		seen[p.String("prefix")] = true
	}
}
