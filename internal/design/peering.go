package design

import (
	"fmt"

	"github.com/robotron-net/robotron/internal/fbnet"
)

// Peering provisioning (§2.1): POPs connect to ISPs via peering and
// transit interconnects on the peering routers. A peering turn-up creates
// the partner and ASN records, an interface with point-to-point
// addressing on the PR, an eBGP session to the partner, and — when the
// partner requires one — a custom import policy of cherry-picked prefixes
// (the §8 "Complexity of Modeling" incident involved exactly such a
// session).

// PolicyTermSpec is one term of a routing policy.
type PolicyTermSpec struct {
	MatchPrefix string // empty matches everything
	Action      string // "accept", "reject", "prepend"
}

// PolicySpec is a named routing policy to create (or reuse by name).
type PolicySpec struct {
	Name  string
	Terms []PolicyTermSpec
}

// PeeringSpec describes one peering/transit turn-up.
type PeeringSpec struct {
	// Device is the peering router taking the interconnect.
	Device string
	// Partner is the external network's name; ASN its AS number.
	Partner string
	ASN     int64
	// Kind is "peering" or "transit".
	Kind string
	// LocalAS is our AS on the session.
	LocalAS int64
	// ImportPolicy optionally restricts accepted prefixes.
	ImportPolicy *PolicySpec
}

// AddPeering turns up a peering interconnect as one design change and
// returns the created BgpV6Session id alongside the change result.
func (d *Designer) AddPeering(ctx ChangeContext, spec PeeringSpec) (ChangeResult, int64, error) {
	if spec.Kind != "peering" && spec.Kind != "transit" {
		return ChangeResult{}, 0, fmt.Errorf("design: peering kind must be peering or transit, got %q", spec.Kind)
	}
	if spec.ASN <= 0 || spec.LocalAS <= 0 {
		return ChangeResult{}, 0, fmt.Errorf("design: peering requires both AS numbers")
	}
	// The old check looked at each AS in isolation; an eBGP interconnect
	// whose two sides share one AS is a contradiction the partner's side
	// would reject at session bring-up.
	if spec.ASN == spec.LocalAS {
		return ChangeResult{}, 0, fmt.Errorf("design: eBGP peering with %s requires distinct AS numbers, both sides are %d", spec.Partner, spec.ASN)
	}
	var sessionID int64
	res, err := d.change(ctx, func(m *fbnet.Mutation, at *allocTracker) error {
		dev, err := m.FindOne("Device", fbnet.Eq("name", spec.Device))
		if err != nil {
			return err
		}
		if dev.String("role") != "pr" {
			return fmt.Errorf("design: peering terminates on peering routers; %s is a %s", spec.Device, dev.String("role"))
		}
		// ASN and partner records (reused when they exist).
		asnID, err := ensureByField(m, "ASN", "number", spec.ASN, map[string]any{
			"number": spec.ASN, "name": spec.Partner,
		})
		if err != nil {
			return err
		}
		partnerID, err := ensureByField(m, "PeeringPartner", "name", spec.Partner, map[string]any{
			"name": spec.Partner, "asn": asnID,
		})
		if err != nil {
			return err
		}
		// The interconnect interface: a dedicated aggregate + port with
		// point-to-point addressing; our side is A, the partner takes Z.
		pa := newPortAllocator(m)
		aggNum, err := pa.nextAggNumber(dev.ID)
		if err != nil {
			return err
		}
		aggID, err := m.Create("AggregatedInterface", map[string]any{
			"name": fmt.Sprintf("ae%d", aggNum), "number": aggNum, "mtu": 1500, "device": dev.ID,
		})
		if err != nil {
			return err
		}
		if _, _, err := pa.allocPort(dev.ID, aggID); err != nil {
			return err
		}
		pp, err := at.p2p(true, fmt.Sprintf("peering:%s--%s", spec.Device, spec.Partner))
		if err != nil {
			return err
		}
		prefixID, err := m.Create("V6Prefix", map[string]any{
			"prefix": pp.APrefix(), "interface": aggID, "purpose": "external",
		})
		if err != nil {
			return err
		}
		// Optional custom import policy.
		var policyID int64
		if spec.ImportPolicy != nil {
			policyID, err = d.ensurePolicy(m, *spec.ImportPolicy)
			if err != nil {
				return err
			}
		}
		fields := map[string]any{
			"local_device": dev.ID, "local_prefix": prefixID,
			"remote_addr": pp.Z.String(),
			"local_as":    spec.LocalAS, "remote_as": spec.ASN,
			"session_type": "ebgp",
		}
		if policyID != 0 {
			fields["import_policy"] = policyID
		}
		sessionID, err = m.Create("BgpV6Session", fields)
		if err != nil {
			return err
		}
		_, err = m.Create("PeeringInterconnect", map[string]any{
			"partner": partnerID, "device": dev.ID, "kind": spec.Kind,
			"v6_session": sessionID,
		})
		return err
	})
	if err != nil {
		return ChangeResult{}, 0, err
	}
	return res, sessionID, nil
}

// ensurePolicy creates (or reuses by name) a routing policy with its terms.
func (d *Designer) ensurePolicy(m *fbnet.Mutation, spec PolicySpec) (int64, error) {
	if spec.Name == "" {
		return 0, fmt.Errorf("design: policy name required")
	}
	if existing, err := m.Find("RoutingPolicy", fbnet.Eq("name", spec.Name)); err != nil {
		return 0, err
	} else if len(existing) == 1 {
		return existing[0].ID, nil
	}
	id, err := m.Create("RoutingPolicy", map[string]any{"name": spec.Name})
	if err != nil {
		return 0, err
	}
	for i, term := range spec.Terms {
		fields := map[string]any{
			"policy": id, "seq": int64((i + 1) * 10), "action": term.Action,
		}
		if term.MatchPrefix != "" {
			fields["match_prefix"] = term.MatchPrefix
		}
		if _, err := m.Create("PolicyTerm", fields); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// ensureByField returns the id of the object whose field equals v,
// creating it with the given fields when absent.
func ensureByField(m *fbnet.Mutation, model, field string, v any, fields map[string]any) (int64, error) {
	existing, err := m.Find(model, fbnet.Eq(field, v))
	if err != nil {
		return 0, err
	}
	if len(existing) >= 1 {
		return existing[0].ID, nil
	}
	return m.Create(model, fields)
}
