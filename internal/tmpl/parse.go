package tmpl

import (
	"fmt"
	"strconv"
	"strings"
)

// A node is one element of the parsed template tree.
type node interface {
	render(st *state) error
}

// textNode emits literal text.
type textNode struct {
	text string
}

// varNode evaluates an expression (with optional filters) and writes it.
type varNode struct {
	expr expr
	line int
}

// ifNode holds one or more condition/body branches plus an optional else.
type ifNode struct {
	branches []ifBranch
	elseBody []node
}

type ifBranch struct {
	cond expr
	body []node
}

// forNode iterates body over the elements of an iterable expression.
type forNode struct {
	loopVar   string
	secondVar string // set for "for k, v in map" style loops
	iter      expr
	body      []node
	empty     []node // rendered when the iterable is empty
	line      int
}

// withNode binds a name to a value for the duration of its body.
type withNode struct {
	name string
	val  expr
	body []node
}

// expr is an evaluable template expression.
type expr interface {
	eval(st *state) (value, error)
}

// literalExpr is a string, number, or boolean constant.
type literalExpr struct {
	v value
}

func (e literalExpr) eval(*state) (value, error) { return e.v, nil }

// pathExpr resolves a dotted variable path against the context. norm
// holds the parse-time normalized (lowered, underscore-free) form of each
// part, so attribute resolution never normalizes at render time.
type pathExpr struct {
	parts []string
	norm  []string
	line  int
}

func newPathExpr(dotted string) *pathExpr {
	parts := strings.Split(dotted, ".")
	norm := make([]string, len(parts))
	for i, p := range parts {
		norm[i] = normalizeName(p)
	}
	return &pathExpr{parts: parts, norm: norm}
}

// filterExpr applies a named filter (with optional argument) to its input.
type filterExpr struct {
	in   expr
	name string
	arg  expr // may be nil
	line int
}

// binaryExpr is a comparison or logical combination of two sub-expressions.
type binaryExpr struct {
	op   string // == != < <= > >= in and or
	l, r expr
}

// notExpr negates the truthiness of its operand.
type notExpr struct {
	in expr
}

// Loader resolves {% include %} paths to template source (e.g. from the
// config repository).
type Loader func(path string) (string, error)

// parser consumes the token stream produced by lex.
type parser struct {
	toks      []token
	pos       int
	loader    Loader
	including map[string]bool // include-cycle detection
}

type parseError struct {
	line int
	msg  string
}

func (e *parseError) Error() string {
	return fmt.Sprintf("template: line %d: %s", e.line, e.msg)
}

func (p *parser) errf(line int, format string, args ...any) error {
	return &parseError{line: line, msg: fmt.Sprintf(format, args...)}
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// parse parses until one of the given terminator block tags (e.g. "endif",
// "else") or EOF. It returns the nodes and the terminator tag seen ("" at
// EOF). Terminators are matched against the first word of block tags.
func (p *parser) parse(terminators ...string) ([]node, string, error) {
	var nodes []node
	for {
		t := p.next()
		switch t.kind {
		case tokEOF:
			if len(terminators) > 0 {
				return nil, "", p.errf(t.line, "unexpected EOF, expected {%% %s %%}", strings.Join(terminators, " / "))
			}
			return nodes, "", nil
		case tokText:
			nodes = append(nodes, &textNode{text: t.val})
		case tokComment:
			// dropped
		case tokVar:
			e, err := parseExprString(t.val)
			if err != nil {
				return nil, "", p.errf(t.line, "bad variable tag {{ %s }}: %v", t.val, err)
			}
			nodes = append(nodes, &varNode{expr: e, line: t.line})
		case tokBlock:
			name, rest := splitTag(t.val)
			for _, term := range terminators {
				if name == term {
					return nodes, name, nil
				}
			}
			n, err := p.parseBlock(name, rest, t)
			if err != nil {
				return nil, "", err
			}
			if n != nil {
				nodes = append(nodes, n)
			}
		}
	}
}

func splitTag(s string) (name, rest string) {
	s = strings.TrimSpace(s)
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i], strings.TrimSpace(s[i+1:])
	}
	return s, ""
}

func (p *parser) parseBlock(name, rest string, t token) (node, error) {
	switch name {
	case "if":
		return p.parseIf(rest, t)
	case "for":
		return p.parseFor(rest, t)
	case "with":
		return p.parseWith(rest, t)
	case "include":
		return p.parseInclude(rest, t)
	case "comment":
		// Skip everything until endcomment without interpreting it.
		for {
			tt := p.next()
			if tt.kind == tokEOF {
				return nil, p.errf(t.line, "unterminated {%% comment %%}")
			}
			if tt.kind == tokBlock {
				if n, _ := splitTag(tt.val); n == "endcomment" {
					return nil, nil
				}
			}
		}
	default:
		return nil, p.errf(t.line, "unknown block tag %q", name)
	}
}

// parseInclude statically inlines another template's nodes; includes are
// resolved at parse time so rendering cost is identical to a flat
// template.
func (p *parser) parseInclude(arg string, t token) (node, error) {
	if p.loader == nil {
		return nil, p.errf(t.line, "{%% include %%} requires a template loader")
	}
	arg = strings.TrimSpace(arg)
	if len(arg) < 2 || (arg[0] != '\'' && arg[0] != '"') || arg[len(arg)-1] != arg[0] {
		return nil, p.errf(t.line, "include path must be a quoted string, got %q", arg)
	}
	path := arg[1 : len(arg)-1]
	if p.including[path] {
		return nil, p.errf(t.line, "include cycle through %q", path)
	}
	src, err := p.loader(path)
	if err != nil {
		return nil, p.errf(t.line, "include %q: %v", path, err)
	}
	toks, err := lex(src)
	if err != nil {
		return nil, p.errf(t.line, "include %q: %v", path, err)
	}
	sub := &parser{toks: toks, loader: p.loader, including: p.including}
	p.including[path] = true
	nodes, term, err := sub.parse()
	delete(p.including, path)
	if err != nil {
		return nil, fmt.Errorf("include %q: %w", path, err)
	}
	if term != "" {
		return nil, p.errf(t.line, "include %q: unexpected {%% %s %%}", path, term)
	}
	return &includeNode{nodes: nodes}, nil
}

func (p *parser) parseIf(cond string, t token) (node, error) {
	n := &ifNode{}
	c, err := parseExprString(cond)
	if err != nil {
		return nil, p.errf(t.line, "bad if condition %q: %v", cond, err)
	}
	cur := ifBranch{cond: c}
	for {
		body, term, err := p.parse("elif", "else", "endif")
		if err != nil {
			return nil, err
		}
		cur.body = body
		n.branches = append(n.branches, cur)
		switch term {
		case "endif":
			return n, nil
		case "else":
			elseBody, term2, err := p.parse("endif")
			if err != nil {
				return nil, err
			}
			if term2 != "endif" {
				return nil, p.errf(t.line, "expected {%% endif %%} after else")
			}
			n.elseBody = elseBody
			return n, nil
		case "elif":
			// The elif condition was consumed as part of the terminator
			// block tag; re-read it from the token just matched.
			prev := p.toks[p.pos-1]
			_, rest := splitTag(prev.val)
			c, err := parseExprString(rest)
			if err != nil {
				return nil, p.errf(prev.line, "bad elif condition %q: %v", rest, err)
			}
			cur = ifBranch{cond: c}
		}
	}
}

func (p *parser) parseFor(spec string, t token) (node, error) {
	// Forms: "x in expr" and "k, v in expr".
	inIdx := -1
	fields := strings.Fields(spec)
	for i, f := range fields {
		if f == "in" {
			inIdx = i
			break
		}
	}
	if inIdx <= 0 || inIdx == len(fields)-1 {
		return nil, p.errf(t.line, "malformed for tag %q, want {%% for x in seq %%}", spec)
	}
	vars := strings.Split(strings.Join(fields[:inIdx], ""), ",")
	n := &forNode{line: t.line}
	switch len(vars) {
	case 1:
		n.loopVar = vars[0]
	case 2:
		n.loopVar, n.secondVar = vars[0], vars[1]
	default:
		return nil, p.errf(t.line, "too many loop variables in for tag %q", spec)
	}
	iter, err := parseExprString(strings.Join(fields[inIdx+1:], " "))
	if err != nil {
		return nil, p.errf(t.line, "bad for iterable: %v", err)
	}
	n.iter = iter
	body, term, err := p.parse("empty", "endfor")
	if err != nil {
		return nil, err
	}
	n.body = body
	if term == "empty" {
		emptyBody, term2, err := p.parse("endfor")
		if err != nil {
			return nil, err
		}
		if term2 != "endfor" {
			return nil, p.errf(t.line, "expected {%% endfor %%} after empty")
		}
		n.empty = emptyBody
	}
	return n, nil
}

func (p *parser) parseWith(spec string, t token) (node, error) {
	eq := strings.Index(spec, "=")
	if eq <= 0 {
		return nil, p.errf(t.line, "malformed with tag %q, want {%% with name = expr %%}", spec)
	}
	name := strings.TrimSpace(spec[:eq])
	val, err := parseExprString(strings.TrimSpace(spec[eq+1:]))
	if err != nil {
		return nil, p.errf(t.line, "bad with value: %v", err)
	}
	body, term, err := p.parse("endwith")
	if err != nil {
		return nil, err
	}
	if term != "endwith" {
		return nil, p.errf(t.line, "expected {%% endwith %%}")
	}
	return &withNode{name: name, val: val, body: body}, nil
}

// --- expression parsing (precedence climbing) ---

type exprParser struct {
	toks []exprToken
	pos  int
}

func parseExprString(s string) (expr, error) {
	toks, err := lexExpr(s)
	if err != nil {
		return nil, err
	}
	ep := &exprParser{toks: toks}
	e, err := ep.parseOr()
	if err != nil {
		return nil, err
	}
	if ep.peek().kind != etEnd {
		return nil, fmt.Errorf("trailing tokens after expression in %q", s)
	}
	return e, nil
}

func (ep *exprParser) peek() exprToken { return ep.toks[ep.pos] }

func (ep *exprParser) next() exprToken {
	t := ep.toks[ep.pos]
	if t.kind != etEnd {
		ep.pos++
	}
	return t
}

func (ep *exprParser) parseOr() (expr, error) {
	l, err := ep.parseAnd()
	if err != nil {
		return nil, err
	}
	for ep.peek().kind == etIdent && ep.peek().val == "or" {
		ep.next()
		r, err := ep.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{op: "or", l: l, r: r}
	}
	return l, nil
}

func (ep *exprParser) parseAnd() (expr, error) {
	l, err := ep.parseNot()
	if err != nil {
		return nil, err
	}
	for ep.peek().kind == etIdent && ep.peek().val == "and" {
		ep.next()
		r, err := ep.parseNot()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{op: "and", l: l, r: r}
	}
	return l, nil
}

func (ep *exprParser) parseNot() (expr, error) {
	if ep.peek().kind == etIdent && ep.peek().val == "not" {
		ep.next()
		in, err := ep.parseNot()
		if err != nil {
			return nil, err
		}
		return &notExpr{in: in}, nil
	}
	return ep.parseCompare()
}

var compareOps = map[string]bool{
	"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true,
}

func (ep *exprParser) parseCompare() (expr, error) {
	l, err := ep.parseFiltered()
	if err != nil {
		return nil, err
	}
	t := ep.peek()
	switch {
	case t.kind == etOp && compareOps[t.val]:
		ep.next()
		r, err := ep.parseFiltered()
		if err != nil {
			return nil, err
		}
		return &binaryExpr{op: t.val, l: l, r: r}, nil
	case t.kind == etIdent && t.val == "in":
		ep.next()
		r, err := ep.parseFiltered()
		if err != nil {
			return nil, err
		}
		return &binaryExpr{op: "in", l: l, r: r}, nil
	case t.kind == etIdent && t.val == "not":
		// "x not in y"
		ep.next()
		if tt := ep.next(); !(tt.kind == etIdent && tt.val == "in") {
			return nil, fmt.Errorf(`expected "in" after "not"`)
		}
		r, err := ep.parseFiltered()
		if err != nil {
			return nil, err
		}
		return &notExpr{in: &binaryExpr{op: "in", l: l, r: r}}, nil
	}
	return l, nil
}

func (ep *exprParser) parseFiltered() (expr, error) {
	e, err := ep.parsePrimary()
	if err != nil {
		return nil, err
	}
	for ep.peek().kind == etOp && ep.peek().val == "|" {
		ep.next()
		name := ep.next()
		if name.kind != etIdent {
			return nil, fmt.Errorf("expected filter name after |, got %q", name.val)
		}
		f := &filterExpr{in: e, name: name.val}
		if ep.peek().kind == etOp && ep.peek().val == ":" {
			ep.next()
			arg, err := ep.parsePrimary()
			if err != nil {
				return nil, err
			}
			f.arg = arg
		}
		e = f
	}
	return e, nil
}

func (ep *exprParser) parsePrimary() (expr, error) {
	t := ep.next()
	switch t.kind {
	case etString:
		return literalExpr{v: stringValue(t.val)}, nil
	case etNumber:
		if strings.Contains(t.val, ".") {
			f, err := strconv.ParseFloat(t.val, 64)
			if err != nil {
				return nil, fmt.Errorf("bad number %q: %v", t.val, err)
			}
			return literalExpr{v: floatValue(f)}, nil
		}
		n, err := strconv.ParseInt(t.val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %v", t.val, err)
		}
		return literalExpr{v: intValue(n)}, nil
	case etIdent:
		switch t.val {
		case "True", "true":
			return literalExpr{v: boolValue(true)}, nil
		case "False", "false":
			return literalExpr{v: boolValue(false)}, nil
		case "None", "none", "nil":
			return literalExpr{v: nilValue()}, nil
		}
		return newPathExpr(t.val), nil
	case etOp:
		if t.val == "(" {
			e, err := ep.parseOr()
			if err != nil {
				return nil, err
			}
			if c := ep.next(); !(c.kind == etOp && c.val == ")") {
				return nil, fmt.Errorf("missing closing parenthesis")
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("unexpected token %q in expression", t.val)
}
