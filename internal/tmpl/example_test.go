package tmpl_test

import (
	"fmt"

	"github.com/robotron-net/robotron/internal/tmpl"
)

// The Fig. 9 pattern: vendor-agnostic data rendered through a
// vendor-specific template.
func Example() {
	t := tmpl.MustParse("iface", `{% for agg in device.aggs %}interface {{ agg.name }}
{% if agg.v6_prefix %} ipv6 addr {{ agg.v6_prefix }}
{% endif %}{% endfor %}`)
	out, err := t.Render(map[string]any{
		"device": map[string]any{
			"aggs": []map[string]any{
				{"name": "ae0", "v6_prefix": "2401:db00::/127"},
				{"name": "ae1"},
			},
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Print(out)
	// Output:
	// interface ae0
	//  ipv6 addr 2401:db00::/127
	// interface ae1
}

func ExampleTemplate_Render_filters() {
	t := tmpl.MustParse("f", "{{ name|upper }} has {{ ports|length }} ports")
	out, _ := t.Render(map[string]any{"name": "psw1", "ports": []string{"et1/1", "et1/2"}})
	fmt.Println(out)
	// Output: PSW1 has 2 ports
}
