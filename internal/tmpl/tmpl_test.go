package tmpl

import (
	"strings"
	"testing"
	"testing/quick"
)

func render(t *testing.T, src string, ctx any) string {
	t.Helper()
	tm, err := Parse("test", src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	out, err := tm.Render(ctx)
	if err != nil {
		t.Fatalf("Render(%q): %v", src, err)
	}
	return out
}

func TestPlainText(t *testing.T) {
	src := "interface et1/1\n mtu 9192\n no shutdown\n"
	if got := render(t, src, nil); got != src {
		t.Errorf("plain text not passed through: %q", got)
	}
}

func TestTextWithLoneBraces(t *testing.T) {
	src := "family inet { addr 10.0.0.1/31 }"
	if got := render(t, src, nil); got != src {
		t.Errorf("lone braces mangled: %q", got)
	}
}

func TestVariableSubstitution(t *testing.T) {
	tests := []struct {
		src  string
		ctx  any
		want string
	}{
		{"{{ name }}", map[string]any{"name": "psw1"}, "psw1"},
		{"{{name}}", map[string]any{"name": "psw1"}, "psw1"},
		{"{{ n }}", map[string]any{"n": 42}, "42"},
		{"{{ f }}", map[string]any{"f": 2.5}, "2.5"},
		{"{{ ok }}", map[string]any{"ok": true}, "True"},
		{"{{ missing }}", map[string]any{}, ""},
		{"{{ 'lit' }}", nil, "lit"},
		{"{{ 10 }}", nil, "10"},
	}
	for _, tt := range tests {
		if got := render(t, tt.src, tt.ctx); got != tt.want {
			t.Errorf("render(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestDottedPaths(t *testing.T) {
	ctx := map[string]any{
		"device": map[string]any{
			"name": "pr1.pop1",
			"loopback": map[string]any{
				"v6": "2401:db00::1",
			},
		},
	}
	if got := render(t, "{{ device.loopback.v6 }}", ctx); got != "2401:db00::1" {
		t.Errorf("nested map path = %q", got)
	}
	if got := render(t, "{{ device.loopback.missing }}", ctx); got != "" {
		t.Errorf("missing leaf should render empty, got %q", got)
	}
}

type aggCtx struct {
	Name     string
	Number   int
	V4Prefix string
	V6Prefix string
	Pifs     []pifCtx
}

type pifCtx struct {
	Name string
}

func TestStructFieldSnakeCase(t *testing.T) {
	ctx := map[string]any{"agg": aggCtx{Name: "ae0", V4Prefix: "10.1.1.0/31"}}
	if got := render(t, "{{ agg.name }}/{{ agg.v4_prefix }}", ctx); got != "ae0/10.1.1.0/31" {
		t.Errorf("snake_case struct access = %q", got)
	}
}

func TestIfElifElse(t *testing.T) {
	src := "{% if x > 10 %}big{% elif x > 5 %}mid{% else %}small{% endif %}"
	for _, tt := range []struct {
		x    int
		want string
	}{{20, "big"}, {7, "mid"}, {1, "small"}} {
		if got := render(t, src, map[string]any{"x": tt.x}); got != tt.want {
			t.Errorf("x=%d: got %q, want %q", tt.x, got, tt.want)
		}
	}
}

func TestIfTruthiness(t *testing.T) {
	src := "{% if v %}T{% else %}F{% endif %}"
	tests := []struct {
		v    any
		want string
	}{
		{"", "F"}, {"x", "T"},
		{0, "F"}, {1, "T"},
		{nil, "F"},
		{[]string{}, "F"}, {[]string{"a"}, "T"},
		{map[string]int{}, "F"}, {map[string]int{"a": 1}, "T"},
		{false, "F"}, {true, "T"},
	}
	for _, tt := range tests {
		if got := render(t, src, map[string]any{"v": tt.v}); got != tt.want {
			t.Errorf("truthy(%#v) rendered %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestForLoop(t *testing.T) {
	ctx := map[string]any{"xs": []string{"a", "b", "c"}}
	if got := render(t, "{% for x in xs %}{{ x }},{% endfor %}", ctx); got != "a,b,c," {
		t.Errorf("for loop = %q", got)
	}
}

func TestForLoopMetadata(t *testing.T) {
	ctx := map[string]any{"xs": []string{"a", "b"}}
	src := "{% for x in xs %}{{ forloop.counter }}:{{ x }}{% if not forloop.last %} {% endif %}{% endfor %}"
	if got := render(t, src, ctx); got != "1:a 2:b" {
		t.Errorf("forloop metadata = %q", got)
	}
}

func TestForEmpty(t *testing.T) {
	src := "{% for x in xs %}{{ x }}{% empty %}none{% endfor %}"
	if got := render(t, src, map[string]any{"xs": []int{}}); got != "none" {
		t.Errorf("empty branch = %q", got)
	}
	if got := render(t, src, map[string]any{"xs": []int{7}}); got != "7" {
		t.Errorf("non-empty = %q", got)
	}
}

func TestForOverMapSorted(t *testing.T) {
	ctx := map[string]any{"m": map[string]int{"b": 2, "a": 1, "c": 3}}
	if got := render(t, "{% for k, v in m %}{{ k }}={{ v }};{% endfor %}", ctx); got != "a=1;b=2;c=3;" {
		t.Errorf("map iteration = %q", got)
	}
}

func TestNestedLoops(t *testing.T) {
	ctx := map[string]any{
		"aggs": []aggCtx{
			{Name: "ae0", Pifs: []pifCtx{{Name: "et1/1"}, {Name: "et1/2"}}},
			{Name: "ae1", Pifs: []pifCtx{{Name: "et2/1"}}},
		},
	}
	src := "{% for a in aggs %}{{ a.name }}[{% for p in a.pifs %}{{ p.name }} {% endfor %}]{% endfor %}"
	want := "ae0[et1/1 et1/2 ]ae1[et2/1 ]"
	if got := render(t, src, ctx); got != want {
		t.Errorf("nested loops = %q, want %q", got, want)
	}
}

func TestWith(t *testing.T) {
	src := "{% with n = device.name %}{{ n }}-{{ n }}{% endwith %}"
	ctx := map[string]any{"device": map[string]any{"name": "bb1"}}
	if got := render(t, src, ctx); got != "bb1-bb1" {
		t.Errorf("with = %q", got)
	}
}

func TestCommentTag(t *testing.T) {
	src := "a{% comment %} anything {{ bad }} {% weird %} {% endcomment %}b"
	if got := render(t, src, nil); got != "ab" {
		t.Errorf("comment block = %q", got)
	}
	if got := render(t, "a{# inline #}b", nil); got != "ab" {
		t.Errorf("inline comment = %q", got)
	}
}

func TestComparisons(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"{% if 1 < 2 %}y{% endif %}", "y"},
		{"{% if 'abc' == 'abc' %}y{% endif %}", "y"},
		{"{% if 'a' != 'b' %}y{% endif %}", "y"},
		{"{% if 2 >= 2 %}y{% endif %}", "y"},
		{"{% if 'et1' in name %}y{% endif %}", "y"},
		{"{% if 'xyz' not in name %}y{% endif %}", "y"},
		{"{% if x and y %}y{% else %}n{% endif %}", "n"},
		{"{% if x or y %}y{% else %}n{% endif %}", "y"},
		{"{% if not x %}y{% endif %}", ""},
		{"{% if (1 > 2) or (3 > 2) %}y{% endif %}", "y"},
	}
	ctx := map[string]any{"name": "et1/1", "x": true, "y": false}
	for _, tt := range tests {
		if got := render(t, tt.src, ctx); got != tt.want {
			t.Errorf("render(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestEqualityAcrossTypesIsFalse(t *testing.T) {
	ctx := map[string]any{"s": "1", "n": 1}
	if got := render(t, "{% if s == n %}eq{% else %}ne{% endif %}", ctx); got != "ne" {
		t.Errorf("cross-type equality = %q, want ne", got)
	}
}

func TestFilters(t *testing.T) {
	tests := []struct {
		src  string
		ctx  any
		want string
	}{
		{"{{ s|upper }}", map[string]any{"s": "psw"}, "PSW"},
		{"{{ s|lower }}", map[string]any{"s": "PSW"}, "psw"},
		{"{{ s|default:'none' }}", map[string]any{"s": ""}, "none"},
		{"{{ s|default:'none' }}", map[string]any{"s": "x"}, "x"},
		{"{{ xs|join:',' }}", map[string]any{"xs": []string{"a", "b"}}, "a,b"},
		{"{{ xs|length }}", map[string]any{"xs": []int{1, 2, 3}}, "3"},
		{"{{ xs|first }}", map[string]any{"xs": []string{"a", "b"}}, "a"},
		{"{{ xs|last }}", map[string]any{"xs": []string{"a", "b"}}, "b"},
		{"{{ n|add:5 }}", map[string]any{"n": 10}, "15"},
		{"{{ s|cut:'/' }}", map[string]any{"s": "et1/1"}, "et11"},
		{"{{ up|yesno:'up,down' }}", map[string]any{"up": true}, "up"},
		{"{{ up|yesno:'up,down' }}", map[string]any{"up": false}, "down"},
		{"{{ s|replace:'et,xe' }}", map[string]any{"s": "et1/1"}, "xe1/1"},
		{"{{ s|upper|lower }}", map[string]any{"s": "MiXeD"}, "mixed"},
	}
	for _, tt := range tests {
		if got := render(t, tt.src, tt.ctx); got != tt.want {
			t.Errorf("render(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestUnknownFilterErrors(t *testing.T) {
	tm, err := Parse("t", "{{ x|nosuchfilter }}")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := tm.Render(map[string]any{"x": 1}); err == nil {
		t.Error("expected error for unknown filter")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"{% if x %}unclosed",
		"{% endif %}",
		"{% for x %}{% endfor %}",
		"{% for in xs %}{% endfor %}",
		"{{ x ",
		"{% unknowntag %}",
		"{% with x %}{% endwith %}",
		"{{ 'unterminated }}",
		"{% if x ==  %}{% endif %}",
	}
	for _, src := range bad {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestErrorsIncludeLineNumbers(t *testing.T) {
	_, err := Parse("t", "line1\nline2\n{% if x %}oops")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should mention line 3: %v", err)
	}
}

// TestFig9Vendor1 exercises the paper's Figure 9 left-hand (IOS-like)
// interface template verbatim.
func TestFig9Vendor1(t *testing.T) {
	src := `{% for agg in device.aggs %}
interface {{agg.name}}
 mtu 9192
 no switchport
 load-interval 30
{% if agg.v4_prefix %} ip addr {{agg.v4_prefix}}
{% endif %}{% if agg.v6_prefix %} ipv6 addr {{agg.v6_prefix}}
{% endif %} no shutdown
!
{% for pif in agg.pifs %}interface {{pif.name}}
 mtu 9192
 load-interval 30
 channel-group {{agg.name}}
 lacp rate fast
 no shutdown
!
{% endfor %}{% endfor %}`
	ctx := map[string]any{
		"device": map[string]any{
			"aggs": []aggCtx{{
				Name:     "ae0",
				V4Prefix: "10.128.0.0/31",
				V6Prefix: "2401:db00::/127",
				Pifs:     []pifCtx{{Name: "et1/1"}, {Name: "et2/1"}},
			}},
		},
	}
	got := render(t, src, ctx)
	for _, want := range []string{
		"interface ae0",
		"ip addr 10.128.0.0/31",
		"ipv6 addr 2401:db00::/127",
		"interface et1/1",
		"interface et2/1",
		"channel-group ae0",
		"lacp rate fast",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("vendor1 output missing %q:\n%s", want, got)
		}
	}
}

// TestFig9Vendor2 exercises the right-hand (JunOS-like) template, which
// mixes literal braces with template tags.
func TestFig9Vendor2(t *testing.T) {
	src := `{% for agg in device.aggs %}
{{agg.name}} {
 unit 0 {
{% if agg.v4_prefix %}  family inet {
   addr {{agg.v4_prefix}}
  }
{% endif %}{% if agg.v6_prefix %}  family inet6 {
   addr {{agg.v6_prefix}}
  }
{% endif %} }
}
{% for pif in agg.pifs %}replace: {{pif.name}} {
 gigether-options {
  802.3ad {{agg.name}};
 }
}
{% endfor %}{% endfor %}`
	ctx := map[string]any{
		"device": map[string]any{
			"aggs": []aggCtx{{
				Name:     "ae0",
				V6Prefix: "2401:db00::1/127",
				Pifs:     []pifCtx{{Name: "et-0/0/1"}},
			}},
		},
	}
	got := render(t, src, ctx)
	for _, want := range []string{
		"ae0 {",
		"family inet6 {",
		"addr 2401:db00::1/127",
		"replace: et-0/0/1 {",
		"802.3ad ae0;",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("vendor2 output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "family inet {") {
		t.Errorf("v4 block rendered despite empty v4_prefix:\n%s", got)
	}
}

// Property: any source without tag markers renders to itself.
func TestQuickPlainTextIdentity(t *testing.T) {
	f := func(s string) bool {
		if strings.Contains(s, "{{") || strings.Contains(s, "{%") || strings.Contains(s, "{#") {
			return true // skip inputs that contain tag markers
		}
		tm, err := Parse("q", s)
		if err != nil {
			return false
		}
		out, err := tm.Render(nil)
		return err == nil && out == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: {{ s }} echoes any string value exactly.
func TestQuickVariableEcho(t *testing.T) {
	tm := MustParse("q", "{{ s }}")
	f := func(s string) bool {
		out, err := tm.Render(map[string]any{"s": s})
		return err == nil && out == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRegisterFilter(t *testing.T) {
	RegisterFilter("testrev", func(in, _ string) (string, error) {
		rs := []rune(in)
		for i, j := 0, len(rs)-1; i < j; i, j = i+1, j-1 {
			rs[i], rs[j] = rs[j], rs[i]
		}
		return string(rs), nil
	})
	if got := render(t, "{{ s|testrev }}", map[string]any{"s": "abc"}); got != "cba" {
		t.Errorf("custom filter = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterFilter should panic")
		}
	}()
	RegisterFilter("testrev", func(in, _ string) (string, error) { return in, nil })
}

func BenchmarkRenderFig9(b *testing.B) {
	tm := MustParse("bench", `{% for agg in device.aggs %}interface {{agg.name}}
{% if agg.v4_prefix %} ip addr {{agg.v4_prefix}}
{% endif %}{% for pif in agg.pifs %}interface {{pif.name}}
 channel-group {{agg.name}}
{% endfor %}{% endfor %}`)
	aggs := make([]aggCtx, 16)
	for i := range aggs {
		aggs[i] = aggCtx{Name: "ae0", V4Prefix: "10.0.0.0/31", Pifs: []pifCtx{{Name: "et1/1"}, {Name: "et1/2"}}}
	}
	ctx := map[string]any{"device": map[string]any{"aggs": aggs}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tm.Render(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
