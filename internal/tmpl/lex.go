// Package tmpl implements a Django-style template language.
//
// Robotron stores vendor-specific configuration templates as flat files
// using Django template syntax (SIGCOMM '16, §5.2, Fig. 9): dynamic
// variables are surrounded by {{ }}, control flow by {% %}, comments by
// {# #}, and static content is passed through verbatim. This package is a
// from-scratch implementation of that language: a lexer, a parser producing
// a node tree, and an executor that renders the tree against a context of
// Go values (maps, structs, slices).
//
// Supported constructs:
//
//	{{ expr }}                      variable output, with |filter chains
//	{% if expr %} ... {% elif expr %} ... {% else %} ... {% endif %}
//	{% for x in expr %} ... {% empty %} ... {% endfor %}
//	{% with name = expr %} ... {% endwith %}
//	{% comment %} ... {% endcomment %}
//	{# inline comment #}
//
// Expressions support dotted attribute access (agg.v4_prefix), string and
// numeric literals, comparison operators (== != < <= > >= in), and the
// logical operators and/or/not, mirroring the subset of the Django template
// language the paper's config templates rely on.
package tmpl

import (
	"fmt"
	"strings"
)

// tokenKind identifies the lexical class of a token.
type tokenKind int

const (
	tokText    tokenKind = iota // literal template text
	tokVar                      // {{ ... }}
	tokBlock                    // {% ... %}
	tokComment                  // {# ... #}
	tokEOF
)

func (k tokenKind) String() string {
	switch k {
	case tokText:
		return "text"
	case tokVar:
		return "variable"
	case tokBlock:
		return "block"
	case tokComment:
		return "comment"
	case tokEOF:
		return "EOF"
	}
	return "unknown"
}

// token is a single lexical unit of a template.
type token struct {
	kind tokenKind
	val  string // tag contents (trimmed) or raw text
	line int    // 1-based line of the token start
}

// lexError reports a lexing failure with position information.
type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("template: line %d: %s", e.line, e.msg)
}

const (
	markVarOpen     = "{{"
	markVarClose    = "}}"
	markBlockOpen   = "{%"
	markBlockClose  = "%}"
	markCommentOpen = "{#"
	markCommentClos = "#}"
)

// lex splits template source into tokens. Text between tags is emitted
// verbatim; tag contents are trimmed of surrounding whitespace.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	for len(src) > 0 {
		open := strings.IndexByte(src, '{')
		// Find the next tag opener; everything before it is text.
		for open != -1 && open+1 < len(src) {
			c := src[open+1]
			if c == '{' || c == '%' || c == '#' {
				break
			}
			next := strings.IndexByte(src[open+1:], '{')
			if next == -1 {
				open = -1
				break
			}
			open += 1 + next
		}
		if open == -1 || open+1 >= len(src) {
			toks = append(toks, token{kind: tokText, val: src, line: line})
			break
		}
		if open > 0 {
			text := src[:open]
			toks = append(toks, token{kind: tokText, val: text, line: line})
			line += strings.Count(text, "\n")
			src = src[open:]
		}
		var kind tokenKind
		var closer string
		switch src[1] {
		case '{':
			kind, closer = tokVar, markVarClose
		case '%':
			kind, closer = tokBlock, markBlockClose
		case '#':
			kind, closer = tokComment, markCommentClos
		}
		end := strings.Index(src[2:], closer)
		if end == -1 {
			return nil, &lexError{line: line, msg: fmt.Sprintf("unclosed %s tag (missing %q)", kind, closer)}
		}
		inner := src[2 : 2+end]
		toks = append(toks, token{kind: kind, val: strings.TrimSpace(inner), line: line})
		line += strings.Count(src[:2+end+2], "\n")
		src = src[2+end+2:]
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

// exprTokenKind classifies tokens inside {{ }} and {% %} expressions.
type exprTokenKind int

const (
	etIdent  exprTokenKind = iota // names and dotted paths
	etString                      // 'x' or "x"
	etNumber                      // 42, 3.14, -1
	etOp                          // == != < <= > >= | = ( )
	etEnd
)

type exprToken struct {
	kind exprTokenKind
	val  string
}

// lexExpr tokenizes the contents of a tag into expression tokens.
func lexExpr(s string) ([]exprToken, error) {
	var out []exprToken
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'' || c == '"':
			j := i + 1
			for j < len(s) && s[j] != c {
				if s[j] == '\\' && j+1 < len(s) {
					j++
				}
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("unterminated string literal in %q", s)
			}
			raw := s[i+1 : j]
			raw = strings.ReplaceAll(raw, `\'`, `'`)
			raw = strings.ReplaceAll(raw, `\"`, `"`)
			raw = strings.ReplaceAll(raw, `\\`, `\`)
			out = append(out, exprToken{kind: etString, val: raw})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9'):
			j := i + 1
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.') {
				j++
			}
			out = append(out, exprToken{kind: etNumber, val: s[i:j]})
			i = j
		case isIdentStart(c):
			j := i + 1
			for j < len(s) && isIdentPart(s[j]) {
				j++
			}
			out = append(out, exprToken{kind: etIdent, val: s[i:j]})
			i = j
		case c == '=' || c == '!' || c == '<' || c == '>':
			if i+1 < len(s) && s[i+1] == '=' {
				out = append(out, exprToken{kind: etOp, val: s[i : i+2]})
				i += 2
			} else {
				out = append(out, exprToken{kind: etOp, val: string(c)})
				i++
			}
		case c == '|' || c == ':' || c == '(' || c == ')' || c == ',':
			out = append(out, exprToken{kind: etOp, val: string(c)})
			i++
		default:
			return nil, fmt.Errorf("unexpected character %q in expression %q", c, s)
		}
	}
	out = append(out, exprToken{kind: etEnd})
	return out, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.'
}
