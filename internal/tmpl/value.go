package tmpl

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"sync"
)

// valueKind enumerates the dynamic types template expressions operate on.
type valueKind int

const (
	kindNil valueKind = iota
	kindBool
	kindInt
	kindFloat
	kindString
	kindList // slice or array, wrapped reflect.Value
	kindMap  // map with string-ish keys, wrapped reflect.Value
	kindAny  // struct or other opaque Go value
	kindLoop // forloop metadata, backed by a mutable loopState
)

// loopState is the mutable record behind the "forloop" variable: one per
// loop execution, advanced in place each iteration. Attribute reads
// (counter, first, ...) compute from it directly, replacing the
// per-iteration map the executor used to allocate.
type loopState struct {
	counter0 int
	total    int
}

// value is a template-level dynamic value. It wraps Go values so the
// executor can do truthiness, comparison, attribute lookup, and iteration
// uniformly over maps, structs, slices, and scalars.
type value struct {
	kind valueKind
	b    bool
	i    int64
	f    float64
	s    string
	rv   reflect.Value  // valid for kindList, kindMap, kindAny
	m    map[string]any // fast path for kindMap when the map is map[string]any
	loop *loopState     // valid for kindLoop
}

func nilValue() value            { return value{kind: kindNil} }
func boolValue(b bool) value     { return value{kind: kindBool, b: b} }
func intValue(i int64) value     { return value{kind: kindInt, i: i} }
func floatValue(f float64) value { return value{kind: kindFloat, f: f} }
func stringValue(s string) value { return value{kind: kindString, s: s} }

// wrap converts an arbitrary Go value into a template value. Common
// context types take a type-switch fast path that avoids reflection.
func wrap(v any) value {
	switch x := v.(type) {
	case nil:
		return nilValue()
	case value:
		return x
	case string:
		return stringValue(x)
	case bool:
		return boolValue(x)
	case int:
		return intValue(int64(x))
	case int64:
		return intValue(x)
	case float64:
		return floatValue(x)
	case map[string]any:
		if x == nil {
			return nilValue()
		}
		return value{kind: kindMap, m: x, rv: reflect.ValueOf(v)}
	}
	return wrapReflect(reflect.ValueOf(v))
}

var mapStrAnyType = reflect.TypeOf(map[string]any(nil))

func wrapReflect(rv reflect.Value) value {
	for rv.Kind() == reflect.Interface || rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return nilValue()
		}
		rv = rv.Elem()
	}
	switch rv.Kind() {
	case reflect.Bool:
		return boolValue(rv.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return intValue(rv.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return intValue(int64(rv.Uint()))
	case reflect.Float32, reflect.Float64:
		return floatValue(rv.Float())
	case reflect.String:
		return stringValue(rv.String())
	case reflect.Slice, reflect.Array:
		return value{kind: kindList, rv: rv}
	case reflect.Map:
		v := value{kind: kindMap, rv: rv}
		if rv.Type() == mapStrAnyType && rv.CanInterface() {
			v.m = rv.Interface().(map[string]any)
		}
		return v
	default:
		return value{kind: kindAny, rv: rv}
	}
}

// truthy implements Django truthiness: nil, false, zero, "", and empty
// collections are false; everything else is true.
func (v value) truthy() bool {
	switch v.kind {
	case kindNil:
		return false
	case kindBool:
		return v.b
	case kindInt:
		return v.i != 0
	case kindFloat:
		return v.f != 0
	case kindString:
		return v.s != ""
	case kindList, kindMap:
		return v.rv.Len() > 0
	default:
		return true
	}
}

// str renders the value the way {{ }} output does.
func (v value) str() string {
	switch v.kind {
	case kindNil:
		return ""
	case kindBool:
		if v.b {
			return "True"
		}
		return "False"
	case kindInt:
		return strconv.FormatInt(v.i, 10)
	case kindFloat:
		return strings.TrimRight(strings.TrimRight(strconv.FormatFloat(v.f, 'f', 6, 64), "0"), ".")
	case kindString:
		return v.s
	case kindLoop:
		return ""
	default:
		if v.rv.CanInterface() {
			if s, ok := v.rv.Interface().(fmt.Stringer); ok {
				return s.String()
			}
			return fmt.Sprintf("%v", v.rv.Interface())
		}
		return fmt.Sprintf("%v", v.rv)
	}
}

// appendInt formats an integer into dst the way {{ }} output does.
func appendInt(dst []byte, i int64) []byte {
	return strconv.AppendInt(dst, i, 10)
}

// length returns the element count for lists/maps/strings, or -1.
func (v value) length() int {
	switch v.kind {
	case kindString:
		return len(v.s)
	case kindList, kindMap:
		return v.rv.Len()
	}
	return -1
}

// attr resolves an attribute lookup v.name: map key, struct field (exact,
// exported-case, or snake_case-insensitive match), or list index.
func (v value) attr(name string) (value, bool) {
	return v.attrNorm(name, normalizeName(name))
}

// attrNorm is attr with the normalized form of name supplied by the
// caller; the parser normalizes path segments once at parse time so the
// render path never rebuilds them.
func (v value) attrNorm(name, norm string) (value, bool) {
	switch v.kind {
	case kindMap:
		if v.m != nil {
			mv, ok := v.m[name]
			if !ok {
				return nilValue(), false
			}
			return wrap(mv), true
		}
		kt := v.rv.Type().Key()
		if kt.Kind() != reflect.String {
			return nilValue(), false
		}
		kv := reflect.ValueOf(name)
		if kt != kv.Type() {
			kv = kv.Convert(kt)
		}
		mv := v.rv.MapIndex(kv)
		if !mv.IsValid() {
			return nilValue(), false
		}
		return wrapReflect(mv), true
	case kindAny:
		if v.rv.Kind() == reflect.Struct {
			if i, ok := structFieldIndex(v.rv.Type(), name, norm); ok {
				return wrapReflect(v.rv.Field(i)), true
			}
		}
		return nilValue(), false
	case kindList:
		idx, ok := parseIndex(name)
		if ok && idx < v.rv.Len() {
			return wrapReflect(v.rv.Index(idx)), true
		}
		return nilValue(), false
	case kindLoop:
		l := v.loop
		switch name {
		case "counter":
			return intValue(int64(l.counter0 + 1)), true
		case "counter0":
			return intValue(int64(l.counter0)), true
		case "revcounter":
			return intValue(int64(l.total - l.counter0)), true
		case "first":
			return boolValue(l.counter0 == 0), true
		case "last":
			return boolValue(l.counter0 == l.total-1), true
		}
		return nilValue(), false
	}
	return nilValue(), false
}

// parseIndex parses a non-negative decimal list index without allocating.
func parseIndex(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// fieldCache maps a struct type to its attribute-lookup table: exact
// exported field names plus their normalized (lowered, underscore-free)
// forms, each pointing at the field index. Built once per type, read
// lock-free afterwards — template renders resolve struct attributes with
// at most two map probes instead of a reflective scan over every field.
var fieldCache sync.Map // reflect.Type -> map[string]int

func structFieldIndex(t reflect.Type, name, norm string) (int, bool) {
	cached, ok := fieldCache.Load(t)
	if !ok {
		m := make(map[string]int)
		// Exact names first: an exact match must win over another field's
		// normalized alias.
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.IsExported() {
				m[f.Name] = i
			}
		}
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			n := normalizeName(f.Name)
			if _, dup := m[n]; !dup {
				m[n] = i
			}
		}
		cached, _ = fieldCache.LoadOrStore(t, m)
	}
	m := cached.(map[string]int)
	if i, ok := m[name]; ok {
		return i, true
	}
	if i, ok := m[norm]; ok {
		return i, true
	}
	return 0, false
}

// fieldNameMatches reports whether a Go field name (e.g. V4Prefix) matches
// a template attribute name (e.g. v4_prefix): comparison is done after
// lowering and stripping underscores.
func fieldNameMatches(goName, attr string) bool {
	return normalizeName(goName) == normalizeName(attr)
}

// normalizeName lowers s and strips underscores. Already-normalized
// strings (the common case for template attribute names) are returned
// as-is without allocating.
func normalizeName(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' || (c >= 'A' && c <= 'Z') {
			return normalizeNameSlow(s)
		}
	}
	return s
}

func normalizeNameSlow(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' {
			continue
		}
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		b.WriteByte(c)
	}
	return b.String()
}

// compare returns -1, 0, 1 for ordered values, or an error when the two
// values are not comparable.
func compare(a, b value) (int, error) {
	// Numeric comparison when both sides are numeric.
	if (a.kind == kindInt || a.kind == kindFloat) && (b.kind == kindInt || b.kind == kindFloat) {
		af, bf := a.asFloat(), b.asFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		}
		return 0, nil
	}
	if a.kind == kindString && b.kind == kindString {
		return strings.Compare(a.s, b.s), nil
	}
	if a.kind == kindBool && b.kind == kindBool {
		switch {
		case a.b == b.b:
			return 0, nil
		case b.b:
			return -1, nil
		}
		return 1, nil
	}
	if a.kind == kindNil || b.kind == kindNil {
		if a.kind == b.kind {
			return 0, nil
		}
		return -1, fmt.Errorf("cannot compare %s with nil", a.kindName())
	}
	return 0, fmt.Errorf("cannot compare %s with %s", a.kindName(), b.kindName())
}

func (v value) asFloat() float64 {
	if v.kind == kindInt {
		return float64(v.i)
	}
	return v.f
}

func (v value) kindName() string {
	switch v.kind {
	case kindNil:
		return "nil"
	case kindBool:
		return "bool"
	case kindInt:
		return "int"
	case kindFloat:
		return "float"
	case kindString:
		return "string"
	case kindList:
		return "list"
	case kindMap:
		return "map"
	case kindLoop:
		return "forloop"
	}
	return "value"
}

// contains implements the "in" operator: substring for strings, element
// membership for lists, key membership for maps.
func contains(needle, hay value) (bool, error) {
	switch hay.kind {
	case kindString:
		return strings.Contains(hay.s, needle.str()), nil
	case kindList:
		for i := 0; i < hay.rv.Len(); i++ {
			el := wrapReflect(hay.rv.Index(i))
			if c, err := compare(needle, el); err == nil && c == 0 {
				return true, nil
			}
		}
		return false, nil
	case kindMap:
		if hay.m != nil {
			_, ok := hay.m[needle.str()]
			return ok, nil
		}
		if hay.rv.Type().Key().Kind() == reflect.String {
			mv := hay.rv.MapIndex(reflect.ValueOf(needle.str()).Convert(hay.rv.Type().Key()))
			return mv.IsValid(), nil
		}
		return false, nil
	case kindNil:
		return false, nil
	}
	return false, fmt.Errorf(`right side of "in" must be a string, list, or map, got %s`, hay.kindName())
}
