package tmpl

import (
	"fmt"
	"reflect"
	"strings"
)

// valueKind enumerates the dynamic types template expressions operate on.
type valueKind int

const (
	kindNil valueKind = iota
	kindBool
	kindInt
	kindFloat
	kindString
	kindList // slice or array, wrapped reflect.Value
	kindMap  // map with string-ish keys, wrapped reflect.Value
	kindAny  // struct or other opaque Go value
)

// value is a template-level dynamic value. It wraps Go values so the
// executor can do truthiness, comparison, attribute lookup, and iteration
// uniformly over maps, structs, slices, and scalars.
type value struct {
	kind valueKind
	b    bool
	i    int64
	f    float64
	s    string
	rv   reflect.Value // valid for kindList, kindMap, kindAny
}

func nilValue() value            { return value{kind: kindNil} }
func boolValue(b bool) value     { return value{kind: kindBool, b: b} }
func intValue(i int64) value     { return value{kind: kindInt, i: i} }
func floatValue(f float64) value { return value{kind: kindFloat, f: f} }
func stringValue(s string) value { return value{kind: kindString, s: s} }

// wrap converts an arbitrary Go value into a template value.
func wrap(v any) value {
	if v == nil {
		return nilValue()
	}
	if tv, ok := v.(value); ok {
		return tv
	}
	rv := reflect.ValueOf(v)
	return wrapReflect(rv)
}

func wrapReflect(rv reflect.Value) value {
	for rv.Kind() == reflect.Interface || rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return nilValue()
		}
		rv = rv.Elem()
	}
	switch rv.Kind() {
	case reflect.Bool:
		return boolValue(rv.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return intValue(rv.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return intValue(int64(rv.Uint()))
	case reflect.Float32, reflect.Float64:
		return floatValue(rv.Float())
	case reflect.String:
		return stringValue(rv.String())
	case reflect.Slice, reflect.Array:
		return value{kind: kindList, rv: rv}
	case reflect.Map:
		return value{kind: kindMap, rv: rv}
	default:
		return value{kind: kindAny, rv: rv}
	}
}

// truthy implements Django truthiness: nil, false, zero, "", and empty
// collections are false; everything else is true.
func (v value) truthy() bool {
	switch v.kind {
	case kindNil:
		return false
	case kindBool:
		return v.b
	case kindInt:
		return v.i != 0
	case kindFloat:
		return v.f != 0
	case kindString:
		return v.s != ""
	case kindList, kindMap:
		return v.rv.Len() > 0
	default:
		return true
	}
}

// str renders the value the way {{ }} output does.
func (v value) str() string {
	switch v.kind {
	case kindNil:
		return ""
	case kindBool:
		if v.b {
			return "True"
		}
		return "False"
	case kindInt:
		return fmt.Sprintf("%d", v.i)
	case kindFloat:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v.f), "0"), ".")
	case kindString:
		return v.s
	default:
		if v.rv.CanInterface() {
			if s, ok := v.rv.Interface().(fmt.Stringer); ok {
				return s.String()
			}
			return fmt.Sprintf("%v", v.rv.Interface())
		}
		return fmt.Sprintf("%v", v.rv)
	}
}

// length returns the element count for lists/maps/strings, or -1.
func (v value) length() int {
	switch v.kind {
	case kindString:
		return len(v.s)
	case kindList, kindMap:
		return v.rv.Len()
	}
	return -1
}

// attr resolves an attribute lookup v.name: map key, struct field (exact,
// exported-case, or snake_case-insensitive match), or list index.
func (v value) attr(name string) (value, bool) {
	switch v.kind {
	case kindMap:
		if v.rv.Type().Key().Kind() != reflect.String {
			return nilValue(), false
		}
		mv := v.rv.MapIndex(reflect.ValueOf(name).Convert(v.rv.Type().Key()))
		if !mv.IsValid() {
			return nilValue(), false
		}
		return wrapReflect(mv), true
	case kindAny:
		if v.rv.Kind() == reflect.Struct {
			t := v.rv.Type()
			for i := 0; i < t.NumField(); i++ {
				f := t.Field(i)
				if !f.IsExported() {
					continue
				}
				if f.Name == name || fieldNameMatches(f.Name, name) {
					return wrapReflect(v.rv.Field(i)), true
				}
			}
		}
		return nilValue(), false
	case kindList:
		var idx int
		if _, err := fmt.Sscanf(name, "%d", &idx); err == nil && idx >= 0 && idx < v.rv.Len() {
			return wrapReflect(v.rv.Index(idx)), true
		}
		return nilValue(), false
	}
	return nilValue(), false
}

// fieldNameMatches reports whether a Go field name (e.g. V4Prefix) matches
// a template attribute name (e.g. v4_prefix): comparison is done after
// lowering and stripping underscores.
func fieldNameMatches(goName, attr string) bool {
	return normalizeName(goName) == normalizeName(attr)
}

func normalizeName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' {
			continue
		}
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		b.WriteByte(c)
	}
	return b.String()
}

// compare returns -1, 0, 1 for ordered values, or an error when the two
// values are not comparable.
func compare(a, b value) (int, error) {
	// Numeric comparison when both sides are numeric.
	if (a.kind == kindInt || a.kind == kindFloat) && (b.kind == kindInt || b.kind == kindFloat) {
		af, bf := a.asFloat(), b.asFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		}
		return 0, nil
	}
	if a.kind == kindString && b.kind == kindString {
		return strings.Compare(a.s, b.s), nil
	}
	if a.kind == kindBool && b.kind == kindBool {
		switch {
		case a.b == b.b:
			return 0, nil
		case b.b:
			return -1, nil
		}
		return 1, nil
	}
	if a.kind == kindNil || b.kind == kindNil {
		if a.kind == b.kind {
			return 0, nil
		}
		return -1, fmt.Errorf("cannot compare %s with nil", a.kindName())
	}
	return 0, fmt.Errorf("cannot compare %s with %s", a.kindName(), b.kindName())
}

func (v value) asFloat() float64 {
	if v.kind == kindInt {
		return float64(v.i)
	}
	return v.f
}

func (v value) kindName() string {
	switch v.kind {
	case kindNil:
		return "nil"
	case kindBool:
		return "bool"
	case kindInt:
		return "int"
	case kindFloat:
		return "float"
	case kindString:
		return "string"
	case kindList:
		return "list"
	case kindMap:
		return "map"
	}
	return "value"
}

// contains implements the "in" operator: substring for strings, element
// membership for lists, key membership for maps.
func contains(needle, hay value) (bool, error) {
	switch hay.kind {
	case kindString:
		return strings.Contains(hay.s, needle.str()), nil
	case kindList:
		for i := 0; i < hay.rv.Len(); i++ {
			el := wrapReflect(hay.rv.Index(i))
			if c, err := compare(needle, el); err == nil && c == 0 {
				return true, nil
			}
		}
		return false, nil
	case kindMap:
		if hay.rv.Type().Key().Kind() == reflect.String {
			mv := hay.rv.MapIndex(reflect.ValueOf(needle.str()).Convert(hay.rv.Type().Key()))
			return mv.IsValid(), nil
		}
		return false, nil
	case kindNil:
		return false, nil
	}
	return false, fmt.Errorf(`right side of "in" must be a string, list, or map, got %s`, hay.kindName())
}
