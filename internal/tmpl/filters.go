package tmpl

import (
	"fmt"
	"strings"
)

// filterFunc transforms a value; arg is the filter argument (after ':'),
// hasArg reports whether one was supplied.
type filterFunc func(in, arg value, hasArg bool) (value, error)

// filters is the built-in filter table, a practical subset of Django's
// filters that network configuration templates use.
var filters = map[string]filterFunc{
	"upper": func(in, _ value, _ bool) (value, error) {
		return stringValue(strings.ToUpper(in.str())), nil
	},
	"lower": func(in, _ value, _ bool) (value, error) {
		return stringValue(strings.ToLower(in.str())), nil
	},
	"title": func(in, _ value, _ bool) (value, error) {
		return stringValue(titleCase(in.str())), nil
	},
	"trim": func(in, _ value, _ bool) (value, error) {
		return stringValue(strings.TrimSpace(in.str())), nil
	},
	"length": func(in, _ value, _ bool) (value, error) {
		n := in.length()
		if n < 0 {
			return nilValue(), fmt.Errorf("value of type %s has no length", in.kindName())
		}
		return intValue(int64(n)), nil
	},
	"default": func(in, arg value, hasArg bool) (value, error) {
		if !hasArg {
			return nilValue(), fmt.Errorf("default requires an argument")
		}
		if in.truthy() {
			return in, nil
		}
		return arg, nil
	},
	"join": func(in, arg value, hasArg bool) (value, error) {
		sep := ", "
		if hasArg {
			sep = arg.str()
		}
		items, _, err := iterate(in)
		if err != nil {
			return nilValue(), err
		}
		parts := make([]string, len(items))
		for i, it := range items {
			parts[i] = it.str()
		}
		return stringValue(strings.Join(parts, sep)), nil
	},
	"first": func(in, _ value, _ bool) (value, error) {
		items, _, err := iterate(in)
		if err != nil {
			return nilValue(), err
		}
		if len(items) == 0 {
			return nilValue(), nil
		}
		return items[0], nil
	},
	"last": func(in, _ value, _ bool) (value, error) {
		items, _, err := iterate(in)
		if err != nil {
			return nilValue(), err
		}
		if len(items) == 0 {
			return nilValue(), nil
		}
		return items[len(items)-1], nil
	},
	"add": func(in, arg value, hasArg bool) (value, error) {
		if !hasArg {
			return nilValue(), fmt.Errorf("add requires an argument")
		}
		if in.kind == kindInt && arg.kind == kindInt {
			return intValue(in.i + arg.i), nil
		}
		if (in.kind == kindInt || in.kind == kindFloat) && (arg.kind == kindInt || arg.kind == kindFloat) {
			return floatValue(in.asFloat() + arg.asFloat()), nil
		}
		return stringValue(in.str() + arg.str()), nil
	},
	"cut": func(in, arg value, hasArg bool) (value, error) {
		if !hasArg {
			return nilValue(), fmt.Errorf("cut requires an argument")
		}
		return stringValue(strings.ReplaceAll(in.str(), arg.str(), "")), nil
	},
	"yesno": func(in, arg value, hasArg bool) (value, error) {
		yes, no := "yes", "no"
		if hasArg {
			parts := strings.Split(arg.str(), ",")
			if len(parts) >= 2 {
				yes, no = parts[0], parts[1]
			}
		}
		if in.truthy() {
			return stringValue(yes), nil
		}
		return stringValue(no), nil
	},
	"indent": func(in, arg value, hasArg bool) (value, error) {
		n := int64(4)
		if hasArg {
			if arg.kind != kindInt {
				return nilValue(), fmt.Errorf("indent argument must be an integer")
			}
			n = arg.i
		}
		pad := strings.Repeat(" ", int(n))
		lines := strings.Split(in.str(), "\n")
		for i, l := range lines {
			if l != "" {
				lines[i] = pad + l
			}
		}
		return stringValue(strings.Join(lines, "\n")), nil
	},
	"replace": func(in, arg value, hasArg bool) (value, error) {
		if !hasArg {
			return nilValue(), fmt.Errorf("replace requires an argument of the form old,new")
		}
		parts := strings.SplitN(arg.str(), ",", 2)
		if len(parts) != 2 {
			return nilValue(), fmt.Errorf("replace argument must be old,new")
		}
		return stringValue(strings.ReplaceAll(in.str(), parts[0], parts[1])), nil
	},
}

// RegisterFilter installs a custom filter available to all templates parsed
// afterwards. It panics if the name is already taken, surfacing conflicts
// at init time.
func RegisterFilter(name string, f func(in string, arg string) (string, error)) {
	if _, dup := filters[name]; dup {
		panic(fmt.Sprintf("tmpl: filter %q already registered", name))
	}
	filters[name] = func(in, arg value, hasArg bool) (value, error) {
		a := ""
		if hasArg {
			a = arg.str()
		}
		out, err := f(in.str(), a)
		if err != nil {
			return nilValue(), err
		}
		return stringValue(out), nil
	}
}

func titleCase(s string) string {
	var b strings.Builder
	prevLetter := false
	for _, r := range s {
		isLetter := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
		if isLetter && !prevLetter && r >= 'a' && r <= 'z' {
			r -= 'a' - 'A'
		} else if isLetter && prevLetter && r >= 'A' && r <= 'Z' {
			r += 'a' - 'A'
		}
		prevLetter = isLetter
		b.WriteRune(r)
	}
	return b.String()
}
