package tmpl

import (
	"fmt"
	"strings"
	"testing"
)

func mapLoader(m map[string]string) Loader {
	return func(path string) (string, error) {
		src, ok := m[path]
		if !ok {
			return "", fmt.Errorf("no such template %q", path)
		}
		return src, nil
	}
}

func TestIncludeInlinesTemplate(t *testing.T) {
	loader := mapLoader(map[string]string{
		"common/base": "hostname {{ device.name }}\nntp server 198.51.100.123\n",
	})
	tm, err := ParseWithLoader("main", "{% include 'common/base' %}interface ae0\n", loader)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tm.Render(map[string]any{"device": map[string]any{"name": "psw1"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "hostname psw1\nntp server 198.51.100.123\ninterface ae0\n"
	if out != want {
		t.Errorf("render = %q, want %q", out, want)
	}
}

func TestIncludeSharesContextAndLoops(t *testing.T) {
	loader := mapLoader(map[string]string{
		"iface": " member {{ pif.name }}\n",
	})
	tm, err := ParseWithLoader("main",
		"{% for pif in pifs %}{% include 'iface' %}{% endfor %}", loader)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tm.Render(map[string]any{"pifs": []map[string]any{{"name": "et1/1"}, {"name": "et1/2"}}})
	if err != nil {
		t.Fatal(err)
	}
	if out != " member et1/1\n member et1/2\n" {
		t.Errorf("loop-scoped include = %q", out)
	}
}

func TestIncludeNested(t *testing.T) {
	loader := mapLoader(map[string]string{
		"a": "A[{% include 'b' %}]",
		"b": "B",
	})
	tm, err := ParseWithLoader("main", "{% include 'a' %}", loader)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := tm.Render(nil)
	if out != "A[B]" {
		t.Errorf("nested include = %q", out)
	}
}

func TestIncludeErrors(t *testing.T) {
	loader := mapLoader(map[string]string{
		"self":   "{% include 'self' %}",
		"ping":   "{% include 'pong' %}",
		"pong":   "{% include 'ping' %}",
		"broken": "{% if x %}unterminated",
	})
	cases := []struct {
		name, src string
		errSub    string
	}{
		{"cycle", "{% include 'self' %}", "cycle"},
		{"mutual cycle", "{% include 'ping' %}", "cycle"},
		{"missing", "{% include 'ghost' %}", "no such template"},
		{"unquoted", "{% include base %}", "quoted string"},
		{"broken include", "{% include 'broken' %}", "unexpected EOF"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseWithLoader("main", c.src, loader)
			if err == nil || !strings.Contains(err.Error(), c.errSub) {
				t.Errorf("want error containing %q, got %v", c.errSub, err)
			}
		})
	}
	// Include without a loader fails cleanly.
	if _, err := Parse("main", "{% include 'x' %}"); err == nil {
		t.Error("include without loader should fail")
	}
}

func TestIncludeSelfNameGuard(t *testing.T) {
	// A template including its own name is caught by the seed entry.
	loader := mapLoader(map[string]string{"main": "never loaded"})
	if _, err := ParseWithLoader("main", "{% include 'main' %}", loader); err == nil {
		t.Error("self-include by name should be rejected")
	}
}
