package tmpl

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
)

// Template is a parsed, executable template.
type Template struct {
	name  string
	nodes []node
}

// Parse compiles template source. The name is used in error messages only.
// Templates using {% include %} need ParseWithLoader.
func Parse(name, src string) (*Template, error) {
	return ParseWithLoader(name, src, nil)
}

// ParseWithLoader compiles template source, resolving {% include 'path' %}
// tags through loader at parse time (static inlining). Robotron's vendor
// templates share common sections this way, all versioned in the config
// repository.
func ParseWithLoader(name, src string, loader Loader) (*Template, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	p := &parser{toks: toks, loader: loader, including: map[string]bool{name: true}}
	nodes, _, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &Template{name: name, nodes: nodes}, nil
}

// MustParse is Parse that panics on error, for statically known templates.
func MustParse(name, src string) *Template {
	t, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the template's name.
func (t *Template) Name() string { return t.name }

// Execute renders the template against ctx (typically a map[string]any or a
// struct) and writes the output to w.
func (t *Template) Execute(w io.Writer, ctx any) error {
	st := &state{
		w:     w,
		tname: t.name,
		scope: []map[string]value{{}},
		root:  wrap(ctx),
	}
	for _, n := range t.nodes {
		if err := n.render(st); err != nil {
			return fmt.Errorf("%s: %w", t.name, err)
		}
	}
	return nil
}

// Render is Execute into a string.
func (t *Template) Render(ctx any) (string, error) {
	var b strings.Builder
	if err := t.Execute(&b, ctx); err != nil {
		return "", err
	}
	return b.String(), nil
}

// state carries the rendering context through the node tree.
type state struct {
	w     io.Writer
	tname string
	scope []map[string]value // innermost last; holds loop vars and with-bindings
	root  value              // the user-supplied context
}

func (st *state) push() { st.scope = append(st.scope, map[string]value{}) }
func (st *state) pop()  { st.scope = st.scope[:len(st.scope)-1] }

func (st *state) set(name string, v value) {
	st.scope[len(st.scope)-1][name] = v
}

// lookup resolves the first path segment: innermost scopes first, then the
// root context.
func (st *state) lookup(name string) (value, bool) {
	for i := len(st.scope) - 1; i >= 0; i-- {
		if v, ok := st.scope[i][name]; ok {
			return v, true
		}
	}
	return st.root.attr(name)
}

func (n *textNode) render(st *state) error {
	_, err := io.WriteString(st.w, n.text)
	return err
}

func (n *varNode) render(st *state) error {
	v, err := n.expr.eval(st)
	if err != nil {
		return fmt.Errorf("line %d: %w", n.line, err)
	}
	_, err = io.WriteString(st.w, v.str())
	return err
}

func (n *ifNode) render(st *state) error {
	for _, br := range n.branches {
		v, err := br.cond.eval(st)
		if err != nil {
			return err
		}
		if v.truthy() {
			return renderAll(st, br.body)
		}
	}
	return renderAll(st, n.elseBody)
}

func (n *forNode) render(st *state) error {
	iter, err := n.iter.eval(st)
	if err != nil {
		return fmt.Errorf("line %d: %w", n.line, err)
	}
	items, keys, err := iterate(iter)
	if err != nil {
		return fmt.Errorf("line %d: %w", n.line, err)
	}
	if len(items) == 0 {
		return renderAll(st, n.empty)
	}
	st.push()
	defer st.pop()
	for i, item := range items {
		if n.secondVar != "" {
			st.set(n.loopVar, keys[i])
			st.set(n.secondVar, item)
		} else {
			st.set(n.loopVar, item)
		}
		st.set("forloop", wrap(map[string]any{
			"counter":    i + 1,
			"counter0":   i,
			"revcounter": len(items) - i,
			"first":      i == 0,
			"last":       i == len(items)-1,
		}))
		if err := renderAll(st, n.body); err != nil {
			return err
		}
	}
	return nil
}

// iterate expands an iterable value into a slice of element values; for
// maps it also returns the (sorted) keys so "for k, v in m" is stable.
func iterate(v value) (items, keys []value, err error) {
	switch v.kind {
	case kindNil:
		return nil, nil, nil
	case kindList:
		for i := 0; i < v.rv.Len(); i++ {
			items = append(items, wrapReflect(v.rv.Index(i)))
		}
		return items, nil, nil
	case kindMap:
		mk := v.rv.MapKeys()
		strs := make([]string, len(mk))
		byStr := make(map[string]reflect.Value, len(mk))
		for i, k := range mk {
			s := wrapReflect(k).str()
			strs[i] = s
			byStr[s] = k
		}
		sort.Strings(strs)
		for _, s := range strs {
			k := byStr[s]
			keys = append(keys, wrapReflect(k))
			items = append(items, wrapReflect(v.rv.MapIndex(k)))
		}
		return items, keys, nil
	case kindString:
		for _, r := range v.s {
			items = append(items, stringValue(string(r)))
		}
		return items, nil, nil
	}
	return nil, nil, fmt.Errorf("cannot iterate over %s", v.kindName())
}

func (n *withNode) render(st *state) error {
	v, err := n.val.eval(st)
	if err != nil {
		return err
	}
	st.push()
	defer st.pop()
	st.set(n.name, v)
	return renderAll(st, n.body)
}

// includeNode is a statically inlined sub-template.
type includeNode struct {
	nodes []node
}

func (n *includeNode) render(st *state) error { return renderAll(st, n.nodes) }

func renderAll(st *state, nodes []node) error {
	for _, n := range nodes {
		if err := n.render(st); err != nil {
			return err
		}
	}
	return nil
}

// --- expression evaluation ---

func (e *pathExpr) eval(st *state) (value, error) {
	v, ok := st.lookup(e.parts[0])
	if !ok {
		// Unknown variables render as empty, matching Django's forgiving
		// default; config templates rely on this for optional attributes.
		return nilValue(), nil
	}
	for _, part := range e.parts[1:] {
		v, ok = v.attr(part)
		if !ok {
			return nilValue(), nil
		}
	}
	return v, nil
}

func (e *filterExpr) eval(st *state) (value, error) {
	in, err := e.in.eval(st)
	if err != nil {
		return nilValue(), err
	}
	f, ok := filters[e.name]
	if !ok {
		return nilValue(), fmt.Errorf("line %d: unknown filter %q", e.line, e.name)
	}
	var arg value
	hasArg := e.arg != nil
	if hasArg {
		if arg, err = e.arg.eval(st); err != nil {
			return nilValue(), err
		}
	}
	out, err := f(in, arg, hasArg)
	if err != nil {
		return nilValue(), fmt.Errorf("filter %q: %w", e.name, err)
	}
	return out, nil
}

func (e *binaryExpr) eval(st *state) (value, error) {
	l, err := e.l.eval(st)
	if err != nil {
		return nilValue(), err
	}
	// Short-circuit logical operators.
	switch e.op {
	case "and":
		if !l.truthy() {
			return l, nil
		}
		return e.r.eval(st)
	case "or":
		if l.truthy() {
			return l, nil
		}
		return e.r.eval(st)
	}
	r, err := e.r.eval(st)
	if err != nil {
		return nilValue(), err
	}
	switch e.op {
	case "in":
		ok, err := contains(l, r)
		return boolValue(ok), err
	case "==", "!=":
		c, err := compare(l, r)
		if err != nil {
			// Unlike ordering, equality across mismatched types is just false.
			return boolValue(e.op == "!="), nil
		}
		if e.op == "==" {
			return boolValue(c == 0), nil
		}
		return boolValue(c != 0), nil
	}
	c, err := compare(l, r)
	if err != nil {
		return nilValue(), err
	}
	switch e.op {
	case "<":
		return boolValue(c < 0), nil
	case "<=":
		return boolValue(c <= 0), nil
	case ">":
		return boolValue(c > 0), nil
	case ">=":
		return boolValue(c >= 0), nil
	}
	return nilValue(), fmt.Errorf("unknown operator %q", e.op)
}

func (e *notExpr) eval(st *state) (value, error) {
	v, err := e.in.eval(st)
	if err != nil {
		return nilValue(), err
	}
	return boolValue(!v.truthy()), nil
}
