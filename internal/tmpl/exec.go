package tmpl

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"sync"
	"unicode/utf8"
)

// Template is a parsed, executable template.
type Template struct {
	name  string
	nodes []node
}

// Parse compiles template source. The name is used in error messages only.
// Templates using {% include %} need ParseWithLoader.
func Parse(name, src string) (*Template, error) {
	return ParseWithLoader(name, src, nil)
}

// ParseWithLoader compiles template source, resolving {% include 'path' %}
// tags through loader at parse time (static inlining). Robotron's vendor
// templates share common sections this way, all versioned in the config
// repository.
func ParseWithLoader(name, src string, loader Loader) (*Template, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	p := &parser{toks: toks, loader: loader, including: map[string]bool{name: true}}
	nodes, _, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &Template{name: name, nodes: nodes}, nil
}

// MustParse is Parse that panics on error, for statically known templates.
func MustParse(name, src string) *Template {
	t, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the template's name.
func (t *Template) Name() string { return t.name }

// statePool recycles render states across executions. Fleet-wide config
// generation renders tens of thousands of templates back to back; reusing
// the scope stack and output buffer keeps the steady-state render path
// free of per-call allocations.
var statePool = sync.Pool{New: func() any { return &state{} }}

func getState(w io.Writer, ctx any) *state {
	st := statePool.Get().(*state)
	st.w = w
	st.root = wrap(ctx)
	return st
}

func putState(st *state) {
	// Drop references to caller data; keep the backing arrays.
	for i := range st.vars {
		st.vars[i] = scopeVar{}
	}
	st.vars = st.vars[:0]
	st.frame = 0
	st.loopDepth = 0 // loop records hold no caller data; keep them for reuse
	st.buf = st.buf[:0]
	st.w = nil
	st.root = value{}
	statePool.Put(st)
}

// Execute renders the template against ctx (typically a map[string]any or a
// struct) and writes the output to w.
func (t *Template) Execute(w io.Writer, ctx any) error {
	st := getState(w, ctx)
	defer putState(st)
	for _, n := range t.nodes {
		if err := n.render(st); err != nil {
			return fmt.Errorf("%s: %w", t.name, err)
		}
	}
	return nil
}

// Render is Execute into a string. It buffers into the pooled state's byte
// slice, so the only per-render allocation on this path is the final
// string conversion.
func (t *Template) Render(ctx any) (string, error) {
	st := getState(nil, ctx)
	defer putState(st)
	for _, n := range t.nodes {
		if err := n.render(st); err != nil {
			return "", fmt.Errorf("%s: %w", t.name, err)
		}
	}
	return string(st.buf), nil
}

// scopeVar is one binding on the flat scope stack.
type scopeVar struct {
	name string
	v    value
}

// state carries the rendering context through the node tree. Scopes are a
// flat stack of bindings (loop vars, with-bindings) delimited by frame
// marks rather than a slice of maps: pushing a scope is an integer save,
// binding is an append or in-place overwrite, and lookup is a short
// reverse scan — no map allocations anywhere on the render path.
type state struct {
	w       io.Writer // nil when buffering into buf (Render path)
	buf     []byte    // output buffer, used when w == nil
	scratch [40]byte  // number formatting without allocation when w != nil
	vars    []scopeVar
	frame   int // start of the innermost scope frame in vars
	root    value

	// loops is a depth-indexed freelist of forloop records: nested loops
	// use distinct records, sequential loops at the same depth reuse one.
	loops     []*loopState
	loopDepth int
}

// acquireLoop returns a loop record for one loop execution at the current
// nesting depth, allocating only the first time that depth is reached on
// this state.
func (st *state) acquireLoop(total int) *loopState {
	if st.loopDepth == len(st.loops) {
		st.loops = append(st.loops, new(loopState))
	}
	l := st.loops[st.loopDepth]
	st.loopDepth++
	l.counter0 = 0
	l.total = total
	return l
}

func (st *state) releaseLoop() { st.loopDepth-- }

// push opens a new scope frame and returns the previous frame mark.
func (st *state) push() int {
	old := st.frame
	st.frame = len(st.vars)
	return old
}

// pop closes the innermost frame, restoring the given previous mark.
func (st *state) pop(oldFrame int) {
	st.vars = st.vars[:st.frame]
	st.frame = oldFrame
}

// set binds name in the innermost frame, overwriting an existing binding
// in place (loops rebind the same names every iteration).
func (st *state) set(name string, v value) {
	for i := st.frame; i < len(st.vars); i++ {
		if st.vars[i].name == name {
			st.vars[i].v = v
			return
		}
	}
	st.vars = append(st.vars, scopeVar{name: name, v: v})
}

// lookup resolves the first path segment: innermost bindings first, then
// the root context. norm is the parse-time normalized form of name.
func (st *state) lookup(name, norm string) (value, bool) {
	for i := len(st.vars) - 1; i >= 0; i-- {
		if st.vars[i].name == name {
			return st.vars[i].v, true
		}
	}
	return st.root.attrNorm(name, norm)
}

func (st *state) writeString(s string) error {
	if st.w == nil {
		st.buf = append(st.buf, s...)
		return nil
	}
	_, err := io.WriteString(st.w, s)
	return err
}

// writeValue emits a value the way {{ }} output does, formatting integers
// directly into the output buffer instead of through an intermediate
// string.
func (st *state) writeValue(v value) error {
	switch v.kind {
	case kindNil:
		return nil
	case kindString:
		return st.writeString(v.s)
	case kindInt:
		if st.w == nil {
			st.buf = appendInt(st.buf, v.i)
			return nil
		}
		b := appendInt(st.scratch[:0], v.i)
		_, err := st.w.Write(b)
		return err
	case kindBool:
		if v.b {
			return st.writeString("True")
		}
		return st.writeString("False")
	}
	return st.writeString(v.str())
}

func (n *textNode) render(st *state) error {
	return st.writeString(n.text)
}

func (n *varNode) render(st *state) error {
	v, err := n.expr.eval(st)
	if err != nil {
		return fmt.Errorf("line %d: %w", n.line, err)
	}
	return st.writeValue(v)
}

func (n *ifNode) render(st *state) error {
	for _, br := range n.branches {
		v, err := br.cond.eval(st)
		if err != nil {
			return err
		}
		if v.truthy() {
			return renderAll(st, br.body)
		}
	}
	return renderAll(st, n.elseBody)
}

func (n *forNode) render(st *state) error {
	iter, err := n.iter.eval(st)
	if err != nil {
		return fmt.Errorf("line %d: %w", n.line, err)
	}

	// Resolve the element count up front; empty iterables render the
	// {% empty %} branch without opening a scope.
	var total int
	var mapKeys []reflect.Value
	switch iter.kind {
	case kindNil:
		total = 0
	case kindList:
		total = iter.rv.Len()
	case kindMap:
		mapKeys = iter.rv.MapKeys()
		sort.Slice(mapKeys, func(i, j int) bool {
			return mapKeyString(mapKeys[i]) < mapKeyString(mapKeys[j])
		})
		total = len(mapKeys)
	case kindString:
		total = utf8.RuneCountInString(iter.s)
	default:
		return fmt.Errorf("line %d: cannot iterate over %s", n.line, iter.kindName())
	}
	if total == 0 {
		return renderAll(st, n.empty)
	}

	mark := st.push()
	defer st.pop(mark)
	// One mutable loop record per loop execution replaces the per-iteration
	// forloop map: counters advance in place and attribute reads on the
	// bound kindLoop value compute from it directly.
	loop := st.acquireLoop(total)
	defer st.releaseLoop()
	st.set("forloop", value{kind: kindLoop, loop: loop})

	switch iter.kind {
	case kindList:
		for i := 0; i < total; i++ {
			if err := n.iterOnce(st, loop, i, nilValue(), wrapReflect(iter.rv.Index(i))); err != nil {
				return err
			}
		}
	case kindMap:
		for i, k := range mapKeys {
			if err := n.iterOnce(st, loop, i, wrapReflect(k), wrapReflect(iter.rv.MapIndex(k))); err != nil {
				return err
			}
		}
	case kindString:
		i := 0
		for off, r := range iter.s {
			if err := n.iterOnce(st, loop, i, nilValue(), stringValue(iter.s[off:off+utf8.RuneLen(r)])); err != nil {
				return err
			}
			i++
		}
	}
	return nil
}

// iterOnce binds the loop variables for one iteration and renders the body.
func (n *forNode) iterOnce(st *state, loop *loopState, i int, key, item value) error {
	loop.counter0 = i
	if n.secondVar != "" {
		st.set(n.loopVar, key)
		st.set(n.secondVar, item)
	} else {
		st.set(n.loopVar, item)
	}
	return renderAll(st, n.body)
}

// mapKeyString is the sort key for map iteration order.
func mapKeyString(k reflect.Value) string {
	if k.Kind() == reflect.String {
		return k.String()
	}
	return wrapReflect(k).str()
}

// iterate expands an iterable value into a slice of element values; for
// maps it also returns the (sorted) keys so filters over maps are stable.
// The render loop iterates in place (forNode); this materialized form
// serves the sequence filters (join, first, last).
func iterate(v value) (items, keys []value, err error) {
	switch v.kind {
	case kindNil:
		return nil, nil, nil
	case kindList:
		for i := 0; i < v.rv.Len(); i++ {
			items = append(items, wrapReflect(v.rv.Index(i)))
		}
		return items, nil, nil
	case kindMap:
		mk := v.rv.MapKeys()
		sort.Slice(mk, func(i, j int) bool {
			return mapKeyString(mk[i]) < mapKeyString(mk[j])
		})
		for _, k := range mk {
			keys = append(keys, wrapReflect(k))
			items = append(items, wrapReflect(v.rv.MapIndex(k)))
		}
		return items, keys, nil
	case kindString:
		for _, r := range v.s {
			items = append(items, stringValue(string(r)))
		}
		return items, nil, nil
	}
	return nil, nil, fmt.Errorf("cannot iterate over %s", v.kindName())
}

func (n *withNode) render(st *state) error {
	v, err := n.val.eval(st)
	if err != nil {
		return err
	}
	mark := st.push()
	defer st.pop(mark)
	st.set(n.name, v)
	return renderAll(st, n.body)
}

// includeNode is a statically inlined sub-template.
type includeNode struct {
	nodes []node
}

func (n *includeNode) render(st *state) error { return renderAll(st, n.nodes) }

func renderAll(st *state, nodes []node) error {
	for _, n := range nodes {
		if err := n.render(st); err != nil {
			return err
		}
	}
	return nil
}

// --- expression evaluation ---

func (e *pathExpr) eval(st *state) (value, error) {
	v, ok := st.lookup(e.parts[0], e.norm[0])
	if !ok {
		// Unknown variables render as empty, matching Django's forgiving
		// default; config templates rely on this for optional attributes.
		return nilValue(), nil
	}
	for i := 1; i < len(e.parts); i++ {
		v, ok = v.attrNorm(e.parts[i], e.norm[i])
		if !ok {
			return nilValue(), nil
		}
	}
	return v, nil
}

func (e *filterExpr) eval(st *state) (value, error) {
	in, err := e.in.eval(st)
	if err != nil {
		return nilValue(), err
	}
	f, ok := filters[e.name]
	if !ok {
		return nilValue(), fmt.Errorf("line %d: unknown filter %q", e.line, e.name)
	}
	var arg value
	hasArg := e.arg != nil
	if hasArg {
		if arg, err = e.arg.eval(st); err != nil {
			return nilValue(), err
		}
	}
	out, err := f(in, arg, hasArg)
	if err != nil {
		return nilValue(), fmt.Errorf("filter %q: %w", e.name, err)
	}
	return out, nil
}

func (e *binaryExpr) eval(st *state) (value, error) {
	l, err := e.l.eval(st)
	if err != nil {
		return nilValue(), err
	}
	// Short-circuit logical operators.
	switch e.op {
	case "and":
		if !l.truthy() {
			return l, nil
		}
		return e.r.eval(st)
	case "or":
		if l.truthy() {
			return l, nil
		}
		return e.r.eval(st)
	}
	r, err := e.r.eval(st)
	if err != nil {
		return nilValue(), err
	}
	switch e.op {
	case "in":
		ok, err := contains(l, r)
		return boolValue(ok), err
	case "==", "!=":
		c, err := compare(l, r)
		if err != nil {
			// Unlike ordering, equality across mismatched types is just false.
			return boolValue(e.op == "!="), nil
		}
		if e.op == "==" {
			return boolValue(c == 0), nil
		}
		return boolValue(c != 0), nil
	}
	c, err := compare(l, r)
	if err != nil {
		return nilValue(), err
	}
	switch e.op {
	case "<":
		return boolValue(c < 0), nil
	case "<=":
		return boolValue(c <= 0), nil
	case ">":
		return boolValue(c > 0), nil
	case ">=":
		return boolValue(c >= 0), nil
	}
	return nilValue(), fmt.Errorf("unknown operator %q", e.op)
}

func (e *notExpr) eval(st *state) (value, error) {
	v, err := e.in.eval(st)
	if err != nil {
		return nilValue(), err
	}
	return boolValue(!v.truthy()), nil
}
