package tmpl

import (
	"fmt"
	"sync"
	"testing"
)

// TestNestedForloopMetadata exercises the depth-indexed loop records:
// the inner loop's forloop must shadow the outer one, and the outer
// counters must be intact after the inner loop finishes — including for
// a second inner loop at the same nesting depth, which reuses the record.
func TestNestedForloopMetadata(t *testing.T) {
	src := "{% for a in xs %}" +
		"[{% for b in ys %}{{ forloop.counter }}{% endfor %}]" +
		"[{% for b in ys %}{{ forloop.counter }}{% endfor %}]" +
		"{{ forloop.counter }}/{{ forloop.revcounter }};" +
		"{% endfor %}"
	tpl := MustParse("nested", src)
	got, err := tpl.Render(map[string]any{"xs": []int{10, 20}, "ys": []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	want := "[123][123]1/2;[123][123]2/1;"
	if got != want {
		t.Errorf("nested forloop render = %q, want %q", got, want)
	}
}

// TestConcurrentRender renders the same template from many goroutines.
// The render-state pool and the struct-field cache are shared mutable
// state; under -race this proves the pooling is properly isolated per
// render and the cache handoff is safe.
func TestConcurrentRender(t *testing.T) {
	type iface struct {
		Name string
		MTU  int
	}
	type dev struct {
		HostName string
		Ifaces   []iface
	}
	tpl := MustParse("conc",
		"host {{ device.host_name }}\n"+
			"{% for i in device.ifaces %}iface {{ i.name }} mtu {{ i.mtu }} ({{ forloop.counter }})\n{% endfor %}")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := &dev{HostName: fmt.Sprintf("sw%03d", g)}
			for i := 0; i < 3; i++ {
				d.Ifaces = append(d.Ifaces, iface{Name: fmt.Sprintf("et%d", i), MTU: 9216})
			}
			want := fmt.Sprintf("host sw%03d\niface et0 mtu 9216 (1)\niface et1 mtu 9216 (2)\niface et2 mtu 9216 (3)\n", g)
			for n := 0; n < 200; n++ {
				got, err := tpl.Render(map[string]any{"device": d})
				if err != nil {
					t.Error(err)
					return
				}
				if got != want {
					t.Errorf("goroutine %d render %d = %q, want %q", g, n, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
