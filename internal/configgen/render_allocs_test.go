package configgen

import (
	"testing"

	"github.com/robotron-net/robotron/internal/tmpl"
)

// TestRenderAllocGuard pins the allocation count of the template-render
// hot path: one full vendor1 render of a realistic device. The render
// state is pooled and scope/loop bookkeeping is allocation-free, so the
// steady-state cost is a handful of allocations (output string, map key
// sorts, filter results) — not the ~1,400 the map-scoped executor paid.
// A regression that reintroduces per-iteration or per-lookup allocations
// trips this long before it shows up in fleet-wide latency.
func TestRenderAllocGuard(t *testing.T) {
	tpl := tmpl.MustParse("vendor1", Vendor1FullTemplate)
	d := scaleDeviceData(1)
	ctx := map[string]any{"device": d}

	want, err := tpl.Render(ctx) // warm the state pool and field caches
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		got, err := tpl.Render(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatal("render output changed between runs")
		}
	})
	// Measured ~10 allocs/render; 25 leaves headroom for pool churn under
	// GC pressure while still catching any per-iteration regression (the
	// device data drives >100 loop iterations).
	if allocs > 25 {
		t.Errorf("device render costs %.0f allocs, want <= 25", allocs)
	}
}
