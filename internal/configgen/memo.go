package configgen

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/relstore"
	"github.com/robotron-net/robotron/internal/revctl"
	"github.com/robotron-net/robotron/internal/telemetry"
	"github.com/robotron-net/robotron/internal/thriftlite"
)

// Memoized regeneration. Deriving a device's data object walks dozens of
// FBNet objects; regenerating a whole site after one small design change
// used to redo that walk for every device. The generator instead caches
// each derivation together with its read set — the rows it fetched and
// the reverse-index lookups it issued — and revalidates against the
// store's binlog: a cached derivation is reused unless some entry since
// it was computed touches a row it read (row dep) or inserts/updates a
// row into one of its reverse lookups (value dep). Regeneration cost is
// then O(changed devices), not O(site).

// rowDep identifies one row a derivation read.
type rowDep struct {
	table string
	id    int64
}

// valDep identifies one reverse-lookup (or unique-lookup) a derivation
// issued: any binlog entry whose Values carry col=val for the table can
// add a row to that lookup's result and must invalidate.
type valDep struct {
	table string
	col   string
	val   any
}

// deriveEntry is one memoized derivation. All fields except seq are
// immutable after construction; seq is advanced under Generator.memoMu as
// revalidations prove newer binlog prefixes harmless.
type deriveEntry struct {
	seq      uint64 // store sequence captured before the derive read anything
	syslog   string // SyslogTarget baked into the derived data
	rows     map[rowDep]struct{}
	vals     map[valDep]struct{}
	data     *DeviceData
	wire     []byte // thrift wire form of data
	wireHash string
}

// invalidatedBy reports whether any binlog entry since the derivation
// touches its read set. Schema operations invalidate conservatively.
func (e *deriveEntry) invalidatedBy(entries []relstore.LogEntry) bool {
	for i := range entries {
		le := &entries[i]
		switch le.Op {
		case relstore.OpCreateTable, relstore.OpAlterAddColumn:
			return true
		}
		if _, ok := e.rows[rowDep{le.Table, le.RowID}]; ok {
			return true
		}
		for col, v := range le.Values {
			if _, ok := e.vals[valDep{le.Table, col, v}]; ok {
				return true
			}
		}
	}
	return false
}

// deriveCtx routes one derivation's store reads, recording its read set.
type deriveCtx struct {
	g    *Generator
	rows map[rowDep]struct{}
	vals map[valDep]struct{}
}

func (g *Generator) newDeriveCtx() *deriveCtx {
	return &deriveCtx{g: g, rows: make(map[rowDep]struct{}), vals: make(map[valDep]struct{})}
}

func (dc *deriveCtx) getByID(model string, id int64) (fbnet.Object, error) {
	dc.rows[rowDep{model, id}] = struct{}{}
	return dc.g.store.GetByID(model, id)
}

func (dc *deriveCtx) referencing(model, fkCol string, id int64) ([]int64, error) {
	dc.vals[valDep{model, fkCol, id}] = struct{}{}
	return dc.g.store.DB().Referencing(model, fkCol, id)
}

func (dc *deriveCtx) findDevice(name string) (fbnet.Object, error) {
	// A later insert (or rename) of a device with this name must
	// invalidate, so the unique lookup is a value dep on Device.name.
	dc.vals[valDep{"Device", "name", name}] = struct{}{}
	dev, err := dc.g.store.FindOne("Device", fbnet.Eq("name", name))
	if err == nil {
		dc.rows[rowDep{"Device", dev.ID}] = struct{}{}
	}
	return dev, err
}

// GenStats counts generator work, distinguishing real derivations and
// renders from memoized reuse.
type GenStats struct {
	Derives    int64 // full derivations executed
	DeriveHits int64 // derivations answered from the memo cache
	Renders    int64 // template renders executed
	RenderHits int64 // configs answered from the render cache
	RoundTrips int64 // thrift wire round-trips decoded
}

// Stats returns a snapshot of the generator's work counters. Since the
// counters migrated onto the telemetry registry this is a thin view
// over the registry-backed values; it reads all zeros after
// Instrument(nil).
func (g *Generator) Stats() GenStats {
	return GenStats{
		Derives:    g.metrics.derives.Value(),
		DeriveHits: g.metrics.deriveHits.Value(),
		Renders:    g.metrics.renders.Value(),
		RenderHits: g.metrics.renderHits.Value(),
		RoundTrips: g.metrics.roundTrips.Value(),
	}
}

// ResetMemo drops every memoized derivation and rendered config, forcing
// cold regeneration. Counters are not reset.
func (g *Generator) ResetMemo() {
	g.memoMu.Lock()
	defer g.memoMu.Unlock()
	g.derived = make(map[string]*deriveEntry)
	g.rendered = make(map[string]string)
}

// deriveCached returns the device's derivation, reusing the memoized one
// when the binlog proves nothing it read has changed. hit reports
// whether the memo answered.
func (g *Generator) deriveCached(deviceName string) (*deriveEntry, bool, error) {
	// Capture the sequence before reading anything: writes that land
	// mid-derive stay in EntriesSince(seq) and force a (safe, possibly
	// spurious) re-derive next time.
	db := g.store.DB()
	seq := db.Seq()
	syslog := g.SyslogTarget

	g.memoMu.Lock()
	e, ok := g.derived[deviceName]
	var eseq uint64
	if ok {
		eseq = e.seq
	}
	g.memoMu.Unlock()

	if ok && e.syslog == syslog && !e.invalidatedBy(db.EntriesSince(eseq)) {
		g.memoMu.Lock()
		if g.derived[deviceName] == e && seq > e.seq {
			e.seq = seq // checked prefix is harmless: shorten the next scan
		}
		g.memoMu.Unlock()
		g.metrics.deriveHits.Inc()
		return e, true, nil
	}

	dc := g.newDeriveCtx()
	data, err := g.derive(dc, deviceName)
	if err != nil {
		return nil, false, err
	}
	wire, err := thriftlite.Marshal(data)
	if err != nil {
		return nil, false, fmt.Errorf("configgen: serializing device data for %s: %w", deviceName, err)
	}
	e = &deriveEntry{
		seq: seq, syslog: syslog, rows: dc.rows, vals: dc.vals,
		data: data, wire: wire, wireHash: revctl.Hash(string(wire)),
	}
	g.memoMu.Lock()
	g.derived[deviceName] = e
	g.memoMu.Unlock()
	g.metrics.derives.Inc()
	return e, false, nil
}

// DeviceErrors aggregates per-device generation failures, keyed by device
// name. It is returned alongside the successfully generated configs so a
// site generation degrades to a partial result instead of aborting on the
// first broken device.
type DeviceErrors map[string]error

func (e DeviceErrors) Error() string {
	names := make([]string, 0, len(e))
	for n := range e {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "configgen: %d device(s) failed:", len(e))
	for _, n := range names {
		fmt.Fprintf(&b, "\n  %s: %v", n, e[n])
	}
	return b.String()
}

// GenerateMany generates configs for the named devices through a bounded
// worker pool, mirroring the deploy engine's parallel phase execution.
// parallelism <= 0 selects the default of 8 workers; the pool never
// exceeds len(names). The returned map holds every device that generated
// successfully; if any failed, err is a DeviceErrors with one entry per
// failed device.
func (g *Generator) GenerateMany(names []string, parallelism int) (map[string]string, error) {
	return g.GenerateManyTraced(names, parallelism, nil)
}

// GenerateManyTraced is GenerateMany recording one child span per
// device under parent (memo/render hit attrs per device); a nil parent
// is the untraced fast path.
func (g *Generator) GenerateManyTraced(names []string, parallelism int, parent *telemetry.Span) (map[string]string, error) {
	if parallelism <= 0 {
		parallelism = 8
	}
	if parallelism > len(names) {
		parallelism = len(names)
	}
	if parallelism < 1 {
		parallelism = 1
	}
	configs := make([]string, len(names))
	errs := make([]error, len(names))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				var sp *telemetry.Span
				if parent != nil {
					sp = parent.Child("generate-device")
					sp.SetAttr("device", names[i])
				}
				configs[i], errs[i] = g.generateDevice(names[i], sp)
				if errs[i] != nil {
					sp.SetAttr("error", errs[i].Error())
				}
				sp.End()
			}
		}()
	}
	for i := range names {
		work <- i
	}
	close(work)
	wg.Wait()

	out := make(map[string]string, len(names))
	failed := DeviceErrors{}
	for i, name := range names {
		if errs[i] != nil {
			failed[name] = errs[i]
			continue
		}
		out[name] = configs[i]
	}
	if len(failed) > 0 {
		return out, failed
	}
	return out, nil
}
