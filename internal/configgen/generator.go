package configgen

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/revctl"
	"github.com/robotron-net/robotron/internal/telemetry"
	"github.com/robotron-net/robotron/internal/thriftlite"
	"github.com/robotron-net/robotron/internal/tmpl"
)

// Generator builds vendor-specific device configs from FBNet objects
// (Fig. 10): fetch related objects, derive the per-device Thrift data
// object, combine with the vendor template.
type Generator struct {
	store *fbnet.Store
	repo  *revctl.Repo

	mu    sync.Mutex
	cache map[string]*tmpl.Template // template path+hash -> parsed template

	// memoMu guards the memoization layer (memo.go): cached derivations
	// and rendered configs. Work counters live on the telemetry registry
	// (metrics field) and are atomic.
	memoMu   sync.Mutex
	derived  map[string]*deriveEntry // device name -> memoized derivation
	rendered map[string]string       // template hash + wire hash -> config

	// metrics is bound to a private registry until Instrument rebinds it
	// to the shared one; a nil registry disables instrumentation.
	metrics genMetrics

	// SyslogTarget is stamped into generated configs as the logging host.
	SyslogTarget string
}

// genMetrics holds the generator's registry-backed counters. All
// fields may be nil (no-op) when instrumentation is disabled.
type genMetrics struct {
	derives    *telemetry.Counter
	deriveHits *telemetry.Counter
	renders    *telemetry.Counter
	renderHits *telemetry.Counter
	roundTrips *telemetry.Counter
	deviceSec  *telemetry.Histogram
}

func bindGenMetrics(reg *telemetry.Registry) genMetrics {
	reg.Help("robotron_generate_derives_total", "full derivations executed")
	reg.Help("robotron_generate_derive_hits_total", "derivations answered from the memo cache")
	reg.Help("robotron_generate_device_seconds", "per-device config generation latency")
	return genMetrics{
		derives:    reg.Counter("robotron_generate_derives_total"),
		deriveHits: reg.Counter("robotron_generate_derive_hits_total"),
		renders:    reg.Counter("robotron_generate_renders_total"),
		renderHits: reg.Counter("robotron_generate_render_hits_total"),
		roundTrips: reg.Counter("robotron_generate_roundtrips_total"),
		deviceSec:  reg.Histogram("robotron_generate_device_seconds"),
	}
}

// Instrument rebinds the generator's work counters onto reg, making
// them visible to reg's exporters. Instrument(nil) disables counting
// entirely (Stats then reads zero); call before generating — counts
// accumulated on the previous registry are not carried over.
func (g *Generator) Instrument(reg *telemetry.Registry) {
	g.metrics = bindGenMetrics(reg)
}

// NewGenerator creates a generator over an FBNet store and a config
// repository, seeding the built-in vendor templates if the repository does
// not hold them yet.
func NewGenerator(store *fbnet.Store, repo *revctl.Repo) (*Generator, error) {
	g := &Generator{
		store: store, repo: repo,
		cache:    make(map[string]*tmpl.Template),
		derived:  make(map[string]*deriveEntry),
		rendered: make(map[string]string),
		metrics:  bindGenMetrics(telemetry.NewRegistry()),
	}
	for syntax, body := range map[string]string{
		"vendor1": Vendor1FullTemplate,
		"vendor2": Vendor2FullTemplate,
	} {
		path := TemplatePath(syntax)
		if _, ok := repo.Head(path); !ok {
			if _, err := repo.Commit(path, body, "robotron", "seed built-in template"); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// Repo returns the generator's config repository.
func (g *Generator) Repo() *revctl.Repo { return g.repo }

// DeriveDeviceData derives the dynamic config data for one device from
// FBNet Desired objects. The result is always freshly computed (and safe
// for the caller to mutate); the memoized path lives in GenerateDevice.
func (g *Generator) DeriveDeviceData(deviceName string) (*DeviceData, error) {
	return g.derive(g.newDeriveCtx(), deviceName)
}

// derive computes a device's data object, reading through dc so the read
// set is recorded for memoization.
func (g *Generator) derive(dc *deriveCtx, deviceName string) (*DeviceData, error) {
	dev, err := dc.findDevice(deviceName)
	if err != nil {
		return nil, err
	}
	hw, err := dc.getByID("HardwareProfile", dev.Ref("hw_profile"))
	if err != nil {
		return nil, err
	}
	vendor, err := dc.getByID("Vendor", hw.Ref("vendor"))
	if err != nil {
		return nil, err
	}
	site, err := dc.getByID("Site", dev.Ref("site"))
	if err != nil {
		return nil, err
	}
	data := &DeviceData{
		Name:         dev.String("name"),
		Role:         dev.String("role"),
		Vendor:       vendor.String("syntax"),
		Site:         site.String("name"),
		LoopbackV4:   dev.String("loopback_v4"),
		LoopbackV6:   dev.String("loopback_v6"),
		SyslogTarget: g.SyslogTarget,
		MgmtIP:       dev.String("mgmt_ip"),
	}

	// Aggregated interfaces with member ports and addressing.
	aggIDs, err := dc.referencing("AggregatedInterface", "device", dev.ID)
	if err != nil {
		return nil, err
	}
	for _, aggID := range aggIDs {
		agg, err := dc.getByID("AggregatedInterface", aggID)
		if err != nil {
			return nil, err
		}
		ad := AggregatedInterfaceData{
			Name:   agg.String("name"),
			Number: int32(agg.Int("number")),
			MTU:    int32(agg.Int("mtu")),
		}
		pifIDs, err := dc.referencing("PhysicalInterface", "agg_interface", aggID)
		if err != nil {
			return nil, err
		}
		for _, pifID := range pifIDs {
			pif, err := dc.getByID("PhysicalInterface", pifID)
			if err != nil {
				return nil, err
			}
			ad.Pifs = append(ad.Pifs, PhysicalInterfaceData{Name: pif.String("name")})
		}
		sort.Slice(ad.Pifs, func(i, j int) bool { return ad.Pifs[i].Name < ad.Pifs[j].Name })
		for _, pm := range []string{"V6Prefix", "V4Prefix"} {
			pfxIDs, err := dc.referencing(pm, "interface", aggID)
			if err != nil {
				return nil, err
			}
			for _, pid := range pfxIDs {
				p, err := dc.getByID(pm, pid)
				if err != nil {
					return nil, err
				}
				if pm == "V6Prefix" {
					ad.V6Prefix = p.String("prefix")
				} else {
					ad.V4Prefix = p.String("prefix")
				}
			}
		}
		data.Aggs = append(data.Aggs, ad)
	}
	sort.Slice(data.Aggs, func(i, j int) bool { return data.Aggs[i].Number < data.Aggs[j].Number })

	// BGP neighbors: sessions are single objects describing both peers
	// ("proper configuration must exist in both peers of every iBGP
	// session", §1), so each device renders its own side.
	policyIDs := map[int64]bool{}
	for _, sm := range []struct{ model, family string }{
		{"BgpV6Session", "v6"}, {"BgpV4Session", "v4"},
	} {
		if err := g.deriveBGP(dc, dev.ID, sm.model, sm.family, data, policyIDs); err != nil {
			return nil, err
		}
	}
	sort.Slice(data.BGPNeighbors, func(i, j int) bool { return data.BGPNeighbors[i].Addr < data.BGPNeighbors[j].Addr })
	if err := g.derivePolicies(dc, policyIDs, data); err != nil {
		return nil, err
	}

	// MPLS-TE tunnels headed at this device (§2.3).
	tunnelIDs, err := dc.referencing("MplsTunnel", "head_device", dev.ID)
	if err != nil {
		return nil, err
	}
	for _, tid := range tunnelIDs {
		t, err := dc.getByID("MplsTunnel", tid)
		if err != nil {
			return nil, err
		}
		tail, err := dc.getByID("Device", t.Ref("tail_device"))
		if err != nil {
			return nil, err
		}
		data.MplsTunnels = append(data.MplsTunnels, MplsTunnelData{
			Name:          t.String("name"),
			TailLoopback:  addrOfPrefix(tail.String("loopback_v6")),
			BandwidthMbps: t.Int("bandwidth_mbps"),
		})
	}
	sort.Slice(data.MplsTunnels, func(i, j int) bool { return data.MplsTunnels[i].Name < data.MplsTunnels[j].Name })

	// Firewall policies attached to this device (§5.3.2).
	attachIDs, err := dc.referencing("DeviceFirewall", "device", dev.ID)
	if err != nil {
		return nil, err
	}
	for _, aid := range attachIDs {
		att, err := dc.getByID("DeviceFirewall", aid)
		if err != nil {
			return nil, err
		}
		policy, err := dc.getByID("FirewallPolicy", att.Ref("policy"))
		if err != nil {
			return nil, err
		}
		fd := FirewallData{Name: policy.String("name"), Direction: policy.String("direction")}
		ruleIDs, err := dc.referencing("FirewallRule", "policy", policy.ID)
		if err != nil {
			return nil, err
		}
		for _, rid := range ruleIDs {
			rule, err := dc.getByID("FirewallRule", rid)
			if err != nil {
				return nil, err
			}
			fd.Rules = append(fd.Rules, FirewallRuleData{
				Seq: rule.Int("seq"), Action: rule.String("action"),
				Protocol: rule.String("protocol"), SrcPrefix: rule.String("src_prefix"),
				DstPort: rule.Int("dst_port"),
			})
		}
		sort.Slice(fd.Rules, func(i, j int) bool { return fd.Rules[i].Seq < fd.Rules[j].Seq })
		data.Firewalls = append(data.Firewalls, fd)
	}
	sort.Slice(data.Firewalls, func(i, j int) bool { return data.Firewalls[i].Name < data.Firewalls[j].Name })
	return data, nil
}

// deriveBGP adds this device's view of every session it participates in,
// recording any routing policies the local side must render.
func (g *Generator) deriveBGP(dc *deriveCtx, devID int64, model, family string, data *DeviceData, policyIDs map[int64]bool) error {
	prefixModel := "V6Prefix"
	if family == "v4" {
		prefixModel = "V4Prefix"
	}
	// Sessions where this device is the local side: neighbor is remote_addr.
	localIDs, err := dc.referencing(model, "local_device", devID)
	if err != nil {
		return err
	}
	for _, sid := range localIDs {
		s, err := dc.getByID(model, sid)
		if err != nil {
			return err
		}
		if data.LocalAS == 0 {
			data.LocalAS = s.Int("local_as")
		}
		addr := s.String("remote_addr")
		if addr == "" {
			continue
		}
		desc, err := g.peerDescription(dc, s.Ref("remote_device"))
		if err != nil {
			return err
		}
		n := BGPNeighborData{
			Addr: addr, RemoteAS: s.Int("remote_as"), Family: family,
			SessionType: s.String("session_type"), Description: desc,
		}
		// Policies attach to the local side of the session.
		for field, dst := range map[string]*string{
			"import_policy": &n.ImportPolicy, "export_policy": &n.ExportPolicy,
		} {
			if pid := s.Ref(field); pid != 0 {
				p, err := dc.getByID("RoutingPolicy", pid)
				if err != nil {
					return err
				}
				*dst = p.String("name")
				policyIDs[pid] = true
			}
		}
		data.BGPNeighbors = append(data.BGPNeighbors, n)
	}
	// Sessions where this device is the remote side: the neighbor address
	// is the local side's prefix address (eBGP over a bundle) or its v6
	// loopback (iBGP mesh).
	remoteIDs, err := dc.referencing(model, "remote_device", devID)
	if err != nil {
		return err
	}
	for _, sid := range remoteIDs {
		s, err := dc.getByID(model, sid)
		if err != nil {
			return err
		}
		if data.LocalAS == 0 {
			data.LocalAS = s.Int("remote_as")
		}
		peerDevID := s.Ref("local_device")
		var addr string
		if pfxID := s.Ref("local_prefix"); pfxID != 0 {
			p, err := dc.getByID(prefixModel, pfxID)
			if err != nil {
				return err
			}
			addr = addrOfPrefix(p.String("prefix"))
		} else if peerDevID != 0 {
			peer, err := dc.getByID("Device", peerDevID)
			if err != nil {
				return err
			}
			lo := peer.String("loopback_v6")
			if family == "v4" {
				lo = peer.String("loopback_v4")
			}
			addr = addrOfPrefix(lo)
		}
		if addr == "" {
			continue
		}
		desc, err := g.peerDescription(dc, peerDevID)
		if err != nil {
			return err
		}
		data.BGPNeighbors = append(data.BGPNeighbors, BGPNeighborData{
			Addr: addr, RemoteAS: s.Int("local_as"), Family: family,
			SessionType: s.String("session_type"), Description: desc,
		})
	}
	return nil
}

// derivePolicies loads the referenced routing policies with their terms.
// A referenced policy with no terms is refused: generating a session whose
// import policy is "still under development" is exactly the §8 incident
// ("an engineer used Robotron to turn up the session, instantly saturating
// the egress link").
func (g *Generator) derivePolicies(dc *deriveCtx, policyIDs map[int64]bool, data *DeviceData) error {
	for pid := range policyIDs {
		p, err := dc.getByID("RoutingPolicy", pid)
		if err != nil {
			return err
		}
		pd := PolicyData{Name: p.String("name")}
		termIDs, err := dc.referencing("PolicyTerm", "policy", pid)
		if err != nil {
			return err
		}
		for _, tid := range termIDs {
			t, err := dc.getByID("PolicyTerm", tid)
			if err != nil {
				return err
			}
			pd.Terms = append(pd.Terms, PolicyTermData{
				Seq: t.Int("seq"), MatchPrefix: t.String("match_prefix"), Action: t.String("action"),
			})
		}
		if len(pd.Terms) == 0 {
			return fmt.Errorf("configgen: %s references routing policy %q which has no terms (not yet implemented); refusing to generate",
				data.Name, pd.Name)
		}
		sort.Slice(pd.Terms, func(i, j int) bool { return pd.Terms[i].Seq < pd.Terms[j].Seq })
		data.Policies = append(data.Policies, pd)
	}
	sort.Slice(data.Policies, func(i, j int) bool { return data.Policies[i].Name < data.Policies[j].Name })
	return nil
}

func (g *Generator) peerDescription(dc *deriveCtx, devID int64) (string, error) {
	if devID == 0 {
		return "external peer", nil
	}
	peer, err := dc.getByID("Device", devID)
	if err != nil {
		return "", err
	}
	return "to " + peer.String("name"), nil
}

// addrOfPrefix strips the mask length: "2401::1/127" -> "2401::1".
func addrOfPrefix(pfx string) string {
	if i := strings.IndexByte(pfx, '/'); i >= 0 {
		return pfx[:i]
	}
	return pfx
}

// GenerateDevice produces the full vendor-specific config for one device.
// Derivation is memoized against the store's binlog (memo.go). On a fresh
// result the derived data is round-tripped through its Thrift wire form —
// config generation consumes exactly what would cross the RPC boundary —
// and rendered; when the exact (template, wire) pair was rendered before,
// both the round-trip and the render are skipped.
func (g *Generator) GenerateDevice(deviceName string) (string, error) {
	return g.generateDevice(deviceName, nil)
}

// generateDevice is GenerateDevice recording memo/render outcomes onto
// an optional span (nil span = untraced).
func (g *Generator) generateDevice(deviceName string, sp *telemetry.Span) (string, error) {
	start := time.Now()
	defer g.metrics.deviceSec.ObserveSince(start)
	e, memoHit, err := g.deriveCached(deviceName)
	if err != nil {
		return "", err
	}
	if memoHit {
		sp.SetAttr("memo", "hit")
	} else {
		sp.SetAttr("memo", "miss")
	}
	path := TemplatePath(e.data.Vendor)
	body, err := g.repo.GetHead(path)
	if err != nil {
		return "", fmt.Errorf("configgen: no template for vendor %q: %w", e.data.Vendor, err)
	}
	rkey := revctl.Hash(body) + "\x00" + e.wireHash
	g.memoMu.Lock()
	cfg, hit := g.rendered[rkey]
	g.memoMu.Unlock()
	if hit {
		g.metrics.renderHits.Inc()
		sp.SetAttr("render", "hit")
		return cfg, nil
	}
	sp.SetAttr("render", "miss")
	var decoded DeviceData
	if err := thriftlite.Unmarshal(e.wire, &decoded); err != nil {
		return "", fmt.Errorf("configgen: deserializing device data for %s: %w", deviceName, err)
	}
	t, err := g.compile(path, body)
	if err != nil {
		return "", err
	}
	out, err := t.Render(map[string]any{"device": &decoded})
	if err != nil {
		return "", fmt.Errorf("configgen: rendering %s: %w", decoded.Name, err)
	}
	g.metrics.roundTrips.Inc()
	g.metrics.renders.Inc()
	g.memoMu.Lock()
	g.rendered[rkey] = out
	g.memoMu.Unlock()
	return out, nil
}

// compile parses a template, caching by path + content hash so repository
// updates take effect while repeat renders stay cheap. {% include %} paths
// resolve against the config repository, letting vendor templates share
// reviewed common sections.
func (g *Generator) compile(path, body string) (*tmpl.Template, error) {
	key := path + "@" + revctl.Hash(body)
	g.mu.Lock()
	defer g.mu.Unlock()
	if t, ok := g.cache[key]; ok {
		return t, nil
	}
	t, err := tmpl.ParseWithLoader(path, body, g.repo.GetHead)
	if err != nil {
		return nil, fmt.Errorf("configgen: template %s: %w", path, err)
	}
	g.cache[key] = t
	return t, nil
}

// GenerateSite generates configs for every device at a site ("for a given
// location such as a POP or DC, Robotron fetches all related objects from
// FBNet") through the parallel worker pool, returned as device name ->
// config. One broken device does not block the rest of the site: the map
// holds every config that generated successfully, and the error — a
// DeviceErrors when generation failed — names each failing device.
func (g *Generator) GenerateSite(siteName string) (map[string]string, error) {
	return g.GenerateSiteParallel(siteName, 0)
}

// GenerateSiteParallel is GenerateSite with an explicit worker count;
// parallelism <= 0 selects the default.
func (g *Generator) GenerateSiteParallel(siteName string, parallelism int) (map[string]string, error) {
	devs, err := g.store.Find("Device", fbnet.Eq("site.name", siteName))
	if err != nil {
		return nil, err
	}
	if len(devs) == 0 {
		return nil, fmt.Errorf("configgen: no devices at site %q", siteName)
	}
	names := make([]string, len(devs))
	for i, dev := range devs {
		names[i] = dev.String("name")
	}
	return g.GenerateMany(names, parallelism)
}

// GoldenPath is the config-repository path of a device's golden config.
func GoldenPath(deviceName string) string { return "golden/" + deviceName }

// CommitGolden stores a generated config as the device's golden config in
// the repository; config monitoring compares running configs against this
// (§5.4.3).
func (g *Generator) CommitGolden(deviceName, config, author, message string) (revctl.Revision, error) {
	return g.repo.Commit(GoldenPath(deviceName), config, author, message)
}

// Golden returns the device's current golden config.
func (g *Generator) Golden(deviceName string) (string, error) {
	return g.repo.GetHead(GoldenPath(deviceName))
}
