package configgen

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/revctl"
	"github.com/robotron-net/robotron/internal/thriftlite"
	"github.com/robotron-net/robotron/internal/tmpl"
)

// Generator builds vendor-specific device configs from FBNet objects
// (Fig. 10): fetch related objects, derive the per-device Thrift data
// object, combine with the vendor template.
type Generator struct {
	store *fbnet.Store
	repo  *revctl.Repo

	mu    sync.Mutex
	cache map[string]*tmpl.Template // template path+hash -> parsed template

	// SyslogTarget is stamped into generated configs as the logging host.
	SyslogTarget string
}

// NewGenerator creates a generator over an FBNet store and a config
// repository, seeding the built-in vendor templates if the repository does
// not hold them yet.
func NewGenerator(store *fbnet.Store, repo *revctl.Repo) (*Generator, error) {
	g := &Generator{store: store, repo: repo, cache: make(map[string]*tmpl.Template)}
	for syntax, body := range map[string]string{
		"vendor1": Vendor1FullTemplate,
		"vendor2": Vendor2FullTemplate,
	} {
		path := TemplatePath(syntax)
		if _, ok := repo.Head(path); !ok {
			if _, err := repo.Commit(path, body, "robotron", "seed built-in template"); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// Repo returns the generator's config repository.
func (g *Generator) Repo() *revctl.Repo { return g.repo }

// DeriveDeviceData derives the dynamic config data for one device from
// FBNet Desired objects.
func (g *Generator) DeriveDeviceData(deviceName string) (*DeviceData, error) {
	dev, err := g.store.FindOne("Device", fbnet.Eq("name", deviceName))
	if err != nil {
		return nil, err
	}
	hw, err := g.store.GetByID("HardwareProfile", dev.Ref("hw_profile"))
	if err != nil {
		return nil, err
	}
	vendor, err := g.store.GetByID("Vendor", hw.Ref("vendor"))
	if err != nil {
		return nil, err
	}
	site, err := g.store.GetByID("Site", dev.Ref("site"))
	if err != nil {
		return nil, err
	}
	data := &DeviceData{
		Name:         dev.String("name"),
		Role:         dev.String("role"),
		Vendor:       vendor.String("syntax"),
		Site:         site.String("name"),
		LoopbackV4:   dev.String("loopback_v4"),
		LoopbackV6:   dev.String("loopback_v6"),
		SyslogTarget: g.SyslogTarget,
		MgmtIP:       dev.String("mgmt_ip"),
	}

	// Aggregated interfaces with member ports and addressing.
	aggIDs, err := g.store.DB().Referencing("AggregatedInterface", "device", dev.ID)
	if err != nil {
		return nil, err
	}
	for _, aggID := range aggIDs {
		agg, err := g.store.GetByID("AggregatedInterface", aggID)
		if err != nil {
			return nil, err
		}
		ad := AggregatedInterfaceData{
			Name:   agg.String("name"),
			Number: int32(agg.Int("number")),
			MTU:    int32(agg.Int("mtu")),
		}
		pifIDs, err := g.store.DB().Referencing("PhysicalInterface", "agg_interface", aggID)
		if err != nil {
			return nil, err
		}
		for _, pifID := range pifIDs {
			pif, err := g.store.GetByID("PhysicalInterface", pifID)
			if err != nil {
				return nil, err
			}
			ad.Pifs = append(ad.Pifs, PhysicalInterfaceData{Name: pif.String("name")})
		}
		sort.Slice(ad.Pifs, func(i, j int) bool { return ad.Pifs[i].Name < ad.Pifs[j].Name })
		for _, pm := range []string{"V6Prefix", "V4Prefix"} {
			pfxIDs, err := g.store.DB().Referencing(pm, "interface", aggID)
			if err != nil {
				return nil, err
			}
			for _, pid := range pfxIDs {
				p, err := g.store.GetByID(pm, pid)
				if err != nil {
					return nil, err
				}
				if pm == "V6Prefix" {
					ad.V6Prefix = p.String("prefix")
				} else {
					ad.V4Prefix = p.String("prefix")
				}
			}
		}
		data.Aggs = append(data.Aggs, ad)
	}
	sort.Slice(data.Aggs, func(i, j int) bool { return data.Aggs[i].Number < data.Aggs[j].Number })

	// BGP neighbors: sessions are single objects describing both peers
	// ("proper configuration must exist in both peers of every iBGP
	// session", §1), so each device renders its own side.
	policyIDs := map[int64]bool{}
	for _, sm := range []struct{ model, family string }{
		{"BgpV6Session", "v6"}, {"BgpV4Session", "v4"},
	} {
		if err := g.deriveBGP(dev.ID, sm.model, sm.family, data, policyIDs); err != nil {
			return nil, err
		}
	}
	sort.Slice(data.BGPNeighbors, func(i, j int) bool { return data.BGPNeighbors[i].Addr < data.BGPNeighbors[j].Addr })
	if err := g.derivePolicies(policyIDs, data); err != nil {
		return nil, err
	}

	// MPLS-TE tunnels headed at this device (§2.3).
	tunnelIDs, err := g.store.DB().Referencing("MplsTunnel", "head_device", dev.ID)
	if err != nil {
		return nil, err
	}
	for _, tid := range tunnelIDs {
		t, err := g.store.GetByID("MplsTunnel", tid)
		if err != nil {
			return nil, err
		}
		tail, err := g.store.GetByID("Device", t.Ref("tail_device"))
		if err != nil {
			return nil, err
		}
		data.MplsTunnels = append(data.MplsTunnels, MplsTunnelData{
			Name:          t.String("name"),
			TailLoopback:  addrOfPrefix(tail.String("loopback_v6")),
			BandwidthMbps: t.Int("bandwidth_mbps"),
		})
	}
	sort.Slice(data.MplsTunnels, func(i, j int) bool { return data.MplsTunnels[i].Name < data.MplsTunnels[j].Name })

	// Firewall policies attached to this device (§5.3.2).
	attachIDs, err := g.store.DB().Referencing("DeviceFirewall", "device", dev.ID)
	if err != nil {
		return nil, err
	}
	for _, aid := range attachIDs {
		att, err := g.store.GetByID("DeviceFirewall", aid)
		if err != nil {
			return nil, err
		}
		policy, err := g.store.GetByID("FirewallPolicy", att.Ref("policy"))
		if err != nil {
			return nil, err
		}
		fd := FirewallData{Name: policy.String("name"), Direction: policy.String("direction")}
		ruleIDs, err := g.store.DB().Referencing("FirewallRule", "policy", policy.ID)
		if err != nil {
			return nil, err
		}
		for _, rid := range ruleIDs {
			rule, err := g.store.GetByID("FirewallRule", rid)
			if err != nil {
				return nil, err
			}
			fd.Rules = append(fd.Rules, FirewallRuleData{
				Seq: rule.Int("seq"), Action: rule.String("action"),
				Protocol: rule.String("protocol"), SrcPrefix: rule.String("src_prefix"),
				DstPort: rule.Int("dst_port"),
			})
		}
		sort.Slice(fd.Rules, func(i, j int) bool { return fd.Rules[i].Seq < fd.Rules[j].Seq })
		data.Firewalls = append(data.Firewalls, fd)
	}
	sort.Slice(data.Firewalls, func(i, j int) bool { return data.Firewalls[i].Name < data.Firewalls[j].Name })
	return data, nil
}

// deriveBGP adds this device's view of every session it participates in,
// recording any routing policies the local side must render.
func (g *Generator) deriveBGP(devID int64, model, family string, data *DeviceData, policyIDs map[int64]bool) error {
	prefixModel := "V6Prefix"
	if family == "v4" {
		prefixModel = "V4Prefix"
	}
	// Sessions where this device is the local side: neighbor is remote_addr.
	localIDs, err := g.store.DB().Referencing(model, "local_device", devID)
	if err != nil {
		return err
	}
	for _, sid := range localIDs {
		s, err := g.store.GetByID(model, sid)
		if err != nil {
			return err
		}
		if data.LocalAS == 0 {
			data.LocalAS = s.Int("local_as")
		}
		addr := s.String("remote_addr")
		if addr == "" {
			continue
		}
		desc, err := g.peerDescription(s.Ref("remote_device"))
		if err != nil {
			return err
		}
		n := BGPNeighborData{
			Addr: addr, RemoteAS: s.Int("remote_as"), Family: family,
			SessionType: s.String("session_type"), Description: desc,
		}
		// Policies attach to the local side of the session.
		for field, dst := range map[string]*string{
			"import_policy": &n.ImportPolicy, "export_policy": &n.ExportPolicy,
		} {
			if pid := s.Ref(field); pid != 0 {
				p, err := g.store.GetByID("RoutingPolicy", pid)
				if err != nil {
					return err
				}
				*dst = p.String("name")
				policyIDs[pid] = true
			}
		}
		data.BGPNeighbors = append(data.BGPNeighbors, n)
	}
	// Sessions where this device is the remote side: the neighbor address
	// is the local side's prefix address (eBGP over a bundle) or its v6
	// loopback (iBGP mesh).
	remoteIDs, err := g.store.DB().Referencing(model, "remote_device", devID)
	if err != nil {
		return err
	}
	for _, sid := range remoteIDs {
		s, err := g.store.GetByID(model, sid)
		if err != nil {
			return err
		}
		if data.LocalAS == 0 {
			data.LocalAS = s.Int("remote_as")
		}
		peerDevID := s.Ref("local_device")
		var addr string
		if pfxID := s.Ref("local_prefix"); pfxID != 0 {
			p, err := g.store.GetByID(prefixModel, pfxID)
			if err != nil {
				return err
			}
			addr = addrOfPrefix(p.String("prefix"))
		} else if peerDevID != 0 {
			peer, err := g.store.GetByID("Device", peerDevID)
			if err != nil {
				return err
			}
			lo := peer.String("loopback_v6")
			if family == "v4" {
				lo = peer.String("loopback_v4")
			}
			addr = addrOfPrefix(lo)
		}
		if addr == "" {
			continue
		}
		desc, err := g.peerDescription(peerDevID)
		if err != nil {
			return err
		}
		data.BGPNeighbors = append(data.BGPNeighbors, BGPNeighborData{
			Addr: addr, RemoteAS: s.Int("local_as"), Family: family,
			SessionType: s.String("session_type"), Description: desc,
		})
	}
	return nil
}

// derivePolicies loads the referenced routing policies with their terms.
// A referenced policy with no terms is refused: generating a session whose
// import policy is "still under development" is exactly the §8 incident
// ("an engineer used Robotron to turn up the session, instantly saturating
// the egress link").
func (g *Generator) derivePolicies(policyIDs map[int64]bool, data *DeviceData) error {
	for pid := range policyIDs {
		p, err := g.store.GetByID("RoutingPolicy", pid)
		if err != nil {
			return err
		}
		pd := PolicyData{Name: p.String("name")}
		termIDs, err := g.store.DB().Referencing("PolicyTerm", "policy", pid)
		if err != nil {
			return err
		}
		for _, tid := range termIDs {
			t, err := g.store.GetByID("PolicyTerm", tid)
			if err != nil {
				return err
			}
			pd.Terms = append(pd.Terms, PolicyTermData{
				Seq: t.Int("seq"), MatchPrefix: t.String("match_prefix"), Action: t.String("action"),
			})
		}
		if len(pd.Terms) == 0 {
			return fmt.Errorf("configgen: %s references routing policy %q which has no terms (not yet implemented); refusing to generate",
				data.Name, pd.Name)
		}
		sort.Slice(pd.Terms, func(i, j int) bool { return pd.Terms[i].Seq < pd.Terms[j].Seq })
		data.Policies = append(data.Policies, pd)
	}
	sort.Slice(data.Policies, func(i, j int) bool { return data.Policies[i].Name < data.Policies[j].Name })
	return nil
}

func (g *Generator) peerDescription(devID int64) (string, error) {
	if devID == 0 {
		return "external peer", nil
	}
	peer, err := g.store.GetByID("Device", devID)
	if err != nil {
		return "", err
	}
	return "to " + peer.String("name"), nil
}

// addrOfPrefix strips the mask length: "2401::1/127" -> "2401::1".
func addrOfPrefix(pfx string) string {
	if i := strings.IndexByte(pfx, '/'); i >= 0 {
		return pfx[:i]
	}
	return pfx
}

// GenerateDevice produces the full vendor-specific config for one device.
// The derived data is round-tripped through its Thrift wire form first —
// config generation consumes exactly what would cross the RPC boundary.
func (g *Generator) GenerateDevice(deviceName string) (string, error) {
	data, err := g.DeriveDeviceData(deviceName)
	if err != nil {
		return "", err
	}
	wire, err := thriftlite.Marshal(data)
	if err != nil {
		return "", fmt.Errorf("configgen: serializing device data for %s: %w", deviceName, err)
	}
	var decoded DeviceData
	if err := thriftlite.Unmarshal(wire, &decoded); err != nil {
		return "", fmt.Errorf("configgen: deserializing device data for %s: %w", deviceName, err)
	}
	return g.render(&decoded)
}

func (g *Generator) render(data *DeviceData) (string, error) {
	path := TemplatePath(data.Vendor)
	body, err := g.repo.GetHead(path)
	if err != nil {
		return "", fmt.Errorf("configgen: no template for vendor %q: %w", data.Vendor, err)
	}
	t, err := g.compile(path, body)
	if err != nil {
		return "", err
	}
	out, err := t.Render(map[string]any{"device": data})
	if err != nil {
		return "", fmt.Errorf("configgen: rendering %s: %w", data.Name, err)
	}
	return out, nil
}

// compile parses a template, caching by path + content hash so repository
// updates take effect while repeat renders stay cheap. {% include %} paths
// resolve against the config repository, letting vendor templates share
// reviewed common sections.
func (g *Generator) compile(path, body string) (*tmpl.Template, error) {
	key := path + "@" + revctl.Hash(body)
	g.mu.Lock()
	defer g.mu.Unlock()
	if t, ok := g.cache[key]; ok {
		return t, nil
	}
	t, err := tmpl.ParseWithLoader(path, body, g.repo.GetHead)
	if err != nil {
		return nil, fmt.Errorf("configgen: template %s: %w", path, err)
	}
	g.cache[key] = t
	return t, nil
}

// GenerateSite generates configs for every device at a site ("for a given
// location such as a POP or DC, Robotron fetches all related objects from
// FBNet"), returned as device name -> config.
func (g *Generator) GenerateSite(siteName string) (map[string]string, error) {
	devs, err := g.store.Find("Device", fbnet.Eq("site.name", siteName))
	if err != nil {
		return nil, err
	}
	if len(devs) == 0 {
		return nil, fmt.Errorf("configgen: no devices at site %q", siteName)
	}
	out := make(map[string]string, len(devs))
	for _, dev := range devs {
		cfg, err := g.GenerateDevice(dev.String("name"))
		if err != nil {
			return nil, err
		}
		out[dev.String("name")] = cfg
	}
	return out, nil
}

// GoldenPath is the config-repository path of a device's golden config.
func GoldenPath(deviceName string) string { return "golden/" + deviceName }

// CommitGolden stores a generated config as the device's golden config in
// the repository; config monitoring compares running configs against this
// (§5.4.3).
func (g *Generator) CommitGolden(deviceName, config, author, message string) (revctl.Revision, error) {
	return g.repo.Commit(GoldenPath(deviceName), config, author, message)
}

// Golden returns the device's current golden config.
func (g *Generator) Golden(deviceName string) (string, error) {
	return g.repo.GetHead(GoldenPath(deviceName))
}
