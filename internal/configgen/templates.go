package configgen

// The built-in vendor config templates (Fig. 9), written in the Django
// template language implemented by internal/tmpl. Vendor1 uses a flat,
// IOS-like syntax; Vendor2 a brace-structured, JunOS-like syntax. Both are
// stored in the source-controlled config repository (Configerator in the
// paper) so template changes are peer-reviewed and versioned; these
// constants are the seed revisions. Beyond the Fig. 9 interface stanzas,
// each template carries the static baseline a production device needs —
// management plane, AAA, SNMP, NTP, QoS, control-plane policing — plus
// BGP and MPLS-TE sections fed from the Fig. 8 data object.

// Vendor1FullTemplate renders a complete vendor1 device config.
const Vendor1FullTemplate = `! Robotron-generated configuration
! device: {{ device.name }} role: {{ device.role }} site: {{ device.site }}
hostname {{ device.name }}
logging host {{ device.syslog_target|default:'192.0.2.1' }}
logging buffered 64000
service timestamps log datetime msec
no service pad
ip name-server 198.51.100.53
ntp server 198.51.100.123
ntp server 198.51.100.124
aaa new-model
aaa authentication login default group tacacs+ local
aaa authorization exec default group tacacs+ local
tacacs-server host 198.51.100.249
snmp-server community robotron-ro RO
snmp-server location {{ device.site }}
snmp-server enable traps bgp
snmp-server enable traps link-status
clock timezone UTC 0
!
class-map match-any control-plane-traffic
 match dscp cs6
policy-map control-plane-policy
 class control-plane-traffic
  police 512000
control-plane
 service-policy input control-plane-policy
!
interface lo0
{% if device.loopback_v4 %} ip addr {{ device.loopback_v4 }}
{% endif %}{% if device.loopback_v6 %} ipv6 addr {{ device.loopback_v6 }}
{% endif %} no shutdown
!
{% for agg in device.aggs %}interface {{ agg.name }}
 mtu {{ agg.mtu }}
 no switchport
 load-interval 30
{% if agg.v4_prefix %} ip addr {{ agg.v4_prefix }}
{% endif %}{% if agg.v6_prefix %} ipv6 addr {{ agg.v6_prefix }}
{% endif %} no shutdown
!
{% for pif in agg.pifs %}interface {{ pif.name }}
 mtu {{ agg.mtu }}
 load-interval 30
 channel-group {{ agg.name }}
 lacp rate fast
 no shutdown
!
{% endfor %}{% endfor %}{% if device.mpls_tunnels %}mpls traffic-eng tunnels
{% for t in device.mpls_tunnels %}interface tunnel-te{{ forloop.counter }}
 description {{ t.name }}
 tunnel destination {{ t.tail_loopback }}
 tunnel mpls traffic-eng bandwidth {{ t.bandwidth_mbps }}
 no shutdown
!
{% endfor %}{% endif %}{% for fw in device.firewalls %}ipv6 access-list {{ fw.name }}
{% for rl in fw.rules %} {{ rl.seq }} {{ rl.action }} {{ rl.protocol|replace:'any,ipv6' }} {{ rl.src_prefix|default:'any' }} any{% if rl.dst_port %} eq {{ rl.dst_port }}{% endif %}
{% endfor %}!
{% endfor %}{% for p in device.policies %}{% for t in p.terms %}ipv6 prefix-list {{ p.name }} seq {{ t.seq }} {{ t.action|replace:'accept,permit'|replace:'reject,deny' }} {{ t.match_prefix|default:'::/0 le 128' }}
{% endfor %}!
{% endfor %}{% if device.bgp_neighbors %}router bgp {{ device.local_as }}
 bgp log-neighbor-changes
 bgp graceful-restart
{% for n in device.bgp_neighbors %} neighbor {{ n.addr }} remote-as {{ n.remote_as }}
 neighbor {{ n.addr }} description {{ n.description }}
{% if n.import_policy %} neighbor {{ n.addr }} prefix-list {{ n.import_policy }} in
{% endif %}{% if n.export_policy %} neighbor {{ n.addr }} prefix-list {{ n.export_policy }} out
{% endif %}{% if n.session_type == 'ibgp' %} neighbor {{ n.addr }} update-source lo0
{% endif %}{% endfor %}!
{% endif %}line vty 0 4
 transport input ssh
{% for fw in device.firewalls %} ipv6 access-class {{ fw.name }} {{ fw.direction }}
{% endfor %}!
end
`

// Vendor2FullTemplate renders a complete vendor2 device config.
const Vendor2FullTemplate = `/* Robotron-generated configuration */
/* device: {{ device.name }} role: {{ device.role }} site: {{ device.site }} */
system {
 host-name {{ device.name }};
 time-zone UTC;
 name-server {
  198.51.100.53;
 }
 ntp {
  server 198.51.100.123;
  server 198.51.100.124;
 }
 authentication-order [ tacplus password ];
 tacplus-server {
  198.51.100.249;
 }
 services {
  ssh {
   root-login deny;
  }
 }
 syslog {
  host {{ device.syslog_target|default:'192.0.2.1' }} any notice;
  file messages {
   any warning;
  }
 }
}
snmp {
 community robotron-ro {
  authorization read-only;
 }
 location "{{ device.site }}";
 trap-group robotron {
  categories link startup;
 }
}
class-of-service {
 forwarding-classes {
  class network-control queue-num 3;
 }
}
{% if device.firewalls %}firewall {
{% for fw in device.firewalls %} filter {{ fw.name }} {
{% for rl in fw.rules %}  term t{{ rl.seq }} {
{% if rl.src_prefix or rl.dst_port or rl.protocol != 'any' %}   from {
{% if rl.src_prefix %}    source-address {{ rl.src_prefix }};
{% endif %}{% if rl.protocol != 'any' %}    protocol {{ rl.protocol }};
{% endif %}{% if rl.dst_port %}    destination-port {{ rl.dst_port }};
{% endif %}   }
{% endif %}   then {{ rl.action|replace:'permit,accept' }};
  }
{% endfor %} }
{% endfor %}}
{% endif %}lo0 {
 unit 0 {
{% if device.firewalls %}  filter {
{% for fw in device.firewalls %}   {{ fw.direction|replace:'in,input'|replace:'out,output' }} {{ fw.name }};
{% endfor %}  }
{% endif %}{% if device.loopback_v4 %}  family inet {
   addr {{ device.loopback_v4 }}
  }
{% endif %}{% if device.loopback_v6 %}  family inet6 {
   addr {{ device.loopback_v6 }}
  }
{% endif %} }
}
{% for agg in device.aggs %}{{ agg.name }} {
 mtu {{ agg.mtu }};
 unit 0 {
{% if agg.v4_prefix %}  family inet {
   addr {{ agg.v4_prefix }}
  }
{% endif %}{% if agg.v6_prefix %}  family inet6 {
   addr {{ agg.v6_prefix }}
  }
{% endif %} }
}
{% for pif in agg.pifs %}replace: {{ pif.name }} {
 mtu {{ agg.mtu }};
 gigether-options {
  802.3ad {{ agg.name }};
 }
}
{% endfor %}{% endfor %}{% if device.mpls_tunnels %}protocols {
 mpls {
{% for t in device.mpls_tunnels %}  label-switched-path {{ t.name }} {
   to {{ t.tail_loopback }};
   bandwidth {{ t.bandwidth_mbps }}m;
  }
{% endfor %} }
}
{% endif %}{% if device.policies %}policy-options {
{% for p in device.policies %} policy-statement {{ p.name }} {
{% for t in p.terms %}  term t{{ t.seq }} {
{% if t.match_prefix %}   from {
    route-filter {{ t.match_prefix }} orlonger;
   }
{% endif %}   then {{ t.action }};
  }
{% endfor %} }
{% endfor %}}
{% endif %}{% if device.bgp_neighbors %}protocols {
 bgp {
  local-as {{ device.local_as }};
  log-updown;
  graceful-restart {
  }
{% for n in device.bgp_neighbors %}  neighbor {{ n.addr }} {
   peer-as {{ n.remote_as }};
   description "{{ n.description }}";
{% if n.import_policy %}   import {{ n.import_policy }};
{% endif %}{% if n.export_policy %}   export {{ n.export_policy }};
{% endif %}{% if n.session_type == 'ibgp' %}   local-address lo0;
{% endif %}  }
{% endfor %} }
}
{% endif %}`

// TemplatePath returns the config-repository path of a vendor's full
// device template.
func TemplatePath(vendorSyntax string) string {
	return "templates/" + vendorSyntax + "/device.tmpl"
}
