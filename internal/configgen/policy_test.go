package configgen

import (
	"strings"
	"testing"

	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
)

// addPeering turns up a peering with an optional import policy on the
// POP's first PR (vendor1) and returns the PR name.
func addPeering(t *testing.T, d *design.Designer, policy *design.PolicySpec) string {
	t.Helper()
	pr := "pr1.pop1-c1"
	_, _, err := d.AddPeering(testCtx("pop"), design.PeeringSpec{
		Device: pr, Partner: "ISP-One", ASN: 3356, Kind: "peering", LocalAS: 32934,
		ImportPolicy: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestPeeringPolicyRendersVendor1(t *testing.T) {
	d, g := newPOP(t)
	pr := addPeering(t, d, &design.PolicySpec{
		Name: "isp-one-in",
		Terms: []design.PolicyTermSpec{
			{MatchPrefix: "2001:db8:1::/48", Action: "accept"},
			{Action: "reject"},
		},
	})
	cfg, err := g.GenerateDevice(pr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ipv6 prefix-list isp-one-in seq 10 permit 2001:db8:1::/48",
		"ipv6 prefix-list isp-one-in seq 20 deny ::/0 le 128",
		"prefix-list isp-one-in in",
	} {
		if !strings.Contains(cfg, want) {
			t.Errorf("vendor1 config missing %q", want)
		}
	}
}

func TestPeeringPolicyRendersVendor2(t *testing.T) {
	d, g := newPOP(t)
	// Put the peering on a vendor2 PR: build a second cluster whose PRs
	// use vendor2 hardware... simpler: attach an import policy to one of
	// the fabric sessions of a vendor2 PSW.
	store := d.Store()
	_, err := store.Mutate(func(m *fbnet.Mutation) error {
		pol, err := m.Create("RoutingPolicy", map[string]any{"name": "fabric-in"})
		if err != nil {
			return err
		}
		if _, err := m.Create("PolicyTerm", map[string]any{
			"policy": pol, "seq": 10, "match_prefix": "2401:db00::/32", "action": "accept",
		}); err != nil {
			return err
		}
		psw, err := m.FindOne("Device", fbnet.Eq("name", "psw1.pop1-c1"))
		if err != nil {
			return err
		}
		sessions, err := m.Referencing("BgpV6Session", "remote_device", psw.ID)
		if err != nil || len(sessions) == 0 {
			return err
		}
		// The PSW is the remote side of the session object; move it to be
		// the local side of a dedicated session so the policy renders on
		// the PSW (policies attach to the local side).
		return m.Update("BgpV6Session", sessions[0].ID, map[string]any{"import_policy": pol})
	})
	if err != nil {
		t.Fatal(err)
	}
	// The policy attaches to the PR side (local side of the session).
	cfg, err := g.GenerateDevice("pr1.pop1-c1")
	if err != nil {
		t.Fatal(err)
	}
	_ = cfg
	// Render a vendor2 device owning a policy: create a session with the
	// PSW as the local device.
	_, err = store.Mutate(func(m *fbnet.Mutation) error {
		pol, err := m.FindOne("RoutingPolicy", fbnet.Eq("name", "fabric-in"))
		if err != nil {
			return err
		}
		psw, err := m.FindOne("Device", fbnet.Eq("name", "psw1.pop1-c1"))
		if err != nil {
			return err
		}
		_, err = m.Create("BgpV6Session", map[string]any{
			"local_device": psw.ID, "remote_addr": "2001:db8::1",
			"local_as": 65101, "remote_as": 65999, "session_type": "ebgp",
			"import_policy": pol.ID,
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = g.GenerateDevice("psw1.pop1-c1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"policy-statement fabric-in {",
		"route-filter 2401:db00::/32 orlonger;",
		"then accept;",
		"import fabric-in;",
	} {
		if !strings.Contains(cfg, want) {
			t.Errorf("vendor2 config missing %q", want)
		}
	}
	if strings.Count(cfg, "{") != strings.Count(cfg, "}") {
		t.Error("unbalanced braces with policy-options block")
	}
}

// TestEmptyPolicyRefusedToGenerate codifies the §8 "Complexity of
// Modeling" lesson: a session whose import policy exists in name only
// (feature "still under development") must not generate — turning it up
// anyway is what saturated the egress link in the paper's incident.
func TestEmptyPolicyRefusedToGenerate(t *testing.T) {
	d, g := newPOP(t)
	store := d.Store()
	pr := "pr1.pop1-c1"
	_, err := store.Mutate(func(m *fbnet.Mutation) error {
		pol, err := m.Create("RoutingPolicy", map[string]any{"name": "under-development"})
		if err != nil {
			return err
		}
		dev, err := m.FindOne("Device", fbnet.Eq("name", pr))
		if err != nil {
			return err
		}
		_, err = m.Create("BgpV6Session", map[string]any{
			"local_device": dev.ID, "remote_addr": "2001:db8::9",
			"local_as": 32934, "remote_as": 3356, "session_type": "ebgp",
			"import_policy": pol,
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.GenerateDevice(pr)
	if err == nil || !strings.Contains(err.Error(), "no terms") {
		t.Errorf("want refusal for termless policy, got %v", err)
	}
	// Once the policy is implemented, generation proceeds.
	_, err = store.Mutate(func(m *fbnet.Mutation) error {
		pol, err := m.FindOne("RoutingPolicy", fbnet.Eq("name", "under-development"))
		if err != nil {
			return err
		}
		_, err = m.Create("PolicyTerm", map[string]any{
			"policy": pol.ID, "seq": 10, "action": "reject",
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.GenerateDevice(pr); err != nil {
		t.Errorf("generation should succeed once the policy has terms: %v", err)
	}
}

// TestPeeringConfigLoadsOnDevice: the full peering config (prefix lists
// included) is accepted by the device.
func TestPeeringConfigLoadsOnDevice(t *testing.T) {
	d, g := newPOP(t)
	pr := addPeering(t, d, &design.PolicySpec{
		Name:  "isp-one-in",
		Terms: []design.PolicyTermSpec{{MatchPrefix: "2001:db8::/32", Action: "accept"}},
	})
	cfg, err := g.GenerateDevice(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cfg, "remote-as 3356") {
		t.Error("peering neighbor missing")
	}
}
