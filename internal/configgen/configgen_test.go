package configgen

import (
	"strings"
	"testing"

	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/netsim"
	"github.com/robotron-net/robotron/internal/relstore"
	"github.com/robotron-net/robotron/internal/revctl"
)

func testCtx(domain string) design.ChangeContext {
	return design.ChangeContext{
		EmployeeID: "e1", TicketID: "T-1", Description: "test",
		Domain: domain, NowUnix: 1_700_000_000,
	}
}

// newPOP builds a 4-post POP in FBNet and returns a generator over it.
func newPOP(t testing.TB) (*design.Designer, *Generator) {
	t.Helper()
	db := relstore.NewDB("master")
	store, err := fbnet.Open(db, fbnet.NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.NewDesigner(store, design.DefaultPools())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EnsureStandardHardware(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.EnsureSite("pop1", "pop", "apac"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.BuildCluster(testCtx("pop"), "pop1", "pop1-c1", design.POPGen1()); err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(store, revctl.NewRepo())
	if err != nil {
		t.Fatal(err)
	}
	return d, g
}

func TestDeriveDeviceData(t *testing.T) {
	_, g := newPOP(t)
	data, err := g.DeriveDeviceData("pr1.pop1-c1")
	if err != nil {
		t.Fatal(err)
	}
	if data.Role != "pr" || data.Vendor != "vendor1" || data.Site != "pop1" {
		t.Errorf("identity = %+v", data)
	}
	// A PR connects to 4 PSWs: 4 aggregates, each with 2 member ports and
	// a /127 v6 prefix (POPGen1 is v6-only).
	if len(data.Aggs) != 4 {
		t.Fatalf("aggs = %d, want 4", len(data.Aggs))
	}
	for _, agg := range data.Aggs {
		if len(agg.Pifs) != 2 {
			t.Errorf("agg %s has %d pifs, want 2", agg.Name, len(agg.Pifs))
		}
		if agg.V6Prefix == "" || !strings.HasSuffix(agg.V6Prefix, "/127") {
			t.Errorf("agg %s v6 prefix = %q", agg.Name, agg.V6Prefix)
		}
		if agg.V4Prefix != "" {
			t.Errorf("v6-only cluster has v4 prefix %q", agg.V4Prefix)
		}
		if agg.MTU != 9192 {
			t.Errorf("agg mtu = %d", agg.MTU)
		}
	}
	// 4 eBGP neighbors (one per PSW), with remote AS in the PSW range.
	if len(data.BGPNeighbors) != 4 {
		t.Fatalf("bgp neighbors = %d, want 4", len(data.BGPNeighbors))
	}
	for _, n := range data.BGPNeighbors {
		if n.SessionType != "ebgp" || n.Family != "v6" {
			t.Errorf("neighbor = %+v", n)
		}
		if n.RemoteAS < 65101 || n.RemoteAS > 65104 {
			t.Errorf("neighbor AS = %d, want PSW range", n.RemoteAS)
		}
	}
	if data.LocalAS < 65001 || data.LocalAS > 65002 {
		t.Errorf("local AS = %d", data.LocalAS)
	}
	if data.LoopbackV6 == "" {
		t.Error("missing v6 loopback")
	}
}

func TestBothSessionSidesRender(t *testing.T) {
	_, g := newPOP(t)
	// The PSW side of each session (remote side of the object) must also
	// derive a neighbor — toward the PR's prefix address.
	data, err := g.DeriveDeviceData("psw1.pop1-c1")
	if err != nil {
		t.Fatal(err)
	}
	if len(data.BGPNeighbors) != 2 { // one per PR
		t.Fatalf("psw bgp neighbors = %d, want 2", len(data.BGPNeighbors))
	}
	for _, n := range data.BGPNeighbors {
		if n.RemoteAS != 65001 && n.RemoteAS != 65002 {
			t.Errorf("psw neighbor AS = %d, want PR AS", n.RemoteAS)
		}
	}
	// The pair of configs must reference each other's addresses: take the
	// PR's first agg prefix and check some PSW neighbor matches it.
	prData, _ := g.DeriveDeviceData("pr1.pop1-c1")
	prAddrs := map[string]bool{}
	for _, agg := range prData.Aggs {
		prAddrs[addrOfPrefix(agg.V6Prefix)] = true
	}
	var matched bool
	for _, n := range data.BGPNeighbors {
		if prAddrs[n.Addr] {
			matched = true
		}
	}
	if !matched {
		t.Errorf("no PSW neighbor address matches a PR interface address:\npsw: %+v\npr aggs: %v",
			data.BGPNeighbors, prAddrs)
	}
}

func TestGenerateVendor1Config(t *testing.T) {
	_, g := newPOP(t)
	cfg, err := g.GenerateDevice("pr1.pop1-c1") // Router_Vendor1
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"hostname pr1.pop1-c1",
		"interface ae0",
		"channel-group ae0",
		"lacp rate fast",
		"ipv6 addr ",
		"router bgp 6500",
		"remote-as 6510",
		"interface lo0",
	} {
		if !strings.Contains(cfg, want) {
			t.Errorf("vendor1 config missing %q:\n%s", want, cfg[:min(len(cfg), 800)])
		}
	}
	if strings.Contains(cfg, "{") {
		t.Error("vendor1 config contains braces")
	}
	if strings.Contains(cfg, "{{") || strings.Contains(cfg, "{%") {
		t.Error("unrendered template markers in config")
	}
}

func TestGenerateVendor2Config(t *testing.T) {
	_, g := newPOP(t)
	cfg, err := g.GenerateDevice("psw1.pop1-c1") // Switch_Vendor2
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"host-name psw1.pop1-c1;",
		"ae0 {",
		"family inet6 {",
		"802.3ad ae0;",
		"replace: et-1/0/",
		"peer-as 6500",
		"local-as 6510",
	} {
		if !strings.Contains(cfg, want) {
			t.Errorf("vendor2 config missing %q:\n%s", want, cfg[:min(len(cfg), 800)])
		}
	}
	// Brace balance (the device's own syntax check enforces this too).
	if strings.Count(cfg, "{") != strings.Count(cfg, "}") {
		t.Errorf("unbalanced braces: %d vs %d", strings.Count(cfg, "{"), strings.Count(cfg, "}"))
	}
}

// TestGeneratedConfigsLoadOnDevices drives the full path: FBNet -> config
// -> netsim device commit, for both vendors.
func TestGeneratedConfigsLoadOnDevices(t *testing.T) {
	_, g := newPOP(t)
	fleet := netsim.NewFleet()
	for _, tc := range []struct {
		name   string
		vendor netsim.Vendor
	}{
		{"pr1.pop1-c1", netsim.Vendor1},
		{"psw1.pop1-c1", netsim.Vendor2},
	} {
		cfg, err := g.GenerateDevice(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		dev, err := fleet.AddDevice(tc.name, tc.vendor, "x", "pop1")
		if err != nil {
			t.Fatal(err)
		}
		if err := dev.LoadConfig(cfg); err != nil {
			t.Fatalf("%s rejected generated config: %v", tc.name, err)
		}
		if err := dev.Commit(); err != nil {
			t.Fatal(err)
		}
		// The device parses the interfaces out of the generated config.
		ifaces, _ := dev.ShowInterfaces()
		var aggs, pifs int
		for _, st := range ifaces {
			if strings.HasPrefix(st.Name, "ae") {
				aggs++
			}
			if strings.HasPrefix(st.Name, "et") {
				pifs++
			}
		}
		if aggs == 0 || pifs == 0 {
			t.Errorf("%s: device parsed %d aggs, %d pifs from generated config", tc.name, aggs, pifs)
		}
		peers, _ := dev.ShowBGPSummary()
		if len(peers) == 0 {
			t.Errorf("%s: no BGP peers parsed from generated config", tc.name)
		}
	}
}

func TestGenerateSite(t *testing.T) {
	_, g := newPOP(t)
	cfgs, err := g.GenerateSite("pop1")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 6 {
		t.Errorf("site configs = %d, want 6", len(cfgs))
	}
	if _, err := g.GenerateSite("missing"); err == nil {
		t.Error("unknown site should fail")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	_, g := newPOP(t)
	a, err := g.GenerateDevice("pr1.pop1-c1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.GenerateDevice("pr1.pop1-c1")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("generation is not deterministic")
	}
}

func TestGoldenLifecycle(t *testing.T) {
	_, g := newPOP(t)
	cfg, _ := g.GenerateDevice("pr1.pop1-c1")
	rev, err := g.CommitGolden("pr1.pop1-c1", cfg, "e1", "initial provision")
	if err != nil {
		t.Fatal(err)
	}
	if rev.Number != 1 {
		t.Errorf("rev = %+v", rev)
	}
	got, err := g.Golden("pr1.pop1-c1")
	if err != nil || got != cfg {
		t.Errorf("golden mismatch: %v", err)
	}
	if _, err := g.Golden("never-provisioned"); err == nil {
		t.Error("missing golden should fail")
	}
}

func TestTemplateUpdateTakesEffect(t *testing.T) {
	_, g := newPOP(t)
	before, _ := g.GenerateDevice("pr1.pop1-c1")
	if strings.Contains(before, "service unsupported-transceiver") {
		t.Fatal("marker already present")
	}
	// An engineer lands a reviewed template change in the config repo.
	body, _ := g.repo.GetHead(TemplatePath("vendor1"))
	body = strings.Replace(body, "hostname {{ device.name }}",
		"hostname {{ device.name }}\nservice unsupported-transceiver", 1)
	if _, err := g.repo.Commit(TemplatePath("vendor1"), body, "e2", "add transceiver service"); err != nil {
		t.Fatal(err)
	}
	after, _ := g.GenerateDevice("pr1.pop1-c1")
	if !strings.Contains(after, "service unsupported-transceiver") {
		t.Error("template update not picked up")
	}
}

func TestGenerateUnknownDevice(t *testing.T) {
	_, g := newPOP(t)
	if _, err := g.GenerateDevice("no-such-device"); err == nil {
		t.Error("unknown device should fail")
	}
}

func TestBackboneIBGPConfigs(t *testing.T) {
	d, g := newPOP(t)
	d.EnsureSite("bb1-site", "backbone", "nam")
	d.AddBackboneRouter(testCtx("backbone"), "bb1", "bb1-site", "Backbone_Vendor2", "bb")
	d.AddBackboneRouter(testCtx("backbone"), "bb2", "bb1-site", "Backbone_Vendor2", "bb")
	cfg1, err := g.GenerateDevice("bb1")
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := g.GenerateDevice("bb2")
	if err != nil {
		t.Fatal(err)
	}
	// Each router lists the other's loopback as an iBGP neighbor.
	d2, _ := g.DeriveDeviceData("bb2")
	if !strings.Contains(cfg1, addrOfPrefix(d2.LoopbackV6)) {
		t.Errorf("bb1 config missing bb2 loopback neighbor")
	}
	d1, _ := g.DeriveDeviceData("bb1")
	if !strings.Contains(cfg2, addrOfPrefix(d1.LoopbackV6)) {
		t.Errorf("bb2 config missing bb1 loopback neighbor")
	}
	if !strings.Contains(cfg1, "local-address lo0;") {
		t.Errorf("ibgp session not marked loopback-sourced")
	}
}

func BenchmarkGenerateDevice(b *testing.B) {
	_, g := newPOP(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.GenerateDevice("pr1.pop1-c1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateSite(b *testing.B) {
	_, g := newPOP(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.GenerateSite("pop1"); err != nil {
			b.Fatal(err)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestTemplateIncludeFromRepo: a reviewed common section lands in the
// repository and vendor templates pull it in with {% include %}.
func TestTemplateIncludeFromRepo(t *testing.T) {
	_, g := newPOP(t)
	if _, err := g.repo.Commit("templates/common/banner.tmpl",
		"banner motd ^ managed by robotron — {{ device.site }} ^\n", "e1", "shared banner"); err != nil {
		t.Fatal(err)
	}
	body, _ := g.repo.GetHead(TemplatePath("vendor1"))
	body = strings.Replace(body, "hostname {{ device.name }}\n",
		"hostname {{ device.name }}\n{% include 'templates/common/banner.tmpl' %}", 1)
	if _, err := g.repo.Commit(TemplatePath("vendor1"), body, "e1", "use shared banner"); err != nil {
		t.Fatal(err)
	}
	cfg, err := g.GenerateDevice("pr1.pop1-c1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cfg, "banner motd ^ managed by robotron — pop1 ^") {
		t.Errorf("included banner missing:\n%s", cfg[:min(len(cfg), 400)])
	}
	// Updating only the included file takes effect on the next render.
	if _, err := g.repo.Commit("templates/common/banner.tmpl",
		"banner motd ^ v2 banner ^\n", "e1", "new banner"); err != nil {
		t.Fatal(err)
	}
	// The outer template is unchanged, so the cache key matters: the
	// include is resolved at parse time, and the cache is keyed by the
	// outer body hash. Re-committing the outer template (a no-op change
	// plus whitespace) picks the new include up.
	body += "\n"
	if _, err := g.repo.Commit(TemplatePath("vendor1"), body, "e1", "bump"); err != nil {
		t.Fatal(err)
	}
	cfg, err = g.GenerateDevice("pr1.pop1-c1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cfg, "v2 banner") {
		t.Error("updated include not picked up after outer template bump")
	}
}
