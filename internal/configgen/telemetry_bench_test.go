package configgen

import (
	"testing"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/telemetry"
)

// benchMemoizedRegen runs the BenchmarkGenerateSiteMemoized harness —
// warm site, one device invalidated per iteration — against a generator
// whose metrics are bound to reg (nil = detached no-op counters).
func benchMemoizedRegen(b *testing.B, reg *telemetry.Registry) {
	g := newBenchSite(b)
	g.Instrument(reg)
	var tunnelID int64
	_, err := g.store.Mutate(func(m *fbnet.Mutation) error {
		head, err := m.FindOne("Device", fbnet.Eq("name", "pr1.bench-c1"))
		if err != nil {
			return err
		}
		tail, err := m.FindOne("Device", fbnet.Eq("name", "pr2.bench-c1"))
		if err != nil {
			return err
		}
		tunnelID, err = m.Create("MplsTunnel", map[string]any{
			"name": "bench-te", "head_device": head.ID, "tail_device": tail.ID,
			"bandwidth_mbps": 1000})
		return err
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := g.GenerateSiteParallel("bench", 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := g.store.Mutate(func(m *fbnet.Mutation) error {
			return m.Update("MplsTunnel", tunnelID, map[string]any{
				"bandwidth_mbps": int64(1000 + i%2)})
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.GenerateSiteParallel("bench", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOverhead compares memoized site regeneration with
// metrics bound to a live registry against the detached (nil) bindings;
// the instrumented run must stay within a few percent of disabled.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("instrumented", func(b *testing.B) { benchMemoizedRegen(b, telemetry.NewRegistry()) })
	b.Run("disabled", func(b *testing.B) { benchMemoizedRegen(b, nil) })
}
