package configgen

import (
	"fmt"
	"os"
	"testing"

	"github.com/robotron-net/robotron/internal/tmpl"
)

// The scale benchmarks measure the rendering hot loop — vendor template
// execution over the per-device Thrift data object — for whole fleets of
// 256-16384 devices, independent of store and memoization layers. The
// 16384 size is gated behind ROBOTRON_BENCH_LARGE=1; `make bench-scale`
// sets the variable.

func scaleFleetSizes() []int {
	sizes := []int{256, 4096}
	if os.Getenv("ROBOTRON_BENCH_LARGE") == "1" {
		sizes = append(sizes, 16384)
	}
	return sizes
}

// scaleDeviceData builds a realistic mid-size device data object: four
// LACP bundles with two member ports each, four BGP neighbors, a routing
// policy, and a firewall.
func scaleDeviceData(i int) *DeviceData {
	d := &DeviceData{
		Name:         fmt.Sprintf("dev%06d.bench", i),
		Role:         "bb",
		Vendor:       "vendor1",
		Site:         "bench",
		LoopbackV4:   fmt.Sprintf("10.255.%d.%d/32", (i>>8)&255, i&255),
		LoopbackV6:   fmt.Sprintf("2401:db00::%x/128", i+1),
		LocalAS:      65000,
		SyslogTarget: "2401:db00:face::1",
		MgmtIP:       fmt.Sprintf("172.16.%d.%d", (i>>8)&255, i&255),
	}
	for a := 0; a < 4; a++ {
		agg := AggregatedInterfaceData{
			Name:     fmt.Sprintf("ae%d", a),
			Number:   int32(a),
			MTU:      9216,
			V4Prefix: fmt.Sprintf("10.%d.%d.%d/31", a, (i>>8)&255, (i&127)*2),
			V6Prefix: fmt.Sprintf("2401:db00:%x:%x::/127", a, i),
		}
		for p := 0; p < 2; p++ {
			agg.Pifs = append(agg.Pifs, PhysicalInterfaceData{Name: fmt.Sprintf("et%d/%d", a, p+1)})
		}
		d.Aggs = append(d.Aggs, agg)
		d.BGPNeighbors = append(d.BGPNeighbors, BGPNeighborData{
			Addr:        fmt.Sprintf("2401:db00:%x:%x::1", a, i),
			RemoteAS:    int64(65100 + a),
			Family:      "v6",
			SessionType: "ebgp",
			Description: fmt.Sprintf("to peer%d", a),
		})
	}
	d.BGPNeighbors[0].ImportPolicy = "PEER-IN"
	d.Policies = append(d.Policies, PolicyData{
		Name: "PEER-IN",
		Terms: []PolicyTermData{
			{Seq: 10, MatchPrefix: "2401:db00::/32", Action: "accept"},
			{Seq: 20, Action: "reject"},
		},
	})
	d.Firewalls = append(d.Firewalls, FirewallData{
		Name: "edge-in", Direction: "in",
		Rules: []FirewallRuleData{
			{Seq: 10, Action: "permit", Protocol: "tcp", DstPort: 179},
			{Seq: 20, Action: "deny", Protocol: "any"},
		},
	})
	return d
}

// BenchmarkScaleRenderFleet renders every device of an n-device fleet
// through the vendor1 template: one op = one full-fleet render sweep.
func BenchmarkScaleRenderFleet(b *testing.B) {
	t := tmpl.MustParse("vendor1", Vendor1FullTemplate)
	for _, n := range scaleFleetSizes() {
		b.Run(fmt.Sprintf("fleet=%d", n), func(b *testing.B) {
			devs := make([]*DeviceData, n)
			for i := range devs {
				devs[i] = scaleDeviceData(i)
			}
			// Warm one render so parse-time laziness doesn't skew op 0.
			if _, err := t.Render(map[string]any{"device": devs[0]}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, d := range devs {
					if _, err := t.Render(map[string]any{"device": d}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkScaleRenderDevice renders a single device, the unit the
// allocation-regression guard pins.
func BenchmarkScaleRenderDevice(b *testing.B) {
	t := tmpl.MustParse("vendor1", Vendor1FullTemplate)
	d := scaleDeviceData(1)
	ctx := map[string]any{"device": d}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.Render(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
