// Package configgen implements Robotron's config generation stage
// (SIGCOMM '16, §5.2).
//
// A device configuration is split into two parts: dynamic, vendor-agnostic
// data (names, IP addresses, BGP neighbors) derived from FBNet objects and
// stored as a Thrift object per device according to a pre-defined schema
// (Fig. 8), and static, vendor-specific templates in the Django template
// language (Fig. 9) kept in the source-controlled config repository.
// Combining the two yields the full vendor-specific device config.
package configgen

// The per-device config data schema, the Go rendering of the paper's
// Fig. 8 Thrift structs (extended with the loopback/BGP/system attributes
// a full device config needs). Serialized with thriftlite before template
// rendering, exactly as Robotron stores "a Thrift object per device".

// PhysicalInterfaceData is one member port of an aggregated interface.
type PhysicalInterfaceData struct {
	Name string `thrift:"1"`
}

// AggregatedInterfaceData is one LACP bundle with its addressing.
type AggregatedInterfaceData struct {
	Name     string                  `thrift:"1"`
	Number   int32                   `thrift:"2"`
	V4Prefix string                  `thrift:"3"`
	V6Prefix string                  `thrift:"4"`
	Pifs     []PhysicalInterfaceData `thrift:"5"`
	MTU      int32                   `thrift:"6"`
}

// BGPNeighborData is one BGP neighbor statement.
type BGPNeighborData struct {
	Addr         string `thrift:"1"`
	RemoteAS     int64  `thrift:"2"`
	Family       string `thrift:"3"` // "v4" | "v6"
	SessionType  string `thrift:"4"` // "ebgp" | "ibgp"
	Description  string `thrift:"5"`
	ImportPolicy string `thrift:"6"` // routing policy name, "" for none
	ExportPolicy string `thrift:"7"`
}

// PolicyTermData is one term of a rendered routing policy.
type PolicyTermData struct {
	Seq         int64  `thrift:"1"`
	MatchPrefix string `thrift:"2"` // empty matches everything
	Action      string `thrift:"3"` // accept | reject | prepend
}

// PolicyData is one routing policy referenced by this device's sessions
// (§8: peering sessions may carry custom import policies of cherry-picked
// prefixes).
type PolicyData struct {
	Name  string           `thrift:"1"`
	Terms []PolicyTermData `thrift:"2"`
}

// MplsTunnelData is one MPLS-TE tunnel headed at this device (§2.3).
type MplsTunnelData struct {
	Name          string `thrift:"1"`
	TailLoopback  string `thrift:"2"`
	BandwidthMbps int64  `thrift:"3"`
}

// FirewallRuleData is one term of a rendered firewall policy.
type FirewallRuleData struct {
	Seq       int64  `thrift:"1"`
	Action    string `thrift:"2"` // permit | deny
	Protocol  string `thrift:"3"` // any | tcp | udp | icmp6
	SrcPrefix string `thrift:"4"` // empty = any
	DstPort   int64  `thrift:"5"` // 0 = any
}

// FirewallData is one packet filter attached to this device (§5.3.2's
// phased firewall rule changes).
type FirewallData struct {
	Name      string             `thrift:"1"`
	Direction string             `thrift:"2"` // in | out
	Rules     []FirewallRuleData `thrift:"3"`
}

// DeviceData is the complete dynamic data for one device config.
type DeviceData struct {
	Name         string                    `thrift:"1"`
	Role         string                    `thrift:"2"`
	Vendor       string                    `thrift:"3"`
	Site         string                    `thrift:"4"`
	LoopbackV4   string                    `thrift:"5"`
	LoopbackV6   string                    `thrift:"6"`
	LocalAS      int64                     `thrift:"7"`
	Aggs         []AggregatedInterfaceData `thrift:"8"`
	BGPNeighbors []BGPNeighborData         `thrift:"9"`
	SyslogTarget string                    `thrift:"10"`
	MgmtIP       string                    `thrift:"11"`
	MplsTunnels  []MplsTunnelData          `thrift:"12"`
	Policies     []PolicyData              `thrift:"13"`
	Firewalls    []FirewallData            `thrift:"14"`
}
