package configgen

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
)

// TestMemoizedSiteRegeneration: regenerating an unchanged site is answered
// entirely from the memo caches; after a one-device change only the
// affected derivations re-run.
func TestMemoizedSiteRegeneration(t *testing.T) {
	_, g := newPOP(t)
	if _, err := g.GenerateSite("pop1"); err != nil {
		t.Fatal(err)
	}
	cold := g.Stats()
	if cold.Derives != 6 || cold.DeriveHits != 0 {
		t.Fatalf("cold stats = %+v, want 6 derives, 0 hits", cold)
	}

	// Unchanged store: everything hits.
	if _, err := g.GenerateSite("pop1"); err != nil {
		t.Fatal(err)
	}
	warm := g.Stats()
	if warm.Derives != cold.Derives {
		t.Errorf("unchanged regen re-derived: %d -> %d", cold.Derives, warm.Derives)
	}
	if warm.DeriveHits != cold.DeriveHits+6 {
		t.Errorf("derive hits = %d, want %d", warm.DeriveHits, cold.DeriveHits+6)
	}
	if warm.Renders != cold.Renders || warm.RoundTrips != cold.RoundTrips {
		t.Errorf("unchanged regen re-rendered: %+v -> %+v", cold, warm)
	}
	if warm.RenderHits != cold.RenderHits+6 {
		t.Errorf("render hits = %d, want %d", warm.RenderHits, cold.RenderHits+6)
	}

	// One device changes: only derivations that read its row re-run (the
	// device itself plus the 2 PRs that render a description of it), not
	// the whole site.
	_, err := g.store.Mutate(func(m *fbnet.Mutation) error {
		dev, err := m.FindOne("Device", fbnet.Eq("name", "psw1.pop1-c1"))
		if err != nil {
			return err
		}
		return m.Update("Device", dev.ID, map[string]any{"loopback_v6": "2401:db00:ffff::99/128"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.GenerateSite("pop1"); err != nil {
		t.Fatal(err)
	}
	after := g.Stats()
	redone := after.Derives - warm.Derives
	if redone == 0 || redone >= 6 {
		t.Errorf("one-device change re-derived %d of 6", redone)
	}
	// The change must actually land in the device's config.
	cfg, err := g.GenerateDevice("psw1.pop1-c1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cfg, "2401:db00:ffff::99") {
		t.Error("updated loopback missing from regenerated config")
	}
}

// TestMemoSyslogTargetInvalidates: generator-level knobs baked into the
// derived data are part of the cache key.
func TestMemoSyslogTargetInvalidates(t *testing.T) {
	_, g := newPOP(t)
	if _, err := g.GenerateDevice("pr1.pop1-c1"); err != nil {
		t.Fatal(err)
	}
	before := g.Stats()
	g.SyslogTarget = "2401:db00::5140"
	cfg, err := g.GenerateDevice("pr1.pop1-c1")
	if err != nil {
		t.Fatal(err)
	}
	after := g.Stats()
	if after.Derives != before.Derives+1 {
		t.Errorf("syslog change did not re-derive: %+v -> %+v", before, after)
	}
	if !strings.Contains(cfg, "2401:db00::5140") {
		t.Error("new syslog target missing from config")
	}
}

// TestMemoTemplateRecommitRerendersOnly: a template change re-renders from
// the cached wire form without re-deriving.
func TestMemoTemplateRecommitRerendersOnly(t *testing.T) {
	_, g := newPOP(t)
	if _, err := g.GenerateDevice("pr1.pop1-c1"); err != nil {
		t.Fatal(err)
	}
	before := g.Stats()
	body, _ := g.repo.GetHead(TemplatePath("vendor1"))
	body = strings.Replace(body, "hostname {{ device.name }}",
		"hostname {{ device.name }}\nservice memo-marker", 1)
	if _, err := g.repo.Commit(TemplatePath("vendor1"), body, "e2", "marker"); err != nil {
		t.Fatal(err)
	}
	cfg, err := g.GenerateDevice("pr1.pop1-c1")
	if err != nil {
		t.Fatal(err)
	}
	after := g.Stats()
	if after.Derives != before.Derives {
		t.Errorf("template recommit re-derived: %+v -> %+v", before, after)
	}
	if after.DeriveHits != before.DeriveHits+1 {
		t.Errorf("derive hits = %d, want %d", after.DeriveHits, before.DeriveHits+1)
	}
	if after.Renders != before.Renders+1 {
		t.Errorf("template recommit did not re-render: %+v -> %+v", before, after)
	}
	if !strings.Contains(cfg, "service memo-marker") {
		t.Error("template change missing from config")
	}
}

// TestRoundTripRunsOnFreshRenders: the Thrift wire round-trip is skipped
// only when the rendered config itself is served from cache; every fresh
// render — whether from a fresh derivation or a cached one meeting a new
// template — still decodes the wire form.
func TestRoundTripRunsOnFreshRenders(t *testing.T) {
	_, g := newPOP(t)
	if _, err := g.GenerateDevice("pr1.pop1-c1"); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.RoundTrips != 1 || s.Renders != 1 {
		t.Fatalf("fresh generate: %+v, want 1 round-trip and 1 render", s)
	}
	// Cache hit: no additional round-trip.
	if _, err := g.GenerateDevice("pr1.pop1-c1"); err != nil {
		t.Fatal(err)
	}
	if s2 := g.Stats(); s2.RoundTrips != 1 {
		t.Errorf("memoized hit round-tripped: %+v", s2)
	}
	// Template change: derive is cached, render is fresh — the round-trip
	// must run again (generation still consumes the wire form).
	body, _ := g.repo.GetHead(TemplatePath("vendor1"))
	if _, err := g.repo.Commit(TemplatePath("vendor1"), body+"\n", "e2", "bump"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.GenerateDevice("pr1.pop1-c1"); err != nil {
		t.Fatal(err)
	}
	if s3 := g.Stats(); s3.RoundTrips != 2 || s3.Renders != 2 {
		t.Errorf("fresh render skipped the round-trip: %+v", s3)
	}
}

// TestGenerateSitePartialErrors: one broken device yields its own error
// entry and does not block the rest of the site.
func TestGenerateSitePartialErrors(t *testing.T) {
	_, g := newPOP(t)
	// Attach a policy with no terms (the §8 "still under development"
	// hazard) to a session whose local side is pr1.
	var victim string
	_, err := g.store.Mutate(func(m *fbnet.Mutation) error {
		pid, err := m.Create("RoutingPolicy", map[string]any{"name": "wip-policy"})
		if err != nil {
			return err
		}
		pr1, err := m.FindOne("Device", fbnet.Eq("name", "pr1.pop1-c1"))
		if err != nil {
			return err
		}
		sessions, err := m.Find("BgpV6Session", fbnet.Eq("local_device", pr1.ID))
		if err != nil {
			return err
		}
		if len(sessions) == 0 {
			return fmt.Errorf("pr1 has no local sessions")
		}
		victim = "pr1.pop1-c1"
		return m.Update("BgpV6Session", sessions[0].ID, map[string]any{"import_policy": pid})
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgs, err := g.GenerateSite("pop1")
	if err == nil {
		t.Fatal("broken device did not surface an error")
	}
	var devErrs DeviceErrors
	if !errors.As(err, &devErrs) {
		t.Fatalf("error is %T, want DeviceErrors", err)
	}
	if len(devErrs) != 1 || devErrs[victim] == nil {
		t.Fatalf("device errors = %v, want only %s", devErrs, victim)
	}
	if !strings.Contains(err.Error(), "no terms") || !strings.Contains(err.Error(), victim) {
		t.Errorf("error message lacks detail: %v", err)
	}
	if len(cfgs) != 5 {
		t.Errorf("partial result = %d configs, want 5", len(cfgs))
	}
	if _, ok := cfgs[victim]; ok {
		t.Error("failed device present in the partial result")
	}
}

// TestGeneratorConcurrentUse hammers one Generator from many goroutines
// while templates are recommitted and the store mutates underneath — the
// memo layer must stay consistent (run under -race by make tier1).
func TestGeneratorConcurrentUse(t *testing.T) {
	_, g := newPOP(t)
	devices := []string{
		"pr1.pop1-c1", "pr2.pop1-c1",
		"psw1.pop1-c1", "psw2.pop1-c1", "psw3.pop1-c1", "psw4.pop1-c1",
	}
	const workers = 8
	const iters = 40
	var wg sync.WaitGroup
	errCh := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := devices[(w+i)%len(devices)]
				cfg, err := g.GenerateDevice(name)
				if err != nil {
					errCh <- fmt.Errorf("worker %d: %s: %w", w, name, err)
					return
				}
				if !strings.Contains(cfg, name) {
					errCh <- fmt.Errorf("worker %d: config for %s lacks its hostname", w, name)
					return
				}
				if i%10 == 0 {
					if _, err := g.GenerateSiteParallel("pop1", 4); err != nil {
						errCh <- fmt.Errorf("worker %d: site: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	// Concurrent template churn and store churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		base, _ := g.repo.GetHead(TemplatePath("vendor1"))
		for i := 0; i < 20; i++ {
			body := base + strings.Repeat("\n", i%3)
			if _, err := g.repo.Commit(TemplatePath("vendor1"), body, "e2", "churn"); err != nil {
				errCh <- err
				return
			}
			_, err := g.store.Mutate(func(m *fbnet.Mutation) error {
				dev, err := m.FindOne("Device", fbnet.Eq("name", devices[i%len(devices)]))
				if err != nil {
					return err
				}
				return m.Update("Device", dev.ID, map[string]any{
					"mgmt_ip": fmt.Sprintf("10.42.0.%d", i+1)})
			})
			if err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// The dust settles: a final full regeneration is coherent.
	g.ResetMemo()
	if _, err := g.GenerateSite("pop1"); err != nil {
		t.Fatal(err)
	}
}

// benchTopology is a 16-device single-site cluster (4 PRs x 12 PSWs) used
// by the generation benchmarks.
func benchTopology() design.TopologyTemplate {
	return design.TopologyTemplate{
		Name:       "bench-16dev",
		Generation: "bench-gen1",
		Devices: []design.DeviceSpec{
			{Role: "pr", Count: 4, HwProfile: "Router_Vendor1", NamePrefix: "pr"},
			{Role: "psw", Count: 12, HwProfile: "Switch_Vendor2", NamePrefix: "psw"},
		},
		Links: []design.LinkSpec{
			{ARole: "pr", ZRole: "psw", CircuitsPerLink: 2, EBGP: true},
		},
		Addressing: design.AddressingSpec{
			V6:          true,
			LocalASBase: map[string]int64{"pr": 65000, "psw": 65100},
		},
	}
}

// newBenchSite builds the 16-device benchmark site.
func newBenchSite(tb testing.TB) *Generator {
	tb.Helper()
	d, g := newPOP(tb)
	if _, err := d.EnsureSite("bench", "pop", "apac"); err != nil {
		tb.Fatal(err)
	}
	if _, err := d.BuildCluster(testCtx("pop"), "bench", "bench-c1", benchTopology()); err != nil {
		tb.Fatal(err)
	}
	return g
}

// BenchmarkGenerateSiteSerial is the cold, single-worker baseline.
func BenchmarkGenerateSiteSerial(b *testing.B) {
	g := newBenchSite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ResetMemo()
		if _, err := g.GenerateSiteParallel("bench", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateSiteParallel is the cold 8-worker pool. The speedup
// over Serial tracks available cores (GOMAXPROCS).
func BenchmarkGenerateSiteParallel(b *testing.B) {
	g := newBenchSite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ResetMemo()
		if _, err := g.GenerateSiteParallel("bench", 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateSiteMemoized regenerates the warm site after a change
// that invalidates exactly one device's derivation per iteration.
func BenchmarkGenerateSiteMemoized(b *testing.B) {
	g := newBenchSite(b)
	// A TE tunnel headed at pr1: updating its bandwidth touches a row only
	// pr1's derivation read.
	var tunnelID int64
	_, err := g.store.Mutate(func(m *fbnet.Mutation) error {
		head, err := m.FindOne("Device", fbnet.Eq("name", "pr1.bench-c1"))
		if err != nil {
			return err
		}
		tail, err := m.FindOne("Device", fbnet.Eq("name", "pr2.bench-c1"))
		if err != nil {
			return err
		}
		tunnelID, err = m.Create("MplsTunnel", map[string]any{
			"name": "bench-te", "head_device": head.ID, "tail_device": tail.ID,
			"bandwidth_mbps": 1000})
		return err
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := g.GenerateSiteParallel("bench", 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := g.store.Mutate(func(m *fbnet.Mutation) error {
			return m.Update("MplsTunnel", tunnelID, map[string]any{
				"bandwidth_mbps": int64(1000 + i%2)})
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.GenerateSiteParallel("bench", 1); err != nil {
			b.Fatal(err)
		}
	}
}
