package ipam

import (
	"math/rand"
	"net/netip"
	"testing"
)

// TestReallocateAfterFreeAtSpaceEnd pins the cursor-poisoning bug: when the
// last subnet before the end of the address space is allocated, nextSubnet
// wraps and the cursor used to be stored as the zero Prefix. The zero
// cursor made Allocate report exhaustion instantly AND defeated Free's
// rewind (an invalid Addr never compares greater), so a release-then-
// reallocate cycle permanently lost the freed space.
func TestReallocateAfterFreeAtSpaceEnd(t *testing.T) {
	cases := []struct {
		root string
		bits int
	}{
		{"255.255.255.252/30", 31},
		{"ffff:ffff:ffff:ffff:ffff:ffff:ffff:fffc/126", 127},
	}
	for _, tc := range cases {
		p := MustPool(tc.root)
		first, err := p.Allocate(tc.bits, "a")
		if err != nil {
			t.Fatalf("%s: first Allocate: %v", tc.root, err)
		}
		if _, err := p.Allocate(tc.bits, "b"); err != nil {
			t.Fatalf("%s: second Allocate: %v", tc.root, err)
		}
		if _, err := p.Allocate(tc.bits, "c"); err == nil {
			t.Fatalf("%s: third Allocate succeeded on a full pool", tc.root)
		}
		if err := p.Free(first); err != nil {
			t.Fatalf("%s: Free: %v", tc.root, err)
		}
		again, err := p.Allocate(tc.bits, "d")
		if err != nil {
			t.Fatalf("%s: reallocate after free failed: %v", tc.root, err)
		}
		if again != first {
			t.Errorf("%s: reallocated %s, want the freed %s", tc.root, again, first)
		}
	}
}

// TestAllocateP2PBoundaries checks the /31 (and /127) edges: a root that is
// exactly one p2p subnet yields it once with both usable addresses, and the
// subnet count of a small root is exact (no off-by-one at either end).
func TestAllocateP2PBoundaries(t *testing.T) {
	p := MustPool("10.0.0.0/31")
	pp, err := p.AllocateP2P("c1")
	if err != nil {
		t.Fatal(err)
	}
	if pp.A.String() != "10.0.0.0" || pp.Z.String() != "10.0.0.1" {
		t.Errorf("p2p = %s/%s, want 10.0.0.0/10.0.0.1", pp.A, pp.Z)
	}
	if !SameSubnet(pp.A, pp.Z, 31) {
		t.Error("endpoints not in one /31")
	}
	if _, err := p.AllocateP2P("c2"); err == nil {
		t.Error("second /31 from a /31 root should fail")
	}

	// A /29 holds exactly four /31s — not three, not five.
	p = MustPool("192.0.2.8/29")
	var got []netip.Prefix
	for {
		sub, err := p.Allocate(31, "x")
		if err != nil {
			break
		}
		got = append(got, sub)
	}
	if len(got) != 4 {
		t.Fatalf("allocated %d /31s from a /29, want 4: %v", len(got), got)
	}
	if got[0].Addr().String() != "192.0.2.8" || got[3].Addr().String() != "192.0.2.14" {
		t.Errorf("boundary subnets = %s .. %s, want 192.0.2.8/31 .. 192.0.2.14/31", got[0], got[3])
	}
}

func TestSameSubnetInvalidBits(t *testing.T) {
	a := netip.MustParseAddr("10.0.0.0")
	z := netip.MustParseAddr("10.99.0.0")
	if SameSubnet(a, z, 33) {
		t.Error("v4 bits=33 reported same-subnet for unrelated addresses")
	}
	if SameSubnet(a, z, -1) {
		t.Error("bits=-1 reported same-subnet")
	}
	v6a := netip.MustParseAddr("2401:db00::")
	v6z := netip.MustParseAddr("2607:f8b0::")
	if SameSubnet(v6a, v6z, 129) {
		t.Error("v6 bits=129 reported same-subnet for unrelated addresses")
	}
	if !SameSubnet(a, netip.MustParseAddr("10.0.0.1"), 31) {
		t.Error("valid /31 pair reported different subnets")
	}
}

// TestAllocateFreeRoundtripProperty drives random allocate/free sequences
// against a model free-set and checks the pool agrees with the model at
// every step: allocations are unique, inside the root, properly masked,
// Allocate fails exactly when the model is full, Free fails exactly on
// prefixes the model does not hold, and everything freed is reallocatable.
func TestAllocateFreeRoundtripProperty(t *testing.T) {
	roots := []struct {
		root string
		bits int
		cap  int
	}{
		{"10.1.0.0/28", 31, 8},
		{"2401:db00::/124", 127, 8},
		// Pools butting against the end of the address space, where the
		// cursor wrap path is exercised constantly.
		{"255.255.255.240/28", 31, 8},
		{"ffff:ffff:ffff:ffff:ffff:ffff:ffff:fff0/124", 127, 8},
	}
	for _, tc := range roots {
		rng := rand.New(rand.NewSource(7))
		p := MustPool(tc.root)
		model := map[netip.Prefix]bool{}
		var held []netip.Prefix
		for step := 0; step < 2000; step++ {
			if rng.Intn(2) == 0 {
				sub, err := p.Allocate(tc.bits, "owner")
				if len(model) == tc.cap {
					if err == nil {
						t.Fatalf("%s step %d: Allocate succeeded on a full pool (%s)", tc.root, step, sub)
					}
					continue
				}
				if err != nil {
					t.Fatalf("%s step %d: Allocate failed with %d/%d held: %v", tc.root, step, len(model), tc.cap, err)
				}
				if model[sub] {
					t.Fatalf("%s step %d: double allocation of %s", tc.root, step, sub)
				}
				if !p.Root().Overlaps(sub) || sub.Bits() != tc.bits || sub != sub.Masked() {
					t.Fatalf("%s step %d: bad allocation %s", tc.root, step, sub)
				}
				model[sub] = true
				held = append(held, sub)
			} else if len(held) > 0 {
				i := rng.Intn(len(held))
				sub := held[i]
				held = append(held[:i], held[i+1:]...)
				if err := p.Free(sub); err != nil {
					t.Fatalf("%s step %d: Free(%s): %v", tc.root, step, sub, err)
				}
				delete(model, sub)
				if err := p.Free(sub); err == nil {
					t.Fatalf("%s step %d: double Free(%s) succeeded", tc.root, step, sub)
				}
			}
			if got := p.Used(); got != len(model) {
				t.Fatalf("%s step %d: Used()=%d, model=%d", tc.root, step, got, len(model))
			}
		}
		// Final cross-check: the pool's allocation list IS the model.
		allocs := p.Allocations()
		if len(allocs) != len(model) {
			t.Fatalf("%s: Allocations()=%d entries, model=%d", tc.root, len(allocs), len(model))
		}
		for _, a := range allocs {
			if !model[a] {
				t.Errorf("%s: pool holds %s, model does not", tc.root, a)
			}
		}
		// Drain and refill: every subnet must come back.
		for _, sub := range allocs {
			if err := p.Free(sub); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < tc.cap; i++ {
			if _, err := p.Allocate(tc.bits, "refill"); err != nil {
				t.Fatalf("%s: refill %d/%d failed: %v", tc.root, i+1, tc.cap, err)
			}
		}
	}
}
