// Package ipam allocates IP prefixes for network designs.
//
// Robotron's design tools allocate point-to-point addresses, loopbacks, and
// rack prefixes from pre-defined pools using design rules (SIGCOMM '16,
// §5.1, §7): every /127 (v6) or /31 (v4) point-to-point subnet is assigned
// to exactly one circuit, both endpoint addresses must come from the same
// subnet, and conflicting allocations — the paper reports circuits
// "misconfigured with conflicting IPs" before automation — must be
// impossible by construction.
package ipam

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
)

// Pool hands out non-overlapping sub-prefixes of a root prefix. It is safe
// for concurrent use.
type Pool struct {
	mu   sync.Mutex
	root netip.Prefix
	// allocated maps each handed-out prefix to an owner tag (circuit name,
	// device name, ...) for auditability.
	allocated map[netip.Prefix]string
	// cursor[bits] is the next candidate subnet of that length, advanced on
	// allocation; Free resets it so freed space is found again.
	cursor map[int]netip.Prefix
}

// NewPool creates a pool over root, e.g. "2401:db00:f000::/40" or
// "10.128.0.0/10".
func NewPool(root string) (*Pool, error) {
	p, err := netip.ParsePrefix(root)
	if err != nil {
		return nil, fmt.Errorf("ipam: bad pool root %q: %w", root, err)
	}
	p = p.Masked()
	return &Pool{
		root:      p,
		allocated: make(map[netip.Prefix]string),
		cursor:    make(map[int]netip.Prefix),
	}, nil
}

// MustPool is NewPool that panics, for statically known roots.
func MustPool(root string) *Pool {
	p, err := NewPool(root)
	if err != nil {
		panic(err)
	}
	return p
}

// Root returns the pool's root prefix.
func (p *Pool) Root() netip.Prefix { return p.root }

// Allocate reserves the first free subnet of the given prefix length and
// records owner as its holder.
func (p *Pool) Allocate(bits int, owner string) (netip.Prefix, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if bits < p.root.Bits() || bits > p.root.Addr().BitLen() {
		return netip.Prefix{}, fmt.Errorf("ipam: prefix length /%d out of range for pool %s", bits, p.root)
	}
	cand, ok := p.cursor[bits]
	if !ok {
		cand = netip.PrefixFrom(p.root.Addr(), bits)
	}
	for p.root.Overlaps(cand) {
		if !p.overlapsAllocated(cand) {
			p.allocated[cand] = owner
			if next, err := nextSubnet(cand); err == nil {
				p.cursor[bits] = next
			} else {
				// The last subnet of the address space was just handed
				// out. Storing the wrapped (zero) prefix would poison the
				// cursor: it never compares less-than in Free's rewind,
				// so freed space would be unfindable forever. Drop the
				// cursor instead; the next Allocate rescans from the root.
				delete(p.cursor, bits)
			}
			return cand, nil
		}
		var err error
		cand, err = nextSubnet(cand)
		if err != nil {
			break
		}
	}
	return netip.Prefix{}, fmt.Errorf("ipam: pool %s exhausted for /%d", p.root, bits)
}

// Reserve marks a specific prefix as allocated (e.g. when importing an
// existing design). It fails if the prefix is outside the pool or overlaps
// an existing allocation.
func (p *Pool) Reserve(prefix netip.Prefix, owner string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	prefix = prefix.Masked()
	if !p.root.Overlaps(prefix) || prefix.Bits() < p.root.Bits() {
		return fmt.Errorf("ipam: %s is outside pool %s", prefix, p.root)
	}
	if p.overlapsAllocated(prefix) {
		return fmt.Errorf("ipam: %s conflicts with an existing allocation", prefix)
	}
	p.allocated[prefix] = owner
	return nil
}

// Free releases an allocated prefix.
func (p *Pool) Free(prefix netip.Prefix) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	prefix = prefix.Masked()
	if _, ok := p.allocated[prefix]; !ok {
		return fmt.Errorf("ipam: %s was not allocated from this pool", prefix)
	}
	delete(p.allocated, prefix)
	// Rewind the cursor so the freed space is reconsidered. An invalid
	// cursor (legacy wrapped-state) rewinds too: a zero netip.Addr sorts
	// before every real address, so Less alone would never reclaim.
	if cur, ok := p.cursor[prefix.Bits()]; ok && (!cur.IsValid() || prefix.Addr().Less(cur.Addr())) {
		p.cursor[prefix.Bits()] = prefix
	}
	return nil
}

// Owner returns who holds a prefix ("" when unallocated).
func (p *Pool) Owner(prefix netip.Prefix) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocated[prefix.Masked()]
}

// Allocations returns all handed-out prefixes in address order.
func (p *Pool) Allocations() []netip.Prefix {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]netip.Prefix, 0, len(p.allocated))
	for pfx := range p.allocated {
		out = append(out, pfx)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr() != out[j].Addr() {
			return out[i].Addr().Less(out[j].Addr())
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

// Used returns the number of active allocations.
func (p *Pool) Used() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.allocated)
}

func (p *Pool) overlapsAllocated(cand netip.Prefix) bool {
	for a := range p.allocated {
		if a.Overlaps(cand) {
			return true
		}
	}
	return false
}

// nextSubnet returns the subnet immediately after p at the same length.
func nextSubnet(p netip.Prefix) (netip.Prefix, error) {
	a := p.Masked().Addr()
	bits := p.Bits()
	bytes := a.As16()
	// Add 1 at the bit position (bits-1) within the 128-bit (or mapped)
	// address space.
	bitLen := a.BitLen()
	if bitLen == 32 {
		b4 := a.As4()
		copy(bytes[12:], b4[:])
	}
	offset := bits - 1
	if bitLen == 32 {
		offset += 96
	}
	byteIdx := offset / 8
	bitIdx := uint(7 - offset%8)
	carry := byte(1 << bitIdx)
	// For v4 the carry must stop at byte 12, where the mapped address
	// begins: letting it ripple into the ::ffff: marker bytes silently
	// swallows the wrap and yields 0.0.0.0 instead of an error.
	low := 0
	if bitLen == 32 {
		low = 12
	}
	for i := byteIdx; i >= low; i-- {
		sum := uint16(bytes[i]) + uint16(carry)
		bytes[i] = byte(sum)
		if sum <= 0xff {
			carry = 0
			break
		}
		carry = 1
	}
	if carry != 0 {
		return netip.Prefix{}, fmt.Errorf("ipam: address space wrapped")
	}
	var next netip.Addr
	if bitLen == 32 {
		next = netip.AddrFrom4([4]byte(bytes[12:16]))
	} else {
		next = netip.AddrFrom16(bytes)
	}
	return netip.PrefixFrom(next, bits), nil
}

// P2P is a point-to-point subnet with its two usable addresses.
type P2P struct {
	Subnet netip.Prefix
	A, Z   netip.Addr
}

// APrefix returns the A-side address with the subnet's prefix length
// (e.g. "10.0.0.0/31"), the form stored on interface objects.
func (p P2P) APrefix() string { return netip.PrefixFrom(p.A, p.Subnet.Bits()).String() }

// ZPrefix returns the Z-side address with the subnet's prefix length.
func (p P2P) ZPrefix() string { return netip.PrefixFrom(p.Z, p.Subnet.Bits()).String() }

// AllocateP2P reserves a point-to-point subnet — /31 for IPv4 pools, /127
// for IPv6 pools per the paper's Fig. 4 — and returns both endpoint
// addresses, guaranteed to be in the same subnet.
func (p *Pool) AllocateP2P(owner string) (P2P, error) {
	bits := 127
	if p.root.Addr().Is4() {
		bits = 31
	}
	sub, err := p.Allocate(bits, owner)
	if err != nil {
		return P2P{}, err
	}
	a := sub.Addr()
	z := a.Next()
	return P2P{Subnet: sub, A: a, Z: z}, nil
}

// AllocateHost reserves a single-address prefix (/32 or /128), used for
// loopbacks.
func (p *Pool) AllocateHost(owner string) (netip.Prefix, error) {
	bits := 128
	if p.root.Addr().Is4() {
		bits = 32
	}
	return p.Allocate(bits, owner)
}

// SameSubnet reports whether two addresses fall in one subnet of the given
// prefix length. Robotron's design validation rejects circuit endpoints
// from different subnets (§1: "point-to-point IP addresses of a circuit
// are rejected if they belong to different subnets").
func SameSubnet(a, z netip.Addr, bits int) bool {
	if a.Is4() != z.Is4() {
		return false
	}
	if bits < 0 || bits > a.BitLen() {
		// An out-of-range length yields invalid (equal) masked prefixes
		// for *any* two addresses; report the pair as distinct rather
		// than vacuously same-subnet.
		return false
	}
	pa := netip.PrefixFrom(a, bits).Masked()
	pz := netip.PrefixFrom(z, bits).Masked()
	return pa == pz
}

// ParseAddrPort is a small helper: parse "addr/bits" into address and bits.
func ParsePrefixAddr(s string) (netip.Addr, int, error) {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		return netip.Addr{}, 0, fmt.Errorf("ipam: bad prefix %q: %w", s, err)
	}
	return p.Addr(), p.Bits(), nil
}
