package ipam

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestAllocateSequential(t *testing.T) {
	p := MustPool("10.128.0.0/24")
	a, err := p.Allocate(31, "c1")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "10.128.0.0/31" {
		t.Errorf("first /31 = %s", a)
	}
	b, _ := p.Allocate(31, "c2")
	if b.String() != "10.128.0.2/31" {
		t.Errorf("second /31 = %s", b)
	}
	if p.Used() != 2 {
		t.Errorf("Used = %d", p.Used())
	}
	if p.Owner(a) != "c1" || p.Owner(b) != "c2" {
		t.Errorf("owners: %q %q", p.Owner(a), p.Owner(b))
	}
}

func TestAllocateV6(t *testing.T) {
	p := MustPool("2401:db00::/64")
	a, err := p.Allocate(127, "c1")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "2401:db00::/127" {
		t.Errorf("first /127 = %s", a)
	}
	b, _ := p.Allocate(127, "c2")
	if b.String() != "2401:db00::2/127" {
		t.Errorf("second /127 = %s", b)
	}
}

func TestAllocateMixedSizes(t *testing.T) {
	p := MustPool("10.0.0.0/16")
	sub, err := p.Allocate(24, "rack1")
	if err != nil {
		t.Fatal(err)
	}
	if sub.String() != "10.0.0.0/24" {
		t.Errorf("/24 = %s", sub)
	}
	// The next /31 must skip the allocated /24.
	p2p, err := p.Allocate(31, "c1")
	if err != nil {
		t.Fatal(err)
	}
	if p2p.String() != "10.0.1.0/31" {
		t.Errorf("/31 after /24 = %s", p2p)
	}
}

func TestExhaustion(t *testing.T) {
	p := MustPool("10.0.0.0/30")
	if _, err := p.Allocate(31, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(31, "b"); err != nil {
		t.Fatal(err)
	}
	_, err := p.Allocate(31, "c")
	if err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Errorf("want exhaustion error, got %v", err)
	}
}

func TestFreeAndReuse(t *testing.T) {
	p := MustPool("10.0.0.0/29")
	a, _ := p.Allocate(31, "a")
	b, _ := p.Allocate(31, "b")
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	c, err := p.Allocate(31, "c")
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Errorf("freed space not reused: got %s, want %s", c, a)
	}
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(b); err == nil {
		t.Error("double free should fail")
	}
}

func TestReserve(t *testing.T) {
	p := MustPool("10.0.0.0/24")
	pfx := netip.MustParsePrefix("10.0.0.128/31")
	if err := p.Reserve(pfx, "legacy"); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(pfx, "dup"); err == nil {
		t.Error("duplicate reserve should fail")
	}
	if err := p.Reserve(netip.MustParsePrefix("192.168.0.0/31"), "x"); err == nil {
		t.Error("out-of-pool reserve should fail")
	}
	// Allocations skip the reserved prefix.
	for i := 0; i < 64; i++ {
		got, err := p.Allocate(31, "c")
		if err != nil {
			t.Fatal(err)
		}
		if got.Overlaps(pfx) {
			t.Fatalf("allocation %s overlaps reserved %s", got, pfx)
		}
	}
}

func TestAllocateP2PV6(t *testing.T) {
	p := MustPool("2401:db00:f000::/64")
	pp, err := p.AllocateP2P("circuit-1")
	if err != nil {
		t.Fatal(err)
	}
	if pp.Subnet.Bits() != 127 {
		t.Errorf("v6 p2p bits = %d, want 127", pp.Subnet.Bits())
	}
	if !SameSubnet(pp.A, pp.Z, 127) {
		t.Errorf("p2p endpoints in different subnets: %s %s", pp.A, pp.Z)
	}
	if pp.A == pp.Z {
		t.Error("endpoints must differ")
	}
	if got := pp.APrefix(); got != "2401:db00:f000::/127" {
		t.Errorf("APrefix = %s", got)
	}
	if got := pp.ZPrefix(); got != "2401:db00:f000::1/127" {
		t.Errorf("ZPrefix = %s", got)
	}
}

func TestAllocateP2PV4(t *testing.T) {
	p := MustPool("10.64.0.0/16")
	pp, err := p.AllocateP2P("circuit-1")
	if err != nil {
		t.Fatal(err)
	}
	if pp.Subnet.Bits() != 31 {
		t.Errorf("v4 p2p bits = %d, want 31", pp.Subnet.Bits())
	}
	if !SameSubnet(pp.A, pp.Z, 31) {
		t.Error("endpoints in different subnets")
	}
}

func TestAllocateHost(t *testing.T) {
	p6 := MustPool("2401:db00::/48")
	lo, err := p6.AllocateHost("bb1")
	if err != nil {
		t.Fatal(err)
	}
	if lo.Bits() != 128 {
		t.Errorf("v6 host bits = %d", lo.Bits())
	}
	p4 := MustPool("10.0.0.0/24")
	lo4, _ := p4.AllocateHost("bb1")
	if lo4.Bits() != 32 {
		t.Errorf("v4 host bits = %d", lo4.Bits())
	}
}

func TestSameSubnet(t *testing.T) {
	a := netip.MustParseAddr("10.0.0.0")
	z := netip.MustParseAddr("10.0.0.1")
	w := netip.MustParseAddr("10.0.0.2")
	if !SameSubnet(a, z, 31) {
		t.Error(".0 and .1 share a /31")
	}
	if SameSubnet(a, w, 31) {
		t.Error(".0 and .2 do not share a /31")
	}
	if SameSubnet(a, netip.MustParseAddr("2401:db00::1"), 31) {
		t.Error("cross-family addresses never share a subnet")
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := NewPool("not-a-prefix"); err == nil {
		t.Error("bad root should fail")
	}
	p := MustPool("10.0.0.0/24")
	if _, err := p.Allocate(16, "x"); err == nil {
		t.Error("allocation larger than pool should fail")
	}
	if _, err := p.Allocate(33, "x"); err == nil {
		t.Error("allocation longer than address should fail")
	}
	if err := p.Free(netip.MustParsePrefix("10.0.0.0/31")); err == nil {
		t.Error("freeing unallocated prefix should fail")
	}
}

func TestParsePrefixAddr(t *testing.T) {
	a, bits, err := ParsePrefixAddr("2401:db00::1/127")
	if err != nil || a.String() != "2401:db00::1" || bits != 127 {
		t.Errorf("ParsePrefixAddr = %v %d %v", a, bits, err)
	}
	if _, _, err := ParsePrefixAddr("garbage"); err == nil {
		t.Error("bad prefix should fail")
	}
}

// Property: allocations never overlap, regardless of the interleaving of
// sizes.
func TestQuickNoOverlap(t *testing.T) {
	f := func(sizes []uint8) bool {
		p := MustPool("10.0.0.0/16")
		var got []netip.Prefix
		for _, s := range sizes {
			bits := 24 + int(s)%8 // /24../31
			pfx, err := p.Allocate(bits, "t")
			if err != nil {
				continue // exhaustion is fine
			}
			got = append(got, pfx)
		}
		for i := range got {
			for j := i + 1; j < len(got); j++ {
				if got[i].Overlaps(got[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: every P2P allocation yields two distinct addresses in the same
// subnet, and subnets never collide across allocations.
func TestQuickP2PInvariants(t *testing.T) {
	p := MustPool("2401:db00::/96")
	seen := map[netip.Prefix]bool{}
	for i := 0; i < 2000; i++ {
		pp, err := p.AllocateP2P("t")
		if err != nil {
			t.Fatalf("allocation %d failed: %v", i, err)
		}
		if seen[pp.Subnet] {
			t.Fatalf("duplicate subnet %s", pp.Subnet)
		}
		seen[pp.Subnet] = true
		if !SameSubnet(pp.A, pp.Z, 127) || pp.A == pp.Z {
			t.Fatalf("bad endpoints %s %s", pp.A, pp.Z)
		}
	}
}

func BenchmarkAllocateP2P(b *testing.B) {
	p := MustPool("2401:db00::/64")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.AllocateP2P("bench"); err != nil {
			b.Fatal(err)
		}
	}
}
