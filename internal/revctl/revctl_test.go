package revctl

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCommitAndHead(t *testing.T) {
	r := NewRepo()
	rev, err := r.Commit("configs/pr1.pop1", "version 1\n", "alice", "initial")
	if err != nil {
		t.Fatal(err)
	}
	if rev.Number != 1 || rev.Author != "alice" {
		t.Errorf("rev = %+v", rev)
	}
	head, ok := r.Head("configs/pr1.pop1")
	if !ok || head.Number != 1 {
		t.Errorf("head = %+v %v", head, ok)
	}
	content, err := r.GetHead("configs/pr1.pop1")
	if err != nil || content != "version 1\n" {
		t.Errorf("GetHead = %q, %v", content, err)
	}
}

func TestIdenticalCommitIsNoop(t *testing.T) {
	r := NewRepo()
	r1, _ := r.Commit("p", "same", "a", "m1")
	r2, _ := r.Commit("p", "same", "b", "m2")
	if r2.Number != r1.Number {
		t.Errorf("identical content created revision %d", r2.Number)
	}
	hist, _ := r.History("p")
	if len(hist) != 1 {
		t.Errorf("history length = %d", len(hist))
	}
}

func TestHistoryAndGet(t *testing.T) {
	r := NewRepo()
	for i := 1; i <= 3; i++ {
		r.Commit("p", fmt.Sprintf("v%d", i), "a", fmt.Sprintf("commit %d", i))
	}
	hist, err := r.History("p")
	if err != nil || len(hist) != 3 {
		t.Fatalf("history = %v, %v", hist, err)
	}
	for i, rev := range hist {
		if rev.Number != i+1 {
			t.Errorf("rev %d number = %d", i, rev.Number)
		}
		content, err := r.Get("p", rev.Number)
		if err != nil || content != fmt.Sprintf("v%d", i+1) {
			t.Errorf("Get rev %d = %q, %v", rev.Number, content, err)
		}
	}
	if _, err := r.Get("p", 99); err == nil {
		t.Error("out-of-range revision should fail")
	}
	if _, err := r.Get("missing", 1); err == nil {
		t.Error("missing path should fail")
	}
}

func TestDiff(t *testing.T) {
	r := NewRepo()
	r.Commit("p", "a\nb\nc\n", "x", "1")
	r.Commit("p", "a\nB\nc\n", "x", "2")
	d, err := r.Diff("p", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d, "- b") || !strings.Contains(d, "+ B") {
		t.Errorf("diff = %q", d)
	}
}

func TestRollback(t *testing.T) {
	r := NewRepo()
	r.Commit("p", "good", "a", "1")
	r.Commit("p", "bad", "mallory", "2")
	rev, err := r.Rollback("p", 1, "ops")
	if err != nil {
		t.Fatal(err)
	}
	if rev.Number != 3 {
		t.Errorf("rollback revision = %d, want 3 (new head)", rev.Number)
	}
	content, _ := r.GetHead("p")
	if content != "good" {
		t.Errorf("content after rollback = %q", content)
	}
}

func TestPaths(t *testing.T) {
	r := NewRepo()
	r.Commit("b", "x", "a", "")
	r.Commit("a", "x", "a", "")
	got := r.Paths()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Paths = %v", got)
	}
}

func TestEmptyPathRejected(t *testing.T) {
	r := NewRepo()
	if _, err := r.Commit("", "x", "a", ""); err == nil {
		t.Error("empty path should fail")
	}
}

func TestConcurrentCommits(t *testing.T) {
	r := NewRepo()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("configs/dev%d", i%5)
			for j := 0; j < 10; j++ {
				if _, err := r.Commit(path, fmt.Sprintf("content %d-%d", i, j), "a", ""); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()
	if len(r.Paths()) != 5 {
		t.Errorf("paths = %v", r.Paths())
	}
}

// Property: Get(path, n) always returns exactly what was committed as the
// n-th distinct content.
func TestQuickHistoryFidelity(t *testing.T) {
	f := func(contents []string) bool {
		r := NewRepo()
		var distinct []string
		for _, c := range contents {
			rev, err := r.Commit("p", c, "a", "")
			if err != nil {
				return false
			}
			if len(distinct) == 0 || distinct[len(distinct)-1] != c {
				distinct = append(distinct, c)
			}
			if rev.Number != len(distinct) {
				return false
			}
		}
		for i, want := range distinct {
			got, err := r.Get("p", i+1)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
