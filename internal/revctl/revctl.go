// Package revctl is a content-addressed, revision-controlled text store.
//
// Robotron keeps config data schemas and templates in Configerator, a
// source-control repository where changes are peer-reviewed (SIGCOMM '16,
// §5.2), backs up running device configs "for quick restoration during
// catastrophic events", and archives every collected running config "in a
// revision control system to track the history of each device config"
// (§5.4.3). This package provides that substrate: per-path revision
// histories with author/message metadata, content hashes, diffs between
// revisions, and rollback to any prior revision.
package revctl

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"github.com/robotron-net/robotron/internal/confdiff"
)

// Revision is one committed version of a path.
type Revision struct {
	Path    string
	Number  int    // 1-based, monotonically increasing per path
	Hash    string // hex SHA-256 of the content
	Author  string
	Message string
	// Seq orders revisions across all paths (commit sequence).
	Seq uint64
}

// Repo is an in-memory revision-controlled store, safe for concurrent use.
type Repo struct {
	mu    sync.RWMutex
	files map[string]*history
	seq   uint64
}

type history struct {
	revs     []Revision
	contents []string // parallel to revs
}

// NewRepo creates an empty repository.
func NewRepo() *Repo {
	return &Repo{files: make(map[string]*history)}
}

// Hash returns the content hash used by the repository.
func Hash(content string) string {
	sum := sha256.Sum256([]byte(content))
	return hex.EncodeToString(sum[:])
}

// Commit stores a new revision of path. Committing identical content to
// the current head is a no-op returning the head revision, so periodic
// config backups don't balloon history.
func (r *Repo) Commit(path, content, author, message string) (Revision, error) {
	if path == "" {
		return Revision{}, fmt.Errorf("revctl: empty path")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.files[path]
	if !ok {
		h = &history{}
		r.files[path] = h
	}
	hash := Hash(content)
	if n := len(h.revs); n > 0 && h.revs[n-1].Hash == hash {
		return h.revs[n-1], nil
	}
	r.seq++
	rev := Revision{
		Path:    path,
		Number:  len(h.revs) + 1,
		Hash:    hash,
		Author:  author,
		Message: message,
		Seq:     r.seq,
	}
	h.revs = append(h.revs, rev)
	h.contents = append(h.contents, content)
	return rev, nil
}

// Head returns the latest revision of a path.
func (r *Repo) Head(path string) (Revision, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.files[path]
	if !ok || len(h.revs) == 0 {
		return Revision{}, false
	}
	return h.revs[len(h.revs)-1], true
}

// Get returns the content at a specific revision number.
func (r *Repo) Get(path string, number int) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.files[path]
	if !ok {
		return "", fmt.Errorf("revctl: no such path %q", path)
	}
	if number < 1 || number > len(h.revs) {
		return "", fmt.Errorf("revctl: %s has no revision %d (head is %d)", path, number, len(h.revs))
	}
	return h.contents[number-1], nil
}

// GetHead returns the latest content of a path.
func (r *Repo) GetHead(path string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.files[path]
	if !ok || len(h.revs) == 0 {
		return "", fmt.Errorf("revctl: no such path %q", path)
	}
	return h.contents[len(h.contents)-1], nil
}

// History returns all revisions of a path, oldest first.
func (r *Repo) History(path string) ([]Revision, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.files[path]
	if !ok {
		return nil, fmt.Errorf("revctl: no such path %q", path)
	}
	return append([]Revision(nil), h.revs...), nil
}

// Paths lists all stored paths in lexical order.
func (r *Repo) Paths() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.files))
	for p := range r.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Diff returns the unified diff between two revisions of a path.
func (r *Repo) Diff(path string, from, to int) (string, error) {
	a, err := r.Get(path, from)
	if err != nil {
		return "", err
	}
	b, err := r.Get(path, to)
	if err != nil {
		return "", err
	}
	return confdiff.Compute(a, b).Unified(3), nil
}

// Rollback commits the content of an old revision as a new head revision,
// the paper's "rollback to any prior device config upon disasters".
func (r *Repo) Rollback(path string, toNumber int, author string) (Revision, error) {
	content, err := r.Get(path, toNumber)
	if err != nil {
		return Revision{}, err
	}
	return r.Commit(path, content, author, fmt.Sprintf("rollback to revision %d", toNumber))
}
