package audit

import (
	"strings"
	"testing"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/relstore"
)

// seed builds a two-device design with one production circuit, plus
// matching Derived state (everything healthy).
func seed(t testing.TB) *fbnet.Store {
	t.Helper()
	db := relstore.NewDB("m")
	store, err := fbnet.Open(db, fbnet.NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	_, err = store.Mutate(func(m *fbnet.Mutation) error {
		region, _ := m.Create("Region", map[string]any{"name": "r"})
		site, _ := m.Create("Site", map[string]any{"name": "pop1", "kind": "pop", "region": region})
		v, _ := m.Create("Vendor", map[string]any{"name": "v1", "syntax": "vendor1"})
		hw, _ := m.Create("HardwareProfile", map[string]any{
			"name": "p", "vendor": v, "num_slots": 1, "ports_per_linecard": 4, "port_speed_mbps": 10000})
		mk := func(name string) (int64, int64) {
			dev, _ := m.Create("Device", map[string]any{
				"name": name, "role": "psw", "site": site, "hw_profile": hw, "drain_state": "undrained"})
			lc, _ := m.Create("Linecard", map[string]any{"slot": 1, "device": dev})
			pif, _ := m.Create("PhysicalInterface", map[string]any{
				"name": "et1/1", "speed_mbps": 10000, "linecard": lc})
			return dev, pif
		}
		devA, pifA := mk("devA")
		devB, pifB := mk("devB")
		if _, err := m.Create("Circuit", map[string]any{
			"circuit_id": "c1", "a_interface": pifA, "z_interface": pifB, "status": "production"}); err != nil {
			return err
		}
		// Desired eBGP session over explicit addresses.
		if _, err := m.Create("BgpV6Session", map[string]any{
			"local_device": devA, "remote_device": devB, "remote_addr": "2401:db00::2",
			"local_as": 65001, "remote_as": 65002, "session_type": "ebgp"}); err != nil {
			return err
		}
		// Healthy Derived state.
		for _, name := range []string{"devA", "devB"} {
			if _, err := m.Create("DerivedDevice", map[string]any{
				"name": name, "uptime_s": 1000, "last_seen_unix": 1}); err != nil {
				return err
			}
			if _, err := m.Create("DerivedInterface", map[string]any{
				"device_name": name, "name": "et1/1", "oper_status": "up",
				"speed_mbps": 10000, "last_change_unix": 1}); err != nil {
				return err
			}
		}
		if _, err := m.Create("DerivedCircuit", map[string]any{
			"a_device": "devA", "a_interface": "et1/1",
			"z_device": "devB", "z_interface": "et1/1", "source": "lldp"}); err != nil {
			return err
		}
		if _, err := m.Create("DerivedBgpSession", map[string]any{
			"device_name": "devA", "peer_addr": "2401:db00::2", "family": "v6", "state": "Established"}); err != nil {
			return err
		}
		_, err := m.Create("DerivedConfig", map[string]any{
			"device_name": "devA", "config_hash": "h", "collected_unix": 1, "conforms": true})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func mutate(t *testing.T, store *fbnet.Store, fn func(*fbnet.Mutation) error) {
	t.Helper()
	if _, err := store.Mutate(fn); err != nil {
		t.Fatal(err)
	}
}

func TestHealthyNetworkIsClean(t *testing.T) {
	store := seed(t)
	rep, err := Run(store)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("healthy network has anomalies: %v", rep.Anomalies)
	}
}

func TestDeviceSilent(t *testing.T) {
	store := seed(t)
	mutate(t, store, func(m *fbnet.Mutation) error {
		obj, _ := m.FindOne("DerivedDevice", fbnet.Eq("name", "devB"))
		return m.Delete("DerivedDevice", obj.ID)
	})
	rep, _ := Run(store)
	if rep.ByKind()[DeviceSilent] != 1 {
		t.Errorf("anomalies = %v", rep.Anomalies)
	}
	if rep.Anomalies[0].Device != "devB" {
		t.Errorf("wrong device: %v", rep.Anomalies)
	}
}

func TestCircuitMissing(t *testing.T) {
	store := seed(t)
	// Fiber cut: the LLDP-derived circuit disappears.
	mutate(t, store, func(m *fbnet.Mutation) error {
		obj, _ := m.FindOne("DerivedCircuit", nil)
		return m.Delete("DerivedCircuit", obj.ID)
	})
	rep, _ := Run(store)
	if rep.ByKind()[CircuitMissing] != 1 {
		t.Errorf("anomalies = %v", rep.Anomalies)
	}
	if !strings.Contains(rep.Anomalies[0].Detail, "c1") {
		t.Errorf("detail = %q", rep.Anomalies[0].Detail)
	}
}

func TestCircuitUnexpected(t *testing.T) {
	store := seed(t)
	// Someone cabled an undesigned link.
	mutate(t, store, func(m *fbnet.Mutation) error {
		_, err := m.Create("DerivedCircuit", map[string]any{
			"a_device": "devA", "a_interface": "et1/9",
			"z_device": "rogue", "z_interface": "et1/1", "source": "lldp"})
		return err
	})
	rep, _ := Run(store)
	if rep.ByKind()[CircuitUnexpected] != 1 {
		t.Errorf("anomalies = %v", rep.Anomalies)
	}
}

func TestCircuitOrientationIndependent(t *testing.T) {
	store := seed(t)
	// Replace the derived circuit with the reversed orientation: still
	// the same circuit, no anomaly.
	mutate(t, store, func(m *fbnet.Mutation) error {
		obj, _ := m.FindOne("DerivedCircuit", nil)
		if err := m.Delete("DerivedCircuit", obj.ID); err != nil {
			return err
		}
		_, err := m.Create("DerivedCircuit", map[string]any{
			"a_device": "devB", "a_interface": "et1/1",
			"z_device": "devA", "z_interface": "et1/1", "source": "lldp"})
		return err
	})
	rep, _ := Run(store)
	if !rep.Clean() {
		t.Errorf("reversed orientation flagged: %v", rep.Anomalies)
	}
}

func TestInterfaceDown(t *testing.T) {
	store := seed(t)
	mutate(t, store, func(m *fbnet.Mutation) error {
		obj, _ := m.FindOne("DerivedInterface", fbnet.Eq("device_name", "devA"))
		return m.Update("DerivedInterface", obj.ID, map[string]any{"oper_status": "down"})
	})
	rep, _ := Run(store)
	if rep.ByKind()[InterfaceDown] != 1 {
		t.Errorf("anomalies = %v", rep.Anomalies)
	}
}

func TestBGPDown(t *testing.T) {
	store := seed(t)
	mutate(t, store, func(m *fbnet.Mutation) error {
		obj, _ := m.FindOne("DerivedBgpSession", nil)
		return m.Update("DerivedBgpSession", obj.ID, map[string]any{"state": "Active"})
	})
	rep, _ := Run(store)
	if rep.ByKind()[BGPDown] != 1 {
		t.Errorf("anomalies = %v", rep.Anomalies)
	}
}

func TestConfigDeviates(t *testing.T) {
	store := seed(t)
	mutate(t, store, func(m *fbnet.Mutation) error {
		obj, _ := m.FindOne("DerivedConfig", nil)
		return m.Update("DerivedConfig", obj.ID, map[string]any{"conforms": false})
	})
	rep, _ := Run(store)
	if rep.ByKind()[ConfigDeviates] != 1 {
		t.Errorf("anomalies = %v", rep.Anomalies)
	}
}

func TestPlannedCircuitNotAudited(t *testing.T) {
	store := seed(t)
	// Planned (not yet production) circuits are expected to be absent.
	mutate(t, store, func(m *fbnet.Mutation) error {
		cir, _ := m.FindOne("Circuit", nil)
		if err := m.Update("Circuit", cir.ID, map[string]any{"status": "planned"}); err != nil {
			return err
		}
		// Remove the derived circuit too: no longer unexpected because no
		// anomaly should fire either way for a planned design.
		obj, _ := m.FindOne("DerivedCircuit", nil)
		return m.Delete("DerivedCircuit", obj.ID)
	})
	rep, _ := Run(store)
	if rep.ByKind()[CircuitMissing] != 0 {
		t.Errorf("planned circuit audited as missing: %v", rep.Anomalies)
	}
}

func TestUnpolledInterfaceNotFlagged(t *testing.T) {
	store := seed(t)
	// Remove the derived interface rows entirely: no poll data, no claim.
	mutate(t, store, func(m *fbnet.Mutation) error {
		objs, _ := m.Find("DerivedInterface", nil)
		for _, o := range objs {
			if err := m.Delete("DerivedInterface", o.ID); err != nil {
				return err
			}
		}
		return nil
	})
	rep, _ := Run(store)
	if rep.ByKind()[InterfaceDown] != 0 {
		t.Errorf("unpolled interfaces flagged: %v", rep.Anomalies)
	}
}

func TestReportOrderingDeterministic(t *testing.T) {
	store := seed(t)
	mutate(t, store, func(m *fbnet.Mutation) error {
		for _, name := range []string{"devA", "devB"} {
			obj, _ := m.FindOne("DerivedDevice", fbnet.Eq("name", name))
			if err := m.Delete("DerivedDevice", obj.ID); err != nil {
				return err
			}
		}
		return nil
	})
	rep1, _ := Run(store)
	rep2, _ := Run(store)
	if len(rep1.Anomalies) != 2 || len(rep2.Anomalies) != 2 {
		t.Fatalf("anomalies = %d/%d", len(rep1.Anomalies), len(rep2.Anomalies))
	}
	for i := range rep1.Anomalies {
		if rep1.Anomalies[i] != rep2.Anomalies[i] {
			t.Error("audit order is not deterministic")
		}
	}
	if rep1.Anomalies[0].Device != "devA" {
		t.Errorf("ordering = %v", rep1.Anomalies)
	}
}
