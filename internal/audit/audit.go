// Package audit detects deviations between FBNet's Desired and Derived
// model groups (SIGCOMM '16, §4.1.2): "Differences between data in both
// models could imply expected or unexpected deviation from planned network
// design due to reasons such as unapplied config changes, or unplanned
// events such as hardware failures, fiber cuts, or misconfigurations."
package audit

import (
	"fmt"
	"sort"
	"strings"

	"github.com/robotron-net/robotron/internal/fbnet"
)

// Kind classifies an anomaly.
type Kind string

const (
	// DeviceSilent: a Desired device has no Derived record (never polled
	// or unreachable).
	DeviceSilent Kind = "device-silent"
	// CircuitMissing: a Desired production circuit is not observed via
	// LLDP (fiber cut, miscable, or unapplied config).
	CircuitMissing Kind = "circuit-missing"
	// CircuitUnexpected: an observed adjacency has no Desired circuit
	// (undesigned cabling).
	CircuitUnexpected Kind = "circuit-unexpected"
	// InterfaceDown: an interface that terminates a production circuit is
	// operationally down.
	InterfaceDown Kind = "interface-down"
	// BGPDown: a designed BGP session is not Established.
	BGPDown Kind = "bgp-down"
	// ConfigDeviates: a device's running config does not match golden.
	ConfigDeviates Kind = "config-deviates"
	// OSMismatch: a device runs a different OS version than its assigned
	// image (§1's OS upgrade task, pending or drifted).
	OSMismatch Kind = "os-mismatch"
)

// Anomaly is one detected Desired/Derived divergence.
type Anomaly struct {
	Kind   Kind
	Device string
	Detail string
}

func (a Anomaly) String() string {
	return fmt.Sprintf("[%s] %s: %s", a.Kind, a.Device, a.Detail)
}

// Report is the result of one audit pass.
type Report struct {
	Anomalies []Anomaly
}

// Clean reports whether the audit found nothing.
func (r Report) Clean() bool { return len(r.Anomalies) == 0 }

// ByKind returns anomaly counts per kind.
func (r Report) ByKind() map[Kind]int {
	out := map[Kind]int{}
	for _, a := range r.Anomalies {
		out[a.Kind]++
	}
	return out
}

// RecordGate persists one pre-deploy verification-gate decision as an
// OperationalEvent, so gate history is queryable next to the rest of the
// operational record (who was rejected, when, and why).
func RecordGate(store *fbnet.Store, devices int, violations []string, atUnix int64) error {
	urgency := "NOTICE"
	detail := fmt.Sprintf("verified %d devices, all invariants hold", devices)
	if len(violations) > 0 {
		urgency = "CRITICAL"
		detail = fmt.Sprintf("rejected deployment of %d devices, %d violation(s): %s",
			devices, len(violations), strings.Join(violations, "; "))
	}
	_, err := store.Mutate(func(m *fbnet.Mutation) error {
		_, err := m.Create("OperationalEvent", map[string]any{
			"device_name": "verify-gate",
			"kind":        "verify-gate",
			"detail":      detail,
			"urgency":     urgency,
			"at_unix":     atUnix,
		})
		return err
	})
	return err
}

// RecordGateBypass persists a deployment that skipped verification
// (-no-verify): habitual bypasses must be visible in the operational
// record even though no invariants were checked.
func RecordGateBypass(store *fbnet.Store, devices int, atUnix int64) error {
	_, err := store.Mutate(func(m *fbnet.Mutation) error {
		_, err := m.Create("OperationalEvent", map[string]any{
			"device_name": "verify-gate",
			"kind":        "verify-gate",
			"detail":      fmt.Sprintf("gate BYPASSED for deployment of %d devices (-no-verify)", devices),
			"urgency":     "WARNING",
			"at_unix":     atUnix,
		})
		return err
	})
	return err
}

// RecordDeploy persists one deployment (or initial provisioning) as an
// OperationalEvent, so the operational timeline can show "config moved"
// between the verify verdict and whatever alarmed afterwards. kind is
// "deploy" or "provision".
func RecordDeploy(store *fbnet.Store, kind string, devices int, detail string, atUnix int64) error {
	_, err := store.Mutate(func(m *fbnet.Mutation) error {
		_, err := m.Create("OperationalEvent", map[string]any{
			"device_name": "deployer",
			"kind":        kind,
			"detail":      fmt.Sprintf("%s of %d device(s): %s", kind, devices, detail),
			"urgency":     "NOTICE",
			"at_unix":     atUnix,
		})
		return err
	})
	return err
}

// Run executes all audits over the store.
func Run(store *fbnet.Store) (Report, error) {
	var rep Report
	for _, f := range []func(*fbnet.Store, *Report) error{
		auditDevices, auditCircuits, auditInterfaces, auditBGP, auditConfigs, auditOS,
	} {
		if err := f(store, &rep); err != nil {
			return Report{}, err
		}
	}
	sort.Slice(rep.Anomalies, func(i, j int) bool {
		if rep.Anomalies[i].Kind != rep.Anomalies[j].Kind {
			return rep.Anomalies[i].Kind < rep.Anomalies[j].Kind
		}
		if rep.Anomalies[i].Device != rep.Anomalies[j].Device {
			return rep.Anomalies[i].Device < rep.Anomalies[j].Device
		}
		return rep.Anomalies[i].Detail < rep.Anomalies[j].Detail
	})
	return rep, nil
}

// auditDevices flags Desired devices with no Derived record.
func auditDevices(store *fbnet.Store, rep *Report) error {
	desired, err := store.Find("Device", nil)
	if err != nil {
		return err
	}
	derived, err := store.Find("DerivedDevice", nil)
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, d := range derived {
		seen[d.String("name")] = true
	}
	for _, d := range desired {
		if !seen[d.String("name")] {
			rep.Anomalies = append(rep.Anomalies, Anomaly{
				Kind: DeviceSilent, Device: d.String("name"),
				Detail: "designed device has no operational record",
			})
		}
	}
	return nil
}

// desiredCircuitEnds resolves a Desired circuit to (device, interface)
// endpoint pairs.
func desiredCircuitEnds(store *fbnet.Store, c fbnet.Object) (ends [2][2]string, ok bool, err error) {
	for i, field := range []string{"a_interface", "z_interface"} {
		pifID := c.Ref(field)
		if pifID == 0 {
			return ends, false, nil
		}
		pif, err := store.GetByID("PhysicalInterface", pifID)
		if err != nil {
			return ends, false, err
		}
		lc, err := store.GetByID("Linecard", pif.Ref("linecard"))
		if err != nil {
			return ends, false, err
		}
		dev, err := store.GetByID("Device", lc.Ref("device"))
		if err != nil {
			return ends, false, err
		}
		ends[i] = [2]string{dev.String("name"), pif.String("name")}
	}
	return ends, true, nil
}

// auditCircuits cross-checks Desired production circuits against LLDP-
// derived circuits, in both directions.
func auditCircuits(store *fbnet.Store, rep *Report) error {
	observed, err := store.Find("DerivedCircuit", nil)
	if err != nil {
		return err
	}
	obsSet := map[string]bool{}
	for _, o := range observed {
		key := circuitKey(o.String("a_device"), o.String("a_interface"), o.String("z_device"), o.String("z_interface"))
		obsSet[key] = true
	}
	desired, err := store.Find("Circuit", fbnet.Eq("status", "production"))
	if err != nil {
		return err
	}
	desSet := map[string]bool{}
	for _, c := range desired {
		ends, ok, err := desiredCircuitEnds(store, c)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		key := circuitKey(ends[0][0], ends[0][1], ends[1][0], ends[1][1])
		desSet[key] = true
		if !obsSet[key] {
			rep.Anomalies = append(rep.Anomalies, Anomaly{
				Kind: CircuitMissing, Device: ends[0][0],
				Detail: fmt.Sprintf("circuit %s not observed via LLDP (%s)", c.String("circuit_id"), key),
			})
		}
	}
	for key := range obsSet {
		if !desSet[key] {
			dev := strings.SplitN(key, ":", 2)[0]
			rep.Anomalies = append(rep.Anomalies, Anomaly{
				Kind: CircuitUnexpected, Device: dev,
				Detail: fmt.Sprintf("observed adjacency %s has no production circuit in the design", key),
			})
		}
	}
	return nil
}

// circuitKey builds an orientation-independent circuit identity.
func circuitKey(aDev, aIf, zDev, zIf string) string {
	a := aDev + ":" + aIf
	z := zDev + ":" + zIf
	if a > z {
		a, z = z, a
	}
	return a + "--" + z
}

// auditInterfaces flags production-circuit endpoints that are down.
func auditInterfaces(store *fbnet.Store, rep *Report) error {
	derived, err := store.Find("DerivedInterface", nil)
	if err != nil {
		return err
	}
	status := map[string]string{}
	for _, d := range derived {
		status[d.String("device_name")+":"+d.String("name")] = d.String("oper_status")
	}
	circuits, err := store.Find("Circuit", fbnet.Eq("status", "production"))
	if err != nil {
		return err
	}
	for _, c := range circuits {
		ends, ok, err := desiredCircuitEnds(store, c)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		for _, end := range ends {
			key := end[0] + ":" + end[1]
			if st, polled := status[key]; polled && st != "up" {
				rep.Anomalies = append(rep.Anomalies, Anomaly{
					Kind: InterfaceDown, Device: end[0],
					Detail: fmt.Sprintf("interface %s terminates production circuit %s but is %s",
						end[1], c.String("circuit_id"), st),
				})
			}
		}
	}
	return nil
}

// auditBGP flags designed sessions whose derived state is not Established.
func auditBGP(store *fbnet.Store, rep *Report) error {
	derived, err := store.Find("DerivedBgpSession", nil)
	if err != nil {
		return err
	}
	state := map[string]string{}
	for _, d := range derived {
		state[d.String("device_name")+"|"+d.String("peer_addr")] = d.String("state")
	}
	for _, model := range []string{"BgpV6Session", "BgpV4Session"} {
		sessions, err := store.Find(model, nil)
		if err != nil {
			return err
		}
		for _, s := range sessions {
			localID := s.Ref("local_device")
			remoteAddr := s.String("remote_addr")
			if localID == 0 || remoteAddr == "" {
				continue
			}
			local, err := store.GetByID("Device", localID)
			if err != nil {
				return err
			}
			key := local.String("name") + "|" + remoteAddr
			if st, polled := state[key]; polled && st != "Established" {
				rep.Anomalies = append(rep.Anomalies, Anomaly{
					Kind: BGPDown, Device: local.String("name"),
					Detail: fmt.Sprintf("designed %s session to %s is %s", s.String("session_type"), remoteAddr, st),
				})
			}
		}
	}
	return nil
}

// auditOS flags devices whose collected OS version differs from the
// version of their assigned image.
func auditOS(store *fbnet.Store, rep *Report) error {
	derived, err := store.Find("DerivedDevice", nil)
	if err != nil {
		return err
	}
	running := map[string]string{}
	for _, d := range derived {
		running[d.String("name")] = d.String("os_version")
	}
	devices, err := store.Find("Device", fbnet.Not(fbnet.IsNull("os_image")))
	if err != nil {
		return err
	}
	for _, dev := range devices {
		img, err := store.GetByID("OsImage", dev.Ref("os_image"))
		if err != nil {
			return err
		}
		want := img.String("version")
		got, polled := running[dev.String("name")]
		if !polled {
			continue // never collected: device-silent covers it
		}
		if got != want {
			rep.Anomalies = append(rep.Anomalies, Anomaly{
				Kind: OSMismatch, Device: dev.String("name"),
				Detail: fmt.Sprintf("runs %s, design assigns image %s (%s)", got, img.String("name"), want),
			})
		}
	}
	return nil
}

// auditConfigs surfaces recorded config non-conformance.
func auditConfigs(store *fbnet.Store, rep *Report) error {
	records, err := store.Find("DerivedConfig", fbnet.Eq("conforms", false))
	if err != nil {
		return err
	}
	for _, r := range records {
		rep.Anomalies = append(rep.Anomalies, Anomaly{
			Kind: ConfigDeviates, Device: r.String("device_name"),
			Detail: "running config does not match golden config",
		})
	}
	return nil
}
