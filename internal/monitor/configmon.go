package monitor

import (
	"fmt"
	"sync"
	"time"

	"github.com/robotron-net/robotron/internal/confdiff"
	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/netsim"
	"github.com/robotron-net/robotron/internal/revctl"
	"github.com/robotron-net/robotron/internal/telemetry"
)

// ConfigMonitor implements config monitoring (§5.4.3): a running-config
// change detected by passive monitoring triggers an ad-hoc active job that
// collects the config, compares it with the Robotron-generated golden
// config, archives it, and notifies engineers of any discrepancy.
type ConfigMonitor struct {
	jm     *JobManager
	repo   *revctl.Repo // holds golden/<device> and backups/<device>
	store  *fbnet.Store // Derived conformance records; may be nil
	golden func(device string) (string, error)

	mu          sync.Mutex
	deviations  []Deviation
	handlers    []func(Deviation)
	checkErrs   int64
	checkPanics int64
	errHandlers []func(device string, err error)

	// Registry-backed mirrors of the counters above; nil (no-op) until
	// Instrument.
	mChecks     *telemetry.Counter
	mCheckErrs  *telemetry.Counter
	mPanics     *telemetry.Counter
	mDeviations *telemetry.Counter
}

// Instrument mirrors the monitor's counters onto reg so they appear in
// /metrics. The authoritative counts (CheckErrors, CheckPanics) remain
// the in-struct fields, updated under cm.mu together with the hooks.
func (cm *ConfigMonitor) Instrument(reg *telemetry.Registry) {
	reg.Help("robotron_monitor_check_errors_total", "event-triggered config checks that errored")
	reg.Help("robotron_monitor_check_panics_total", "panics recovered from backend config checks")
	cm.mu.Lock()
	defer cm.mu.Unlock()
	cm.mChecks = reg.Counter("robotron_monitor_checks_total")
	cm.mCheckErrs = reg.Counter("robotron_monitor_check_errors_total")
	cm.mPanics = reg.Counter("robotron_monitor_check_panics_total")
	cm.mDeviations = reg.Counter("robotron_monitor_deviations_total")
}

// Deviation is one detected divergence between running and golden config.
type Deviation struct {
	Device  string
	Diff    string
	Added   int
	Removed int
	At      time.Time
}

// NewConfigMonitor builds a config monitor. golden resolves a device's
// golden config (typically configgen.Generator.Golden).
func NewConfigMonitor(jm *JobManager, repo *revctl.Repo, store *fbnet.Store, golden func(string) (string, error)) *ConfigMonitor {
	return &ConfigMonitor{jm: jm, repo: repo, store: store, golden: golden}
}

// Attach subscribes the monitor to the classifier: every CONFIG_CHANGED
// alert triggers a check of the originating device. A check that errors —
// typically a device unreachable mid-collection — is not silently
// dropped: the error counter advances and every OnCheckError subscriber
// is told, so a reconciler (or operator tooling) can queue a retry
// rather than waiting for the next change event that may never come.
func (cm *ConfigMonitor) Attach(cls *Classifier) {
	cls.OnAlert(func(a Alert) {
		if a.Rule != "config-changed" {
			return
		}
		if _, err := cm.CheckDevice(a.Message.Host); err != nil {
			cm.noteCheckError(a.Message.Host, err)
		}
	})
}

// OnDeviation registers a handler for detected discrepancies.
func (cm *ConfigMonitor) OnDeviation(h func(Deviation)) {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	cm.handlers = append(cm.handlers, h)
}

// OnCheckError registers a handler for event-triggered checks that
// errored (the device was unreachable, golden was missing, ...).
func (cm *ConfigMonitor) OnCheckError(h func(device string, err error)) {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	cm.errHandlers = append(cm.errHandlers, h)
}

// CheckErrors reports how many event-triggered checks have errored.
func (cm *ConfigMonitor) CheckErrors() int64 {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return cm.checkErrs
}

// CheckPanics reports how many panics were recovered from backend
// checks. Each recovered panic is also counted as a check error.
func (cm *ConfigMonitor) CheckPanics() int64 {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return cm.checkPanics
}

// noteCheckError advances the error counter and notifies every
// OnCheckError subscriber under one critical section, so the counter
// and the hook can never diverge: an observer that sees checkErrs == N
// knows exactly N handler invocation rounds have been entered, and a
// concurrent OnCheckError registration cannot land between the count
// and the callbacks. Handlers must not call back into the monitor.
func (cm *ConfigMonitor) noteCheckError(device string, err error) {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	cm.checkErrs++
	cm.mCheckErrs.Inc()
	for _, h := range cm.errHandlers {
		h(device, err)
	}
}

// notePanic counts a panic recovered from a backend check.
func (cm *ConfigMonitor) notePanic() {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	cm.checkPanics++
	cm.mPanics.Inc()
}

// CheckDevice collects the device's running config now, archives it, and
// compares it to golden. It returns the deviation (nil if conforming).
// A panic out of the collection backends or the golden resolver is
// recovered and surfaced as an error (and counted via CheckPanics), so
// one broken backend cannot kill the classifier's alert goroutine.
func (cm *ConfigMonitor) CheckDevice(device string) (dev *Deviation, err error) {
	cm.mChecks.Inc()
	defer func() {
		if p := recover(); p != nil {
			cm.notePanic()
			dev, err = nil, fmt.Errorf("monitor: check of %s panicked: %v", device, p)
		}
	}()
	cols, err := cm.jm.RunOnce(JobSpec{
		Name: "adhoc-config-" + device, Period: time.Second,
		Engine: EngineCLI, Data: DataConfig,
		Devices: []string{device}, Backends: []string{"config-backup"},
	})
	if err != nil {
		return nil, err
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("monitor: could not collect config from %s", device)
	}
	running := cols[0].Config
	golden, err := cm.golden(device)
	if err != nil {
		return nil, fmt.Errorf("monitor: no golden config for %s: %w", device, err)
	}
	d := confdiff.Compute(golden, running)
	conforms := d.Empty()
	if err := cm.recordConformance(device, running, conforms); err != nil {
		return nil, err
	}
	if conforms {
		return nil, nil
	}
	stats := d.Stats(true)
	found := Deviation{
		Device: device, Diff: d.Unified(3),
		Added: stats.Added, Removed: stats.Removed, At: cols[0].At,
	}
	cm.mu.Lock()
	cm.deviations = append(cm.deviations, found)
	cm.mDeviations.Inc()
	handlers := cm.handlers
	cm.mu.Unlock()
	for _, h := range handlers {
		h(found)
	}
	return &found, nil
}

// recordConformance updates the DerivedConfig object for the device.
func (cm *ConfigMonitor) recordConformance(device, running string, conforms bool) error {
	if cm.store == nil {
		return nil
	}
	_, err := cm.store.Mutate(func(m *fbnet.Mutation) error {
		return upsert(m, "DerivedConfig", fbnet.Eq("device_name", device), map[string]any{
			"device_name": device, "config_hash": revctl.Hash(running),
			"collected_unix": time.Now().Unix(), "conforms": conforms,
		})
	})
	return err
}

// Deviations returns all recorded deviations.
func (cm *ConfigMonitor) Deviations() []Deviation {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return append([]Deviation(nil), cm.deviations...)
}

// Restore pushes the golden config back to a deviating device ("restore
// device running configs to Robotron-generated configs", §8) and
// re-checks conformance.
func (cm *ConfigMonitor) Restore(device string, target RestoreTarget) error {
	golden, err := cm.golden(device)
	if err != nil {
		return err
	}
	if err := target.LoadConfig(golden); err != nil {
		return err
	}
	if err := target.Commit(); err != nil {
		return err
	}
	dev, err := cm.CheckDevice(device)
	if err != nil {
		return err
	}
	if dev != nil {
		return fmt.Errorf("monitor: %s still deviates after restore", device)
	}
	return nil
}

// RestoreTarget is the config-push surface Restore needs; *netsim.Device
// implements it.
type RestoreTarget interface {
	LoadConfig(string) error
	Commit() error
}

var _ RestoreTarget = (*netsim.Device)(nil)
