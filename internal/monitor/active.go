package monitor

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/robotron-net/robotron/internal/netsim"
	"github.com/robotron-net/robotron/internal/telemetry"
	"github.com/robotron-net/robotron/internal/vclock"
)

// Active monitoring (§5.4.2, Fig. 11): the Job Manager schedules periodic
// jobs from job specifications (collection period, data type, devices,
// storage backends); Engines pull jobs and poll devices over different
// mechanisms (SNMP, CLI, RPC/XML, Thrift); Backends receive collections
// and convert them for their storage.

// EngineType selects the polling mechanism, the dimension of Table 2.
type EngineType string

const (
	EngineSNMP   EngineType = "snmp"
	EngineCLI    EngineType = "cli"
	EngineRPCXML EngineType = "rpcxml"
	EngineThrift EngineType = "thrift"
)

// DataType is what a job collects.
type DataType string

const (
	DataCounters   DataType = "counters"
	DataInterfaces DataType = "interfaces"
	DataLLDP       DataType = "lldp"
	DataBGP        DataType = "bgp"
	DataConfig     DataType = "config"
	DataVersion    DataType = "version"
)

// DeviceAPI is the management surface engines poll; *netsim.Device
// implements it.
type DeviceAPI interface {
	Name() string
	RunningConfig() (string, error)
	ShowInterfaces() ([]netsim.IfaceStatus, error)
	ShowLLDPNeighbors() ([]netsim.LLDPNeighbor, error)
	ShowBGPSummary() ([]netsim.BGPPeerStatus, error)
	ShowVersion() (netsim.VersionInfo, error)
	Counters() (map[string]float64, error)
}

var _ DeviceAPI = (*netsim.Device)(nil)

// DeviceResolver maps device names to management sessions.
type DeviceResolver func(name string) (DeviceAPI, error)

// FleetDeviceResolver resolves against a netsim fleet.
func FleetDeviceResolver(f *netsim.Fleet) DeviceResolver {
	return func(name string) (DeviceAPI, error) {
		d, ok := f.Device(name)
		if !ok {
			return nil, fmt.Errorf("monitor: unknown device %q", name)
		}
		return d, nil
	}
}

// Collection is one polled result handed to backends.
type Collection struct {
	Device     string
	Engine     EngineType
	Data       DataType
	At         time.Time
	Counters   map[string]float64
	Interfaces []netsim.IfaceStatus
	LLDP       []netsim.LLDPNeighbor
	BGP        []netsim.BGPPeerStatus
	Config     string
	Version    *netsim.VersionInfo
}

// Engine polls one data type from one device.
type Engine interface {
	Type() EngineType
	// Supports reports whether this engine can collect the data type —
	// vendor capabilities differ ("for some vendors, the operational
	// status of the physical links within an aggregated interface can only
	// be collected by CLI commands").
	Supports(d DataType) bool
	Poll(dev DeviceAPI, d DataType) (Collection, error)
}

// baseEngine implements Poll against the DeviceAPI surface.
type baseEngine struct {
	typ      EngineType
	supports map[DataType]bool
}

func (e *baseEngine) Type() EngineType         { return e.typ }
func (e *baseEngine) Supports(d DataType) bool { return e.supports[d] }

func (e *baseEngine) Poll(dev DeviceAPI, d DataType) (Collection, error) {
	if !e.supports[d] {
		return Collection{}, fmt.Errorf("monitor: %s engine does not support %s", e.typ, d)
	}
	col := Collection{Device: dev.Name(), Engine: e.typ, Data: d, At: time.Now()}
	var err error
	switch d {
	case DataCounters:
		col.Counters, err = dev.Counters()
	case DataInterfaces:
		col.Interfaces, err = dev.ShowInterfaces()
	case DataLLDP:
		col.LLDP, err = dev.ShowLLDPNeighbors()
	case DataBGP:
		col.BGP, err = dev.ShowBGPSummary()
	case DataConfig:
		col.Config, err = dev.RunningConfig()
	case DataVersion:
		var v netsim.VersionInfo
		v, err = dev.ShowVersion()
		col.Version = &v
	default:
		err = fmt.Errorf("monitor: unknown data type %q", d)
	}
	if err != nil {
		return Collection{}, err
	}
	return col, nil
}

// NewEngines returns the standard engine set with per-mechanism capability
// differences.
func NewEngines() map[EngineType]Engine {
	return map[EngineType]Engine{
		EngineSNMP: &baseEngine{typ: EngineSNMP, supports: map[DataType]bool{
			DataCounters: true, DataInterfaces: true,
		}},
		EngineCLI: &baseEngine{typ: EngineCLI, supports: map[DataType]bool{
			// CLI reaches everything: the fallback when standards fall short.
			DataCounters: true, DataInterfaces: true, DataLLDP: true,
			DataBGP: true, DataConfig: true, DataVersion: true,
		}},
		EngineRPCXML: &baseEngine{typ: EngineRPCXML, supports: map[DataType]bool{
			DataInterfaces: true, DataVersion: true, DataConfig: true,
		}},
		EngineThrift: &baseEngine{typ: EngineThrift, supports: map[DataType]bool{
			DataBGP: true, DataVersion: true, DataCounters: true,
		}},
	}
}

// Backend receives collections ("Backends receive the collected data and
// convert it into a format appropriate for different storage locations").
type Backend interface {
	Name() string
	Store(col Collection) error
}

// JobSpec describes one monitoring job: "the collection period, the type
// of data, the devices, and the storage backends the data should be sent
// to" (§5.4.2). AllDevices targets the whole fleet as of each execution —
// the fleet grows constantly, and jobs must follow — and requires the job
// manager to have a device lister.
type JobSpec struct {
	Name       string
	Period     time.Duration
	Engine     EngineType
	Data       DataType
	Devices    []string
	AllDevices bool
	Backends   []string
}

// EventStats counts collection events per engine type (Table 2). Syslog
// (passive) events are counted by the classifier and merged in reports.
type EventStats struct {
	mu     sync.Mutex
	counts map[EngineType]int64
	errors int64

	// Registry mirrors, nil (no-op) until instrument.
	reg     *telemetry.Registry
	mPolls  map[EngineType]*telemetry.Counter
	mErrors *telemetry.Counter
}

func newEventStats() *EventStats {
	return &EventStats{counts: make(map[EngineType]int64)}
}

func (s *EventStats) instrument(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = reg
	s.mPolls = make(map[EngineType]*telemetry.Counter)
	s.mErrors = reg.Counter("robotron_monitor_poll_errors_total")
}

func (s *EventStats) add(e EngineType, n int64) {
	s.mu.Lock()
	s.counts[e] += n
	if s.reg != nil {
		c, ok := s.mPolls[e]
		if !ok {
			c = s.reg.Counter("robotron_monitor_polls_total", telemetry.Label{Key: "engine", Value: string(e)})
			s.mPolls[e] = c
		}
		c.Add(n)
	}
	s.mu.Unlock()
}

func (s *EventStats) addError() {
	s.mu.Lock()
	s.errors++
	s.mErrors.Inc()
	s.mu.Unlock()
}

// Counts returns per-engine event counts.
func (s *EventStats) Counts() map[EngineType]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[EngineType]int64, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// Errors returns the number of failed polls.
func (s *EventStats) Errors() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errors
}

// JobManager is the top tier of the active monitoring pipeline.
type JobManager struct {
	resolve DeviceResolver
	// listDevices enumerates the fleet for AllDevices jobs; nil restricts
	// jobs to explicit device lists.
	listDevices func() []string
	engines     map[EngineType]Engine
	mu          sync.Mutex
	backends    map[string]Backend
	specs       []JobSpec
	stats       *EventStats
	stopCh      chan struct{}
	wg          sync.WaitGroup
	running     bool
	clock       vclock.Clock // nil: collections keep engine wall-clock stamps
}

// NewJobManager creates a job manager with the standard engines.
func NewJobManager(resolve DeviceResolver) *JobManager {
	return &JobManager{
		resolve:  resolve,
		engines:  NewEngines(),
		backends: make(map[string]Backend),
		stats:    newEventStats(),
	}
}

// SetDeviceLister enables AllDevices job specs by providing the fleet
// enumeration used at each execution.
func (jm *JobManager) SetDeviceLister(list func() []string) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	jm.listDevices = list
}

// SetClock makes every collection timestamp come from clock instead of
// the engines' wall clock, so sample ages and alarm windows line up with
// a virtual clock in simulation.
func (jm *JobManager) SetClock(clock vclock.Clock) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	jm.clock = clock
}

// RegisterBackend installs a named backend.
func (jm *JobManager) RegisterBackend(b Backend) error {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if _, dup := jm.backends[b.Name()]; dup {
		return fmt.Errorf("monitor: duplicate backend %q", b.Name())
	}
	jm.backends[b.Name()] = b
	return nil
}

// AddJob validates and installs a periodic job specification.
func (jm *JobManager) AddJob(spec JobSpec) error {
	if err := jm.validate(spec); err != nil {
		return err
	}
	jm.mu.Lock()
	defer jm.mu.Unlock()
	for _, s := range jm.specs {
		if s.Name == spec.Name {
			return fmt.Errorf("monitor: duplicate job %q", spec.Name)
		}
	}
	jm.specs = append(jm.specs, spec)
	return nil
}

// ReplaceJobs atomically swaps every installed job whose name starts with
// prefix for the given specs — the re-derivation primitive: when design
// changes, the derived job set is regenerated and swapped in wholesale.
// Specs are validated first; on error the installed set is unchanged.
func (jm *JobManager) ReplaceJobs(prefix string, specs []JobSpec) error {
	if prefix == "" {
		return fmt.Errorf("monitor: ReplaceJobs requires a non-empty prefix")
	}
	seen := make(map[string]bool, len(specs))
	for _, spec := range specs {
		if !strings.HasPrefix(spec.Name, prefix) {
			return fmt.Errorf("monitor: job %q does not match prefix %q", spec.Name, prefix)
		}
		if seen[spec.Name] {
			return fmt.Errorf("monitor: duplicate job %q", spec.Name)
		}
		seen[spec.Name] = true
		if err := jm.validate(spec); err != nil {
			return err
		}
	}
	jm.mu.Lock()
	defer jm.mu.Unlock()
	kept := make([]JobSpec, 0, len(jm.specs)+len(specs))
	for _, s := range jm.specs {
		if !strings.HasPrefix(s.Name, prefix) {
			kept = append(kept, s)
		}
	}
	jm.specs = append(kept, specs...)
	return nil
}

func (jm *JobManager) validate(spec JobSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("monitor: job name required")
	}
	if spec.Period <= 0 {
		return fmt.Errorf("monitor: job %q: period must be positive", spec.Name)
	}
	eng, ok := jm.engines[spec.Engine]
	if !ok {
		return fmt.Errorf("monitor: job %q: unknown engine %q", spec.Name, spec.Engine)
	}
	if !eng.Supports(spec.Data) {
		return fmt.Errorf("monitor: job %q: engine %s cannot collect %s", spec.Name, spec.Engine, spec.Data)
	}
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if spec.AllDevices {
		if jm.listDevices == nil {
			return fmt.Errorf("monitor: job %q: AllDevices requires a device lister", spec.Name)
		}
	} else if len(spec.Devices) == 0 {
		return fmt.Errorf("monitor: job %q: no devices", spec.Name)
	}
	for _, b := range spec.Backends {
		if _, ok := jm.backends[b]; !ok {
			return fmt.Errorf("monitor: job %q: unknown backend %q", spec.Name, b)
		}
	}
	return nil
}

// Jobs returns the installed job specs.
func (jm *JobManager) Jobs() []JobSpec {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	return append([]JobSpec(nil), jm.specs...)
}

// Stats returns the event counters.
func (jm *JobManager) Stats() *EventStats { return jm.stats }

// Instrument mirrors the job manager's poll counters onto reg
// (robotron_monitor_polls_total{engine=...} and
// robotron_monitor_poll_errors_total). The EventStats getters remain
// the authoritative view.
func (jm *JobManager) Instrument(reg *telemetry.Registry) {
	reg.Help("robotron_monitor_polls_total", "successful active-monitoring polls per engine")
	jm.stats.instrument(reg)
}

// RunOnce executes one job immediately (the "ad-hoc monitoring jobs
// on-demand" path, used by config monitoring).
func (jm *JobManager) RunOnce(spec JobSpec) ([]Collection, error) {
	if spec.Period == 0 {
		spec.Period = time.Second // ad-hoc jobs need no real period
	}
	if err := jm.validate(spec); err != nil {
		return nil, err
	}
	return jm.execute(spec), nil
}

// execute polls every device of a job and fans results to its backends.
func (jm *JobManager) execute(spec JobSpec) []Collection {
	eng := jm.engines[spec.Engine]
	devices := spec.Devices
	if spec.AllDevices {
		jm.mu.Lock()
		list := jm.listDevices
		jm.mu.Unlock()
		if list != nil {
			devices = list()
		}
	}
	var out []Collection
	for _, name := range devices {
		dev, err := jm.resolve(name)
		if err != nil {
			jm.stats.addError()
			continue
		}
		col, err := eng.Poll(dev, spec.Data)
		if err != nil {
			jm.stats.addError()
			continue
		}
		jm.mu.Lock()
		clock := jm.clock
		jm.mu.Unlock()
		if clock != nil {
			col.At = clock.Now()
		}
		jm.stats.add(spec.Engine, 1)
		out = append(out, col)
		jm.mu.Lock()
		backends := make([]Backend, 0, len(spec.Backends))
		for _, bn := range spec.Backends {
			if b, ok := jm.backends[bn]; ok {
				backends = append(backends, b)
			}
		}
		jm.mu.Unlock()
		for _, b := range backends {
			if err := b.Store(col); err != nil {
				jm.stats.addError()
			}
		}
	}
	return out
}

// Start launches one goroutine per job spec, polling on its period, until
// Stop.
func (jm *JobManager) Start() {
	jm.mu.Lock()
	if jm.running {
		jm.mu.Unlock()
		return
	}
	jm.running = true
	jm.stopCh = make(chan struct{})
	specs := append([]JobSpec(nil), jm.specs...)
	jm.mu.Unlock()
	for _, spec := range specs {
		jm.wg.Add(1)
		go func(spec JobSpec) {
			defer jm.wg.Done()
			t := time.NewTicker(spec.Period)
			defer t.Stop()
			for {
				select {
				case <-jm.stopCh:
					return
				case <-t.C:
					jm.execute(spec)
				}
			}
		}(spec)
	}
}

// Stop halts periodic polling.
func (jm *JobManager) Stop() {
	jm.mu.Lock()
	if !jm.running {
		jm.mu.Unlock()
		return
	}
	jm.running = false
	close(jm.stopCh)
	jm.mu.Unlock()
	jm.wg.Wait()
}

// RunVirtual simulates a wall-clock window without sleeping: each job
// executes as many times as its period fits into the window, interleaved
// in fire-time order. Deterministic; used by the Table 2 experiment.
func (jm *JobManager) RunVirtual(window time.Duration) {
	jm.mu.Lock()
	specs := append([]JobSpec(nil), jm.specs...)
	jm.mu.Unlock()
	type fire struct {
		next time.Duration
		spec JobSpec
	}
	queue := make([]fire, 0, len(specs))
	for _, s := range specs {
		queue = append(queue, fire{next: s.Period, spec: s})
	}
	for {
		// Pop the earliest next fire.
		best := -1
		for i := range queue {
			if queue[i].next > window {
				continue
			}
			if best == -1 || queue[i].next < queue[best].next ||
				(queue[i].next == queue[best].next && queue[i].spec.Name < queue[best].spec.Name) {
				best = i
			}
		}
		if best == -1 {
			return
		}
		jm.execute(queue[best].spec)
		queue[best].next += queue[best].spec.Period
	}
}

// FormatTable2 renders event statistics in the layout of the paper's
// Table 2, merging the passive (syslog) count from the classifier.
func FormatTable2(stats *EventStats, syslogEvents int64) string {
	counts := stats.Counts()
	rows := []struct {
		label string
		n     int64
	}{
		{"SNMP (active)", counts[EngineSNMP]},
		{"CLI (active)", counts[EngineCLI]},
		{"RPC/XML (active)", counts[EngineRPCXML]},
		{"Thrift (active)", counts[EngineThrift]},
		{"Syslog (passive)", syslogEvents},
	}
	var total int64
	for _, r := range rows {
		total += r.n
	}
	var b []byte
	b = fmt.Appendf(b, "%-18s %12s %10s\n", "Types", "# of events", "Percentage")
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.n) / float64(total)
		}
		b = fmt.Appendf(b, "%-18s %12d %9.2f%%\n", r.label, r.n, pct)
	}
	b = fmt.Appendf(b, "%-18s %12d %9.2f%%\n", "Total", total, 100.0)
	return string(b)
}

// sortedDeviceNames returns fleet device names, a convenience for building
// job specs.
func SortedDeviceNames(f *netsim.Fleet) []string {
	devs := f.Devices()
	names := make([]string, len(devs))
	for i, d := range devs {
		names[i] = d.Name()
	}
	sort.Strings(names)
	return names
}
