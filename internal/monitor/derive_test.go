package monitor

import (
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/relstore"
)

// deriveFixture builds a two-device design: sw1 on a vendor1 profile with
// one interface and one BGP session, sw2 on vendor2 with one interface and
// no BGP.
func deriveFixture(t *testing.T) *fbnet.Store {
	t.Helper()
	store, err := fbnet.Open(relstore.NewDB("derive-test"), fbnet.NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	_, err = store.Mutate(func(m *fbnet.Mutation) error {
		region, err := m.Create("Region", map[string]any{"name": "apac"})
		if err != nil {
			return err
		}
		site, err := m.Create("Site", map[string]any{"name": "pop1", "kind": "pop", "region": region})
		if err != nil {
			return err
		}
		mkDev := func(name, syntax string) (int64, error) {
			v, err := m.Create("Vendor", map[string]any{"name": "v-" + name, "syntax": syntax})
			if err != nil {
				return 0, err
			}
			hw, err := m.Create("HardwareProfile", map[string]any{
				"name": "hw-" + name, "vendor": v, "num_slots": 1,
				"ports_per_linecard": 4, "port_speed_mbps": 10000,
			})
			if err != nil {
				return 0, err
			}
			dev, err := m.Create("Device", map[string]any{
				"name": name, "role": "psw", "site": site, "hw_profile": hw, "drain_state": "undrained",
			})
			if err != nil {
				return 0, err
			}
			lc, err := m.Create("Linecard", map[string]any{"slot": 1, "device": dev})
			if err != nil {
				return 0, err
			}
			_, err = m.Create("PhysicalInterface", map[string]any{
				"name": "et1/1", "speed_mbps": 10000, "linecard": lc,
			})
			return dev, err
		}
		sw1, err := mkDev("sw1", "vendor1")
		if err != nil {
			return err
		}
		if _, err := mkDev("sw2", "vendor2"); err != nil {
			return err
		}
		_, err = m.Create("BgpV6Session", map[string]any{
			"local_device": sw1, "remote_addr": "2401:db00::1",
			"local_as": 65001, "remote_as": 65000, "session_type": "ebgp",
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func TestDeriveJobsFollowsDesign(t *testing.T) {
	store := deriveFixture(t)
	jobs, rules, err := DeriveJobs(store)
	if err != nil {
		t.Fatal(err)
	}

	byName := make(map[string]JobSpec, len(jobs))
	for _, j := range jobs {
		byName[j.Name] = j
	}
	// sw1 terminates BGP: counters + interfaces + bgp. sw2 does not: no
	// bgp job.
	if len(jobs) != 5 {
		t.Fatalf("want 5 jobs, got %d: %v", len(jobs), byName)
	}
	if _, ok := byName["derived-bgp-sw2"]; ok {
		t.Fatalf("sw2 has no BGP sessions but got a BGP job")
	}
	// Engine selection follows the vendor syntax.
	cases := []struct {
		job    string
		engine EngineType
		period time.Duration
	}{
		{"derived-counters-sw1", EngineSNMP, time.Minute},
		{"derived-interfaces-sw1", EngineSNMP, 2 * time.Minute},
		{"derived-bgp-sw1", EngineCLI, 5 * time.Minute},
		{"derived-counters-sw2", EngineThrift, time.Minute},
		{"derived-interfaces-sw2", EngineRPCXML, 2 * time.Minute},
	}
	for _, c := range cases {
		j, ok := byName[c.job]
		if !ok {
			t.Fatalf("missing job %s", c.job)
		}
		if j.Engine != c.engine || j.Period != c.period {
			t.Errorf("%s: engine=%s period=%s, want %s/%s", c.job, j.Engine, j.Period, c.engine, c.period)
		}
	}

	// Rules: device-unreachable per device, bgp-session-down for sw1's
	// session, interface-flatline + flatline-octets per interface.
	type rk struct {
		name, dev, key string
	}
	got := make(map[rk]AlarmRule, len(rules))
	for _, r := range rules {
		got[rk{r.Name, r.Device, r.Key}] = r
	}
	want := []rk{
		{"device-unreachable", "sw1", "cpu_util"},
		{"device-unreachable", "sw2", "cpu_util"},
		{"bgp-session-down", "sw1", "2401:db00::1"},
		{"interface-flatline", "sw1", "et1/1/in_octets"},
		{"interface-flatline", "sw2", "et1/1/in_octets"},
		{"flatline-octets", "sw1", "et1/1/out_octets"},
		{"flatline-octets", "sw2", "et1/1/out_octets"},
	}
	if len(rules) != len(want) {
		t.Fatalf("want %d rules, got %d: %v", len(want), len(rules), rules)
	}
	for _, w := range want {
		if _, ok := got[w]; !ok {
			t.Errorf("missing rule %+v", w)
		}
	}

	// The derivation is deterministic: a second run yields the same order.
	jobs2, rules2, err := DeriveJobs(store)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Name != jobs2[i].Name {
			t.Fatalf("job order unstable at %d: %s vs %s", i, jobs[i].Name, jobs2[i].Name)
		}
	}
	for i := range rules {
		if rules[i] != rules2[i] {
			t.Fatalf("rule order unstable at %d", i)
		}
	}
}

func TestReplaceJobsSwapsDerivedPrefix(t *testing.T) {
	store := deriveFixture(t)
	jobs, _, err := DeriveJobs(store)
	if err != nil {
		t.Fatal(err)
	}
	jm := NewJobManager(nil)
	if err := jm.RegisterBackend(NewTimeseriesBackend()); err != nil {
		t.Fatal(err)
	}
	if err := jm.RegisterBackend(NewDerivedBackend(store)); err != nil {
		t.Fatal(err)
	}
	// A hand-installed job outside the prefix must survive swaps.
	if err := jm.AddJob(JobSpec{Name: "manual-sweep", Period: time.Hour,
		Engine: EngineSNMP, Data: DataCounters, Devices: []string{"sw1"}}); err != nil {
		t.Fatal(err)
	}
	if err := jm.ReplaceJobs("derived-", jobs); err != nil {
		t.Fatal(err)
	}
	if got := len(jm.Jobs()); got != len(jobs)+1 {
		t.Fatalf("want %d jobs after first swap, got %d", len(jobs)+1, got)
	}
	// Swapping with a subset removes the rest but keeps manual-sweep.
	if err := jm.ReplaceJobs("derived-", jobs[:2]); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, j := range jm.Jobs() {
		names[j.Name] = true
	}
	if len(names) != 3 || !names["manual-sweep"] {
		t.Fatalf("second swap left %v", names)
	}
	// A spec outside the prefix is rejected wholesale.
	if err := jm.ReplaceJobs("derived-", []JobSpec{{Name: "rogue", Period: time.Minute,
		Engine: EngineSNMP, Data: DataCounters, Devices: []string{"sw1"}}}); err == nil {
		t.Fatal("ReplaceJobs accepted a spec outside its prefix")
	}
}
