package monitor

import (
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/netsim"
)

// Regression: Store used to record only in_octets for interface
// collections, so egress series silently never existed and any alarm on
// out_octets could not fire.
func TestTimeseriesStoreBothOctetDirections(t *testing.T) {
	ts := NewTimeseriesBackend()
	err := ts.Store(Collection{
		Device: "sw1", Data: DataInterfaces, At: time.Unix(1000, 0),
		Interfaces: []netsim.IfaceStatus{
			{Name: "et1/1", OperStatus: "up", SpeedMbps: 10000, InOctets: 111, OutOctets: 222},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	in := ts.Series("sw1/et1/1/in_octets")
	out := ts.Series("sw1/et1/1/out_octets")
	if len(in) != 1 || in[0].Value != 111 {
		t.Fatalf("in_octets series = %+v, want one sample of 111", in)
	}
	if len(out) != 1 || out[0].Value != 222 {
		t.Fatalf("out_octets series = %+v, want one sample of 222", out)
	}
}

func TestTimeseriesRetentionRing(t *testing.T) {
	ts := NewTimeseriesBackend()
	const retention = 8
	ts.SetRetention(retention)
	for i := 0; i < retention*3; i++ {
		err := ts.Store(Collection{
			Device: "sw1", Data: DataCounters, At: time.Unix(int64(i), 0),
			Counters: map[string]float64{"cpu_util": float64(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	got := ts.Series("sw1/cpu_util")
	// Length is capped at the retention and only the newest samples
	// survive, oldest first.
	if len(got) != retention {
		t.Fatalf("series length = %d, want %d", len(got), retention)
	}
	for i, s := range got {
		want := float64(retention*2 + i)
		if s.Value != want || s.AtUnix != int64(want) {
			t.Fatalf("sample %d = %+v, want value %g", i, s, want)
		}
	}
	// Alloc guard: the ring never grows past its capacity no matter how
	// many polls feed it.
	ts.mu.Lock()
	r := ts.series["sw1/cpu_util"]
	if cap(r.buf) != retention || len(r.buf) != retention {
		ts.mu.Unlock()
		t.Fatalf("ring buf len=%d cap=%d, want both %d", len(r.buf), cap(r.buf), retention)
	}
	ts.mu.Unlock()
	// Last respects ring order across the wrap point.
	last := ts.Last("sw1/cpu_util", 3)
	if len(last) != 3 || last[2].Value != float64(retention*3-1) {
		t.Fatalf("Last(3) = %+v", last)
	}
	// SetRetention(<=0) restores the default for new series.
	ts.SetRetention(0)
	if err := ts.Store(Collection{
		Device: "sw2", Data: DataCounters, At: time.Unix(0, 0),
		Counters: map[string]float64{"cpu_util": 1},
	}); err != nil {
		t.Fatal(err)
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if got := cap(ts.series["sw2/cpu_util"].buf); got != DefaultSeriesRetention {
		t.Fatalf("new series cap = %d, want default %d", got, DefaultSeriesRetention)
	}
}
